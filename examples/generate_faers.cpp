// Writes a synthetic FAERS quarter in the public ASCII exchange format
// (DEMO/DRUG/REAC '$'-delimited tables) — the same layout the real
// quarterly extracts use — with injected drug-drug-interaction signals.
//
//   $ ./examples/generate_faers <output-dir> [quarter=1] [reports=25000] [seed=20140101]
//
// The printed ground truth lists what was injected, so downstream tools can
// check recovery.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "faers/ascii_format.h"
#include "faers/generator.h"

using namespace maras;

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <output-dir> [quarter=1] [reports=25000] "
                 "[seed=20140101]\n",
                 argv[0]);
    return 2;
  }
  faers::GeneratorConfig config;
  config.quarter = argc > 2 ? std::atoi(argv[2]) : 1;
  config.n_reports = argc > 3 ? static_cast<size_t>(std::atoll(argv[3]))
                              : 25000;
  config.seed = argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 20140101;
  if (config.quarter < 1 || config.quarter > 4) {
    std::fprintf(stderr, "quarter must be 1..4\n");
    return 2;
  }

  faers::SyntheticGenerator generator(config);
  auto dataset = generator.Generate();
  if (!dataset.ok()) {
    std::fprintf(stderr, "generate: %s\n", dataset.status().ToString().c_str());
    return 1;
  }
  Status written = faers::WriteAsciiQuarterToDir(*dataset, argv[1]);
  if (!written.ok()) {
    std::fprintf(stderr, "write: %s\n", written.ToString().c_str());
    return 1;
  }

  std::printf("wrote %zu reports (%d drugs vocab, %d ADR vocab) to %s "
              "(DEMO/DRUG/REAC %dQ%d files)\n",
              dataset->reports.size(),
              static_cast<int>(generator.drug_vocabulary().size()),
              static_cast<int>(generator.adr_vocabulary().size()), argv[1],
              config.year % 100, config.quarter);
  std::printf("\ninjected ground truth:\n");
  for (const auto& signal : generator.ground_truth().signals) {
    std::printf("  signal %-38s %zu reports:", signal.name.c_str(),
                signal.reports);
    for (const auto& drug : signal.drugs) std::printf(" %s", drug.c_str());
    std::printf(" =>");
    for (const auto& adr : signal.adrs) std::printf(" [%s]", adr.c_str());
    std::printf("\n");
  }
  for (const auto& effect : generator.ground_truth().single_drug_effects) {
    std::printf("  single-drug effect: %-20s attaches", effect.drug.c_str());
    for (const auto& adr : effect.adrs) std::printf(" [%s]", adr.c_str());
    std::printf(" with p=%.2f\n", effect.attach_prob);
  }
  return 0;
}
