// Generates a complete quarterly surveillance report — the artifact a
// drug-safety evaluator would circulate: top interaction signals with
// context, severity/novelty triage, disproportionality panels,
// quarter-over-quarter trends for watched combinations, a JSON export for
// the visual front end, and trend/glyph SVGs.
//
//   $ ./examples/surveillance_report <output-dir> [reports=12000] [seed=20140101]
//
// Writes: report.md, analysis.json, trend_*.svg, top_glyph.svg

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/analyzer.h"
#include "core/disproportionality.h"
#include "core/export.h"
#include "core/knowledge_base.h"
#include "core/multi_quarter.h"
#include "core/report_generator.h"
#include "core/severity.h"
#include "faers/generator.h"
#include "faers/preprocess.h"
#include "util/delimited.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "viz/glyph.h"
#include "viz/linechart.h"

using namespace maras;

namespace {

faers::PreprocessResult PrepareQuarter(int quarter, size_t reports,
                                       uint64_t seed) {
  faers::GeneratorConfig config;
  config.quarter = quarter;
  config.n_reports = reports;
  config.seed = seed;
  faers::SyntheticGenerator generator(config);
  auto dataset = generator.Generate();
  MARAS_CHECK(dataset.ok()) << dataset.status().ToString();
  faers::Preprocessor preprocessor{faers::PreprocessOptions{}};
  auto pre = preprocessor.Process(*dataset);
  MARAS_CHECK(pre.ok()) << pre.status().ToString();
  return *std::move(pre);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <output-dir> [reports] [seed]\n", argv[0]);
    return 2;
  }
  const std::string out_dir = argv[1];
  const size_t reports = argc > 2 ? static_cast<size_t>(std::atoll(argv[2]))
                                  : 12000;
  const uint64_t seed =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 20140101;

  // Load the year; the report focuses on the latest quarter (Q4).
  std::vector<faers::PreprocessResult> year;
  std::vector<const faers::PreprocessResult*> year_ptrs;
  std::vector<std::string> labels;
  for (int q = 1; q <= 4; ++q) {
    year.push_back(PrepareQuarter(q, reports, seed));
    labels.push_back("2014Q" + std::to_string(q));
  }
  for (const auto& quarter : year) year_ptrs.push_back(&quarter);
  const faers::PreprocessResult& current = year.back();

  core::AnalyzerOptions options;
  options.mining.min_support = std::max<size_t>(6, reports / 4000);
  core::MarasAnalyzer analyzer(options);
  auto analysis = analyzer.Analyze(current);
  MARAS_CHECK(analysis.ok()) << analysis.status().ToString();
  core::ExclusivenessOptions scoring;
  auto ranked = core::RankMcacs(
      analysis->mcacs, core::RankingMethod::kExclusivenessConfidence,
      scoring);
  core::KnowledgeBase kb = core::CuratedKnowledgeBase();

  // ---- report.md -----------------------------------------------------
  core::ReportInputs report_inputs;
  report_inputs.title = "MARAS quarterly surveillance report — 2014 Q4";
  report_inputs.current = &current;
  report_inputs.analysis = &*analysis;
  report_inputs.ranked = &ranked;
  report_inputs.knowledge_base = &kb;
  std::vector<viz::LineChartRenderer::Series> all_series;
  for (const auto& known : faers::KnownInteractions()) {
    core::WatchlistEntry entry;
    entry.label = Join(known.drugs, std::string_view(" + "));
    entry.trend = core::TrackSignal(year_ptrs, labels, known.drugs,
                                    known.adrs);
    if (all_series.size() < 4) {
      viz::LineChartRenderer::Series series;
      series.name = known.drugs[0];
      for (const auto& row : entry.trend) {
        series.values.push_back(row.confidence);
      }
      all_series.push_back(std::move(series));
    }
    report_inputs.watchlist.push_back(std::move(entry));
  }
  auto md = core::GenerateMarkdownReport(report_inputs);
  MARAS_CHECK(md.ok()) << md.status().ToString();

  // ---- artifacts ------------------------------------------------------
  MARAS_CHECK(WriteStringToFile(out_dir + "/report.md", *md).ok());

  core::ExportOptions export_options;
  export_options.max_clusters = 50;
  std::string json_text = core::ExportAnalysisToJson(
      *analysis, current.items,
      core::RankingMethod::kExclusivenessConfidence, scoring,
      export_options);
  MARAS_CHECK(
      WriteStringToFile(out_dir + "/analysis.json", json_text).ok());

  viz::LineChartRenderer lines(viz::LineChartOptions{
      .y_min = 0.0, .y_max = 1.0, .y_label = "confidence"});
  MARAS_CHECK(lines
                  .Render(labels, all_series,
                          "Watched combinations, 2014 trend")
                  .WriteFile(out_dir + "/trend_watchlist.svg")
                  .ok());

  if (!ranked.empty()) {
    viz::ContextualGlyphRenderer glyph;
    viz::GlyphSpec spec =
        viz::GlyphSpecFromMcac(ranked[0].mcac, current.items);
    MARAS_CHECK(
        glyph.RenderZoom(spec).WriteFile(out_dir + "/top_glyph.svg").ok());
  }

  std::printf("wrote report.md, analysis.json, trend_watchlist.svg, "
              "top_glyph.svg to %s\n",
              out_dir.c_str());
  std::printf("clusters: %zu ranked; top signal: %s\n", ranked.size(),
              ranked.empty()
                  ? "(none)"
                  : core::RuleToString(ranked[0].mcac.target, current.items)
                        .c_str());
  return 0;
}
