// Generates a complete quarterly surveillance report — the artifact a
// drug-safety evaluator would circulate: top interaction signals with
// context, severity/novelty triage, disproportionality panels,
// quarter-over-quarter trends for watched combinations, a JSON export for
// the visual front end, and trend/glyph SVGs.
//
//   $ ./examples/surveillance_report <output-dir> [reports=12000] [seed=20140101]
//       [--deadline-ms=N] [--memory-budget-mb=N]
//       [--checkpoint-dir=DIR] [--resume] [--workers=N]
//
// Writes: report.md, analysis.json, trend_*.svg, top_glyph.svg
//
// The governance flags run the analysis through the resource-governed,
// checkpointed MultiQuarterPipeline: a deadline or memory budget stops a
// runaway run cooperatively (exit code 3) instead of hanging or OOMing,
// --checkpoint-dir snapshots each completed stage atomically, and --resume
// replays validated snapshots so an interrupted run picks up where it died.
//
// --workers=N (requires --checkpoint-dir) runs the crash-tolerant
// multi-process path instead: the shard supervisor spawns this same binary
// as worker processes (one per quarter, then N item-range mine shards; the
// --shard= flag marks a worker invocation), retries crashed or hung
// workers with deterministic backoff, and merges the checkpointed partials
// into the byte-identical single-process result.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/analyzer.h"
#include "core/disproportionality.h"
#include "core/export.h"
#include "core/knowledge_base.h"
#include "core/multi_quarter.h"
#include "core/report_generator.h"
#include "core/severity.h"
#include "core/shard_supervisor.h"
#include "faers/generator.h"
#include "faers/preprocess.h"
#include "util/delimited.h"
#include "util/logging.h"
#include "util/run_context.h"
#include "util/string_util.h"
#include "util/subprocess.h"
#include "viz/glyph.h"
#include "viz/linechart.h"

using namespace maras;

namespace {

faers::GeneratorConfig QuarterConfig(int quarter, size_t reports,
                                     uint64_t seed) {
  faers::GeneratorConfig config;
  config.quarter = quarter;
  config.n_reports = reports;
  config.seed = seed;
  return config;
}

faers::PreprocessResult PrepareQuarter(int quarter, size_t reports,
                                       uint64_t seed) {
  faers::SyntheticGenerator generator(QuarterConfig(quarter, reports, seed));
  auto dataset = generator.Generate();
  MARAS_CHECK(dataset.ok()) << dataset.status().ToString();
  faers::Preprocessor preprocessor{faers::PreprocessOptions{}};
  auto pre = preprocessor.Process(*dataset);
  MARAS_CHECK(pre.ok()) << pre.status().ToString();
  return *std::move(pre);
}

struct CliFlags {
  int64_t deadline_ms = 0;       // 0 = no deadline
  size_t memory_budget_mb = 0;   // 0 = no budget
  std::string checkpoint_dir;
  bool resume = false;
  size_t workers = 1;            // > 1 = multi-process shard supervisor
  std::string shard;             // non-empty = this process is a worker
  std::string chaos_exit;        // worker fault injection (tests)
  std::string chaos_hang;

  bool governed() const {
    return deadline_ms > 0 || memory_budget_mb > 0 ||
           !checkpoint_dir.empty() || workers > 1;
  }
};

bool ParseFlag(const std::string& arg, CliFlags* flags) {
  if (arg.rfind("--deadline-ms=", 0) == 0) {
    flags->deadline_ms = std::atoll(arg.c_str() + 14);
    return true;
  }
  if (arg.rfind("--memory-budget-mb=", 0) == 0) {
    flags->memory_budget_mb =
        static_cast<size_t>(std::atoll(arg.c_str() + 19));
    return true;
  }
  if (arg.rfind("--checkpoint-dir=", 0) == 0) {
    flags->checkpoint_dir = arg.substr(17);
    return true;
  }
  if (arg == "--resume") {
    flags->resume = true;
    return true;
  }
  if (arg.rfind("--workers=", 0) == 0) {
    flags->workers = static_cast<size_t>(std::atoll(arg.c_str() + 10));
    return true;
  }
  if (arg.rfind("--shard=", 0) == 0) {
    flags->shard = arg.substr(8);
    return true;
  }
  if (arg.rfind("--chaos-exit=", 0) == 0) {
    flags->chaos_exit = arg.substr(13);
    return true;
  }
  if (arg.rfind("--chaos-hang=", 0) == 0) {
    flags->chaos_hang = arg.substr(13);
    return true;
  }
  return false;
}

// The year's four synthetic quarters — workers rebuild exactly this corpus
// from the same (reports, seed) coordinates, so parent and child agree on
// every input byte without shipping data over a pipe.
std::vector<faers::QuarterDataset> BuildYear(size_t reports, uint64_t seed) {
  std::vector<faers::QuarterDataset> quarters;
  for (int q = 1; q <= 4; ++q) {
    faers::SyntheticGenerator generator(QuarterConfig(q, reports, seed));
    auto dataset = generator.Generate();
    MARAS_CHECK(dataset.ok()) << dataset.status().ToString();
    quarters.push_back(*std::move(dataset));
  }
  return quarters;
}

// Analyzer knobs shared by the single-process, supervisor, and worker
// paths; any drift here would break cross-mode byte-identity.
core::AnalyzerOptions MakeAnalyzerOptions(size_t reports, bool budgeted) {
  core::AnalyzerOptions analyzer;
  analyzer.mining.min_support = std::max<size_t>(6, reports / 4000);
  analyzer.mining.max_itemset_size = 7;
  // Under a budget, degrade (raise min_support, tag truncated) rather
  // than fail: a coarser report beats no report for a safety evaluator.
  analyzer.degradation.enabled = budgeted;
  return analyzer;
}

// A --shard= worker invocation: execute one shard, publish its checkpoint,
// exit. Spawned by the supervisor with this binary's own path.
int RunWorker(size_t reports, uint64_t seed, const CliFlags& flags) {
  auto spec = core::ParseShardArg(flags.shard);
  if (!spec.ok() || flags.checkpoint_dir.empty()) {
    std::fprintf(stderr, "bad worker invocation: %s\n",
                 spec.ok() ? "--checkpoint-dir is required"
                           : spec.status().ToString().c_str());
    return 2;
  }
  std::vector<faers::QuarterDataset> quarters = BuildYear(reports, seed);
  core::ShardWorkerConfig config;
  config.spec = *std::move(spec);
  config.checkpoint_dir = flags.checkpoint_dir;
  config.quarters = &quarters;
  config.analyzer = MakeAnalyzerOptions(reports, /*budgeted=*/false);
  config.chaos.exit_at = flags.chaos_exit;
  config.chaos.hang_at = flags.chaos_hang;
  maras::Status status = core::RunShardWorker(config);
  if (!status.ok()) {
    std::fprintf(stderr, "shard worker failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  return 0;
}

// The governed path: pooled multi-quarter analysis through the
// checkpointed, resource-governed pipeline — in-process by default, via
// the multi-process shard supervisor with --workers=N. Returns the
// process exit code.
int RunGoverned(const std::string& argv0, const std::string& out_dir,
                size_t reports, uint64_t seed, const CliFlags& flags) {
  std::vector<faers::QuarterDataset> quarters = BuildYear(reports, seed);

  CancellationToken cancel;
  MemoryBudget budget(flags.memory_budget_mb << 20);
  RunContext ctx;
  ctx.cancel = &cancel;
  if (flags.deadline_ms > 0) {
    ctx.deadline = Deadline::AfterMillis(flags.deadline_ms);
  }
  if (flags.memory_budget_mb > 0) ctx.budget = &budget;

  core::MultiQuarterOptions pipeline_options;
  pipeline_options.context = &ctx;
  pipeline_options.checkpoint_dir = flags.checkpoint_dir;
  pipeline_options.resume = flags.resume;

  core::AnalyzerOptions analyzer =
      MakeAnalyzerOptions(reports, ctx.budget != nullptr);

  core::ShardRunReport shard_report;
  auto analysis = [&]() -> maras::StatusOr<core::SurveillanceAnalysis> {
    if (flags.workers <= 1) {
      core::MultiQuarterPipeline pipeline(pipeline_options);
      return pipeline.RunAnalyzed(quarters, analyzer);
    }
    if (flags.checkpoint_dir.empty()) {
      return maras::Status::InvalidArgument(
          "--workers requires --checkpoint-dir (checkpoints are the "
          "worker/supervisor channel)");
    }
    core::ShardSupervisorOptions supervisor_options;
    supervisor_options.workers = flags.workers;
    supervisor_options.worker_command = {
        CurrentExecutablePath(argv0), out_dir, std::to_string(reports),
        std::to_string(seed), "--checkpoint-dir=" + flags.checkpoint_dir};
    core::ShardSupervisor supervisor(supervisor_options);
    return supervisor.RunAnalyzed(quarters, pipeline_options, analyzer,
                                  core::RankingMethod::kExclusivenessConfidence,
                                  &shard_report);
  }();
  if (!analysis.ok()) {
    const maras::Status& status = analysis.status();
    std::fprintf(stderr, "surveillance run stopped: %s\n",
                 status.ToString().c_str());
    return status.IsDeadlineExceeded() || status.IsResourceExhausted() ||
                   status.IsCancelled()
               ? 3
               : 1;
  }

  std::printf("pooled %zu/%zu quarters: %zu reports, %zu rules, "
              "%zu ranked MCACs (min_support=%zu%s)\n",
              analysis->run.quarters_loaded, quarters.size(),
              analysis->run.merged.transactions.size(),
              analysis->rules.size(), analysis->ranked.size(),
              analysis->min_support_used,
              analysis->truncated ? ", truncated" : "");
  if (analysis->stages_resumed > 0) {
    std::printf("resumed %zu stage(s) from %s\n", analysis->stages_resumed,
                flags.checkpoint_dir.c_str());
  }
  if (flags.workers > 1) {
    std::printf("sharded across %zu workers: %zu shards, %zu attempts, "
                "%zu retries, %zu quarantined\n",
                flags.workers, shard_report.shards, shard_report.attempts,
                shard_report.retries, shard_report.quarantined);
    for (const std::string& note : shard_report.notes) {
      std::printf("shard note: %s\n", note.c_str());
    }
  }
  for (const std::string& note : analysis->notes) {
    std::printf("note: %s\n", note.c_str());
  }
  if (ctx.budget != nullptr) {
    std::printf("memory budget: peak %.1f MiB of %.1f MiB\n",
                static_cast<double>(ctx.budget->peak()) / (1 << 20),
                static_cast<double>(ctx.budget->limit()) / (1 << 20));
  }

  core::AnalysisResult exportable;
  exportable.stats = analysis->stats;
  exportable.truncated = analysis->truncated;
  for (const auto& ranked : analysis->ranked) {
    exportable.mcacs.push_back(ranked.mcac);
  }
  core::ExportOptions export_options;
  export_options.max_clusters = 50;
  std::string json_text = core::ExportAnalysisToJson(
      exportable, analysis->run.merged.items,
      core::RankingMethod::kExclusivenessConfidence,
      core::ExclusivenessOptions{}, export_options);
  MARAS_CHECK(
      AtomicWriteStringToFile(out_dir + "/analysis.json", json_text).ok());
  std::printf("wrote analysis.json to %s\n", out_dir.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // A worker whose supervisor died mid-read must see EPIPE as a Status,
  // not die on SIGPIPE — and vice versa for the supervisor's pipe writes.
  IgnoreSigpipeProcessWide();
  CliFlags flags;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!ParseFlag(arg, &flags)) positional.push_back(std::move(arg));
  }
  if (positional.empty()) {
    std::fprintf(stderr,
                 "usage: %s <output-dir> [reports] [seed] [--deadline-ms=N] "
                 "[--memory-budget-mb=N] [--checkpoint-dir=DIR] [--resume] "
                 "[--workers=N]\n",
                 argv[0]);
    return 2;
  }
  const std::string out_dir = positional[0];
  const size_t reports =
      positional.size() > 1
          ? static_cast<size_t>(std::atoll(positional[1].c_str()))
          : 12000;
  const uint64_t seed =
      positional.size() > 2
          ? std::strtoull(positional[2].c_str(), nullptr, 10)
          : 20140101;

  if (!flags.shard.empty()) return RunWorker(reports, seed, flags);
  if (flags.governed()) {
    return RunGoverned(argv[0], out_dir, reports, seed, flags);
  }

  // Load the year; the report focuses on the latest quarter (Q4).
  std::vector<faers::PreprocessResult> year;
  std::vector<const faers::PreprocessResult*> year_ptrs;
  std::vector<std::string> labels;
  for (int q = 1; q <= 4; ++q) {
    year.push_back(PrepareQuarter(q, reports, seed));
    labels.push_back("2014Q" + std::to_string(q));
  }
  for (const auto& quarter : year) year_ptrs.push_back(&quarter);
  const faers::PreprocessResult& current = year.back();

  core::AnalyzerOptions options;
  options.mining.min_support = std::max<size_t>(6, reports / 4000);
  core::MarasAnalyzer analyzer(options);
  auto analysis = analyzer.Analyze(current);
  MARAS_CHECK(analysis.ok()) << analysis.status().ToString();
  core::ExclusivenessOptions scoring;
  auto ranked = core::RankMcacs(
      analysis->mcacs, core::RankingMethod::kExclusivenessConfidence,
      scoring);
  core::KnowledgeBase kb = core::CuratedKnowledgeBase();

  // ---- report.md -----------------------------------------------------
  core::ReportInputs report_inputs;
  report_inputs.title = "MARAS quarterly surveillance report — 2014 Q4";
  report_inputs.current = &current;
  report_inputs.analysis = &*analysis;
  report_inputs.ranked = &ranked;
  report_inputs.knowledge_base = &kb;
  std::vector<viz::LineChartRenderer::Series> all_series;
  for (const auto& known : faers::KnownInteractions()) {
    core::WatchlistEntry entry;
    entry.label = Join(known.drugs, std::string_view(" + "));
    entry.trend = core::TrackSignal(year_ptrs, labels, known.drugs,
                                    known.adrs);
    if (all_series.size() < 4) {
      viz::LineChartRenderer::Series series;
      series.name = known.drugs[0];
      for (const auto& row : entry.trend) {
        series.values.push_back(row.confidence);
      }
      all_series.push_back(std::move(series));
    }
    report_inputs.watchlist.push_back(std::move(entry));
  }
  auto md = core::GenerateMarkdownReport(report_inputs);
  MARAS_CHECK(md.ok()) << md.status().ToString();

  // ---- artifacts ------------------------------------------------------
  MARAS_CHECK(AtomicWriteStringToFile(out_dir + "/report.md", *md).ok());

  core::ExportOptions export_options;
  export_options.max_clusters = 50;
  std::string json_text = core::ExportAnalysisToJson(
      *analysis, current.items,
      core::RankingMethod::kExclusivenessConfidence, scoring,
      export_options);
  MARAS_CHECK(
      AtomicWriteStringToFile(out_dir + "/analysis.json", json_text).ok());

  viz::LineChartRenderer lines(viz::LineChartOptions{
      .y_min = 0.0, .y_max = 1.0, .y_label = "confidence"});
  MARAS_CHECK(lines
                  .Render(labels, all_series,
                          "Watched combinations, 2014 trend")
                  .WriteFile(out_dir + "/trend_watchlist.svg")
                  .ok());

  if (!ranked.empty()) {
    viz::ContextualGlyphRenderer glyph;
    viz::GlyphSpec spec =
        viz::GlyphSpecFromMcac(ranked[0].mcac, current.items);
    MARAS_CHECK(
        glyph.RenderZoom(spec).WriteFile(out_dir + "/top_glyph.svg").ok());
  }

  std::printf("wrote report.md, analysis.json, trend_watchlist.svg, "
              "top_glyph.svg to %s\n",
              out_dir.c_str());
  std::printf("clusters: %zu ranked; top signal: %s\n", ranked.size(),
              ranked.empty()
                  ? "(none)"
                  : core::RuleToString(ranked[0].mcac.target, current.items)
                        .c_str());
  return 0;
}
