// Quickstart: the MARAS pipeline on a handful of inline adverse-event
// reports — build reports, preprocess, mine closed drug-ADR associations,
// rank contextual clusters by exclusiveness, and drill back down to the
// supporting reports.
//
//   $ ./examples/quickstart

#include <cstdio>

#include "core/analyzer.h"
#include "faers/preprocess.h"
#include "faers/report.h"

using namespace maras;

namespace {

faers::Report MakeReport(uint64_t case_id, std::vector<std::string> drugs,
                         std::vector<std::string> reactions) {
  faers::Report report;
  report.case_id = case_id;
  report.type = faers::ReportType::kExpedited;
  report.drugs = std::move(drugs);
  report.reactions = std::move(reactions);
  return report;
}

}  // namespace

int main() {
  // 1. A small quarter of reports. Aspirin+warfarin cases bleed; each drug
  // alone is mostly reported with unrelated events — the signature of a
  // drug-drug interaction. Note the dirty names: the preprocessor fixes
  // "WARFRIN" (typo), "COUMADIN" (brand) and "ASPIRIN 100MG" (dose).
  faers::QuarterDataset quarter;
  quarter.year = 2014;
  quarter.quarter = 1;
  uint64_t id = 1;
  for (int i = 0; i < 6; ++i) {
    quarter.reports.push_back(
        MakeReport(id++, {"ASPIRIN 100MG", "WARFRIN"}, {"HAEMORRHAGE"}));
  }
  for (int i = 0; i < 10; ++i) {
    quarter.reports.push_back(MakeReport(id++, {"ASPIRIN"}, {"NAUSEA"}));
    quarter.reports.push_back(MakeReport(id++, {"COUMADIN"}, {"DIZZINESS"}));
  }
  // A decoy: two antacids taken together are reported with osteoporosis,
  // but so is each antacid alone — not an interaction.
  for (int i = 0; i < 6; ++i) {
    quarter.reports.push_back(
        MakeReport(id++, {"ZANTAC", "TUMS"}, {"OSTEOPOROSIS"}));
    quarter.reports.push_back(MakeReport(id++, {"ZANTAC"}, {"OSTEOPOROSIS"}));
    quarter.reports.push_back(MakeReport(id++, {"TUMS"}, {"OSTEOPOROSIS"}));
  }

  // 2. Preprocess: clean names, merge each case into one transaction.
  faers::Preprocessor preprocessor{faers::PreprocessOptions{}};
  auto pre = preprocessor.Process(quarter);
  if (!pre.ok()) {
    std::fprintf(stderr, "preprocess failed: %s\n",
                 pre.status().ToString().c_str());
    return 1;
  }
  std::printf("reports kept: %zu (fixed %zu misspellings, %zu aliases)\n",
              pre->stats.reports_kept, pre->stats.fuzzy_corrections,
              pre->stats.alias_resolutions);

  // 3. Mine closed multi-drug associations and build contextual clusters.
  core::AnalyzerOptions options;
  options.mining.min_support = 3;
  core::MarasAnalyzer analyzer(options);
  auto analysis = analyzer.Analyze(*pre);
  if (!analysis.ok()) {
    std::fprintf(stderr, "analysis failed: %s\n",
                 analysis.status().ToString().c_str());
    return 1;
  }
  std::printf("rule space: %llu total -> %llu drug=>ADR -> %llu MCACs\n",
              static_cast<unsigned long long>(analysis->stats.total_rules),
              static_cast<unsigned long long>(analysis->stats.filtered_rules),
              static_cast<unsigned long long>(analysis->stats.mcac_count));

  // 4. Rank by exclusiveness: the aspirin+warfarin interaction must beat
  // the antacid decoy even though the decoy's raw confidence is perfect.
  auto ranked = core::RankMcacs(analysis->mcacs,
                                core::RankingMethod::kExclusivenessConfidence,
                                core::ExclusivenessOptions{});
  std::printf("\nranked drug-drug interaction signals:\n");
  for (size_t i = 0; i < ranked.size(); ++i) {
    const auto& entry = ranked[i];
    std::printf("  %zu. %-50s  conf=%.2f  exclusiveness=%.3f\n", i + 1,
                core::RuleToString(entry.mcac.target, pre->items).c_str(),
                entry.mcac.target.confidence, entry.score);
    for (const auto& level : entry.mcac.levels) {
      for (const auto& context : level) {
        std::printf("       context: %-43s  conf=%.2f\n",
                    core::RuleToString(context, pre->items).c_str(),
                    context.confidence);
      }
    }
  }

  // 5. Drill down: which raw reports support the top signal?
  if (!ranked.empty()) {
    auto reports = core::SupportingReports(pre->transactions,
                                           pre->primary_ids,
                                           ranked.front().mcac.target);
    std::printf("\ntop signal is supported by %zu reports (primary ids:",
                reports.size());
    for (uint64_t pid : reports) std::printf(" %llu",
                                             static_cast<unsigned long long>(pid));
    std::printf(")\n");
  }
  return 0;
}
