// Walks through the paper's Section 5.4 case studies on a synthetic
// quarter: for each literature-validated drug-drug interaction, print the
// mined cluster, its contextual rules (why the combination — and not any
// single drug — explains the ADR), its exclusiveness rank, and the
// provenance note.
//
//   $ ./examples/case_studies [reports=25000] [seed=20140101]

#include <cstdio>
#include <cstdlib>
#include <set>

#include "core/analyzer.h"
#include "faers/generator.h"
#include "faers/preprocess.h"

using namespace maras;

int main(int argc, char** argv) {
  faers::GeneratorConfig config;
  config.quarter = 2;  // Case I was found in the 2014 Q2 data
  config.n_reports = argc > 1 ? static_cast<size_t>(std::atoll(argv[1]))
                              : 25000;
  config.seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 20140101;

  faers::SyntheticGenerator generator(config);
  auto dataset = generator.Generate();
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }
  faers::Preprocessor preprocessor{faers::PreprocessOptions{}};
  auto pre = preprocessor.Process(*dataset);
  if (!pre.ok()) {
    std::fprintf(stderr, "%s\n", pre.status().ToString().c_str());
    return 1;
  }
  core::AnalyzerOptions options;
  options.mining.min_support = 6;
  options.mining.max_itemset_size = 7;
  core::MarasAnalyzer analyzer(options);
  auto analysis = analyzer.Analyze(*pre);
  if (!analysis.ok()) {
    std::fprintf(stderr, "%s\n", analysis.status().ToString().c_str());
    return 1;
  }
  auto ranked = core::RankMcacs(analysis->mcacs,
                                core::RankingMethod::kExclusivenessConfidence,
                                core::ExclusivenessOptions{});
  std::printf("2014 Q%d: %zu reports, %zu ranked clusters\n\n",
              config.quarter, pre->transactions.size(), ranked.size());

  int missing = 0;
  for (const auto& known : faers::KnownInteractions()) {
    std::printf("=== %s ===\n", known.name.c_str());
    std::printf("%s\n", known.provenance.c_str());

    mining::Itemset drugs;
    bool resolvable = true;
    for (const auto& name : known.drugs) {
      auto id = pre->items.Lookup(name);
      if (!id.ok()) {
        resolvable = false;
        break;
      }
      drugs.push_back(*id);
    }
    std::set<mining::ItemId> adrs;
    for (const auto& name : known.adrs) {
      auto id = pre->items.Lookup(name);
      if (id.ok()) adrs.insert(*id);
    }
    if (!resolvable || adrs.empty()) {
      std::printf("  (vocabulary not present in this quarter)\n\n");
      ++missing;
      continue;
    }
    drugs = mining::MakeItemset(std::move(drugs));

    const core::RankedMcac* hit = nullptr;
    size_t rank = 0;
    for (size_t i = 0; i < ranked.size() && hit == nullptr; ++i) {
      const auto& target = ranked[i].mcac.target;
      if (!mining::IsSubset(drugs, target.drugs)) continue;
      for (auto id : target.adrs) {
        if (adrs.count(id) > 0) {
          hit = &ranked[i];
          rank = i;
          break;
        }
      }
    }
    if (hit == nullptr) {
      std::printf("  NOT RECOVERED at this scale\n\n");
      ++missing;
      continue;
    }
    std::printf("  recovered at exclusiveness rank %zu/%zu\n", rank + 1,
                ranked.size());
    std::printf("  %s   (supp=%zu conf=%.3f lift=%.2f excl=%.4f)\n",
                core::RuleToString(hit->mcac.target, pre->items).c_str(),
                hit->mcac.target.support, hit->mcac.target.confidence,
                hit->mcac.target.lift, hit->score);
    std::printf("  why it is exclusive — each drug alone:\n");
    for (const auto& rule : hit->mcac.levels[0]) {
      std::printf("    %-40s conf=%.3f\n",
                  pre->items.Render(rule.drugs).c_str(), rule.confidence);
    }
    std::printf("\n");
  }
  if (missing > 0) {
    std::printf("%d interaction(s) not recovered — raise the report count "
                "or lower min_support.\n",
                missing);
  }
  return missing == 0 ? 0 : 1;
}
