// The CLI counterpart of the MARAS visual interface (Section 4.1): load a
// FAERS ASCII quarter (as written by generate_faers, or any extract in the
// same layout), mine and rank the contextual clusters, then explore —
// search by drug or ADR, inspect a cluster's full context, list supporting
// reports, and export the cluster's contextual-glyph/bar-chart SVGs.
//
//   $ ./examples/interaction_explorer <faers-dir> <quarter> [command...]
//
// commands:
//   top [k]            print the k top-ranked interactions (default 10)
//   drug <NAME>        interactions involving the drug
//   adr <NAME>         interactions associated with the reaction
//   show <rank>        full MCAC context + supporting reports for a rank
//   render <rank> <f>  write glyph SVG (and <f>.bar.svg bar chart)

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/analyzer.h"
#include "core/disproportionality.h"
#include "core/explain.h"
#include "core/knowledge_base.h"
#include "core/severity.h"
#include "faers/ascii_format.h"
#include "faers/preprocess.h"
#include "text/normalizer.h"
#include "util/string_util.h"
#include "viz/barchart.h"
#include "viz/glyph.h"

using namespace maras;

namespace {

struct Session {
  faers::PreprocessResult pre;
  std::vector<core::RankedMcac> ranked;
};

void PrintEntry(const Session& session, size_t rank) {
  const auto& entry = session.ranked[rank];
  std::printf("%4zu. %-64s supp=%zu conf=%.3f excl=%.4f\n", rank + 1,
              core::RuleToString(entry.mcac.target, session.pre.items).c_str(),
              entry.mcac.target.support, entry.mcac.target.confidence,
              entry.score);
}

int CmdTop(const Session& session, size_t k) {
  for (size_t i = 0; i < std::min(k, session.ranked.size()); ++i) {
    PrintEntry(session, i);
  }
  return 0;
}

int CmdSearch(const Session& session, const std::string& raw, bool is_drug) {
  std::string name = text::NormalizeName(raw);
  auto id = session.pre.items.Lookup(name);
  if (!id.ok()) {
    std::printf("'%s' does not appear in this quarter\n", name.c_str());
    return 1;
  }
  size_t shown = 0;
  for (size_t i = 0; i < session.ranked.size(); ++i) {
    const auto& target = session.ranked[i].mcac.target;
    const auto& haystack = is_drug ? target.drugs : target.adrs;
    if (mining::Contains(haystack, *id)) {
      PrintEntry(session, i);
      ++shown;
    }
  }
  std::printf("%zu interactions involve [%s]\n", shown, name.c_str());
  return 0;
}

int CmdShow(const Session& session, size_t rank) {
  if (rank >= session.ranked.size()) {
    std::fprintf(stderr, "rank out of range (have %zu)\n",
                 session.ranked.size());
    return 1;
  }
  const auto& entry = session.ranked[rank];
  PrintEntry(session, rank);
  std::printf("  context (X => same ADRs, X ⊂ combination):\n");
  for (size_t level = 0; level < entry.mcac.levels.size(); ++level) {
    for (const auto& rule : entry.mcac.levels[level]) {
      std::printf("    [%zu drug%s] %-50s conf=%.3f lift=%.2f\n", level + 1,
                  level == 0 ? " " : "s",
                  session.pre.items.Render(rule.drugs).c_str(),
                  rule.confidence, rule.lift);
    }
  }
  // Score breakdown: why this cluster scored what it did.
  core::ScoreExplanation explanation = core::ExplainExclusiveness(
      entry.mcac, core::ExclusivenessOptions{});
  std::printf("%s", core::RenderExplanation(explanation, entry.mcac,
                                            session.pre.items)
                        .c_str());
  // Disproportionality panel (the classic surveillance statistics). Capped
  // ratios mean a zero comparator cell, i.e. effectively infinite.
  auto panel = core::EvaluateDisproportionality(session.pre.transactions,
                                                entry.mcac.target);
  auto ratio = [](double v) {
    return v >= core::kDisproportionalityCap ? std::string("inf")
                                             : maras::FormatDouble(v, 2);
  };
  std::printf("  disproportionality: PRR=%s ROR=%s chi2=%.1f IC=%.2f "
              "(Evans signal: %s)\n",
              ratio(panel.prr).c_str(), ratio(panel.ror).c_str(),
              panel.chi_squared, panel.information_component,
              panel.MeetsEvansCriteria() ? "yes" : "no");
  // Severity and novelty triage.
  core::Severity severity =
      core::MaxSeverity(entry.mcac.target, session.pre.items);
  core::KnowledgeBase kb = core::CuratedKnowledgeBase();
  std::printf("  severity: %s   novelty: %s\n", core::SeverityName(severity),
              core::NoveltyClassName(
                  kb.Classify(entry.mcac.target, session.pre.items)));
  for (const std::string& source :
       kb.MatchingSources(entry.mcac.target, session.pre.items)) {
    std::printf("    documented: %s\n", source.c_str());
  }
  auto reports = core::SupportingReports(session.pre.transactions,
                                         session.pre.primary_ids,
                                         entry.mcac.target);
  std::printf("  supporting reports (%zu):", reports.size());
  for (size_t i = 0; i < std::min<size_t>(12, reports.size()); ++i) {
    std::printf(" %llu", static_cast<unsigned long long>(reports[i]));
  }
  if (reports.size() > 12) std::printf(" ...");
  std::printf("\n");
  return 0;
}

// Lists top clusters whose ADRs reach the given severity ("severe" view of
// Section 4.1) or that the curated knowledge base does not already document
// ("novel" view).
int CmdSevere(const Session& session, size_t k) {
  size_t shown = 0;
  for (size_t i = 0; i < session.ranked.size() && shown < k; ++i) {
    core::Severity severity = core::MaxSeverity(
        session.ranked[i].mcac.target, session.pre.items);
    if (static_cast<int>(severity) <
        static_cast<int>(core::Severity::kSevere)) {
      continue;
    }
    std::printf("[%-6s] ", core::SeverityName(severity));
    PrintEntry(session, i);
    ++shown;
  }
  return 0;
}

int CmdNovel(const Session& session, size_t k) {
  core::KnowledgeBase kb = core::CuratedKnowledgeBase();
  size_t shown = 0;
  for (size_t i = 0; i < session.ranked.size() && shown < k; ++i) {
    auto klass =
        kb.Classify(session.ranked[i].mcac.target, session.pre.items);
    if (klass == core::NoveltyClass::kKnownInteraction) continue;
    std::printf("[%s] ", core::NoveltyClassName(klass));
    PrintEntry(session, i);
    ++shown;
  }
  return 0;
}

int CmdRender(const Session& session, size_t rank, const std::string& path) {
  if (rank >= session.ranked.size()) {
    std::fprintf(stderr, "rank out of range\n");
    return 1;
  }
  viz::GlyphSpec spec =
      viz::GlyphSpecFromMcac(session.ranked[rank].mcac, session.pre.items);
  viz::ContextualGlyphRenderer glyph;
  Status s = glyph.RenderZoom(spec).WriteFile(path);
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  viz::BarChartRenderer bars;
  Status s2 = bars.Render(spec).WriteFile(path + ".bar.svg");
  std::printf("wrote %s and %s.bar.svg (%s)\n", path.c_str(), path.c_str(),
              s2.ok() ? "ok" : s2.ToString().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: %s <faers-dir> <quarter> [top k | drug NAME | "
                 "adr NAME | show RANK | severe k | novel k | render RANK FILE]\n",
                 argv[0]);
    return 2;
  }
  auto dataset = faers::ReadAsciiQuarterFromDir(argv[1], 2014,
                                                std::atoi(argv[2]));
  if (!dataset.ok()) {
    std::fprintf(stderr, "load: %s\n", dataset.status().ToString().c_str());
    return 1;
  }
  faers::Preprocessor preprocessor{faers::PreprocessOptions{}};
  auto pre = preprocessor.Process(*dataset);
  if (!pre.ok()) {
    std::fprintf(stderr, "preprocess: %s\n", pre.status().ToString().c_str());
    return 1;
  }
  core::AnalyzerOptions options;
  options.mining.min_support = 6;
  options.mining.max_itemset_size = 7;
  core::MarasAnalyzer analyzer(options);
  auto analysis = analyzer.Analyze(*pre);
  if (!analysis.ok()) {
    std::fprintf(stderr, "analyze: %s\n",
                 analysis.status().ToString().c_str());
    return 1;
  }
  Session session{*std::move(pre),
                  core::RankMcacs(analysis->mcacs,
                                  core::RankingMethod::kExclusivenessConfidence,
                                  core::ExclusivenessOptions{})};
  std::printf("%zu reports -> %zu ranked interactions\n",
              session.pre.transactions.size(), session.ranked.size());

  std::string command = argc > 3 ? argv[3] : "top";
  if (command == "top") {
    return CmdTop(session, argc > 4 ? static_cast<size_t>(std::atoll(argv[4]))
                                    : 10);
  }
  if (command == "severe") {
    return CmdSevere(session, argc > 4
                                  ? static_cast<size_t>(std::atoll(argv[4]))
                                  : 10);
  }
  if (command == "novel") {
    return CmdNovel(session, argc > 4
                                 ? static_cast<size_t>(std::atoll(argv[4]))
                                 : 10);
  }
  if (command == "drug" && argc > 4) return CmdSearch(session, argv[4], true);
  if (command == "adr" && argc > 4) return CmdSearch(session, argv[4], false);
  if (command == "show" && argc > 4) {
    return CmdShow(session, static_cast<size_t>(std::atoll(argv[4])) - 1);
  }
  if (command == "render" && argc > 5) {
    return CmdRender(session, static_cast<size_t>(std::atoll(argv[4])) - 1,
                     argv[5]);
  }
  std::fprintf(stderr, "unknown or incomplete command '%s'\n",
               command.c_str());
  return 2;
}
