#include "mining/profile.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace maras::mining {
namespace {

TEST(ProfileTest, EmptyDatabase) {
  TransactionDatabase db;
  DatabaseProfile profile = ProfileDatabase(db);
  EXPECT_EQ(profile.transactions, 0u);
  EXPECT_EQ(profile.distinct_items, 0u);
  EXPECT_DOUBLE_EQ(profile.density, 0.0);
}

TEST(ProfileTest, HandComputed) {
  TransactionDatabase db;
  db.Add({1, 2, 3});
  db.Add({1, 2});
  db.Add({1});
  DatabaseProfile profile = ProfileDatabase(db);
  EXPECT_EQ(profile.transactions, 3u);
  EXPECT_EQ(profile.distinct_items, 3u);
  EXPECT_EQ(profile.total_item_occurrences, 6u);
  EXPECT_NEAR(profile.mean_transaction_length, 2.0, 1e-12);
  EXPECT_EQ(profile.max_transaction_length, 3u);
  EXPECT_NEAR(profile.density, 6.0 / 9.0, 1e-12);
  EXPECT_NEAR(profile.top_item_frequency, 1.0, 1e-12);  // item 1 everywhere
}

TEST(ProfileTest, ZipfSkewShowsInHeadShare) {
  maras::Rng rng(3);
  ZipfTable zipf(400, 1.2);
  TransactionDatabase zipf_db, uniform_db;
  for (int t = 0; t < 2000; ++t) {
    Itemset a, b;
    for (int i = 0; i < 4; ++i) {
      a.push_back(static_cast<ItemId>(zipf.Sample(&rng)));
      b.push_back(static_cast<ItemId>(rng.Uniform(400)));
    }
    zipf_db.Add(std::move(a));
    uniform_db.Add(std::move(b));
  }
  DatabaseProfile zipf_profile = ProfileDatabase(zipf_db);
  DatabaseProfile uniform_profile = ProfileDatabase(uniform_db);
  EXPECT_GT(zipf_profile.top_percentile_occurrence_share,
            3.0 * uniform_profile.top_percentile_occurrence_share);
  EXPECT_GT(zipf_profile.top_item_frequency,
            uniform_profile.top_item_frequency);
}

TEST(ProfileTest, RenderContainsAllFields) {
  TransactionDatabase db;
  db.Add({1, 2});
  std::string text = RenderProfile(ProfileDatabase(db));
  EXPECT_NE(text.find("transactions: 1"), std::string::npos);
  EXPECT_NE(text.find("distinct items: 2"), std::string::npos);
  EXPECT_NE(text.find("density:"), std::string::npos);
  EXPECT_NE(text.find("top-item frequency:"), std::string::npos);
}

}  // namespace
}  // namespace maras::mining
