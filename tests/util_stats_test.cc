#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace maras::stats {
namespace {

TEST(StatsTest, MeanVarianceStdDev) {
  std::vector<double> v{2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(Mean(v), 5.0);
  EXPECT_DOUBLE_EQ(Variance(v), 4.0);
  EXPECT_DOUBLE_EQ(StdDev(v), 2.0);
  EXPECT_NEAR(SampleStdDev(v), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(StatsTest, EmptyInputsAreZero) {
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Variance({}), 0.0);
  EXPECT_DOUBLE_EQ(SampleStdDev({}), 0.0);
  EXPECT_DOUBLE_EQ(SampleStdDev({1.0}), 0.0);
  EXPECT_DOUBLE_EQ(Min({}), 0.0);
  EXPECT_DOUBLE_EQ(Max({}), 0.0);
  EXPECT_DOUBLE_EQ(Median({}), 0.0);
}

TEST(StatsTest, MinMax) {
  std::vector<double> v{3, -1, 7, 2};
  EXPECT_DOUBLE_EQ(Min(v), -1.0);
  EXPECT_DOUBLE_EQ(Max(v), 7.0);
}

TEST(StatsTest, QuantileInterpolates) {
  std::vector<double> v{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.5), 25.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0 / 3.0), 20.0);
  EXPECT_DOUBLE_EQ(Median({5, 1, 9}), 5.0);
}

TEST(StatsTest, QuantileUnsortedInput) {
  EXPECT_DOUBLE_EQ(Quantile({40, 10, 30, 20}, 0.5), 25.0);
}

TEST(StatsTest, PearsonCorrelation) {
  std::vector<double> x{1, 2, 3, 4, 5};
  std::vector<double> y_pos{2, 4, 6, 8, 10};
  std::vector<double> y_neg{10, 8, 6, 4, 2};
  EXPECT_NEAR(PearsonCorrelation(x, y_pos), 1.0, 1e-12);
  EXPECT_NEAR(PearsonCorrelation(x, y_neg), -1.0, 1e-12);
  std::vector<double> flat{3, 3, 3, 3, 3};
  EXPECT_DOUBLE_EQ(PearsonCorrelation(x, flat), 0.0);
  EXPECT_DOUBLE_EQ(PearsonCorrelation(x, {1.0}), 0.0);  // length mismatch
}

TEST(WilsonTest, KnownValue) {
  // 40/50 at 95%: standard worked example, interval ≈ [0.669, 0.887].
  Interval ci = WilsonInterval(40, 50);
  EXPECT_NEAR(ci.lower, 0.669, 0.005);
  EXPECT_NEAR(ci.upper, 0.887, 0.005);
}

TEST(WilsonTest, CoversProportion) {
  for (size_t successes : {0u, 10u, 25u, 49u, 50u}) {
    Interval ci = WilsonInterval(successes, 50);
    double p = static_cast<double>(successes) / 50.0;
    EXPECT_LE(ci.lower, p + 1e-12);
    EXPECT_GE(ci.upper, p - 1e-12);
    EXPECT_GE(ci.lower, 0.0);
    EXPECT_LE(ci.upper, 1.0);
  }
}

TEST(WilsonTest, ExtremesStayInsideUnitInterval) {
  Interval all = WilsonInterval(50, 50);
  EXPECT_LT(all.lower, 1.0);  // never claims certainty
  EXPECT_DOUBLE_EQ(all.upper, 1.0);
  Interval none = WilsonInterval(0, 50);
  EXPECT_DOUBLE_EQ(none.lower, 0.0);
  EXPECT_GT(none.upper, 0.0);
}

TEST(WilsonTest, WidthShrinksWithSampleSize) {
  Interval small = WilsonInterval(7, 10);
  Interval large = WilsonInterval(700, 1000);
  EXPECT_GT(small.upper - small.lower, large.upper - large.lower);
}

TEST(WilsonTest, ZeroTrialsIsVacuous) {
  Interval ci = WilsonInterval(0, 0);
  EXPECT_DOUBLE_EQ(ci.lower, 0.0);
  EXPECT_DOUBLE_EQ(ci.upper, 1.0);
}

}  // namespace
}  // namespace maras::stats
