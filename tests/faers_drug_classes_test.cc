#include "faers/drug_classes.h"

#include "faers/vocabulary.h"

#include <gtest/gtest.h>

#include <set>

#include "core/analyzer.h"
#include "test_util.h"

namespace maras::faers {
namespace {

TEST(ClassMapTest, CuratedLookups) {
  ClassMap map = ClassMap::Curated();
  EXPECT_EQ(map.Lookup("ASPIRIN"), "NSAID");
  EXPECT_EQ(map.Lookup("WARFARIN"), "ANTICOAGULANT");
  EXPECT_EQ(map.Lookup("PRILOSEC"), "PPI");
  EXPECT_EQ(map.Lookup("DRUG00042"), std::nullopt);
}

TEST(ClassMapTest, CuratedClassesReferenceCuratedDrugs) {
  std::set<std::string> drugs(CuratedDrugNames().begin(),
                              CuratedDrugNames().end());
  for (const DrugClassEntry& entry : CuratedDrugClasses()) {
    EXPECT_TRUE(drugs.count(entry.drug) > 0) << entry.drug;
    EXPECT_FALSE(entry.drug_class.empty());
  }
}

TEST(ClassMapTest, AddOverrides) {
  ClassMap map;
  map.Add("X", "CLASS1");
  map.Add("X", "CLASS2");
  EXPECT_EQ(map.Lookup("X"), "CLASS2");
  EXPECT_EQ(map.size(), 1u);
}

PreprocessResult SmallCorpus() {
  // Two different NSAID × anticoagulant pairs, each too weak alone.
  maras::test::MiniCorpus corpus;
  corpus.Add({{"ASPIRIN", "WARFARIN"}, {"HAEMORRHAGE"}}, 3);
  corpus.Add({{"IBUPROFEN", "RIVAROXABAN"}, {"HAEMORRHAGE"}}, 3);
  corpus.Add({{"ASPIRIN"}, {"NAUSEA"}}, 10);
  corpus.Add({{"IBUPROFEN"}, {"HEADACHE"}}, 10);
  corpus.Add({{"WARFARIN"}, {"DIZZINESS"}}, 10);
  corpus.Add({{"RIVAROXABAN"}, {"RASH"}}, 10);
  corpus.Add({{"DRUG00042"}, {"NAUSEA"}}, 5);  // unclassified
  PreprocessResult result;
  result.items = std::move(corpus.items);
  // MiniCorpus::db can't be moved member-wise; rebuild transactions.
  for (const auto& t : corpus.db.transactions()) {
    result.transactions.Add(t);
    result.primary_ids.push_back(result.primary_ids.size() + 1000);
    result.demographics.push_back(CaseDemographics{});
  }
  return result;
}

TEST(AggregateTest, RewritesDrugsToClasses) {
  PreprocessResult input = SmallCorpus();
  auto output = AggregateToClasses(input, ClassMap::Curated());
  ASSERT_TRUE(output.ok());
  EXPECT_TRUE(output->items.Contains("CLASS:NSAID"));
  EXPECT_TRUE(output->items.Contains("CLASS:ANTICOAGULANT"));
  EXPECT_FALSE(output->items.Contains("ASPIRIN"));
  // Unclassified drugs keep their own names.
  EXPECT_TRUE(output->items.Contains("DRUG00042"));
  // ADRs pass through untouched.
  EXPECT_TRUE(output->items.Contains("HAEMORRHAGE"));
  EXPECT_EQ(output->transactions.size(), input.transactions.size());
  EXPECT_EQ(output->primary_ids, input.primary_ids);
}

TEST(AggregateTest, ClassLevelSupportPoolsMembers) {
  PreprocessResult input = SmallCorpus();
  auto output = AggregateToClasses(input, ClassMap::Curated());
  ASSERT_TRUE(output.ok());
  auto nsaid = output->items.Lookup("CLASS:NSAID");
  auto anticoag = output->items.Lookup("CLASS:ANTICOAGULANT");
  ASSERT_TRUE(nsaid.ok());
  ASSERT_TRUE(anticoag.ok());
  // NSAID appears in 3+3 pair reports + 10+10 singles = 26.
  EXPECT_EQ(output->transactions.ItemSupport(*nsaid), 26u);
  // The class pair pools both drug pairs: support 6.
  EXPECT_EQ(output->transactions.Support(
                mining::MakeItemset({*nsaid, *anticoag})),
            6u);
}

TEST(AggregateTest, ClassLevelSignalBecomesMineable) {
  PreprocessResult input = SmallCorpus();
  // At drug level with min_support 5, neither pair is frequent...
  core::AnalyzerOptions options;
  options.mining.min_support = 5;
  core::MarasAnalyzer analyzer(options);
  auto drug_level = analyzer.Analyze(input);
  ASSERT_TRUE(drug_level.ok());
  for (const auto& mcac : drug_level->mcacs) {
    EXPECT_LT(mcac.target.drugs.size(), 2u)
        << "unexpected drug-level pair cluster";
  }
  // ...but the pooled class-level pair is.
  auto class_level_input = AggregateToClasses(input, ClassMap::Curated());
  ASSERT_TRUE(class_level_input.ok());
  auto class_level = analyzer.Analyze(*class_level_input);
  ASSERT_TRUE(class_level.ok());
  bool found = false;
  auto nsaid = class_level_input->items.Lookup("CLASS:NSAID");
  auto anticoag = class_level_input->items.Lookup("CLASS:ANTICOAGULANT");
  ASSERT_TRUE(nsaid.ok());
  ASSERT_TRUE(anticoag.ok());
  for (const auto& mcac : class_level->mcacs) {
    if (mcac.target.drugs == mining::MakeItemset({*nsaid, *anticoag})) {
      found = true;
      EXPECT_EQ(mcac.target.support, 6u);
      EXPECT_DOUBLE_EQ(mcac.target.confidence, 1.0);
    }
  }
  EXPECT_TRUE(found) << "class-level NSAID+ANTICOAGULANT cluster not mined";
}

TEST(AggregateTest, DuplicateClassMentionsCollapse) {
  maras::test::MiniCorpus corpus;
  // Two NSAIDs in one report -> a single CLASS:NSAID item.
  corpus.Add({{"ASPIRIN", "IBUPROFEN"}, {"NAUSEA"}}, 1);
  PreprocessResult input;
  input.items = std::move(corpus.items);
  for (const auto& t : corpus.db.transactions()) {
    input.transactions.Add(t);
    input.primary_ids.push_back(1);
    input.demographics.push_back(CaseDemographics{});
  }
  auto output = AggregateToClasses(input, ClassMap::Curated());
  ASSERT_TRUE(output.ok());
  EXPECT_EQ(output->transactions.transaction(0).size(), 2u);  // class + ADR
}

}  // namespace
}  // namespace maras::faers
