#include "util/json.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace maras::json {
namespace {

TEST(JsonParseTest, Scalars) {
  EXPECT_TRUE(Parse("null")->is_null());
  EXPECT_TRUE(Parse("true")->as_bool());
  EXPECT_FALSE(Parse("false")->as_bool());
  EXPECT_DOUBLE_EQ(Parse("42")->as_number(), 42.0);
  EXPECT_DOUBLE_EQ(Parse("-3.5e2")->as_number(), -350.0);
  EXPECT_EQ(Parse("\"hi\"")->as_string(), "hi");
}

TEST(JsonParseTest, Containers) {
  auto v = Parse("[1, \"two\", [true], {\"k\": null}]");
  ASSERT_TRUE(v.ok());
  const auto& array = v->as_array();
  ASSERT_EQ(array.size(), 4u);
  EXPECT_DOUBLE_EQ(array[0].as_number(), 1.0);
  EXPECT_EQ(array[1].as_string(), "two");
  EXPECT_TRUE(array[2].as_array()[0].as_bool());
  EXPECT_TRUE(array[3].Find("k")->is_null());
}

TEST(JsonParseTest, NestedObjectLookup) {
  auto v = Parse(R"({"a": {"b": {"c": 7}}})");
  ASSERT_TRUE(v.ok());
  const Value* c = v->FindPath({"a", "b", "c"});
  ASSERT_NE(c, nullptr);
  EXPECT_DOUBLE_EQ(c->as_number(), 7.0);
  EXPECT_EQ(v->FindPath({"a", "x"}), nullptr);
  EXPECT_EQ(v->FindPath({"a", "b", "c", "d"}), nullptr);
}

TEST(JsonParseTest, StringEscapes) {
  auto v = Parse(R"("a\"b\\c\nd\teA")");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->as_string(), "a\"b\\c\nd\teA");
}

TEST(JsonParseTest, UnicodeEscapeUtf8) {
  auto v = Parse(R"("\u00e9\u20ac")");  // é and €
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->as_string(), "\xC3\xA9\xE2\x82\xAC");
}

TEST(JsonParseTest, WhitespaceTolerated) {
  auto v = Parse("  {\n\t\"a\" : [ 1 , 2 ] \r\n}  ");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->Find("a")->as_array().size(), 2u);
}

TEST(JsonParseTest, Malformed) {
  for (const char* bad :
       {"", "{", "[1,", "{\"a\":}", "tru", "\"unterminated", "[1 2]",
        "{\"a\" 1}", "01a", "{'single': 1}", "[1],[2]", "nan",
        "\"bad \\x escape\"", "\"\\u00g0\""}) {
    auto v = Parse(bad);
    EXPECT_FALSE(v.ok()) << "input: " << bad;
    EXPECT_TRUE(v.status().IsCorruption()) << bad;
  }
}

TEST(JsonParseTest, ControlCharacterRejected) {
  std::string s = "\"a\x01b\"";
  EXPECT_FALSE(Parse(s).ok());
}

TEST(JsonParseTest, DepthLimit) {
  std::string deep(200, '[');
  deep += std::string(200, ']');
  EXPECT_FALSE(Parse(deep).ok());
  std::string fine(50, '[');
  fine += std::string(50, ']');
  EXPECT_TRUE(Parse(fine).ok());
}

TEST(JsonSerializeTest, Compact) {
  Value v(Value::Object{{"b", Value(2)}, {"a", Value(Value::Array{
                                             Value(1), Value("x")})}});
  // Keys serialize in sorted order -> deterministic output.
  EXPECT_EQ(Serialize(v), R"({"a":[1,"x"],"b":2})");
}

TEST(JsonSerializeTest, EscapesInOutput) {
  Value v(std::string("line\nbreak \"quoted\""));
  EXPECT_EQ(Serialize(v), R"("line\nbreak \"quoted\"")");
}

TEST(JsonSerializeTest, IntegersWithoutDecimalPoint) {
  EXPECT_EQ(Serialize(Value(12345)), "12345");
  EXPECT_EQ(Serialize(Value(0.5)), "0.5");
}

TEST(JsonSerializeTest, EmptyContainers) {
  EXPECT_EQ(Serialize(Value(Value::Array{})), "[]");
  EXPECT_EQ(Serialize(Value(Value::Object{})), "{}");
}

TEST(JsonRoundTripTest, ParseSerializeParseStable) {
  const char* docs[] = {
      R"({"results":[{"id":"1","vals":[1,2.5,-3]},{"id":"2","flag":true}]})",
      R"([null, [], {}, "", 0])",
      R"({"nested":{"a":{"b":[{"c":1}]}}})",
  };
  for (const char* doc : docs) {
    auto first = Parse(doc);
    ASSERT_TRUE(first.ok()) << doc;
    std::string serialized = Serialize(*first);
    auto second = Parse(serialized);
    ASSERT_TRUE(second.ok()) << serialized;
    EXPECT_EQ(Serialize(*second), serialized);
  }
}

TEST(JsonRoundTripTest, PrettyOutputReparses) {
  auto v = Parse(R"({"a":[1,{"b":"c"}],"d":null})");
  ASSERT_TRUE(v.ok());
  std::string pretty = Serialize(*v, /*pretty=*/true);
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  auto reparsed = Parse(pretty);
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(Serialize(*reparsed), Serialize(*v));
}

// Fuzz-ish robustness: random byte mutations of a valid document must never
// crash — they either parse or return Corruption.
TEST(JsonFuzzTest, MutationsNeverCrash) {
  const std::string base =
      R"({"results":[{"safetyreportid":"1","patient":{"drug":[{"medicinalproduct":"ASPIRIN"}]}}]})";
  maras::Rng rng(616);
  for (int trial = 0; trial < 500; ++trial) {
    std::string mutated = base;
    size_t edits = 1 + rng.Uniform(4);
    for (size_t e = 0; e < edits; ++e) {
      size_t pos = rng.Uniform(mutated.size());
      switch (rng.Uniform(3)) {
        case 0:
          mutated[pos] = static_cast<char>(32 + rng.Uniform(95));
          break;
        case 1:
          mutated.erase(pos, 1);
          break;
        default:
          mutated.insert(pos, 1, static_cast<char>(32 + rng.Uniform(95)));
          break;
      }
      // assign(1, 'x') instead of = "x": GCC 12's -Wrestrict false-positives
      // (PR105651) on the inlined const char* replace path.
      if (mutated.empty()) mutated.assign(1, 'x');
    }
    auto v = Parse(mutated);  // must not crash
    if (!v.ok()) {
      EXPECT_TRUE(v.status().IsCorruption());
    }
  }
}

}  // namespace
}  // namespace maras::json
