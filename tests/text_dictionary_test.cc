#include "text/dictionary.h"

#include <gtest/gtest.h>

namespace maras::text {
namespace {

Dictionary MakeDict() {
  Dictionary dict;
  dict.AddCanonical("ASPIRIN");
  dict.AddCanonical("WARFARIN");
  dict.AddCanonical("IBUPROFEN");
  dict.AddCanonical("NEXIUM");
  EXPECT_TRUE(dict.AddAlias("COUMADIN", "WARFARIN").ok());
  EXPECT_TRUE(dict.AddAlias("ADVIL", "IBUPROFEN").ok());
  return dict;
}

TEST(DictionaryTest, ExactMatch) {
  Dictionary dict = MakeDict();
  auto match = dict.Resolve("ASPIRIN", 1);
  EXPECT_EQ(match.kind, Dictionary::MatchKind::kExact);
  EXPECT_EQ(match.canonical, "ASPIRIN");
}

TEST(DictionaryTest, AliasMatch) {
  Dictionary dict = MakeDict();
  auto match = dict.Resolve("COUMADIN", 1);
  EXPECT_EQ(match.kind, Dictionary::MatchKind::kAlias);
  EXPECT_EQ(match.canonical, "WARFARIN");
}

TEST(DictionaryTest, FuzzyMatchOneEdit) {
  Dictionary dict = MakeDict();
  auto match = dict.Resolve("WARFRIN", 1);  // dropped 'A'
  EXPECT_EQ(match.kind, Dictionary::MatchKind::kFuzzy);
  EXPECT_EQ(match.canonical, "WARFARIN");
  EXPECT_EQ(match.distance, 1u);
}

TEST(DictionaryTest, FuzzyTransposition) {
  Dictionary dict = MakeDict();
  auto match = dict.Resolve("NEXUIM", 1);
  EXPECT_EQ(match.kind, Dictionary::MatchKind::kFuzzy);
  EXPECT_EQ(match.canonical, "NEXIUM");
}

TEST(DictionaryTest, NoMatchBeyondDistance) {
  Dictionary dict = MakeDict();
  auto match = dict.Resolve("METFORMIN", 1);
  EXPECT_EQ(match.kind, Dictionary::MatchKind::kNone);
}

TEST(DictionaryTest, ZeroDistanceDisablesFuzzy) {
  Dictionary dict = MakeDict();
  auto match = dict.Resolve("WARFRIN", 0);
  EXPECT_EQ(match.kind, Dictionary::MatchKind::kNone);
}

TEST(DictionaryTest, AddCanonicalIdempotent) {
  Dictionary dict;
  dict.AddCanonical("X");
  dict.AddCanonical("X");
  EXPECT_EQ(dict.size(), 1u);
}

TEST(DictionaryTest, AliasEqualCanonicalRejected) {
  Dictionary dict;
  EXPECT_TRUE(dict.AddAlias("A", "A").IsInvalidArgument());
}

TEST(DictionaryTest, AliasRegistersCanonicalImplicitly) {
  Dictionary dict;
  ASSERT_TRUE(dict.AddAlias("TYLENOL", "ACETAMINOPHEN").ok());
  EXPECT_TRUE(dict.Contains("ACETAMINOPHEN"));
  EXPECT_FALSE(dict.Contains("TYLENOL"));  // aliases are not canonical
}

TEST(DictionaryTest, DeterministicTieBreak) {
  Dictionary dict;
  dict.AddCanonical("ABCD");
  dict.AddCanonical("ABCE");
  // "ABCF" is distance 1 from both; the lexicographically smaller wins.
  auto match = dict.Resolve("ABCF", 1);
  EXPECT_EQ(match.kind, Dictionary::MatchKind::kFuzzy);
  EXPECT_EQ(match.canonical, "ABCD");
}

TEST(DictionaryTest, PrefersSmallerDistance) {
  Dictionary dict;
  dict.AddCanonical("AAAB");   // distance 2 from query
  dict.AddCanonical("AAAAX");  // distance 1 from query
  auto match = dict.Resolve("AAAAA", 2);
  EXPECT_EQ(match.canonical, "AAAAX");
  EXPECT_EQ(match.distance, 1u);
}

TEST(DictionaryTest, FuzzySearchCrossesLengthBuckets) {
  Dictionary dict;
  dict.AddCanonical("PROGRAF");
  // Query one char longer than the canonical entry.
  auto match = dict.Resolve("PROGRAFF", 1);
  EXPECT_EQ(match.kind, Dictionary::MatchKind::kFuzzy);
  EXPECT_EQ(match.canonical, "PROGRAF");
}

}  // namespace
}  // namespace maras::text
