#include "text/normalizer.h"

#include <gtest/gtest.h>

namespace maras::text {
namespace {

TEST(NormalizerTest, UppercasesAndTrims) {
  EXPECT_EQ(NormalizeName("  aspirin  "), "ASPIRIN");
}

TEST(NormalizerTest, StripsPunctuation) {
  EXPECT_EQ(NormalizeName("ZOLPIDEM-TARTRATE"), "ZOLPIDEM TARTRATE");
  EXPECT_EQ(NormalizeName("TYLENOL (UNKNOWN)"), "TYLENOL");
  EXPECT_EQ(NormalizeName("A/B,C;D"), "A B C D");
}

TEST(NormalizerTest, CollapsesWhitespace) {
  EXPECT_EQ(NormalizeName("ZOLEDRONIC   ACID"), "ZOLEDRONIC ACID");
}

TEST(NormalizerTest, StripsDoseTokens) {
  EXPECT_EQ(NormalizeName("WARFARIN 5MG"), "WARFARIN");
  EXPECT_EQ(NormalizeName("ASPIRIN 100MG TABLET"), "ASPIRIN");
  EXPECT_EQ(NormalizeName("NEXIUM 0.5ML INJECTION"), "NEXIUM");
  EXPECT_EQ(NormalizeName("PROGRAF CAPSULES"), "PROGRAF");
}

TEST(NormalizerTest, NeverEmptiesNameEntirely) {
  // A name that is all dose tokens keeps its content rather than vanishing.
  EXPECT_EQ(NormalizeName("10MG TABLET"), "10MG TABLET");
}

TEST(NormalizerTest, OptionsDisableSteps) {
  NormalizerOptions opts;
  opts.uppercase = false;
  opts.strip_dose_tokens = false;
  opts.strip_punctuation = false;
  opts.collapse_whitespace = false;
  EXPECT_EQ(NormalizeName("aspirin 5MG", opts), "aspirin 5MG");
}

TEST(NormalizerTest, IdempotentOnCanonicalNames) {
  for (const char* name :
       {"ASPIRIN", "ZOLEDRONIC ACID", "OSTEONECROSIS OF JAW",
        "GRANULOCYTE COLONY-STIMULATING FACTOR NOS"}) {
    std::string once = NormalizeName(name);
    EXPECT_EQ(NormalizeName(once), once) << name;
  }
}

TEST(DoseTokenTest, RecognizesDoseForms) {
  EXPECT_TRUE(IsDoseOrFormToken("10MG"));
  EXPECT_TRUE(IsDoseOrFormToken("0.5ML"));
  EXPECT_TRUE(IsDoseOrFormToken("250MCG"));
  EXPECT_TRUE(IsDoseOrFormToken("TABLET"));
  EXPECT_TRUE(IsDoseOrFormToken("CAPSULES"));
  EXPECT_TRUE(IsDoseOrFormToken("INJECTION"));
  EXPECT_TRUE(IsDoseOrFormToken("100"));
}

TEST(DoseTokenTest, RejectsDrugNames) {
  EXPECT_FALSE(IsDoseOrFormToken("ASPIRIN"));
  EXPECT_FALSE(IsDoseOrFormToken("MG"));       // unit without number
  EXPECT_FALSE(IsDoseOrFormToken("B12"));      // letter-first
  EXPECT_FALSE(IsDoseOrFormToken(""));
}

}  // namespace
}  // namespace maras::text
