#include "core/knowledge_base.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace maras::core {
namespace {

using maras::test::MiniCorpus;

DrugAdrRule MakeRule(MiniCorpus* corpus, const std::vector<std::string>& drugs,
                     const std::vector<std::string>& adrs) {
  DrugAdrRule rule;
  rule.drugs = corpus->Drugs(drugs);
  rule.adrs = corpus->Adrs(adrs);
  return rule;
}

KnowledgeBase SmallKb() {
  KnowledgeBase kb;
  kb.AddInteraction({"ASPIRIN", "WARFARIN"}, {"HAEMORRHAGE"}, "Chan 1995");
  kb.AddInteraction({"PREVACID", "NEXIUM"}, {"OSTEOPOROSIS"}, "Drugs.com");
  return kb;
}

TEST(KnowledgeBaseTest, KnownInteractionDetected) {
  MiniCorpus corpus;
  KnowledgeBase kb = SmallKb();
  DrugAdrRule rule =
      MakeRule(&corpus, {"ASPIRIN", "WARFARIN"}, {"HAEMORRHAGE"});
  EXPECT_EQ(kb.Classify(rule, corpus.items),
            NoveltyClass::kKnownInteraction);
}

TEST(KnowledgeBaseTest, DocumentedPairInsideMinedTripleIsKnown) {
  MiniCorpus corpus;
  KnowledgeBase kb = SmallKb();
  DrugAdrRule rule = MakeRule(
      &corpus, {"ASPIRIN", "WARFARIN", "METFORMIN"}, {"HAEMORRHAGE"});
  EXPECT_EQ(kb.Classify(rule, corpus.items),
            NoveltyClass::kKnownInteraction);
}

TEST(KnowledgeBaseTest, NovelAdrForKnownCombination) {
  MiniCorpus corpus;
  KnowledgeBase kb = SmallKb();
  DrugAdrRule rule = MakeRule(&corpus, {"ASPIRIN", "WARFARIN"}, {"NAUSEA"});
  EXPECT_EQ(kb.Classify(rule, corpus.items),
            NoveltyClass::kNovelAdrForKnownCombination);
}

TEST(KnowledgeBaseTest, NovelCombination) {
  MiniCorpus corpus;
  KnowledgeBase kb = SmallKb();
  DrugAdrRule rule = MakeRule(&corpus, {"ZOMETA", "PRILOSEC"}, {"PAIN"});
  EXPECT_EQ(kb.Classify(rule, corpus.items),
            NoveltyClass::kNovelCombination);
}

TEST(KnowledgeBaseTest, PartialDrugOverlapIsNotKnown) {
  MiniCorpus corpus;
  KnowledgeBase kb = SmallKb();
  // Only one of the two documented drugs appears.
  DrugAdrRule rule =
      MakeRule(&corpus, {"ASPIRIN", "METFORMIN"}, {"HAEMORRHAGE"});
  EXPECT_EQ(kb.Classify(rule, corpus.items),
            NoveltyClass::kNovelCombination);
}

TEST(KnowledgeBaseTest, MatchingSources) {
  MiniCorpus corpus;
  KnowledgeBase kb = SmallKb();
  DrugAdrRule rule =
      MakeRule(&corpus, {"ASPIRIN", "WARFARIN"}, {"HAEMORRHAGE"});
  auto sources = kb.MatchingSources(rule, corpus.items);
  ASSERT_EQ(sources.size(), 1u);
  EXPECT_EQ(sources[0], "Chan 1995");
  DrugAdrRule unrelated = MakeRule(&corpus, {"ZOMETA"}, {"PAIN"});
  EXPECT_TRUE(kb.MatchingSources(unrelated, corpus.items).empty());
}

TEST(KnowledgeBaseTest, FilterNovelDropsKnownOnly) {
  MiniCorpus corpus;
  KnowledgeBase kb = SmallKb();
  Mcac known;
  known.target = MakeRule(&corpus, {"ASPIRIN", "WARFARIN"}, {"HAEMORRHAGE"});
  Mcac novel_adr;
  novel_adr.target = MakeRule(&corpus, {"ASPIRIN", "WARFARIN"}, {"NAUSEA"});
  Mcac novel;
  novel.target = MakeRule(&corpus, {"ZOMETA", "PRILOSEC"}, {"PAIN"});
  auto filtered = kb.FilterNovel({known, novel_adr, novel}, corpus.items);
  EXPECT_EQ(filtered.size(), 2u);
}

TEST(KnowledgeBaseTest, CuratedBaseCoversPaperCases) {
  KnowledgeBase kb = CuratedKnowledgeBase();
  EXPECT_GE(kb.size(), 7u);
  MiniCorpus corpus;
  DrugAdrRule case1 = MakeRule(&corpus, {"IBUPROFEN", "METAMIZOLE"},
                               {"ACUTE RENAL FAILURE"});
  EXPECT_EQ(kb.Classify(case1, corpus.items),
            NoveltyClass::kKnownInteraction);
}

TEST(KnowledgeBaseTest, EmptyBaseClassifiesEverythingNovel) {
  MiniCorpus corpus;
  KnowledgeBase kb;
  DrugAdrRule rule = MakeRule(&corpus, {"A", "B"}, {"X"});
  EXPECT_EQ(kb.Classify(rule, corpus.items),
            NoveltyClass::kNovelCombination);
}

TEST(KnowledgeBaseTest, NoveltyNames) {
  EXPECT_STREQ(NoveltyClassName(NoveltyClass::kKnownInteraction),
               "known interaction");
  EXPECT_STREQ(NoveltyClassName(NoveltyClass::kNovelAdrForKnownCombination),
               "novel ADR for known combination");
  EXPECT_STREQ(NoveltyClassName(NoveltyClass::kNovelCombination),
               "novel combination");
}

}  // namespace
}  // namespace maras::core
