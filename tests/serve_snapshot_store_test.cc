// SnapshotStore publication/fallback tests. Three ctest populations:
//   SnapshotStoreTest.*            — spec behavior, default pass
//   SnapshotStoreChaosTest.*       — deterministic fault injection
//                                    (kill-mid-publish, torn/corrupt
//                                    generations), chaos-smoke label
//   SnapshotStoreConcurrencyTest.* — readers racing publishes, run under
//                                    tsan via the tsan-mining preset

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "core/checkpoint.h"
#include "faers/corruptor.h"
#include "serve/query_engine.h"
#include "serve/snapshot_store.h"
#include "serve_test_util.h"
#include "util/delimited.h"

namespace maras::serve {
namespace {

using ::maras::test::InputsOf;
using ::maras::test::MakeServeFixture;
using ::maras::test::ServeFixture;

std::string FreshDir(const std::string& tag) {
  const std::string dir = ::testing::TempDir() + "/snapstore_" + tag;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

std::string GenPath(const std::string& dir, uint64_t generation) {
  return dir + "/" + SnapshotStore::GenerationFileName(generation);
}

SnapshotStore::Options OptionsFor(const std::string& dir) {
  SnapshotStore::Options options;
  options.dir = dir;
  return options;
}

TEST(SnapshotStoreTest, PublishThenAcquire) {
  const std::string dir = FreshDir("roundtrip");
  const ServeFixture fixture = MakeServeFixture();
  SnapshotStore store(OptionsFor(dir));
  ASSERT_TRUE(store.Publish(InputsOf(fixture)).ok());
  EXPECT_EQ(store.current_generation(), 1u);
  auto snapshot = store.Acquire();
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  EXPECT_EQ((*snapshot)->counts().signals, fixture.ranked.size());
  EXPECT_TRUE(store.diagnostics().empty());
}

TEST(SnapshotStoreTest, PublishCreatesMissingDirectory) {
  const std::string dir = FreshDir("mkdir") + "/nested/store";
  ASSERT_FALSE(std::filesystem::exists(dir));
  const ServeFixture fixture = MakeServeFixture();
  SnapshotStore store(OptionsFor(dir));
  ASSERT_TRUE(store.Publish(InputsOf(fixture)).ok());
  auto snapshot = store.Acquire();
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  EXPECT_EQ((*snapshot)->counts().signals, fixture.ranked.size());
}

TEST(SnapshotStoreTest, EmptyDirectoryIsNotFound) {
  SnapshotStore store(OptionsFor(FreshDir("empty")));
  EXPECT_TRUE(store.Acquire().status().IsNotFound());
}

TEST(SnapshotStoreTest, SecondPublishSwapsWhileOldReadersKeepTheirs) {
  const std::string dir = FreshDir("swap");
  const ServeFixture small = MakeServeFixture();
  const ServeFixture big = MakeServeFixture(/*extended=*/true);
  ASSERT_NE(small.ranked.size(), big.ranked.size());

  SnapshotStore store(OptionsFor(dir));
  ASSERT_TRUE(store.Publish(InputsOf(small)).ok());
  auto old_reader = store.Acquire();
  ASSERT_TRUE(old_reader.ok());

  ASSERT_TRUE(store.Publish(InputsOf(big)).ok());
  EXPECT_EQ(store.current_generation(), 2u);
  auto new_reader = store.Acquire();
  ASSERT_TRUE(new_reader.ok());
  EXPECT_EQ((*new_reader)->counts().signals, big.ranked.size());
  // The refcounted old generation is still fully usable.
  EXPECT_EQ((*old_reader)->counts().signals, small.ranked.size());
  auto ranked = (*old_reader)->Materialize(0);
  EXPECT_TRUE(ranked.ok());
}

TEST(SnapshotStoreTest, StrayTmpFilesAreNeverCandidates) {
  const std::string dir = FreshDir("straytmp");
  const ServeFixture fixture = MakeServeFixture();
  SnapshotStore store(OptionsFor(dir));
  ASSERT_TRUE(store.Publish(InputsOf(fixture)).ok());
  // A crash inside the atomic-write helper leaves a *.tmp — precisely what
  // rename-based publication protects against. It must be invisible.
  ASSERT_TRUE(maras::WriteStringToFile(GenPath(dir, 2) + ".tmp", "garbage")
                  .ok());
  SnapshotStore fresh(OptionsFor(dir));
  auto snapshot = fresh.Acquire();
  ASSERT_TRUE(snapshot.ok());
  EXPECT_EQ(fresh.current_generation(), 1u);
}

TEST(SnapshotStoreTest, DanglingCurrentFallsBackToScan) {
  const std::string dir = FreshDir("dangling");
  const ServeFixture fixture = MakeServeFixture();
  SnapshotStore store(OptionsFor(dir));
  ASSERT_TRUE(store.Publish(InputsOf(fixture)).ok());
  ASSERT_TRUE(store.Publish(InputsOf(fixture)).ok());
  // CURRENT names generation 3, which does not exist.
  ASSERT_TRUE(maras::AtomicWriteStringToFile(
                  dir + "/CURRENT", SnapshotStore::GenerationFileName(3))
                  .ok());
  SnapshotStore fresh(OptionsFor(dir));
  auto snapshot = fresh.Acquire();
  ASSERT_TRUE(snapshot.ok());
  EXPECT_EQ(fresh.current_generation(), 2u);
  EXPECT_FALSE(fresh.diagnostics().empty());
  // Nothing existed to quarantine.
  EXPECT_FALSE(std::filesystem::exists(GenPath(dir, 3) + ".quarantined"));
}

TEST(SnapshotStoreChaosTest, CorruptLastGenerationFallsBackAndQuarantines) {
  const std::string dir = FreshDir("fallback");
  const ServeFixture fixture = MakeServeFixture();
  SnapshotStore store(OptionsFor(dir));
  ASSERT_TRUE(store.Publish(InputsOf(fixture)).ok());
  ASSERT_TRUE(store.Publish(InputsOf(fixture)).ok());

  // Flip one byte in the middle of the committed generation 2.
  auto content = maras::ReadFileToString(GenPath(dir, 2));
  ASSERT_TRUE(content.ok());
  std::string damaged = *content;
  damaged[damaged.size() / 2] =
      static_cast<char>(damaged[damaged.size() / 2] ^ 0x40);
  ASSERT_TRUE(
      maras::AtomicWriteStringToFile(GenPath(dir, 2), damaged).ok());

  SnapshotStore fresh(OptionsFor(dir));
  auto snapshot = fresh.Acquire();
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  EXPECT_EQ(fresh.current_generation(), 1u);
  EXPECT_EQ((*snapshot)->counts().signals, fixture.ranked.size());
  // Diagnosis names the rejected generation; the bad file is quarantined.
  ASSERT_FALSE(fresh.diagnostics().empty());
  EXPECT_NE(fresh.diagnostics()[0].find("generation 2"), std::string::npos);
  EXPECT_FALSE(std::filesystem::exists(GenPath(dir, 2)));
  EXPECT_TRUE(std::filesystem::exists(GenPath(dir, 2) + ".quarantined"));
}

TEST(SnapshotStoreChaosTest, TruncatedLastGenerationAtEveryStride) {
  const ServeFixture fixture = MakeServeFixture();
  auto full = EncodeSignalSnapshot(InputsOf(fixture));
  ASSERT_TRUE(full.ok());
  for (size_t cut = 0; cut < full->size(); cut += 97) {
    const std::string dir =
        FreshDir("torn" + std::to_string(cut));
    SnapshotStore store(OptionsFor(dir));
    ASSERT_TRUE(store.Publish(InputsOf(fixture)).ok());
    ASSERT_TRUE(store.Publish(InputsOf(fixture)).ok());
    ASSERT_TRUE(faers::TruncateFileAt(GenPath(dir, 2), cut).ok());
    SnapshotStore fresh(OptionsFor(dir));
    auto snapshot = fresh.Acquire();
    ASSERT_TRUE(snapshot.ok()) << "cut at " << cut << ": "
                               << snapshot.status().ToString();
    EXPECT_EQ(fresh.current_generation(), 1u) << "cut at " << cut;
  }
}

TEST(SnapshotStoreChaosTest, TornLastGenerationMidRecord) {
  const std::string dir = FreshDir("tearmid");
  const ServeFixture fixture = MakeServeFixture();
  SnapshotStore store(OptionsFor(dir));
  ASSERT_TRUE(store.Publish(InputsOf(fixture)).ok());
  ASSERT_TRUE(store.Publish(InputsOf(fixture)).ok());
  auto content = maras::ReadFileToString(GenPath(dir, 2));
  ASSERT_TRUE(content.ok());
  // TearFileMidRecord picks a seeded cut strictly inside a "row" (for a
  // binary image: between two 0x0a bytes). Whether the image has enough
  // newline bytes to tear is deterministic for a fixed corpus; fall back to
  // a plain truncation when it does not.
  auto torn = faers::TearFileMidRecord(*content, /*seed=*/11);
  if (torn.ok()) {
    ASSERT_TRUE(
        maras::AtomicWriteStringToFile(GenPath(dir, 2), torn->content).ok());
  } else {
    ASSERT_TRUE(
        faers::TruncateFileAt(GenPath(dir, 2), content->size() / 3).ok());
  }
  SnapshotStore fresh(OptionsFor(dir));
  auto snapshot = fresh.Acquire();
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  EXPECT_EQ(fresh.current_generation(), 1u);
}

TEST(SnapshotStoreChaosTest, AllGenerationsBadIsNotFoundWithDiagnosis) {
  const std::string dir = FreshDir("allbad");
  const ServeFixture fixture = MakeServeFixture();
  SnapshotStore store(OptionsFor(dir));
  ASSERT_TRUE(store.Publish(InputsOf(fixture)).ok());
  ASSERT_TRUE(store.Publish(InputsOf(fixture)).ok());
  ASSERT_TRUE(faers::TruncateFileAt(GenPath(dir, 1), 10).ok());
  ASSERT_TRUE(faers::TruncateFileAt(GenPath(dir, 2), 40).ok());
  SnapshotStore fresh(OptionsFor(dir));
  EXPECT_TRUE(fresh.Acquire().status().IsNotFound());
  EXPECT_GE(fresh.diagnostics().size(), 2u);
  EXPECT_TRUE(std::filesystem::exists(GenPath(dir, 1) + ".quarantined"));
  EXPECT_TRUE(std::filesystem::exists(GenPath(dir, 2) + ".quarantined"));
}

TEST(SnapshotStoreChaosTest, KillAtEveryPublishStageLeavesAServableStore) {
  const ServeFixture fixture = MakeServeFixture();
  const struct {
    std::string_view stage;
    uint64_t expected_generation;  // what a fresh store must serve
    bool second_file_expected;     // generation-2 file present on disk
  } kCases[] = {
      {"publish.pre-snapshot-write", 1, false},
      {"publish.post-snapshot-write", 1, true},
      {"publish.pre-current-write", 1, true},
      // After CURRENT commits, the crash happens post-publication.
      {"publish.post-current-write", 2, true},
  };
  for (const auto& kase : kCases) {
    const std::string dir =
        FreshDir("kill_" + std::string(kase.stage.substr(8)));
    SnapshotStore::Options options = OptionsFor(dir);
    SnapshotStore setup(options);
    ASSERT_TRUE(setup.Publish(InputsOf(fixture)).ok());

    options.stage_hook = [&kase](std::string_view stage) {
      return stage != kase.stage;
    };
    SnapshotStore killer(options);
    EXPECT_TRUE(killer.Publish(InputsOf(fixture)).IsCancelled())
        << kase.stage;

    EXPECT_EQ(std::filesystem::exists(GenPath(dir, 2)),
              kase.second_file_expected)
        << kase.stage;
    // A process starting over the directory the "crash" left behind must
    // come up serving the committed generation.
    SnapshotStore recovered(OptionsFor(dir));
    auto snapshot = recovered.Acquire();
    ASSERT_TRUE(snapshot.ok())
        << kase.stage << ": " << snapshot.status().ToString();
    EXPECT_EQ(recovered.current_generation(), kase.expected_generation)
        << kase.stage;
    EXPECT_TRUE(recovered.diagnostics().empty()) << kase.stage;
  }
}

TEST(SnapshotStoreConcurrencyTest, ReadersRacePublishes) {
  const std::string dir = FreshDir("race");
  const ServeFixture small = MakeServeFixture();
  const ServeFixture big = MakeServeFixture(/*extended=*/true);
  SnapshotStore store(OptionsFor(dir));
  ASSERT_TRUE(store.Publish(InputsOf(small)).ok());

  constexpr int kReaders = 4;
  constexpr int kPublishes = 6;
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&store, &stop, &failures] {
      while (!stop.load(std::memory_order_acquire)) {
        auto snapshot = store.Acquire();
        if (!snapshot.ok()) {
          failures.fetch_add(1);
          continue;
        }
        auto engine = QueryEngine::Create(*snapshot);
        if (!engine.ok()) {
          failures.fetch_add(1);
          continue;
        }
        for (uint32_t s : engine->TopK(3)) {
          if (!engine->Materialize(s).ok()) failures.fetch_add(1);
        }
      }
    });
  }
  for (int p = 0; p < kPublishes; ++p) {
    const ServeFixture& fixture = (p % 2 == 0) ? big : small;
    ASSERT_TRUE(store.Publish(InputsOf(fixture)).ok());
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(store.current_generation(), 1u + kPublishes);
}

// Regression for the generation-selection race publish_mu_ now closes: two
// publishers entering Publish at once could both list the same highest
// generation, both write snapshot-N+1, and one publish silently vanished
// under the other's overwrite. With the whole-publish lock, N concurrent
// publishers must all succeed, produce N distinct generation files, and
// leave the store serving generation N.
TEST(SnapshotStoreConcurrencyTest, ConcurrentPublishersGetDistinctGenerations) {
  const std::string dir = FreshDir("pubrace");
  const ServeFixture fixture = MakeServeFixture();
  SnapshotStore store(OptionsFor(dir));

  constexpr int kPublishers = 4;
  constexpr int kPerThread = 3;
  std::atomic<int> failures{0};
  std::vector<std::thread> publishers;
  publishers.reserve(kPublishers);
  for (int p = 0; p < kPublishers; ++p) {
    publishers.emplace_back([&store, &fixture, &failures] {
      for (int i = 0; i < kPerThread; ++i) {
        if (!store.Publish(InputsOf(fixture)).ok()) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : publishers) t.join();

  constexpr uint64_t kTotal = uint64_t{kPublishers} * kPerThread;
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(store.current_generation(), kTotal);
  // Every publish must have landed in its own generation file — a lost
  // publish shows up here as a gap.
  for (uint64_t g = 1; g <= kTotal; ++g) {
    EXPECT_TRUE(std::filesystem::exists(GenPath(dir, g))) << "generation " << g;
  }
}

// The status accessors (current_generation, diagnostics) read state that
// Publish/Refresh mutate; under the shared-mutex split they take the shared
// capability while a publisher holds the exclusive one. Racing them is what
// the tsan preset is for — unguarded reads of generation_ or current_ would
// light up here.
TEST(SnapshotStoreConcurrencyTest, StatusAccessorsRacePublishes) {
  const std::string dir = FreshDir("statusrace");
  const ServeFixture fixture = MakeServeFixture();
  SnapshotStore store(OptionsFor(dir));
  ASSERT_TRUE(store.Publish(InputsOf(fixture)).ok());

  constexpr int kPollers = 3;
  constexpr int kPublishes = 5;
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> pollers;
  pollers.reserve(kPollers);
  for (int r = 0; r < kPollers; ++r) {
    pollers.emplace_back([&store, &stop, &failures] {
      uint64_t last_gen = 0;
      while (!stop.load(std::memory_order_acquire)) {
        const uint64_t gen = store.current_generation();
        if (gen < last_gen) failures.fetch_add(1);  // must be monotone
        last_gen = gen;
        // Diagnostics snapshot must be internally consistent (a torn read
        // of the vector would crash or trip TSan).
        const std::vector<std::string> diags = store.diagnostics();
        for (const std::string& d : diags) {
          if (d.empty()) failures.fetch_add(1);
        }
        if (!store.Acquire().ok()) failures.fetch_add(1);
      }
    });
  }
  for (int p = 0; p < kPublishes; ++p) {
    ASSERT_TRUE(store.Publish(InputsOf(fixture)).ok());
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : pollers) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(store.current_generation(), 1u + kPublishes);
}

}  // namespace
}  // namespace maras::serve
