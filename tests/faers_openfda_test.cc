#include "faers/openfda.h"

#include <gtest/gtest.h>

#include "faers/generator.h"
#include "faers/preprocess.h"
#include "util/random.h"

namespace maras::faers {
namespace {

constexpr const char* kSampleJson = R"({
  "meta": {"disclaimer": "ignored by the reader"},
  "results": [
    {
      "safetyreportid": "10012345",
      "safetyreportversion": "2",
      "fulfillexpeditecriteria": "1",
      "occurcountry": "US",
      "patient": {
        "patientsex": "2",
        "patientonsetage": "63",
        "drug": [
          {"medicinalproduct": "ASPIRIN", "drugcharacterization": "1"},
          {"medicinalproduct": "WARFARIN"}
        ],
        "reaction": [{"reactionmeddrapt": "HAEMORRHAGE"}]
      }
    },
    {
      "safetyreportid": "10012346",
      "fulfillexpeditecriteria": "2",
      "patient": {
        "patientsex": "1",
        "drug": [{"medicinalproduct": "NEXIUM"}],
        "reaction": [{"reactionmeddrapt": "NAUSEA"},
                     {"reactionmeddrapt": "HEADACHE"}]
      }
    },
    {
      "safetyreportid": "10012347",
      "patient": {"drug": [], "reaction": []}
    }
  ]
})";

TEST(OpenFdaReadTest, ParsesSampleEvents) {
  OpenFdaReadStats stats;
  auto dataset = ReadOpenFdaEvents(kSampleJson, 2014, 1, &stats);
  ASSERT_TRUE(dataset.ok());
  EXPECT_EQ(stats.results_total, 3u);
  EXPECT_EQ(stats.reports_loaded, 2u);
  EXPECT_EQ(stats.skipped_incomplete, 1u);
  ASSERT_EQ(dataset->reports.size(), 2u);

  const Report& r1 = dataset->reports[0];
  EXPECT_EQ(r1.case_id, 10012345u);
  EXPECT_EQ(r1.case_version, 2u);
  EXPECT_EQ(r1.type, ReportType::kExpedited);
  EXPECT_EQ(r1.sex, Sex::kFemale);
  EXPECT_DOUBLE_EQ(r1.age, 63.0);
  EXPECT_EQ(r1.country, "US");
  EXPECT_EQ(r1.drugs, (std::vector<std::string>{"ASPIRIN", "WARFARIN"}));
  EXPECT_EQ(r1.reactions, (std::vector<std::string>{"HAEMORRHAGE"}));

  const Report& r2 = dataset->reports[1];
  EXPECT_EQ(r2.type, ReportType::kPeriodic);
  EXPECT_EQ(r2.sex, Sex::kMale);
  EXPECT_LT(r2.age, 0.0);  // unreported
  EXPECT_EQ(r2.case_version, 1u);  // defaulted
}

TEST(OpenFdaReadTest, MissingResultsIsCorruption) {
  EXPECT_TRUE(ReadOpenFdaEvents(R"({"meta": {}})", 2014, 1)
                  .status()
                  .IsCorruption());
  EXPECT_TRUE(ReadOpenFdaEvents(R"({"results": 5})", 2014, 1)
                  .status()
                  .IsCorruption());
  EXPECT_TRUE(ReadOpenFdaEvents("not json", 2014, 1).status().IsCorruption());
}

TEST(OpenFdaReadTest, NumberTypedFieldsTolerated) {
  // Some exports carry numeric ids; the reader coerces.
  const char* json = R"({"results":[{
      "safetyreportid": 777,
      "patient": {
        "drug": [{"medicinalproduct": "TUMS"}],
        "reaction": [{"reactionmeddrapt": "NAUSEA"}]
      }}]})";
  auto dataset = ReadOpenFdaEvents(json, 2014, 2);
  ASSERT_TRUE(dataset.ok());
  ASSERT_EQ(dataset->reports.size(), 1u);
  EXPECT_EQ(dataset->reports[0].case_id, 777u);
}

TEST(OpenFdaRoundTripTest, WriteThenReadPreservesReports) {
  GeneratorConfig config;
  config.n_reports = 300;
  config.n_drugs = 150;
  config.n_adrs = 80;
  SyntheticGenerator generator(config);
  auto original = generator.Generate();
  ASSERT_TRUE(original.ok());

  auto json_text = WriteOpenFdaEvents(*original);
  ASSERT_TRUE(json_text.ok());
  OpenFdaReadStats stats;
  auto parsed = ReadOpenFdaEvents(*json_text, 2014, 1, &stats);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->reports.size(), original->reports.size());
  EXPECT_EQ(stats.skipped_incomplete, 0u);
  for (size_t i = 0; i < parsed->reports.size(); i += 23) {
    EXPECT_EQ(parsed->reports[i].case_id, original->reports[i].case_id);
    EXPECT_EQ(parsed->reports[i].drugs, original->reports[i].drugs);
    EXPECT_EQ(parsed->reports[i].reactions, original->reports[i].reactions);
    EXPECT_EQ(parsed->reports[i].type, original->reports[i].type);
    EXPECT_EQ(parsed->reports[i].sex, original->reports[i].sex);
  }
}

TEST(OpenFdaRoundTripTest, RoundTrippedDataIsAnalyzable) {
  GeneratorConfig config;
  config.n_reports = 400;
  config.n_drugs = 150;
  config.n_adrs = 80;
  SyntheticGenerator generator(config);
  auto original = generator.Generate();
  ASSERT_TRUE(original.ok());
  auto json_text = WriteOpenFdaEvents(*original);
  ASSERT_TRUE(json_text.ok());
  auto parsed = ReadOpenFdaEvents(*json_text, 2014, 1);
  ASSERT_TRUE(parsed.ok());
  Preprocessor preprocessor{PreprocessOptions{}};
  auto pre = preprocessor.Process(*parsed);
  ASSERT_TRUE(pre.ok());
  EXPECT_GT(pre->stats.reports_kept, 200u);
}

// Robustness: mutated JSON must produce Status, never crash.
TEST(OpenFdaFuzzTest, MutatedInputNeverCrashes) {
  GeneratorConfig config;
  config.n_reports = 20;
  config.n_drugs = 50;
  config.n_adrs = 30;
  SyntheticGenerator generator(config);
  auto dataset = generator.Generate();
  ASSERT_TRUE(dataset.ok());
  auto json_text = WriteOpenFdaEvents(*dataset);
  ASSERT_TRUE(json_text.ok());
  maras::Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    std::string mutated = *json_text;
    for (size_t e = 0; e < 3; ++e) {
      size_t pos = rng.Uniform(mutated.size());
      mutated[pos] = static_cast<char>(32 + rng.Uniform(95));
    }
    auto result = ReadOpenFdaEvents(mutated, 2014, 1);  // must not crash
    (void)result;
  }
}

}  // namespace
}  // namespace maras::faers
