#include "core/analyzer.h"

#include <gtest/gtest.h>

#include "mining/closed_itemsets.h"
#include "test_util.h"

namespace maras::core {
namespace {

using maras::test::AsthmaCorpus;
using maras::test::MiniCorpus;

AnalyzerOptions SmallOptions() {
  AnalyzerOptions options;
  options.mining.min_support = 2;
  options.mining.max_itemset_size = 6;
  return options;
}

TEST(AnalyzerTest, FindsInjectedTripleAsMcac) {
  MiniCorpus corpus = AsthmaCorpus();
  MarasAnalyzer analyzer(SmallOptions());
  auto result = analyzer.Analyze(corpus.items, corpus.db);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->stats.total_rules, result->stats.filtered_rules);
  EXPECT_GE(result->stats.filtered_rules, result->stats.mcac_count);
  mining::Itemset triple = corpus.Drugs({"XOLAIR", "SINGULAIR", "PREDNISONE"});
  bool found = false;
  for (const Mcac& mcac : result->mcacs) {
    if (mcac.target.drugs == triple) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(AnalyzerTest, EveryMcacTargetIsClosedAndMultiDrug) {
  MiniCorpus corpus = AsthmaCorpus();
  MarasAnalyzer analyzer(SmallOptions());
  auto result = analyzer.Analyze(corpus.items, corpus.db);
  ASSERT_TRUE(result.ok());
  ASSERT_GT(result->mcacs.size(), 0u);
  for (const Mcac& mcac : result->mcacs) {
    EXPECT_GE(mcac.target.drugs.size(), 2u);
    EXPECT_GE(mcac.target.adrs.size(), 1u);
    EXPECT_TRUE(
        mining::IsClosedInDatabase(corpus.db, mcac.target.CompleteItemset()))
        << RuleToString(mcac.target, corpus.items);
    EXPECT_GE(mcac.target.support, 2u);
  }
}

TEST(AnalyzerTest, RuleSpaceShrinksMonotonically) {
  // Fig. 5.1's invariant: total >= filtered >= closed-mixed >= MCACs.
  MiniCorpus corpus = AsthmaCorpus();
  corpus.Add({{"ZANTAC", "TUMS", "MYLANTA"}, {"OSTEOPOROSIS"}}, 6);
  corpus.Add({{"ZANTAC"}, {"OSTEOPOROSIS"}}, 12);
  MarasAnalyzer analyzer(SmallOptions());
  auto result = analyzer.Analyze(corpus.items, corpus.db);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->stats.total_rules, result->stats.filtered_rules);
  EXPECT_GE(result->stats.filtered_rules, result->stats.closed_mixed);
  EXPECT_GE(result->stats.closed_mixed, result->stats.mcac_count);
  EXPECT_GT(result->stats.mcac_count, 0u);
}

TEST(AnalyzerTest, MinConfidenceFiltersTargets) {
  MiniCorpus corpus = AsthmaCorpus();
  // Add a weak multi-drug association (low confidence).
  corpus.Add({{"A", "B"}, {"NAUSEA"}}, 2);
  corpus.Add({{"A", "B"}, {"HEADACHE"}}, 18);
  AnalyzerOptions options = SmallOptions();
  options.min_confidence = 0.5;
  MarasAnalyzer analyzer(options);
  auto result = analyzer.Analyze(corpus.items, corpus.db);
  ASSERT_TRUE(result.ok());
  for (const Mcac& mcac : result->mcacs) {
    EXPECT_GE(mcac.target.confidence, 0.5);
  }
}

TEST(AnalyzerTest, MaxDrugsPerRuleSkipsWideTargets) {
  MiniCorpus corpus;
  corpus.Add({{"A", "B", "C", "D", "E", "F"}, {"X"}}, 4);
  corpus.Add({{"A"}, {"Y"}}, 3);
  AnalyzerOptions options = SmallOptions();
  options.max_drugs_per_rule = 3;
  options.mining.max_itemset_size = 8;
  MarasAnalyzer analyzer(options);
  auto result = analyzer.Analyze(corpus.items, corpus.db);
  ASSERT_TRUE(result.ok());
  for (const Mcac& mcac : result->mcacs) {
    EXPECT_LE(mcac.target.drugs.size(), 3u);
  }
}

TEST(AnalyzerTest, EmptyDatabaseIsFailedPrecondition) {
  mining::ItemDictionary items;
  mining::TransactionDatabase db;
  MarasAnalyzer analyzer(SmallOptions());
  EXPECT_TRUE(
      analyzer.Analyze(items, db).status().IsFailedPrecondition());
}

TEST(AnalyzerTest, ExclusivenessRanksInjectedSignalAboveDecoy) {
  MiniCorpus corpus = AsthmaCorpus();
  // Decoy: single-drug-driven combination with equal raw confidence.
  corpus.Add({{"ZANTAC"}, {"OSTEOPOROSIS"}}, 40);
  corpus.Add({{"ZANTAC", "TUMS"}, {"OSTEOPOROSIS"}}, 12);
  corpus.Add({{"TUMS"}, {"HEADACHE"}}, 8);
  MarasAnalyzer analyzer(SmallOptions());
  auto result = analyzer.Analyze(corpus.items, corpus.db);
  ASSERT_TRUE(result.ok());
  auto ranked = RankMcacs(result->mcacs,
                          RankingMethod::kExclusivenessConfidence,
                          analyzer.options().exclusiveness);
  ASSERT_GE(ranked.size(), 2u);
  mining::Itemset triple = corpus.Drugs({"XOLAIR", "SINGULAIR", "PREDNISONE"});
  mining::Itemset decoy = corpus.Drugs({"TUMS", "ZANTAC"});
  size_t triple_rank = ranked.size(), decoy_rank = ranked.size();
  for (size_t i = 0; i < ranked.size(); ++i) {
    if (ranked[i].mcac.target.drugs == triple) {
      triple_rank = std::min(triple_rank, i);
    }
    if (ranked[i].mcac.target.drugs == decoy) {
      decoy_rank = std::min(decoy_rank, i);
    }
  }
  ASSERT_LT(triple_rank, ranked.size());
  ASSERT_LT(decoy_rank, ranked.size());
  EXPECT_LT(triple_rank, decoy_rank);
}

TEST(SupportingReportsTest, MapsBackToPrimaryIds) {
  MiniCorpus corpus;
  corpus.Add({{"A", "B"}, {"X"}});      // tid 0
  corpus.Add({{"A"}, {"Y"}});           // tid 1
  corpus.Add({{"A", "B"}, {"X", "Y"}}); // tid 2
  std::vector<uint64_t> primary_ids = {111, 222, 333};
  DrugAdrRule rule;
  rule.drugs = corpus.Drugs({"A", "B"});
  rule.adrs = corpus.Adrs({"X"});
  auto reports = SupportingReports(corpus.db, primary_ids, rule);
  EXPECT_EQ(reports, (std::vector<uint64_t>{111, 333}));
}

}  // namespace
}  // namespace maras::core
