#include "util/run_context.h"

#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace maras {
namespace {

TEST(CancellationTokenTest, StartsUncancelled) {
  CancellationToken token;
  EXPECT_FALSE(token.cancelled());
}

TEST(CancellationTokenTest, CancelIsSticky) {
  CancellationToken token;
  token.Cancel();
  EXPECT_TRUE(token.cancelled());
  token.Cancel();  // idempotent
  EXPECT_TRUE(token.cancelled());
}

TEST(CancellationTokenTest, VisibleAcrossThreads) {
  CancellationToken token;
  std::thread canceller([&token] { token.Cancel(); });
  canceller.join();
  EXPECT_TRUE(token.cancelled());
}

TEST(DeadlineTest, InfiniteNeverExpires) {
  Deadline deadline = Deadline::Infinite();
  EXPECT_TRUE(deadline.infinite());
  EXPECT_FALSE(deadline.Expired());
}

TEST(DeadlineTest, DefaultConstructedIsInfinite) {
  Deadline deadline;
  EXPECT_TRUE(deadline.infinite());
  EXPECT_FALSE(deadline.Expired());
}

TEST(DeadlineTest, FutureDeadlineNotExpired) {
  Deadline deadline = Deadline::AfterMillis(60'000);
  EXPECT_FALSE(deadline.infinite());
  EXPECT_FALSE(deadline.Expired());
  EXPECT_GT(deadline.Remaining().count(), 0);
}

TEST(DeadlineTest, ZeroDeadlineExpiresImmediately) {
  Deadline deadline = Deadline::AfterMillis(0);
  EXPECT_TRUE(deadline.Expired());
  EXPECT_LE(deadline.Remaining().count(), 0);
}

TEST(DeadlineTest, RemembersConfiguredDelay) {
  Deadline deadline = Deadline::AfterMillis(1234);
  EXPECT_EQ(deadline.configured().count(), 1234);
}

TEST(MemoryBudgetTest, UnlimitedNeverExhausts) {
  MemoryBudget budget(0);
  EXPECT_TRUE(budget.TryCharge(1ull << 40));
  EXPECT_FALSE(budget.Exhausted());
  EXPECT_EQ(budget.used(), 1ull << 40);
}

TEST(MemoryBudgetTest, ChargeUpToLimit) {
  MemoryBudget budget(100);
  EXPECT_TRUE(budget.TryCharge(60));
  EXPECT_TRUE(budget.TryCharge(40));
  EXPECT_EQ(budget.used(), 100u);
  EXPECT_FALSE(budget.TryCharge(1));
  EXPECT_EQ(budget.used(), 100u) << "rejected charge must not be applied";
}

TEST(MemoryBudgetTest, ReleaseMakesRoom) {
  MemoryBudget budget(100);
  ASSERT_TRUE(budget.TryCharge(100));
  budget.Release(30);
  EXPECT_EQ(budget.used(), 70u);
  EXPECT_TRUE(budget.TryCharge(30));
}

TEST(MemoryBudgetTest, PeakTracksHighWaterMark) {
  MemoryBudget budget(1000);
  ASSERT_TRUE(budget.TryCharge(800));
  budget.Release(700);
  ASSERT_TRUE(budget.TryCharge(100));
  EXPECT_EQ(budget.peak(), 800u);
  EXPECT_EQ(budget.used(), 200u);
}

TEST(MemoryBudgetTest, ConcurrentChargesNeverOvershoot) {
  constexpr size_t kLimit = 10'000;
  MemoryBudget budget(kLimit);
  std::vector<std::thread> threads;
  std::atomic<size_t> accepted{0};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&budget, &accepted] {
      for (int i = 0; i < 10'000; ++i) {
        if (budget.TryCharge(7)) accepted.fetch_add(7);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(budget.used(), accepted.load());
  EXPECT_LE(budget.used(), kLimit);
  EXPECT_LE(budget.peak(), kLimit);
}

TEST(RunContextTest, UngovernedAlwaysOk) {
  RunContext ctx;
  EXPECT_FALSE(ctx.governed());
  EXPECT_TRUE(ctx.Check().ok());
  EXPECT_TRUE(ctx.Charge(1ull << 40).ok());
}

TEST(RunContextTest, CancellationWins) {
  CancellationToken token;
  MemoryBudget budget(1);
  RunContext ctx;
  ctx.cancel = &token;
  ctx.deadline = Deadline::AfterMillis(0);
  ctx.budget = &budget;
  ASSERT_TRUE(budget.TryCharge(2) == false);  // exhaust attempt rejected
  ASSERT_TRUE(budget.TryCharge(1));
  token.Cancel();
  maras::Status status = ctx.Check();
  EXPECT_TRUE(status.IsCancelled()) << status.ToString();
}

TEST(RunContextTest, DeadlineReportsConfiguredMillis) {
  RunContext ctx;
  ctx.deadline = Deadline::AfterMillis(5);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  maras::Status status = ctx.Check();
  ASSERT_TRUE(status.IsDeadlineExceeded()) << status.ToString();
  EXPECT_NE(status.ToString().find("5ms"), std::string::npos)
      << status.ToString();
}

TEST(RunContextTest, BudgetExhaustionSurfacesAsResourceExhausted) {
  MemoryBudget budget(10);
  RunContext ctx;
  ctx.budget = &budget;
  EXPECT_TRUE(ctx.Check().ok());
  maras::Status charge = ctx.Charge(11);
  EXPECT_TRUE(charge.IsResourceExhausted()) << charge.ToString();
  ASSERT_TRUE(ctx.Charge(10).ok());
  maras::Status status = ctx.Check();
  EXPECT_TRUE(status.IsResourceExhausted()) << status.ToString();
}

TEST(RunContextTest, GovernedDetection) {
  RunContext ctx;
  EXPECT_FALSE(ctx.governed());
  ctx.deadline = Deadline::AfterMillis(1000);
  EXPECT_TRUE(ctx.governed());
}

}  // namespace
}  // namespace maras
