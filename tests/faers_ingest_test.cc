// Recovery-policy behavior of the resilient FAERS reader: strict fails
// fast, permissive skips within an error budget, quarantine captures
// per-row diagnostics — plus the policy gates threaded through validation,
// dedup and preprocessing.

#include "faers/ingest.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "faers/ascii_format.h"
#include "faers/dedup.h"
#include "faers/preprocess.h"
#include "faers/validate.h"
#include "util/delimited.h"

namespace maras::faers {
namespace {

QuarterDataset SampleDataset() {
  QuarterDataset dataset;
  dataset.year = 2014;
  dataset.quarter = 1;
  for (uint64_t i = 0; i < 4; ++i) {
    Report r;
    r.case_id = 10000001 + i;
    r.case_version = 1;
    r.type = ReportType::kExpedited;
    r.sex = i % 2 == 0 ? Sex::kFemale : Sex::kMale;
    r.age = 40 + static_cast<double>(i);
    r.country = "US";
    r.drugs = {"ASPIRIN", "WARFARIN"};
    r.reactions = {"HAEMORRHAGE", "NAUSEA"};
    dataset.reports.push_back(std::move(r));
  }
  return dataset;
}

AsciiQuarterFiles CleanFiles() {
  auto files = WriteAsciiQuarter(SampleDataset());
  EXPECT_TRUE(files.ok());
  return *files;
}

IngestOptions Permissive() {
  IngestOptions options;
  options.policy = IngestPolicy::kPermissive;
  options.max_bad_row_fraction = 0.5;
  return options;
}

IngestOptions Quarantine() {
  IngestOptions options;
  options.policy = IngestPolicy::kQuarantine;
  options.max_bad_row_fraction = 0.5;
  return options;
}

// Replaces the first occurrence of `from` in `content`.
void Replace(std::string* content, const std::string& from,
             const std::string& to) {
  size_t pos = content->find(from);
  ASSERT_NE(pos, std::string::npos) << from;
  content->replace(pos, from.size(), to);
}

TEST(IngestPolicyTest, StrictIsDefaultAndMatchesLegacyReader) {
  AsciiQuarterFiles files = CleanFiles();
  auto legacy = ReadAsciiQuarter(files, 2014, 1);
  IngestReport report;
  auto strict = ReadAsciiQuarter(files, 2014, 1, IngestOptions{}, &report);
  ASSERT_TRUE(legacy.ok());
  ASSERT_TRUE(strict.ok());
  ASSERT_EQ(strict->reports.size(), legacy->reports.size());
  for (size_t i = 0; i < strict->reports.size(); ++i) {
    EXPECT_EQ(strict->reports[i].drugs, legacy->reports[i].drugs);
    EXPECT_EQ(strict->reports[i].reactions, legacy->reports[i].reactions);
  }
  EXPECT_EQ(report.rows_seen, 4u + 8u + 8u);
  EXPECT_EQ(report.rows_rejected, 0u);
  EXPECT_EQ(report.reports_ingested, 4u);
}

TEST(IngestPolicyTest, StrictGarbageCaseidIsNowCorruption) {
  // Regression for the unchecked strtoull: a garbage caseid used to coerce
  // silently to 0; it must be a diagnosed row-level Corruption.
  AsciiQuarterFiles files = CleanFiles();
  Replace(&files.demo, "$10000002$", "$10OOOOO2$");  // letters O, not zeros
  auto parsed = ReadAsciiQuarter(files, 2014, 1);
  ASSERT_FALSE(parsed.ok());
  EXPECT_TRUE(parsed.status().IsCorruption());
  EXPECT_NE(parsed.status().message().find("caseid"), std::string::npos);
  EXPECT_NE(parsed.status().message().find("DEMO14Q1.txt:3"),
            std::string::npos);
}

TEST(IngestPolicyTest, StrictGarbageAgeIsCorruption) {
  AsciiQuarterFiles files = CleanFiles();
  Replace(&files.demo, "$41$", "$4I$");
  auto parsed = ReadAsciiQuarter(files, 2014, 1);
  ASSERT_FALSE(parsed.ok());
  EXPECT_TRUE(parsed.status().IsCorruption());
  EXPECT_NE(parsed.status().message().find("age"), std::string::npos);
}

TEST(IngestPolicyTest, PermissiveSkipsBadRowAndKeepsTheRest) {
  AsciiQuarterFiles files = CleanFiles();
  Replace(&files.demo, "$10000002$", "$10OOOOO2$");
  IngestReport report;
  auto parsed = ReadAsciiQuarter(files, 2014, 1, Permissive(), &report);
  ASSERT_TRUE(parsed.ok());
  // Report 2 is dropped; its DRUG/REAC rows are collateral, not faults.
  ASSERT_EQ(parsed->reports.size(), 3u);
  for (const Report& r : parsed->reports) {
    EXPECT_NE(r.case_id, 10000002u);
    EXPECT_EQ(r.drugs.size(), 2u);
    EXPECT_EQ(r.reactions.size(), 2u);
  }
  EXPECT_EQ(report.rows_rejected, 1u + 2u + 2u);
  EXPECT_EQ(report.collateral_rows, 2u + 2u);
  EXPECT_EQ(report.FaultCount(), 1u);
  // Permissive counts but does not capture.
  EXPECT_TRUE(report.quarantined.empty());
}

TEST(IngestPolicyTest, QuarantineCapturesRowDiagnostics) {
  AsciiQuarterFiles files = CleanFiles();
  Replace(&files.demo, "$10000002$", "$10OOOOO2$");
  IngestReport report;
  auto parsed = ReadAsciiQuarter(files, 2014, 1, Quarantine(), &report);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(report.quarantined.size(), 5u);
  const QuarantinedRow& root = report.quarantined[0];
  EXPECT_EQ(root.fault, RowFault::kBadNumeric);
  EXPECT_EQ(root.file, "DEMO14Q1.txt");
  EXPECT_EQ(root.line, 3u);
  EXPECT_EQ(root.column, "caseid");
  EXPECT_NE(root.reason.find("10OOOOO2"), std::string::npos);
  EXPECT_NE(root.content.find("10OOOOO2"), std::string::npos);
  EXPECT_EQ(report.CountFault(RowFault::kCollateral), 4u);
  // ToString is the grep-friendly "file:line [fault] column: reason" form.
  EXPECT_NE(root.ToString().find("DEMO14Q1.txt:3 [bad-numeric] caseid"),
            std::string::npos);
}

TEST(IngestPolicyTest, MalformedRowIsSkippedPermissively) {
  AsciiQuarterFiles files = CleanFiles();
  files.demo += "tail$without$enough$fields\n";
  IngestReport report;
  auto parsed = ReadAsciiQuarter(files, 2014, 1, Quarantine(), &report);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->reports.size(), 4u);
  EXPECT_EQ(report.FaultCount(), 1u);
  ASSERT_EQ(report.quarantined.size(), 1u);
  EXPECT_EQ(report.quarantined[0].fault, RowFault::kMalformedRow);
  EXPECT_EQ(report.quarantined[0].line, 6u);
}

TEST(IngestPolicyTest, DuplicatePrimaryIdKeepsFirstOccurrence) {
  QuarterDataset dataset = SampleDataset();
  Report dup = dataset.reports[0];
  dup.drugs = {"PHANTOM"};
  dataset.reports.push_back(dup);
  auto files = WriteAsciiQuarter(dataset);
  ASSERT_TRUE(files.ok());
  EXPECT_TRUE(ReadAsciiQuarter(*files, 2014, 1).status().IsCorruption());
  IngestReport report;
  auto parsed = ReadAsciiQuarter(*files, 2014, 1, Quarantine(), &report);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->reports.size(), 4u);
  // The first occurrence wins and even absorbs the duplicate's DRUG row
  // (same primaryid, so the join cannot tell them apart).
  EXPECT_EQ(parsed->reports[0].case_id, 10000001u);
  EXPECT_EQ(report.CountFault(RowFault::kDuplicatePrimaryId), 1u);
}

TEST(IngestPolicyTest, OrphanRowsAreQuarantined) {
  AsciiQuarterFiles files = CleanFiles();
  files.drug += "999999$9999$1$PS$MYSTERY\n";
  files.reac += "888888$8888$VERTIGO\n";
  IngestReport report;
  auto parsed = ReadAsciiQuarter(files, 2014, 1, Quarantine(), &report);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->reports.size(), 4u);
  EXPECT_EQ(report.CountFault(RowFault::kOrphanRow), 2u);
  EXPECT_EQ(report.quarantined[0].file, "DRUG14Q1.txt");
  EXPECT_EQ(report.quarantined[1].file, "REAC14Q1.txt");
}

TEST(IngestPolicyTest, ErrorBudgetAbortsTheQuarter) {
  AsciiQuarterFiles files = CleanFiles();
  Replace(&files.demo, "$10000002$", "$10OOOOO2$");
  IngestOptions tight = Permissive();
  tight.max_bad_row_fraction = 0.01;  // 5 rejects of 20 rows >> 1%
  IngestReport report;
  auto parsed = ReadAsciiQuarter(files, 2014, 1, tight, &report);
  ASSERT_FALSE(parsed.ok());
  EXPECT_TRUE(parsed.status().IsCorruption());
  EXPECT_NE(parsed.status().message().find("error budget"),
            std::string::npos);
  // The accounting still reaches the caller for diagnosis.
  EXPECT_EQ(report.rows_rejected, 5u);
}

TEST(IngestPolicyTest, QuarantineCapIsRespected) {
  AsciiQuarterFiles files = CleanFiles();
  files.demo += "bad$row$one\nbad$row$two\nbad$row$three\n";
  IngestOptions options = Quarantine();
  options.max_quarantined_rows = 2;
  IngestReport report;
  auto parsed = ReadAsciiQuarter(files, 2014, 1, options, &report);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(report.rows_rejected, 3u);  // counters stay exact
  EXPECT_EQ(report.quarantined.size(), 2u);
  EXPECT_TRUE(report.quarantine_overflow);
  ASSERT_EQ(report.warnings.size(), 1u);
  EXPECT_NE(report.warnings[0].find("cap"), std::string::npos);
}

TEST(IngestDirTest, MissingFileErrorNamesTheFile) {
  std::string dir = ::testing::TempDir();
  QuarterDataset dataset = SampleDataset();
  dataset.year = 2019;  // avoid clashing with other tests' 14Q1 files
  dataset.quarter = 3;
  ASSERT_TRUE(WriteAsciiQuarterToDir(dataset, dir).ok());
  std::remove((dir + "/REAC19Q3.txt").c_str());
  auto parsed = ReadAsciiQuarterFromDir(dir, 2019, 3);
  ASSERT_FALSE(parsed.ok());
  EXPECT_TRUE(parsed.status().IsIOError());
  EXPECT_NE(parsed.status().message().find("REAC file"), std::string::npos);
  for (const char* name : {"DEMO19Q3.txt", "DRUG19Q3.txt"}) {
    std::remove((dir + "/" + name).c_str());
  }
}

TEST(IngestDirTest, WriteErrorNamesTheFile) {
  Status status =
      WriteAsciiQuarterToDir(SampleDataset(), "/nonexistent/ingest-dir");
  ASSERT_FALSE(status.ok());
  EXPECT_TRUE(status.IsIOError());
  EXPECT_NE(status.message().find("DEMO14Q1.txt"), std::string::npos);
}

TEST(EnforceValidationTest, StrictFailsOnFirstError) {
  QuarterDataset dataset = SampleDataset();
  dataset.reports.push_back(dataset.reports[0]);  // duplicate primaryid
  ValidationReport validation = ValidateDataset(dataset);
  ASSERT_GT(validation.error_count(), 0u);
  Status status = EnforceValidation(validation, IngestOptions{});
  ASSERT_FALSE(status.ok());
  EXPECT_TRUE(status.IsFailedPrecondition());
  EXPECT_NE(status.message().find("duplicate-primaryid"), std::string::npos);
}

TEST(EnforceValidationTest, PermissiveDowngradesErrorsWithinBudget) {
  QuarterDataset dataset = SampleDataset();
  dataset.reports.push_back(dataset.reports[0]);
  ValidationReport validation = ValidateDataset(dataset);
  IngestReport report;
  EXPECT_TRUE(EnforceValidation(validation, Permissive(), &report).ok());
  ASSERT_FALSE(report.warnings.empty());
  EXPECT_NE(report.warnings[0].find("duplicate-primaryid"),
            std::string::npos);
}

TEST(EnforceValidationTest, PermissiveStillFailsPastBudget) {
  QuarterDataset dataset = SampleDataset();
  for (int i = 0; i < 4; ++i) dataset.reports.push_back(dataset.reports[0]);
  ValidationReport validation = ValidateDataset(dataset);
  IngestOptions tight = Permissive();
  tight.max_bad_row_fraction = 0.1;
  Status status = EnforceValidation(validation, tight);
  ASSERT_FALSE(status.ok());
  EXPECT_TRUE(status.IsFailedPrecondition());
}

TEST(EnforceValidationTest, WarningsNeverFailAnyPolicy) {
  QuarterDataset dataset = SampleDataset();
  dataset.reports[0].drugs.clear();  // warning-grade finding
  ValidationReport validation = ValidateDataset(dataset);
  EXPECT_GT(validation.warning_count(), 0u);
  EXPECT_EQ(validation.error_count(), 0u);
  EXPECT_TRUE(EnforceValidation(validation, IngestOptions{}).ok());
  EXPECT_TRUE(EnforceValidation(validation, Permissive()).ok());
}

TEST(IngestThreadingTest, PreprocessorRecordsDropAccounting) {
  QuarterDataset dataset = SampleDataset();
  dataset.reports[1].type = ReportType::kPeriodic;
  dataset.reports[2].reactions.clear();
  Preprocessor preprocessor{PreprocessOptions{}};
  IngestReport report;
  auto pre = preprocessor.Process(dataset, &report);
  ASSERT_TRUE(pre.ok());
  ASSERT_EQ(report.warnings.size(), 2u);
  EXPECT_NE(report.warnings[0].find("non-expedited"), std::string::npos);
  EXPECT_NE(report.warnings[1].find("no drugs or no reactions"),
            std::string::npos);
}

TEST(IngestThreadingTest, DedupRecordsRemovalsUnderQuarantine) {
  QuarterDataset dataset = SampleDataset();
  // Distinguish the base reports so only the injected twin clusters.
  for (size_t i = 0; i < dataset.reports.size(); ++i) {
    dataset.reports[i].drugs.push_back("MARKER" + std::to_string(i));
  }
  Report twin = dataset.reports[0];
  twin.case_id = 77000001;  // different case, same clinical fingerprint
  dataset.reports.push_back(twin);
  IngestReport report;
  DedupStats stats;
  QuarterDataset kept =
      RemoveDuplicateCases(dataset, Quarantine(), &report, &stats);
  EXPECT_EQ(kept.reports.size(), dataset.reports.size() - 1);
  EXPECT_EQ(stats.redundant_reports, 1u);
  ASSERT_EQ(report.warnings.size(), 2u);
  EXPECT_NE(report.warnings[0].find("duplicate"), std::string::npos);
  EXPECT_NE(report.warnings[1].find("7700000"), std::string::npos);
}

TEST(IngestReportTest, MergeAndSummary) {
  IngestReport a;
  a.rows_seen = 10;
  a.rows_rejected = 2;
  a.collateral_rows = 1;
  a.warnings = {"w1"};
  IngestReport b;
  b.rows_seen = 5;
  b.rows_rejected = 1;
  b.quarantined.push_back(QuarantinedRow{RowFault::kOrphanRow, "DRUG", 7, "",
                                         "orphan", "raw"});
  a.Merge(b);
  EXPECT_EQ(a.rows_seen, 15u);
  EXPECT_EQ(a.rows_rejected, 3u);
  EXPECT_EQ(a.FaultCount(), 2u);
  EXPECT_EQ(a.quarantined.size(), 1u);
  EXPECT_EQ(a.Summary(), "15 rows, 3 rejected (1 collateral), 1 warning");
  EXPECT_DOUBLE_EQ(a.rejected_fraction(), 0.2);
}

TEST(IngestReportTest, PolicyAndFaultNames) {
  EXPECT_STREQ(IngestPolicyName(IngestPolicy::kStrict), "strict");
  EXPECT_STREQ(IngestPolicyName(IngestPolicy::kPermissive), "permissive");
  EXPECT_STREQ(IngestPolicyName(IngestPolicy::kQuarantine), "quarantine");
  EXPECT_STREQ(RowFaultName(RowFault::kMalformedRow), "malformed-row");
  EXPECT_STREQ(RowFaultName(RowFault::kCollateral), "collateral");
}

}  // namespace
}  // namespace maras::faers
