#include "core/exclusiveness.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace maras::core {
namespace {

using maras::test::AsthmaCorpus;
using maras::test::MiniCorpus;

// Builds an MCAC directly from value lists (target + per-level context) so
// formula tests control every input exactly.
Mcac ValueMcac(double target,
               const std::vector<std::vector<double>>& levels) {
  Mcac mcac;
  mcac.target.confidence = target;
  mcac.target.lift = target * 10.0;
  // Give the target as many drugs as levels + 1 for the decay function.
  for (size_t i = 0; i <= levels.size(); ++i) {
    mcac.target.drugs.push_back(static_cast<mining::ItemId>(i));
  }
  for (const auto& level : levels) {
    std::vector<DrugAdrRule> rules;
    for (double v : level) {
      DrugAdrRule r;
      r.confidence = v;
      r.lift = v * 10.0;
      rules.push_back(r);
    }
    mcac.levels.push_back(std::move(rules));
  }
  return mcac;
}

TEST(CoefficientOfVariationTest, Basics) {
  EXPECT_DOUBLE_EQ(CoefficientOfVariation({}), 0.0);
  EXPECT_DOUBLE_EQ(CoefficientOfVariation({0.5}), 0.0);
  EXPECT_NEAR(CoefficientOfVariation({0.4, 0.4, 0.4}), 0.0, 1e-12);
  // Mean 0.5, population stddev 0.1 -> Cv 0.2.
  EXPECT_NEAR(CoefficientOfVariation({0.4, 0.6}), 0.2, 1e-12);
  EXPECT_DOUBLE_EQ(CoefficientOfVariation({0.0, 0.0}), 0.0);  // zero mean
}

TEST(ExclusivenessSimpleTest, Formula33MeanContrast) {
  Mcac mcac = ValueMcac(0.9, {{0.1, 0.3}});
  EXPECT_NEAR(ExclusivenessSimple(mcac, RuleMeasure::kConfidence),
              0.9 - 0.2, 1e-12);
}

TEST(ExclusivenessSimpleTest, FlattensAcrossLevels) {
  Mcac mcac = ValueMcac(0.8, {{0.2, 0.4}, {0.6}});
  EXPECT_NEAR(ExclusivenessSimple(mcac, RuleMeasure::kConfidence),
              0.8 - (0.2 + 0.4 + 0.6) / 3.0, 1e-12);
}

TEST(ExclusivenessVariationTest, Formula34PenalizesSpread) {
  // Uniform context -> no penalty; spread context -> smaller score.
  Mcac uniform = ValueMcac(0.9, {{0.3, 0.3}});
  Mcac spread = ValueMcac(0.9, {{0.1, 0.5}});
  double u = ExclusivenessWithVariation(uniform, RuleMeasure::kConfidence,
                                        /*theta=*/0.8);
  double s = ExclusivenessWithVariation(spread, RuleMeasure::kConfidence,
                                        /*theta=*/0.8);
  EXPECT_NEAR(u, 0.6, 1e-12);  // contrast unchanged
  EXPECT_LT(s, u);
}

TEST(ExclusivenessVariationTest, ThetaZeroDisablesPenalty) {
  Mcac spread = ValueMcac(0.9, {{0.1, 0.5}});
  EXPECT_NEAR(
      ExclusivenessWithVariation(spread, RuleMeasure::kConfidence, 0.0),
      ExclusivenessSimple(spread, RuleMeasure::kConfidence), 1e-12);
}

TEST(ExclusivenessVariationTest, PenaltyFactorClampedAtZero) {
  // Extreme spread has Cv > 1; with theta 1 the factor clamps to 0, not
  // negative (the score must not flip sign).
  Mcac extreme = ValueMcac(0.9, {{0.001, 0.5}});
  double score =
      ExclusivenessWithVariation(extreme, RuleMeasure::kConfidence, 1.0);
  EXPECT_GE(score, 0.0);
}

TEST(ExclusivenessTest, Formula35HandComputed) {
  // Two levels, theta 0, decay on. n = 3 drugs.
  // Level 1 (k=1): mean 0.2, f_d = 1          -> 0.8 − 0.2 = 0.6
  // Level 2 (k=2): mean 0.5, f_d = 1 − 1/3    -> (0.8 − 0.5)·(2/3) = 0.2
  // Score = (0.6 + 0.2) / 2 = 0.4.
  Mcac mcac = ValueMcac(0.8, {{0.1, 0.3}, {0.5}});
  ExclusivenessOptions options;
  options.theta = 0.0;
  options.use_decay = true;
  options.measure = RuleMeasure::kConfidence;
  EXPECT_NEAR(Exclusiveness(mcac, options), 0.4, 1e-12);
}

TEST(ExclusivenessTest, DecayDownweightsDeepLevels) {
  Mcac mcac = ValueMcac(0.8, {{0.0}, {0.0}});
  ExclusivenessOptions with_decay;
  with_decay.theta = 0.0;
  with_decay.use_decay = true;
  ExclusivenessOptions no_decay = with_decay;
  no_decay.use_decay = false;
  // With zero context everywhere, decay shrinks the level-2 term only.
  EXPECT_LT(Exclusiveness(mcac, with_decay),
            Exclusiveness(mcac, no_decay));
}

TEST(ExclusivenessTest, PerfectSignalScoresHigh) {
  // Target confidence 1, all context 0 -> maximal interestingness.
  Mcac mcac = ValueMcac(1.0, {{0.0, 0.0}});
  ExclusivenessOptions options;
  options.theta = 0.5;
  EXPECT_NEAR(Exclusiveness(mcac, options), 1.0, 1e-12);
}

TEST(ExclusivenessTest, DominatedRuleScoresLowOrNegative) {
  // A single drug explains the ADRs better than the combination.
  Mcac mcac = ValueMcac(0.4, {{0.9, 0.1}});
  ExclusivenessOptions options;
  options.theta = 0.0;
  EXPECT_LT(Exclusiveness(mcac, options), 0.1);
  EXPECT_LT(Improvement(mcac), 0.0);  // Bayardo agrees: dominated
}

TEST(ExclusivenessTest, EmptyContextScoresZero) {
  Mcac mcac = ValueMcac(0.9, {});
  ExclusivenessOptions options;
  EXPECT_DOUBLE_EQ(Exclusiveness(mcac, options), 0.0);
}

TEST(ExclusivenessTest, LiftMeasureUsesLiftValues) {
  Mcac mcac = ValueMcac(0.8, {{0.2}});
  ExclusivenessOptions conf_opts;
  conf_opts.theta = 0.0;
  conf_opts.measure = RuleMeasure::kConfidence;
  ExclusivenessOptions lift_opts = conf_opts;
  lift_opts.measure = RuleMeasure::kLift;
  // Lift values are 10× the confidences in ValueMcac.
  EXPECT_NEAR(Exclusiveness(mcac, lift_opts),
              10.0 * Exclusiveness(mcac, conf_opts), 1e-9);
}

TEST(ImprovementTest, UsesStrongestContextRule) {
  Mcac mcac = ValueMcac(0.7, {{0.5, 0.2}, {0.6}});
  EXPECT_NEAR(Improvement(mcac), 0.7 - 0.6, 1e-12);
}

TEST(ImprovementTest, NoContextReturnsTarget) {
  Mcac mcac = ValueMcac(0.7, {});
  EXPECT_NEAR(Improvement(mcac), 0.7, 1e-12);
}

TEST(ExclusivenessTest, InterestingBeatsUninterestingOnRealCorpus) {
  MiniCorpus corpus = AsthmaCorpus();
  // Add an uninteresting combo: ZANTAC alone causes OSTEOPOROSIS, and the
  // ZANTAC+TUMS combo merely inherits it.
  corpus.Add({{"ZANTAC"}, {"OSTEOPOROSIS"}}, 30);
  corpus.Add({{"ZANTAC", "TUMS"}, {"OSTEOPOROSIS"}}, 10);
  corpus.Add({{"TUMS"}, {"HEADACHE"}}, 10);

  McacBuilder builder(&corpus.items, &corpus.db);
  auto interesting_rule =
      BuildRule(mining::Union(corpus.Drugs({"XOLAIR", "SINGULAIR",
                                            "PREDNISONE"}),
                              corpus.Adrs({"ASTHMA"})),
                corpus.items, corpus.db);
  auto boring_rule = BuildRule(
      mining::Union(corpus.Drugs({"ZANTAC", "TUMS"}),
                    corpus.Adrs({"OSTEOPOROSIS"})),
      corpus.items, corpus.db);
  ASSERT_TRUE(interesting_rule.ok());
  ASSERT_TRUE(boring_rule.ok());
  auto interesting = builder.Build(*interesting_rule);
  auto boring = builder.Build(*boring_rule);
  ASSERT_TRUE(interesting.ok());
  ASSERT_TRUE(boring.ok());

  ExclusivenessOptions options;
  options.theta = 0.5;
  // Both rules have perfect confidence, so raw confidence cannot separate
  // them — exclusiveness can.
  EXPECT_DOUBLE_EQ(interesting->target.confidence, 1.0);
  EXPECT_DOUBLE_EQ(boring->target.confidence, 1.0);
  EXPECT_GT(Exclusiveness(*interesting, options),
            Exclusiveness(*boring, options));
}

// θ sweep property: raising θ never raises the score (penalty only grows).
class ThetaSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(ThetaSweepTest, ScoreMonotoneNonIncreasingInTheta) {
  Mcac mcac = ValueMcac(0.9, {{0.1, 0.4}, {0.2, 0.3, 0.5}});
  ExclusivenessOptions lo;
  lo.theta = GetParam();
  ExclusivenessOptions hi = lo;
  hi.theta = std::min(1.0, lo.theta + 0.25);
  EXPECT_GE(Exclusiveness(mcac, lo) + 1e-12, Exclusiveness(mcac, hi));
}

INSTANTIATE_TEST_SUITE_P(Thetas, ThetaSweepTest,
                         ::testing::Values(0.0, 0.2, 0.4, 0.6, 0.75));

}  // namespace
}  // namespace maras::core
