// Property tests for the concept lattice over the mined closed family: the
// covering edges must equal the brute-force Hasse diagram of the
// subset-inclusion order, the build must be byte-identical at any thread
// count, and the greedy downward walk must land on closure(X) — the
// exactness invariant the lattice-backed MCAC construction relies on.
// The differential-oracle suite then proves the end-to-end claim: the
// analyzer's output with the lattice path on is byte-identical to plain
// enumeration, across seeds and thread counts.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "core/analysis_stages.h"
#include "core/analyzer.h"
#include "core/checkpoint.h"
#include "core/ranking.h"
#include "mining/closed_itemsets.h"
#include "mining/concept_lattice.h"
#include "mining/fpgrowth.h"
#include "test_util.h"
#include "util/random.h"
#include "util/run_context.h"

namespace maras::mining {
namespace {

TransactionDatabase RandomDb(maras::Rng* rng, int transactions, int items,
                             int max_len) {
  TransactionDatabase db;
  for (int t = 0; t < transactions; ++t) {
    Itemset txn;
    for (size_t i = 1 + rng->Uniform(static_cast<uint64_t>(max_len)); i > 0;
         --i) {
      txn.push_back(static_cast<ItemId>(rng->Uniform(items)));
    }
    db.Add(std::move(txn));
  }
  return db;
}

FrequentItemsetResult MineClosedFamily(const TransactionDatabase& db,
                                       size_t min_support) {
  auto mined = FpGrowth(MiningOptions{.min_support = min_support}).Mine(db);
  EXPECT_TRUE(mined.ok());
  return FilterClosed(*mined);
}

Itemset NodeItemset(const ConceptLattice& lattice, uint32_t node) {
  LatticeSpan<ItemId> items = lattice.NodeItems(node);
  return Itemset(items.begin(), items.end());
}

// Brute-force Hasse diagram: u covers v iff items(u) ⊊ items(v) and no
// third node sits strictly between them.
std::vector<std::vector<uint32_t>> BruteForceCovers(
    const ConceptLattice& lattice) {
  const uint32_t n = static_cast<uint32_t>(lattice.node_count());
  std::vector<Itemset> sets(n);
  for (uint32_t v = 0; v < n; ++v) sets[v] = NodeItemset(lattice, v);
  std::vector<std::vector<uint32_t>> covers(n);
  for (uint32_t v = 0; v < n; ++v) {
    for (uint32_t u = 0; u < n; ++u) {
      if (u == v || sets[u].size() >= sets[v].size()) continue;
      if (!IsSubset(sets[u], sets[v])) continue;
      bool covering = true;
      for (uint32_t w = 0; w < n && covering; ++w) {
        if (w == u || w == v) continue;
        if (sets[w].size() <= sets[u].size() ||
            sets[w].size() >= sets[v].size()) {
          continue;
        }
        if (IsSubset(sets[u], sets[w]) && IsSubset(sets[w], sets[v])) {
          covering = false;
        }
      }
      if (covering) covers[v].push_back(u);
    }
  }
  return covers;
}

class ConceptLatticeTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ConceptLatticeTest, NodesMirrorTheClosedFamily) {
  maras::Rng rng(GetParam());
  TransactionDatabase db =
      RandomDb(&rng, static_cast<int>(60 + GetParam() % 50), 9, 6);
  FrequentItemsetResult closed = MineClosedFamily(db, 2);
  const RunContext ctx;
  auto lattice = ConceptLattice::Build(closed, /*num_threads=*/4, ctx);
  ASSERT_TRUE(lattice.ok()) << lattice.status().ToString();
  ASSERT_EQ(lattice->node_count(), closed.size());
  for (uint32_t v = 0; v < lattice->node_count(); ++v) {
    const FrequentItemset& fi = closed.itemsets()[v];
    EXPECT_EQ(NodeItemset(*lattice, v), fi.items);
    EXPECT_EQ(lattice->NodeSupport(v), fi.support);
    EXPECT_EQ(lattice->FindNode(fi.items), v);
  }
  EXPECT_EQ(lattice->FindNode({ItemId{200}, ItemId{201}}),
            ConceptLattice::kNotFound);
}

TEST_P(ConceptLatticeTest, CoveringEdgesEqualBruteForceHasseDiagram) {
  maras::Rng rng(GetParam() + 3);
  TransactionDatabase db =
      RandomDb(&rng, static_cast<int>(50 + GetParam() % 60), 8, 6);
  FrequentItemsetResult closed = MineClosedFamily(db, 2);
  const RunContext ctx;
  auto lattice = ConceptLattice::Build(closed, /*num_threads=*/3, ctx);
  ASSERT_TRUE(lattice.ok()) << lattice.status().ToString();
  const std::vector<std::vector<uint32_t>> want = BruteForceCovers(*lattice);
  size_t total_edges = 0;
  for (uint32_t v = 0; v < lattice->node_count(); ++v) {
    LatticeSpan<uint32_t> got = lattice->Subsets(v);
    const std::vector<uint32_t> got_vec(got.begin(), got.end());
    EXPECT_EQ(got_vec, want[v]) << "covers of node " << v;
    total_edges += want[v].size();
  }
  EXPECT_EQ(lattice->edge_count(), total_edges);
  // Supersets must be the exact transpose, ascending per node.
  std::vector<std::vector<uint32_t>> transpose(lattice->node_count());
  for (uint32_t v = 0; v < lattice->node_count(); ++v) {
    for (uint32_t u : want[v]) transpose[u].push_back(v);
  }
  for (uint32_t u = 0; u < lattice->node_count(); ++u) {
    LatticeSpan<uint32_t> got = lattice->Supersets(u);
    EXPECT_EQ(std::vector<uint32_t>(got.begin(), got.end()), transpose[u])
        << "covering supersets of node " << u;
  }
}

TEST_P(ConceptLatticeTest, BuildIsIdenticalAtAnyThreadCount) {
  maras::Rng rng(GetParam() + 11);
  TransactionDatabase db = RandomDb(&rng, 80, 9, 6);
  FrequentItemsetResult closed = MineClosedFamily(db, 2);
  const RunContext ctx;
  auto reference = ConceptLattice::Build(closed, 1, ctx);
  ASSERT_TRUE(reference.ok());
  for (size_t threads : {2, 8}) {
    auto other = ConceptLattice::Build(closed, threads, ctx);
    ASSERT_TRUE(other.ok());
    ASSERT_EQ(other->node_count(), reference->node_count());
    ASSERT_EQ(other->edge_count(), reference->edge_count());
    for (uint32_t v = 0; v < reference->node_count(); ++v) {
      LatticeSpan<uint32_t> a = reference->Subsets(v);
      LatticeSpan<uint32_t> b = other->Subsets(v);
      EXPECT_EQ(std::vector<uint32_t>(a.begin(), a.end()),
                std::vector<uint32_t>(b.begin(), b.end()))
          << "node " << v << " at " << threads << " threads";
    }
  }
}

TEST_P(ConceptLatticeTest, DescentFromClosedNodeReachesClosure) {
  // Uncapped mine + descent start at a database-closed node: the walk must
  // land on closure(X), whose support is supp(X) — for every non-empty
  // subset X of the start node's itemset with frequent support.
  maras::Rng rng(GetParam() + 17);
  TransactionDatabase db = RandomDb(&rng, 70, 8, 5);
  FrequentItemsetResult closed = MineClosedFamily(db, 2);
  const RunContext ctx;
  auto lattice = ConceptLattice::Build(closed, 2, ctx);
  ASSERT_TRUE(lattice.ok());
  for (uint32_t v = 0; v < lattice->node_count(); ++v) {
    const Itemset node_items = NodeItemset(*lattice, v);
    if (node_items.size() > 6) continue;  // bound the 2^n sweep
    ASSERT_TRUE(IsClosedInDatabase(db, node_items));
    const size_t n = node_items.size();
    for (size_t mask = 1; mask < (size_t{1} << n); ++mask) {
      Itemset subset;
      for (size_t i = 0; i < n; ++i) {
        if (mask & (size_t{1} << i)) subset.push_back(node_items[i]);
      }
      const uint32_t end = lattice->DescendToClosure(v, subset);
      ASSERT_NE(end, ConceptLattice::kNotFound);
      EXPECT_EQ(lattice->NodeSupport(end), db.Support(subset))
          << ToString(subset) << " under node " << v;
      EXPECT_EQ(NodeItemset(*lattice, end), ClosureOf(db, subset))
          << ToString(subset);
    }
  }
}

TEST_P(ConceptLatticeTest, SubsetSupportCacheIsExactOnEveryPath) {
  maras::Rng rng(GetParam() + 23);
  TransactionDatabase db = RandomDb(&rng, 60, 8, 5);
  FrequentItemsetResult closed = MineClosedFamily(db, 2);
  const RunContext ctx;
  auto lattice = ConceptLattice::Build(closed, 2, ctx);
  ASSERT_TRUE(lattice.ok());
  SubsetSupportCache cache(&db);
  for (uint32_t v = 0; v < lattice->node_count(); ++v) {
    const Itemset node_items = NodeItemset(*lattice, v);
    if (node_items.size() > 5) continue;
    const size_t n = node_items.size();
    for (size_t mask = 1; mask < (size_t{1} << n); ++mask) {
      Itemset subset;
      for (size_t i = 0; i < n; ++i) {
        if (mask & (size_t{1} << i)) subset.push_back(node_items[i]);
      }
      const uint64_t want = db.Support(subset);
      // Lattice path, memo path, and forced bitmap fallback must agree.
      EXPECT_EQ(cache.Support(subset, &*lattice, v), want);
      EXPECT_EQ(cache.Support(subset, &*lattice, v), want);
      EXPECT_EQ(cache.Support(subset, nullptr, ConceptLattice::kNotFound),
                want);
    }
  }
  EXPECT_GT(cache.hits(), 0u);
  EXPECT_GT(cache.misses(), 0u);
}

// Concurrent publish/probe stress for the sharded memo, aimed at the tsan
// preset: exactness must hold under contention, and the relaxed-atomic
// counter contract (concept_lattice.h) must deliver what it promises — the
// structural invariant (stats() totals equal the per-shard sums, even
// mid-flight) plus monotonicity while probing, and exact accounting at
// quiescence.
TEST(SubsetSupportCacheStressTest, ConcurrentProbesStayExactAndAccounted) {
  maras::Rng rng(733);
  TransactionDatabase db = RandomDb(&rng, 60, 8, 5);
  FrequentItemsetResult closed = MineClosedFamily(db, 2);
  const RunContext ctx;
  auto lattice = ConceptLattice::Build(closed, 2, ctx);
  ASSERT_TRUE(lattice.ok());

  // Worklist of (subset, start node, expected support), oracle computed
  // serially up front so worker threads only read it.
  struct Probe {
    Itemset subset;
    uint32_t node;
    uint64_t want;
  };
  std::vector<Probe> probes;
  for (uint32_t v = 0; v < lattice->node_count(); ++v) {
    const Itemset node_items = NodeItemset(*lattice, v);
    if (node_items.size() > 4) continue;
    const size_t n = node_items.size();
    for (size_t mask = 1; mask < (size_t{1} << n); ++mask) {
      Itemset subset;
      for (size_t i = 0; i < n; ++i) {
        if (mask & (size_t{1} << i)) subset.push_back(node_items[i]);
      }
      probes.push_back({subset, v, db.Support(subset)});
    }
  }
  ASSERT_GT(probes.size(), 20u);

  SubsetSupportCache cache(&db);
  constexpr int kWorkers = 4;
  constexpr int kRounds = 8;
  std::atomic<bool> done{false};
  std::atomic<uint64_t> mismatches{0};

  // A stats reader races the probes: the totals==shard-sums invariant is
  // structural (single gather) and must hold at every instant, and probes()
  // must be monotone across successive gathers.
  std::thread stats_reader([&] {
    uint64_t last_probes = 0;
    uint64_t reads = 0;
    while (!done.load(std::memory_order_acquire) || reads < 3) {
      const SubsetSupportCache::Stats s = cache.stats();
      uint64_t hit_sum = 0, miss_sum = 0, fb_sum = 0;
      for (const SubsetSupportCache::ShardStats& row : s.shards) {
        hit_sum += row.hits;
        miss_sum += row.misses;
        fb_sum += row.fallbacks;
      }
      if (s.hits != hit_sum || s.misses != miss_sum || s.fallbacks != fb_sum ||
          s.probes() < last_probes) {
        mismatches.fetch_add(1);
      }
      last_probes = s.probes();
      ++reads;
    }
  });

  std::vector<std::thread> workers;
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&, w] {
      for (int round = 0; round < kRounds; ++round) {
        for (size_t i = 0; i < probes.size(); ++i) {
          // Stagger start offsets so threads collide on different shards.
          const Probe& p = probes[(i + static_cast<size_t>(w) * 7) %
                                  probes.size()];
          // Alternate lattice path and forced bitmap fallback.
          const uint64_t got =
              (round % 2 == 0)
                  ? cache.Support(p.subset, &*lattice, p.node)
                  : cache.Support(p.subset, nullptr,
                                  ConceptLattice::kNotFound);
          if (got != p.want) mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : workers) t.join();
  done.store(true, std::memory_order_release);
  stats_reader.join();

  EXPECT_EQ(mismatches.load(), 0u);

  // Quiescence: every Support() call bumped exactly one of hits/misses, and
  // every fallback was one of the misses.
  const SubsetSupportCache::Stats s = cache.stats();
  const uint64_t total_calls =
      uint64_t{kWorkers} * uint64_t{kRounds} * probes.size();
  EXPECT_EQ(s.probes(), total_calls);
  EXPECT_EQ(s.hits + s.misses, total_calls);
  EXPECT_LE(s.fallbacks, s.misses);
  EXPECT_GT(s.hits, 0u);
  EXPECT_GT(s.misses, 0u);
  EXPECT_EQ(s.shards.size(), SubsetSupportCache::kShardCount);
}

TEST(ConceptLatticeTest, EmptyFamilyBuildsEmptyLattice) {
  FrequentItemsetResult closed;
  const RunContext ctx;
  auto lattice = ConceptLattice::Build(closed, 4, ctx);
  ASSERT_TRUE(lattice.ok());
  EXPECT_EQ(lattice->node_count(), 0u);
  EXPECT_EQ(lattice->edge_count(), 0u);
  EXPECT_EQ(lattice->FindNode({ItemId{1}}), ConceptLattice::kNotFound);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConceptLatticeTest,
                         ::testing::Values(41, 97, 151, 233, 389));

// ---------------------------------------------------------------------------
// End-to-end oracle: lattice-backed MCAC construction must be byte-identical
// to plain per-subset enumeration, on every seed and thread count.
// ---------------------------------------------------------------------------

maras::test::MiniCorpus RandomCorpus(uint64_t seed) {
  maras::Rng rng(seed);
  maras::test::MiniCorpus corpus;
  std::vector<std::string> drugs, adrs;
  for (int i = 0; i < 8; ++i) drugs.push_back("DRUG" + std::to_string(i));
  for (int i = 0; i < 4; ++i) adrs.push_back("ADR" + std::to_string(i));
  for (int t = 0; t < 120; ++t) {
    maras::test::ReportSpec spec;
    const size_t n_drugs = 1 + rng.Uniform(4);
    const size_t n_adrs = 1 + rng.Uniform(2);
    for (size_t i = 0; i < n_drugs; ++i) {
      spec.drugs.push_back(drugs[rng.Uniform(drugs.size())]);
    }
    for (size_t i = 0; i < n_adrs; ++i) {
      spec.adrs.push_back(adrs[rng.Uniform(adrs.size())]);
    }
    corpus.Add(spec);
  }
  // A dense planted combination so multi-drug targets always exist.
  corpus.Add({{"DRUG0", "DRUG1", "DRUG2"}, {"ADR0"}}, 10);
  corpus.Add({{"DRUG0", "DRUG1"}, {"ADR0"}}, 6);
  return corpus;
}

class LatticeMcacDifferentialOracleTest
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LatticeMcacDifferentialOracleTest,
       LatticeAndEnumerationAreByteIdentical) {
  maras::test::MiniCorpus corpus = RandomCorpus(GetParam());
  std::string reference;
  for (size_t threads : {1, 2, 8}) {
    for (bool lattice_on : {false, true}) {
      core::AnalyzerOptions options;
      options.mining.min_support = 2;
      options.mining.num_threads = threads;
      options.lattice_mcac = lattice_on;
      ASSERT_TRUE(core::LatticeMcacEligible(options) == lattice_on);
      core::MarasAnalyzer analyzer(options);
      auto result = analyzer.Analyze(corpus.items, corpus.db);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      ASSERT_GT(result->mcacs.size(), 0u);
      const std::string encoded = core::EncodeRankedMcacs(core::RankMcacs(
          result->mcacs, core::RankingMethod::kExclusivenessLift,
          core::ExclusivenessOptions{}));
      if (reference.empty()) {
        reference = encoded;
      } else {
        EXPECT_EQ(encoded, reference)
            << "threads=" << threads << " lattice=" << lattice_on;
      }
    }
  }
}

TEST_P(LatticeMcacDifferentialOracleTest, CappedMineStaysEligibleViaVerify) {
  // With a size cap the lattice path is only exact when targets are
  // database-verified; the eligibility gate must encode exactly that.
  core::AnalyzerOptions options;
  options.mining.max_itemset_size = 5;
  options.verify_closed_in_db = false;
  EXPECT_FALSE(core::LatticeMcacEligible(options));
  options.verify_closed_in_db = true;
  EXPECT_TRUE(core::LatticeMcacEligible(options));
  options.lattice_mcac = false;
  EXPECT_FALSE(core::LatticeMcacEligible(options));

  // And with the cap + verification, output still matches enumeration.
  maras::test::MiniCorpus corpus = RandomCorpus(GetParam() + 1);
  std::string reference;
  for (bool lattice_on : {false, true}) {
    core::AnalyzerOptions run;
    run.mining.min_support = 2;
    run.mining.max_itemset_size = 5;
    run.lattice_mcac = lattice_on;
    core::MarasAnalyzer analyzer(run);
    auto result = analyzer.Analyze(corpus.items, corpus.db);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    const std::string encoded = core::EncodeRankedMcacs(core::RankMcacs(
        result->mcacs, core::RankingMethod::kExclusivenessLift,
        core::ExclusivenessOptions{}));
    if (reference.empty()) {
      reference = encoded;
    } else {
      EXPECT_EQ(encoded, reference) << "lattice=" << lattice_on;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LatticeMcacDifferentialOracleTest,
                         ::testing::Values(1001, 2002, 3003, 4004));

}  // namespace
}  // namespace maras::mining
