#include "viz/barchart.h"

#include <gtest/gtest.h>

#include "viz/panorama.h"

namespace maras::viz {
namespace {

GlyphSpec SampleSpec() {
  GlyphSpec spec;
  spec.target_value = 0.8;
  spec.levels = {{0.3, 0.1}};
  spec.title = "pair cluster";
  return spec;
}

size_t CountOccurrences(const std::string& haystack,
                        const std::string& needle) {
  size_t count = 0, pos = 0;
  while ((pos = haystack.find(needle, pos)) != std::string::npos) {
    ++count;
    ++pos;
  }
  return count;
}

TEST(BarChartTest, OneBarPerRule) {
  BarChartRenderer renderer;
  std::string svg = renderer.Render(SampleSpec()).Render();
  // 1 target + 2 context bars + 1 legend-free layout; axes add lines.
  // Bars are rects; the only other rects would be legend chips (none here).
  EXPECT_EQ(CountOccurrences(svg, "<rect"), 3u);
  EXPECT_NE(svg.find("pair cluster"), std::string::npos);
}

TEST(BarChartTest, AxisGridAndTicksPresent) {
  BarChartRenderer renderer;
  std::string svg = renderer.Render(SampleSpec()).Render();
  EXPECT_GE(CountOccurrences(svg, "<line"), 6u);  // 2 axes + 5 gridlines
  EXPECT_NE(svg.find("confidence"), std::string::npos);
  EXPECT_NE(svg.find("1.00"), std::string::npos);
  EXPECT_NE(svg.find("0.50"), std::string::npos);
}

TEST(BarChartTest, ShowValuesAnnotatesBars) {
  BarChartOptions options;
  options.show_values = true;
  BarChartRenderer renderer(options);
  std::string svg = renderer.Render(SampleSpec()).Render();
  EXPECT_NE(svg.find(">0.80</text>"), std::string::npos);
  EXPECT_NE(svg.find(">0.30</text>"), std::string::npos);
}

TEST(BarChartTest, GroupedSeriesRendersLegend) {
  BarChartRenderer renderer(BarChartOptions{.max_value = 100.0,
                                            .y_label = "% correct"});
  std::vector<BarChartRenderer::Series> series = {
      {"Contextual Glyph", {71, 57, 86}},
      {"Barchart", {50, 40, 30}},
  };
  std::string svg =
      renderer.RenderGrouped({"Two", "Three", "Four"}, series,
                             "User study results")
          .Render();
  EXPECT_NE(svg.find("Contextual Glyph"), std::string::npos);
  EXPECT_NE(svg.find("Barchart"), std::string::npos);
  EXPECT_NE(svg.find("Two"), std::string::npos);
  EXPECT_NE(svg.find("Four"), std::string::npos);
  EXPECT_NE(svg.find("User study results"), std::string::npos);
  // 6 bars + 2 legend chips.
  EXPECT_EQ(CountOccurrences(svg, "<rect"), 8u);
}

TEST(BarChartTest, GroupedHandlesEmptyInput) {
  BarChartRenderer renderer;
  std::string svg = renderer.RenderGrouped({}, {}, "empty").Render();
  EXPECT_NE(svg.find("<svg"), std::string::npos);
}

TEST(PanoramaTest, GridOfGlyphsWithCaptions) {
  PanoramaOptions options;
  options.columns = 3;
  PanoramaRenderer renderer(options);
  std::vector<PanoramaEntry> entries;
  for (int i = 0; i < 7; ++i) {
    PanoramaEntry entry;
    entry.spec.target_value = 0.5 + 0.05 * i;
    entry.spec.levels = {{0.2, 0.1}};
    entry.score = 1.0 - 0.1 * i;
    entries.push_back(entry);
  }
  std::string svg = renderer.Render(entries, "Panoramagram").Render();
  EXPECT_EQ(CountOccurrences(svg, "<circle"), 7u);
  EXPECT_NE(svg.find("#1"), std::string::npos);
  EXPECT_NE(svg.find("#7"), std::string::npos);
  EXPECT_NE(svg.find("score 1.000"), std::string::npos);
  EXPECT_NE(svg.find("Panoramagram"), std::string::npos);
}

TEST(PanoramaTest, EmptyEntriesStillRenders) {
  PanoramaRenderer renderer;
  std::string svg = renderer.Render({}, "nothing").Render();
  EXPECT_NE(svg.find("<svg"), std::string::npos);
}

}  // namespace
}  // namespace maras::viz
