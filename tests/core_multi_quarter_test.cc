#include "core/multi_quarter.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "core/analyzer.h"
#include "faers/ascii_format.h"
#include "faers/corruptor.h"
#include "faers/generator.h"
#include "faers/preprocess.h"

namespace maras::core {
namespace {

faers::PreprocessResult MakeQuarter(int quarter, size_t reports) {
  faers::GeneratorConfig config;
  config.quarter = quarter;
  config.n_reports = reports;
  config.n_drugs = 300;
  config.n_adrs = 150;
  config.seed = 777;
  faers::SyntheticGenerator generator(config);
  auto dataset = generator.Generate();
  EXPECT_TRUE(dataset.ok());
  faers::Preprocessor preprocessor{faers::PreprocessOptions{}};
  auto pre = preprocessor.Process(*dataset);
  EXPECT_TRUE(pre.ok());
  return *std::move(pre);
}

class MultiQuarterTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    q1_ = new faers::PreprocessResult(MakeQuarter(1, 1500));
    q2_ = new faers::PreprocessResult(MakeQuarter(2, 1500));
  }
  static void TearDownTestSuite() {
    delete q1_;
    delete q2_;
  }
  static faers::PreprocessResult* q1_;
  static faers::PreprocessResult* q2_;
};

faers::PreprocessResult* MultiQuarterTest::q1_ = nullptr;
faers::PreprocessResult* MultiQuarterTest::q2_ = nullptr;

TEST_F(MultiQuarterTest, MergeConcatenatesTransactions) {
  auto merged = MergeQuarters({q1_, q2_});
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged->transactions.size(),
            q1_->transactions.size() + q2_->transactions.size());
  EXPECT_EQ(merged->primary_ids.size(), merged->transactions.size());
  EXPECT_EQ(merged->stats.reports_kept,
            q1_->stats.reports_kept + q2_->stats.reports_kept);
}

TEST_F(MultiQuarterTest, MergePreservesSupportsByName) {
  auto merged = MergeQuarters({q1_, q2_});
  ASSERT_TRUE(merged.ok());
  // Any drug present in both quarters: merged support == sum of supports.
  for (const char* name : {"ASPIRIN", "WARFARIN", "PROGRAF"}) {
    auto id1 = q1_->items.Lookup(name);
    auto id2 = q2_->items.Lookup(name);
    auto idm = merged->items.Lookup(name);
    ASSERT_TRUE(id1.ok() && id2.ok() && idm.ok()) << name;
    EXPECT_EQ(merged->transactions.ItemSupport(*idm),
              q1_->transactions.ItemSupport(*id1) +
                  q2_->transactions.ItemSupport(*id2))
        << name;
  }
}

TEST_F(MultiQuarterTest, MergePreservesDomains) {
  auto merged = MergeQuarters({q1_, q2_});
  ASSERT_TRUE(merged.ok());
  auto drug = merged->items.Lookup("ASPIRIN");
  ASSERT_TRUE(drug.ok());
  EXPECT_EQ(merged->items.Domain(*drug), mining::ItemDomain::kDrug);
  auto adr = merged->items.Lookup("NAUSEA");
  ASSERT_TRUE(adr.ok());
  EXPECT_EQ(merged->items.Domain(*adr), mining::ItemDomain::kAdr);
}

TEST_F(MultiQuarterTest, MergedCorpusIsAnalyzable) {
  auto merged = MergeQuarters({q1_, q2_});
  ASSERT_TRUE(merged.ok());
  AnalyzerOptions options;
  options.mining.min_support = 6;
  MarasAnalyzer analyzer(options);
  auto analysis = analyzer.Analyze(*merged);
  ASSERT_TRUE(analysis.ok());
  EXPECT_GT(analysis->stats.mcac_count, 0u);
}

TEST(MergeQuartersTest, EmptyInputRejected) {
  EXPECT_TRUE(MergeQuarters({}).status().IsInvalidArgument());
}

TEST_F(MultiQuarterTest, TrackSignalAcrossQuarters) {
  auto trend = TrackSignal({q1_, q2_}, {"2014Q1", "2014Q2"},
                           {"ZOMETA", "PRILOSEC"},
                           {"OSTEONECROSIS OF JAW"});
  ASSERT_EQ(trend.size(), 2u);
  EXPECT_EQ(trend[0].label, "2014Q1");
  for (const auto& row : trend) {
    EXPECT_GT(row.combination_reports, 0u);
    EXPECT_GE(row.combination_reports, row.reports);
    EXPECT_GE(row.confidence, 0.0);
    EXPECT_LE(row.confidence, 1.0);
  }
}

TEST_F(MultiQuarterTest, TrackSignalMissingVocabularyGivesZeroRow) {
  auto trend = TrackSignal({q1_}, {"2014Q1"}, {"NO SUCH DRUG"}, {"NAUSEA"});
  ASSERT_EQ(trend.size(), 1u);
  EXPECT_EQ(trend[0].combination_reports, 0u);
  EXPECT_EQ(trend[0].reports, 0u);
}

TEST(ClassifyTrendTest, Verdicts) {
  auto row = [](size_t combo, double conf) {
    QuarterlySignalTrend r;
    r.combination_reports = combo;
    r.reports = static_cast<size_t>(conf * static_cast<double>(combo));
    r.confidence = conf;
    return r;
  };
  EXPECT_EQ(ClassifyTrend({row(10, 0.2), row(10, 0.6)}),
            TrendVerdict::kEmerging);
  EXPECT_EQ(ClassifyTrend({row(10, 0.6), row(10, 0.2)}),
            TrendVerdict::kFading);
  EXPECT_EQ(ClassifyTrend({row(10, 0.4), row(10, 0.45)}),
            TrendVerdict::kStable);
  EXPECT_EQ(ClassifyTrend({row(10, 0.4)}), TrendVerdict::kInsufficient);
  EXPECT_EQ(ClassifyTrend({row(0, 0.0), row(0, 0.0)}),
            TrendVerdict::kInsufficient);
  // Zero-combination quarters are skipped, not treated as dips.
  EXPECT_EQ(ClassifyTrend({row(10, 0.2), row(0, 0.0), row(10, 0.6)}),
            TrendVerdict::kEmerging);
}

// --- Fault-tolerant pipeline ------------------------------------------------

faers::QuarterDataset GenerateRaw(int year, int quarter, uint64_t seed) {
  faers::GeneratorConfig config;
  config.year = year;
  config.quarter = quarter;
  config.seed = seed;
  config.n_reports = 400;
  config.n_drugs = 300;
  config.n_adrs = 150;
  faers::SyntheticGenerator generator(config);
  auto dataset = generator.Generate();
  EXPECT_TRUE(dataset.ok());
  return *std::move(dataset);
}

class MultiQuarterPipelineTest : public ::testing::Test {
 protected:
  // Writes clean 2041Q1 and 2041Q2 extracts into a per-test subdirectory of
  // TempDir. Tests in this fixture run as separate ctest entries and may run
  // concurrently under `ctest -j`; writing the same filenames into the shared
  // TempDir root would let one test truncate a quarter another is reading.
  // The year 2041 is still unique to this suite across test binaries.
  static std::string WriteCleanQuarters(const std::string& tag) {
    std::string dir = ::testing::TempDir() + "/mq41_" + tag;
    std::filesystem::create_directories(dir);
    EXPECT_TRUE(
        faers::WriteAsciiQuarterToDir(GenerateRaw(2041, 1, 101), dir).ok());
    EXPECT_TRUE(
        faers::WriteAsciiQuarterToDir(GenerateRaw(2041, 2, 202), dir).ok());
    return dir;
  }

  static MultiQuarterOptions Lenient(faers::IngestPolicy policy) {
    MultiQuarterOptions options;
    options.ingest.policy = policy;
    options.ingest.max_bad_row_fraction = 0.5;
    return options;
  }
};

TEST_F(MultiQuarterPipelineTest, StrictRunLoadsAllCleanQuarters) {
  std::string dir = WriteCleanQuarters("strict_loads");
  MultiQuarterPipeline pipeline{MultiQuarterOptions{}};
  auto run = pipeline.RunFromDirs({{dir, 2041, 1}, {dir, 2041, 2}});
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->quarters_loaded, 2u);
  ASSERT_EQ(run->outcomes.size(), 2u);
  EXPECT_EQ(run->outcomes[0].label, "2041Q1");
  EXPECT_TRUE(run->outcomes[0].loaded);
  EXPECT_TRUE(run->outcomes[1].loaded);
  EXPECT_EQ(run->ingest.rows_rejected, 0u);
  EXPECT_GT(run->merged.transactions.size(), 0u);
}

TEST_F(MultiQuarterPipelineTest, StrictRunFailsNamingTheBrokenQuarter) {
  std::string dir = WriteCleanQuarters("strict_fails");
  MultiQuarterPipeline pipeline{MultiQuarterOptions{}};
  auto run =
      pipeline.RunFromDirs({{dir, 2041, 1}, {dir, 2041, 3}});  // no 2041Q3
  ASSERT_FALSE(run.ok());
  EXPECT_NE(run.status().message().find("quarter 2041Q3"),
            std::string::npos)
      << run.status().ToString();
}

TEST_F(MultiQuarterPipelineTest, PermissiveRunSkipsUnreadableQuarter) {
  std::string dir = WriteCleanQuarters("permissive_skips");
  MultiQuarterPipeline pipeline{Lenient(faers::IngestPolicy::kPermissive)};
  auto run = pipeline.RunFromDirs(
      {{dir, 2041, 1}, {dir, 2041, 3}, {dir, 2041, 2}});
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->quarters_loaded, 2u);
  ASSERT_EQ(run->outcomes.size(), 3u);
  EXPECT_FALSE(run->outcomes[1].loaded);
  EXPECT_FALSE(run->outcomes[1].error.empty());
  bool skip_warning = false;
  for (const std::string& warning : run->ingest.warnings) {
    skip_warning = skip_warning ||
                   warning.find("skipping quarter 2041Q3") != std::string::npos;
  }
  EXPECT_TRUE(skip_warning);
  // The degraded corpus still analyzes, and the analyzer surfaces the skip.
  AnalyzerOptions options;
  options.mining.min_support = 6;
  auto analysis = MarasAnalyzer(options).Analyze(run->merged, run->ingest);
  ASSERT_TRUE(analysis.ok());
  EXPECT_FALSE(analysis->ingest_warnings.empty());
}

TEST_F(MultiQuarterPipelineTest, AllQuartersFailingIsAnError) {
  MultiQuarterPipeline pipeline{Lenient(faers::IngestPolicy::kPermissive)};
  auto run = pipeline.RunFromDirs(
      {{"/nonexistent/faers", 2019, 1}, {"/nonexistent/faers", 2019, 2}});
  ASSERT_FALSE(run.ok());
  EXPECT_TRUE(run.status().IsCorruption());
  EXPECT_NE(run.status().message().find("all 2 quarters"), std::string::npos);
}

TEST_F(MultiQuarterPipelineTest, EmptySourceListRejected) {
  MultiQuarterPipeline pipeline{MultiQuarterOptions{}};
  EXPECT_TRUE(pipeline.RunFromDirs({}).status().IsInvalidArgument());
  EXPECT_TRUE(pipeline.Run({}).status().IsInvalidArgument());
}

TEST_F(MultiQuarterPipelineTest, InMemoryRunMergesQuarters) {
  std::vector<faers::QuarterDataset> quarters;
  quarters.push_back(GenerateRaw(2014, 1, 101));
  quarters.push_back(GenerateRaw(2014, 2, 202));
  MultiQuarterPipeline pipeline{MultiQuarterOptions{}};
  auto run = pipeline.Run(quarters);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->quarters_loaded, 2u);
  EXPECT_GT(run->merged.stats.reports_kept, 0u);
}

TEST_F(MultiQuarterPipelineTest, QuarantineRunAccountsForInjectedFaults) {
  std::string dir = ::testing::TempDir();
  ASSERT_TRUE(
      faers::WriteAsciiQuarterToDir(GenerateRaw(2045, 3, 303), dir).ok());
  faers::QuarterDataset damaged_src = GenerateRaw(2045, 4, 404);
  auto clean = faers::WriteAsciiQuarter(damaged_src);
  ASSERT_TRUE(clean.ok());
  faers::CorruptorConfig corruption;
  corruption.seed = 9;
  corruption.faults = faers::AllRowFaults(1);
  auto corrupted = faers::Corruptor(corruption).Corrupt(*clean, 2045, 4);
  ASSERT_TRUE(corrupted.ok());
  ASSERT_TRUE(
      faers::WriteCorruptedQuarterToDir(*corrupted, dir, 2045, 4).ok());

  MultiQuarterPipeline pipeline{Lenient(faers::IngestPolicy::kQuarantine)};
  auto run = pipeline.RunFromDirs({{dir, 2045, 3}, {dir, 2045, 4}});
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->quarters_loaded, 2u);
  EXPECT_EQ(run->ingest.FaultCount(), corrupted->RowFaultCount());
  EXPECT_EQ(run->outcomes[0].ingest.rows_rejected, 0u);
  EXPECT_EQ(run->outcomes[1].ingest.FaultCount(), corrupted->RowFaultCount());
  EXPECT_FALSE(run->ingest.quarantined.empty());
}

TEST(ClassifyTrendTest, NamesComplete) {
  EXPECT_STREQ(TrendVerdictName(TrendVerdict::kEmerging), "emerging");
  EXPECT_STREQ(TrendVerdictName(TrendVerdict::kStable), "stable");
  EXPECT_STREQ(TrendVerdictName(TrendVerdict::kFading), "fading");
  EXPECT_STREQ(TrendVerdictName(TrendVerdict::kInsufficient),
               "insufficient");
}

}  // namespace
}  // namespace maras::core
