#include "core/multi_quarter.h"

#include <gtest/gtest.h>

#include "core/analyzer.h"
#include "faers/generator.h"
#include "faers/preprocess.h"

namespace maras::core {
namespace {

faers::PreprocessResult MakeQuarter(int quarter, size_t reports) {
  faers::GeneratorConfig config;
  config.quarter = quarter;
  config.n_reports = reports;
  config.n_drugs = 300;
  config.n_adrs = 150;
  config.seed = 777;
  faers::SyntheticGenerator generator(config);
  auto dataset = generator.Generate();
  EXPECT_TRUE(dataset.ok());
  faers::Preprocessor preprocessor{faers::PreprocessOptions{}};
  auto pre = preprocessor.Process(*dataset);
  EXPECT_TRUE(pre.ok());
  return *std::move(pre);
}

class MultiQuarterTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    q1_ = new faers::PreprocessResult(MakeQuarter(1, 1500));
    q2_ = new faers::PreprocessResult(MakeQuarter(2, 1500));
  }
  static void TearDownTestSuite() {
    delete q1_;
    delete q2_;
  }
  static faers::PreprocessResult* q1_;
  static faers::PreprocessResult* q2_;
};

faers::PreprocessResult* MultiQuarterTest::q1_ = nullptr;
faers::PreprocessResult* MultiQuarterTest::q2_ = nullptr;

TEST_F(MultiQuarterTest, MergeConcatenatesTransactions) {
  auto merged = MergeQuarters({q1_, q2_});
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged->transactions.size(),
            q1_->transactions.size() + q2_->transactions.size());
  EXPECT_EQ(merged->primary_ids.size(), merged->transactions.size());
  EXPECT_EQ(merged->stats.reports_kept,
            q1_->stats.reports_kept + q2_->stats.reports_kept);
}

TEST_F(MultiQuarterTest, MergePreservesSupportsByName) {
  auto merged = MergeQuarters({q1_, q2_});
  ASSERT_TRUE(merged.ok());
  // Any drug present in both quarters: merged support == sum of supports.
  for (const char* name : {"ASPIRIN", "WARFARIN", "PROGRAF"}) {
    auto id1 = q1_->items.Lookup(name);
    auto id2 = q2_->items.Lookup(name);
    auto idm = merged->items.Lookup(name);
    ASSERT_TRUE(id1.ok() && id2.ok() && idm.ok()) << name;
    EXPECT_EQ(merged->transactions.ItemSupport(*idm),
              q1_->transactions.ItemSupport(*id1) +
                  q2_->transactions.ItemSupport(*id2))
        << name;
  }
}

TEST_F(MultiQuarterTest, MergePreservesDomains) {
  auto merged = MergeQuarters({q1_, q2_});
  ASSERT_TRUE(merged.ok());
  auto drug = merged->items.Lookup("ASPIRIN");
  ASSERT_TRUE(drug.ok());
  EXPECT_EQ(merged->items.Domain(*drug), mining::ItemDomain::kDrug);
  auto adr = merged->items.Lookup("NAUSEA");
  ASSERT_TRUE(adr.ok());
  EXPECT_EQ(merged->items.Domain(*adr), mining::ItemDomain::kAdr);
}

TEST_F(MultiQuarterTest, MergedCorpusIsAnalyzable) {
  auto merged = MergeQuarters({q1_, q2_});
  ASSERT_TRUE(merged.ok());
  AnalyzerOptions options;
  options.mining.min_support = 6;
  MarasAnalyzer analyzer(options);
  auto analysis = analyzer.Analyze(*merged);
  ASSERT_TRUE(analysis.ok());
  EXPECT_GT(analysis->stats.mcac_count, 0u);
}

TEST(MergeQuartersTest, EmptyInputRejected) {
  EXPECT_TRUE(MergeQuarters({}).status().IsInvalidArgument());
}

TEST_F(MultiQuarterTest, TrackSignalAcrossQuarters) {
  auto trend = TrackSignal({q1_, q2_}, {"2014Q1", "2014Q2"},
                           {"ZOMETA", "PRILOSEC"},
                           {"OSTEONECROSIS OF JAW"});
  ASSERT_EQ(trend.size(), 2u);
  EXPECT_EQ(trend[0].label, "2014Q1");
  for (const auto& row : trend) {
    EXPECT_GT(row.combination_reports, 0u);
    EXPECT_GE(row.combination_reports, row.reports);
    EXPECT_GE(row.confidence, 0.0);
    EXPECT_LE(row.confidence, 1.0);
  }
}

TEST_F(MultiQuarterTest, TrackSignalMissingVocabularyGivesZeroRow) {
  auto trend = TrackSignal({q1_}, {"2014Q1"}, {"NO SUCH DRUG"}, {"NAUSEA"});
  ASSERT_EQ(trend.size(), 1u);
  EXPECT_EQ(trend[0].combination_reports, 0u);
  EXPECT_EQ(trend[0].reports, 0u);
}

TEST(ClassifyTrendTest, Verdicts) {
  auto row = [](size_t combo, double conf) {
    QuarterlySignalTrend r;
    r.combination_reports = combo;
    r.reports = static_cast<size_t>(conf * combo);
    r.confidence = conf;
    return r;
  };
  EXPECT_EQ(ClassifyTrend({row(10, 0.2), row(10, 0.6)}),
            TrendVerdict::kEmerging);
  EXPECT_EQ(ClassifyTrend({row(10, 0.6), row(10, 0.2)}),
            TrendVerdict::kFading);
  EXPECT_EQ(ClassifyTrend({row(10, 0.4), row(10, 0.45)}),
            TrendVerdict::kStable);
  EXPECT_EQ(ClassifyTrend({row(10, 0.4)}), TrendVerdict::kInsufficient);
  EXPECT_EQ(ClassifyTrend({row(0, 0.0), row(0, 0.0)}),
            TrendVerdict::kInsufficient);
  // Zero-combination quarters are skipped, not treated as dips.
  EXPECT_EQ(ClassifyTrend({row(10, 0.2), row(0, 0.0), row(10, 0.6)}),
            TrendVerdict::kEmerging);
}

TEST(ClassifyTrendTest, NamesComplete) {
  EXPECT_STREQ(TrendVerdictName(TrendVerdict::kEmerging), "emerging");
  EXPECT_STREQ(TrendVerdictName(TrendVerdict::kStable), "stable");
  EXPECT_STREQ(TrendVerdictName(TrendVerdict::kFading), "fading");
  EXPECT_STREQ(TrendVerdictName(TrendVerdict::kInsufficient),
               "insufficient");
}

}  // namespace
}  // namespace maras::core
