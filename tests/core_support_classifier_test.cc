#include "core/support_classifier.h"

#include <gtest/gtest.h>

#include "mining/closed_itemsets.h"
#include "mining/fpgrowth.h"
#include "util/random.h"

namespace maras::core {
namespace {

using mining::Itemset;
using mining::TransactionDatabase;

TEST(SupportClassifierTest, ExplicitWhenReportMatchesExactly) {
  TransactionDatabase db;
  db.Add({1, 2, 5});
  db.Add({1, 2, 5, 7});
  EXPECT_EQ(ClassifySupport(db, {1, 2, 5}), SupportKind::kExplicit);
}

TEST(SupportClassifierTest, ImplicitWhenPinnedByIntersection) {
  // No report equals {1,2,5} but the two containing reports intersect to it.
  TransactionDatabase db;
  db.Add({1, 2, 5, 7});
  db.Add({1, 2, 5, 9});
  EXPECT_EQ(ClassifySupport(db, {1, 2, 5}), SupportKind::kImplicit);
}

TEST(SupportClassifierTest, UnsupportedPartialAssociation) {
  // {1,2} only ever occurs inside {1,2,5}: a type-3 partial association.
  TransactionDatabase db;
  db.Add({1, 2, 5});
  db.Add({1, 2, 5});
  EXPECT_EQ(ClassifySupport(db, {1, 2}), SupportKind::kUnsupported);
}

TEST(SupportClassifierTest, AbsentItemset) {
  TransactionDatabase db;
  db.Add({1, 2});
  EXPECT_EQ(ClassifySupport(db, {3}), SupportKind::kAbsent);
  EXPECT_EQ(ClassifySupport(db, {1, 3}), SupportKind::kAbsent);
}

TEST(SupportClassifierTest, SingleContainingReportMustMatchExactly) {
  TransactionDatabase db;
  db.Add({1, 2, 3});
  EXPECT_EQ(ClassifySupport(db, {1, 2}), SupportKind::kUnsupported);
  EXPECT_EQ(ClassifySupport(db, {1, 2, 3}), SupportKind::kExplicit);
}

TEST(SupportClassifierTest, PaperSection33Example) {
  // Report 1: drugs {d1,d2}=items {1,2}, ADRs {a1,a2}=items {10,11}.
  // R2 ≡ d1 => a2 ({1,11}) is misleading from report 1 alone...
  TransactionDatabase db;
  db.Add({1, 2, 10, 11});
  EXPECT_EQ(ClassifySupport(db, {1, 11}), SupportKind::kUnsupported);
  // ...but a second report {d1,d5,d6},{a2,a3,a7} legitimizes it.
  db.Add({1, 5, 6, 11, 12, 13});
  EXPECT_EQ(ClassifySupport(db, {1, 11}), SupportKind::kImplicit);
}

TEST(SupportClassifierTest, Lemma342ClosedImpliesSupported) {
  // Property test of the paper's Lemma 3.4.2 under the closure
  // interpretation: every closed frequent itemset is supported.
  maras::Rng rng(303);
  for (int trial = 0; trial < 8; ++trial) {
    TransactionDatabase db;
    for (int t = 0; t < 70; ++t) {
      Itemset txn;
      for (size_t i = 1 + rng.Uniform(5); i > 0; --i) {
        txn.push_back(static_cast<mining::ItemId>(rng.Uniform(9)));
      }
      db.Add(std::move(txn));
    }
    auto closed =
        mining::MineClosed(db, mining::MiningOptions{.min_support = 1});
    ASSERT_TRUE(closed.ok());
    for (const auto& fi : closed->itemsets()) {
      EXPECT_TRUE(IsSupported(db, fi.items)) << mining::ToString(fi.items);
    }
  }
}

TEST(SupportClassifierTest, NonClosedFrequentItemsetsAreUnsupported) {
  // The converse direction on a crafted database: the partial itemset is
  // non-closed and classified unsupported.
  TransactionDatabase db;
  db.Add({1, 2, 3});
  db.Add({1, 2, 3});
  db.Add({4, 5});
  EXPECT_FALSE(IsSupported(db, {1, 2}));
  EXPECT_FALSE(mining::IsClosedInDatabase(db, {1, 2}));
}

TEST(PairwiseWitnessTest, StricterThanClosure) {
  // Three reports pin {1} down jointly (closure == {1}) but no PAIR
  // intersects to exactly {1} — the distinction the header documents.
  TransactionDatabase db;
  db.Add({1, 2, 3});
  db.Add({1, 2, 4});
  db.Add({1, 3, 4});
  EXPECT_EQ(ClassifySupport(db, {1}), SupportKind::kImplicit);
  EXPECT_FALSE(HasPairwiseWitness(db, {1}));
}

TEST(PairwiseWitnessTest, FindsWitnessWhenPresent) {
  TransactionDatabase db;
  db.Add({1, 2, 7});
  db.Add({1, 2, 9});
  EXPECT_TRUE(HasPairwiseWitness(db, {1, 2}));
}

TEST(SupportKindNameTest, AllNamed) {
  EXPECT_STREQ(SupportKindName(SupportKind::kExplicit), "explicit");
  EXPECT_STREQ(SupportKindName(SupportKind::kImplicit), "implicit");
  EXPECT_STREQ(SupportKindName(SupportKind::kUnsupported), "unsupported");
  EXPECT_STREQ(SupportKindName(SupportKind::kAbsent), "absent");
}

}  // namespace
}  // namespace maras::core
