#include "text/edit_distance.h"

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "util/random.h"

namespace maras::text {
namespace {

TEST(LevenshteinTest, KnownDistances) {
  EXPECT_EQ(LevenshteinDistance("", ""), 0u);
  EXPECT_EQ(LevenshteinDistance("abc", "abc"), 0u);
  EXPECT_EQ(LevenshteinDistance("abc", ""), 3u);
  EXPECT_EQ(LevenshteinDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(LevenshteinDistance("flaw", "lawn"), 2u);
}

TEST(LevenshteinTest, Symmetric) {
  EXPECT_EQ(LevenshteinDistance("warfarin", "warfrin"),
            LevenshteinDistance("warfrin", "warfarin"));
}

TEST(DamerauTest, TranspositionCostsOne) {
  // Plain Levenshtein needs 2 edits for an adjacent swap.
  EXPECT_EQ(LevenshteinDistance("ASPIRIN", "APSIRIN"), 2u);
  EXPECT_EQ(DamerauLevenshteinDistance("ASPIRIN", "APSIRIN"), 1u);
}

TEST(DamerauTest, KnownDistances) {
  EXPECT_EQ(DamerauLevenshteinDistance("", "abc"), 3u);
  EXPECT_EQ(DamerauLevenshteinDistance("abc", ""), 3u);
  EXPECT_EQ(DamerauLevenshteinDistance("ca", "abc"), 3u);  // classic example
  EXPECT_EQ(DamerauLevenshteinDistance("warfarin", "warfarin"), 0u);
  EXPECT_EQ(DamerauLevenshteinDistance("XOLAIR", "XOLIAR"), 1u);
}

TEST(DamerauTest, NeverExceedsLevenshtein) {
  maras::Rng rng(17);
  for (int trial = 0; trial < 200; ++trial) {
    std::string a, b;
    for (size_t i = rng.Uniform(10); i > 0; --i) {
      a += static_cast<char>('A' + rng.Uniform(5));
    }
    for (size_t i = rng.Uniform(10); i > 0; --i) {
      b += static_cast<char>('A' + rng.Uniform(5));
    }
    EXPECT_LE(DamerauLevenshteinDistance(a, b), LevenshteinDistance(a, b))
        << a << " vs " << b;
  }
}

TEST(DamerauTest, TriangleInequalityOnRandomStrings) {
  maras::Rng rng(29);
  for (int trial = 0; trial < 100; ++trial) {
    std::string s[3];
    for (auto& str : s) {
      for (size_t i = 1 + rng.Uniform(8); i > 0; --i) {
        str += static_cast<char>('A' + rng.Uniform(4));
      }
    }
    size_t ab = DamerauLevenshteinDistance(s[0], s[1]);
    size_t bc = DamerauLevenshteinDistance(s[1], s[2]);
    size_t ac = DamerauLevenshteinDistance(s[0], s[2]);
    EXPECT_LE(ac, ab + bc);
  }
}

TEST(BoundedTest, AgreesWithinBound) {
  maras::Rng rng(31);
  for (int trial = 0; trial < 200; ++trial) {
    std::string a, b;
    for (size_t i = rng.Uniform(12); i > 0; --i) {
      a += static_cast<char>('A' + rng.Uniform(6));
    }
    for (size_t i = rng.Uniform(12); i > 0; --i) {
      b += static_cast<char>('A' + rng.Uniform(6));
    }
    size_t exact = DamerauLevenshteinDistance(a, b);
    for (size_t bound : {1u, 2u, 4u}) {
      size_t bounded = BoundedDamerauLevenshtein(a, b, bound);
      if (exact <= bound) {
        EXPECT_EQ(bounded, exact) << a << " vs " << b;
      } else {
        EXPECT_GT(bounded, bound) << a << " vs " << b;
      }
    }
  }
}

TEST(BoundedTest, LengthGapShortCircuits) {
  EXPECT_GT(BoundedDamerauLevenshtein("AB", "ABCDEFG", 2), 2u);
}

TEST(SimilarityTest, Range) {
  EXPECT_DOUBLE_EQ(Similarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(Similarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(Similarity("abc", "xyz"), 0.0);
  double s = Similarity("PROGRAF", "PROGRAFF");
  EXPECT_GT(s, 0.8);
  EXPECT_LT(s, 1.0);
}

using DistanceCase = std::tuple<std::string, std::string, size_t>;

class DamerauParamTest : public ::testing::TestWithParam<DistanceCase> {};

TEST_P(DamerauParamTest, MatchesExpected) {
  const auto& [a, b, expected] = GetParam();
  EXPECT_EQ(DamerauLevenshteinDistance(a, b), expected);
}

INSTANTIATE_TEST_SUITE_P(
    DrugNameTypos, DamerauParamTest,
    ::testing::Values(
        DistanceCase{"WARFARIN", "WARFRIN", 1},    // dropped letter
        DistanceCase{"NEXIUM", "NEXUIM", 1},       // transposition
        DistanceCase{"PRILOSEC", "PRILOSECC", 1},  // duplicated letter
        DistanceCase{"ZANTAC", "XANTAC", 1},       // substitution
        DistanceCase{"METAMIZOLE", "METAMIZOL", 1},
        DistanceCase{"IBUPROFEN", "IBUPROFIN", 1},
        DistanceCase{"PREDNISONE", "PREDNISOLONE", 2},
        DistanceCase{"ASPIRIN", "WARFARIN", 4}));

}  // namespace
}  // namespace maras::text
