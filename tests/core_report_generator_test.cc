#include "core/report_generator.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace maras::core {
namespace {

using maras::test::AsthmaCorpus;
using maras::test::MiniCorpus;

struct Fixture {
  MiniCorpus corpus = AsthmaCorpus();
  faers::PreprocessResult pre;
  AnalysisResult analysis;
  std::vector<RankedMcac> ranked;
  KnowledgeBase kb = CuratedKnowledgeBase();

  Fixture() {
    // Add a severe, undocumented signal for the alert section.
    corpus.Add({{"A", "B"}, {"HAEMORRHAGE"}}, 6);
    corpus.Add({{"A"}, {"RASH"}}, 9);
    corpus.Add({{"B"}, {"RASH"}}, 9);
    pre.items = std::move(corpus.items);
    for (const auto& t : corpus.db.transactions()) {
      pre.transactions.Add(t);
      pre.primary_ids.push_back(pre.primary_ids.size() + 1);
      pre.demographics.push_back(faers::CaseDemographics{});
    }
    pre.stats.reports_in = pre.transactions.size();
    pre.stats.reports_kept = pre.transactions.size();
    AnalyzerOptions options;
    options.mining.min_support = 2;
    MarasAnalyzer analyzer(options);
    auto result = analyzer.Analyze(pre.items, pre.transactions);
    EXPECT_TRUE(result.ok());
    analysis = *std::move(result);
    ranked = RankMcacs(analysis.mcacs,
                       RankingMethod::kExclusivenessConfidence, {});
  }

  ReportInputs Inputs() {
    ReportInputs inputs;
    inputs.current = &pre;
    inputs.analysis = &analysis;
    inputs.ranked = &ranked;
    inputs.knowledge_base = &kb;
    return inputs;
  }
};

TEST(ReportGeneratorTest, IncompleteInputsRejected) {
  ReportInputs empty;
  EXPECT_TRUE(
      GenerateMarkdownReport(empty).status().IsInvalidArgument());
}

TEST(ReportGeneratorTest, ContainsHeadlineSections) {
  Fixture f;
  auto md = GenerateMarkdownReport(f.Inputs());
  ASSERT_TRUE(md.ok());
  EXPECT_NE(md->find("# MARAS quarterly surveillance report"),
            std::string::npos);
  EXPECT_NE(md->find("## Top interaction signals"), std::string::npos);
  EXPECT_NE(md->find("## Severe, previously undocumented signals"),
            std::string::npos);
  EXPECT_NE(md->find("contextual clusters"), std::string::npos);
  // Table rows carry the triage columns.
  EXPECT_NE(md->find("| severity | novelty |"), std::string::npos);
}

TEST(ReportGeneratorTest, AlertsSectionFlagsSevereNovelSignal) {
  Fixture f;
  auto md = GenerateMarkdownReport(f.Inputs());
  ASSERT_TRUE(md.ok());
  // The injected A+B => HAEMORRHAGE cluster is severe and unknown to the
  // curated knowledge base.
  EXPECT_NE(md->find("[A] [B] => [HAEMORRHAGE]** (rank"), std::string::npos);
  EXPECT_NE(md->find("needs review"), std::string::npos);
}

TEST(ReportGeneratorTest, TopSignalsCapRespected) {
  Fixture f;
  ReportOptions options;
  options.top_signals = 1;
  auto md = GenerateMarkdownReport(f.Inputs(), options);
  ASSERT_TRUE(md.ok());
  EXPECT_NE(md->find("| 1 | "), std::string::npos);
  EXPECT_EQ(md->find("| 2 | "), std::string::npos);
}

TEST(ReportGeneratorTest, WatchlistSectionRendersTrends) {
  Fixture f;
  ReportInputs inputs = f.Inputs();
  WatchlistEntry entry;
  entry.label = "A + B";
  QuarterlySignalTrend q1;
  q1.label = "Q1";
  q1.combination_reports = 10;
  q1.reports = 2;
  q1.confidence = 0.2;
  QuarterlySignalTrend q2 = q1;
  q2.label = "Q2";
  q2.reports = 6;
  q2.confidence = 0.6;
  entry.trend = {q1, q2};
  inputs.watchlist.push_back(entry);
  auto md = GenerateMarkdownReport(inputs);
  ASSERT_TRUE(md.ok());
  EXPECT_NE(md->find("## Watched combinations"), std::string::npos);
  EXPECT_NE(md->find("| A + B | 0.20 | 0.60 | emerging |"),
            std::string::npos);
}

TEST(ReportGeneratorTest, NoAlertsFallbackLine) {
  Fixture f;
  ReportOptions options;
  options.alert_severity = Severity::kFatal;  // nothing qualifies
  auto md = GenerateMarkdownReport(f.Inputs(), options);
  ASSERT_TRUE(md.ok());
  EXPECT_NE(md->find("- none this quarter"), std::string::npos);
}

}  // namespace
}  // namespace maras::core
