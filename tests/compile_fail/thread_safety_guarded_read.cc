// Positive control for the thread-safety compile-fail test: identical shape
// to thread_safety_unguarded_read.cc, except every guarded access holds the
// right capability — exclusive for writes, shared for reads, RAII scopes
// throughout. This file must compile clean under the same
// `-Wthread-safety -Werror=thread-safety` flags, proving the negative test
// fails because of the unguarded accesses and not some unrelated error.
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

class Counter {
 public:
  void Increment() {
    maras::MutexLock lock(&mu_);
    ++value_;
  }

  int Get() {
    maras::MutexLock lock(&mu_);
    return value_;
  }

 private:
  maras::Mutex mu_;
  int value_ GUARDED_BY(mu_) = 0;
};

class Gauge {
 public:
  void Set(int level) {
    maras::WriterMutexLock lock(&mu_);
    level_ = level;
  }

  int Read() const {
    maras::ReaderMutexLock lock(&mu_);
    return level_;
  }

 private:
  mutable maras::SharedMutex mu_;
  int level_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.Increment();
  Gauge gauge;
  gauge.Set(counter.Get());
  return gauge.Read();
}
