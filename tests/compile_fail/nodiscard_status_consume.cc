// Positive control for the compile-fail test: identical shape to
// nodiscard_status_drop.cc, except every result is consumed. This file
// must compile under the same flags — proving the negative test fails for
// the dropped results, not for an unrelated reason.
#include <utility>

#include "util/status.h"
#include "util/statusor.h"

namespace {

maras::Status Fallible() { return maras::Status::IOError("boom"); }
maras::StatusOr<int> FallibleValue() { return maras::Status::IOError("boom"); }

}  // namespace

int main() {
  maras::Status status = Fallible();
  if (!status.ok()) {
    // Justified discard: exercising the sanctioned macro.
    MARAS_IGNORE_STATUS(Fallible());
  }
  auto value = FallibleValue();
  return value.ok() ? std::move(value).value() : 0;
}
