// Compile-time negative test: dropping a Status return must NOT compile
// under -Werror=unused-result. The ctest that builds this file is marked
// WILL_FAIL — if this ever compiles, the [[nodiscard]] guarantee has
// regressed and the test suite goes red.
#include "util/status.h"
#include "util/statusor.h"

namespace {

maras::Status Fallible() { return maras::Status::IOError("boom"); }
maras::StatusOr<int> FallibleValue() { return maras::Status::IOError("boom"); }

}  // namespace

int main() {
  Fallible();       // dropped Status: must be a compile error
  FallibleValue();  // dropped StatusOr: must be a compile error
  return 0;
}
