// Compile-time negative test for the concurrency capability model: reading
// a GUARDED_BY field without holding its mutex must NOT compile under
// `clang -Wthread-safety -Werror=thread-safety`. The ctest that builds this
// file is marked WILL_FAIL — if it ever compiles, the static half of the
// race-detection story has lost its teeth. (Registered only when a clang is
// available; gcc expands the annotations to nothing by design.)
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

class Counter {
 public:
  void Increment() {
    maras::MutexLock lock(&mu_);
    ++value_;
  }

  // BUG under the capability model: value_ is read with mu_ not held.
  int UnguardedGet() { return value_; }

  // BUG: writer lock path releases without acquiring.
  void DoubleUnlock() { mu_.Unlock(); }

 private:
  maras::Mutex mu_;
  int value_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.Increment();
  counter.DoubleUnlock();
  return counter.UnguardedGet();
}
