#include "viz/glyph.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "core/mcac.h"
#include "test_util.h"

namespace maras::viz {
namespace {

using maras::test::AsthmaCorpus;
using maras::test::MiniCorpus;

GlyphSpec SampleSpec() {
  GlyphSpec spec;
  spec.target_value = 0.9;
  spec.levels = {{0.4, 0.2, 0.1}, {0.3, 0.25, 0.05}};
  spec.title = "sample cluster";
  return spec;
}

TEST(AnnularSectorPathTest, StartsAtOuterArcAndCloses) {
  std::string d = AnnularSectorPath(100, 100, 40, 80, 0.0, 1.0);
  EXPECT_EQ(d.substr(0, 2), "M ");
  EXPECT_NE(d.find(" A "), std::string::npos);
  EXPECT_NE(d.find(" L "), std::string::npos);
  EXPECT_EQ(d.substr(d.size() - 1), "Z");
}

TEST(AnnularSectorPathTest, TwelveOClockStart) {
  // Angle 0 = 12 o'clock: the first point is straight above the center.
  std::string d = AnnularSectorPath(100, 100, 40, 80, 0.0, 0.5);
  EXPECT_EQ(d.substr(0, std::string("M 100.00 20.00").size()),
            "M 100.00 20.00");
}

TEST(AnnularSectorPathTest, LargeArcFlagSetPastPi) {
  std::string small = AnnularSectorPath(0, 0, 10, 20, 0.0, 1.0);
  std::string large = AnnularSectorPath(0, 0, 10, 20, 0.0, 4.0);
  EXPECT_NE(small.find(" 0 1 "), std::string::npos);  // large-arc 0, sweep 1
  EXPECT_NE(large.find(" 1 1 "), std::string::npos);
}

TEST(GlyphRendererTest, DrawsOneSectorPerContextRulePlusCircle) {
  GlyphSpec spec = SampleSpec();
  ContextualGlyphRenderer renderer;
  SvgDocument doc = renderer.Render(spec);
  std::string svg = doc.Render();
  size_t paths = 0, pos = 0;
  while ((pos = svg.find("<path", pos)) != std::string::npos) {
    ++paths;
    ++pos;
  }
  EXPECT_EQ(paths, 6u);  // 3 + 3 context rules
  EXPECT_NE(svg.find("<circle"), std::string::npos);
  EXPECT_NE(svg.find("sample cluster"), std::string::npos);
}

TEST(GlyphRendererTest, InnerCircleRadiusEncodesTarget) {
  ContextualGlyphRenderer renderer;
  GlyphSpec big = SampleSpec();
  big.target_value = 1.0;
  GlyphSpec small = SampleSpec();
  small.target_value = 0.0;
  std::string svg_big = renderer.Render(big).Render();
  std::string svg_small = renderer.Render(small).Render();
  const auto& g = renderer.geometry();
  char expected_big[64], expected_small[64];
  std::snprintf(expected_big, sizeof(expected_big), "r=\"%.2f\"",
                g.radius_inner_max);
  std::snprintf(expected_small, sizeof(expected_small), "r=\"%.2f\"",
                g.radius_inner_min);
  EXPECT_NE(svg_big.find(expected_big), std::string::npos);
  EXPECT_NE(svg_small.find(expected_small), std::string::npos);
}

TEST(GlyphRendererTest, ValuesClampedToUnitRange) {
  GlyphSpec spec;
  spec.target_value = 7.5;         // nonsense input
  spec.levels = {{-3.0, 0.5}};
  ContextualGlyphRenderer renderer;
  // Must not crash; inner radius capped at the configured max.
  std::string svg = renderer.Render(spec).Render();
  EXPECT_NE(svg.find("<circle"), std::string::npos);
}

TEST(GlyphRendererTest, EmptyContextStillDrawsTargetCircle) {
  GlyphSpec spec;
  spec.target_value = 0.6;
  ContextualGlyphRenderer renderer;
  std::string svg = renderer.Render(spec).Render();
  EXPECT_NE(svg.find("<circle"), std::string::npos);
  EXPECT_EQ(svg.find("<path"), std::string::npos);
}

TEST(GlyphRendererTest, ZoomViewListsSectors) {
  GlyphSpec spec = SampleSpec();
  spec.sector_labels = {"[A]", "[B]", "[C]", "[A] [B]", "[A] [C]", "[B] [C]"};
  ContextualGlyphRenderer renderer;
  std::string svg = renderer.RenderZoom(spec).Render();
  for (const auto& label : spec.sector_labels) {
    EXPECT_NE(svg.find("[A]"), std::string::npos) << label;
  }
  EXPECT_NE(svg.find("target confidence = 0.900"), std::string::npos);
  EXPECT_NE(svg.find("conf = 0.400"), std::string::npos);
}

TEST(GlyphSpecFromMcacTest, ExtractsConfidencesAndLabels) {
  MiniCorpus corpus = AsthmaCorpus();
  mining::Itemset whole = mining::Union(
      corpus.Drugs({"XOLAIR", "SINGULAIR", "PREDNISONE"}),
      corpus.Adrs({"ASTHMA"}));
  auto target = core::BuildRule(whole, corpus.items, corpus.db);
  ASSERT_TRUE(target.ok());
  core::McacBuilder builder(&corpus.items, &corpus.db);
  auto mcac = builder.Build(*target);
  ASSERT_TRUE(mcac.ok());
  GlyphSpec spec = GlyphSpecFromMcac(*mcac, corpus.items);
  EXPECT_DOUBLE_EQ(spec.target_value, mcac->target.confidence);
  ASSERT_EQ(spec.levels.size(), 2u);
  EXPECT_EQ(spec.levels[0].size(), 3u);
  EXPECT_EQ(spec.levels[1].size(), 3u);
  EXPECT_EQ(spec.sector_labels.size(), 6u);
  EXPECT_NE(spec.title.find("[ASTHMA]"), std::string::npos);
  // Labels follow level-major order: single drugs first.
  EXPECT_EQ(spec.sector_labels[0].find("] ["), std::string::npos);
  EXPECT_NE(spec.sector_labels[3].find("] ["), std::string::npos);
}

}  // namespace
}  // namespace maras::viz
