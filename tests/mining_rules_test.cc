#include "mining/rules.h"

#include <gtest/gtest.h>

#include "mining/fpgrowth.h"
#include "mining/measures.h"
#include "mining/transaction_db.h"

namespace maras::mining {
namespace {

FrequentItemsetResult MineAll(const TransactionDatabase& db,
                              size_t min_support) {
  auto result = FpGrowth(MiningOptions{.min_support = min_support}).Mine(db);
  EXPECT_TRUE(result.ok());
  return *std::move(result);
}

TransactionDatabase SmallDb() {
  TransactionDatabase db;
  db.Add({0, 1, 2});
  db.Add({0, 1, 2});
  db.Add({0, 1});
  db.Add({2, 3});
  db.Add({0, 3});
  return db;
}

TEST(RuleCountTest, NoConfidenceThresholdCountsAllBipartitions) {
  TransactionDatabase db = SmallDb();
  auto frequent = MineAll(db, 1);
  RuleSpaceCount count = CountAllPartitionRules(frequent, 0.0);
  // Sum over itemsets of size k >= 2 of 2^k − 2, computed independently.
  uint64_t expected = 0;
  for (const auto& fi : frequent.itemsets()) {
    if (fi.items.size() >= 2) {
      expected += (1ull << fi.items.size()) - 2;
    }
  }
  EXPECT_EQ(count.total_rules, expected);
  EXPECT_GT(count.total_rules, 0u);
}

TEST(RuleCountTest, SingleReportGeneratesNineDrugAdrStyleRules) {
  // Paper Section 3.3: one report {d1, d2, a1, a2} yields (2^2−1)(2^2−1)=9
  // drug-ADR rules; total bipartition rules are 2^4−2 = 14.
  TransactionDatabase db;
  db.Add({0, 1, 2, 3});
  auto frequent = MineAll(db, 1);
  RuleSpaceCount count = CountAllPartitionRules(frequent, 0.0);
  // All subsets of the single transaction are frequent; sum over all of them.
  uint64_t expected = 0;
  for (const auto& fi : frequent.itemsets()) {
    if (fi.items.size() >= 2) expected += (1ull << fi.items.size()) - 2;
  }
  EXPECT_EQ(count.total_rules, expected);
  EXPECT_EQ(count.itemsets_considered, 11u);  // C(4,2)+C(4,3)+C(4,4)
}

TEST(RuleCountTest, ConfidenceThresholdPrunes) {
  TransactionDatabase db = SmallDb();
  auto frequent = MineAll(db, 1);
  uint64_t all = CountAllPartitionRules(frequent, 0.0).total_rules;
  uint64_t strict = CountAllPartitionRules(frequent, 0.9).total_rules;
  EXPECT_LT(strict, all);
}

TEST(RuleGenTest, GeneratedRulesHaveCorrectMeasures) {
  TransactionDatabase db = SmallDb();
  auto frequent = MineAll(db, 1);
  auto rules = GenerateAllPartitionRules(frequent, 0.0, db.size(), 100000);
  EXPECT_EQ(rules.size(), CountAllPartitionRules(frequent, 0.0).total_rules);
  for (const auto& rule : rules) {
    Itemset whole = Union(rule.antecedent, rule.consequent);
    EXPECT_EQ(rule.support, db.Support(whole));
    EXPECT_EQ(rule.antecedent_support, db.Support(rule.antecedent));
    EXPECT_DOUBLE_EQ(rule.confidence,
                     Confidence(rule.support, rule.antecedent_support));
    EXPECT_DOUBLE_EQ(
        rule.lift, Lift(rule.support, rule.antecedent_support,
                        rule.consequent_support, db.size()));
    EXPECT_FALSE(rule.antecedent.empty());
    EXPECT_FALSE(rule.consequent.empty());
    EXPECT_TRUE(Intersect(rule.antecedent, rule.consequent).empty());
  }
}

TEST(RuleGenTest, MinConfidenceRespected) {
  TransactionDatabase db = SmallDb();
  auto frequent = MineAll(db, 1);
  auto rules = GenerateAllPartitionRules(frequent, 0.75, db.size(), 100000);
  for (const auto& rule : rules) {
    EXPECT_GE(rule.confidence, 0.75);
  }
}

TEST(RuleGenTest, MaxRulesCapHonored) {
  TransactionDatabase db = SmallDb();
  auto frequent = MineAll(db, 1);
  auto rules = GenerateAllPartitionRules(frequent, 0.0, db.size(), 5);
  EXPECT_LE(rules.size(), 5u);
}

}  // namespace
}  // namespace maras::mining
