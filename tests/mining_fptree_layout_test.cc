// Invariant tests for the flat structure-of-arrays FP-tree: arena
// compactness (every node reachable, exactly once, through the
// child/sibling links), agreement between the dense header tables and the
// conditional pattern bases, and equivalence of IsSinglePath /
// SinglePathItems / per-item counts against an independent pointer-based
// reference tree that reimplements the classic layout the arena replaced.
#include <map>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "mining/fptree.h"
#include "mining/transaction_db.h"
#include "util/random.h"

namespace maras::mining {
namespace {

TransactionDatabase RandomDb(maras::Rng* rng, int transactions, int items,
                             int max_len) {
  TransactionDatabase db;
  for (int t = 0; t < transactions; ++t) {
    Itemset txn;
    for (size_t i = 1 + rng->Uniform(static_cast<uint64_t>(max_len)); i > 0;
         --i) {
      txn.push_back(static_cast<ItemId>(rng->Uniform(items)));
    }
    db.Add(std::move(txn));
  }
  return db;
}

// Pointer-per-node reference FP-tree with the semantics the arena version
// replaced: heap node per tree position, child list in insertion order,
// header chains in node-creation order. Deliberately naive — it exists to
// disagree loudly if the flat layout ever drifts.
struct RefNode {
  ItemId item = 0;
  size_t count = 0;
  RefNode* parent = nullptr;
  std::vector<std::unique_ptr<RefNode>> children;  // insertion order
};

struct RefTree {
  RefNode root;
  std::map<ItemId, std::vector<const RefNode*>> headers;  // creation order
  std::map<ItemId, size_t> item_counts;
  size_t node_count = 1;  // root included, matching FpTree::node_count()

  void Insert(const std::vector<ItemId>& path, size_t count) {
    RefNode* node = &root;
    for (ItemId item : path) {
      RefNode* child = nullptr;
      for (auto& c : node->children) {
        if (c->item == item) {
          child = c.get();
          break;
        }
      }
      if (child == nullptr) {
        auto fresh = std::make_unique<RefNode>();
        fresh->item = item;
        fresh->parent = node;
        child = fresh.get();
        node->children.push_back(std::move(fresh));
        headers[item].push_back(child);
        ++node_count;
      }
      child->count += count;
      item_counts[item] += count;
      node = child;
    }
  }

  static RefTree Build(const TransactionDatabase& db, size_t min_support) {
    RefTree tree;
    std::map<ItemId, size_t> supports;
    for (const Itemset& t : db.transactions()) {
      for (ItemId item : t) ++supports[item];
    }
    auto order = [&supports](ItemId a, ItemId b) {
      const size_t sa = supports.at(a);
      const size_t sb = supports.at(b);
      if (sa != sb) return sa > sb;
      return a < b;
    };
    for (const Itemset& t : db.transactions()) {
      std::vector<ItemId> path;
      for (ItemId item : t) {
        if (supports.at(item) >= min_support) path.push_back(item);
      }
      if (path.empty()) continue;
      std::sort(path.begin(), path.end(), order);
      tree.Insert(path, 1);
    }
    return tree;
  }

  bool IsSinglePath() const {
    const RefNode* node = &root;
    while (!node->children.empty()) {
      if (node->children.size() > 1) return false;
      node = node->children.front().get();
    }
    return true;
  }

  std::vector<std::pair<ItemId, size_t>> SinglePathItems() const {
    std::vector<std::pair<ItemId, size_t>> items;
    const RefNode* node = &root;
    while (!node->children.empty()) {
      node = node->children.front().get();
      items.emplace_back(node->item, node->count);
    }
    return items;
  }
};

// Walks the child/sibling links from the root and asserts the arena is
// compact: every index in [0, node_count) is reached exactly once, no link
// points outside the arena, and every non-root node's parent link matches
// the traversal that discovered it.
void CheckArenaCompact(const FpTree& tree) {
  const size_t n = tree.node_count();
  std::vector<int> visits(n, 0);
  std::vector<FpTree::NodeIndex> stack = {tree.root()};
  while (!stack.empty()) {
    const FpTree::NodeIndex node = stack.back();
    stack.pop_back();
    ASSERT_LT(node, n) << "link points outside the arena";
    ++visits[node];
    for (FpTree::NodeIndex child = tree.first_child(node);
         child != FpTree::kNoNode; child = tree.next_sibling(child)) {
      ASSERT_LT(child, n);
      EXPECT_EQ(tree.parent(child), node);
      stack.push_back(child);
    }
  }
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(visits[i], 1) << "node " << i
                            << " not reached exactly once from the root";
  }
}

// The dense header tables must agree with the structural tree: per item,
// the header chain visits exactly the nodes carrying that item, in
// ascending arena order (chains append at creation, creation indices grow),
// and their counts sum to the dense ItemCount. The conditional pattern base
// derived from the chain must account for every non-root occurrence.
void CheckHeadersAgree(const FpTree& tree) {
  std::map<ItemId, size_t> chain_counts;
  std::map<ItemId, size_t> chain_lengths;
  for (size_t raw = 0; raw < tree.item_table_size(); ++raw) {
    const ItemId item = static_cast<ItemId>(raw);
    FpTree::NodeIndex prev = FpTree::kNoNode;
    for (FpTree::NodeIndex node = tree.HeaderChain(item);
         node != FpTree::kNoNode; node = tree.next_same_item(node)) {
      EXPECT_EQ(tree.item(node), item);
      if (prev != FpTree::kNoNode) {
        EXPECT_LT(prev, node) << "header chain out of creation order";
      }
      prev = node;
      chain_counts[item] += tree.count(node);
      ++chain_lengths[item];
    }
    EXPECT_EQ(chain_counts[item], tree.ItemCount(item));
    // Every chain node with a non-root parent contributes one prefix path.
    size_t nonroot = 0;
    size_t base_support = 0;
    for (FpTree::NodeIndex node = tree.HeaderChain(item);
         node != FpTree::kNoNode; node = tree.next_same_item(node)) {
      if (tree.parent(node) != tree.root()) {
        ++nonroot;
        base_support += tree.count(node);
      }
    }
    const auto base = tree.ConditionalPatternBase(item);
    EXPECT_EQ(base.size(), nonroot);
    size_t base_total = 0;
    for (const auto& path : base) {
      EXPECT_FALSE(path.items.empty());
      base_total += path.count;
    }
    EXPECT_EQ(base_total, base_support);
  }
  // Chains jointly cover the whole arena: Σ chain lengths == non-root nodes.
  size_t total_chain_nodes = 0;
  for (const auto& [item, len] : chain_lengths) total_chain_nodes += len;
  EXPECT_EQ(total_chain_nodes, tree.node_count() - 1);
}

TEST(FpTreeLayoutTest, ArenaCompactOnHandBuiltTree) {
  TransactionDatabase db;
  db.Add({1, 2, 3});
  db.Add({1, 2, 4});
  db.Add({2, 5});
  db.Add({1});
  const FpTree tree = FpTree::Build(db, 1);
  CheckArenaCompact(tree);
  CheckHeadersAgree(tree);
}

TEST(FpTreeLayoutTest, ArenaCompactAfterClearAndReuse) {
  TransactionDatabase db1;
  db1.Add({1, 2, 3});
  db1.Add({4, 5, 6});
  FpTree tree = FpTree::Build(db1, 1);
  const size_t first_nodes = tree.node_count();
  EXPECT_EQ(first_nodes, 7u);
  tree.Clear();
  EXPECT_EQ(tree.node_count(), 1u);  // root survives
  // Rebuild a smaller tree into the recycled arena: stale header entries
  // and item counts from the first build must be gone.
  const std::vector<ItemId> path = {7, 8};
  tree.Insert(path, 3);
  EXPECT_EQ(tree.node_count(), 3u);
  EXPECT_EQ(tree.ItemCount(7), 3u);
  EXPECT_EQ(tree.ItemCount(8), 3u);
  for (ItemId stale : {1u, 2u, 3u, 4u, 5u, 6u}) {
    EXPECT_EQ(tree.ItemCount(stale), 0u);
    EXPECT_EQ(tree.HeaderChain(stale), FpTree::kNoNode);
  }
  CheckArenaCompact(tree);
  CheckHeadersAgree(tree);
}

TEST(FpTreeLayoutTest, RandomizedInvariantsMultiSeed) {
  for (uint64_t seed : {11u, 42u, 99u, 1234u, 55555u}) {
    maras::Rng rng(seed);
    TransactionDatabase db = RandomDb(&rng, 120, 16, 7);
    for (size_t min_support : {1u, 2u, 5u}) {
      SCOPED_TRACE("seed=" + std::to_string(seed) +
                   " min_support=" + std::to_string(min_support));
      const FpTree tree = FpTree::Build(db, min_support);
      CheckArenaCompact(tree);
      CheckHeadersAgree(tree);
    }
  }
}

TEST(FpTreeLayoutTest, MatchesPointerReferenceMultiSeed) {
  for (uint64_t seed : {3u, 17u, 77u, 2025u}) {
    maras::Rng rng(seed);
    TransactionDatabase db = RandomDb(&rng, 100, 12, 6);
    for (size_t min_support : {1u, 3u}) {
      SCOPED_TRACE("seed=" + std::to_string(seed) +
                   " min_support=" + std::to_string(min_support));
      const FpTree tree = FpTree::Build(db, min_support);
      const RefTree ref = RefTree::Build(db, min_support);
      EXPECT_EQ(tree.node_count(), ref.node_count);
      for (size_t raw = 0; raw < tree.item_table_size(); ++raw) {
        const ItemId item = static_cast<ItemId>(raw);
        const auto it = ref.item_counts.find(item);
        const size_t want = it == ref.item_counts.end() ? 0 : it->second;
        EXPECT_EQ(tree.ItemCount(item), want) << "item " << item;
        // Header chains line up node for node, creation order on both sides.
        const auto hit = ref.headers.find(item);
        size_t ref_len = hit == ref.headers.end() ? 0 : hit->second.size();
        size_t i = 0;
        for (FpTree::NodeIndex node = tree.HeaderChain(item);
             node != FpTree::kNoNode; node = tree.next_same_item(node), ++i) {
          ASSERT_LT(i, ref_len);
          EXPECT_EQ(tree.count(node), hit->second[i]->count);
        }
        EXPECT_EQ(i, ref_len);
      }
      EXPECT_EQ(tree.IsSinglePath(), ref.IsSinglePath());
      if (tree.IsSinglePath()) {
        EXPECT_EQ(tree.SinglePathItems(), ref.SinglePathItems());
      }
    }
  }
}

TEST(FpTreeLayoutTest, SinglePathEquivalenceOnChains) {
  // Databases engineered to sit right at the single-path boundary.
  {
    TransactionDatabase db;
    db.Add({1, 2, 3, 4});
    db.Add({1, 2, 3});
    db.Add({1, 2});
    db.Add({1});
    const FpTree tree = FpTree::Build(db, 1);
    const RefTree ref = RefTree::Build(db, 1);
    ASSERT_TRUE(tree.IsSinglePath());
    ASSERT_TRUE(ref.IsSinglePath());
    EXPECT_EQ(tree.SinglePathItems(), ref.SinglePathItems());
  }
  {
    // One diverging leaf breaks the path on both implementations.
    TransactionDatabase db;
    db.Add({1, 2, 3});
    db.Add({1, 2, 4});
    const FpTree tree = FpTree::Build(db, 1);
    const RefTree ref = RefTree::Build(db, 1);
    EXPECT_FALSE(tree.IsSinglePath());
    EXPECT_FALSE(ref.IsSinglePath());
  }
  {
    // Empty database: the bare root is a single (empty) path.
    TransactionDatabase db;
    const FpTree tree = FpTree::Build(db, 1);
    EXPECT_TRUE(tree.IsSinglePath());
    EXPECT_TRUE(tree.SinglePathItems().empty());
    EXPECT_EQ(tree.node_count(), 1u);
  }
}

}  // namespace
}  // namespace maras::mining
