// Behavioral tests for the capability-annotated lock wrappers
// (util/mutex.h). The compile-time half of the contract lives in the
// thread-safety compile-fail pair (tests/compile_fail/) and the
// clang-thread-safety CI leg; these tests pin the runtime half — the
// wrappers must forward to the std primitives faithfully: mutual
// exclusion, try-lock semantics, reader concurrency, writer exclusivity,
// and CondVar wakeups.
#include "util/mutex.h"

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace maras {
namespace {

TEST(MutexTest, MutualExclusionUnderContention) {
  Mutex mu;
  int counter = 0;
  constexpr int kThreads = 4;
  constexpr int kIters = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        MutexLock lock(&mu);
        ++counter;
      }
    });
  }
  for (auto& th : threads) th.join();
  MutexLock lock(&mu);
  EXPECT_EQ(counter, kThreads * kIters);
}

TEST(MutexTest, TryLockFailsWhileHeldAndSucceedsAfterRelease) {
  Mutex mu;
  mu.Lock();
  std::atomic<int> observed{-1};
  std::thread contender([&] {
    observed.store(mu.TryLock() ? 1 : 0);
    if (observed.load() == 1) mu.Unlock();
  });
  contender.join();
  EXPECT_EQ(observed.load(), 0);
  mu.Unlock();

  std::thread retry([&] {
    observed.store(mu.TryLock() ? 1 : 0);
    if (observed.load() == 1) mu.Unlock();
  });
  retry.join();
  EXPECT_EQ(observed.load(), 1);
}

TEST(SharedMutexTest, ReadersOverlapWritersExclude) {
  SharedMutex mu;
  // Two readers hold the shared capability simultaneously: each waits for
  // the other to arrive before releasing. If LockShared were exclusive,
  // this would deadlock (and trip the ctest timeout).
  std::atomic<int> readers_in{0};
  auto reader = [&] {
    ReaderMutexLock lock(&mu);
    readers_in.fetch_add(1);
    while (readers_in.load() < 2) std::this_thread::yield();
  };
  std::thread r1(reader);
  std::thread r2(reader);
  r1.join();
  r2.join();
  EXPECT_EQ(readers_in.load(), 2);

  // A writer excludes readers: with the exclusive capability held,
  // TryLockShared from another thread must fail.
  mu.Lock();
  std::atomic<bool> reader_entered{false};
  std::thread blocked_reader([&] {
    if (mu.TryLockShared()) {
      reader_entered.store(true);
      mu.UnlockShared();
    }
  });
  blocked_reader.join();
  EXPECT_FALSE(reader_entered.load());
  mu.Unlock();
}

TEST(SharedMutexTest, TryLockRespectsSharedHolders) {
  SharedMutex mu;
  mu.LockShared();
  EXPECT_FALSE(mu.TryLock());      // exclusive blocked by a reader
  EXPECT_TRUE(mu.TryLockShared()); // another reader is fine
  mu.UnlockShared();
  mu.UnlockShared();
  EXPECT_TRUE(mu.TryLock());       // quiescent: exclusive succeeds
  mu.Unlock();
}

TEST(CondVarTest, WaitWakesOnNotifyAndReacquires) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  int handoff = 0;

  std::thread waiter([&] {
    MutexLock lock(&mu);
    while (!ready) cv.Wait(&mu);
    // The mutex is held again after Wait returns; mutate guarded state to
    // prove the reacquire (TSan would flag this if Wait leaked the lock).
    handoff = 42;
  });

  {
    MutexLock lock(&mu);
    ready = true;
  }
  cv.NotifyOne();
  waiter.join();

  MutexLock lock(&mu);
  EXPECT_EQ(handoff, 42);
}

TEST(CondVarTest, NotifyAllWakesEveryWaiter) {
  Mutex mu;
  CondVar cv;
  bool go = false;
  int woken = 0;
  constexpr int kWaiters = 3;

  std::vector<std::thread> waiters;
  for (int i = 0; i < kWaiters; ++i) {
    waiters.emplace_back([&] {
      MutexLock lock(&mu);
      while (!go) cv.Wait(&mu);
      ++woken;
    });
  }
  {
    MutexLock lock(&mu);
    go = true;
  }
  cv.NotifyAll();
  for (auto& th : waiters) th.join();

  MutexLock lock(&mu);
  EXPECT_EQ(woken, kWaiters);
}

}  // namespace
}  // namespace maras
