#include "mining/measures.h"

#include <gtest/gtest.h>

namespace maras::mining {
namespace {

TEST(MeasuresTest, ConfidenceBasics) {
  EXPECT_DOUBLE_EQ(Confidence(50, 100), 0.5);
  EXPECT_DOUBLE_EQ(Confidence(100, 100), 1.0);
  EXPECT_DOUBLE_EQ(Confidence(0, 100), 0.0);
  EXPECT_DOUBLE_EQ(Confidence(5, 0), 0.0);  // degenerate antecedent
}

TEST(MeasuresTest, LiftIndependenceIsOne) {
  // P(A)=0.5, P(B)=0.4, P(AB)=0.2 -> independent.
  EXPECT_DOUBLE_EQ(Lift(20, 50, 40, 100), 1.0);
}

TEST(MeasuresTest, LiftAboveOneForPositiveAssociation) {
  EXPECT_GT(Lift(30, 50, 40, 100), 1.0);
  EXPECT_LT(Lift(10, 50, 40, 100), 1.0);
}

TEST(MeasuresTest, LiftDegenerateCases) {
  EXPECT_DOUBLE_EQ(Lift(1, 0, 5, 100), 0.0);
  EXPECT_DOUBLE_EQ(Lift(1, 5, 0, 100), 0.0);
  EXPECT_DOUBLE_EQ(Lift(1, 5, 5, 0), 0.0);
}

TEST(MeasuresTest, LiftSymmetricInAAndB) {
  EXPECT_DOUBLE_EQ(Lift(12, 30, 45, 200), Lift(12, 45, 30, 200));
}

TEST(MeasuresTest, RelativeSupport) {
  EXPECT_DOUBLE_EQ(RelativeSupport(25, 100), 0.25);
  EXPECT_DOUBLE_EQ(RelativeSupport(5, 0), 0.0);
}

TEST(MeasuresTest, LeverageZeroAtIndependence) {
  EXPECT_DOUBLE_EQ(Leverage(20, 50, 40, 100), 0.0);
  EXPECT_GT(Leverage(30, 50, 40, 100), 0.0);
  EXPECT_LT(Leverage(10, 50, 40, 100), 0.0);
}

TEST(MeasuresTest, ConvictionOneAtIndependence) {
  EXPECT_DOUBLE_EQ(Conviction(20, 50, 40, 100), 1.0);
}

TEST(MeasuresTest, ConvictionCapsAtPerfectConfidence) {
  EXPECT_DOUBLE_EQ(Conviction(50, 50, 40, 100), kConvictionCap);
}

TEST(MeasuresTest, ConvictionDegenerate) {
  EXPECT_DOUBLE_EQ(Conviction(1, 0, 5, 100), 0.0);
  EXPECT_DOUBLE_EQ(Conviction(1, 5, 5, 0), 0.0);
}

// Relationship property: lift = confidence / P(B).
TEST(MeasuresTest, LiftEqualsConfidenceOverBaseRate) {
  const size_t ab = 18, a = 40, b = 60, n = 300;
  double lhs = Lift(ab, a, b, n);
  double rhs = Confidence(ab, a) / (static_cast<double>(b) / n);
  EXPECT_NEAR(lhs, rhs, 1e-12);
}

}  // namespace
}  // namespace maras::mining
