#include "faers/generator.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace maras::faers {
namespace {

GeneratorConfig SmallConfig() {
  GeneratorConfig config;
  config.n_reports = 800;
  config.n_drugs = 300;
  config.n_adrs = 150;
  config.seed = 42;
  return config;
}

TEST(GeneratorTest, DeterministicForSameConfig) {
  SyntheticGenerator g1(SmallConfig());
  SyntheticGenerator g2(SmallConfig());
  auto d1 = g1.Generate();
  auto d2 = g2.Generate();
  ASSERT_TRUE(d1.ok());
  ASSERT_TRUE(d2.ok());
  ASSERT_EQ(d1->reports.size(), d2->reports.size());
  for (size_t i = 0; i < d1->reports.size(); ++i) {
    EXPECT_EQ(d1->reports[i].case_id, d2->reports[i].case_id);
    EXPECT_EQ(d1->reports[i].drugs, d2->reports[i].drugs);
    EXPECT_EQ(d1->reports[i].reactions, d2->reports[i].reactions);
  }
}

TEST(GeneratorTest, DifferentQuartersDiffer) {
  GeneratorConfig c1 = SmallConfig();
  GeneratorConfig c2 = SmallConfig();
  c2.quarter = 2;
  auto d1 = SyntheticGenerator(c1).Generate();
  auto d2 = SyntheticGenerator(c2).Generate();
  ASSERT_TRUE(d1.ok());
  ASSERT_TRUE(d2.ok());
  // Same sizes of background, different content.
  bool any_difference = false;
  size_t n = std::min(d1->reports.size(), d2->reports.size());
  for (size_t i = 0; i < n && !any_difference; ++i) {
    any_difference = d1->reports[i].drugs != d2->reports[i].drugs;
  }
  EXPECT_TRUE(any_difference);
}

TEST(GeneratorTest, EveryReportHasDrugsAndReactions) {
  auto dataset = SyntheticGenerator(SmallConfig()).Generate();
  ASSERT_TRUE(dataset.ok());
  for (const Report& r : dataset->reports) {
    EXPECT_FALSE(r.drugs.empty());
    EXPECT_FALSE(r.reactions.empty());
    EXPECT_GE(r.age, 0.0);
    EXPECT_FALSE(r.country.empty());
  }
}

TEST(GeneratorTest, InjectsSignalReports) {
  GeneratorConfig config = SmallConfig();
  SignalSpec signal;
  signal.name = "test_pair";
  signal.drugs = {"ASPIRIN", "WARFARIN"};
  signal.adrs = {"HAEMORRHAGE"};
  signal.reports = 40;
  signal.single_drug_leak = 0.0;
  signal.adr_penetrance = 1.0;
  signal.extra_drugs_mean = 0.0;
  signal.extra_adrs_mean = 0.0;
  config.signals = {signal};
  config.misspelling_rate = 0.0;
  config.alias_rate = 0.0;
  config.dose_decoration_rate = 0.0;
  SyntheticGenerator generator(config);
  auto dataset = generator.Generate();
  ASSERT_TRUE(dataset.ok());
  size_t both = 0;
  for (const Report& r : dataset->reports) {
    bool has_a = false, has_w = false, has_h = false;
    for (const auto& d : r.drugs) {
      has_a |= d == "ASPIRIN";
      has_w |= d == "WARFARIN";
    }
    for (const auto& a : r.reactions) has_h |= a == "HAEMORRHAGE";
    if (has_a && has_w && has_h) ++both;
  }
  EXPECT_GE(both, 40u);  // at least the injected ones (version dups may add)
}

TEST(GeneratorTest, ExpeditedFractionRoughlyHolds) {
  auto dataset = SyntheticGenerator(SmallConfig()).Generate();
  ASSERT_TRUE(dataset.ok());
  size_t exp = 0;
  for (const Report& r : dataset->reports) {
    exp += r.type == ReportType::kExpedited;
  }
  double fraction =
      static_cast<double>(exp) / static_cast<double>(dataset->reports.size());
  EXPECT_NEAR(fraction, 0.85, 0.06);
}

TEST(GeneratorTest, ResubmissionsShareCaseIdWithHigherVersion) {
  auto dataset = SyntheticGenerator(SmallConfig()).Generate();
  ASSERT_TRUE(dataset.ok());
  std::map<uint64_t, std::set<uint32_t>> versions;
  for (const Report& r : dataset->reports) {
    versions[r.case_id].insert(r.case_version);
  }
  size_t multi = 0;
  for (const auto& [case_id, vs] : versions) {
    if (vs.size() > 1) {
      ++multi;
      EXPECT_TRUE(vs.count(1) > 0 || *vs.begin() >= 1);
    }
  }
  EXPECT_GT(multi, 0u);
}

TEST(GeneratorTest, DirtyNamesAppearAtConfiguredRates) {
  GeneratorConfig config = SmallConfig();
  config.misspelling_rate = 0.3;
  config.dose_decoration_rate = 0.3;
  SyntheticGenerator generator(config);
  auto dataset = generator.Generate();
  ASSERT_TRUE(dataset.ok());
  std::set<std::string> clean(generator.drug_vocabulary().begin(),
                              generator.drug_vocabulary().end());
  for (const DrugAlias& alias : CuratedDrugAliases()) clean.insert(alias.alias);
  size_t dirty = 0, total = 0;
  for (const Report& r : dataset->reports) {
    for (const auto& d : r.drugs) {
      ++total;
      if (clean.count(d) == 0) ++dirty;
    }
  }
  // ~30% misspelled + ~30% decorated (overlapping) -> expect a large share.
  EXPECT_GT(static_cast<double>(dirty) / static_cast<double>(total), 0.3);
}

TEST(GeneratorTest, ZeroReportsRejected) {
  GeneratorConfig config = SmallConfig();
  config.n_reports = 0;
  EXPECT_TRUE(
      SyntheticGenerator(config).Generate().status().IsInvalidArgument());
}

TEST(GeneratorTest, DefaultSignalsCoverKnownInteractions) {
  auto signals = DefaultSignals(25000);
  EXPECT_EQ(signals.size(), KnownInteractions().size());
  for (const auto& s : signals) {
    EXPECT_GE(s.drugs.size(), 2u);
    EXPECT_GE(s.adrs.size(), 1u);
    EXPECT_GT(s.reports, 0u);
  }
}

TEST(GeneratorTest, ScalingKeepsMinimumSignalCount) {
  auto small = DefaultSignals(500);
  for (const auto& s : small) EXPECT_GE(s.reports, 8u);
}

TEST(VocabularyTest, CuratedNamesAreUppercaseAndUnique) {
  std::set<std::string> seen;
  for (const auto& name : CuratedDrugNames()) {
    EXPECT_TRUE(seen.insert(name).second) << "duplicate " << name;
    for (char c : name) {
      EXPECT_FALSE(c >= 'a' && c <= 'z') << name;
    }
  }
}

TEST(VocabularyTest, AliasesPointToCuratedDrugs) {
  std::set<std::string> drugs(CuratedDrugNames().begin(),
                              CuratedDrugNames().end());
  for (const auto& alias : CuratedDrugAliases()) {
    EXPECT_TRUE(drugs.count(alias.canonical) > 0) << alias.canonical;
    EXPECT_NE(alias.alias, alias.canonical);
  }
}

TEST(VocabularyTest, KnownInteractionsUseCuratedVocabulary) {
  std::set<std::string> drugs(CuratedDrugNames().begin(),
                              CuratedDrugNames().end());
  std::set<std::string> adrs(CuratedAdrTerms().begin(),
                             CuratedAdrTerms().end());
  for (const auto& known : KnownInteractions()) {
    EXPECT_GE(known.drugs.size(), 2u) << known.name;
    for (const auto& d : known.drugs) EXPECT_TRUE(drugs.count(d)) << d;
    for (const auto& a : known.adrs) EXPECT_TRUE(adrs.count(a)) << a;
    EXPECT_FALSE(known.provenance.empty());
  }
}

TEST(VocabularyTest, SyntheticNamesDeterministicAndDistinct) {
  auto a = SyntheticNames("DRUG", 100);
  auto b = SyntheticNames("DRUG", 100);
  EXPECT_EQ(a, b);
  std::set<std::string> unique(a.begin(), a.end());
  EXPECT_EQ(unique.size(), 100u);
  EXPECT_EQ(a[7], "DRUG00007");
}

}  // namespace
}  // namespace maras::faers
