// The parallel mining engine's trust harness, in two halves.
//
// Differential oracle: four independent miners — FP-Growth (prefix-tree
// projection, serial and thread-pooled), Eclat (vertical bitmap/tid-list
// intersection, in every representation mode), Apriori (level-wise) and an
// exhaustive brute-force enumerator — must produce the exact same
// frequent-itemset family on seeded random databases. Any algorithmic or
// concurrency bug has to corrupt all four identically to slip through.
// The bitmap Eclat additionally runs with dense-only, sparse-only, and
// density-chosen representations at 1, 2, and 8 threads: same bytes every
// time, so neither the kernel backend nor scheduling can leak into output.
//
// Determinism suite: on generator-built FAERS corpora, the full serialized
// output — closed itemsets, association rules, and ranked MCACs — must be
// byte-identical for num_threads ∈ {1, 2, 8}, across seeds. This is the
// guarantee DESIGN.md documents: thread count is a speed knob, never a
// semantics knob.

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/analyzer.h"
#include "core/ranking.h"
#include "faers/generator.h"
#include "faers/preprocess.h"
#include "mining/apriori.h"
#include "mining/closed_itemsets.h"
#include "mining/eclat.h"
#include "mining/fpgrowth.h"
#include "mining/rules.h"
#include "util/random.h"

namespace maras::mining {
namespace {

TransactionDatabase RandomDb(maras::Rng* rng, int transactions, int items,
                             int max_len) {
  TransactionDatabase db;
  for (int t = 0; t < transactions; ++t) {
    Itemset txn;
    for (size_t i = 1 + rng->Uniform(static_cast<uint64_t>(max_len)); i > 0;
         --i) {
      txn.push_back(static_cast<ItemId>(rng->Uniform(items)));
    }
    db.Add(std::move(txn));
  }
  return db;
}

// Ground truth by exhaustion: enumerate every subset of the item universe
// and count its support directly against the database. Exponential in
// `items`, so only usable for small universes — which is exactly why it is
// trustworthy as an oracle.
FrequentItemsetResult BruteForceMine(const TransactionDatabase& db,
                                     const MiningOptions& options,
                                     int items) {
  EXPECT_LE(items, 16) << "brute force is 2^items";
  FrequentItemsetResult result;
  for (uint32_t mask = 1; mask < (1u << items); ++mask) {
    Itemset candidate;
    for (int i = 0; i < items; ++i) {
      if (mask & (1u << i)) candidate.push_back(static_cast<ItemId>(i));
    }
    if (options.max_itemset_size != 0 &&
        candidate.size() > options.max_itemset_size) {
      continue;
    }
    size_t support = db.Support(candidate);
    if (support >= options.min_support) result.Add(candidate, support);
  }
  result.SortCanonically();
  return result;
}

// Canonical byte serialization of a mined result. Two results are identical
// iff their serializations match, so EXPECT_EQ on these strings is the
// "byte-identical" assertion of the issue.
std::string Serialize(const FrequentItemsetResult& result) {
  std::ostringstream out;
  for (const FrequentItemset& fi : result.itemsets()) {
    for (ItemId id : fi.items) out << id << ',';
    out << ':' << fi.support << ';';
  }
  return out.str();
}

std::string Serialize(const std::vector<AssociationRule>& rules) {
  std::ostringstream out;
  for (const AssociationRule& r : rules) {
    for (ItemId id : r.antecedent) out << id << ',';
    out << "=>";
    for (ItemId id : r.consequent) out << id << ',';
    out << ':' << r.support << '/' << r.antecedent_support << '/'
        << r.consequent_support << '/' << r.confidence << '/' << r.lift
        << ';';
  }
  return out.str();
}

std::string Serialize(const std::vector<core::RankedMcac>& ranked) {
  std::ostringstream out;
  for (const core::RankedMcac& entry : ranked) {
    for (ItemId id : entry.mcac.target.drugs) out << id << ',';
    out << "=>";
    for (ItemId id : entry.mcac.target.adrs) out << id << ',';
    out << ':' << entry.mcac.target.support << '@' << entry.score;
    for (const auto& level : entry.mcac.levels) {
      out << '|';
      for (const core::DrugAdrRule& rule : level) {
        for (ItemId id : rule.drugs) out << id << ',';
        out << '~' << rule.support << '~' << rule.confidence << ' ';
      }
    }
    out << ';';
  }
  return out.str();
}

void ExpectIdentical(const FrequentItemsetResult& a,
                     const FrequentItemsetResult& b, const char* label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  EXPECT_EQ(Serialize(a), Serialize(b)) << label;
}

// --------------------------------------------------------------------------
// Differential oracle.
// --------------------------------------------------------------------------

class DifferentialOracleTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DifferentialOracleTest, FourMinersAgreeOnRandomDatabases) {
  maras::Rng rng(GetParam());
  for (int trial = 0; trial < 6; ++trial) {
    const int items = 8 + static_cast<int>(rng.Uniform(4));  // 8..11
    TransactionDatabase db = RandomDb(&rng, 60 + trial * 20, items, 6);
    MiningOptions options{.min_support = 1 + rng.Uniform(4)};
    auto fp = FpGrowth(options).Mine(db);
    auto ec = Eclat(options).Mine(db);
    auto ap = Apriori(options).Mine(db);
    ASSERT_TRUE(fp.ok());
    ASSERT_TRUE(ec.ok());
    ASSERT_TRUE(ap.ok());
    FrequentItemsetResult brute = BruteForceMine(db, options, items);
    ExpectIdentical(*fp, brute, "fpgrowth vs brute");
    ExpectIdentical(*ec, brute, "eclat vs brute");
    ExpectIdentical(*ap, brute, "apriori vs brute");

    MiningOptions parallel = options;
    parallel.num_threads = 4;
    auto fp4 = FpGrowth(parallel).Mine(db);
    ASSERT_TRUE(fp4.ok());
    ExpectIdentical(*fp4, brute, "fpgrowth(4 threads) vs brute");
  }
}

TEST_P(DifferentialOracleTest, BitmapEclatModesMatchBruteAtAnyThreadCount) {
  maras::Rng rng(GetParam() * 13 + 7);
  const EclatMode kModes[] = {EclatMode::kScalar, EclatMode::kAuto,
                              EclatMode::kDense, EclatMode::kSparse};
  for (int trial = 0; trial < 3; ++trial) {
    const int items = 8 + static_cast<int>(rng.Uniform(4));  // 8..11
    TransactionDatabase db = RandomDb(&rng, 50 + trial * 40, items, 6);
    MiningOptions options{.min_support = 1 + rng.Uniform(3)};
    const std::string brute_bytes =
        Serialize(BruteForceMine(db, options, items));
    for (EclatMode mode : kModes) {
      for (size_t threads : {1u, 2u, 8u}) {
        MiningOptions opt = options;
        opt.eclat_mode = mode;
        opt.num_threads = threads;
        auto mined = Eclat(opt).Mine(db);
        ASSERT_TRUE(mined.ok());
        EXPECT_EQ(Serialize(*mined), brute_bytes)
            << "mode " << static_cast<int>(mode) << ", " << threads
            << " threads, trial " << trial;
      }
    }
  }
}

TEST_P(DifferentialOracleTest, BitmapEclatModesAgreeUnderSizeCap) {
  maras::Rng rng(GetParam() ^ 0xB17);
  const int items = 10;
  TransactionDatabase db = RandomDb(&rng, 80, items, 7);
  MiningOptions options{.min_support = 2, .max_itemset_size = 3};
  const std::string brute_bytes = Serialize(BruteForceMine(db, options, items));
  for (EclatMode mode : {EclatMode::kScalar, EclatMode::kAuto,
                         EclatMode::kDense, EclatMode::kSparse}) {
    MiningOptions opt = options;
    opt.eclat_mode = mode;
    opt.num_threads = 8;
    auto mined = Eclat(opt).Mine(db);
    ASSERT_TRUE(mined.ok());
    EXPECT_EQ(Serialize(*mined), brute_bytes)
        << "mode " << static_cast<int>(mode);
  }
}

TEST_P(DifferentialOracleTest, AgreementHoldsUnderSizeCap) {
  maras::Rng rng(GetParam() ^ 0xABCDEF);
  const int items = 10;
  TransactionDatabase db = RandomDb(&rng, 90, items, 7);
  MiningOptions options{.min_support = 2, .max_itemset_size = 3};
  FrequentItemsetResult brute = BruteForceMine(db, options, items);
  auto fp = FpGrowth(options).Mine(db);
  auto ec = Eclat(options).Mine(db);
  auto ap = Apriori(options).Mine(db);
  ASSERT_TRUE(fp.ok() && ec.ok() && ap.ok());
  ExpectIdentical(*fp, brute, "fpgrowth vs brute (capped)");
  ExpectIdentical(*ec, brute, "eclat vs brute (capped)");
  ExpectIdentical(*ap, brute, "apriori vs brute (capped)");
  options.num_threads = 8;
  auto fp8 = FpGrowth(options).Mine(db);
  ASSERT_TRUE(fp8.ok());
  ExpectIdentical(*fp8, brute, "fpgrowth(8 threads) vs brute (capped)");
}

TEST_P(DifferentialOracleTest, ClosedFamilyAgreesAcrossMiners) {
  maras::Rng rng(GetParam() + 31);
  TransactionDatabase db = RandomDb(&rng, 100, 9, 6);
  MiningOptions options{.min_support = 2};
  auto fp = FpGrowth(options).Mine(db);
  auto ap = Apriori(options).Mine(db);
  ASSERT_TRUE(fp.ok() && ap.ok());
  // Closed filter over either miner's family, serial or sharded, is the
  // same family.
  FrequentItemsetResult serial = FilterClosed(*fp);
  ExpectIdentical(serial, FilterClosed(*ap), "closed: fp vs apriori input");
  ExpectIdentical(serial, FilterClosed(*fp, 4), "closed: serial vs 4 shards");
  ExpectIdentical(serial, FilterClosed(*fp, 8), "closed: serial vs 8 shards");
  for (const FrequentItemset& fi : serial.itemsets()) {
    EXPECT_TRUE(IsClosedInDatabase(db, fi.items)) << ToString(fi.items);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialOracleTest,
                         ::testing::Values(11, 222, 3333, 44444, 555555));

// --------------------------------------------------------------------------
// Determinism suite: serial == 2-thread == 8-thread, byte for byte.
// --------------------------------------------------------------------------

faers::PreprocessResult BuildCorpus(uint64_t seed) {
  faers::GeneratorConfig config;
  config.seed = seed;
  config.n_reports = 1200;
  config.n_drugs = 300;
  config.n_adrs = 120;
  config.signals = faers::DefaultSignals(2400);
  faers::SyntheticGenerator generator(config);
  auto dataset = generator.Generate();
  EXPECT_TRUE(dataset.ok());
  faers::Preprocessor preprocessor{faers::PreprocessOptions{}};
  auto pre = preprocessor.Process(*dataset);
  EXPECT_TRUE(pre.ok());
  return *std::move(pre);
}

class DeterminismSuite : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DeterminismSuite, ClosedSetsAndRulesIdenticalAcrossThreadCounts) {
  faers::PreprocessResult pre = BuildCorpus(GetParam());
  MiningOptions base{.min_support = 4, .max_itemset_size = 6};

  base.num_threads = 1;
  auto closed1 = MineClosed(pre.transactions, base);
  ASSERT_TRUE(closed1.ok());
  std::string closed_bytes = Serialize(*closed1);
  std::string rule_bytes = Serialize(GenerateAllPartitionRules(
      *closed1, 0.1, pre.transactions.size(), 50000));
  EXPECT_GT(closed1->size(), 0u);

  for (size_t threads : {2u, 8u}) {
    MiningOptions options = base;
    options.num_threads = threads;
    auto closed = MineClosed(pre.transactions, options);
    ASSERT_TRUE(closed.ok()) << threads << " threads";
    EXPECT_EQ(Serialize(*closed), closed_bytes) << threads << " threads";
    EXPECT_EQ(Serialize(GenerateAllPartitionRules(
                  *closed, 0.1, pre.transactions.size(), 50000)),
              rule_bytes)
        << threads << " threads";
  }
}

TEST_P(DeterminismSuite, McacRankingsIdenticalAcrossThreadCounts) {
  faers::PreprocessResult pre = BuildCorpus(GetParam() * 7 + 5);
  core::AnalyzerOptions base;
  base.mining.min_support = 4;
  base.mining.max_itemset_size = 6;

  std::string ranked_bytes;
  core::RuleSpaceStats stats1;
  for (size_t threads : {1u, 2u, 8u}) {
    core::AnalyzerOptions options = base;
    options.mining.num_threads = threads;
    core::MarasAnalyzer analyzer(options);
    auto analysis = analyzer.Analyze(pre);
    ASSERT_TRUE(analysis.ok()) << threads << " threads";
    auto ranked = core::RankMcacs(
        analysis->mcacs, core::RankingMethod::kExclusivenessConfidence, {});
    if (threads == 1) {
      EXPECT_FALSE(ranked.empty());
      ranked_bytes = Serialize(ranked);
      stats1 = analysis->stats;
    } else {
      EXPECT_EQ(Serialize(ranked), ranked_bytes) << threads << " threads";
      EXPECT_EQ(analysis->stats.total_rules, stats1.total_rules);
      EXPECT_EQ(analysis->stats.filtered_rules, stats1.filtered_rules);
      EXPECT_EQ(analysis->stats.closed_mixed, stats1.closed_mixed);
      EXPECT_EQ(analysis->stats.mcac_count, stats1.mcac_count);
    }
  }
}

TEST_P(DeterminismSuite, RepeatedParallelRunsAreStable) {
  // Same corpus, same thread count, three runs: scheduling noise must never
  // reach the output.
  faers::PreprocessResult pre = BuildCorpus(GetParam() + 99);
  MiningOptions options{.min_support = 5, .num_threads = 8};
  auto first = FpGrowth(options).Mine(pre.transactions);
  ASSERT_TRUE(first.ok());
  std::string bytes = Serialize(*first);
  for (int run = 0; run < 2; ++run) {
    auto again = FpGrowth(options).Mine(pre.transactions);
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(Serialize(*again), bytes) << "run " << run;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeterminismSuite,
                         ::testing::Values(2024, 7321, 90210));

}  // namespace
}  // namespace maras::mining
