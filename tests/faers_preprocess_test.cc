#include "faers/preprocess.h"

#include <gtest/gtest.h>

#include "faers/generator.h"

namespace maras::faers {
namespace {

Report MakeReport(uint64_t case_id, std::vector<std::string> drugs,
                  std::vector<std::string> reactions,
                  ReportType type = ReportType::kExpedited,
                  uint32_t version = 1) {
  Report r;
  r.case_id = case_id;
  r.case_version = version;
  r.type = type;
  r.drugs = std::move(drugs);
  r.reactions = std::move(reactions);
  return r;
}

TEST(PreprocessTest, BuildsTransactionsWithDomains) {
  QuarterDataset dataset;
  dataset.reports = {
      MakeReport(1, {"ASPIRIN", "WARFARIN"}, {"HAEMORRHAGE"}),
      MakeReport(2, {"ASPIRIN"}, {"NAUSEA"}),
  };
  Preprocessor pre(PreprocessOptions{});
  auto result = pre.Process(dataset);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->transactions.size(), 2u);
  EXPECT_EQ(result->stats.distinct_drugs, 2u);
  EXPECT_EQ(result->stats.distinct_adrs, 2u);
  auto aspirin = result->items.Lookup("ASPIRIN");
  ASSERT_TRUE(aspirin.ok());
  EXPECT_EQ(result->items.Domain(*aspirin), mining::ItemDomain::kDrug);
  auto nausea = result->items.Lookup("NAUSEA");
  ASSERT_TRUE(nausea.ok());
  EXPECT_EQ(result->items.Domain(*nausea), mining::ItemDomain::kAdr);
}

TEST(PreprocessTest, ExpeditedFilterDropsPeriodic) {
  QuarterDataset dataset;
  dataset.reports = {
      MakeReport(1, {"ASPIRIN"}, {"NAUSEA"}, ReportType::kExpedited),
      MakeReport(2, {"NEXIUM"}, {"HEADACHE"}, ReportType::kPeriodic),
  };
  Preprocessor pre(PreprocessOptions{});
  auto result = pre.Process(dataset);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.reports_kept, 1u);
  EXPECT_EQ(result->stats.dropped_not_expedited, 1u);
  EXPECT_FALSE(result->items.Contains("NEXIUM"));
}

TEST(PreprocessTest, ExpeditedFilterCanBeDisabled) {
  QuarterDataset dataset;
  dataset.reports = {
      MakeReport(1, {"ASPIRIN"}, {"NAUSEA"}, ReportType::kPeriodic),
  };
  PreprocessOptions options;
  options.expedited_only = false;
  auto result = Preprocessor(options).Process(dataset);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.reports_kept, 1u);
}

TEST(PreprocessTest, KeepsOnlyLatestCaseVersion) {
  QuarterDataset dataset;
  dataset.reports = {
      MakeReport(7, {"ASPIRIN"}, {"NAUSEA"}, ReportType::kExpedited, 1),
      MakeReport(7, {"ASPIRIN"}, {"NAUSEA", "RASH"}, ReportType::kExpedited,
                 2),
      MakeReport(8, {"NEXIUM"}, {"HEADACHE"}, ReportType::kExpedited, 1),
  };
  Preprocessor pre(PreprocessOptions{});
  auto result = pre.Process(dataset);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.reports_kept, 2u);
  EXPECT_EQ(result->stats.dropped_stale_version, 1u);
  // The kept version of case 7 is the 3-item one.
  bool found_rash = result->items.Contains("RASH");
  EXPECT_TRUE(found_rash);
}

TEST(PreprocessTest, CorrectsMisspellingsAndAliases) {
  QuarterDataset dataset;
  dataset.reports = {
      MakeReport(1, {"WARFRIN", "COUMADIN"}, {"HAEMORRHAGE"}),
  };
  Preprocessor pre(PreprocessOptions{});
  auto result = pre.Process(dataset);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.fuzzy_corrections, 1u);
  EXPECT_EQ(result->stats.alias_resolutions, 1u);
  // Both names resolve to WARFARIN; the transaction holds one drug item.
  EXPECT_EQ(result->stats.distinct_drugs, 1u);
  EXPECT_TRUE(result->items.Contains("WARFARIN"));
  EXPECT_EQ(result->transactions.transaction(0).size(), 2u);  // drug + ADR
}

TEST(PreprocessTest, NormalizesDoseDecorations) {
  QuarterDataset dataset;
  dataset.reports = {
      MakeReport(1, {"ASPIRIN 100MG TABLET", "aspirin"}, {"NAUSEA"}),
  };
  Preprocessor pre(PreprocessOptions{});
  auto result = pre.Process(dataset);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.distinct_drugs, 1u);
  EXPECT_TRUE(result->items.Contains("ASPIRIN"));
}

TEST(PreprocessTest, UnknownNamesKeptAsNewVocabulary) {
  QuarterDataset dataset;
  dataset.reports = {
      MakeReport(1, {"DRUG01234"}, {"REACTION00042"}),
  };
  Preprocessor pre(PreprocessOptions{});
  auto result = pre.Process(dataset);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->items.Contains("DRUG01234"));
  EXPECT_TRUE(result->items.Contains("REACTION00042"));
}

TEST(PreprocessTest, DropsReportsWithoutDrugsOrReactions) {
  QuarterDataset dataset;
  dataset.reports = {
      MakeReport(1, {}, {"NAUSEA"}),
      MakeReport(2, {"ASPIRIN"}, {}),
      MakeReport(3, {"ASPIRIN"}, {"NAUSEA"}),
  };
  Preprocessor pre(PreprocessOptions{});
  auto result = pre.Process(dataset);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.reports_kept, 1u);
  EXPECT_EQ(result->stats.dropped_empty, 2u);
}

TEST(PreprocessTest, PrimaryIdsAlignWithTransactions) {
  QuarterDataset dataset;
  dataset.reports = {
      MakeReport(11, {"ASPIRIN"}, {"NAUSEA"}),
      MakeReport(12, {"NEXIUM"}, {"HEADACHE"}),
  };
  Preprocessor pre(PreprocessOptions{});
  auto result = pre.Process(dataset);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->primary_ids.size(), result->transactions.size());
  EXPECT_EQ(result->primary_ids[0], dataset.reports[0].primary_id());
  EXPECT_EQ(result->primary_ids[1], dataset.reports[1].primary_id());
}

TEST(PreprocessTest, FuzzyCorrectionDisabledKeepsMisspelling) {
  QuarterDataset dataset;
  dataset.reports = {MakeReport(1, {"WARFRIN"}, {"NAUSEA"})};
  PreprocessOptions options;
  options.max_edit_distance = 0;
  auto result = Preprocessor(options).Process(dataset);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->items.Contains("WARFRIN"));
  EXPECT_EQ(result->stats.fuzzy_corrections, 0u);
}

TEST(PreprocessTest, EndToEndWithGenerator) {
  GeneratorConfig config;
  config.n_reports = 500;
  config.n_drugs = 200;
  config.n_adrs = 120;
  SyntheticGenerator generator(config);
  auto dataset = generator.Generate();
  ASSERT_TRUE(dataset.ok());
  Preprocessor pre(PreprocessOptions{});
  auto result = pre.Process(*dataset);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->stats.reports_kept, 300u);
  EXPECT_GT(result->stats.fuzzy_corrections + result->stats.alias_resolutions,
            0u);
  EXPECT_GT(result->stats.distinct_drugs, 50u);
  // Domain separation invariant: every transaction mixes both domains.
  for (const auto& t : result->transactions.transactions()) {
    bool has_drug = false, has_adr = false;
    for (auto id : t) {
      if (result->items.Domain(id) == mining::ItemDomain::kDrug) {
        has_drug = true;
      } else {
        has_adr = true;
      }
    }
    EXPECT_TRUE(has_drug);
    EXPECT_TRUE(has_adr);
  }
}

}  // namespace
}  // namespace maras::faers
