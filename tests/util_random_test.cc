#include "util/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace maras {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformStaysInBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RngTest, UniformCoversAllValues) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.Uniform(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    int64_t v = rng.UniformRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(21);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double g = rng.Gaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, PoissonMeanMatches) {
  Rng rng(33);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Poisson(3.5);
  EXPECT_NEAR(sum / n, 3.5, 0.1);
}

TEST(RngTest, PoissonZeroMean) {
  Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.Poisson(0.0), 0);
}

TEST(RngTest, PoissonLargeMeanUsesNormalApprox) {
  Rng rng(77);
  double sum = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) sum += rng.Poisson(120.0);
  EXPECT_NEAR(sum / n, 120.0, 2.0);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(55);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(ZipfTest, UniformWhenExponentZero) {
  ZipfTable zipf(4, 0.0);
  for (size_t k = 0; k < 4; ++k) {
    EXPECT_NEAR(zipf.Pmf(k), 0.25, 1e-9);
  }
}

TEST(ZipfTest, SmallRanksMoreLikely) {
  ZipfTable zipf(100, 1.1);
  EXPECT_GT(zipf.Pmf(0), zipf.Pmf(1));
  EXPECT_GT(zipf.Pmf(1), zipf.Pmf(10));
  EXPECT_GT(zipf.Pmf(10), zipf.Pmf(99));
}

TEST(ZipfTest, PmfSumsToOne) {
  ZipfTable zipf(50, 1.3);
  double total = 0;
  for (size_t k = 0; k < 50; ++k) total += zipf.Pmf(k);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfTest, SampleWithinRangeAndSkewed) {
  ZipfTable zipf(20, 1.2);
  Rng rng(99);
  std::vector<int> counts(20, 0);
  for (int i = 0; i < 20000; ++i) {
    size_t k = zipf.Sample(&rng);
    ASSERT_LT(k, 20u);
    ++counts[k];
  }
  EXPECT_GT(counts[0], counts[5]);
  EXPECT_GT(counts[0], counts[19] * 5);
}

TEST(ZipfTest, SingleRank) {
  ZipfTable zipf(1, 2.0);
  Rng rng(4);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(zipf.Sample(&rng), 0u);
}

}  // namespace
}  // namespace maras
