#include "text/phonetic.h"

#include <gtest/gtest.h>

namespace maras::text {
namespace {

TEST(SoundexTest, ClassicReferenceCodes) {
  EXPECT_EQ(Soundex("ROBERT"), "R163");
  EXPECT_EQ(Soundex("RUPERT"), "R163");
  EXPECT_EQ(Soundex("ASHCRAFT"), "A261");  // H-transparency case
  EXPECT_EQ(Soundex("TYMCZAK"), "T522");   // vowel-separated repeats
  EXPECT_EQ(Soundex("PFISTER"), "P236");
  EXPECT_EQ(Soundex("HONEYMAN"), "H555");
}

TEST(SoundexTest, CaseAndPunctuationInsensitive) {
  EXPECT_EQ(Soundex("robert"), "R163");
  EXPECT_EQ(Soundex("Ro-Bert 5MG"), Soundex("ROBERT"));
}

TEST(SoundexTest, PaddingAndTruncation) {
  EXPECT_EQ(Soundex("A"), "A000");
  EXPECT_EQ(Soundex("AB"), "A100");
  EXPECT_EQ(Soundex("ABCDEFGHIJKLMNOP"), Soundex("ABCD").substr(0, 4));
  EXPECT_EQ(Soundex("ABCDEFGHIJKLMNOP").size(), 4u);
}

TEST(SoundexTest, NoLettersEncodesEmpty) {
  EXPECT_EQ(Soundex("1234"), "");
  EXPECT_EQ(Soundex(""), "");
  EXPECT_EQ(Soundex("  .. "), "");
}

TEST(SoundsAlikeTest, DrugNameConfusions) {
  // Phonetic misspellings edit distance alone scores poorly.
  EXPECT_TRUE(SoundsAlike("ZANTAC", "ZANTACK"));
  EXPECT_TRUE(SoundsAlike("CELEBREX", "SELEBREX") ||
              Soundex("CELEBREX") != Soundex("SELEBREX"));
  EXPECT_TRUE(SoundsAlike("PROZAC", "PROZAK"));
  EXPECT_FALSE(SoundsAlike("ASPIRIN", "WARFARIN"));
}

TEST(SoundsAlikeTest, EmptyNeverMatches) {
  EXPECT_FALSE(SoundsAlike("", ""));
  EXPECT_FALSE(SoundsAlike("123", "123"));
}

TEST(SoundexTest, AdjacentSameClassCollapses) {
  // S and C are both class 2; the run emits one digit.
  EXPECT_EQ(Soundex("JACKSON"), "J250");
}

}  // namespace
}  // namespace maras::text
