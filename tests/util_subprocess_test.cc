#include "util/subprocess.h"

#include <gtest/gtest.h>

#include <errno.h>
#include <signal.h>
#include <sys/time.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

namespace maras {
namespace {

using std::chrono::milliseconds;
using std::chrono::steady_clock;

// Reads a child's whole transcript by draining its non-blocking pipe until
// EOF — the pattern the shard supervisor uses, minus the poll() multiplex.
std::string DrainUntilEof(ChildProcess& child) {
  std::string out;
  for (;;) {
    auto open = DrainAvailable(child.stdout_fd(), &out);
    if (!open.ok() || !*open) return out;
    std::this_thread::sleep_for(milliseconds(2));
  }
}

TEST(SubprocessTest, CapturesStdoutAndExitCode) {
  auto child = ChildProcess::Spawn({"/bin/sh", "-c", "echo shard-ok; exit 7"});
  ASSERT_TRUE(child.ok()) << child.status().ToString();
  std::string transcript = DrainUntilEof(*child);
  auto status = child->WaitWithDeadline(Deadline::AfterMillis(10000));
  ASSERT_TRUE(status.ok()) << status.status().ToString();
  EXPECT_TRUE(status->exited);
  EXPECT_EQ(status->exit_code, 7);
  EXPECT_FALSE(status->Success());
  EXPECT_EQ(status->Describe(), "exit 7");
  EXPECT_EQ(transcript, "shard-ok\n");
}

TEST(SubprocessTest, MergedStderrLandsInTheSamePipe) {
  auto child =
      ChildProcess::Spawn({"/bin/sh", "-c", "echo to-stderr 1>&2; exit 0"});
  ASSERT_TRUE(child.ok());
  EXPECT_EQ(DrainUntilEof(*child), "to-stderr\n");
  auto status = child->WaitWithDeadline(Deadline::AfterMillis(10000));
  ASSERT_TRUE(status.ok());
  EXPECT_TRUE(status->Success());
}

TEST(SubprocessTest, ExecFailureSurfacesAsExit127) {
  auto child = ChildProcess::Spawn({"/definitely/no/such/binary"});
  ASSERT_TRUE(child.ok()) << "exec failure is the child's, not Spawn's";
  auto status = child->WaitWithDeadline(Deadline::AfterMillis(10000));
  ASSERT_TRUE(status.ok());
  EXPECT_TRUE(status->exited);
  EXPECT_EQ(status->exit_code, 127);
}

TEST(SubprocessTest, EmptyArgvIsRejected) {
  EXPECT_TRUE(ChildProcess::Spawn({}).status().IsInvalidArgument());
}

TEST(SubprocessTest, WaitWithDeadlineKillsAHungChild) {
  auto child = ChildProcess::Spawn({"/bin/sh", "-c", "sleep 600"});
  ASSERT_TRUE(child.ok());
  steady_clock::time_point before = steady_clock::now();
  auto status = child->WaitWithDeadline(Deadline::AfterMillis(100),
                                        /*term_grace=*/milliseconds(500));
  auto elapsed = std::chrono::duration_cast<milliseconds>(
      steady_clock::now() - before);
  ASSERT_TRUE(status.ok()) << status.status().ToString();
  EXPECT_TRUE(status->timed_out);
  EXPECT_TRUE(status->signaled);
  EXPECT_FALSE(child->running());
  EXPECT_LT(elapsed, milliseconds(10000))
      << "deadline + grace must bound the wait, not the child's sleep";
  EXPECT_NE(status->Describe().find("timed out"), std::string::npos);
}

TEST(SubprocessTest, KillAndReapStopsARunningChild) {
  auto child = ChildProcess::Spawn({"/bin/sh", "-c", "sleep 600"});
  ASSERT_TRUE(child.ok());
  ASSERT_TRUE(child->running());
  auto status = child->KillAndReap();
  ASSERT_TRUE(status.ok()) << status.status().ToString();
  EXPECT_TRUE(status->signaled);
  EXPECT_EQ(status->term_signal, SIGKILL);
  EXPECT_FALSE(child->running());
}

TEST(SubprocessTest, DestructorReapsWithoutLeavingAZombie) {
  pid_t pid = -1;
  {
    auto child = ChildProcess::Spawn({"/bin/sh", "-c", "sleep 600"});
    ASSERT_TRUE(child.ok());
    pid = child->pid();
  }
  // Once the destructor ran, the pid is fully reaped: a direct waitpid has
  // nothing to collect (ECHILD), which is exactly "no zombie left behind".
  int wait_status = 0;
  EXPECT_EQ(RetryWaitpid(pid, &wait_status, WNOHANG), -1);
  EXPECT_EQ(errno, ECHILD);
}

TEST(SubprocessTest, PollReportsRunningThenReaps) {
  auto child = ChildProcess::Spawn({"/bin/sh", "-c", "sleep 0.2; exit 0"});
  ASSERT_TRUE(child.ok());
  auto first = child->Poll();
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(*first) << "child should still be sleeping";
  auto status = child->WaitWithDeadline(Deadline::AfterMillis(10000));
  ASSERT_TRUE(status.ok());
  EXPECT_TRUE(status->Success());
}

TEST(SubprocessTest, CurrentExecutablePathResolvesThisBinary) {
  std::string path = CurrentExecutablePath("fallback");
  EXPECT_TRUE(std::filesystem::exists(path)) << path;
  EXPECT_NE(path.find("util_subprocess_test"), std::string::npos) << path;
}

// ---------------------------------------------------------------------------
// SIGPIPE hardening: writing into a pipe whose reader is gone must surface
// as an EPIPE Status, not kill the process (the default SIGPIPE disposition
// would). This is the exact failure mode of a supervisor writing to a
// crashed worker, or vice versa.
// ---------------------------------------------------------------------------

TEST(SubprocessSignalTest, WriteToDeadReaderIsEpipeNotDeath) {
  IgnoreSigpipeProcessWide();
  int fds[2] = {-1, -1};
  ASSERT_EQ(pipe(fds), 0);
  close(fds[0]);  // the reader is gone
  std::string payload(1 << 16, 'x');
  Status status = WriteAllToFd(fds[1], payload);
  close(fds[1]);
  // Reaching this line at all is the real assertion: without the SIG_IGN
  // disposition the write above would have terminated the test binary.
  ASSERT_TRUE(status.IsIOError()) << status.ToString();
  EXPECT_NE(status.ToString().find("write"), std::string::npos)
      << status.ToString();
}

// ---------------------------------------------------------------------------
// EINTR hardening: a pending-signal storm (here: a 2ms SIGALRM interval
// timer with SA_RESTART deliberately absent) must not surface as short
// reads or spurious waitpid failures — the Retry* wrappers absorb it.
// ---------------------------------------------------------------------------

std::atomic<int> g_alarm_count{0};

extern "C" void CountAlarm(int) { g_alarm_count.fetch_add(1); }

class AlarmStorm {
 public:
  AlarmStorm() {
    struct sigaction action;
    std::memset(&action, 0, sizeof(action));
    action.sa_handler = CountAlarm;
    sigemptyset(&action.sa_mask);
    action.sa_flags = 0;  // no SA_RESTART: syscalls really do fail EINTR
    sigaction(SIGALRM, &action, &previous_);
    struct itimerval timer;
    timer.it_interval.tv_sec = 0;
    timer.it_interval.tv_usec = 2000;
    timer.it_value = timer.it_interval;
    setitimer(ITIMER_REAL, &timer, nullptr);
  }
  ~AlarmStorm() {
    struct itimerval off;
    std::memset(&off, 0, sizeof(off));
    setitimer(ITIMER_REAL, &off, nullptr);
    sigaction(SIGALRM, &previous_, nullptr);
  }

 private:
  struct sigaction previous_;
};

TEST(SubprocessSignalTest, RetryReadSurvivesAnEintrStorm) {
  g_alarm_count = 0;
  AlarmStorm storm;
  int fds[2] = {-1, -1};
  ASSERT_EQ(pipe(fds), 0);
  // The writer shows up late, so the blocking read sits interrupted by the
  // alarm timer many times before any data exists.
  std::thread writer([fd = fds[1]] {
    std::this_thread::sleep_for(milliseconds(150));
    (void)WriteAllToFd(fd, "ping");
    close(fd);
  });
  char buf[16] = {0};
  ssize_t n = RetryRead(fds[0], buf, sizeof(buf));
  writer.join();
  close(fds[0]);
  ASSERT_EQ(n, 4) << (n < 0 ? std::strerror(errno) : "short read");
  EXPECT_EQ(std::string(buf, 4), "ping");
  EXPECT_GT(g_alarm_count.load(), 0)
      << "the storm never fired; this test proved nothing";
}

TEST(SubprocessSignalTest, RetryWaitpidSurvivesAnEintrStorm) {
  g_alarm_count = 0;
  AlarmStorm storm;
  auto child = ChildProcess::Spawn({"/bin/sh", "-c", "sleep 0.15; exit 5"});
  ASSERT_TRUE(child.ok());
  // Blocking reap straight through the alarm storm.
  auto status = child->WaitWithDeadline(Deadline::AfterMillis(10000));
  ASSERT_TRUE(status.ok()) << status.status().ToString();
  EXPECT_TRUE(status->exited);
  EXPECT_EQ(status->exit_code, 5);
  EXPECT_GT(g_alarm_count.load(), 0);
}

}  // namespace
}  // namespace maras
