#include "core/diversify.h"

#include <gtest/gtest.h>

#include <set>

namespace maras::core {
namespace {

RankedMcac Make(std::vector<mining::ItemId> drugs,
                std::vector<mining::ItemId> adrs, double score) {
  RankedMcac entry;
  entry.mcac.target.drugs = mining::MakeItemset(std::move(drugs));
  entry.mcac.target.adrs = mining::MakeItemset(std::move(adrs));
  entry.score = score;
  return entry;
}

TEST(ClusterSimilarityTest, IdenticalIsOne) {
  RankedMcac a = Make({1, 2}, {10}, 0.5);
  EXPECT_DOUBLE_EQ(ClusterSimilarity(a.mcac, a.mcac), 1.0);
}

TEST(ClusterSimilarityTest, DisjointIsZero) {
  RankedMcac a = Make({1, 2}, {10}, 0.5);
  RankedMcac b = Make({3, 4}, {11}, 0.5);
  EXPECT_DOUBLE_EQ(ClusterSimilarity(a.mcac, b.mcac), 0.0);
}

TEST(ClusterSimilarityTest, DrugOverlapWeighsMore) {
  RankedMcac base = Make({1, 2}, {10}, 0.5);
  RankedMcac same_drugs = Make({1, 2}, {11}, 0.5);   // drug Jaccard 1, ADR 0
  RankedMcac same_adrs = Make({3, 4}, {10}, 0.5);    // drug 0, ADR 1
  EXPECT_GT(ClusterSimilarity(base.mcac, same_drugs.mcac),
            ClusterSimilarity(base.mcac, same_adrs.mcac));
}

std::vector<RankedMcac> RedundantPool() {
  // One family of near-duplicates scoring highest, plus distinct clusters.
  return {
      Make({1, 2}, {10, 11, 12}, 0.90),
      Make({1, 2}, {10, 11}, 0.89),
      Make({1, 2}, {10}, 0.88),
      Make({1, 2}, {11}, 0.87),
      Make({3, 4}, {20}, 0.60),
      Make({5, 6}, {21}, 0.55),
      Make({7, 8}, {22}, 0.50),
  };
}

TEST(DiversifyTest, PureScoreReducesToPlainTopK) {
  auto pool = RedundantPool();
  DiversifyOptions options;
  options.k = 3;
  options.lambda = 1.0;
  auto picks = DiversifiedTopK(pool, options);
  ASSERT_EQ(picks.size(), 3u);
  EXPECT_DOUBLE_EQ(picks[0].score, 0.90);
  EXPECT_DOUBLE_EQ(picks[1].score, 0.89);
  EXPECT_DOUBLE_EQ(picks[2].score, 0.88);
}

TEST(DiversifyTest, DiversitySpreadsAcrossFamilies) {
  auto pool = RedundantPool();
  DiversifyOptions options;
  options.k = 4;
  // Diversity-leaning trade-off: the dominant family's high scores must not
  // reclaim every slot.
  options.lambda = 0.3;
  auto picks = DiversifiedTopK(pool, options);
  ASSERT_EQ(picks.size(), 4u);
  // Count distinct drug families among the picks.
  std::set<mining::Itemset> families;
  for (const auto& pick : picks) families.insert(pick.mcac.target.drugs);
  EXPECT_GE(families.size(), 3u);
  // The family leader (highest score) is still picked first.
  EXPECT_DOUBLE_EQ(picks[0].score, 0.90);
}

TEST(DiversifyTest, KLargerThanPoolReturnsAll) {
  auto pool = RedundantPool();
  DiversifyOptions options;
  options.k = 100;
  auto picks = DiversifiedTopK(pool, options);
  EXPECT_EQ(picks.size(), pool.size());
}

TEST(DiversifyTest, EmptyPoolAndZeroK) {
  EXPECT_TRUE(DiversifiedTopK({}, DiversifyOptions{}).empty());
  auto pool = RedundantPool();
  DiversifyOptions options;
  options.k = 0;
  EXPECT_TRUE(DiversifiedTopK(pool, options).empty());
}

TEST(DiversifyTest, NoDuplicateSelections) {
  auto pool = RedundantPool();
  DiversifyOptions options;
  options.k = pool.size();
  options.lambda = 0.3;
  auto picks = DiversifiedTopK(pool, options);
  std::set<double> scores;
  for (const auto& pick : picks) scores.insert(pick.score);
  EXPECT_EQ(scores.size(), pool.size());  // all scores distinct in pool
}

TEST(DiversifyTest, UniformScoresStillDiversify) {
  std::vector<RankedMcac> pool = {
      Make({1, 2}, {10}, 0.5),
      Make({1, 2}, {11}, 0.5),
      Make({3, 4}, {12}, 0.5),
  };
  DiversifyOptions options;
  options.k = 2;
  options.lambda = 0.5;
  auto picks = DiversifiedTopK(pool, options);
  ASSERT_EQ(picks.size(), 2u);
  // Second pick avoids the same-drug near-duplicate.
  EXPECT_EQ(picks[1].mcac.target.drugs, mining::MakeItemset({3, 4}));
}

}  // namespace
}  // namespace maras::core
