#include "util/status.h"

#include <gtest/gtest.h>

#include "util/statusor.h"

namespace maras {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllConstructorsMapToPredicates) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::Cancelled("x").IsCancelled());
  EXPECT_TRUE(Status::DeadlineExceeded("x").IsDeadlineExceeded());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
}

TEST(StatusTest, GovernanceCodesAreDistinctAndNamed) {
  Status cancelled = Status::Cancelled("run cancelled");
  Status deadline = Status::DeadlineExceeded("deadline of 5ms exceeded");
  Status budget = Status::ResourceExhausted("memory budget exhausted");
  EXPECT_FALSE(cancelled.IsDeadlineExceeded());
  EXPECT_FALSE(deadline.IsResourceExhausted());
  EXPECT_FALSE(budget.IsCancelled());
  EXPECT_NE(cancelled.ToString().find("Cancelled"), std::string::npos);
  EXPECT_NE(deadline.ToString().find("DeadlineExceeded"), std::string::npos);
  EXPECT_NE(budget.ToString().find("ResourceExhausted"), std::string::npos);
}

TEST(StatusTest, GovernanceCodesSurviveWithContext) {
  Status s = WithContext(Status::DeadlineExceeded("deadline of 500ms exceeded"),
                         "fp-growth");
  EXPECT_TRUE(s.IsDeadlineExceeded());
  EXPECT_NE(s.ToString().find("fp-growth: deadline of 500ms exceeded"),
            std::string::npos)
      << s.ToString();
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Corruption("a"));
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto fails = []() -> Status { return Status::IOError("disk"); };
  auto wrapper = [&]() -> Status {
    MARAS_RETURN_IF_ERROR(fails());
    return Status::OK();
  };
  EXPECT_TRUE(wrapper().IsIOError());
}

TEST(StatusTest, ReturnIfErrorPassesThroughOk) {
  auto succeeds = []() -> Status { return Status::OK(); };
  auto wrapper = [&]() -> Status {
    MARAS_RETURN_IF_ERROR(succeeds());
    return Status::AlreadyExists("reached end");
  };
  EXPECT_TRUE(wrapper().IsAlreadyExists());
}

TEST(StatusTest, WithContextPrefixesMessageAndKeepsCode) {
  Status s = WithContext(Status::Corruption("bad rept_cod"),
                         "DEMO12Q3.txt:47");
  EXPECT_TRUE(s.IsCorruption());
  EXPECT_EQ(s.message(), "DEMO12Q3.txt:47: bad rept_cod");
  EXPECT_EQ(s.ToString(), "Corruption: DEMO12Q3.txt:47: bad rept_cod");
}

TEST(StatusTest, WithContextOnOkIsNoop) {
  EXPECT_TRUE(WithContext(Status::OK(), "ctx").ok());
}

TEST(StatusTest, WithContextEmptyContextIsNoop) {
  Status s = WithContext(Status::NotFound("missing"), "");
  EXPECT_EQ(s, Status::NotFound("missing"));
}

TEST(StatusTest, WithContextOnEmptyMessageKeepsContextOnly) {
  Status s = WithContext(Status::IOError(""), "DRUG14Q1.txt");
  EXPECT_TRUE(s.IsIOError());
  EXPECT_EQ(s.message(), "DRUG14Q1.txt");
}

TEST(StatusTest, WithContextNests) {
  Status s = Status::Corruption("bad sex code");
  s = WithContext(s, "DEMO14Q1.txt:12");
  s = WithContext(s, "quarter 2014Q1");
  EXPECT_EQ(s.message(), "quarter 2014Q1: DEMO14Q1.txt:12: bad sex code");
}

TEST(StatusTest, ReturnIfErrorCtxWrapsError) {
  auto fails = []() -> Status { return Status::IOError("disk"); };
  auto wrapper = [&]() -> Status {
    MARAS_RETURN_IF_ERROR_CTX(fails(), "REAC14Q1.txt");
    return Status::OK();
  };
  Status s = wrapper();
  EXPECT_TRUE(s.IsIOError());
  EXPECT_EQ(s.message(), "REAC14Q1.txt: disk");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value_or(-1), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("missing");
  EXPECT_FALSE(v.ok());
  EXPECT_TRUE(v.status().IsNotFound());
  EXPECT_EQ(v.value_or(-1), -1);
}

TEST(StatusOrTest, OkStatusBecomesInternalError) {
  StatusOr<int> v = Status::OK();
  EXPECT_FALSE(v.ok());
  EXPECT_TRUE(v.status().IsInternal());
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> v = std::make_unique<int>(7);
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> owned = std::move(v).value();
  EXPECT_EQ(*owned, 7);
}

TEST(StatusOrTest, AssignOrReturnMacro) {
  auto inner = [](bool fail) -> StatusOr<int> {
    if (fail) return Status::OutOfRange("nope");
    return 10;
  };
  auto outer = [&](bool fail) -> StatusOr<int> {
    MARAS_ASSIGN_OR_RETURN(int x, inner(fail));
    return x * 2;
  };
  ASSERT_TRUE(outer(false).ok());
  EXPECT_EQ(*outer(false), 20);
  EXPECT_TRUE(outer(true).status().IsOutOfRange());
}

TEST(StatusOrTest, ArrowOperator) {
  StatusOr<std::string> v = std::string("hello");
  EXPECT_EQ(v->size(), 5u);
}

}  // namespace
}  // namespace maras
