#ifndef MARAS_TESTS_TEST_UTIL_H_
#define MARAS_TESTS_TEST_UTIL_H_

// Shared fixtures for core-layer tests: builds an item dictionary plus a
// transaction database from readable report specs, so tests spell out drugs
// and ADRs by name instead of raw ids.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "mining/item_dictionary.h"
#include "mining/transaction_db.h"

namespace maras::test {

struct ReportSpec {
  std::vector<std::string> drugs;
  std::vector<std::string> adrs;
};

struct MiniCorpus {
  mining::ItemDictionary items;
  mining::TransactionDatabase db;

  mining::ItemId Drug(const std::string& name) {
    auto id = items.Intern(name, mining::ItemDomain::kDrug);
    EXPECT_TRUE(id.ok());
    return *id;
  }
  mining::ItemId Adr(const std::string& name) {
    auto id = items.Intern(name, mining::ItemDomain::kAdr);
    EXPECT_TRUE(id.ok());
    return *id;
  }

  void Add(const ReportSpec& spec, size_t copies = 1) {
    mining::Itemset t;
    for (const auto& d : spec.drugs) t.push_back(Drug(d));
    for (const auto& a : spec.adrs) t.push_back(Adr(a));
    for (size_t i = 0; i < copies; ++i) db.Add(t);
  }

  mining::Itemset Drugs(const std::vector<std::string>& names) {
    mining::Itemset s;
    for (const auto& n : names) s.push_back(Drug(n));
    return mining::MakeItemset(std::move(s));
  }
  mining::Itemset Adrs(const std::vector<std::string>& names) {
    mining::Itemset s;
    for (const auto& n : names) s.push_back(Adr(n));
    return mining::MakeItemset(std::move(s));
  }
};

// The corpus behind the paper's Table 3.1 example: XOLAIR + SINGULAIR +
// PREDNISONE => ASTHMA as an exclusive three-drug signal, with weak
// single-drug and pair context.
inline MiniCorpus AsthmaCorpus() {
  MiniCorpus corpus;
  // 12 reports of the full triple with asthma.
  corpus.Add({{"XOLAIR", "SINGULAIR", "PREDNISONE"}, {"ASTHMA"}}, 12);
  // Individual drugs appear often WITHOUT asthma (strong background use).
  corpus.Add({{"XOLAIR"}, {"RASH"}}, 20);
  corpus.Add({{"SINGULAIR"}, {"HEADACHE"}}, 25);
  corpus.Add({{"PREDNISONE"}, {"INSOMNIA"}}, 30);
  // A little single-drug asthma reporting (non-zero context).
  corpus.Add({{"XOLAIR"}, {"ASTHMA"}}, 3);
  corpus.Add({{"SINGULAIR"}, {"ASTHMA"}}, 2);
  // Unrelated noise.
  corpus.Add({{"ASPIRIN"}, {"NAUSEA"}}, 15);
  return corpus;
}

}  // namespace maras::test

#endif  // MARAS_TESTS_TEST_UTIL_H_
