#include "mining/closed_itemsets.h"

#include <gtest/gtest.h>

#include "mining/fpgrowth.h"
#include "util/random.h"

namespace maras::mining {
namespace {

TransactionDatabase PaperStyleDb() {
  // Two identical report shapes plus noise: {1,2,3} appears 3 times,
  // {1,2} never without 3 -> {1,2} is NOT closed, {1,2,3} is.
  TransactionDatabase db;
  db.Add({1, 2, 3});
  db.Add({1, 2, 3});
  db.Add({1, 2, 3, 4});
  db.Add({1, 5});
  db.Add({2, 5});
  return db;
}

TEST(ClosedTest, FilterRemovesNonClosed) {
  auto all = FpGrowth(MiningOptions{.min_support = 1}).Mine(PaperStyleDb());
  ASSERT_TRUE(all.ok());
  FrequentItemsetResult closed = FilterClosed(*all);
  // {1,2} has the same support (3) as {1,2,3} -> non-closed, dropped.
  EXPECT_TRUE(all->ContainsItemset({1, 2}));
  EXPECT_FALSE(closed.ContainsItemset({1, 2}));
  EXPECT_TRUE(closed.ContainsItemset({1, 2, 3}));
  // {1} has support 4 > supp({1,2,3}) -> closed.
  EXPECT_TRUE(closed.ContainsItemset({1}));
}

TEST(ClosedTest, ClosedFamilyPreservesSupportInformation) {
  // Every frequent itemset's support must be recoverable as the max support
  // of a closed superset — the compression property of closed itemsets.
  maras::Rng rng(7);
  TransactionDatabase db;
  for (int t = 0; t < 100; ++t) {
    Itemset txn;
    for (size_t i = 1 + rng.Uniform(5); i > 0; --i) {
      txn.push_back(static_cast<ItemId>(rng.Uniform(9)));
    }
    db.Add(std::move(txn));
  }
  auto all = FpGrowth(MiningOptions{.min_support = 2}).Mine(db);
  ASSERT_TRUE(all.ok());
  FrequentItemsetResult closed = FilterClosed(*all);
  for (const auto& fi : all->itemsets()) {
    size_t best = 0;
    for (const auto& cl : closed.itemsets()) {
      if (cl.items.size() >= fi.items.size() &&
          IsSubset(fi.items, cl.items)) {
        best = std::max(best, cl.support);
      }
    }
    EXPECT_EQ(best, fi.support) << ToString(fi.items);
  }
}

TEST(ClosedTest, AgreesWithDirectDatabaseCheck) {
  maras::Rng rng(23);
  for (int trial = 0; trial < 6; ++trial) {
    TransactionDatabase db;
    for (int t = 0; t < 80; ++t) {
      Itemset txn;
      for (size_t i = 1 + rng.Uniform(5); i > 0; --i) {
        txn.push_back(static_cast<ItemId>(rng.Uniform(8)));
      }
      db.Add(std::move(txn));
    }
    auto all = FpGrowth(MiningOptions{.min_support = 2}).Mine(db);
    ASSERT_TRUE(all.ok());
    FrequentItemsetResult closed = FilterClosed(*all);
    for (const auto& fi : all->itemsets()) {
      bool in_family = closed.ContainsItemset(fi.items);
      bool in_db = IsClosedInDatabase(db, fi.items);
      EXPECT_EQ(in_family, in_db) << ToString(fi.items);
    }
  }
}

TEST(ClosedTest, ClosureOfBasics) {
  TransactionDatabase db = PaperStyleDb();
  EXPECT_EQ(ClosureOf(db, {1, 2}), (Itemset{1, 2, 3}));
  EXPECT_EQ(ClosureOf(db, {1, 2, 3}), (Itemset{1, 2, 3}));
  EXPECT_EQ(ClosureOf(db, {4}), (Itemset{1, 2, 3, 4}));
  EXPECT_TRUE(ClosureOf(db, {99}).empty());
}

TEST(ClosedTest, ClosureIsIdempotent) {
  TransactionDatabase db = PaperStyleDb();
  for (const Itemset& s :
       {Itemset{1}, Itemset{1, 2}, Itemset{5}, Itemset{2, 5}}) {
    Itemset once = ClosureOf(db, s);
    ASSERT_FALSE(once.empty());
    EXPECT_EQ(ClosureOf(db, once), once) << ToString(s);
  }
}

TEST(ClosedTest, MineClosedConvenience) {
  auto closed =
      MineClosed(PaperStyleDb(), MiningOptions{.min_support = 1});
  ASSERT_TRUE(closed.ok());
  EXPECT_FALSE(closed->ContainsItemset({1, 2}));
  EXPECT_TRUE(closed->ContainsItemset({1, 2, 3}));
  // Every reported closed itemset really is closed in the database.
  for (const auto& fi : closed->itemsets()) {
    EXPECT_TRUE(IsClosedInDatabase(PaperStyleDb(), fi.items))
        << ToString(fi.items);
  }
}

TEST(ClosedTest, CompressionNeverIncreasesCount) {
  maras::Rng rng(67);
  TransactionDatabase db;
  for (int t = 0; t < 60; ++t) {
    Itemset txn;
    for (size_t i = 1 + rng.Uniform(6); i > 0; --i) {
      txn.push_back(static_cast<ItemId>(rng.Uniform(10)));
    }
    db.Add(std::move(txn));
  }
  auto all = FpGrowth(MiningOptions{.min_support = 1}).Mine(db);
  ASSERT_TRUE(all.ok());
  FrequentItemsetResult closed = FilterClosed(*all);
  EXPECT_LE(closed.size(), all->size());
  EXPECT_GT(closed.size(), 0u);
}

}  // namespace
}  // namespace maras::mining
