#include "util/string_util.h"

#include <gtest/gtest.h>

namespace maras {
namespace {

TEST(SplitTest, BasicSplit) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SplitTest, KeepsEmptyFields) {
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(SplitTest, TrailingDelimiterYieldsEmptyField) {
  EXPECT_EQ(Split("a,b,", ','), (std::vector<std::string>{"a", "b", ""}));
}

TEST(SplitTest, EmptyInputGivesOneEmptyField) {
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(JoinTest, RoundTripsWithSplit) {
  std::vector<std::string> parts{"x", "", "z"};
  EXPECT_EQ(Split(Join(parts, '|'), '|'), parts);
}

TEST(JoinTest, StringDelimiter) {
  EXPECT_EQ(Join({"a", "b"}, ", "), "a, b");
  EXPECT_EQ(Join({}, ", "), "");
}

TEST(StripWhitespaceTest, StripsBothEnds) {
  EXPECT_EQ(StripWhitespace("  hi there \t\n"), "hi there");
  EXPECT_EQ(StripWhitespace("\t \n"), "");
  EXPECT_EQ(StripWhitespace("x"), "x");
}

TEST(CaseTest, AsciiConversions) {
  EXPECT_EQ(ToUpperAscii("Warfarin 5mg"), "WARFARIN 5MG");
  EXPECT_EQ(ToLowerAscii("ASPIRIN"), "aspirin");
}

TEST(StartsEndsWithTest, Basics) {
  EXPECT_TRUE(StartsWith("DEMO14Q1.txt", "DEMO"));
  EXPECT_FALSE(StartsWith("DEMO", "DEMO14"));
  EXPECT_TRUE(EndsWith("DEMO14Q1.txt", ".txt"));
  EXPECT_FALSE(EndsWith("txt", ".txt"));
}

TEST(CollapseWhitespaceTest, CollapsesRuns) {
  EXPECT_EQ(CollapseWhitespace("a  b\t\tc"), "a b c");
  EXPECT_EQ(CollapseWhitespace("  leading"), "leading");
  EXPECT_EQ(CollapseWhitespace("trailing  "), "trailing");
  EXPECT_EQ(CollapseWhitespace(""), "");
}

TEST(FormatDoubleTest, Digits) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(2.0, 0), "2");
  EXPECT_EQ(FormatDouble(-0.5, 1), "-0.5");
}

TEST(FormatWithCommasTest, GroupsThousands) {
  EXPECT_EQ(FormatWithCommas(0), "0");
  EXPECT_EQ(FormatWithCommas(999), "999");
  EXPECT_EQ(FormatWithCommas(1000), "1,000");
  EXPECT_EQ(FormatWithCommas(126755), "126,755");
  EXPECT_EQ(FormatWithCommas(-1234567), "-1,234,567");
}

}  // namespace
}  // namespace maras
