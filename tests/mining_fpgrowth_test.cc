#include "mining/fpgrowth.h"

#include <gtest/gtest.h>

#include "mining/apriori.h"
#include "mining/fptree.h"
#include "util/random.h"

namespace maras::mining {
namespace {

TransactionDatabase RandomDb(maras::Rng* rng, int transactions, int items,
                             int max_len) {
  TransactionDatabase db;
  for (int t = 0; t < transactions; ++t) {
    Itemset txn;
    for (size_t i = 1 + rng->Uniform(static_cast<uint64_t>(max_len)); i > 0;
         --i) {
      txn.push_back(static_cast<ItemId>(rng->Uniform(items)));
    }
    db.Add(std::move(txn));
  }
  return db;
}

TEST(FpTreeTest, BuildCountsItems) {
  TransactionDatabase db;
  db.Add({1, 2});
  db.Add({1, 2, 3});
  db.Add({1});
  auto tree = FpTree::Build(db, 1);
  EXPECT_EQ(tree.ItemCount(1), 3u);
  EXPECT_EQ(tree.ItemCount(2), 2u);
  EXPECT_EQ(tree.ItemCount(3), 1u);
}

TEST(FpTreeTest, InfrequentItemsExcluded) {
  TransactionDatabase db;
  db.Add({1, 2});
  db.Add({1, 3});
  auto tree = FpTree::Build(db, 2);
  EXPECT_EQ(tree.ItemCount(1), 2u);
  EXPECT_EQ(tree.ItemCount(2), 0u);
  EXPECT_EQ(tree.ItemCount(3), 0u);
}

TEST(FpTreeTest, PrefixSharingCompressesNodes) {
  TransactionDatabase db;
  for (int i = 0; i < 10; ++i) db.Add({1, 2, 3});
  auto tree = FpTree::Build(db, 1);
  // Root + one node per item: identical transactions share one path.
  EXPECT_EQ(tree.node_count(), 4u);
  EXPECT_TRUE(tree.IsSinglePath());
}

TEST(FpTreeTest, SinglePathDetection) {
  TransactionDatabase db;
  db.Add({1, 2});
  db.Add({1, 3});
  auto tree = FpTree::Build(db, 1);
  EXPECT_FALSE(tree.IsSinglePath());
}

TEST(FpTreeTest, SinglePathItemsInOrder) {
  TransactionDatabase db;
  db.Add({1, 2, 3});
  db.Add({1, 2});
  db.Add({1});
  auto tree = FpTree::Build(db, 1);
  ASSERT_TRUE(tree.IsSinglePath());
  auto items = tree.SinglePathItems();
  ASSERT_EQ(items.size(), 3u);
  EXPECT_EQ(items[0], (std::pair<ItemId, size_t>{1, 3}));
  EXPECT_EQ(items[1], (std::pair<ItemId, size_t>{2, 2}));
  EXPECT_EQ(items[2], (std::pair<ItemId, size_t>{3, 1}));
}

TEST(FpTreeTest, ConditionalPatternBase) {
  TransactionDatabase db;
  db.Add({1, 2, 3});
  db.Add({1, 3});
  db.Add({2, 3});
  auto tree = FpTree::Build(db, 1);
  // Paths are frequency-ordered: item 3 (support 3) sits at the top, so its
  // pattern base is empty; item 2 (support 2, highest id) is deepest.
  EXPECT_TRUE(tree.ConditionalPatternBase(3).empty());
  auto base = tree.ConditionalPatternBase(2);
  ASSERT_EQ(base.size(), 2u);
  size_t total = 0;
  for (const auto& path : base) {
    total += path.count;
    EXPECT_EQ(path.items.front(), 3u);  // every prefix starts at the root
  }
  EXPECT_EQ(total, 2u);
}

TEST(FpTreeTest, HeaderChainCoversAllOccurrences) {
  TransactionDatabase db;
  db.Add({1, 2});
  db.Add({2, 3});
  db.Add({2});
  auto tree = FpTree::Build(db, 1);
  size_t chain_total = 0;
  for (FpTree::NodeIndex node = tree.HeaderChain(2); node != FpTree::kNoNode;
       node = tree.next_same_item(node)) {
    chain_total += tree.count(node);
  }
  EXPECT_EQ(chain_total, 3u);
}

TEST(FpGrowthTest, MatchesAprioriOnRandomDatabases) {
  maras::Rng rng(2024);
  for (int trial = 0; trial < 12; ++trial) {
    TransactionDatabase db = RandomDb(&rng, 80, 10, 6);
    size_t min_support = 2 + rng.Uniform(5);
    MiningOptions options{.min_support = min_support};
    auto fp = FpGrowth(options).Mine(db);
    auto ap = Apriori(options).Mine(db);
    ASSERT_TRUE(fp.ok());
    ASSERT_TRUE(ap.ok());
    ASSERT_EQ(fp->size(), ap->size()) << "trial " << trial;
    // Canonical sort makes the results directly comparable.
    for (size_t i = 0; i < fp->size(); ++i) {
      EXPECT_EQ(fp->itemsets()[i].items, ap->itemsets()[i].items);
      EXPECT_EQ(fp->itemsets()[i].support, ap->itemsets()[i].support);
    }
  }
}

TEST(FpGrowthTest, MatchesAprioriWithSizeCap) {
  maras::Rng rng(77);
  TransactionDatabase db = RandomDb(&rng, 100, 12, 7);
  MiningOptions options{.min_support = 3, .max_itemset_size = 3};
  auto fp = FpGrowth(options).Mine(db);
  auto ap = Apriori(options).Mine(db);
  ASSERT_TRUE(fp.ok());
  ASSERT_TRUE(ap.ok());
  ASSERT_EQ(fp->size(), ap->size());
  for (size_t i = 0; i < fp->size(); ++i) {
    EXPECT_EQ(fp->itemsets()[i].items, ap->itemsets()[i].items);
    EXPECT_LE(fp->itemsets()[i].items.size(), 3u);
  }
}

TEST(FpGrowthTest, MinSupportZeroRejected) {
  FpGrowth miner(MiningOptions{.min_support = 0});
  TransactionDatabase db;
  db.Add({1});
  EXPECT_TRUE(miner.Mine(db).status().IsInvalidArgument());
}

TEST(FpGrowthTest, EmptyDatabase) {
  FpGrowth miner(MiningOptions{.min_support = 1});
  TransactionDatabase db;
  auto result = miner.Mine(db);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 0u);
}

TEST(FpGrowthTest, SupportsVerifiedAgainstDatabase) {
  maras::Rng rng(5150);
  TransactionDatabase db = RandomDb(&rng, 120, 14, 6);
  FpGrowth miner(MiningOptions{.min_support = 4});
  auto result = miner.Mine(db);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->size(), 0u);
  for (const auto& fi : result->itemsets()) {
    EXPECT_EQ(db.Support(fi.items), fi.support) << ToString(fi.items);
    EXPECT_GE(fi.support, 4u);
  }
}

// Parameterized sweep: the two miners agree across support thresholds.
class MinerEquivalenceTest : public ::testing::TestWithParam<size_t> {};

TEST_P(MinerEquivalenceTest, AprioriAndFpGrowthAgree) {
  maras::Rng rng(999);
  TransactionDatabase db = RandomDb(&rng, 150, 12, 8);
  MiningOptions options{.min_support = GetParam()};
  auto fp = FpGrowth(options).Mine(db);
  auto ap = Apriori(options).Mine(db);
  ASSERT_TRUE(fp.ok());
  ASSERT_TRUE(ap.ok());
  ASSERT_EQ(fp->size(), ap->size());
  for (size_t i = 0; i < fp->size(); ++i) {
    EXPECT_EQ(fp->itemsets()[i].items, ap->itemsets()[i].items);
    EXPECT_EQ(fp->itemsets()[i].support, ap->itemsets()[i].support);
  }
}

INSTANTIATE_TEST_SUITE_P(SupportSweep, MinerEquivalenceTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 40));

}  // namespace
}  // namespace maras::mining
