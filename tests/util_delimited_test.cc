#include "util/delimited.h"

#include <gtest/gtest.h>

#include <cstdio>

namespace maras {
namespace {

TEST(DelimitedReaderTest, ParsesHeaderAndRows) {
  DelimitedReader reader('$');
  auto table = reader.ParseString("a$b$c\n1$2$3\n4$5$6\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->header, (std::vector<std::string>{"a", "b", "c"}));
  ASSERT_EQ(table->rows.size(), 2u);
  EXPECT_EQ(table->rows[1], (std::vector<std::string>{"4", "5", "6"}));
}

TEST(DelimitedReaderTest, HandlesCrLfAndBlankLines) {
  DelimitedReader reader(',');
  auto table = reader.ParseString("x,y\r\n\r\n1,2\r\n");
  ASSERT_TRUE(table.ok());
  ASSERT_EQ(table->rows.size(), 1u);
  EXPECT_EQ(table->rows[0], (std::vector<std::string>{"1", "2"}));
}

TEST(DelimitedReaderTest, MissingFinalNewlineOk) {
  DelimitedReader reader(',');
  auto table = reader.ParseString("x,y\n1,2");
  ASSERT_TRUE(table.ok());
  ASSERT_EQ(table->rows.size(), 1u);
}

TEST(DelimitedReaderTest, RowWidthMismatchIsCorruption) {
  DelimitedReader reader(',');
  auto table = reader.ParseString("x,y\n1,2,3\n");
  EXPECT_TRUE(table.status().IsCorruption());
}

TEST(DelimitedReaderTest, EmptyContentIsCorruption) {
  DelimitedReader reader(',');
  EXPECT_TRUE(reader.ParseString("").status().IsCorruption());
}

TEST(DelimitedReaderTest, EmptyFieldsPreserved) {
  DelimitedReader reader('$');
  auto table = reader.ParseString("a$b\n$\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->rows[0], (std::vector<std::string>{"", ""}));
}

TEST(DelimitedTableTest, ColumnIndex) {
  DelimitedTable table;
  table.header = {"primaryid", "caseid", "pt"};
  EXPECT_EQ(table.ColumnIndex("caseid"), 1);
  EXPECT_EQ(table.ColumnIndex("absent"), -1);
}

TEST(DelimitedWriterTest, RoundTrip) {
  DelimitedTable table;
  table.header = {"a", "b"};
  table.rows = {{"1", "2"}, {"", "x y"}};
  DelimitedWriter writer('$');
  auto text = writer.ToString(table);
  ASSERT_TRUE(text.ok());
  DelimitedReader reader('$');
  auto parsed = reader.ParseString(*text);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->header, table.header);
  EXPECT_EQ(parsed->rows, table.rows);
}

TEST(DelimitedWriterTest, WidthMismatchRejected) {
  DelimitedTable table;
  table.header = {"a", "b"};
  table.rows = {{"only-one"}};
  DelimitedWriter writer(',');
  EXPECT_TRUE(writer.ToString(table).status().IsInvalidArgument());
}

TEST(DelimitedPermissiveTest, BadRowsAreCollectedNotFatal) {
  DelimitedReader reader('$');
  std::vector<DelimitedRowIssue> issues;
  auto table = reader.ParseString("a$b$c\n1$2$3\nshort$row\n4$5$6\n1$2$3$4\n",
                                  &issues);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->rows.size(), 2u);
  EXPECT_EQ(table->row_lines, (std::vector<size_t>{2, 4}));
  ASSERT_EQ(issues.size(), 2u);
  EXPECT_EQ(issues[0].line, 3u);
  EXPECT_EQ(issues[0].content, "short$row");
  EXPECT_NE(issues[0].reason.find("2 fields, expected 3"), std::string::npos);
  EXPECT_EQ(issues[1].line, 5u);
}

TEST(DelimitedPermissiveTest, MissingHeaderStillFails) {
  DelimitedReader reader('$');
  std::vector<DelimitedRowIssue> issues;
  EXPECT_TRUE(reader.ParseString("", &issues).status().IsCorruption());
}

TEST(DelimitedPermissiveTest, RowLinesAccountForBlankLines) {
  DelimitedReader reader(',');
  auto table = reader.ParseString("h1,h2\n\na,b\n\nc,d\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->row_lines, (std::vector<size_t>{3, 5}));
}

TEST(FileIoTest, WriteAndReadBack) {
  std::string path = ::testing::TempDir() + "/maras_delim_test.txt";
  ASSERT_TRUE(WriteStringToFile(path, "hello\nworld\n").ok());
  auto content = ReadFileToString(path);
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(*content, "hello\nworld\n");
  std::remove(path.c_str());
}

TEST(FileIoTest, MissingFileIsIOError) {
  EXPECT_TRUE(
      ReadFileToString("/nonexistent/dir/file.txt").status().IsIOError());
}

TEST(FileIoTest, ReadWriteFileTable) {
  std::string path = ::testing::TempDir() + "/maras_table_test.txt";
  DelimitedTable table;
  table.header = {"h1", "h2"};
  table.rows = {{"v1", "v2"}};
  DelimitedWriter writer('$');
  ASSERT_TRUE(writer.WriteFile(path, table).ok());
  DelimitedReader reader('$');
  auto parsed = reader.ReadFile(path);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->rows, table.rows);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace maras
