#ifndef MARAS_TESTS_SERVE_TEST_UTIL_H_
#define MARAS_TESTS_SERVE_TEST_UTIL_H_

// Shared fixture for the serving-path tests: one analyzed corpus with its
// ranked signals, plus helpers to hand it to the snapshot writer and to
// re-stamp checksums on deliberately forged images.

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/analyzer.h"
#include "core/checkpoint.h"
#include "core/ranking.h"
#include "serve/snapshot_format.h"
#include "serve/snapshot_writer.h"
#include "test_util.h"

namespace maras::test {

struct ServeFixture {
  MiniCorpus corpus;
  std::vector<core::RankedMcac> ranked;
  core::RuleSpaceStats stats;
  std::vector<uint64_t> primary_ids;
};

// Analyzes AsthmaCorpus at low support so the snapshot carries a signal
// with real multi-level context. `extended` grows the corpus with a second
// interaction (ASPIRIN + WARFARIN ⇒ BLEEDING), so extended and plain
// fixtures differ in both item and signal counts — tests use the pair to
// tell generations apart.
inline ServeFixture MakeServeFixture(bool extended = false) {
  ServeFixture fixture;
  fixture.corpus = AsthmaCorpus();
  if (extended) {
    fixture.corpus.Add({{"ASPIRIN", "WARFARIN"}, {"BLEEDING"}}, 8);
    fixture.corpus.Add({{"WARFARIN"}, {"BLEEDING"}}, 3);
    fixture.corpus.Add({{"ASPIRIN"}, {"BLEEDING"}}, 2);
  }
  core::AnalyzerOptions options;
  options.mining.min_support = 2;
  core::MarasAnalyzer analyzer(options);
  auto result =
      analyzer.Analyze(fixture.corpus.items, fixture.corpus.db);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  fixture.stats = result->stats;
  fixture.ranked =
      core::RankMcacs(result->mcacs, core::RankingMethod::kExclusivenessLift,
                      options.exclusiveness);
  EXPECT_FALSE(fixture.ranked.empty());
  for (size_t i = 0; i < fixture.corpus.db.size(); ++i) {
    fixture.primary_ids.push_back(1000 + i);
  }
  return fixture;
}

// A corpus whose ranked signals form a covering chain in the concept
// lattice: D1+D2 ⇒ X sits one covering step below D1+D2+D3 ⇒ X (same ADR,
// maximal proper drug subset), so snapshots of this fixture carry non-empty
// lattice-navigation lists.
inline ServeFixture MakeLayeredServeFixture() {
  ServeFixture fixture;
  fixture.corpus.Add({{"D1", "D2", "D3"}, {"X"}}, 5);
  fixture.corpus.Add({{"D1", "D2"}, {"X"}}, 4);
  fixture.corpus.Add({{"D1"}, {"X"}}, 3);
  fixture.corpus.Add({{"D2"}, {"Y"}}, 6);
  fixture.corpus.Add({{"D3"}, {"Y"}}, 6);
  core::AnalyzerOptions options;
  options.mining.min_support = 2;
  core::MarasAnalyzer analyzer(options);
  auto result = analyzer.Analyze(fixture.corpus.items, fixture.corpus.db);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  fixture.stats = result->stats;
  fixture.ranked =
      core::RankMcacs(result->mcacs, core::RankingMethod::kExclusivenessLift,
                      options.exclusiveness);
  EXPECT_GE(fixture.ranked.size(), 2u);
  for (size_t i = 0; i < fixture.corpus.db.size(); ++i) {
    fixture.primary_ids.push_back(1000 + i);
  }
  return fixture;
}

inline serve::SnapshotInputs InputsOf(const ServeFixture& fixture) {
  serve::SnapshotInputs inputs;
  inputs.items = &fixture.corpus.items;
  inputs.signals = &fixture.ranked;
  inputs.stats = fixture.stats;
  inputs.db = &fixture.corpus.db;
  inputs.primary_ids = &fixture.primary_ids;
  return inputs;
}

inline void PutU64Le(std::string* bytes, size_t pos, uint64_t v) {
  std::memcpy(bytes->data() + pos, &v, sizeof(v));
}

inline uint32_t GetU32Le(const std::string& bytes, size_t pos) {
  uint32_t v = 0;
  std::memcpy(&v, bytes.data() + pos, sizeof(v));
  return v;
}

// Recomputes every per-section checksum and the header's table checksum
// from the (possibly mutated) image, so a test can forge *semantic* content
// and prove the reader rejects it on validation, not merely on checksums.
inline void RestampChecksums(std::string* bytes) {
  using serve::kFileHeaderBytes;
  using serve::kSectionEntryBytes;
  ASSERT_GE(bytes->size(),
            kFileHeaderBytes + serve::kSectionCount * kSectionEntryBytes);
  for (uint32_t i = 0; i < serve::kSectionCount; ++i) {
    const size_t entry = kFileHeaderBytes + size_t{i} * kSectionEntryBytes;
    const uint32_t offset = GetU32Le(*bytes, entry + 4);
    const uint32_t size = GetU32Le(*bytes, entry + 8);
    ASSERT_LE(uint64_t{offset} + size, bytes->size());
    PutU64Le(bytes, entry + 16,
             core::Fnv1a64(std::string_view(*bytes).substr(offset, size)));
  }
  PutU64Le(bytes, 16,
           core::Fnv1a64(std::string_view(*bytes).substr(
               kFileHeaderBytes,
               size_t{serve::kSectionCount} * kSectionEntryBytes)));
}

}  // namespace maras::test

#endif  // MARAS_TESTS_SERVE_TEST_UTIL_H_
