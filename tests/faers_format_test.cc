#include "faers/ascii_format.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "util/random.h"

namespace maras::faers {
namespace {

QuarterDataset SampleDataset() {
  QuarterDataset dataset;
  dataset.year = 2014;
  dataset.quarter = 1;
  Report r1;
  r1.case_id = 10000001;
  r1.case_version = 1;
  r1.type = ReportType::kExpedited;
  r1.sex = Sex::kFemale;
  r1.age = 63;
  r1.country = "US";
  r1.drugs = {"ASPIRIN", "WARFARIN"};
  r1.reactions = {"HAEMORRHAGE"};
  Report r2;
  r2.case_id = 10000002;
  r2.case_version = 2;
  r2.type = ReportType::kPeriodic;
  r2.sex = Sex::kMale;
  r2.age = -1;  // unreported
  r2.country = "GB";
  r2.drugs = {"NEXIUM"};
  r2.reactions = {"OSTEOPOROSIS", "NAUSEA"};
  dataset.reports = {r1, r2};
  return dataset;
}

TEST(AsciiFormatTest, RoundTrip) {
  QuarterDataset original = SampleDataset();
  auto files = WriteAsciiQuarter(original);
  ASSERT_TRUE(files.ok());
  auto parsed = ReadAsciiQuarter(*files, 2014, 1);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->reports.size(), 2u);
  const Report& r1 = parsed->reports[0];
  EXPECT_EQ(r1.case_id, 10000001u);
  EXPECT_EQ(r1.case_version, 1u);
  EXPECT_EQ(r1.type, ReportType::kExpedited);
  EXPECT_EQ(r1.sex, Sex::kFemale);
  EXPECT_DOUBLE_EQ(r1.age, 63.0);
  EXPECT_EQ(r1.country, "US");
  EXPECT_EQ(r1.drugs, (std::vector<std::string>{"ASPIRIN", "WARFARIN"}));
  EXPECT_EQ(r1.reactions, (std::vector<std::string>{"HAEMORRHAGE"}));
  const Report& r2 = parsed->reports[1];
  EXPECT_EQ(r2.case_version, 2u);
  EXPECT_LT(r2.age, 0.0);
  EXPECT_EQ(r2.reactions.size(), 2u);
}

TEST(AsciiFormatTest, HeaderColumnsMatchFaersLayout) {
  auto files = WriteAsciiQuarter(SampleDataset());
  ASSERT_TRUE(files.ok());
  EXPECT_EQ(files->demo.substr(0, files->demo.find('\n')),
            "primaryid$caseid$caseversion$rept_cod$age$sex$occr_country");
  EXPECT_EQ(files->drug.substr(0, files->drug.find('\n')),
            "primaryid$caseid$drug_seq$role_cod$drugname");
  EXPECT_EQ(files->reac.substr(0, files->reac.find('\n')),
            "primaryid$caseid$pt");
}

TEST(AsciiFormatTest, PrimaryIdEncodesCaseAndVersion) {
  Report r;
  r.case_id = 123;
  r.case_version = 4;
  EXPECT_EQ(r.primary_id(), 12304u);
}

TEST(AsciiFormatTest, OrphanDrugRowIsCorruption) {
  auto files = WriteAsciiQuarter(SampleDataset());
  ASSERT_TRUE(files.ok());
  files->drug += "999999$9999$1$PS$MYSTERY\n";
  EXPECT_TRUE(ReadAsciiQuarter(*files, 2014, 1).status().IsCorruption());
}

TEST(AsciiFormatTest, OrphanReacRowIsCorruption) {
  auto files = WriteAsciiQuarter(SampleDataset());
  ASSERT_TRUE(files.ok());
  files->reac += "999999$9999$NAUSEA\n";
  EXPECT_TRUE(ReadAsciiQuarter(*files, 2014, 1).status().IsCorruption());
}

TEST(AsciiFormatTest, DuplicatePrimaryIdIsCorruption) {
  QuarterDataset dataset = SampleDataset();
  dataset.reports.push_back(dataset.reports[0]);
  auto files = WriteAsciiQuarter(dataset);
  ASSERT_TRUE(files.ok());
  EXPECT_TRUE(ReadAsciiQuarter(*files, 2014, 1).status().IsCorruption());
}

TEST(AsciiFormatTest, BadReportTypeIsCorruption) {
  auto files = WriteAsciiQuarter(SampleDataset());
  ASSERT_TRUE(files.ok());
  size_t pos = files->demo.find("EXP");
  ASSERT_NE(pos, std::string::npos);
  files->demo.replace(pos, 3, "XXX");
  EXPECT_TRUE(ReadAsciiQuarter(*files, 2014, 1).status().IsCorruption());
}

TEST(AsciiFormatTest, DirectoryRoundTrip) {
  std::string dir = ::testing::TempDir();
  QuarterDataset original = SampleDataset();
  ASSERT_TRUE(WriteAsciiQuarterToDir(original, dir).ok());
  auto parsed = ReadAsciiQuarterFromDir(dir, 2014, 1);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->reports.size(), original.reports.size());
  for (const char* name : {"DEMO14Q1.txt", "DRUG14Q1.txt", "REAC14Q1.txt"}) {
    std::remove((dir + "/" + name).c_str());
  }
}

TEST(AsciiFuzzTest, MutatedFilesNeverCrash) {
  auto files = WriteAsciiQuarter(SampleDataset());
  ASSERT_TRUE(files.ok());
  maras::Rng rng(73);
  for (int trial = 0; trial < 300; ++trial) {
    AsciiQuarterFiles mutated = *files;
    std::string* victim = trial % 3 == 0   ? &mutated.demo
                          : trial % 3 == 1 ? &mutated.drug
                                           : &mutated.reac;
    for (int e = 0; e < 3; ++e) {
      size_t pos = rng.Uniform(victim->size());
      switch (rng.Uniform(3)) {
        case 0:
          (*victim)[pos] = static_cast<char>(32 + rng.Uniform(95));
          break;
        case 1:
          victim->erase(pos, 1);
          break;
        default:
          victim->insert(pos, 1, '$');
          break;
      }
      // assign(1, 'x') instead of = "x": GCC 12's -Wrestrict false-positives
      // (PR105651) on the inlined const char* replace path.
      if (victim->empty()) victim->assign(1, 'x');
    }
    auto parsed = ReadAsciiQuarter(mutated, 2014, 1);  // must not crash
    (void)parsed;
  }
}

TEST(ReportCodesTest, RoundTrip) {
  for (ReportType t :
       {ReportType::kExpedited, ReportType::kPeriodic, ReportType::kDirect}) {
    ReportType parsed;
    ASSERT_TRUE(ParseReportType(ReportTypeCode(t), &parsed));
    EXPECT_EQ(parsed, t);
  }
  ReportType dummy;
  EXPECT_FALSE(ParseReportType("BOGUS", &dummy));
  for (Sex s : {Sex::kFemale, Sex::kMale, Sex::kUnknown}) {
    Sex parsed;
    ASSERT_TRUE(ParseSex(SexCode(s), &parsed));
    EXPECT_EQ(parsed, s);
  }
}

}  // namespace
}  // namespace maras::faers
