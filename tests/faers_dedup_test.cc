#include "faers/dedup.h"

#include <gtest/gtest.h>

namespace maras::faers {
namespace {

Report MakeReport(uint64_t case_id, std::vector<std::string> drugs,
                  std::vector<std::string> reactions,
                  Sex sex = Sex::kFemale, double age = 60) {
  Report r;
  r.case_id = case_id;
  r.case_version = 1;
  r.sex = sex;
  r.age = age;
  r.drugs = std::move(drugs);
  r.reactions = std::move(reactions);
  return r;
}

TEST(DedupTest, NoDuplicatesInDistinctReports) {
  QuarterDataset dataset;
  dataset.reports = {
      MakeReport(1, {"ASPIRIN"}, {"NAUSEA"}),
      MakeReport(2, {"WARFARIN"}, {"NAUSEA"}),
      MakeReport(3, {"ASPIRIN"}, {"RASH"}),
  };
  DedupStats stats;
  auto clusters = FindDuplicateCases(dataset, &stats);
  EXPECT_TRUE(clusters.empty());
  EXPECT_EQ(stats.redundant_reports, 0u);
}

TEST(DedupTest, SameEventDifferentReporters) {
  // Patient (case 1) and manufacturer (case 2) report the same event.
  QuarterDataset dataset;
  dataset.reports = {
      MakeReport(1, {"ASPIRIN", "WARFARIN"}, {"HAEMORRHAGE"}),
      MakeReport(2, {"WARFARIN", "ASPIRIN"}, {"HAEMORRHAGE"}),  // reordered
      MakeReport(3, {"NEXIUM"}, {"NAUSEA"}),
  };
  DedupStats stats;
  auto clusters = FindDuplicateCases(dataset, &stats);
  ASSERT_EQ(clusters.size(), 1u);
  EXPECT_EQ(clusters[0].primary_ids,
            (std::vector<uint64_t>{101, 201}));
  EXPECT_EQ(stats.clusters, 1u);
  EXPECT_EQ(stats.redundant_reports, 1u);
}

TEST(DedupTest, DifferentDemographicsDoNotMatch) {
  QuarterDataset dataset;
  dataset.reports = {
      MakeReport(1, {"ASPIRIN"}, {"NAUSEA"}, Sex::kFemale, 70),
      MakeReport(2, {"ASPIRIN"}, {"NAUSEA"}, Sex::kMale, 70),
      MakeReport(3, {"ASPIRIN"}, {"NAUSEA"}, Sex::kFemale, 30),
  };
  EXPECT_TRUE(FindDuplicateCases(dataset).empty());
}

TEST(DedupTest, SameAgeBandMatches) {
  // 66 and 80 fall in the same band; exact ages differ across reporters.
  QuarterDataset dataset;
  dataset.reports = {
      MakeReport(1, {"ASPIRIN"}, {"NAUSEA"}, Sex::kFemale, 66),
      MakeReport(2, {"ASPIRIN"}, {"NAUSEA"}, Sex::kFemale, 80),
  };
  EXPECT_EQ(FindDuplicateCases(dataset).size(), 1u);
}

TEST(DedupTest, VersionedResubmissionNotFlagged) {
  // Same case id twice (v1 + v2) is versioning, not duplication.
  Report v1 = MakeReport(7, {"ASPIRIN"}, {"NAUSEA"});
  Report v2 = v1;
  v2.case_version = 2;
  QuarterDataset dataset;
  dataset.reports = {v1, v2};
  EXPECT_TRUE(FindDuplicateCases(dataset).empty());
}

TEST(DedupTest, EmptyContentNeverMatches) {
  QuarterDataset dataset;
  dataset.reports = {
      MakeReport(1, {}, {"NAUSEA"}),
      MakeReport(2, {}, {"NAUSEA"}),
      MakeReport(3, {"ASPIRIN"}, {}),
      MakeReport(4, {"ASPIRIN"}, {}),
  };
  EXPECT_TRUE(FindDuplicateCases(dataset).empty());
}

TEST(DedupTest, RemoveKeepsFirstOfEachCluster) {
  QuarterDataset dataset;
  dataset.quarter = 2;
  dataset.reports = {
      MakeReport(1, {"ASPIRIN", "WARFARIN"}, {"HAEMORRHAGE"}),
      MakeReport(2, {"ASPIRIN", "WARFARIN"}, {"HAEMORRHAGE"}),
      MakeReport(3, {"ASPIRIN", "WARFARIN"}, {"HAEMORRHAGE"}),
      MakeReport(4, {"NEXIUM"}, {"NAUSEA"}),
  };
  DedupStats stats;
  QuarterDataset kept = RemoveDuplicateCases(dataset, &stats);
  EXPECT_EQ(stats.redundant_reports, 2u);
  ASSERT_EQ(kept.reports.size(), 2u);
  EXPECT_EQ(kept.reports[0].case_id, 1u);
  EXPECT_EQ(kept.reports[1].case_id, 4u);
  EXPECT_EQ(kept.quarter, 2);
}

TEST(DedupTest, TripleReporterCluster) {
  QuarterDataset dataset;
  dataset.reports = {
      MakeReport(1, {"A"}, {"X"}),
      MakeReport(2, {"A"}, {"X"}),
      MakeReport(3, {"A"}, {"X"}),
  };
  auto clusters = FindDuplicateCases(dataset);
  ASSERT_EQ(clusters.size(), 1u);
  EXPECT_EQ(clusters[0].primary_ids.size(), 3u);
}

}  // namespace
}  // namespace maras::faers
