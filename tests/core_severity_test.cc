#include "core/severity.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace maras::core {
namespace {

using maras::test::MiniCorpus;

TEST(SeverityLexiconTest, KnownTerms) {
  EXPECT_EQ(SeverityOfTerm("DEATH"), Severity::kFatal);
  EXPECT_EQ(SeverityOfTerm("CARDIAC ARREST"), Severity::kFatal);
  EXPECT_EQ(SeverityOfTerm("HAEMORRHAGE"), Severity::kSevere);
  EXPECT_EQ(SeverityOfTerm("ACUTE RENAL FAILURE"), Severity::kSevere);
  EXPECT_EQ(SeverityOfTerm("NAUSEA"), Severity::kMild);
  EXPECT_EQ(SeverityOfTerm("HEADACHE"), Severity::kMild);
}

TEST(SeverityLexiconTest, UnknownTermsDefaultToModerate) {
  EXPECT_EQ(SeverityOfTerm("SOME NOVEL REACTION"), Severity::kModerate);
  EXPECT_EQ(SeverityOfTerm(""), Severity::kModerate);
}

TEST(SeverityLexiconTest, NormalizedHyphenFormCovered) {
  // The preprocessor maps '-' to ' '; both forms must classify the same.
  EXPECT_EQ(SeverityOfTerm("STEVENS-JOHNSON SYNDROME"), Severity::kSevere);
  EXPECT_EQ(SeverityOfTerm("STEVENS JOHNSON SYNDROME"), Severity::kSevere);
}

TEST(SeverityNameTest, AllNamed) {
  EXPECT_STREQ(SeverityName(Severity::kMild), "mild");
  EXPECT_STREQ(SeverityName(Severity::kModerate), "moderate");
  EXPECT_STREQ(SeverityName(Severity::kSevere), "severe");
  EXPECT_STREQ(SeverityName(Severity::kFatal), "fatal");
}

TEST(MaxSeverityTest, TakesWorstConsequentTerm) {
  MiniCorpus corpus;
  corpus.Add({{"A", "B"}, {"NAUSEA", "HAEMORRHAGE"}}, 2);
  DrugAdrRule rule;
  rule.drugs = corpus.Drugs({"A", "B"});
  rule.adrs = corpus.Adrs({"NAUSEA", "HAEMORRHAGE"});
  EXPECT_EQ(MaxSeverity(rule, corpus.items), Severity::kSevere);
}

TEST(FilterBySeverityTest, KeepsOnlyThresholdAndAbove) {
  MiniCorpus corpus;
  corpus.Add({{"A", "B"}, {"NAUSEA"}}, 3);
  corpus.Add({{"C", "D"}, {"HAEMORRHAGE"}}, 3);
  corpus.Add({{"E", "F"}, {"DEATH"}}, 3);

  auto make_mcac = [&](const std::vector<std::string>& drugs,
                       const std::vector<std::string>& adrs) {
    Mcac mcac;
    mcac.target.drugs = corpus.Drugs(drugs);
    mcac.target.adrs = corpus.Adrs(adrs);
    return mcac;
  };
  std::vector<Mcac> mcacs = {make_mcac({"A", "B"}, {"NAUSEA"}),
                             make_mcac({"C", "D"}, {"HAEMORRHAGE"}),
                             make_mcac({"E", "F"}, {"DEATH"})};

  auto severe = FilterBySeverity(mcacs, corpus.items, Severity::kSevere);
  EXPECT_EQ(severe.size(), 2u);
  auto fatal = FilterBySeverity(mcacs, corpus.items, Severity::kFatal);
  EXPECT_EQ(fatal.size(), 1u);
  auto all = FilterBySeverity(mcacs, corpus.items, Severity::kMild);
  EXPECT_EQ(all.size(), 3u);
}

TEST(SeverityWeightTest, MonotoneInSeverity) {
  EXPECT_LT(SeverityWeight(Severity::kMild),
            SeverityWeight(Severity::kModerate));
  EXPECT_LT(SeverityWeight(Severity::kModerate),
            SeverityWeight(Severity::kSevere));
  EXPECT_LT(SeverityWeight(Severity::kSevere),
            SeverityWeight(Severity::kFatal));
  EXPECT_DOUBLE_EQ(SeverityWeight(Severity::kMild), 1.0);
}

TEST(SeverityBoostTest, ReordersEquallyExclusiveClusters) {
  MiniCorpus corpus;
  // Two structurally identical exclusive signals, one mild one fatal.
  corpus.Add({{"A", "B"}, {"NAUSEA"}}, 10);
  corpus.Add({{"A"}, {"RASH"}}, 20);
  corpus.Add({{"B"}, {"RASH"}}, 20);
  corpus.Add({{"C", "D"}, {"DEATH"}}, 10);
  corpus.Add({{"C"}, {"RASH"}}, 20);
  corpus.Add({{"D"}, {"RASH"}}, 20);

  McacBuilder builder(&corpus.items, &corpus.db);
  auto mild_rule = BuildRule(
      mining::Union(corpus.Drugs({"A", "B"}), corpus.Adrs({"NAUSEA"})),
      corpus.items, corpus.db);
  auto fatal_rule = BuildRule(
      mining::Union(corpus.Drugs({"C", "D"}), corpus.Adrs({"DEATH"})),
      corpus.items, corpus.db);
  ASSERT_TRUE(mild_rule.ok());
  ASSERT_TRUE(fatal_rule.ok());
  auto mild = builder.Build(*mild_rule);
  auto fatal = builder.Build(*fatal_rule);
  ASSERT_TRUE(mild.ok());
  ASSERT_TRUE(fatal.ok());

  ExclusivenessOptions options;
  // Equal plain exclusiveness by symmetry...
  EXPECT_NEAR(Exclusiveness(*mild, options), Exclusiveness(*fatal, options),
              1e-9);
  // ...but the fatal cluster wins after the severity boost.
  auto ranked = RankBySeverityBoostedScore({*mild, *fatal}, corpus.items,
                                           options);
  ASSERT_EQ(ranked.size(), 2u);
  EXPECT_EQ(ranked[0].mcac.target.drugs, corpus.Drugs({"C", "D"}));
  EXPECT_GT(ranked[0].score, ranked[1].score);
}

TEST(SeverityBoostTest, ScoreIsExclusivenessTimesWeight) {
  MiniCorpus corpus;
  corpus.Add({{"A", "B"}, {"DEATH"}}, 5);
  corpus.Add({{"A"}, {"RASH"}}, 5);
  McacBuilder builder(&corpus.items, &corpus.db);
  auto rule = BuildRule(
      mining::Union(corpus.Drugs({"A", "B"}), corpus.Adrs({"DEATH"})),
      corpus.items, corpus.db);
  ASSERT_TRUE(rule.ok());
  auto mcac = builder.Build(*rule);
  ASSERT_TRUE(mcac.ok());
  ExclusivenessOptions options;
  EXPECT_NEAR(SeverityBoostedScore(*mcac, corpus.items, options),
              Exclusiveness(*mcac, options) * 2.0, 1e-12);
}

}  // namespace
}  // namespace maras::core
