#include "core/explain.h"

#include <gtest/gtest.h>

#include "test_util.h"
#include "util/random.h"

namespace maras::core {
namespace {

using maras::test::AsthmaCorpus;
using maras::test::MiniCorpus;

Mcac ValueMcac(double target, const std::vector<std::vector<double>>& levels) {
  Mcac mcac;
  mcac.target.confidence = target;
  for (size_t i = 0; i <= levels.size(); ++i) {
    mcac.target.drugs.push_back(static_cast<mining::ItemId>(i));
  }
  for (const auto& level : levels) {
    std::vector<DrugAdrRule> rules;
    for (double v : level) {
      DrugAdrRule rule;
      rule.confidence = v;
      rules.push_back(rule);
    }
    mcac.levels.push_back(std::move(rules));
  }
  return mcac;
}

TEST(ExplainTest, ContributionsSumToScore) {
  maras::Rng rng(515);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<std::vector<double>> levels(1 + rng.Uniform(3));
    for (auto& level : levels) {
      for (size_t i = 1 + rng.Uniform(4); i > 0; --i) {
        level.push_back(rng.NextDouble());
      }
    }
    Mcac mcac = ValueMcac(rng.NextDouble(), levels);
    ExclusivenessOptions options;
    options.theta = rng.NextDouble();
    options.use_decay = rng.Bernoulli(0.5);
    ScoreExplanation explanation = ExplainExclusiveness(mcac, options);
    EXPECT_NEAR(explanation.score, Exclusiveness(mcac, options), 1e-12);
    double sum = 0.0;
    for (const auto& level : explanation.levels) sum += level.contribution;
    EXPECT_NEAR(sum, explanation.score, 1e-12);
  }
}

TEST(ExplainTest, HandComputedBreakdown) {
  // Same fixture as the exclusiveness hand-computed test.
  Mcac mcac = ValueMcac(0.8, {{0.1, 0.3}, {0.5}});
  ExclusivenessOptions options;
  options.theta = 0.0;
  ScoreExplanation explanation = ExplainExclusiveness(mcac, options);
  ASSERT_EQ(explanation.levels.size(), 2u);
  EXPECT_DOUBLE_EQ(explanation.target_value, 0.8);
  EXPECT_NEAR(explanation.levels[0].mean_value, 0.2, 1e-12);
  EXPECT_NEAR(explanation.levels[0].contrast, 0.6, 1e-12);
  EXPECT_DOUBLE_EQ(explanation.levels[0].decay_factor, 1.0);
  EXPECT_NEAR(explanation.levels[0].contribution, 0.3, 1e-12);  // 0.6/2
  EXPECT_NEAR(explanation.levels[1].decay_factor, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(explanation.levels[1].contribution, 0.1, 1e-12);
  EXPECT_NEAR(explanation.score, 0.4, 1e-12);
  EXPECT_NEAR(explanation.strongest_context_value, 0.5, 1e-12);
}

TEST(ExplainTest, EmptyContext) {
  Mcac mcac = ValueMcac(0.9, {});
  ScoreExplanation explanation =
      ExplainExclusiveness(mcac, ExclusivenessOptions{});
  EXPECT_TRUE(explanation.levels.empty());
  EXPECT_DOUBLE_EQ(explanation.score, 0.0);
  EXPECT_DOUBLE_EQ(explanation.target_value, 0.9);
}

TEST(ExplainTest, SkipsEmptyLevels) {
  Mcac mcac = ValueMcac(0.9, {{0.1}, {}});
  ScoreExplanation explanation =
      ExplainExclusiveness(mcac, ExclusivenessOptions{});
  ASSERT_EQ(explanation.levels.size(), 1u);
  EXPECT_EQ(explanation.levels[0].drugs_per_rule, 1u);
}

TEST(ExplainTest, RenderNamesStrongestRules) {
  MiniCorpus corpus = AsthmaCorpus();
  mining::Itemset whole = mining::Union(
      corpus.Drugs({"XOLAIR", "SINGULAIR", "PREDNISONE"}),
      corpus.Adrs({"ASTHMA"}));
  auto target = BuildRule(whole, corpus.items, corpus.db);
  ASSERT_TRUE(target.ok());
  McacBuilder builder(&corpus.items, &corpus.db);
  auto mcac = builder.Build(*target);
  ASSERT_TRUE(mcac.ok());
  ExclusivenessOptions options;
  ScoreExplanation explanation = ExplainExclusiveness(*mcac, options);
  std::string text = RenderExplanation(explanation, *mcac, corpus.items);
  EXPECT_NE(text.find("exclusiveness"), std::string::npos);
  EXPECT_NE(text.find("level 1 (3 rules)"), std::string::npos);
  EXPECT_NE(text.find("level 2 (3 rules)"), std::string::npos);
  EXPECT_NE(text.find("strongest: "), std::string::npos);
  // XOLAIR has the highest single-drug asthma confidence in this corpus.
  EXPECT_NE(text.find("[XOLAIR]"), std::string::npos);
}

TEST(ExplainTest, PenaltyFactorReflectsTheta) {
  Mcac spread = ValueMcac(0.9, {{0.1, 0.5}});
  ExclusivenessOptions strict;
  strict.theta = 1.0;
  ScoreExplanation explanation = ExplainExclusiveness(spread, strict);
  ASSERT_EQ(explanation.levels.size(), 1u);
  EXPECT_LT(explanation.levels[0].penalty_factor, 1.0);
  ExclusivenessOptions lax;
  lax.theta = 0.0;
  EXPECT_DOUBLE_EQ(
      ExplainExclusiveness(spread, lax).levels[0].penalty_factor, 1.0);
}

}  // namespace
}  // namespace maras::core
