#include "core/export.h"

#include <gtest/gtest.h>

#include "core/analyzer.h"
#include "test_util.h"

namespace maras::core {
namespace {

using maras::test::AsthmaCorpus;
using maras::test::MiniCorpus;

struct Fixture {
  MiniCorpus corpus = AsthmaCorpus();
  AnalysisResult analysis;
  std::vector<RankedMcac> ranked;

  Fixture() {
    AnalyzerOptions options;
    options.mining.min_support = 2;
    MarasAnalyzer analyzer(options);
    auto result = analyzer.Analyze(corpus.items, corpus.db);
    EXPECT_TRUE(result.ok());
    analysis = *std::move(result);
    ranked = RankMcacs(analysis.mcacs,
                       RankingMethod::kExclusivenessConfidence, {});
  }
};

TEST(ExportTest, SchemaFields) {
  Fixture f;
  KnowledgeBase kb = CuratedKnowledgeBase();
  json::Value doc = ExportRankedMcacs(f.ranked, f.corpus.items,
                                      f.analysis.stats, kb);
  ASSERT_TRUE(doc.is_object());
  const json::Value* stats = doc.Find("stats");
  ASSERT_NE(stats, nullptr);
  EXPECT_NE(stats->Find("total_rules"), nullptr);
  EXPECT_NE(stats->Find("mcac_count"), nullptr);
  const json::Value* clusters = doc.Find("clusters");
  ASSERT_NE(clusters, nullptr);
  ASSERT_TRUE(clusters->is_array());
  ASSERT_FALSE(clusters->as_array().empty());

  const json::Value& first = clusters->as_array()[0];
  EXPECT_DOUBLE_EQ(first.Find("rank")->as_number(), 1.0);
  EXPECT_NE(first.Find("score"), nullptr);
  const json::Value* target = first.Find("target");
  ASSERT_NE(target, nullptr);
  EXPECT_TRUE(target->Find("drugs")->is_array());
  EXPECT_TRUE(target->Find("adrs")->is_array());
  EXPECT_GE(target->Find("support")->as_number(), 2.0);
  EXPECT_NE(first.Find("severity"), nullptr);
  EXPECT_NE(first.Find("novelty"), nullptr);
  EXPECT_TRUE(first.Find("context")->is_array());
}

TEST(ExportTest, RankOrderPreserved) {
  Fixture f;
  KnowledgeBase kb;
  json::Value doc = ExportRankedMcacs(f.ranked, f.corpus.items,
                                      f.analysis.stats, kb);
  const auto& clusters = doc.Find("clusters")->as_array();
  for (size_t i = 0; i < clusters.size(); ++i) {
    EXPECT_DOUBLE_EQ(clusters[i].Find("rank")->as_number(),
                     static_cast<double>(i + 1));
    EXPECT_DOUBLE_EQ(clusters[i].Find("score")->as_number(),
                     f.ranked[i].score);
  }
}

TEST(ExportTest, MaxClustersCap) {
  Fixture f;
  KnowledgeBase kb;
  ExportOptions options;
  options.max_clusters = 1;
  json::Value doc = ExportRankedMcacs(f.ranked, f.corpus.items,
                                      f.analysis.stats, kb, options);
  EXPECT_EQ(doc.Find("clusters")->as_array().size(), 1u);
}

TEST(ExportTest, OptionalSectionsToggle) {
  Fixture f;
  KnowledgeBase kb;
  ExportOptions options;
  options.include_severity = false;
  options.include_novelty = false;
  options.include_context = false;
  json::Value doc = ExportRankedMcacs(f.ranked, f.corpus.items,
                                      f.analysis.stats, kb, options);
  const json::Value& first = doc.Find("clusters")->as_array()[0];
  EXPECT_EQ(first.Find("severity"), nullptr);
  EXPECT_EQ(first.Find("novelty"), nullptr);
  EXPECT_EQ(first.Find("context"), nullptr);
}

TEST(ExportTest, ContextSizeMatchesMcac) {
  Fixture f;
  KnowledgeBase kb;
  json::Value doc = ExportRankedMcacs(f.ranked, f.corpus.items,
                                      f.analysis.stats, kb);
  const auto& clusters = doc.Find("clusters")->as_array();
  for (size_t i = 0; i < clusters.size(); ++i) {
    EXPECT_EQ(clusters[i].Find("context")->as_array().size(),
              f.ranked[i].mcac.ContextSize());
  }
}

TEST(ExportTest, JsonStringRoundTrips) {
  Fixture f;
  std::string text = ExportAnalysisToJson(
      f.analysis, f.corpus.items,
      RankingMethod::kExclusivenessConfidence, {});
  auto reparsed = json::Parse(text);
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->Find("clusters")->as_array().size(), f.ranked.size());
  // Drug names survive as strings.
  const json::Value* drugs =
      reparsed->Find("clusters")->as_array()[0].FindPath({"target"});
  ASSERT_NE(drugs, nullptr);
  EXPECT_FALSE(drugs->Find("drugs")->as_array().empty());
}

TEST(ExportTest, EmptyRankingExportsEmptyArray) {
  MiniCorpus corpus;
  corpus.Add({{"A"}, {"X"}}, 3);
  KnowledgeBase kb;
  RuleSpaceStats stats;
  json::Value doc = ExportRankedMcacs({}, corpus.items, stats, kb);
  EXPECT_TRUE(doc.Find("clusters")->as_array().empty());
}

}  // namespace
}  // namespace maras::core
