#include "viz/linechart.h"

#include <gtest/gtest.h>

#include <cmath>

namespace maras::viz {
namespace {

size_t Count(const std::string& haystack, const std::string& needle) {
  size_t count = 0, pos = 0;
  while ((pos = haystack.find(needle, pos)) != std::string::npos) {
    ++count;
    ++pos;
  }
  return count;
}

std::vector<LineChartRenderer::Series> TwoSeries() {
  return {{"alpha", {0.1, 0.4, 0.3, 0.8}}, {"beta", {0.5, 0.5, 0.6, 0.2}}};
}

TEST(LineChartTest, DrawsSegmentsAndMarkers) {
  LineChartOptions chart_options;
  chart_options.y_min = 0;
  chart_options.y_max = 1;
  LineChartRenderer renderer(chart_options);
  std::string svg =
      renderer.Render({"Q1", "Q2", "Q3", "Q4"}, TwoSeries(), "trend")
          .Render();
  // 2 axes + 5 gridlines + 2 series × 3 segments = 13 lines.
  EXPECT_EQ(Count(svg, "<line"), 13u);
  // 8 data markers.
  EXPECT_EQ(Count(svg, "<circle"), 8u);
  EXPECT_NE(svg.find("alpha"), std::string::npos);
  EXPECT_NE(svg.find("beta"), std::string::npos);
  EXPECT_NE(svg.find("trend"), std::string::npos);
  EXPECT_NE(svg.find("Q3"), std::string::npos);
}

TEST(LineChartTest, NanBreaksLine) {
  LineChartOptions chart_options;
  chart_options.y_min = 0;
  chart_options.y_max = 1;
  LineChartRenderer renderer(chart_options);
  std::vector<LineChartRenderer::Series> series = {
      {"gap", {0.1, std::nan(""), 0.3, 0.4}}};
  std::string svg =
      renderer.Render({"a", "b", "c", "d"}, series, "").Render();
  // Axes (2) + grid (5) + only ONE drawable segment (c->d).
  EXPECT_EQ(Count(svg, "<line"), 8u);
  // Markers only at finite points.
  EXPECT_EQ(Count(svg, "<circle"), 3u);
}

TEST(LineChartTest, AutoScaleCoversData) {
  LineChartRenderer renderer;  // y_max defaults to auto
  std::vector<LineChartRenderer::Series> series = {{"s", {10.0, 250.0}}};
  std::string svg = renderer.Render({"a", "b"}, series, "").Render();
  // The top tick must reach at least the max value (with head room).
  EXPECT_NE(svg.find("262.50"), std::string::npos);
}

TEST(LineChartTest, MarkersCanBeDisabled) {
  LineChartOptions options;
  options.y_min = 0;
  options.y_max = 1;
  options.show_markers = false;
  LineChartRenderer renderer(options);
  std::string svg =
      renderer.Render({"a", "b"}, {{"s", {0.2, 0.8}}}, "").Render();
  EXPECT_EQ(Count(svg, "<circle"), 0u);
}

TEST(LineChartTest, SingleCategoryCentersPoint) {
  LineChartOptions chart_options;
  chart_options.y_min = 0;
  chart_options.y_max = 1;
  LineChartRenderer renderer(chart_options);
  std::string svg = renderer.Render({"only"}, {{"s", {0.5}}}, "").Render();
  EXPECT_EQ(Count(svg, "<circle"), 1u);
  // No segments, just axes + grid.
  EXPECT_EQ(Count(svg, "<line"), 7u);
}

TEST(LineChartTest, EmptyInputsStillValidSvg) {
  LineChartRenderer renderer;
  std::string svg = renderer.Render({}, {}, "empty").Render();
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
}

}  // namespace
}  // namespace maras::viz
