#include "core/stratified.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "test_util.h"
#include "util/random.h"

namespace maras::core {
namespace {

using maras::test::MiniCorpus;

// Corpus builder that also records demographics per report.
struct StratCorpus {
  MiniCorpus corpus;
  std::vector<faers::CaseDemographics> demographics;

  void Add(const maras::test::ReportSpec& spec, faers::Sex sex, double age,
           size_t copies = 1) {
    for (size_t i = 0; i < copies; ++i) {
      corpus.Add(spec, 1);
      demographics.push_back(faers::CaseDemographics{sex, age});
    }
  }
  DrugAdrRule Rule(const std::vector<std::string>& drugs,
                   const std::vector<std::string>& adrs) {
    DrugAdrRule rule;
    rule.drugs = corpus.Drugs(drugs);
    rule.adrs = corpus.Adrs(adrs);
    return rule;
  }
};

TEST(AgeBandTest, Boundaries) {
  EXPECT_EQ(AgeBandOf(-1), AgeBand::kUnknown);
  EXPECT_EQ(AgeBandOf(0), AgeBand::kChild);
  EXPECT_EQ(AgeBandOf(17.9), AgeBand::kChild);
  EXPECT_EQ(AgeBandOf(18), AgeBand::kAdult);
  EXPECT_EQ(AgeBandOf(64.9), AgeBand::kAdult);
  EXPECT_EQ(AgeBandOf(65), AgeBand::kElderly);
  EXPECT_EQ(AgeBandOf(100), AgeBand::kElderly);
}

TEST(AgeBandTest, Names) {
  EXPECT_STREQ(AgeBandName(AgeBand::kChild), "<18");
  EXPECT_STREQ(AgeBandName(AgeBand::kElderly), "65+");
}

TEST(StratifiedTest, TablesPartitionEachStratum) {
  StratCorpus sc;
  sc.Add({{"A"}, {"X"}}, faers::Sex::kFemale, 70, 4);
  sc.Add({{"A"}, {"Y"}}, faers::Sex::kFemale, 70, 2);
  sc.Add({{"B"}, {"X"}}, faers::Sex::kMale, 30, 5);
  StratifiedAnalyzer analyzer(&sc.corpus.db, &sc.demographics);
  DrugAdrRule rule = sc.Rule({"A"}, {"X"});
  auto tables = analyzer.Tables(rule);
  // Two populated strata: F/65+ and M/18-64.
  ASSERT_EQ(tables.size(), 2u);
  size_t total = 0;
  for (const auto& stratum : tables) total += stratum.table.n();
  EXPECT_EQ(total, sc.corpus.db.size());
  // F/65+: a=4 (A with X), b=2 (A without X), c=0, d=0.
  const auto& elderly = tables[0].age_band == AgeBand::kElderly
                            ? tables[0]
                            : tables[1];
  EXPECT_EQ(elderly.table.a, 4u);
  EXPECT_EQ(elderly.table.b, 2u);
  EXPECT_EQ(elderly.table.c, 0u);
  EXPECT_EQ(elderly.table.d, 0u);
}

TEST(StratifiedTest, StratumLabels) {
  StratumTable stratum;
  stratum.sex = faers::Sex::kFemale;
  stratum.age_band = AgeBand::kElderly;
  EXPECT_EQ(stratum.Label(), "F/65+");
}

TEST(StratifiedTest, MantelHaenszelEqualsCrudeWhenHomogeneous) {
  // Single stratum -> MH reduces exactly to the crude OR.
  StratCorpus sc;
  sc.Add({{"A", "B"}, {"X"}}, faers::Sex::kFemale, 40, 6);
  sc.Add({{"A", "B"}, {"Y"}}, faers::Sex::kFemale, 40, 2);
  sc.Add({{"C"}, {"X"}}, faers::Sex::kFemale, 40, 3);
  sc.Add({{"C"}, {"Y"}}, faers::Sex::kFemale, 40, 9);
  StratifiedAnalyzer analyzer(&sc.corpus.db, &sc.demographics);
  DrugAdrRule rule = sc.Rule({"A", "B"}, {"X"});
  EXPECT_NEAR(analyzer.MantelHaenszelRor(rule), analyzer.CrudeRor(rule),
              1e-9);
  EXPECT_FALSE(analyzer.IsConfounded(rule));
}

TEST(StratifiedTest, SimpsonsParadoxDetected) {
  // Classic confounding: within each stratum drug and ADR are independent
  // (OR = 1), but the elderly both take the drug and report the ADR far
  // more, so the crude OR looks like a strong signal.
  StratCorpus sc;
  // Elderly: 40 exposed / 10 unexposed; ADR rate 50% in both arms.
  sc.Add({{"D"}, {"X"}}, faers::Sex::kFemale, 75, 20);
  sc.Add({{"D"}, {"Y"}}, faers::Sex::kFemale, 75, 20);
  sc.Add({{"C"}, {"X"}}, faers::Sex::kFemale, 75, 5);
  sc.Add({{"C"}, {"Y"}}, faers::Sex::kFemale, 75, 5);
  // Adults: 10 exposed / 40 unexposed; ADR rate 10% in both arms.
  sc.Add({{"D"}, {"X"}}, faers::Sex::kMale, 40, 1);
  sc.Add({{"D"}, {"Y"}}, faers::Sex::kMale, 40, 9);
  sc.Add({{"C"}, {"X"}}, faers::Sex::kMale, 40, 4);
  sc.Add({{"C"}, {"Y"}}, faers::Sex::kMale, 40, 36);
  StratifiedAnalyzer analyzer(&sc.corpus.db, &sc.demographics);
  DrugAdrRule rule = sc.Rule({"D"}, {"X"});
  double crude = analyzer.CrudeRor(rule);
  double pooled = analyzer.MantelHaenszelRor(rule);
  EXPECT_GT(crude, 1.5);            // the spurious crude signal
  EXPECT_NEAR(pooled, 1.0, 0.05);   // stratification removes it
  EXPECT_TRUE(analyzer.IsConfounded(rule));
}

TEST(StratifiedTest, MantelHaenszelHandComputed) {
  // Two strata with hand-computed MH OR.
  // S1: a=4 b=1 c=2 d=8 (n=15): ad/n = 32/15, bc/n = 2/15
  // S2: a=2 b=2 c=1 d=5 (n=10): ad/n = 10/10=1, bc/n = 2/10
  // OR_MH = (32/15 + 1) / (2/15 + 0.2) = (47/15) / (1/3) = 9.4
  StratCorpus sc;
  sc.Add({{"A"}, {"X"}}, faers::Sex::kFemale, 30, 4);   // S1 a
  sc.Add({{"A"}, {"Y"}}, faers::Sex::kFemale, 30, 1);   // S1 b
  sc.Add({{"B"}, {"X"}}, faers::Sex::kFemale, 30, 2);   // S1 c
  sc.Add({{"B"}, {"Y"}}, faers::Sex::kFemale, 30, 8);   // S1 d
  sc.Add({{"A"}, {"X"}}, faers::Sex::kMale, 70, 2);     // S2 a
  sc.Add({{"A"}, {"Y"}}, faers::Sex::kMale, 70, 2);     // S2 b
  sc.Add({{"B"}, {"X"}}, faers::Sex::kMale, 70, 1);     // S2 c
  sc.Add({{"B"}, {"Y"}}, faers::Sex::kMale, 70, 5);     // S2 d
  StratifiedAnalyzer analyzer(&sc.corpus.db, &sc.demographics);
  DrugAdrRule rule = sc.Rule({"A"}, {"X"});
  EXPECT_NEAR(analyzer.MantelHaenszelRor(rule), 9.4, 1e-9);
}

TEST(StratifiedTest, DegenerateDenominatorCapped) {
  StratCorpus sc;
  sc.Add({{"A"}, {"X"}}, faers::Sex::kFemale, 30, 3);
  sc.Add({{"B"}, {"Y"}}, faers::Sex::kFemale, 30, 3);
  StratifiedAnalyzer analyzer(&sc.corpus.db, &sc.demographics);
  DrugAdrRule rule = sc.Rule({"A"}, {"X"});
  // b = 0 and c = 0 in the only stratum -> denominator 0, numerator > 0.
  EXPECT_DOUBLE_EQ(analyzer.MantelHaenszelRor(rule),
                   kDisproportionalityCap);
  EXPECT_FALSE(analyzer.IsConfounded(rule));  // degenerate, not evidence
}

TEST(StratifiedTest, MissingDemographicsFallIntoUnknownStratum) {
  MiniCorpus corpus;
  corpus.Add({{"A"}, {"X"}}, 5);
  std::vector<faers::CaseDemographics> demographics;  // shorter than db
  StratifiedAnalyzer analyzer(&corpus.db, &demographics);
  DrugAdrRule rule;
  rule.drugs = corpus.Drugs({"A"});
  rule.adrs = corpus.Adrs({"X"});
  auto tables = analyzer.Tables(rule);
  ASSERT_EQ(tables.size(), 1u);
  EXPECT_EQ(tables[0].sex, faers::Sex::kUnknown);
  EXPECT_EQ(tables[0].age_band, AgeBand::kUnknown);
  EXPECT_EQ(tables[0].table.a, 5u);
}

// --------------------------------------------------------------------------
// Bitmap-kernel Tables vs the scalar merge reference, on a randomized
// corpus spanning every stratum. Cell counts are exact on both paths, so
// they must agree exactly — and everything pooled from them (MH, the
// confounding flag) must be bit-identical at any thread count.
// --------------------------------------------------------------------------

StratCorpus RandomStratCorpus(maras::Rng* rng, int reports) {
  StratCorpus built;
  const double ages[] = {-1.0, 9.0, 40.0, 81.0};  // one per band
  for (int r = 0; r < reports; ++r) {
    maras::test::ReportSpec spec;
    for (size_t i = 1 + rng->Uniform(3); i > 0; --i) {
      spec.drugs.push_back("D" + std::to_string(rng->Uniform(12)));
    }
    for (size_t i = 1 + rng->Uniform(2); i > 0; --i) {
      spec.adrs.push_back("A" + std::to_string(rng->Uniform(8)));
    }
    built.Add(spec, static_cast<faers::Sex>(rng->Uniform(3)),
              ages[rng->Uniform(4)]);
  }
  return built;
}

TEST(StratifiedTest, BitmapTablesMatchScalarReference) {
  maras::Rng rng(0x57247);
  StratCorpus built = RandomStratCorpus(&rng, 500);
  StratifiedAnalyzer analyzer(&built.corpus.db, &built.demographics);
  for (int trial = 0; trial < 25; ++trial) {
    DrugAdrRule rule = built.Rule(
        {"D" + std::to_string(rng.Uniform(12))},
        {"A" + std::to_string(rng.Uniform(8))});
    if (trial % 3 == 0) {  // multi-drug rules stress the set intersection
      rule.drugs = mining::Union(
          rule.drugs, built.corpus.Drugs({"D" + std::to_string(
                          rng.Uniform(12))}));
    }
    auto bitmap_tables = analyzer.Tables(rule);
    auto scalar_tables = analyzer.TablesScalar(rule);
    ASSERT_EQ(bitmap_tables.size(), scalar_tables.size()) << trial;
    for (size_t s = 0; s < bitmap_tables.size(); ++s) {
      EXPECT_EQ(bitmap_tables[s].sex, scalar_tables[s].sex);
      EXPECT_EQ(bitmap_tables[s].age_band, scalar_tables[s].age_band);
      EXPECT_EQ(bitmap_tables[s].table.a, scalar_tables[s].table.a) << trial;
      EXPECT_EQ(bitmap_tables[s].table.b, scalar_tables[s].table.b) << trial;
      EXPECT_EQ(bitmap_tables[s].table.c, scalar_tables[s].table.c) << trial;
      EXPECT_EQ(bitmap_tables[s].table.d, scalar_tables[s].table.d) << trial;
    }
  }
}

TEST(StratifiedTest, BatchedPoolingIdenticalAcrossThreadCounts) {
  maras::Rng rng(0x4D48);  // 'MH'
  StratCorpus built = RandomStratCorpus(&rng, 400);
  StratifiedAnalyzer analyzer(&built.corpus.db, &built.demographics);
  std::vector<DrugAdrRule> rules;
  for (int r = 0; r < 30; ++r) {
    rules.push_back(built.Rule({"D" + std::to_string(rng.Uniform(12))},
                               {"A" + std::to_string(rng.Uniform(8))}));
  }
  std::vector<double> serial = analyzer.MantelHaenszelRors(rules, 1);
  std::vector<bool> confounded1 = analyzer.Confounded(rules, 1);
  for (size_t threads : {2u, 8u}) {
    EXPECT_EQ(analyzer.MantelHaenszelRors(rules, threads), serial)
        << threads << " threads";
    EXPECT_EQ(analyzer.Confounded(rules, threads), confounded1)
        << threads << " threads";
  }
  // And each pooled value equals the one-rule path exactly.
  for (size_t i = 0; i < rules.size(); ++i) {
    EXPECT_EQ(serial[i], analyzer.MantelHaenszelRor(rules[i])) << i;
  }
}

}  // namespace
}  // namespace maras::core
