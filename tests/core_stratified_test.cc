#include "core/stratified.h"

#include <gtest/gtest.h>

#include <cmath>

#include "test_util.h"

namespace maras::core {
namespace {

using maras::test::MiniCorpus;

// Corpus builder that also records demographics per report.
struct StratCorpus {
  MiniCorpus corpus;
  std::vector<faers::CaseDemographics> demographics;

  void Add(const maras::test::ReportSpec& spec, faers::Sex sex, double age,
           size_t copies = 1) {
    for (size_t i = 0; i < copies; ++i) {
      corpus.Add(spec, 1);
      demographics.push_back(faers::CaseDemographics{sex, age});
    }
  }
  DrugAdrRule Rule(const std::vector<std::string>& drugs,
                   const std::vector<std::string>& adrs) {
    DrugAdrRule rule;
    rule.drugs = corpus.Drugs(drugs);
    rule.adrs = corpus.Adrs(adrs);
    return rule;
  }
};

TEST(AgeBandTest, Boundaries) {
  EXPECT_EQ(AgeBandOf(-1), AgeBand::kUnknown);
  EXPECT_EQ(AgeBandOf(0), AgeBand::kChild);
  EXPECT_EQ(AgeBandOf(17.9), AgeBand::kChild);
  EXPECT_EQ(AgeBandOf(18), AgeBand::kAdult);
  EXPECT_EQ(AgeBandOf(64.9), AgeBand::kAdult);
  EXPECT_EQ(AgeBandOf(65), AgeBand::kElderly);
  EXPECT_EQ(AgeBandOf(100), AgeBand::kElderly);
}

TEST(AgeBandTest, Names) {
  EXPECT_STREQ(AgeBandName(AgeBand::kChild), "<18");
  EXPECT_STREQ(AgeBandName(AgeBand::kElderly), "65+");
}

TEST(StratifiedTest, TablesPartitionEachStratum) {
  StratCorpus sc;
  sc.Add({{"A"}, {"X"}}, faers::Sex::kFemale, 70, 4);
  sc.Add({{"A"}, {"Y"}}, faers::Sex::kFemale, 70, 2);
  sc.Add({{"B"}, {"X"}}, faers::Sex::kMale, 30, 5);
  StratifiedAnalyzer analyzer(&sc.corpus.db, &sc.demographics);
  DrugAdrRule rule = sc.Rule({"A"}, {"X"});
  auto tables = analyzer.Tables(rule);
  // Two populated strata: F/65+ and M/18-64.
  ASSERT_EQ(tables.size(), 2u);
  size_t total = 0;
  for (const auto& stratum : tables) total += stratum.table.n();
  EXPECT_EQ(total, sc.corpus.db.size());
  // F/65+: a=4 (A with X), b=2 (A without X), c=0, d=0.
  const auto& elderly = tables[0].age_band == AgeBand::kElderly
                            ? tables[0]
                            : tables[1];
  EXPECT_EQ(elderly.table.a, 4u);
  EXPECT_EQ(elderly.table.b, 2u);
  EXPECT_EQ(elderly.table.c, 0u);
  EXPECT_EQ(elderly.table.d, 0u);
}

TEST(StratifiedTest, StratumLabels) {
  StratumTable stratum;
  stratum.sex = faers::Sex::kFemale;
  stratum.age_band = AgeBand::kElderly;
  EXPECT_EQ(stratum.Label(), "F/65+");
}

TEST(StratifiedTest, MantelHaenszelEqualsCrudeWhenHomogeneous) {
  // Single stratum -> MH reduces exactly to the crude OR.
  StratCorpus sc;
  sc.Add({{"A", "B"}, {"X"}}, faers::Sex::kFemale, 40, 6);
  sc.Add({{"A", "B"}, {"Y"}}, faers::Sex::kFemale, 40, 2);
  sc.Add({{"C"}, {"X"}}, faers::Sex::kFemale, 40, 3);
  sc.Add({{"C"}, {"Y"}}, faers::Sex::kFemale, 40, 9);
  StratifiedAnalyzer analyzer(&sc.corpus.db, &sc.demographics);
  DrugAdrRule rule = sc.Rule({"A", "B"}, {"X"});
  EXPECT_NEAR(analyzer.MantelHaenszelRor(rule), analyzer.CrudeRor(rule),
              1e-9);
  EXPECT_FALSE(analyzer.IsConfounded(rule));
}

TEST(StratifiedTest, SimpsonsParadoxDetected) {
  // Classic confounding: within each stratum drug and ADR are independent
  // (OR = 1), but the elderly both take the drug and report the ADR far
  // more, so the crude OR looks like a strong signal.
  StratCorpus sc;
  // Elderly: 40 exposed / 10 unexposed; ADR rate 50% in both arms.
  sc.Add({{"D"}, {"X"}}, faers::Sex::kFemale, 75, 20);
  sc.Add({{"D"}, {"Y"}}, faers::Sex::kFemale, 75, 20);
  sc.Add({{"C"}, {"X"}}, faers::Sex::kFemale, 75, 5);
  sc.Add({{"C"}, {"Y"}}, faers::Sex::kFemale, 75, 5);
  // Adults: 10 exposed / 40 unexposed; ADR rate 10% in both arms.
  sc.Add({{"D"}, {"X"}}, faers::Sex::kMale, 40, 1);
  sc.Add({{"D"}, {"Y"}}, faers::Sex::kMale, 40, 9);
  sc.Add({{"C"}, {"X"}}, faers::Sex::kMale, 40, 4);
  sc.Add({{"C"}, {"Y"}}, faers::Sex::kMale, 40, 36);
  StratifiedAnalyzer analyzer(&sc.corpus.db, &sc.demographics);
  DrugAdrRule rule = sc.Rule({"D"}, {"X"});
  double crude = analyzer.CrudeRor(rule);
  double pooled = analyzer.MantelHaenszelRor(rule);
  EXPECT_GT(crude, 1.5);            // the spurious crude signal
  EXPECT_NEAR(pooled, 1.0, 0.05);   // stratification removes it
  EXPECT_TRUE(analyzer.IsConfounded(rule));
}

TEST(StratifiedTest, MantelHaenszelHandComputed) {
  // Two strata with hand-computed MH OR.
  // S1: a=4 b=1 c=2 d=8 (n=15): ad/n = 32/15, bc/n = 2/15
  // S2: a=2 b=2 c=1 d=5 (n=10): ad/n = 10/10=1, bc/n = 2/10
  // OR_MH = (32/15 + 1) / (2/15 + 0.2) = (47/15) / (1/3) = 9.4
  StratCorpus sc;
  sc.Add({{"A"}, {"X"}}, faers::Sex::kFemale, 30, 4);   // S1 a
  sc.Add({{"A"}, {"Y"}}, faers::Sex::kFemale, 30, 1);   // S1 b
  sc.Add({{"B"}, {"X"}}, faers::Sex::kFemale, 30, 2);   // S1 c
  sc.Add({{"B"}, {"Y"}}, faers::Sex::kFemale, 30, 8);   // S1 d
  sc.Add({{"A"}, {"X"}}, faers::Sex::kMale, 70, 2);     // S2 a
  sc.Add({{"A"}, {"Y"}}, faers::Sex::kMale, 70, 2);     // S2 b
  sc.Add({{"B"}, {"X"}}, faers::Sex::kMale, 70, 1);     // S2 c
  sc.Add({{"B"}, {"Y"}}, faers::Sex::kMale, 70, 5);     // S2 d
  StratifiedAnalyzer analyzer(&sc.corpus.db, &sc.demographics);
  DrugAdrRule rule = sc.Rule({"A"}, {"X"});
  EXPECT_NEAR(analyzer.MantelHaenszelRor(rule), 9.4, 1e-9);
}

TEST(StratifiedTest, DegenerateDenominatorCapped) {
  StratCorpus sc;
  sc.Add({{"A"}, {"X"}}, faers::Sex::kFemale, 30, 3);
  sc.Add({{"B"}, {"Y"}}, faers::Sex::kFemale, 30, 3);
  StratifiedAnalyzer analyzer(&sc.corpus.db, &sc.demographics);
  DrugAdrRule rule = sc.Rule({"A"}, {"X"});
  // b = 0 and c = 0 in the only stratum -> denominator 0, numerator > 0.
  EXPECT_DOUBLE_EQ(analyzer.MantelHaenszelRor(rule),
                   kDisproportionalityCap);
  EXPECT_FALSE(analyzer.IsConfounded(rule));  // degenerate, not evidence
}

TEST(StratifiedTest, MissingDemographicsFallIntoUnknownStratum) {
  MiniCorpus corpus;
  corpus.Add({{"A"}, {"X"}}, 5);
  std::vector<faers::CaseDemographics> demographics;  // shorter than db
  StratifiedAnalyzer analyzer(&corpus.db, &demographics);
  DrugAdrRule rule;
  rule.drugs = corpus.Drugs({"A"});
  rule.adrs = corpus.Adrs({"X"});
  auto tables = analyzer.Tables(rule);
  ASSERT_EQ(tables.size(), 1u);
  EXPECT_EQ(tables[0].sex, faers::Sex::kUnknown);
  EXPECT_EQ(tables[0].age_band, AgeBand::kUnknown);
  EXPECT_EQ(tables[0].table.a, 5u);
}

}  // namespace
}  // namespace maras::core
