#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/run_context.h"

namespace maras {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&ran] { ran.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPoolTest, ZeroThreadsRunsInlineInSubmissionOrder) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 0u);
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&order, i] { order.push_back(i); });
    // Inline execution: the task has already run when Submit returns.
    ASSERT_EQ(order.size(), static_cast<size_t>(i + 1));
  }
  pool.Wait();
  std::vector<int> expected(10);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(ThreadPoolTest, SingleWorkerPreservesSubmissionOrder) {
  ThreadPool pool(1);
  std::vector<int> order;  // only the one worker touches it
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&order, i] { order.push_back(i); });
  }
  pool.Wait();
  std::vector<int> expected(50);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(ThreadPoolTest, TaskExceptionDoesNotDeadlockPool) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  pool.Submit([] { throw std::runtime_error("boom"); });
  for (int i = 0; i < 20; ++i) {
    pool.Submit([&ran] { ran.fetch_add(1); });
  }
  // Wait() returns (no deadlock), rethrows the stored exception once, and
  // the pool keeps serving tasks afterwards.
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  EXPECT_EQ(ran.load(), 20);
  pool.Submit([&ran] { ran.fetch_add(1); });
  pool.Wait();  // error was cleared by the previous Wait
  EXPECT_EQ(ran.load(), 21);
}

TEST(ThreadPoolTest, ExceptionOnSerialPoolSurfacesInWait) {
  ThreadPool pool(0);
  std::atomic<int> ran{0};
  pool.Submit([] { throw std::runtime_error("inline boom"); });
  pool.Submit([&ran] { ran.fetch_add(1); });  // later tasks still run
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPoolTest, DestructionDrainsPendingTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.Submit([&ran] {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        ran.fetch_add(1);
      });
    }
    // No Wait(): the destructor must finish the whole queue, not drop it.
  }
  EXPECT_EQ(ran.load(), 64);
}

// Shutdown-path stress for the tsan preset: hammer the construct /
// multi-producer submit / destroy cycle so TSan gets to watch the stopping_
// flag, the queue drain, and the worker joins race real contention. The
// drain guarantee (nothing submitted is dropped) must hold on every cycle.
TEST(ThreadPoolShutdownStressTest, RepeatedTeardownUnderProducerContention) {
  constexpr int kCycles = 25;
  constexpr int kProducers = 3;
  constexpr int kTasksPerProducer = 40;
  for (int cycle = 0; cycle < kCycles; ++cycle) {
    std::atomic<int> ran{0};
    {
      ThreadPool pool(2);
      std::vector<std::thread> producers;
      for (int p = 0; p < kProducers; ++p) {
        producers.emplace_back([&pool, &ran] {
          for (int i = 0; i < kTasksPerProducer; ++i) {
            pool.Submit([&ran] { ran.fetch_add(1); });
          }
        });
      }
      for (auto& t : producers) t.join();
      // No Wait(): destruction races the workers against a full queue.
    }
    ASSERT_EQ(ran.load(), kProducers * kTasksPerProducer) << "cycle " << cycle;
  }
}

// Wait() is idle-CondVar driven; several threads blocking in Wait() at once
// must all wake when the queue drains, every round, without lost wakeups.
TEST(ThreadPoolShutdownStressTest, ConcurrentWaitersAllObserveDrain) {
  ThreadPool pool(2);
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> ran{0};
    for (int i = 0; i < 32; ++i) {
      pool.Submit([&ran] { ran.fetch_add(1); });
    }
    std::vector<std::thread> waiters;
    std::atomic<int> woke{0};
    for (int w = 0; w < 3; ++w) {
      waiters.emplace_back([&pool, &woke] {
        pool.Wait();
        woke.fetch_add(1);
      });
    }
    for (auto& t : waiters) t.join();
    EXPECT_EQ(woke.load(), 3);
    EXPECT_EQ(ran.load(), 32);
  }
}

TEST(EffectiveThreadsTest, SerialAndClampedCases) {
  EXPECT_EQ(EffectiveThreads(0, 100), 1u);
  EXPECT_EQ(EffectiveThreads(1, 100), 1u);
  EXPECT_EQ(EffectiveThreads(8, 0), 1u);
  EXPECT_EQ(EffectiveThreads(8, 1), 1u);
  EXPECT_EQ(EffectiveThreads(8, 3), 3u);
  EXPECT_EQ(EffectiveThreads(4, 100), 4u);
}

class ParallelForThreadSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(ParallelForThreadSweep, TouchesEveryIndexExactlyOnce) {
  const size_t n = 500;
  std::vector<int> touched(n, 0);
  ParallelFor(GetParam(), n, [&touched](size_t i) { touched[i] += 1; });
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(touched[i], 1) << "index " << i;
  }
}

TEST_P(ParallelForThreadSweep, OrderedResultCollection) {
  const size_t n = 200;
  std::vector<size_t> squares = ParallelMap<size_t>(
      GetParam(), n, [](size_t i) { return i * i; });
  ASSERT_EQ(squares.size(), n);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(squares[i], i * i);
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, ParallelForThreadSweep,
                         ::testing::Values(0, 1, 2, 4, 8));

TEST(ParallelForTest, EmptyRangeIsNoOp) {
  bool called = false;
  ParallelFor(4, 0, [&called](size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelForTest, ExceptionPropagatesWithoutDeadlock) {
  EXPECT_THROW(
      ParallelFor(4, 100,
                  [](size_t i) {
                    if (i == 17) throw std::runtime_error("index 17");
                  }),
      std::runtime_error);
  // Serial path propagates too.
  EXPECT_THROW(
      ParallelFor(1, 10,
                  [](size_t i) {
                    if (i == 3) throw std::runtime_error("index 3");
                  }),
      std::runtime_error);
}

class TryParallelForThreadSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(TryParallelForThreadSweep, OkRunsEveryIndexOnce) {
  const size_t n = 500;
  RunContext ctx;
  std::vector<int> hits(n, 0);
  Status status = TryParallelFor(GetParam(), n, ctx, [&hits](size_t i) {
    ++hits[i];
    return Status::OK();
  });
  ASSERT_TRUE(status.ok()) << status.ToString();
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i], 1) << i;
}

TEST_P(TryParallelForThreadSweep, LoneFailureWinsAtAnyThreadCount) {
  RunContext ctx;
  Status status = TryParallelFor(GetParam(), 300, ctx, [](size_t i) {
    if (i == 123) return Status::InvalidArgument("shard 123 failed");
    return Status::OK();
  });
  ASSERT_TRUE(status.IsInvalidArgument()) << status.ToString();
  EXPECT_NE(status.ToString().find("shard 123"), std::string::npos);
}

TEST_P(TryParallelForThreadSweep, LowestObservedIndexPreferred) {
  // Every index fails; the reported error must be the lowest-index failure
  // actually observed. At any thread count index 0 is observed (it is
  // scheduled first and workers record every failure they see), so the
  // result is deterministic.
  RunContext ctx;
  Status status = TryParallelFor(GetParam(), 64, ctx, [](size_t i) {
    return Status::Internal("index " + std::to_string(i));
  });
  ASSERT_TRUE(status.IsInternal()) << status.ToString();
  EXPECT_NE(status.ToString().find("index 0"), std::string::npos)
      << status.ToString();
}

INSTANTIATE_TEST_SUITE_P(Threads, TryParallelForThreadSweep,
                         ::testing::Values(1, 2, 4, 8));

TEST(TryParallelForTest, FailureStopsSchedulingRemainingIndices) {
  std::atomic<size_t> executed{0};
  RunContext ctx;
  Status status = TryParallelFor(4, 100'000, ctx, [&executed](size_t i) {
    executed.fetch_add(1);
    if (i == 0) return Status::Internal("early failure");
    return Status::OK();
  });
  ASSERT_TRUE(status.IsInternal()) << status.ToString();
  // The stop flag halts index hand-out: only indices already claimed when
  // the failure landed may still run, far fewer than the full range.
  EXPECT_LT(executed.load(), 100'000u);
}

TEST(TryParallelForTest, CancellationStopsSchedulingMidRun) {
  CancellationToken token;
  RunContext ctx;
  ctx.cancel = &token;
  std::atomic<size_t> executed{0};
  Status status = TryParallelFor(4, 100'000, ctx, [&](size_t i) {
    if (i == 10) token.Cancel();  // a worker observes an external cancel
    executed.fetch_add(1);
    return Status::OK();
  });
  ASSERT_TRUE(status.IsCancelled()) << status.ToString();
  EXPECT_LT(executed.load(), 100'000u);
}

TEST(TryParallelForTest, SerialPathStopsAtFirstFailureInOrder) {
  RunContext ctx;
  std::vector<size_t> ran;
  Status status = TryParallelFor(1, 10, ctx, [&ran](size_t i) {
    ran.push_back(i);
    if (i == 3) return Status::NotFound("index 3");
    return Status::OK();
  });
  ASSERT_TRUE(status.IsNotFound()) << status.ToString();
  EXPECT_EQ(ran, (std::vector<size_t>{0, 1, 2, 3}));
}

TEST(TryParallelForTest, DeadlineTripSurfacesAsDeadlineExceeded) {
  RunContext ctx;
  ctx.deadline = Deadline::AfterMillis(0);  // already expired
  std::atomic<size_t> executed{0};
  Status status = TryParallelFor(4, 1000, ctx, [&executed](size_t) {
    executed.fetch_add(1);
    return Status::OK();
  });
  ASSERT_TRUE(status.IsDeadlineExceeded()) << status.ToString();
  EXPECT_EQ(executed.load(), 0u) << "expired deadline must stop scheduling";
}

TEST(TryParallelForTest, EmptyRangeIsOkWithoutCallingFn) {
  RunContext ctx;
  bool called = false;
  Status status = TryParallelFor(8, 0, ctx, [&called](size_t) {
    called = true;
    return Status::OK();
  });
  EXPECT_TRUE(status.ok());
  EXPECT_FALSE(called);
}

}  // namespace
}  // namespace maras
