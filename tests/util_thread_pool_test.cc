#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace maras {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&ran] { ran.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPoolTest, ZeroThreadsRunsInlineInSubmissionOrder) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 0u);
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&order, i] { order.push_back(i); });
    // Inline execution: the task has already run when Submit returns.
    ASSERT_EQ(order.size(), static_cast<size_t>(i + 1));
  }
  pool.Wait();
  std::vector<int> expected(10);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(ThreadPoolTest, SingleWorkerPreservesSubmissionOrder) {
  ThreadPool pool(1);
  std::vector<int> order;  // only the one worker touches it
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&order, i] { order.push_back(i); });
  }
  pool.Wait();
  std::vector<int> expected(50);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(ThreadPoolTest, TaskExceptionDoesNotDeadlockPool) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  pool.Submit([] { throw std::runtime_error("boom"); });
  for (int i = 0; i < 20; ++i) {
    pool.Submit([&ran] { ran.fetch_add(1); });
  }
  // Wait() returns (no deadlock), rethrows the stored exception once, and
  // the pool keeps serving tasks afterwards.
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  EXPECT_EQ(ran.load(), 20);
  pool.Submit([&ran] { ran.fetch_add(1); });
  pool.Wait();  // error was cleared by the previous Wait
  EXPECT_EQ(ran.load(), 21);
}

TEST(ThreadPoolTest, ExceptionOnSerialPoolSurfacesInWait) {
  ThreadPool pool(0);
  std::atomic<int> ran{0};
  pool.Submit([] { throw std::runtime_error("inline boom"); });
  pool.Submit([&ran] { ran.fetch_add(1); });  // later tasks still run
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPoolTest, DestructionDrainsPendingTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.Submit([&ran] {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        ran.fetch_add(1);
      });
    }
    // No Wait(): the destructor must finish the whole queue, not drop it.
  }
  EXPECT_EQ(ran.load(), 64);
}

TEST(EffectiveThreadsTest, SerialAndClampedCases) {
  EXPECT_EQ(EffectiveThreads(0, 100), 1u);
  EXPECT_EQ(EffectiveThreads(1, 100), 1u);
  EXPECT_EQ(EffectiveThreads(8, 0), 1u);
  EXPECT_EQ(EffectiveThreads(8, 1), 1u);
  EXPECT_EQ(EffectiveThreads(8, 3), 3u);
  EXPECT_EQ(EffectiveThreads(4, 100), 4u);
}

class ParallelForThreadSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(ParallelForThreadSweep, TouchesEveryIndexExactlyOnce) {
  const size_t n = 500;
  std::vector<int> touched(n, 0);
  ParallelFor(GetParam(), n, [&touched](size_t i) { touched[i] += 1; });
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(touched[i], 1) << "index " << i;
  }
}

TEST_P(ParallelForThreadSweep, OrderedResultCollection) {
  const size_t n = 200;
  std::vector<size_t> squares = ParallelMap<size_t>(
      GetParam(), n, [](size_t i) { return i * i; });
  ASSERT_EQ(squares.size(), n);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(squares[i], i * i);
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, ParallelForThreadSweep,
                         ::testing::Values(0, 1, 2, 4, 8));

TEST(ParallelForTest, EmptyRangeIsNoOp) {
  bool called = false;
  ParallelFor(4, 0, [&called](size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelForTest, ExceptionPropagatesWithoutDeadlock) {
  EXPECT_THROW(
      ParallelFor(4, 100,
                  [](size_t i) {
                    if (i == 17) throw std::runtime_error("index 17");
                  }),
      std::runtime_error);
  // Serial path propagates too.
  EXPECT_THROW(
      ParallelFor(1, 10,
                  [](size_t i) {
                    if (i == 3) throw std::runtime_error("index 3");
                  }),
      std::runtime_error);
}

}  // namespace
}  // namespace maras
