#include "core/drug_adr_rule.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace maras::core {
namespace {

using maras::test::MiniCorpus;

TEST(SplitByDomainTest, PartitionsItems) {
  MiniCorpus corpus;
  auto d1 = corpus.Drug("ASPIRIN");
  auto d2 = corpus.Drug("WARFARIN");
  auto a1 = corpus.Adr("HAEMORRHAGE");
  auto rule = SplitByDomain(mining::MakeItemset({d1, d2, a1}), corpus.items);
  ASSERT_TRUE(rule.ok());
  EXPECT_EQ(rule->drugs, mining::MakeItemset({d1, d2}));
  EXPECT_EQ(rule->adrs, mining::MakeItemset({a1}));
}

TEST(SplitByDomainTest, RejectsDrugOnlyItemset) {
  MiniCorpus corpus;
  auto d = corpus.Drug("ASPIRIN");
  EXPECT_TRUE(SplitByDomain({d}, corpus.items).status().IsInvalidArgument());
}

TEST(SplitByDomainTest, RejectsAdrOnlyItemset) {
  MiniCorpus corpus;
  auto a = corpus.Adr("NAUSEA");
  EXPECT_TRUE(SplitByDomain({a}, corpus.items).status().IsInvalidArgument());
}

TEST(BuildRuleTest, FillsMeasuresFromDatabase) {
  MiniCorpus corpus;
  corpus.Add({{"ASPIRIN", "WARFARIN"}, {"HAEMORRHAGE"}}, 8);
  corpus.Add({{"ASPIRIN"}, {"NAUSEA"}}, 12);
  corpus.Add({{"WARFARIN"}, {"HAEMORRHAGE"}}, 4);
  mining::Itemset whole = mining::Union(
      corpus.Drugs({"ASPIRIN", "WARFARIN"}), corpus.Adrs({"HAEMORRHAGE"}));
  auto rule = BuildRule(whole, corpus.items, corpus.db);
  ASSERT_TRUE(rule.ok());
  EXPECT_EQ(rule->support, 8u);
  EXPECT_EQ(rule->antecedent_support, 8u);   // pair occurs only together
  EXPECT_EQ(rule->consequent_support, 12u);  // 8 + 4 haemorrhage reports
  EXPECT_DOUBLE_EQ(rule->confidence, 1.0);
  EXPECT_GT(rule->lift, 1.0);
}

TEST(BuildRuleTest, CompleteItemsetRoundTrips) {
  MiniCorpus corpus;
  corpus.Add({{"A", "B"}, {"X"}}, 2);
  mining::Itemset whole =
      mining::Union(corpus.Drugs({"A", "B"}), corpus.Adrs({"X"}));
  auto rule = BuildRule(whole, corpus.items, corpus.db);
  ASSERT_TRUE(rule.ok());
  EXPECT_EQ(rule->CompleteItemset(), whole);
}

TEST(RuleToStringTest, RendersNames) {
  MiniCorpus corpus;
  corpus.Add({{"ASPIRIN", "WARFARIN"}, {"HAEMORRHAGE"}});
  mining::Itemset whole = mining::Union(
      corpus.Drugs({"ASPIRIN", "WARFARIN"}), corpus.Adrs({"HAEMORRHAGE"}));
  auto rule = BuildRule(whole, corpus.items, corpus.db);
  ASSERT_TRUE(rule.ok());
  std::string text = RuleToString(*rule, corpus.items);
  EXPECT_NE(text.find("[ASPIRIN]"), std::string::npos);
  EXPECT_NE(text.find("[WARFARIN]"), std::string::npos);
  EXPECT_NE(text.find("=>"), std::string::npos);
  EXPECT_NE(text.find("[HAEMORRHAGE]"), std::string::npos);
}

TEST(ItemDictionaryTest, DomainConflictRejected) {
  mining::ItemDictionary items;
  ASSERT_TRUE(items.Intern("ASPIRIN", mining::ItemDomain::kDrug).ok());
  EXPECT_TRUE(items.Intern("ASPIRIN", mining::ItemDomain::kAdr)
                  .status()
                  .IsInvalidArgument());
}

TEST(ItemDictionaryTest, InternIsIdempotent) {
  mining::ItemDictionary items;
  auto id1 = items.Intern("X", mining::ItemDomain::kDrug);
  auto id2 = items.Intern("X", mining::ItemDomain::kDrug);
  ASSERT_TRUE(id1.ok());
  ASSERT_TRUE(id2.ok());
  EXPECT_EQ(*id1, *id2);
  EXPECT_EQ(items.size(), 1u);
}

TEST(ItemDictionaryTest, LookupAndCounts) {
  mining::ItemDictionary items;
  ASSERT_TRUE(items.Intern("D1", mining::ItemDomain::kDrug).ok());
  ASSERT_TRUE(items.Intern("D2", mining::ItemDomain::kDrug).ok());
  ASSERT_TRUE(items.Intern("A1", mining::ItemDomain::kAdr).ok());
  EXPECT_EQ(items.CountInDomain(mining::ItemDomain::kDrug), 2u);
  EXPECT_EQ(items.CountInDomain(mining::ItemDomain::kAdr), 1u);
  EXPECT_TRUE(items.Lookup("MISSING").status().IsNotFound());
  auto id = items.Lookup("D2");
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(items.Name(*id), "D2");
}

}  // namespace
}  // namespace maras::core
