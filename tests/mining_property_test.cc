// Property tests for the closed-itemset machinery (Definition 3.4.1 and
// Lemma 3.4.2): on random databases, every mined closed itemset must have no
// superset of equal support, the closure operator must behave like a closure
// (extensive, monotone, idempotent), and every rule derived from the closed
// family must have a closed complete itemset — the invariant that lets MARAS
// build its rule space from closed sets without losing associations.

#include <gtest/gtest.h>

#include "mining/apriori.h"
#include "mining/closed_itemsets.h"
#include "mining/fpgrowth.h"
#include "mining/rules.h"
#include "util/random.h"

namespace maras::mining {
namespace {

TransactionDatabase RandomDb(maras::Rng* rng, int transactions, int items,
                             int max_len) {
  TransactionDatabase db;
  for (int t = 0; t < transactions; ++t) {
    Itemset txn;
    for (size_t i = 1 + rng->Uniform(static_cast<uint64_t>(max_len)); i > 0;
         --i) {
      txn.push_back(static_cast<ItemId>(rng->Uniform(items)));
    }
    db.Add(std::move(txn));
  }
  return db;
}

class ClosedPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ClosedPropertyTest, NoSupersetOfAClosedItemsetHasEqualSupport) {
  maras::Rng rng(GetParam());
  TransactionDatabase db =
      RandomDb(&rng, static_cast<int>(80 + GetParam() % 40), 10, 6);
  MiningOptions options{.min_support = 2};
  auto all = FpGrowth(options).Mine(db);
  ASSERT_TRUE(all.ok());
  FrequentItemsetResult closed = FilterClosed(*all);
  ASSERT_GT(closed.size(), 0u);
  // Definition 3.4.1, checked pairwise against the *frequent* family (any
  // equal-support superset of a frequent itemset is frequent, so the family
  // is a complete witness set).
  for (const FrequentItemset& c : closed.itemsets()) {
    for (const FrequentItemset& other : all->itemsets()) {
      if (other.items.size() <= c.items.size()) continue;
      if (!IsSubset(c.items, other.items)) continue;
      EXPECT_LT(other.support, c.support)
          << ToString(c.items) << " ⊂ " << ToString(other.items);
    }
    // And against the database directly, which sees supersets beyond the
    // mined family too.
    EXPECT_TRUE(IsClosedInDatabase(db, c.items)) << ToString(c.items);
  }
}

TEST_P(ClosedPropertyTest, ClosureOperatorLaws) {
  maras::Rng rng(GetParam() + 7);
  TransactionDatabase db = RandomDb(&rng, 70, 9, 5);
  auto all = FpGrowth(MiningOptions{.min_support = 1}).Mine(db);
  ASSERT_TRUE(all.ok());
  for (const FrequentItemset& fi : all->itemsets()) {
    Itemset closure = ClosureOf(db, fi.items);
    ASSERT_FALSE(closure.empty()) << ToString(fi.items);
    // Extensive: S ⊆ closure(S); support-preserving; idempotent.
    EXPECT_TRUE(IsSubset(fi.items, closure));
    EXPECT_EQ(db.Support(closure), fi.support);
    EXPECT_EQ(ClosureOf(db, closure), closure);
    // The closure is the smallest closed superset, so it is closed.
    EXPECT_TRUE(IsClosedInDatabase(db, closure));
  }
}

TEST_P(ClosedPropertyTest, RulesFromClosedFamilyHaveClosedCompleteItemsets) {
  maras::Rng rng(GetParam() + 13);
  TransactionDatabase db = RandomDb(&rng, 90, 9, 6);
  MiningOptions options{.min_support = 2};
  auto closed = MineClosed(db, options);
  ASSERT_TRUE(closed.ok());
  std::vector<AssociationRule> rules =
      GenerateAllPartitionRules(*closed, /*min_confidence=*/0.0,
                                db.size(), /*max_rules=*/100000);
  ASSERT_GT(rules.size(), 0u);
  for (const AssociationRule& rule : rules) {
    Itemset full = Union(rule.antecedent, rule.consequent);
    // Lemma 3.4.2: the rule space built on closed itemsets only contains
    // rules whose complete itemset is closed, with exact support.
    EXPECT_TRUE(IsClosedInDatabase(db, full)) << ToString(full);
    EXPECT_EQ(db.Support(full), rule.support) << ToString(full);
    EXPECT_TRUE(closed->ContainsItemset(full)) << ToString(full);
  }
}

TEST_P(ClosedPropertyTest, EveryFrequentItemsetHasAClosedRepresentative) {
  // The closed family loses no support information: each frequent itemset's
  // closure is in the closed family with the same support.
  maras::Rng rng(GetParam() + 29);
  TransactionDatabase db = RandomDb(&rng, 80, 8, 5);
  MiningOptions options{.min_support = 2};
  auto all = Apriori(options).Mine(db);
  ASSERT_TRUE(all.ok());
  FrequentItemsetResult closed = FilterClosed(*all);
  for (const FrequentItemset& fi : all->itemsets()) {
    Itemset closure = ClosureOf(db, fi.items);
    EXPECT_TRUE(closed.ContainsItemset(closure)) << ToString(fi.items);
    EXPECT_EQ(closed.SupportOf(closure), fi.support) << ToString(fi.items);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClosedPropertyTest,
                         ::testing::Values(101, 202, 303, 404, 505, 606));

}  // namespace
}  // namespace maras::mining
