#include "mining/itemset.h"

#include <gtest/gtest.h>

#include <set>

namespace maras::mining {
namespace {

TEST(ItemsetTest, MakeItemsetSortsAndDedups) {
  EXPECT_EQ(MakeItemset({3, 1, 2, 1, 3}), (Itemset{1, 2, 3}));
  EXPECT_EQ(MakeItemset({}), Itemset{});
}

TEST(ItemsetTest, SubsetChecks) {
  EXPECT_TRUE(IsSubset({1, 3}, {1, 2, 3}));
  EXPECT_TRUE(IsSubset({}, {1}));
  EXPECT_TRUE(IsSubset({1, 2, 3}, {1, 2, 3}));
  EXPECT_FALSE(IsSubset({1, 4}, {1, 2, 3}));
  EXPECT_FALSE(IsSubset({1}, {}));
}

TEST(ItemsetTest, SetAlgebra) {
  EXPECT_EQ(Union({1, 3}, {2, 3, 4}), (Itemset{1, 2, 3, 4}));
  EXPECT_EQ(Intersect({1, 2, 3}, {2, 3, 4}), (Itemset{2, 3}));
  EXPECT_EQ(Difference({1, 2, 3}, {2}), (Itemset{1, 3}));
  EXPECT_EQ(Union({}, {}), Itemset{});
  EXPECT_EQ(Intersect({1}, {2}), Itemset{});
}

TEST(ItemsetTest, ContainsBinarySearch) {
  Itemset s{2, 5, 9};
  EXPECT_TRUE(Contains(s, 5));
  EXPECT_FALSE(Contains(s, 4));
  EXPECT_FALSE(Contains({}, 1));
}

TEST(ItemsetTest, ProperSubsetEnumerationCountAndUniqueness) {
  Itemset s{1, 2, 3, 4};
  std::set<Itemset> seen;
  ForEachProperSubset(s, [&](const Itemset& subset) {
    EXPECT_FALSE(subset.empty());
    EXPECT_LT(subset.size(), s.size());
    EXPECT_TRUE(IsSubset(subset, s));
    EXPECT_TRUE(seen.insert(subset).second) << "duplicate subset";
  });
  EXPECT_EQ(seen.size(), 14u);  // 2^4 − 2
}

TEST(ItemsetTest, ProperSubsetOfSingletonIsEmpty) {
  int count = 0;
  ForEachProperSubset({7}, [&](const Itemset&) { ++count; });
  EXPECT_EQ(count, 0);
}

TEST(ItemsetTest, SubsetsAreSorted) {
  ForEachProperSubset({1, 5, 9}, [&](const Itemset& subset) {
    EXPECT_TRUE(std::is_sorted(subset.begin(), subset.end()));
  });
}

TEST(ItemsetTest, HashDistinguishesSets) {
  ItemsetHash hash;
  EXPECT_NE(hash({1, 2}), hash({2, 1, 1}));  // different after canonical form?
  // Canonical equal sets hash equal.
  EXPECT_EQ(hash(MakeItemset({2, 1})), hash(MakeItemset({1, 2})));
  EXPECT_NE(hash({1}), hash({2}));
  EXPECT_NE(hash({}), hash({0}));
}

TEST(ItemsetTest, ToStringFormat) {
  EXPECT_EQ(ToString({1, 2}), "{1, 2}");
  EXPECT_EQ(ToString({}), "{}");
}

}  // namespace
}  // namespace maras::mining
