#include "mining/transaction_db.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace maras::mining {
namespace {

TransactionDatabase SmallDb() {
  TransactionDatabase db;
  db.Add({1, 2, 3});
  db.Add({1, 2});
  db.Add({2, 3});
  db.Add({1, 2, 3, 4});
  return db;
}

TEST(TransactionDbTest, SizeAndAccess) {
  TransactionDatabase db = SmallDb();
  EXPECT_EQ(db.size(), 4u);
  EXPECT_EQ(db.transaction(0), (Itemset{1, 2, 3}));
}

TEST(TransactionDbTest, AddNormalizesInput) {
  TransactionDatabase db;
  db.Add({3, 1, 3, 2});
  EXPECT_EQ(db.transaction(0), (Itemset{1, 2, 3}));
}

TEST(TransactionDbTest, ItemSupport) {
  TransactionDatabase db = SmallDb();
  EXPECT_EQ(db.ItemSupport(1), 3u);
  EXPECT_EQ(db.ItemSupport(2), 4u);
  EXPECT_EQ(db.ItemSupport(4), 1u);
  EXPECT_EQ(db.ItemSupport(99), 0u);
}

TEST(TransactionDbTest, ItemsetSupport) {
  TransactionDatabase db = SmallDb();
  EXPECT_EQ(db.Support({1, 2}), 3u);
  EXPECT_EQ(db.Support({2, 3}), 3u);
  EXPECT_EQ(db.Support({1, 2, 3}), 2u);
  EXPECT_EQ(db.Support({1, 4}), 1u);
  EXPECT_EQ(db.Support({4, 5}), 0u);
  EXPECT_EQ(db.Support({}), 4u);  // empty set is in every transaction
}

TEST(TransactionDbTest, ContainingTransactionsSortedAndCorrect) {
  TransactionDatabase db = SmallDb();
  EXPECT_EQ(db.ContainingTransactions({1, 2}),
            (std::vector<TransactionId>{0, 1, 3}));
  EXPECT_EQ(db.ContainingTransactions({4}),
            (std::vector<TransactionId>{3}));
  EXPECT_TRUE(db.ContainingTransactions({9}).empty());
}

TEST(TransactionDbTest, TidListsSorted) {
  TransactionDatabase db = SmallDb();
  const auto& tids = db.TidList(2);
  EXPECT_TRUE(std::is_sorted(tids.begin(), tids.end()));
  EXPECT_EQ(tids.size(), 4u);
  EXPECT_TRUE(db.TidList(1234).empty());
}

TEST(TransactionDbTest, EmptyDatabase) {
  TransactionDatabase db;
  EXPECT_TRUE(db.empty());
  EXPECT_EQ(db.Support({1}), 0u);
  EXPECT_EQ(db.Support({}), 0u);
}

// Property: Support via tid-list intersection equals a brute-force scan.
TEST(TransactionDbTest, SupportMatchesBruteForceOnRandomData) {
  maras::Rng rng(41);
  TransactionDatabase db;
  for (int t = 0; t < 300; ++t) {
    Itemset txn;
    for (size_t i = 1 + rng.Uniform(6); i > 0; --i) {
      txn.push_back(static_cast<ItemId>(rng.Uniform(15)));
    }
    db.Add(std::move(txn));
  }
  for (int trial = 0; trial < 100; ++trial) {
    Itemset query;
    for (size_t i = 1 + rng.Uniform(3); i > 0; --i) {
      query.push_back(static_cast<ItemId>(rng.Uniform(15)));
    }
    query = MakeItemset(std::move(query));
    size_t brute = 0;
    for (const Itemset& t : db.transactions()) {
      if (IsSubset(query, t)) ++brute;
    }
    EXPECT_EQ(db.Support(query), brute) << ToString(query);
  }
}

}  // namespace
}  // namespace maras::mining
