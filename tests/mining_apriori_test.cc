#include "mining/apriori.h"

#include <gtest/gtest.h>

#include <map>

#include "util/random.h"

namespace maras::mining {
namespace {

// Brute-force frequent itemset miner over a small item universe: exact
// ground truth for both Apriori and FP-Growth.
std::map<Itemset, size_t> BruteForceFrequent(const TransactionDatabase& db,
                                             size_t min_support,
                                             ItemId max_item) {
  std::map<Itemset, size_t> result;
  const uint32_t n_items = max_item + 1;
  for (uint32_t mask = 1; mask < (1u << n_items); ++mask) {
    Itemset candidate;
    for (uint32_t i = 0; i < n_items; ++i) {
      if (mask & (1u << i)) candidate.push_back(i);
    }
    size_t support = 0;
    for (const Itemset& t : db.transactions()) {
      if (IsSubset(candidate, t)) ++support;
    }
    if (support >= min_support) result[candidate] = support;
  }
  return result;
}

TransactionDatabase TextbookDb() {
  // Classic example database.
  TransactionDatabase db;
  db.Add({0, 1, 4});
  db.Add({1, 3});
  db.Add({1, 2});
  db.Add({0, 1, 3});
  db.Add({0, 2});
  db.Add({1, 2});
  db.Add({0, 2});
  db.Add({0, 1, 2, 4});
  db.Add({0, 1, 2});
  return db;
}

TEST(AprioriTest, TextbookExample) {
  Apriori miner(MiningOptions{.min_support = 2});
  auto result = miner.Mine(TextbookDb());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->SupportOf({0}), 6u);
  EXPECT_EQ(result->SupportOf({1}), 7u);
  EXPECT_EQ(result->SupportOf({0, 1}), 4u);
  EXPECT_EQ(result->SupportOf({0, 1, 2}), 2u);
  EXPECT_EQ(result->SupportOf({0, 4}), 2u);
  EXPECT_EQ(result->SupportOf({3}), 2u);
  EXPECT_EQ(result->SupportOf({1, 3}), 2u);  // rows {1,3} and {0,1,3}
  // Items 2 and 3 never co-occur.
  EXPECT_FALSE(result->ContainsItemset({2, 3}));
  EXPECT_EQ(result->SupportOf({2, 3}), 0u);
}

TEST(AprioriTest, MatchesBruteForce) {
  maras::Rng rng(101);
  for (int trial = 0; trial < 10; ++trial) {
    TransactionDatabase db;
    for (int t = 0; t < 60; ++t) {
      Itemset txn;
      for (size_t i = 1 + rng.Uniform(5); i > 0; --i) {
        txn.push_back(static_cast<ItemId>(rng.Uniform(8)));
      }
      db.Add(std::move(txn));
    }
    size_t min_support = 2 + rng.Uniform(4);
    Apriori miner(MiningOptions{.min_support = min_support});
    auto result = miner.Mine(db);
    ASSERT_TRUE(result.ok());
    auto expected = BruteForceFrequent(db, min_support, 7);
    EXPECT_EQ(result->size(), expected.size()) << "trial " << trial;
    for (const auto& [items, support] : expected) {
      EXPECT_EQ(result->SupportOf(items), support) << ToString(items);
    }
  }
}

TEST(AprioriTest, MinSupportOneKeepsEverything) {
  TransactionDatabase db;
  db.Add({0, 1});
  db.Add({2});
  Apriori miner(MiningOptions{.min_support = 1});
  auto result = miner.Mine(db);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 4u);  // {0},{1},{2},{0,1}
}

TEST(AprioriTest, MinSupportZeroRejected) {
  Apriori miner(MiningOptions{.min_support = 0});
  TransactionDatabase db;
  db.Add({1});
  EXPECT_TRUE(miner.Mine(db).status().IsInvalidArgument());
}

TEST(AprioriTest, MaxItemsetSizeCapsDepth) {
  TransactionDatabase db;
  for (int i = 0; i < 5; ++i) db.Add({0, 1, 2, 3});
  Apriori miner(MiningOptions{.min_support = 2, .max_itemset_size = 2});
  auto result = miner.Mine(db);
  ASSERT_TRUE(result.ok());
  for (const auto& fi : result->itemsets()) {
    EXPECT_LE(fi.items.size(), 2u);
  }
  EXPECT_EQ(result->size(), 4u + 6u);  // all singletons + all pairs
}

TEST(AprioriTest, EmptyDatabaseYieldsNothing) {
  Apriori miner(MiningOptions{.min_support = 1});
  TransactionDatabase db;
  auto result = miner.Mine(db);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 0u);
}

TEST(AprioriTest, SupportIsAntiMonotone) {
  TransactionDatabase db = TextbookDb();
  Apriori miner(MiningOptions{.min_support = 2});
  auto result = miner.Mine(db);
  ASSERT_TRUE(result.ok());
  for (const auto& fi : result->itemsets()) {
    if (fi.items.size() < 2) continue;
    ForEachProperSubset(fi.items, [&](const Itemset& subset) {
      size_t sub_support = result->SupportOf(subset);
      EXPECT_GE(sub_support, fi.support)
          << ToString(subset) << " ⊂ " << ToString(fi.items);
    });
  }
}

}  // namespace
}  // namespace maras::mining
