#include "study/user_study.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace maras::study {
namespace {

viz::GlyphSpec MakeSpec(double target, std::vector<std::vector<double>> levels) {
  viz::GlyphSpec spec;
  spec.target_value = target;
  spec.levels = std::move(levels);
  return spec;
}

StudyQuestion EasyQuestion(size_t drugs) {
  // One clearly exclusive candidate against clearly dominated decoys.
  StudyQuestion question;
  question.drugs_per_rule = drugs;
  std::vector<std::vector<double>> low_context(drugs - 1);
  std::vector<std::vector<double>> high_context(drugs - 1);
  for (size_t level = 0; level < drugs - 1; ++level) {
    size_t count = level == 0 ? drugs : drugs;  // approximate sizes
    low_context[level].assign(count, 0.05);
    high_context[level].assign(count, 0.85);
  }
  question.candidates.push_back(MakeSpec(0.95, low_context));   // interesting
  question.candidates.push_back(MakeSpec(0.9, high_context));   // dominated
  question.candidates.push_back(MakeSpec(0.88, high_context));  // dominated
  question.correct_indices = {0};
  return question;
}

TEST(IntegrationElementsTest, BarChartCountsEveryBar) {
  viz::GlyphSpec spec = MakeSpec(0.9, {{0.1, 0.2, 0.3}, {0.4, 0.5}});
  EXPECT_EQ(UserStudySimulator::IntegrationElements(
                spec, VisualEncoding::kBarChart),
            6u);  // target + 5 context
  EXPECT_EQ(UserStudySimulator::IntegrationElements(
                spec, VisualEncoding::kContextualGlyph),
            3u);  // target + 2 levels
}

TEST(UserStudyTest, DeterministicForSeed) {
  StudyConfig config;
  config.participants = 20;
  config.seed = 9;
  UserStudySimulator sim(config);
  std::vector<StudyQuestion> questions = {EasyQuestion(2), EasyQuestion(3)};
  StudyOutcome o1 = sim.Run(questions);
  StudyOutcome o2 = sim.Run(questions);
  ASSERT_EQ(o1.questions.size(), o2.questions.size());
  for (size_t i = 0; i < o1.questions.size(); ++i) {
    EXPECT_DOUBLE_EQ(o1.questions[i].glyph_accuracy,
                     o2.questions[i].glyph_accuracy);
    EXPECT_DOUBLE_EQ(o1.questions[i].barchart_accuracy,
                     o2.questions[i].barchart_accuracy);
  }
}

TEST(UserStudyTest, EasyQuestionsAnsweredWellByBothEncodings) {
  StudyConfig config;
  config.participants = 100;
  UserStudySimulator sim(config);
  StudyOutcome outcome = sim.Run({EasyQuestion(2)});
  ASSERT_EQ(outcome.questions.size(), 1u);
  EXPECT_GT(outcome.questions[0].glyph_accuracy, 0.8);
  EXPECT_GT(outcome.questions[0].barchart_accuracy, 0.5);
}

TEST(UserStudyTest, GlyphAdvantageGrowsWithDrugCount) {
  // The paper's headline: contextual glyphs beat bar charts, most clearly
  // for four-drug clusters (15 bars to integrate per candidate).
  StudyConfig config;
  config.participants = 300;
  UserStudySimulator sim(config);
  std::vector<StudyQuestion> questions = {EasyQuestion(2), EasyQuestion(4)};
  StudyOutcome outcome = sim.Run(questions);
  double gap2 = outcome.AccuracyForSize(2, VisualEncoding::kContextualGlyph) -
                outcome.AccuracyForSize(2, VisualEncoding::kBarChart);
  double gap4 = outcome.AccuracyForSize(4, VisualEncoding::kContextualGlyph) -
                outcome.AccuracyForSize(4, VisualEncoding::kBarChart);
  EXPECT_GE(gap4, gap2 - 0.02);  // advantage does not shrink
  EXPECT_GT(outcome.AccuracyForSize(4, VisualEncoding::kContextualGlyph),
            outcome.AccuracyForSize(4, VisualEncoding::kBarChart));
}

TEST(DecisionTimeTest, GlyphFasterAndGapGrowsWithDrugs) {
  // The paper's speed claim: glyph reads are faster, most clearly for
  // 4-drug clusters (15 bars per candidate vs 5 glyph rings).
  StudyQuestion q2 = EasyQuestion(2);
  StudyQuestion q4 = EasyQuestion(4);
  double g2 = UserStudySimulator::DecisionSeconds(
      q2, VisualEncoding::kContextualGlyph);
  double b2 =
      UserStudySimulator::DecisionSeconds(q2, VisualEncoding::kBarChart);
  double g4 = UserStudySimulator::DecisionSeconds(
      q4, VisualEncoding::kContextualGlyph);
  double b4 =
      UserStudySimulator::DecisionSeconds(q4, VisualEncoding::kBarChart);
  EXPECT_LT(g2, b2);
  EXPECT_LT(g4, b4);
  EXPECT_GT(b4 - g4, b2 - g2);
}

TEST(DecisionTimeTest, OutcomeCarriesTimes) {
  StudyConfig config;
  config.participants = 5;
  UserStudySimulator sim(config);
  StudyOutcome outcome = sim.Run({EasyQuestion(3)});
  ASSERT_EQ(outcome.questions.size(), 1u);
  EXPECT_GT(outcome.questions[0].glyph_seconds, 0.0);
  EXPECT_GT(outcome.questions[0].barchart_seconds,
            outcome.questions[0].glyph_seconds);
  EXPECT_GT(outcome.MeanSeconds(VisualEncoding::kBarChart),
            outcome.MeanSeconds(VisualEncoding::kContextualGlyph));
  EXPECT_DOUBLE_EQ(StudyOutcome{}.MeanSeconds(
                       VisualEncoding::kContextualGlyph),
                   0.0);
}

TEST(UserStudyTest, AccuracyForSizeAveragesQuestions) {
  StudyOutcome outcome;
  outcome.questions = {
      {"q1", 2, 0.8, 0.6},
      {"q2", 2, 0.6, 0.2},
      {"q3", 3, 1.0, 1.0},
  };
  EXPECT_NEAR(outcome.AccuracyForSize(2, VisualEncoding::kContextualGlyph),
              0.7, 1e-12);
  EXPECT_NEAR(outcome.AccuracyForSize(2, VisualEncoding::kBarChart), 0.4,
              1e-12);
  EXPECT_DOUBLE_EQ(outcome.AccuracyForSize(5, VisualEncoding::kBarChart),
                   0.0);
}

TEST(BuildQuestionsTest, FromRankedMcacs) {
  maras::test::MiniCorpus corpus = maras::test::AsthmaCorpus();
  corpus.Add({{"ZANTAC", "TUMS"}, {"OSTEOPOROSIS"}}, 6);
  corpus.Add({{"ZANTAC"}, {"OSTEOPOROSIS"}}, 20);
  corpus.Add({{"A", "B"}, {"NAUSEA"}}, 4);
  corpus.Add({{"A"}, {"NAUSEA"}}, 4);
  corpus.Add({{"C", "D"}, {"RASH"}}, 4);
  corpus.Add({{"C"}, {"HEADACHE"}}, 9);

  core::McacBuilder builder(&corpus.items, &corpus.db);
  std::vector<core::Mcac> mcacs;
  for (const auto& drugs :
       {std::vector<std::string>{"ZANTAC", "TUMS"},
        std::vector<std::string>{"A", "B"},
        std::vector<std::string>{"C", "D"}}) {
    mining::Itemset whole;
    std::vector<std::string> adrs =
        drugs[0] == "ZANTAC" ? std::vector<std::string>{"OSTEOPOROSIS"}
        : drugs[0] == "A"    ? std::vector<std::string>{"NAUSEA"}
                             : std::vector<std::string>{"RASH"};
    whole = mining::Union(corpus.Drugs(drugs), corpus.Adrs(adrs));
    auto rule = core::BuildRule(whole, corpus.items, corpus.db);
    ASSERT_TRUE(rule.ok());
    auto mcac = builder.Build(*rule);
    ASSERT_TRUE(mcac.ok());
    mcacs.push_back(*std::move(mcac));
  }
  auto ranked = core::RankMcacs(mcacs,
                                core::RankingMethod::kExclusivenessConfidence,
                                core::ExclusivenessOptions{});
  auto questions = BuildQuestions(ranked, corpus.items, /*decoys=*/2,
                                  /*seed=*/5);
  ASSERT_EQ(questions.size(), 1u);  // all targets are 2-drug
  EXPECT_EQ(questions[0].candidates.size(), 3u);
  ASSERT_EQ(questions[0].correct_indices.size(), 1u);
  // The correct candidate is the top-ranked one.
  size_t correct = questions[0].correct_indices[0];
  double correct_target = questions[0].candidates[correct].target_value;
  EXPECT_DOUBLE_EQ(correct_target, ranked[0].mcac.target.confidence);
}

TEST(BuildQuestionsTest, SkipsSizesWithTooFewCandidates) {
  auto questions = BuildQuestions({}, mining::ItemDictionary{}, 2, 1);
  EXPECT_TRUE(questions.empty());
}

}  // namespace
}  // namespace maras::study
