#include "faers/validate.h"

#include <gtest/gtest.h>

#include "faers/generator.h"

namespace maras::faers {
namespace {

Report GoodReport(uint64_t case_id) {
  Report r;
  r.case_id = case_id;
  r.case_version = 1;
  r.age = 50;
  r.country = "US";
  r.drugs = {"ASPIRIN"};
  r.reactions = {"NAUSEA"};
  return r;
}

bool HasFinding(const ValidationReport& report, const std::string& check) {
  for (const auto& finding : report.findings) {
    if (finding.check == check) return true;
  }
  return false;
}

TEST(ValidateTest, CleanDatasetPasses) {
  QuarterDataset dataset;
  dataset.quarter = 1;
  dataset.reports = {GoodReport(1), GoodReport(2)};
  ValidationReport report = ValidateDataset(dataset);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.findings.size(), 0u);
  EXPECT_EQ(report.reports_checked, 2u);
}

TEST(ValidateTest, DuplicatePrimaryIdIsError) {
  QuarterDataset dataset;
  dataset.quarter = 1;
  dataset.reports = {GoodReport(1), GoodReport(1)};
  ValidationReport report = ValidateDataset(dataset);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(HasFinding(report, "duplicate-primaryid"));
}

TEST(ValidateTest, VersionedResubmissionIsFine) {
  QuarterDataset dataset;
  dataset.quarter = 1;
  Report v1 = GoodReport(1);
  Report v2 = GoodReport(1);
  v2.case_version = 2;
  dataset.reports = {v1, v2};
  EXPECT_TRUE(ValidateDataset(dataset).ok());
}

TEST(ValidateTest, StructuralErrors) {
  QuarterDataset dataset;
  dataset.quarter = 5;  // bad quarter
  Report r = GoodReport(0);  // missing case id
  r.case_version = 0;        // bad version
  dataset.reports = {r};
  ValidationReport report = ValidateDataset(dataset);
  EXPECT_TRUE(HasFinding(report, "bad-quarter"));
  EXPECT_TRUE(HasFinding(report, "missing-caseid"));
  EXPECT_TRUE(HasFinding(report, "bad-caseversion"));
  EXPECT_GE(report.error_count(), 3u);
}

TEST(ValidateTest, ContentWarnings) {
  QuarterDataset dataset;
  dataset.quarter = 2;
  Report no_drugs = GoodReport(1);
  no_drugs.drugs.clear();
  Report no_reactions = GoodReport(2);
  no_reactions.reactions.clear();
  Report ancient = GoodReport(3);
  ancient.age = 240;  // data-entry artifact
  Report bad_country = GoodReport(4);
  bad_country.country = "usa";
  Report blank_names = GoodReport(5);
  blank_names.drugs = {""};
  blank_names.reactions = {""};
  dataset.reports = {no_drugs, no_reactions, ancient, bad_country,
                     blank_names};
  ValidationReport report = ValidateDataset(dataset);
  EXPECT_TRUE(report.ok());  // warnings only
  EXPECT_TRUE(HasFinding(report, "no-drugs"));
  EXPECT_TRUE(HasFinding(report, "no-reactions"));
  EXPECT_TRUE(HasFinding(report, "implausible-age"));
  EXPECT_TRUE(HasFinding(report, "bad-country-code"));
  EXPECT_TRUE(HasFinding(report, "empty-drug-name"));
  EXPECT_TRUE(HasFinding(report, "empty-reaction"));
  EXPECT_EQ(report.warning_count(), 6u);
}

TEST(ValidateTest, TooManyDrugsFlagged) {
  QuarterDataset dataset;
  dataset.quarter = 1;
  Report r = GoodReport(1);
  r.drugs.assign(100, "ASPIRIN");
  dataset.reports = {r};
  ValidationOptions options;
  options.max_plausible_drugs = 60;
  ValidationReport report = ValidateDataset(dataset, options);
  EXPECT_TRUE(HasFinding(report, "too-many-drugs"));
}

TEST(ValidateTest, CountryCheckCanBeDisabled) {
  QuarterDataset dataset;
  dataset.quarter = 1;
  Report r = GoodReport(1);
  r.country = "xx";
  dataset.reports = {r};
  ValidationOptions options;
  options.check_country_codes = false;
  EXPECT_EQ(ValidateDataset(dataset, options).findings.size(), 0u);
}

TEST(ValidateTest, ConflictingVersionIsError) {
  QuarterDataset dataset;
  dataset.quarter = 1;
  Report a = GoodReport(7);
  a.case_version = 2;
  Report b = GoodReport(7);
  b.case_version = 2;
  dataset.reports = {a, b};
  ValidationReport report = ValidateDataset(dataset);
  EXPECT_TRUE(HasFinding(report, "conflicting-version"));
}

TEST(ValidateTest, SyntheticGeneratorOutputIsClean) {
  GeneratorConfig config;
  config.n_reports = 1500;
  config.n_drugs = 300;
  config.n_adrs = 150;
  SyntheticGenerator generator(config);
  auto dataset = generator.Generate();
  ASSERT_TRUE(dataset.ok());
  ValidationReport report = ValidateDataset(*dataset);
  EXPECT_TRUE(report.ok()) << report.error_count() << " errors";
  EXPECT_EQ(report.warning_count(), 0u);
}

}  // namespace
}  // namespace maras::faers
