// Kernel-level differential tests for mining/bitmap.h. Every kernel —
// popcount, AND, AND-NOT, AND3, galloping intersection, bitmap probe, and
// the dense<->sparse conversions — is checked against a scalar oracle
// (std::set_intersection / std::set_difference / a plain bit loop) over
// multi-seed random tid universes at several densities, plus the edge
// shapes the word-packed representation makes dangerous: exact word
// boundaries, all-zero and all-one bitmaps, and trailing partial words.
// The SIMD backends (AVX2/NEON) dispatch underneath the same entry points,
// so whichever one the host selects is the one being proven here.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "mining/bitmap.h"
#include "util/random.h"

namespace maras::mining {
namespace {

using Tids = std::vector<TransactionId>;

// Sorted unique tid sample of `universe` where each tid is kept with
// probability `density`.
Tids RandomTids(maras::Rng* rng, size_t universe, double density) {
  Tids tids;
  for (size_t t = 0; t < universe; ++t) {
    if (rng->Bernoulli(density)) tids.push_back(static_cast<TransactionId>(t));
  }
  return tids;
}

Tids OracleIntersect(const Tids& a, const Tids& b) {
  Tids out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

Tids OracleDifference(const Tids& a, const Tids& b) {
  Tids out;
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(out));
  return out;
}

// The invariant every kernel relies on: bits at and beyond `universe` in
// the trailing partial word are zero.
void ExpectTrailingBitsZero(const TidBitmap& bm) {
  if (bm.word_count() == 0) return;
  const size_t tail = bm.universe() % kBitmapWordBits;
  if (tail == 0) return;
  const BitmapWord last = bm.words()[bm.word_count() - 1];
  EXPECT_EQ(last & ~((BitmapWord{1} << tail) - 1), BitmapWord{0})
      << "universe " << bm.universe();
}

// --------------------------------------------------------------------------
// Deterministic edge shapes.
// --------------------------------------------------------------------------

TEST(BitmapKernelTest, EmptyUniverseIsInertEverywhere) {
  TidBitmap a(0), b(0);
  EXPECT_EQ(a.word_count(), 0u);
  EXPECT_TRUE(a.ToTids().empty());
  EXPECT_EQ(BitmapPopcount(a), 0u);
  EXPECT_EQ(AndPopcount(a, b), 0u);
  EXPECT_EQ(AndNotPopcount(a, b), 0u);
  EXPECT_EQ(And3Popcount(a, b, a), 0u);
  TidBitmap out;
  EXPECT_EQ(BitmapAnd(a, b, &out), 0u);
  EXPECT_EQ(out.universe(), 0u);
  a.Fill();
  EXPECT_EQ(BitmapPopcount(a), 0u);
}

TEST(BitmapKernelTest, SetAndTestAcrossWordBoundaries) {
  const size_t universe = 200;
  TidBitmap bm(universe);
  const Tids probes = {0, 1, 62, 63, 64, 65, 127, 128, 191, 199};
  for (TransactionId tid : probes) bm.Set(tid);
  for (TransactionId tid : probes) {
    EXPECT_TRUE(bm.Test(tid)) << tid;
  }
  EXPECT_FALSE(bm.Test(2));
  EXPECT_FALSE(bm.Test(66));
  EXPECT_FALSE(bm.Test(198));
  // Out-of-universe probes answer false instead of reading out of range.
  EXPECT_FALSE(bm.Test(200));
  EXPECT_FALSE(bm.Test(100000));
  EXPECT_EQ(BitmapPopcount(bm), probes.size());
  EXPECT_EQ(bm.ToTids(), probes);
  ExpectTrailingBitsZero(bm);
}

TEST(BitmapKernelTest, FillMasksTheTrailingPartialWord) {
  for (size_t universe : {1u, 63u, 64u, 65u, 127u, 128u, 129u, 1000u}) {
    TidBitmap bm(universe);
    bm.Fill();
    EXPECT_EQ(BitmapPopcount(bm), universe) << universe;
    ExpectTrailingBitsZero(bm);
    Tids all = bm.ToTids();
    ASSERT_EQ(all.size(), universe) << universe;
    EXPECT_EQ(all.front(), 0u);
    EXPECT_EQ(all.back(), static_cast<TransactionId>(universe - 1));
  }
}

TEST(BitmapKernelTest, AllZeroAndAllOneOperands) {
  for (size_t universe : {64u, 65u, 320u}) {
    TidBitmap zero(universe);
    TidBitmap full(universe);
    full.Fill();
    EXPECT_EQ(AndPopcount(full, full), universe);
    EXPECT_EQ(AndPopcount(full, zero), 0u);
    EXPECT_EQ(AndPopcount(zero, zero), 0u);
    EXPECT_EQ(AndNotPopcount(full, zero), universe);
    EXPECT_EQ(AndNotPopcount(full, full), 0u);
    EXPECT_EQ(AndNotPopcount(zero, full), 0u);
    EXPECT_EQ(And3Popcount(full, full, full), universe);
    EXPECT_EQ(And3Popcount(full, full, zero), 0u);
    TidBitmap out;
    EXPECT_EQ(BitmapAnd(full, full, &out), universe);
    ExpectTrailingBitsZero(out);
    EXPECT_EQ(BitmapAndNot(full, full, &out), 0u);
    EXPECT_EQ(BitmapPopcount(out), 0u);
  }
}

TEST(BitmapKernelTest, ResetClearsAndResizes) {
  TidBitmap bm(100);
  bm.Fill();
  bm.Reset(40);
  EXPECT_EQ(bm.universe(), 40u);
  EXPECT_EQ(BitmapPopcount(bm), 0u);
  bm.Set(39);
  bm.Reset(100);
  EXPECT_EQ(BitmapPopcount(bm), 0u);
}

TEST(BitmapKernelTest, PreferDenseCrossover) {
  // Dense iff support / universe >= 1/kDenseSelectivityDivisor.
  EXPECT_TRUE(PreferDense(1, kDenseSelectivityDivisor));
  EXPECT_FALSE(PreferDense(1, kDenseSelectivityDivisor + 1));
  EXPECT_TRUE(PreferDense(100, 3200));
  EXPECT_FALSE(PreferDense(99, 3200));
  EXPECT_TRUE(PreferDense(0, 0));  // degenerate: empty universe
}

TEST(BitmapKernelTest, BackendNameIsStableAndKnown) {
  const std::string backend = BitmapKernelBackend();
  EXPECT_TRUE(backend == "avx2" || backend == "neon" || backend == "scalar")
      << backend;
  EXPECT_EQ(backend, BitmapKernelBackend());  // same choice for the process
}

TEST(BitmapKernelTest, GallopIntersectHandlesDegenerateShapes) {
  const Tids empty;
  const Tids one = {5};
  const Tids ramp = {1, 2, 3, 5, 8, 13, 21, 34, 55, 89};
  EXPECT_EQ(GallopIntersectCount(empty, ramp), 0u);
  EXPECT_EQ(GallopIntersectCount(ramp, empty), 0u);
  EXPECT_EQ(GallopIntersectCount(one, ramp), 1u);
  EXPECT_EQ(GallopIntersectCount(ramp, ramp), ramp.size());
  const Tids disjoint = {0, 4, 6, 90};
  EXPECT_EQ(GallopIntersectCount(ramp, disjoint), 0u);
  Tids out = {99, 98};  // stale contents must be cleared
  GallopIntersect(one, ramp, &out);
  EXPECT_EQ(out, one);
  GallopIntersect(ramp, disjoint, &out);
  EXPECT_TRUE(out.empty());
}

// --------------------------------------------------------------------------
// Multi-seed property tests against the scalar oracles.
// --------------------------------------------------------------------------

class BitmapKernelPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BitmapKernelPropertyTest, DenseSparseConversionsRoundTrip) {
  maras::Rng rng(GetParam());
  for (size_t universe : {1u, 63u, 64u, 65u, 257u, 1024u, 4099u}) {
    for (double density : {0.0, 0.01, 0.2, 0.9, 1.0}) {
      Tids tids = RandomTids(&rng, universe, density);
      TidBitmap bm = TidBitmap::FromTids(tids, universe);
      EXPECT_EQ(bm.universe(), universe);
      ExpectTrailingBitsZero(bm);
      EXPECT_EQ(BitmapPopcount(bm), tids.size());
      EXPECT_EQ(bm.ToTids(), tids);
      Tids appended = {7};  // AppendTids must append, not clear
      bm.AppendTids(&appended);
      ASSERT_EQ(appended.size(), tids.size() + 1);
      EXPECT_TRUE(std::equal(tids.begin(), tids.end(), appended.begin() + 1));
    }
  }
}

TEST_P(BitmapKernelPropertyTest, AndKernelsMatchSetIntersection) {
  maras::Rng rng(GetParam() ^ 0x5117);
  for (size_t universe : {64u, 65u, 200u, 1024u, 4099u}) {
    for (double da : {0.02, 0.3, 0.95}) {
      for (double db : {0.02, 0.3, 0.95}) {
        Tids a = RandomTids(&rng, universe, da);
        Tids b = RandomTids(&rng, universe, db);
        const Tids expected = OracleIntersect(a, b);
        TidBitmap abm = TidBitmap::FromTids(a, universe);
        TidBitmap bbm = TidBitmap::FromTids(b, universe);
        EXPECT_EQ(AndPopcount(abm, bbm), expected.size());
        EXPECT_EQ(AndPopcount(bbm, abm), expected.size());  // commutes
        TidBitmap out;
        EXPECT_EQ(BitmapAnd(abm, bbm, &out), expected.size());
        EXPECT_EQ(out.ToTids(), expected);
        ExpectTrailingBitsZero(out);
      }
    }
  }
}

TEST_P(BitmapKernelPropertyTest, AndNotKernelMatchesSetDifference) {
  maras::Rng rng(GetParam() ^ 0xD1FF);
  for (size_t universe : {64u, 130u, 1024u}) {
    for (double density : {0.05, 0.4, 0.9}) {
      Tids a = RandomTids(&rng, universe, density);
      Tids b = RandomTids(&rng, universe, 0.5);
      const Tids expected = OracleDifference(a, b);
      TidBitmap abm = TidBitmap::FromTids(a, universe);
      TidBitmap bbm = TidBitmap::FromTids(b, universe);
      EXPECT_EQ(AndNotPopcount(abm, bbm), expected.size());
      TidBitmap out;
      EXPECT_EQ(BitmapAndNot(abm, bbm, &out), expected.size());
      EXPECT_EQ(out.ToTids(), expected);
      ExpectTrailingBitsZero(out);
    }
  }
}

TEST_P(BitmapKernelPropertyTest, And3KernelMatchesTripleIntersection) {
  maras::Rng rng(GetParam() ^ 0x3333);
  for (size_t universe : {65u, 300u, 2048u}) {
    Tids a = RandomTids(&rng, universe, 0.5);
    Tids b = RandomTids(&rng, universe, 0.4);
    Tids c = RandomTids(&rng, universe, 0.3);
    const Tids expected = OracleIntersect(OracleIntersect(a, b), c);
    TidBitmap abm = TidBitmap::FromTids(a, universe);
    TidBitmap bbm = TidBitmap::FromTids(b, universe);
    TidBitmap cbm = TidBitmap::FromTids(c, universe);
    EXPECT_EQ(And3Popcount(abm, bbm, cbm), expected.size());
    EXPECT_EQ(And3Popcount(cbm, abm, bbm), expected.size());
  }
}

TEST_P(BitmapKernelPropertyTest, GallopingMatchesSetIntersection) {
  maras::Rng rng(GetParam() ^ 0x6A11);
  for (size_t universe : {256u, 4096u}) {
    // Skewed lengths are galloping's reason to exist; cover both orders.
    for (double da : {0.005, 0.05, 0.6}) {
      for (double db : {0.005, 0.6}) {
        Tids a = RandomTids(&rng, universe, da);
        Tids b = RandomTids(&rng, universe, db);
        const Tids expected = OracleIntersect(a, b);
        EXPECT_EQ(GallopIntersectCount(a, b), expected.size());
        EXPECT_EQ(GallopIntersectCount(b, a), expected.size());
        Tids out;
        GallopIntersect(a, b, &out);
        EXPECT_EQ(out, expected);
        GallopIntersect(b, a, &out);
        EXPECT_EQ(out, expected);
      }
    }
  }
}

TEST_P(BitmapKernelPropertyTest, ProbeKernelsMatchSetIntersection) {
  maras::Rng rng(GetParam() ^ 0xBEEF);
  for (size_t universe : {128u, 1500u}) {
    Tids sparse = RandomTids(&rng, universe, 0.03);
    Tids dense = RandomTids(&rng, universe, 0.7);
    const Tids expected = OracleIntersect(sparse, dense);
    TidBitmap dense_bm = TidBitmap::FromTids(dense, universe);
    EXPECT_EQ(ProbeCount(sparse, dense_bm), expected.size());
    Tids out = {42};  // stale contents must be cleared
    ProbeIntersect(sparse, dense_bm, &out);
    EXPECT_EQ(out, expected);
  }
}

TEST_P(BitmapKernelPropertyTest, LongBitmapsCrossTheCacheBlockBoundary) {
  // kBitmapBlockWords words per block: universes straddling one and two
  // blocks exercise the blocked loop's inter-block accumulation.
  maras::Rng rng(GetParam() ^ 0xB10C);
  const size_t block_bits = kBitmapBlockWords * kBitmapWordBits;
  for (size_t universe : {block_bits - 1, block_bits, block_bits + 1,
                          2 * block_bits + 77}) {
    Tids a = RandomTids(&rng, universe, 0.5);
    Tids b = RandomTids(&rng, universe, 0.5);
    const Tids expected = OracleIntersect(a, b);
    TidBitmap abm = TidBitmap::FromTids(a, universe);
    TidBitmap bbm = TidBitmap::FromTids(b, universe);
    EXPECT_EQ(AndPopcount(abm, bbm), expected.size()) << universe;
    EXPECT_EQ(BitmapPopcount(abm), a.size()) << universe;
    TidBitmap out;
    EXPECT_EQ(BitmapAnd(abm, bbm, &out), expected.size()) << universe;
    EXPECT_EQ(out.ToTids(), expected) << universe;
  }
}

TEST_P(BitmapKernelPropertyTest, VerticalSlicePolicyAndIntersection) {
  maras::Rng rng(GetParam() ^ 0x51CE);
  const size_t universe = 600;
  Tids a = RandomTids(&rng, universe, 0.4);
  Tids b = RandomTids(&rng, universe, 0.02);
  const Tids expected = OracleIntersect(a, b);

  // Representation follows the policy; the decoded tid set never changes.
  for (BitmapPolicy policy :
       {BitmapPolicy::kAuto, BitmapPolicy::kDense, BitmapPolicy::kSparse}) {
    VerticalSlice sa = VerticalSlice::Make(1, a, universe, policy);
    VerticalSlice sb = VerticalSlice::Make(2, b, universe, policy);
    EXPECT_EQ(sa.support, a.size());
    EXPECT_EQ(sb.support, b.size());
    if (policy == BitmapPolicy::kDense) {
      EXPECT_TRUE(sa.dense && sb.dense);
    } else if (policy == BitmapPolicy::kSparse) {
      EXPECT_FALSE(sa.dense || sb.dense);
    } else {
      EXPECT_EQ(sa.dense, PreferDense(a.size(), universe));
      EXPECT_EQ(sb.dense, PreferDense(b.size(), universe));
    }
    VerticalSlice joined = IntersectSlices(sa, sb, universe, policy);
    EXPECT_EQ(joined.item, sb.item);
    EXPECT_EQ(joined.support, expected.size()) << static_cast<int>(policy);
    Tids joined_tids =
        joined.dense ? joined.bitmap.ToTids() : joined.tids;
    if (joined.support > 0) {
      EXPECT_EQ(joined_tids, expected) << static_cast<int>(policy);
    }
  }

  // Mixed-representation pairs must agree with each other and the oracle.
  VerticalSlice dense_a =
      VerticalSlice::Make(1, a, universe, BitmapPolicy::kDense);
  VerticalSlice sparse_b =
      VerticalSlice::Make(2, b, universe, BitmapPolicy::kSparse);
  VerticalSlice mixed =
      IntersectSlices(dense_a, sparse_b, universe, BitmapPolicy::kAuto);
  EXPECT_EQ(mixed.support, expected.size());
  VerticalSlice mixed_flipped =
      IntersectSlices(sparse_b, dense_a, universe, BitmapPolicy::kAuto);
  EXPECT_EQ(mixed_flipped.support, expected.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BitmapKernelPropertyTest,
                         ::testing::Values(1, 77, 4242, 987654));

}  // namespace
}  // namespace maras::mining
