#include "core/shard_supervisor.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

#include "core/multi_quarter.h"
#include "faers/corruptor.h"
#include "faers/generator.h"
#include "util/subprocess.h"

// This binary doubles as its own shard-worker fleet: the custom main() at
// the bottom routes any invocation carrying --shard= into RunShardWorker
// over a corpus rebuilt from --worker-seed, exactly the self-re-invocation
// contract the supervisor's worker_command relies on. Everything the worker
// path needs therefore lives in the named namespace below, reachable from
// main() outside any TEST.

namespace maras::core {
namespace shardtest {

constexpr uint64_t kCorpusSeed = 4200;

std::string g_self_path;  // set by main() before any test runs

// Small three-quarter corpus: big enough that the reference run produces
// ranked MCACs (asserted, so identity checks cannot go vacuous), small
// enough that a chaos test can afford dozens of worker attempts.
std::vector<faers::QuarterDataset> MakeQuarters(uint64_t seed) {
  std::vector<faers::QuarterDataset> quarters;
  for (int q = 1; q <= 3; ++q) {
    faers::GeneratorConfig config;
    config.year = 2061;
    config.quarter = q;
    config.n_reports = 500;
    config.n_drugs = 150;
    config.n_adrs = 80;
    config.seed = seed + static_cast<uint64_t>(q);
    auto dataset = faers::SyntheticGenerator(config).Generate();
    if (!dataset.ok()) {
      std::fprintf(stderr, "corpus generation failed: %s\n",
                   dataset.status().ToString().c_str());
      std::abort();
    }
    quarters.push_back(*std::move(dataset));
  }
  return quarters;
}

AnalyzerOptions TestAnalyzer() {
  AnalyzerOptions analyzer;
  analyzer.mining.min_support = 5;
  analyzer.mining.num_threads = 1;
  return analyzer;
}

// Worker-side entry point: rebuild the corpus from the flags and run the
// shard. Exit codes mirror the example driver: 2 bad invocation, 1 shard
// failure, 0 success.
int RunWorkerMain(int argc, char** argv) {
  std::string shard;
  std::string dir;
  uint64_t seed = kCorpusSeed;
  ShardWorkerChaos chaos;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg.rfind("--shard=", 0) == 0) {
      shard = std::string(arg.substr(8));
    } else if (arg.rfind("--worker-dir=", 0) == 0) {
      dir = std::string(arg.substr(13));
    } else if (arg.rfind("--worker-seed=", 0) == 0) {
      seed = std::strtoull(std::string(arg.substr(14)).c_str(), nullptr, 10);
    } else if (arg.rfind("--chaos-exit=", 0) == 0) {
      chaos.exit_at = std::string(arg.substr(13));
    } else if (arg.rfind("--chaos-hang=", 0) == 0) {
      chaos.hang_at = std::string(arg.substr(13));
    }
  }
  auto spec = ParseShardArg(shard);
  if (!spec.ok() || dir.empty()) {
    std::fprintf(stderr, "bad worker invocation: %s\n",
                 spec.ok() ? "missing --worker-dir"
                           : spec.status().ToString().c_str());
    return 2;
  }
  std::vector<faers::QuarterDataset> quarters = MakeQuarters(seed);
  ShardWorkerConfig config;
  config.spec = *spec;
  config.checkpoint_dir = dir;
  config.quarters = &quarters;
  config.pipeline.checkpoint_dir = dir;
  config.analyzer = TestAnalyzer();
  config.chaos = chaos;
  maras::Status status = RunShardWorker(config);
  if (!status.ok()) {
    std::fprintf(stderr, "worker failed: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}

}  // namespace shardtest

namespace {

using shardtest::g_self_path;
using shardtest::kCorpusSeed;
using shardtest::MakeQuarters;
using shardtest::TestAnalyzer;
using std::chrono::milliseconds;

namespace fs = std::filesystem;

std::string FreshDir(const std::string& tag) {
  std::string dir = ::testing::TempDir() + "/shard61_" + tag;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

struct StageEncodings {
  std::string closed;
  std::string rules;
  std::string ranked;
};

StageEncodings Encode(const SurveillanceAnalysis& analysis) {
  return {EncodeItemsetResult(analysis.closed), EncodeRules(analysis.rules),
          EncodeRankedMcacs(analysis.ranked)};
}

void ExpectIdentical(const StageEncodings& got, const StageEncodings& want) {
  EXPECT_EQ(got.closed, want.closed) << "closed family diverged";
  EXPECT_EQ(got.rules, want.rules) << "rule set diverged";
  EXPECT_EQ(got.ranked, want.ranked) << "MCAC ranking diverged";
}

const std::vector<faers::QuarterDataset>& SharedQuarters() {
  static auto* quarters =
      new std::vector<faers::QuarterDataset>(MakeQuarters(kCorpusSeed));
  return *quarters;
}

// The single-process ground truth every sharded run must reproduce
// byte-for-byte, computed once per binary invocation.
struct Reference {
  bool ok = false;
  std::string error;
  StageEncodings enc;
  size_t ranked = 0;
};

const Reference& GetReference() {
  static Reference* reference = [] {
    auto* ref = new Reference;
    MultiQuarterPipeline pipeline{MultiQuarterOptions{}};
    auto analysis = pipeline.RunAnalyzed(SharedQuarters(), TestAnalyzer());
    if (!analysis.ok()) {
      ref->error = analysis.status().ToString();
      return ref;
    }
    ref->enc = Encode(*analysis);
    ref->ranked = analysis->ranked.size();
    ref->ok = true;
    return ref;
  }();
  return *reference;
}

std::vector<std::string> WorkerCommand(const std::string& dir, uint64_t seed) {
  return {CurrentExecutablePath(g_self_path), "--worker-dir=" + dir,
          "--worker-seed=" + std::to_string(seed)};
}

// Chaos runs retry often; keep the deterministic backoff schedule tight so
// the harness spends its time in workers, not in sleeps.
ShardSupervisorOptions FastOptions(size_t workers) {
  ShardSupervisorOptions options;
  options.workers = workers;
  options.backoff.base = milliseconds(5);
  options.backoff.max_delay = milliseconds(50);
  return options;
}

maras::StatusOr<SurveillanceAnalysis> RunSharded(
    const std::string& dir, ShardSupervisorOptions options,
    ShardRunReport* report, uint64_t seed = kCorpusSeed,
    const std::vector<faers::QuarterDataset>* quarters = nullptr) {
  options.worker_command = WorkerCommand(dir, seed);
  MultiQuarterOptions pipeline;
  pipeline.checkpoint_dir = dir;
  ShardSupervisor supervisor(std::move(options));
  return supervisor.RunAnalyzed(quarters != nullptr ? *quarters
                                                    : SharedQuarters(),
                                pipeline, TestAnalyzer(),
                                RankingMethod::kExclusivenessConfidence,
                                report);
}

bool AnyNoteContains(const std::vector<std::string>& notes,
                     std::string_view needle) {
  for (const std::string& note : notes) {
    if (note.find(needle) != std::string::npos) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Shard spec wire format.
// ---------------------------------------------------------------------------

TEST(ShardSpecTest, QuarterSpecRoundTrips) {
  ShardSpec spec;
  spec.kind = ShardSpec::Kind::kQuarter;
  spec.index = 2;
  EXPECT_EQ(spec.Serialize(), "quarter:2");
  auto parsed = ParseShardArg("quarter:2");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->kind, ShardSpec::Kind::kQuarter);
  EXPECT_EQ(parsed->index, 2u);
}

TEST(ShardSpecTest, MineSpecRoundTripsWithStageName) {
  ShardSpec spec;
  spec.kind = ShardSpec::Kind::kMine;
  spec.index = 1;
  spec.count = 4;
  EXPECT_EQ(spec.Serialize(), "mine:1:4");
  EXPECT_EQ(spec.Stage(), "mine-1-of-4");
  auto parsed = ParseShardArg("mine:1:4");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->kind, ShardSpec::Kind::kMine);
  EXPECT_EQ(parsed->index, 1u);
  EXPECT_EQ(parsed->count, 4u);
}

TEST(ShardSpecTest, MalformedSpecsAreRejected) {
  for (const char* bad : {"", "bogus", "quarter:", "quarter:x", "mine:3",
                          "mine:4:2", "mine:0:0", "mine:1:x"}) {
    EXPECT_TRUE(ParseShardArg(bad).status().IsInvalidArgument()) << bad;
  }
}

// ---------------------------------------------------------------------------
// Clean sharded runs: byte-identical to the single-process pipeline at any
// worker count, and idempotent across supervisor restarts.
// ---------------------------------------------------------------------------

TEST(ShardIdentityTest, TwoWorkersMatchSingleProcessBytes) {
  const Reference& ref = GetReference();
  ASSERT_TRUE(ref.ok) << ref.error;
  ASSERT_GT(ref.ranked, 0u)
      << "corpus must produce MCACs or identity checks are vacuous";
  std::string dir = FreshDir("two_workers");
  ShardRunReport report;
  auto got = RunSharded(dir, FastOptions(2), &report);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ExpectIdentical(Encode(*got), ref.enc);
  EXPECT_EQ(report.shards, SharedQuarters().size() + 2);
  EXPECT_EQ(report.retries, 0u);
  EXPECT_EQ(report.quarantined, 0u);
}

TEST(ShardIdentityTest, FourWorkersMatchSingleProcessBytes) {
  const Reference& ref = GetReference();
  ASSERT_TRUE(ref.ok) << ref.error;
  std::string dir = FreshDir("four_workers");
  ShardRunReport report;
  auto got = RunSharded(dir, FastOptions(4), &report);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ExpectIdentical(Encode(*got), ref.enc);
  EXPECT_EQ(report.shards, SharedQuarters().size() + 4);
  EXPECT_EQ(report.quarantined, 0u);
}

TEST(ShardIdentityTest, RestartedSupervisorReusesEveryCheckpoint) {
  const Reference& ref = GetReference();
  ASSERT_TRUE(ref.ok) << ref.error;
  std::string dir = FreshDir("restart");
  ShardRunReport first;
  auto run1 = RunSharded(dir, FastOptions(2), &first);
  ASSERT_TRUE(run1.ok()) << run1.status().ToString();
  ASSERT_GT(first.attempts, 0u);
  // Same dir again: every shard's artifact already validates, so the second
  // supervisor run must not spawn a single worker.
  ShardRunReport second;
  auto run2 = RunSharded(dir, FastOptions(2), &second);
  ASSERT_TRUE(run2.ok()) << run2.status().ToString();
  ExpectIdentical(Encode(*run2), ref.enc);
  EXPECT_EQ(second.attempts, 0u);
  EXPECT_TRUE(AnyNoteContains(second.notes, "reused existing checkpoint"));
}

TEST(ShardIdentityTest, MissingCheckpointDirIsRejected) {
  ShardSupervisorOptions options = FastOptions(2);
  options.worker_command = {"unused"};
  MultiQuarterOptions pipeline;  // no checkpoint_dir: no worker channel
  ShardSupervisor supervisor(std::move(options));
  auto got = supervisor.RunAnalyzed(SharedQuarters(), pipeline,
                                    TestAnalyzer());
  EXPECT_TRUE(got.status().IsInvalidArgument()) << got.status().ToString();
}

TEST(ShardIdentityTest, EmptyWorkerCommandIsRejected) {
  ShardSupervisorOptions options = FastOptions(2);
  MultiQuarterOptions pipeline;
  pipeline.checkpoint_dir = FreshDir("no_command");
  ShardSupervisor supervisor(std::move(options));
  auto got = supervisor.RunAnalyzed(SharedQuarters(), pipeline,
                                    TestAnalyzer());
  EXPECT_TRUE(got.status().IsInvalidArgument()) << got.status().ToString();
}

// ---------------------------------------------------------------------------
// Chaos: workers killed at every stage point, checkpoints torn mid-record —
// the run must converge to the exact single-process bytes within the retry
// budget, and an exhausted budget must degrade, not fail.
// ---------------------------------------------------------------------------

// Every worker dies at `point` on its first attempt; the retries must
// converge to the reference bytes.
void KillEveryWorkerOnceAt(const std::string& point) {
  const Reference& ref = GetReference();
  ASSERT_TRUE(ref.ok) << ref.error;
  std::string dir = FreshDir("kill_" + point);
  ShardSupervisorOptions options = FastOptions(2);
  options.chaos_args = [&point](const ShardSpec&, size_t attempt) {
    return attempt == 0 ? std::vector<std::string>{"--chaos-exit=" + point}
                        : std::vector<std::string>{};
  };
  ShardRunReport report;
  auto got = RunSharded(dir, options, &report);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ExpectIdentical(Encode(*got), ref.enc);
  EXPECT_EQ(report.quarantined, 0u);
}

TEST(ShardChaosTest, KillAtStartConvergesToIdenticalBytes) {
  KillEveryWorkerOnceAt("start");
}

TEST(ShardChaosTest, KillAtWorkConvergesToIdenticalBytes) {
  KillEveryWorkerOnceAt("work");
}

TEST(ShardChaosTest, DeathAfterPublishStillCountsAsSuccess) {
  // "publish" fires after the atomic checkpoint rename: the artifact is
  // valid, so the nonzero exit must not cost a single retry — success is
  // judged by the artifact, not the exit status.
  const Reference& ref = GetReference();
  ASSERT_TRUE(ref.ok) << ref.error;
  std::string dir = FreshDir("kill_publish");
  ShardSupervisorOptions options = FastOptions(2);
  options.chaos_args = [](const ShardSpec&, size_t) {
    return std::vector<std::string>{"--chaos-exit=publish"};
  };
  ShardRunReport report;
  auto got = RunSharded(dir, options, &report);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ExpectIdentical(Encode(*got), ref.enc);
  EXPECT_EQ(report.retries, 0u)
      << "a worker killed after its atomic rename already delivered";
}

TEST(ShardChaosTest, TornCheckpointsAreRejectedAndRecomputed) {
  const Reference& ref = GetReference();
  ASSERT_TRUE(ref.ok) << ref.error;
  std::string dir = FreshDir("torn");
  ShardSupervisorOptions options = FastOptions(2);
  // Tear every shard's published snapshot mid-file after its first attempt,
  // in the window before the supervisor validates it.
  options.post_attempt = [&dir](const ShardSpec& spec, size_t attempt) {
    if (attempt != 0) return;
    std::string path = CheckpointPath(dir, spec.Stage());
    if (!fs::exists(path)) return;
    size_t size = static_cast<size_t>(fs::file_size(path));
    ASSERT_TRUE(faers::TruncateFileAt(path, size / 2).ok()) << path;
  };
  ShardRunReport report;
  auto got = RunSharded(dir, options, &report);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ExpectIdentical(Encode(*got), ref.enc);
  EXPECT_GE(report.retries, SharedQuarters().size() + 2)
      << "every torn snapshot must cost at least one retry";
  EXPECT_EQ(report.quarantined, 0u);
}

TEST(ShardChaosTest, HungWorkerIsKilledByHeartbeatTimeoutAndRetried) {
  const Reference& ref = GetReference();
  ASSERT_TRUE(ref.ok) << ref.error;
  std::string dir = FreshDir("hang");
  ShardSupervisorOptions options = FastOptions(2);
  options.heartbeat_timeout = milliseconds(2000);
  options.chaos_args = [](const ShardSpec& spec, size_t attempt) {
    if (attempt == 0 && spec.kind == ShardSpec::Kind::kMine &&
        spec.index == 0) {
      return std::vector<std::string>{"--chaos-hang=work"};
    }
    return std::vector<std::string>{};
  };
  ShardRunReport report;
  auto got = RunSharded(dir, options, &report);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ExpectIdentical(Encode(*got), ref.enc);
  EXPECT_GE(report.retries, 1u);
  EXPECT_TRUE(AnyNoteContains(report.notes, "hung"))
      << "heartbeat kill should be attributed as a hang";
}

TEST(ShardChaosTest, ExhaustedRetryBudgetQuarantinesAndDegrades) {
  const Reference& ref = GetReference();
  ASSERT_TRUE(ref.ok) << ref.error;
  std::string dir = FreshDir("quarantine");
  ShardSupervisorOptions options = FastOptions(2);
  options.max_attempts = 2;
  // One mine shard fails on every attempt: its budget runs out and the
  // supervisor must fall back in-process at an escalated support — a
  // degraded, truncated-tagged run, never a failed one.
  options.chaos_args = [](const ShardSpec& spec, size_t) {
    if (spec.kind == ShardSpec::Kind::kMine && spec.index == 1) {
      return std::vector<std::string>{"--chaos-exit=work"};
    }
    return std::vector<std::string>{};
  };
  ShardRunReport report;
  auto got = RunSharded(dir, options, &report);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(report.quarantined, 1u);
  EXPECT_TRUE(got->truncated)
      << "a quarantined shard must surface as a truncated result";
  EXPECT_GT(got->min_support_used, TestAnalyzer().mining.min_support);
  EXPECT_TRUE(AnyNoteContains(report.notes, "quarantined"));
  EXPECT_TRUE(AnyNoteContains(got->notes, "quarantined"));
}

// ---------------------------------------------------------------------------
// Soak: a deterministic chaos lottery over several corpora — every shard is
// killed at a point chosen by its coordinates, mine:0's snapshot is torn —
// and every run must still converge to its own single-process bytes.
// ---------------------------------------------------------------------------

TEST(ShardSoakTest, ChaosLotteryConvergesAcrossSeeds) {
  const char* kPoints[] = {"start", "work", "publish"};
  for (uint64_t seed : {uint64_t{91}, uint64_t{92}, uint64_t{93}}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    auto quarters = MakeQuarters(seed);
    MultiQuarterPipeline pipeline{MultiQuarterOptions{}};
    auto reference = pipeline.RunAnalyzed(quarters, TestAnalyzer());
    ASSERT_TRUE(reference.ok()) << reference.status().ToString();
    std::string dir = FreshDir("soak_" + std::to_string(seed));
    ShardSupervisorOptions options = FastOptions(3);
    options.max_attempts = 4;
    options.chaos_args = [&kPoints](const ShardSpec& spec, size_t attempt) {
      if (attempt != 0) return std::vector<std::string>{};
      size_t point = (spec.index +
                      (spec.kind == ShardSpec::Kind::kMine ? 1 : 0)) %
                     3;
      return std::vector<std::string>{std::string("--chaos-exit=") +
                                      kPoints[point]};
    };
    options.post_attempt = [&dir](const ShardSpec& spec, size_t attempt) {
      if (attempt != 1 || spec.Stage() != "mine-0-of-3") return;
      std::string path = CheckpointPath(dir, spec.Stage());
      if (!fs::exists(path)) return;
      size_t size = static_cast<size_t>(fs::file_size(path));
      ASSERT_TRUE(faers::TruncateFileAt(path, size - 1).ok()) << path;
    };
    ShardRunReport report;
    auto got = RunSharded(dir, options, &report, seed, &quarters);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ExpectIdentical(Encode(*got), Encode(*reference));
    EXPECT_EQ(report.quarantined, 0u);
  }
}

}  // namespace
}  // namespace maras::core

int main(int argc, char** argv) {
  maras::IgnoreSigpipeProcessWide();
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]).rfind("--shard=", 0) == 0) {
      return maras::core::shardtest::RunWorkerMain(argc, argv);
    }
  }
  maras::core::shardtest::g_self_path = argv[0];
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
