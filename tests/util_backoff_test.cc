#include "util/backoff.h"

#include <gtest/gtest.h>

#include <chrono>
#include <vector>

namespace maras {
namespace {

using std::chrono::milliseconds;
using std::chrono::steady_clock;

std::vector<milliseconds> DelaySequence(const BackoffPolicy& policy,
                                        size_t n) {
  Backoff backoff(policy);
  std::vector<milliseconds> out;
  for (size_t attempt = 0; attempt < n; ++attempt) {
    out.push_back(backoff.Delay(attempt));
  }
  return out;
}

TEST(BackoffTest, SameSeedReproducesExactDelaySequence) {
  BackoffPolicy policy;
  policy.seed = 42;
  EXPECT_EQ(DelaySequence(policy, 12), DelaySequence(policy, 12))
      << "backoff must be a pure function of the policy seed";
}

TEST(BackoffTest, DifferentSeedsProduceDifferentJitter) {
  BackoffPolicy a;
  a.seed = 1;
  BackoffPolicy b;
  b.seed = 2;
  // With 20% jitter over 12 draws, two independent streams colliding on
  // every draw would require astronomical luck; a full match means the
  // seed is being ignored.
  EXPECT_NE(DelaySequence(a, 12), DelaySequence(b, 12));
}

TEST(BackoffTest, ZeroJitterGrowsExponentiallyFromBase) {
  BackoffPolicy policy;
  policy.base = milliseconds(100);
  policy.multiplier = 2.0;
  policy.max_delay = milliseconds(100000);
  policy.jitter = 0.0;
  Backoff backoff(policy);
  EXPECT_EQ(backoff.Delay(0), milliseconds(100));
  EXPECT_EQ(backoff.Delay(1), milliseconds(200));
  EXPECT_EQ(backoff.Delay(2), milliseconds(400));
  EXPECT_EQ(backoff.Delay(5), milliseconds(3200));
}

TEST(BackoffTest, DelayNeverExceedsMaxEvenForHugeAttemptCounts) {
  BackoffPolicy policy;
  policy.base = milliseconds(100);
  policy.multiplier = 10.0;
  policy.max_delay = milliseconds(750);
  Backoff backoff(policy);
  for (size_t attempt : {size_t{0}, size_t{3}, size_t{60}, size_t{100000}}) {
    EXPECT_LE(backoff.Delay(attempt), policy.max_delay) << attempt;
  }
}

TEST(BackoffTest, JitterOnlyShortensWithinTheDocumentedWindow) {
  BackoffPolicy policy;
  policy.base = milliseconds(1000);
  policy.multiplier = 1.0;  // hold the raw delay constant across attempts
  policy.max_delay = milliseconds(10000);
  policy.jitter = 0.25;
  Backoff backoff(policy);
  for (size_t attempt = 0; attempt < 64; ++attempt) {
    milliseconds d = backoff.Delay(attempt);
    EXPECT_GE(d, milliseconds(750)) << attempt;
    EXPECT_LE(d, milliseconds(1000)) << attempt;
  }
}

TEST(BackoffTest, EnablingJitterDoesNotShiftTheDrawStream) {
  // Delay() consumes exactly one rng draw per call regardless of jitter, so
  // a jitter=0 replay of the same seed stays aligned: every delay equals
  // the raw exponential value while the draw count still advances.
  BackoffPolicy plain;
  plain.jitter = 0.0;
  plain.seed = 7;
  Backoff backoff(plain);
  (void)backoff.Delay(0);
  (void)backoff.Delay(1);
  EXPECT_EQ(backoff.Delay(2), milliseconds(400))
      << "draws under jitter=0 must not perturb the deterministic schedule";
}

TEST(BackoffTest, SleepForNeverSleepsPastAnExpiringDeadline) {
  BackoffPolicy policy;
  policy.base = milliseconds(60000);  // would block for a minute unclamped
  policy.jitter = 0.0;
  Backoff backoff(policy);
  Deadline deadline = Deadline::AfterMillis(50);
  steady_clock::time_point before = steady_clock::now();
  milliseconds slept = backoff.SleepFor(0, deadline);
  auto elapsed = std::chrono::duration_cast<milliseconds>(
      steady_clock::now() - before);
  EXPECT_LE(slept, milliseconds(50));
  EXPECT_LT(elapsed, milliseconds(5000))
      << "SleepFor must clamp to Deadline::Remaining, not the raw delay";
}

TEST(BackoffTest, SleepForExpiredDeadlineReturnsImmediately) {
  BackoffPolicy policy;
  policy.base = milliseconds(60000);
  Backoff backoff(policy);
  Deadline deadline = Deadline::AfterMillis(0);
  EXPECT_EQ(backoff.SleepFor(0, deadline), milliseconds(0));
}

TEST(BackoffTest, SleepForInfiniteDeadlineUsesTheFullDelay) {
  BackoffPolicy policy;
  policy.base = milliseconds(10);
  policy.jitter = 0.0;
  Backoff backoff(policy);
  EXPECT_EQ(backoff.SleepFor(0, Deadline::Infinite()), milliseconds(10));
}

}  // namespace
}  // namespace maras
