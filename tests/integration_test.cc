// End-to-end pipeline test: synthetic FAERS quarter -> ASCII round trip ->
// preprocessing -> mining -> MCAC ranking -> recovery of every injected
// drug-drug-interaction signal (the repository-level acceptance test).

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/analyzer.h"
#include "core/export.h"
#include "core/stratified.h"
#include "faers/ascii_format.h"
#include "faers/drug_classes.h"
#include "faers/generator.h"
#include "faers/openfda.h"
#include "faers/preprocess.h"
#include "faers/validate.h"
#include "study/user_study.h"
#include "viz/glyph.h"
#include "viz/panorama.h"

namespace maras {
namespace {

faers::GeneratorConfig TestConfig() {
  faers::GeneratorConfig config;
  config.n_reports = 4000;
  config.n_drugs = 600;
  config.n_adrs = 250;
  config.seed = 1234;
  // Strengthen the injected signals (~19 reports each) so every one clears
  // the mining threshold after the EXP filter, penetrance and leakage take
  // their cuts at this deliberately small test scale.
  config.signals = faers::DefaultSignals(config.n_reports * 2);
  return config;
}

class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    faers::SyntheticGenerator generator(TestConfig());
    auto dataset = generator.Generate();
    ASSERT_TRUE(dataset.ok());
    dataset_ = new faers::QuarterDataset(*std::move(dataset));
    ground_truth_ = new faers::GroundTruth(generator.ground_truth());

    faers::Preprocessor preprocessor{faers::PreprocessOptions{}};
    auto pre = preprocessor.Process(*dataset_);
    ASSERT_TRUE(pre.ok());
    pre_ = new faers::PreprocessResult(*std::move(pre));

    core::AnalyzerOptions options;
    // At this scale each signal injects ~9 reports, of which the EXP filter
    // keeps ~85%, ADR penetrance ~75%, and leakage drops a few more — the
    // threshold must sit below the surviving count.
    options.mining.min_support = 4;
    options.mining.max_itemset_size = 7;
    core::MarasAnalyzer analyzer(options);
    auto analysis = analyzer.Analyze(*pre_);
    ASSERT_TRUE(analysis.ok());
    analysis_ = new core::AnalysisResult(*std::move(analysis));
  }

  static void TearDownTestSuite() {
    delete dataset_;
    delete ground_truth_;
    delete pre_;
    delete analysis_;
  }

  // Finds the best (lowest) rank of an MCAC whose target covers the signal's
  // drugs and at least one of its ADRs.
  static size_t RankOfSignal(const std::vector<core::RankedMcac>& ranked,
                             const faers::SignalSpec& signal) {
    mining::Itemset drugs;
    for (const auto& name : signal.drugs) {
      auto id = pre_->items.Lookup(name);
      if (!id.ok()) return SIZE_MAX;
      drugs.push_back(*id);
    }
    drugs = mining::MakeItemset(std::move(drugs));
    std::set<mining::ItemId> adrs;
    for (const auto& name : signal.adrs) {
      auto id = pre_->items.Lookup(name);
      if (id.ok()) adrs.insert(*id);
    }
    for (size_t i = 0; i < ranked.size(); ++i) {
      const auto& target = ranked[i].mcac.target;
      if (!mining::IsSubset(drugs, target.drugs)) continue;
      bool adr_hit = false;
      for (auto id : target.adrs) adr_hit |= adrs.count(id) > 0;
      if (adr_hit) return i;
    }
    return SIZE_MAX;
  }

  static faers::QuarterDataset* dataset_;
  static faers::GroundTruth* ground_truth_;
  static faers::PreprocessResult* pre_;
  static core::AnalysisResult* analysis_;
};

faers::QuarterDataset* PipelineTest::dataset_ = nullptr;
faers::GroundTruth* PipelineTest::ground_truth_ = nullptr;
faers::PreprocessResult* PipelineTest::pre_ = nullptr;
core::AnalysisResult* PipelineTest::analysis_ = nullptr;

TEST_F(PipelineTest, AsciiFormatRoundTripsGeneratedData) {
  auto files = faers::WriteAsciiQuarter(*dataset_);
  ASSERT_TRUE(files.ok());
  auto parsed = faers::ReadAsciiQuarter(*files, 2014, 1);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->reports.size(), dataset_->reports.size());
  for (size_t i = 0; i < parsed->reports.size(); i += 97) {
    EXPECT_EQ(parsed->reports[i].drugs, dataset_->reports[i].drugs);
    EXPECT_EQ(parsed->reports[i].reactions, dataset_->reports[i].reactions);
  }
}

TEST_F(PipelineTest, PreprocessingCleansNames) {
  EXPECT_GT(pre_->stats.fuzzy_corrections, 0u);
  EXPECT_GT(pre_->stats.alias_resolutions, 0u);
  EXPECT_GT(pre_->stats.reports_kept, TestConfig().n_reports / 2);
  EXPECT_GT(pre_->stats.dropped_not_expedited, 0u);
  EXPECT_GT(pre_->stats.dropped_stale_version, 0u);
}

TEST_F(PipelineTest, RuleSpaceReductionShape) {
  // Fig. 5.1: each filtering stage shrinks the rule space substantially.
  EXPECT_GT(analysis_->stats.total_rules, analysis_->stats.filtered_rules);
  EXPECT_GT(analysis_->stats.filtered_rules, analysis_->stats.mcac_count);
  EXPECT_GT(analysis_->stats.mcac_count, 0u);
}

TEST_F(PipelineTest, AllInjectedSignalsRecovered) {
  auto ranked = core::RankMcacs(analysis_->mcacs,
                                core::RankingMethod::kExclusivenessConfidence,
                                core::ExclusivenessOptions{});
  for (const auto& signal : ground_truth_->signals) {
    size_t rank = RankOfSignal(ranked, signal);
    EXPECT_NE(rank, SIZE_MAX) << "signal not mined: " << signal.name;
  }
}

TEST_F(PipelineTest, ExclusivenessRanksSignalsAboveMedian) {
  auto ranked = core::RankMcacs(analysis_->mcacs,
                                core::RankingMethod::kExclusivenessConfidence,
                                core::ExclusivenessOptions{});
  ASSERT_GT(ranked.size(), 0u);
  size_t median = ranked.size() / 2;
  size_t above = 0, found = 0;
  for (const auto& signal : ground_truth_->signals) {
    size_t rank = RankOfSignal(ranked, signal);
    if (rank == SIZE_MAX) continue;
    ++found;
    if (rank < median) ++above;
  }
  ASSERT_GT(found, 0u);
  // At this small test scale each signal only has ~6 surviving reports, so
  // context estimates are noisy; still, the large majority of recovered
  // signals must land in the interesting half.
  EXPECT_GE(above * 10, found * 7) << above << " of " << found;
}

TEST_F(PipelineTest, ReportLinkageDrillsDownToRawReports) {
  ASSERT_GT(analysis_->mcacs.size(), 0u);
  const core::Mcac& mcac = analysis_->mcacs.front();
  auto reports = core::SupportingReports(pre_->transactions,
                                         pre_->primary_ids, mcac.target);
  EXPECT_EQ(reports.size(), mcac.target.support);
  // Every linked report must exist in the original dataset.
  std::set<uint64_t> known;
  for (const auto& r : dataset_->reports) known.insert(r.primary_id());
  for (uint64_t id : reports) EXPECT_TRUE(known.count(id) > 0);
}

TEST_F(PipelineTest, GlyphsRenderForTopClusters) {
  auto ranked = core::RankMcacs(analysis_->mcacs,
                                core::RankingMethod::kExclusivenessConfidence,
                                core::ExclusivenessOptions{});
  std::vector<viz::PanoramaEntry> entries;
  for (size_t i = 0; i < std::min<size_t>(10, ranked.size()); ++i) {
    viz::PanoramaEntry entry;
    entry.spec = viz::GlyphSpecFromMcac(ranked[i].mcac, pre_->items);
    entry.score = ranked[i].score;
    entries.push_back(std::move(entry));
  }
  ASSERT_FALSE(entries.empty());
  viz::PanoramaRenderer renderer;
  std::string svg = renderer.Render(entries, "Top clusters").Render();
  EXPECT_GT(svg.size(), 1000u);
  EXPECT_NE(svg.find("<circle"), std::string::npos);
}

TEST_F(PipelineTest, GeneratedDatasetValidatesClean) {
  faers::ValidationReport report = faers::ValidateDataset(*dataset_);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.warning_count(), 0u);
  EXPECT_EQ(report.reports_checked, dataset_->reports.size());
}

TEST_F(PipelineTest, OpenFdaFormatRoundTripsGeneratedData) {
  auto json_text = faers::WriteOpenFdaEvents(*dataset_);
  ASSERT_TRUE(json_text.ok());
  faers::OpenFdaReadStats stats;
  auto parsed = faers::ReadOpenFdaEvents(*json_text, 2014, 1, &stats);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->reports.size(), dataset_->reports.size());
  EXPECT_EQ(stats.skipped_incomplete, 0u);
}

TEST_F(PipelineTest, DemographicsAlignAndStratificationRuns) {
  ASSERT_EQ(pre_->demographics.size(), pre_->transactions.size());
  core::StratifiedAnalyzer stratified(&pre_->transactions,
                                      &pre_->demographics);
  ASSERT_FALSE(analysis_->mcacs.empty());
  const core::DrugAdrRule& target = analysis_->mcacs.front().target;
  auto tables = stratified.Tables(target);
  ASSERT_FALSE(tables.empty());
  size_t total = 0;
  for (const auto& stratum : tables) total += stratum.table.n();
  EXPECT_EQ(total, pre_->transactions.size());
  double pooled = stratified.MantelHaenszelRor(target);
  EXPECT_GE(pooled, 0.0);
}

TEST_F(PipelineTest, ClassAggregatedCorpusIsAnalyzable) {
  auto class_input =
      faers::AggregateToClasses(*pre_, faers::ClassMap::Curated());
  ASSERT_TRUE(class_input.ok());
  EXPECT_LT(class_input->stats.distinct_drugs, pre_->stats.distinct_drugs);
  core::AnalyzerOptions options;
  options.mining.min_support = 8;
  core::MarasAnalyzer analyzer(options);
  auto class_analysis = analyzer.Analyze(*class_input);
  ASSERT_TRUE(class_analysis.ok());
  EXPECT_GT(class_analysis->stats.mcac_count, 0u);
}

TEST_F(PipelineTest, JsonExportRoundTripsAndOrdersByRank) {
  core::ExportOptions options;
  options.max_clusters = 25;
  std::string text = core::ExportAnalysisToJson(
      *analysis_, pre_->items,
      core::RankingMethod::kExclusivenessConfidence, {}, options);
  auto parsed = json::Parse(text);
  ASSERT_TRUE(parsed.ok());
  const auto& clusters = parsed->Find("clusters")->as_array();
  ASSERT_LE(clusters.size(), 25u);
  double previous = 1e300;
  for (const auto& cluster : clusters) {
    double score = cluster.Find("score")->as_number();
    EXPECT_LE(score, previous);
    previous = score;
  }
}

TEST_F(PipelineTest, UserStudyRunsOnMinedClusters) {
  auto ranked = core::RankMcacs(analysis_->mcacs,
                                core::RankingMethod::kExclusivenessConfidence,
                                core::ExclusivenessOptions{});
  auto questions = study::BuildQuestions(ranked, pre_->items, /*decoys=*/3,
                                         /*seed=*/7);
  ASSERT_FALSE(questions.empty());
  study::StudyConfig config;
  config.participants = 30;
  study::UserStudySimulator sim(config);
  auto outcome = sim.Run(questions);
  EXPECT_EQ(outcome.questions.size(), questions.size());
  for (const auto& q : outcome.questions) {
    EXPECT_GE(q.glyph_accuracy, 0.0);
    EXPECT_LE(q.glyph_accuracy, 1.0);
  }
}

}  // namespace
}  // namespace maras
