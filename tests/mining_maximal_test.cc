#include "mining/maximal_itemsets.h"

#include <gtest/gtest.h>

#include "mining/closed_itemsets.h"
#include "mining/fpgrowth.h"
#include "util/random.h"

namespace maras::mining {
namespace {

FrequentItemsetResult MineAll(const TransactionDatabase& db,
                              size_t min_support) {
  auto result = FpGrowth(MiningOptions{.min_support = min_support}).Mine(db);
  EXPECT_TRUE(result.ok());
  return *std::move(result);
}

TEST(MaximalTest, SimpleExample) {
  TransactionDatabase db;
  db.Add({1, 2, 3});
  db.Add({1, 2, 3});
  db.Add({1, 2});
  auto all = MineAll(db, 2);
  FrequentItemsetResult maximal = FilterMaximal(all);
  // Only {1,2,3} is maximal: every other frequent set extends into it.
  ASSERT_EQ(maximal.size(), 1u);
  EXPECT_EQ(maximal.itemsets()[0].items, (Itemset{1, 2, 3}));
}

TEST(MaximalTest, DisjointMaximalSets) {
  TransactionDatabase db;
  db.Add({1, 2});
  db.Add({1, 2});
  db.Add({3, 4});
  db.Add({3, 4});
  auto all = MineAll(db, 2);
  FrequentItemsetResult maximal = FilterMaximal(all);
  EXPECT_EQ(maximal.size(), 2u);
  EXPECT_TRUE(maximal.ContainsItemset({1, 2}));
  EXPECT_TRUE(maximal.ContainsItemset({3, 4}));
}

TEST(MaximalTest, ContainmentChainOnRandomData) {
  // maximal ⊆ closed ⊆ frequent, with |maximal| <= |closed| <= |frequent|.
  maras::Rng rng(404);
  for (int trial = 0; trial < 8; ++trial) {
    TransactionDatabase db;
    for (int t = 0; t < 90; ++t) {
      Itemset txn;
      for (size_t i = 1 + rng.Uniform(6); i > 0; --i) {
        txn.push_back(static_cast<ItemId>(rng.Uniform(10)));
      }
      db.Add(std::move(txn));
    }
    auto all = MineAll(db, 2);
    FrequentItemsetResult closed = FilterClosed(all);
    FrequentItemsetResult maximal = FilterMaximal(all);
    EXPECT_LE(maximal.size(), closed.size());
    EXPECT_LE(closed.size(), all.size());
    EXPECT_TRUE(IsMaximalFamilySubsetOfClosed(all));
  }
}

TEST(MaximalTest, EveryFrequentSetHasMaximalSuperset) {
  maras::Rng rng(505);
  TransactionDatabase db;
  for (int t = 0; t < 70; ++t) {
    Itemset txn;
    for (size_t i = 1 + rng.Uniform(5); i > 0; --i) {
      txn.push_back(static_cast<ItemId>(rng.Uniform(8)));
    }
    db.Add(std::move(txn));
  }
  auto all = MineAll(db, 2);
  FrequentItemsetResult maximal = FilterMaximal(all);
  for (const auto& fi : all.itemsets()) {
    bool covered = false;
    for (const auto& mx : maximal.itemsets()) {
      if (IsSubset(fi.items, mx.items)) {
        covered = true;
        break;
      }
    }
    EXPECT_TRUE(covered) << ToString(fi.items);
  }
}

TEST(MaximalTest, MaximalSetsHaveNoFrequentSuperset) {
  maras::Rng rng(606);
  TransactionDatabase db;
  for (int t = 0; t < 70; ++t) {
    Itemset txn;
    for (size_t i = 1 + rng.Uniform(5); i > 0; --i) {
      txn.push_back(static_cast<ItemId>(rng.Uniform(8)));
    }
    db.Add(std::move(txn));
  }
  auto all = MineAll(db, 3);
  FrequentItemsetResult maximal = FilterMaximal(all);
  for (const auto& mx : maximal.itemsets()) {
    for (const auto& fi : all.itemsets()) {
      if (fi.items.size() > mx.items.size()) {
        EXPECT_FALSE(IsSubset(mx.items, fi.items))
            << ToString(mx.items) << " ⊂ " << ToString(fi.items);
      }
    }
  }
}

TEST(MaximalTest, EmptyResult) {
  FrequentItemsetResult empty;
  EXPECT_EQ(FilterMaximal(empty).size(), 0u);
}

}  // namespace
}  // namespace maras::mining
