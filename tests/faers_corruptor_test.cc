// Deterministic corruption-injection harness and its recovery invariants:
// the same seed always yields the same damage; strict ingestion fails fast
// on every fault kind; permissive ingestion recovers every untouched report
// byte-identically; quarantine accounting matches the injected faults
// one-to-one.

#include "faers/corruptor.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>

#include "faers/generator.h"

namespace maras::faers {
namespace {

QuarterDataset GenerateQuarter(uint64_t seed, size_t reports = 300) {
  GeneratorConfig config;
  config.seed = seed;
  config.n_reports = reports;
  config.n_drugs = 200;
  config.n_adrs = 80;
  SyntheticGenerator generator(config);
  auto dataset = generator.Generate();
  EXPECT_TRUE(dataset.ok());
  return *std::move(dataset);
}

AsciiQuarterFiles WriteQuarter(const QuarterDataset& dataset) {
  auto files = WriteAsciiQuarter(dataset);
  EXPECT_TRUE(files.ok());
  return *files;
}

IngestOptions PolicyOptions(IngestPolicy policy) {
  IngestOptions options;
  options.policy = policy;
  options.max_bad_row_fraction = 0.5;
  return options;
}

bool SameReport(const Report& a, const Report& b) {
  return a.case_id == b.case_id && a.case_version == b.case_version &&
         a.type == b.type && a.sex == b.sex && a.age == b.age &&
         a.country == b.country && a.drugs == b.drugs &&
         a.reactions == b.reactions;
}

TEST(CorruptorTest, SameSeedIsByteIdentical) {
  QuarterDataset dataset = GenerateQuarter(11);
  AsciiQuarterFiles clean = WriteQuarter(dataset);
  CorruptorConfig config;
  config.seed = 42;
  config.faults = AllRowFaults(2);
  auto first = Corruptor(config).Corrupt(clean, 2014, 1);
  auto second = Corruptor(config).Corrupt(clean, 2014, 1);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->files.demo, second->files.demo);
  EXPECT_EQ(first->files.drug, second->files.drug);
  EXPECT_EQ(first->files.reac, second->files.reac);
  ASSERT_EQ(first->faults.size(), second->faults.size());
  for (size_t i = 0; i < first->faults.size(); ++i) {
    EXPECT_EQ(first->faults[i].file, second->faults[i].file);
    EXPECT_EQ(first->faults[i].line, second->faults[i].line);
    EXPECT_EQ(first->faults[i].detail, second->faults[i].detail);
  }
  EXPECT_EQ(first->faulted_primary_ids, second->faulted_primary_ids);
}

TEST(CorruptorTest, DifferentSeedsDiverge) {
  QuarterDataset dataset = GenerateQuarter(11);
  AsciiQuarterFiles clean = WriteQuarter(dataset);
  CorruptorConfig config;
  config.faults = AllRowFaults(2);
  config.seed = 1;
  auto first = Corruptor(config).Corrupt(clean, 2014, 1);
  config.seed = 2;
  auto second = Corruptor(config).Corrupt(clean, 2014, 1);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_NE(first->files.demo + first->files.drug + first->files.reac,
            second->files.demo + second->files.drug + second->files.reac);
}

TEST(CorruptorTest, FaultsNeverShareAReport) {
  QuarterDataset dataset = GenerateQuarter(23);
  AsciiQuarterFiles clean = WriteQuarter(dataset);
  CorruptorConfig config;
  config.seed = 7;
  config.faults = AllRowFaults(3);
  auto corrupted = Corruptor(config).Corrupt(clean, 2014, 1);
  ASSERT_TRUE(corrupted.ok());
  EXPECT_EQ(corrupted->RowFaultCount(), 24u);
  // One fault per victim report: the damaged-report set is as large as the
  // number of faults that damage existing rows (orphans damage nobody).
  size_t victim_faults = 0;
  for (const InjectedFault& fault : corrupted->faults) {
    victim_faults += fault.primary_id != 0;
  }
  EXPECT_EQ(corrupted->faulted_primary_ids.size(), victim_faults);
}

struct KindCase {
  FaultKind kind;
  RowFault expected;
};

class FaultKindTest : public ::testing::TestWithParam<KindCase> {};

TEST_P(FaultKindTest, SingleFaultRoundTrip) {
  const KindCase param = GetParam();
  QuarterDataset dataset = GenerateQuarter(31);
  AsciiQuarterFiles clean = WriteQuarter(dataset);
  CorruptorConfig config;
  config.seed = 99;
  config.faults = {{param.kind, 1}};
  auto corrupted = Corruptor(config).Corrupt(clean, 2014, 1);
  ASSERT_TRUE(corrupted.ok());
  ASSERT_EQ(corrupted->faults.size(), 1u);

  // Strict mode fails fast on every fault kind.
  EXPECT_TRUE(ReadAsciiQuarter(corrupted->files, 2014, 1)
                  .status()
                  .IsCorruption())
      << FaultKindName(param.kind);

  // Quarantine mode recovers and attributes exactly one root-cause fault of
  // the expected classification, naming the damaged file and line.
  IngestReport report;
  auto parsed = ReadAsciiQuarter(corrupted->files, 2014, 1,
                                 PolicyOptions(IngestPolicy::kQuarantine),
                                 &report);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(report.FaultCount(), 1u);
  const QuarantinedRow* root = nullptr;
  for (const QuarantinedRow& row : report.quarantined) {
    if (row.fault != RowFault::kCollateral) {
      ASSERT_EQ(root, nullptr) << "more than one root-cause row";
      root = &row;
    }
  }
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->fault, param.expected) << RowFaultName(root->fault);
  EXPECT_EQ(root->file, corrupted->faults[0].file);
  EXPECT_EQ(root->line, corrupted->faults[0].line);
  EXPECT_FALSE(root->reason.empty());
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, FaultKindTest,
    ::testing::Values(
        KindCase{FaultKind::kTruncateRow, RowFault::kMalformedRow},
        KindCase{FaultKind::kEmbeddedDelimiter, RowFault::kMalformedRow},
        KindCase{FaultKind::kDropColumn, RowFault::kMalformedRow},
        KindCase{FaultKind::kReorderColumns, RowFault::kBadCode},
        KindCase{FaultKind::kGarbageNumeric, RowFault::kBadNumeric},
        KindCase{FaultKind::kDuplicatePrimaryId,
                 RowFault::kDuplicatePrimaryId},
        KindCase{FaultKind::kOrphanDrugRow, RowFault::kOrphanRow},
        KindCase{FaultKind::kOrphanReacRow, RowFault::kOrphanRow}));

// The satellite round-trip invariant: generate, corrupt with N seeded
// faults, re-ingest under each policy, and assert the recovery rate and
// quarantine accounting across seeds.
class RecoverySweepTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RecoverySweepTest, InvariantsHoldAtEverySeed) {
  const uint64_t seed = GetParam();
  QuarterDataset dataset = GenerateQuarter(seed, 400);
  AsciiQuarterFiles clean = WriteQuarter(dataset);
  CorruptorConfig config;
  config.seed = seed * 1000003 + 17;
  config.faults = AllRowFaults(2);
  auto corrupted = Corruptor(config).Corrupt(clean, 2014, 1);
  ASSERT_TRUE(corrupted.ok());
  const size_t injected = corrupted->RowFaultCount();
  ASSERT_EQ(injected, 16u);

  // Strict: fail fast, nothing recovered.
  EXPECT_TRUE(ReadAsciiQuarter(corrupted->files, 2014, 1)
                  .status()
                  .IsCorruption());

  // Permissive: every untouched report is recovered byte-identically.
  IngestReport permissive_report;
  auto permissive = ReadAsciiQuarter(corrupted->files, 2014, 1,
                                     PolicyOptions(IngestPolicy::kPermissive),
                                     &permissive_report);
  ASSERT_TRUE(permissive.ok()) << permissive.status().ToString();
  std::map<uint64_t, const Report*> recovered;
  for (const Report& r : permissive->reports) {
    recovered[r.primary_id()] = &r;
  }
  size_t untouched = 0;
  for (const Report& original : dataset.reports) {
    if (corrupted->faulted_primary_ids.count(original.primary_id()) > 0) {
      continue;
    }
    ++untouched;
    auto it = recovered.find(original.primary_id());
    ASSERT_NE(it, recovered.end())
        << "untouched report " << original.primary_id() << " lost";
    EXPECT_TRUE(SameReport(original, *it->second))
        << "untouched report " << original.primary_id() << " altered";
  }
  EXPECT_EQ(untouched, dataset.reports.size() -
                           corrupted->faulted_primary_ids.size());
  EXPECT_EQ(permissive_report.FaultCount(), injected);
  EXPECT_TRUE(permissive_report.quarantined.empty());

  // Quarantine: diagnostics enumerate every injected fault with
  // file/line/reason, and collateral rows are classified apart.
  IngestReport quarantine_report;
  auto quarantined = ReadAsciiQuarter(
      corrupted->files, 2014, 1, PolicyOptions(IngestPolicy::kQuarantine),
      &quarantine_report);
  ASSERT_TRUE(quarantined.ok());
  EXPECT_EQ(quarantine_report.FaultCount(), injected);
  std::map<std::pair<std::string, size_t>, size_t> quarantined_at;
  size_t roots = 0;
  for (const QuarantinedRow& row : quarantine_report.quarantined) {
    EXPECT_FALSE(row.file.empty());
    EXPECT_GT(row.line, 0u);
    EXPECT_FALSE(row.reason.empty());
    if (row.fault != RowFault::kCollateral) {
      ++roots;
      ++quarantined_at[{row.file, row.line}];
    }
  }
  EXPECT_EQ(roots, injected);
  for (const InjectedFault& fault : corrupted->faults) {
    auto it = quarantined_at.find({fault.file, fault.line});
    ASSERT_NE(it, quarantined_at.end())
        << FaultKindName(fault.kind) << " at " << fault.file << ":"
        << fault.line << " not quarantined";
    EXPECT_EQ(it->second, 1u);
  }

  // Both lenient policies agree on the recovered dataset.
  ASSERT_EQ(quarantined->reports.size(), permissive->reports.size());
  EXPECT_EQ(quarantine_report.rows_rejected,
            permissive_report.rows_rejected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RecoverySweepTest,
                         ::testing::Values(3, 57, 191, 4242, 90210));

TEST(CorruptorDirTest, MissingFileFaultRemovesTheFileOnDisk) {
  std::string dir = ::testing::TempDir();
  QuarterDataset dataset = GenerateQuarter(5, 50);
  dataset.year = 2017;
  dataset.quarter = 2;
  AsciiQuarterFiles clean = WriteQuarter(dataset);
  CorruptorConfig config;
  config.seed = 12;
  config.faults = {{FaultKind::kMissingFile, 1}};
  auto corrupted = Corruptor(config).Corrupt(clean, 2017, 2);
  ASSERT_TRUE(corrupted.ok());
  ASSERT_EQ(corrupted->missing.size(), 1u);
  ASSERT_TRUE(
      WriteCorruptedQuarterToDir(*corrupted, dir, 2017, 2).ok());
  auto parsed = ReadAsciiQuarterFromDir(dir, 2017, 2);
  ASSERT_FALSE(parsed.ok());
  EXPECT_TRUE(parsed.status().IsIOError());
  EXPECT_NE(parsed.status().message().find(corrupted->missing[0]),
            std::string::npos);
  for (const char* name : {"DEMO17Q2.txt", "DRUG17Q2.txt", "REAC17Q2.txt"}) {
    std::remove((dir + "/" + name).c_str());
  }
}

TEST(CorruptorTest, RequestingTooManyFaultsFailsCleanly) {
  QuarterDataset dataset = GenerateQuarter(1, 5);
  AsciiQuarterFiles clean = WriteQuarter(dataset);
  CorruptorConfig config;
  // The generator pads small configs with default signal reports, so ask
  // for more faults than any plausible quarter of this size can host.
  config.faults = {{FaultKind::kGarbageNumeric, 100000}};
  auto corrupted = Corruptor(config).Corrupt(clean, 2014, 1);
  ASSERT_FALSE(corrupted.ok());
  EXPECT_TRUE(corrupted.status().IsInvalidArgument());
}

// --- Torn-file primitives (shared with the checkpoint crash harness) ------

TEST(TornFileTest, TearIsDeterministicPerSeed) {
  QuarterDataset dataset = GenerateQuarter(23, 60);
  AsciiQuarterFiles clean = WriteQuarter(dataset);
  auto first = TearFileMidRecord(clean.demo, 7);
  auto second = TearFileMidRecord(clean.demo, 7);
  ASSERT_TRUE(first.ok() && second.ok());
  EXPECT_EQ(first->offset, second->offset);
  EXPECT_EQ(first->content, second->content);
  auto other = TearFileMidRecord(clean.demo, 8);
  ASSERT_TRUE(other.ok());
  // Different seeds may collide on one file, but the tear must depend on
  // the seed, not only on the content.
  bool diverged = false;
  for (uint64_t seed = 8; seed < 16 && !diverged; ++seed) {
    auto torn = TearFileMidRecord(clean.demo, seed);
    ASSERT_TRUE(torn.ok());
    diverged = torn->offset != first->offset;
  }
  EXPECT_TRUE(diverged);
}

TEST(TornFileTest, CutLandsStrictlyInsideADataRow) {
  QuarterDataset dataset = GenerateQuarter(29, 60);
  AsciiQuarterFiles clean = WriteQuarter(dataset);
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    auto torn = TearFileMidRecord(clean.demo, seed);
    ASSERT_TRUE(torn.ok()) << seed;
    // The surviving prefix is a strict prefix of the original...
    ASSERT_LT(torn->offset, clean.demo.size()) << seed;
    EXPECT_EQ(torn->content, clean.demo.substr(0, torn->offset)) << seed;
    // ...whose final line is a non-empty fragment of a data row: the cut
    // never lands exactly on a line boundary and never in the header.
    EXPECT_NE(torn->content.back(), '\n') << seed;
    EXPECT_GT(torn->first_lost_line, 1u) << seed;
    EXPECT_NE(torn->damaged_primary_id, 0u) << seed;
  }
}

TEST(TornFileTest, TornQuarterStillIngestsPermissively) {
  QuarterDataset dataset = GenerateQuarter(31, 80);
  AsciiQuarterFiles clean = WriteQuarter(dataset);
  auto torn = TearFileMidRecord(clean.drug, 5);
  ASSERT_TRUE(torn.ok());
  AsciiQuarterFiles damaged = clean;
  damaged.drug = torn->content;
  EXPECT_FALSE(ReadAsciiQuarter(damaged, 2014, 1).ok())
      << "a torn table must fail strict ingestion";
  IngestReport report;
  auto permissive = ReadAsciiQuarter(
      damaged, 2014, 1, PolicyOptions(IngestPolicy::kPermissive), &report);
  ASSERT_TRUE(permissive.ok()) << permissive.status().ToString();
  EXPECT_GT(report.rows_rejected, 0u);
}

TEST(TornFileTest, ContentWithoutDataRowsIsRejected) {
  EXPECT_TRUE(TearFileMidRecord("", 1).status().IsInvalidArgument());
  EXPECT_TRUE(
      TearFileMidRecord("primaryid$caseid\n", 1).status().IsInvalidArgument());
}

TEST(TruncateFileAtTest, TruncatesToExactOffset) {
  std::string path = ::testing::TempDir() + "/maras_truncate_test.txt";
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "0123456789";
  }
  ASSERT_TRUE(TruncateFileAt(path, 4).ok());
  EXPECT_EQ(std::filesystem::file_size(path), 4u);
  std::ifstream in(path, std::ios::binary);
  std::string bytes(std::istreambuf_iterator<char>(in),
                    std::istreambuf_iterator<char>{});
  EXPECT_EQ(bytes, "0123");
  std::filesystem::remove(path);
}

TEST(TruncateFileAtTest, OffsetPastEndIsInvalidArgument) {
  std::string path = ::testing::TempDir() + "/maras_truncate_short.txt";
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "abc";
  }
  auto status = TruncateFileAt(path, 99);
  EXPECT_TRUE(status.IsInvalidArgument()) << status.ToString();
  EXPECT_NE(status.ToString().find(path), std::string::npos);
  std::filesystem::remove(path);
}

TEST(TruncateFileAtTest, MissingFileIsAnError) {
  EXPECT_FALSE(
      TruncateFileAt(::testing::TempDir() + "/maras_no_such_file", 0).ok());
}

}  // namespace
}  // namespace maras::faers
