#include "viz/svg.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "viz/color.h"

namespace maras::viz {
namespace {

TEST(SvgTest, EmptyDocumentIsValidSvg) {
  SvgDocument doc(100, 50);
  std::string svg = doc.Render();
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("width=\"100.00\""), std::string::npos);
  EXPECT_NE(svg.find("height=\"50.00\""), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
}

TEST(SvgTest, CircleElement) {
  SvgDocument doc(10, 10);
  SvgDocument::Style style;
  style.fill = "#FF0000";
  doc.Circle(5, 5, 2.5, style);
  std::string svg = doc.Render();
  EXPECT_NE(svg.find("<circle cx=\"5.00\" cy=\"5.00\" r=\"2.50\""),
            std::string::npos);
  EXPECT_NE(svg.find("fill=\"#FF0000\""), std::string::npos);
}

TEST(SvgTest, RectLinePathText) {
  SvgDocument doc(10, 10);
  SvgDocument::Style stroke;
  stroke.stroke = "#000000";
  stroke.stroke_width = 1.5;
  doc.Rect(0, 1, 2, 3, stroke);
  doc.Line(0, 0, 5, 5, stroke);
  doc.Path("M 0 0 L 1 1 Z", stroke);
  SvgDocument::TextStyle text;
  text.bold = true;
  doc.Text(1, 2, "hello", text);
  std::string svg = doc.Render();
  EXPECT_NE(svg.find("<rect"), std::string::npos);
  EXPECT_NE(svg.find("<line"), std::string::npos);
  EXPECT_NE(svg.find("<path d=\"M 0 0 L 1 1 Z\""), std::string::npos);
  EXPECT_NE(svg.find(">hello</text>"), std::string::npos);
  EXPECT_NE(svg.find("font-weight=\"bold\""), std::string::npos);
  EXPECT_NE(svg.find("stroke-width=\"1.50\""), std::string::npos);
}

TEST(SvgTest, TextEscaping) {
  SvgDocument doc(10, 10);
  doc.Text(0, 0, "<a & \"b\">", {});
  std::string svg = doc.Render();
  EXPECT_NE(svg.find("&lt;a &amp; &quot;b&quot;&gt;"), std::string::npos);
  EXPECT_EQ(svg.find("<a &"), std::string::npos);
}

TEST(SvgTest, GroupsBalancedAndAutoClosed) {
  SvgDocument doc(10, 10);
  doc.BeginGroup(1, 2);
  doc.Circle(0, 0, 1, {});
  doc.EndGroup();
  std::string svg = doc.Render();
  EXPECT_NE(svg.find("translate(1.00,2.00)"), std::string::npos);
  EXPECT_NE(svg.find("</g>"), std::string::npos);

  SvgDocument open(10, 10);
  open.BeginGroup(0, 0);
  // Unclosed group still renders balanced markup.
  std::string svg2 = open.Render();
  size_t opens = 0, closes = 0, pos = 0;
  while ((pos = svg2.find("<g ", pos)) != std::string::npos) {
    ++opens;
    ++pos;
  }
  pos = 0;
  while ((pos = svg2.find("</g>", pos)) != std::string::npos) {
    ++closes;
    ++pos;
  }
  EXPECT_EQ(opens, closes);
}

TEST(SvgTest, OpacityEmittedOnlyWhenBelowOne) {
  SvgDocument doc(10, 10);
  SvgDocument::Style opaque;
  opaque.fill = "#111111";
  doc.Circle(0, 0, 1, opaque);
  SvgDocument::Style faint = opaque;
  faint.opacity = 0.4;
  doc.Circle(0, 0, 1, faint);
  std::string svg = doc.Render();
  EXPECT_EQ(svg.find("opacity"), svg.rfind("opacity"));  // exactly once
}

TEST(SvgTest, EmbedTransformsAndBalances) {
  SvgDocument inner(50, 50);
  inner.Circle(25, 25, 10, {});
  inner.BeginGroup(1, 1);  // deliberately left open
  inner.Rect(0, 0, 5, 5, {});
  SvgDocument outer(200, 100);
  outer.Embed(inner, 60, 10, 1.5);
  std::string svg = outer.Render();
  EXPECT_NE(svg.find("translate(60.00,10.00) scale(1.50)"),
            std::string::npos);
  EXPECT_NE(svg.find("<circle"), std::string::npos);
  // Balanced markup despite the inner document's open group.
  size_t opens = 0, closes = 0, pos = 0;
  while ((pos = svg.find("<g ", pos)) != std::string::npos) {
    ++opens;
    ++pos;
  }
  pos = 0;
  while ((pos = svg.find("</g>", pos)) != std::string::npos) {
    ++closes;
    ++pos;
  }
  EXPECT_EQ(opens, closes);
  // The outer document itself still renders cleanly afterwards.
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
}

TEST(SvgTest, EmbedIsByValueSnapshot) {
  SvgDocument inner(10, 10);
  inner.Circle(1, 1, 1, {});
  SvgDocument outer(20, 20);
  outer.Embed(inner, 0, 0);
  inner.Circle(2, 2, 2, {});  // must not retroactively appear in outer
  size_t count = 0, pos = 0;
  std::string svg = outer.Render();
  while ((pos = svg.find("<circle", pos)) != std::string::npos) {
    ++count;
    ++pos;
  }
  EXPECT_EQ(count, 1u);
}

TEST(SvgTest, WriteFile) {
  std::string path = ::testing::TempDir() + "/maras_svg_test.svg";
  SvgDocument doc(10, 10);
  doc.Circle(5, 5, 4, {});
  ASSERT_TRUE(doc.WriteFile(path).ok());
  std::remove(path.c_str());
}

TEST(ColorTest, HexFormat) {
  EXPECT_EQ((Color{255, 0, 128}).ToHex(), "#FF0080");
  EXPECT_EQ((Color{0, 0, 0}).ToHex(), "#000000");
}

TEST(ColorTest, MixEndpoints) {
  Color a{0, 0, 0}, b{200, 100, 50};
  EXPECT_EQ(a.Mix(b, 0.0), a);
  EXPECT_EQ(a.Mix(b, 1.0), b);
  Color mid = a.Mix(b, 0.5);
  EXPECT_NEAR(mid.r, 100, 1);
  EXPECT_NEAR(mid.g, 50, 1);
  EXPECT_NEAR(mid.b, 25, 1);
}

TEST(ColorTest, LevelColorsDarkenWithCardinality) {
  // "The darker the larger": higher level -> lower channel values.
  Color l1 = LevelColor(1, 3);
  Color l2 = LevelColor(2, 3);
  Color l3 = LevelColor(3, 3);
  EXPECT_GT(l1.r + l1.g + l1.b, l2.r + l2.g + l2.b);
  EXPECT_GT(l2.r + l2.g + l2.b, l3.r + l3.g + l3.b);
}

TEST(ColorTest, SingleLevelIsDark) {
  EXPECT_EQ(LevelColor(1, 1), (Color{8, 48, 107}));
}

}  // namespace
}  // namespace maras::viz
