// QueryEngine tests: every answer must be byte-identical to querying the
// in-memory analyzer output directly — top-k is the ranked prefix, postings
// equal a brute-force scan over the ranked targets, and drill-down returns
// exactly SupportingReports.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/checkpoint.h"
#include "mining/itemset.h"
#include "serve/query_engine.h"
#include "serve/snapshot_reader.h"
#include "serve/snapshot_writer.h"
#include "serve_test_util.h"

namespace maras::serve {
namespace {

using ::maras::test::InputsOf;
using ::maras::test::MakeServeFixture;
using ::maras::test::ServeFixture;

class QueryEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fixture_ = MakeServeFixture(/*extended=*/true);
    auto bytes = EncodeSignalSnapshot(InputsOf(fixture_));
    ASSERT_TRUE(bytes.ok()) << bytes.status().ToString();
    auto snapshot = SignalSnapshot::FromBytes(std::move(*bytes));
    ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
    auto engine = QueryEngine::Create(
        std::make_shared<const SignalSnapshot>(std::move(*snapshot)));
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    engine_ = std::make_unique<QueryEngine>(std::move(*engine));
  }

  // Brute force over the analyzer output: ranked signal indices whose
  // target mentions `name` on `side`.
  std::vector<uint32_t> ScanAnalyzer(const std::string& name,
                                     mining::ItemDomain side) const {
    std::vector<uint32_t> out;
    auto id = fixture_.corpus.items.Lookup(name);
    if (!id.ok()) return out;
    for (size_t s = 0; s < fixture_.ranked.size(); ++s) {
      const core::DrugAdrRule& target = fixture_.ranked[s].mcac.target;
      const mining::Itemset& set =
          side == mining::ItemDomain::kDrug ? target.drugs : target.adrs;
      if (mining::Contains(set, *id)) {
        out.push_back(static_cast<uint32_t>(s));
      }
    }
    return out;
  }

  ServeFixture fixture_;
  std::unique_ptr<QueryEngine> engine_;
};

TEST_F(QueryEngineTest, TopKIsTheRankedPrefix) {
  const uint32_t n = engine_->snapshot().counts().signals;
  ASSERT_GE(n, 2u);
  EXPECT_TRUE(engine_->TopK(0).empty());
  const std::vector<uint32_t> one = engine_->TopK(1);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], 0u);
  const std::vector<uint32_t> all = engine_->TopK(n + 100);
  ASSERT_EQ(all.size(), n);
  for (uint32_t i = 0; i < n; ++i) EXPECT_EQ(all[i], i);
  // Rank order in the snapshot is the analyzer's rank order: scores
  // descending, and each entry materializes to the analyzer's value.
  for (uint32_t i = 0; i + 1 < n; ++i) {
    SignalRecord a, b;
    ASSERT_TRUE(engine_->snapshot().Signal(i, &a).ok());
    ASSERT_TRUE(engine_->snapshot().Signal(i + 1, &b).ok());
    EXPECT_GE(a.score, b.score);
  }
}

TEST_F(QueryEngineTest, AllAnswersByteIdenticalToAnalyzer) {
  std::vector<core::RankedMcac> materialized;
  for (uint32_t s : engine_->TopK(engine_->snapshot().counts().signals)) {
    auto ranked = engine_->Materialize(s);
    ASSERT_TRUE(ranked.ok()) << ranked.status().ToString();
    materialized.push_back(std::move(*ranked));
  }
  EXPECT_EQ(core::EncodeRankedMcacs(materialized),
            core::EncodeRankedMcacs(fixture_.ranked));
}

TEST_F(QueryEngineTest, SignalsForDrugMatchBruteForce) {
  for (const std::string name :
       {"XOLAIR", "SINGULAIR", "PREDNISONE", "ASPIRIN", "WARFARIN"}) {
    auto got = engine_->SignalsForDrug(name);
    ASSERT_TRUE(got.ok()) << name;
    EXPECT_EQ(*got, ScanAnalyzer(name, mining::ItemDomain::kDrug)) << name;
  }
  // Every signal is reachable through at least one of its target drugs.
  auto xolair = engine_->SignalsForDrug("XOLAIR");
  auto warfarin = engine_->SignalsForDrug("WARFARIN");
  ASSERT_TRUE(xolair.ok());
  ASSERT_TRUE(warfarin.ok());
  EXPECT_FALSE(xolair->empty());
  EXPECT_FALSE(warfarin->empty());
}

TEST_F(QueryEngineTest, SignalsForAdrMatchBruteForce) {
  for (const std::string name : {"ASTHMA", "BLEEDING", "RASH", "NAUSEA"}) {
    auto got = engine_->SignalsForAdr(name);
    ASSERT_TRUE(got.ok()) << name;
    EXPECT_EQ(*got, ScanAnalyzer(name, mining::ItemDomain::kAdr)) << name;
  }
}

TEST_F(QueryEngineTest, UnknownNameIsNotFound) {
  EXPECT_TRUE(engine_->SignalsForDrug("NO-SUCH-DRUG").status().IsNotFound());
  EXPECT_TRUE(engine_->SignalsForAdr("NO-SUCH-ADR").status().IsNotFound());
  EXPECT_TRUE(engine_->FindItem("").status().IsNotFound());
}

TEST_F(QueryEngineTest, WrongDomainNameHasNoPostings) {
  // ASTHMA is an ADR; asking for it as a drug is answerable (the item
  // exists) but matches nothing.
  auto got = engine_->SignalsForDrug("ASTHMA");
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got->empty());
}

TEST_F(QueryEngineTest, DrillDownMatchesSupportingReports) {
  for (uint32_t s : engine_->TopK(engine_->snapshot().counts().signals)) {
    auto got = engine_->SupportingReportIds(s);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got,
              core::SupportingReports(fixture_.corpus.db,
                                      fixture_.primary_ids,
                                      fixture_.ranked[s].mcac.target))
        << "signal " << s;
  }
}

TEST_F(QueryEngineTest, EngineOutlivesStoreSwaps) {
  // The engine pins its snapshot; dropping every other reference must not
  // invalidate the borrowed item names inside the index.
  auto bytes = EncodeSignalSnapshot(InputsOf(fixture_));
  ASSERT_TRUE(bytes.ok());
  std::unique_ptr<QueryEngine> engine;
  {
    auto snapshot = SignalSnapshot::FromBytes(std::move(*bytes));
    ASSERT_TRUE(snapshot.ok());
    auto created = QueryEngine::Create(
        std::make_shared<const SignalSnapshot>(std::move(*snapshot)));
    ASSERT_TRUE(created.ok());
    engine = std::make_unique<QueryEngine>(std::move(*created));
  }
  auto got = engine->SignalsForDrug("XOLAIR");
  ASSERT_TRUE(got.ok());
  EXPECT_FALSE(got->empty());
}

TEST(QueryEngineCreateTest, NullSnapshotIsInvalidArgument) {
  EXPECT_TRUE(QueryEngine::Create(nullptr).status().IsInvalidArgument());
}

TEST(QueryEngineLatticeTest, GeneralizeAndSpecializeWalkTheCoveringChain) {
  const ServeFixture fixture = maras::test::MakeLayeredServeFixture();
  auto bytes = EncodeSignalSnapshot(InputsOf(fixture));
  ASSERT_TRUE(bytes.ok()) << bytes.status().ToString();
  auto snapshot = SignalSnapshot::FromBytes(std::move(*bytes));
  ASSERT_TRUE(snapshot.ok());
  auto engine = QueryEngine::Create(
      std::make_shared<const SignalSnapshot>(std::move(*snapshot)));
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE(engine->HasLatticeNav());

  // Find the triple and pair signals by drug-set width.
  uint32_t triple = UINT32_MAX, pair = UINT32_MAX;
  for (uint32_t s = 0; s < fixture.ranked.size(); ++s) {
    const size_t width = fixture.ranked[s].mcac.target.drugs.size();
    if (width == 3) triple = s;
    if (width == 2) pair = s;
  }
  ASSERT_NE(triple, UINT32_MAX);
  ASSERT_NE(pair, UINT32_MAX);

  auto up = engine->Generalize(triple);
  ASSERT_TRUE(up.ok());
  EXPECT_EQ(*up, std::vector<uint32_t>{pair});
  auto down = engine->Specialize(pair);
  ASSERT_TRUE(down.ok());
  EXPECT_EQ(*down, std::vector<uint32_t>{triple});
  // Chain ends: nothing above the pair, nothing below the triple.
  auto top = engine->Generalize(pair);
  ASSERT_TRUE(top.ok());
  EXPECT_TRUE(top->empty());
  auto bottom = engine->Specialize(triple);
  ASSERT_TRUE(bottom.ok());
  EXPECT_TRUE(bottom->empty());
}

TEST(QueryEngineLatticeTest, LatticeFreeSnapshotReportsNotFound) {
  const ServeFixture fixture = maras::test::MakeLayeredServeFixture();
  SnapshotInputs inputs = InputsOf(fixture);
  inputs.include_lattice = false;
  auto bytes = EncodeSignalSnapshot(inputs);
  ASSERT_TRUE(bytes.ok());
  auto snapshot = SignalSnapshot::FromBytes(std::move(*bytes));
  ASSERT_TRUE(snapshot.ok());
  auto engine = QueryEngine::Create(
      std::make_shared<const SignalSnapshot>(std::move(*snapshot)));
  ASSERT_TRUE(engine.ok());
  EXPECT_FALSE(engine->HasLatticeNav());
  EXPECT_TRUE(engine->Generalize(0).status().IsNotFound());
  EXPECT_TRUE(engine->Specialize(0).status().IsNotFound());
}

}  // namespace
}  // namespace maras::serve
