#include "core/checkpoint.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/multi_quarter.h"
#include "faers/corruptor.h"
#include "faers/generator.h"
#include "faers/preprocess.h"

namespace maras::core {
namespace {

namespace fs = std::filesystem;

std::string FreshDir(const std::string& tag) {
  std::string dir = ::testing::TempDir() + "/ckpt52_" + tag;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

// ---------------------------------------------------------------------------
// Framing: write/read, atomicity leftovers, and every rejection path.
// ---------------------------------------------------------------------------

TEST(CheckpointFramingTest, Fnv1a64KnownVectors) {
  EXPECT_EQ(Fnv1a64(""), 14695981039346656037ull);
  EXPECT_EQ(Fnv1a64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_NE(Fnv1a64("payload"), Fnv1a64("pbyload"));
}

TEST(CheckpointFramingTest, RoundTripsPayload) {
  std::string dir = FreshDir("roundtrip");
  std::string payload("stage bytes \0 with embedded nul", 31);
  ASSERT_TRUE(WriteCheckpoint(dir, "stage-a", payload).ok());
  auto read = ReadCheckpoint(dir, "stage-a");
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(*read, payload);
  // Atomic publish must not leave the temp file behind.
  EXPECT_FALSE(fs::exists(CheckpointPath(dir, "stage-a") + ".tmp"));
}

TEST(CheckpointFramingTest, OverwriteReplacesSnapshot) {
  std::string dir = FreshDir("overwrite");
  ASSERT_TRUE(WriteCheckpoint(dir, "stage-a", "old").ok());
  ASSERT_TRUE(WriteCheckpoint(dir, "stage-a", "new").ok());
  auto read = ReadCheckpoint(dir, "stage-a");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, "new");
}

TEST(CheckpointFramingTest, MissingSnapshotIsNotFound) {
  std::string dir = FreshDir("missing");
  auto read = ReadCheckpoint(dir, "absent");
  EXPECT_TRUE(read.status().IsNotFound()) << read.status().ToString();
  EXPECT_NE(read.status().ToString().find("absent"), std::string::npos);
}

TEST(CheckpointFramingTest, TornHeaderIsCorruptionNamingFileAndStage) {
  std::string dir = FreshDir("torn_header");
  ASSERT_TRUE(WriteCheckpoint(dir, "closed", "payload").ok());
  std::string path = CheckpointPath(dir, "closed");
  ASSERT_TRUE(faers::TruncateFileAt(path, 5).ok());
  auto read = ReadCheckpoint(dir, "closed");
  ASSERT_TRUE(read.status().IsCorruption()) << read.status().ToString();
  std::string message = read.status().ToString();
  EXPECT_NE(message.find(path), std::string::npos) << message;
  EXPECT_NE(message.find("closed"), std::string::npos) << message;
}

TEST(CheckpointFramingTest, TornPayloadIsCorruption) {
  std::string dir = FreshDir("torn_payload");
  ASSERT_TRUE(WriteCheckpoint(dir, "rules", "a longer stage payload").ok());
  std::string path = CheckpointPath(dir, "rules");
  size_t size = static_cast<size_t>(fs::file_size(path));
  ASSERT_TRUE(faers::TruncateFileAt(path, size - 3).ok());
  auto read = ReadCheckpoint(dir, "rules");
  EXPECT_TRUE(read.status().IsCorruption()) << read.status().ToString();
}

TEST(CheckpointFramingTest, BitFlipIsChecksumCorruption) {
  std::string dir = FreshDir("bitflip");
  ASSERT_TRUE(WriteCheckpoint(dir, "ranked", "sensitive payload").ok());
  std::string path = CheckpointPath(dir, "ranked");
  std::string bytes = ReadFileBytes(path);
  bytes.back() = static_cast<char>(bytes.back() ^ 0x01);
  WriteFileBytes(path, bytes);
  auto read = ReadCheckpoint(dir, "ranked");
  ASSERT_TRUE(read.status().IsCorruption()) << read.status().ToString();
  EXPECT_NE(read.status().ToString().find("checksum"), std::string::npos)
      << read.status().ToString();
}

TEST(CheckpointFramingTest, BadMagicIsCorruption) {
  std::string dir = FreshDir("magic");
  ASSERT_TRUE(WriteCheckpoint(dir, "closed", "payload").ok());
  std::string path = CheckpointPath(dir, "closed");
  std::string bytes = ReadFileBytes(path);
  bytes[0] = static_cast<char>(bytes[0] ^ 0xff);
  WriteFileBytes(path, bytes);
  EXPECT_TRUE(ReadCheckpoint(dir, "closed").status().IsCorruption());
}

TEST(CheckpointFramingTest, ForeignVersionIsCorruption) {
  std::string dir = FreshDir("version");
  ASSERT_TRUE(WriteCheckpoint(dir, "closed", "payload").ok());
  std::string path = CheckpointPath(dir, "closed");
  std::string bytes = ReadFileBytes(path);
  // The version field follows the 4-byte magic.
  bytes[4] = static_cast<char>(kCheckpointVersion + 42);
  WriteFileBytes(path, bytes);
  EXPECT_TRUE(ReadCheckpoint(dir, "closed").status().IsCorruption());
}

TEST(CheckpointFramingTest, MisfiledSnapshotIsStageMismatchCorruption) {
  std::string dir = FreshDir("misfiled");
  ASSERT_TRUE(WriteCheckpoint(dir, "rules", "payload").ok());
  // A snapshot copied under another stage's name must not be accepted.
  fs::copy_file(CheckpointPath(dir, "rules"), CheckpointPath(dir, "ranked"));
  auto read = ReadCheckpoint(dir, "ranked");
  ASSERT_TRUE(read.status().IsCorruption()) << read.status().ToString();
  EXPECT_NE(read.status().ToString().find("rules"), std::string::npos)
      << read.status().ToString();
}

// ---------------------------------------------------------------------------
// Payload codecs: bit-exact roundtrips and corruption rejection.
// ---------------------------------------------------------------------------

TEST(CheckpointCodecTest, ItemsetResultRoundTripsBitExactly) {
  mining::FrequentItemsetResult result;
  result.Add({1, 2, 3}, 10);
  result.Add({2}, 5);
  result.Add({4, 7}, 3);
  std::string encoded = EncodeItemsetResult(result);
  auto decoded = DecodeItemsetResult(encoded);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->size(), result.size());
  for (size_t i = 0; i < result.size(); ++i) {
    EXPECT_EQ(decoded->itemsets()[i].items, result.itemsets()[i].items);
    EXPECT_EQ(decoded->itemsets()[i].support, result.itemsets()[i].support);
  }
  EXPECT_EQ(EncodeItemsetResult(*decoded), encoded);
}

TEST(CheckpointCodecTest, RulesRoundTripDoublesBitExactly) {
  DrugAdrRule rule;
  rule.drugs = {3, 9};
  rule.adrs = {14};
  rule.support = 21;
  rule.antecedent_support = 30;
  rule.consequent_support = 44;
  rule.confidence = 0.1 + 0.2;  // 0.30000000000000004 — not representable
  rule.lift = 1.0 / 3.0;        // exactly, so bit-fidelity matters
  std::string encoded = EncodeRules({rule});
  auto decoded = DecodeRules(encoded);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->size(), 1u);
  EXPECT_EQ((*decoded)[0].drugs, rule.drugs);
  EXPECT_EQ((*decoded)[0].adrs, rule.adrs);
  EXPECT_EQ((*decoded)[0].confidence, rule.confidence);
  EXPECT_EQ((*decoded)[0].lift, rule.lift);
  EXPECT_EQ(EncodeRules(*decoded), encoded);
}

TEST(CheckpointCodecTest, RankedMcacsRoundTrip) {
  DrugAdrRule target;
  target.drugs = {1, 2};
  target.adrs = {5};
  target.support = 9;
  target.confidence = 0.75;
  DrugAdrRule context = target;
  context.drugs = {1};
  Mcac mcac;
  mcac.target = target;
  mcac.levels = {{context}};
  RankedMcac ranked{mcac, 0.625};
  std::string encoded = EncodeRankedMcacs({ranked});
  auto decoded = DecodeRankedMcacs(encoded);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->size(), 1u);
  EXPECT_EQ((*decoded)[0].score, 0.625);
  EXPECT_EQ((*decoded)[0].mcac.target.drugs, target.drugs);
  ASSERT_EQ((*decoded)[0].mcac.levels.size(), 1u);
  EXPECT_EQ((*decoded)[0].mcac.levels[0][0].drugs, context.drugs);
  EXPECT_EQ(EncodeRankedMcacs(*decoded), encoded);
}

TEST(CheckpointCodecTest, ClosedCheckpointRoundTrip) {
  ClosedCheckpoint closed;
  closed.stats = {100, 40, 30, 12};
  closed.min_support_used = 24;
  closed.truncated = true;
  closed.notes = {"memory budget exhausted at min_support=12"};
  closed.closed.Add({2, 6}, 24);
  std::string encoded = EncodeClosedCheckpoint(closed);
  auto decoded = DecodeClosedCheckpoint(encoded);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->stats.total_rules, 100u);
  EXPECT_EQ(decoded->stats.mcac_count, 12u);
  EXPECT_EQ(decoded->min_support_used, 24u);
  EXPECT_TRUE(decoded->truncated);
  EXPECT_EQ(decoded->notes, closed.notes);
  EXPECT_EQ(EncodeClosedCheckpoint(*decoded), encoded);
}

TEST(CheckpointCodecTest, PreprocessResultRoundTripsGeneratedQuarter) {
  faers::GeneratorConfig config;
  config.year = 2052;
  config.quarter = 4;
  config.n_reports = 200;
  config.n_drugs = 60;
  config.n_adrs = 30;
  config.seed = 4242;
  auto dataset = faers::SyntheticGenerator(config).Generate();
  ASSERT_TRUE(dataset.ok());
  faers::Preprocessor preprocessor{faers::PreprocessOptions{}};
  auto pre = preprocessor.Process(*dataset);
  ASSERT_TRUE(pre.ok());
  std::string encoded = EncodePreprocessResult(*pre);
  auto decoded = DecodePreprocessResult(encoded);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->items.size(), pre->items.size());
  EXPECT_EQ(decoded->transactions.size(), pre->transactions.size());
  EXPECT_EQ(decoded->primary_ids, pre->primary_ids);
  EXPECT_EQ(decoded->stats.reports_kept, pre->stats.reports_kept);
  EXPECT_EQ(EncodePreprocessResult(*decoded), encoded);
}

TEST(CheckpointCodecTest, QuarterCheckpointRoundTripsSkippedQuarter) {
  QuarterCheckpoint quarter;
  quarter.outcome.label = "2052Q9";
  quarter.outcome.loaded = false;
  quarter.outcome.error = "validation failed";
  quarter.outcome.ingest.warnings.push_back("skipping quarter 2052Q9");
  std::string encoded = EncodeQuarterCheckpoint(quarter);
  auto decoded = DecodeQuarterCheckpoint(encoded);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->outcome.label, "2052Q9");
  EXPECT_FALSE(decoded->outcome.loaded);
  EXPECT_EQ(decoded->outcome.error, "validation failed");
  EXPECT_FALSE(decoded->result.has_value());
  EXPECT_EQ(EncodeQuarterCheckpoint(*decoded), encoded);
}

TEST(CheckpointCodecTest, TruncatedPayloadIsCorruption) {
  mining::FrequentItemsetResult result;
  result.Add({1, 2, 3}, 10);
  std::string encoded = EncodeItemsetResult(result);
  auto decoded =
      DecodeItemsetResult(std::string_view(encoded).substr(0, encoded.size() - 2));
  EXPECT_TRUE(decoded.status().IsCorruption()) << decoded.status().ToString();
}

TEST(CheckpointCodecTest, TrailingGarbageIsCorruption) {
  std::string encoded = EncodeRules({});
  encoded += "extra";
  EXPECT_TRUE(DecodeRules(encoded).status().IsCorruption());
}

// ---------------------------------------------------------------------------
// Crash injection + resume. A run killed at any stage boundary — leaving
// exactly the checkpoints written so far — must resume to a result
// byte-identical to an uninterrupted run, at any thread count.
// ---------------------------------------------------------------------------

std::vector<faers::QuarterDataset> MakeQuarters(uint64_t seed) {
  std::vector<faers::QuarterDataset> quarters;
  for (int q = 1; q <= 3; ++q) {
    faers::GeneratorConfig config;
    config.year = 2052;
    config.quarter = q;
    config.n_reports = 900;
    config.n_drugs = 200;
    config.n_adrs = 100;
    config.seed = seed + static_cast<uint64_t>(q);
    auto dataset = faers::SyntheticGenerator(config).Generate();
    EXPECT_TRUE(dataset.ok());
    quarters.push_back(*std::move(dataset));
  }
  return quarters;
}

AnalyzerOptions HarnessAnalyzer(size_t num_threads) {
  AnalyzerOptions analyzer;
  analyzer.mining.min_support = 6;
  analyzer.mining.num_threads = num_threads;
  return analyzer;
}

struct StageEncodings {
  std::string closed;
  std::string rules;
  std::string ranked;
};

StageEncodings Encode(const SurveillanceAnalysis& analysis) {
  return {EncodeItemsetResult(analysis.closed), EncodeRules(analysis.rules),
          EncodeRankedMcacs(analysis.ranked)};
}

void ExpectIdentical(const StageEncodings& got, const StageEncodings& want) {
  EXPECT_EQ(got.closed, want.closed) << "closed family diverged";
  EXPECT_EQ(got.rules, want.rules) << "rule set diverged";
  EXPECT_EQ(got.ranked, want.ranked) << "MCAC ranking diverged";
}

class CheckpointResumeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    quarters_ = new std::vector<faers::QuarterDataset>(MakeQuarters(8100));
    MultiQuarterPipeline pipeline{MultiQuarterOptions{}};
    auto reference = pipeline.RunAnalyzed(*quarters_, HarnessAnalyzer(1));
    ASSERT_TRUE(reference.ok()) << reference.status().ToString();
    ASSERT_GT(reference->ranked.size(), 0u)
        << "harness corpus must produce MCACs or identity checks are vacuous";
    reference_ = new StageEncodings(Encode(*reference));
  }
  static void TearDownTestSuite() {
    delete quarters_;
    delete reference_;
  }

  static std::vector<faers::QuarterDataset>* quarters_;
  static StageEncodings* reference_;
};

std::vector<faers::QuarterDataset>* CheckpointResumeTest::quarters_ = nullptr;
StageEncodings* CheckpointResumeTest::reference_ = nullptr;

MultiQuarterOptions CheckpointedOptions(const std::string& dir,
                                        size_t num_threads) {
  MultiQuarterOptions options;
  options.num_threads = num_threads;
  options.checkpoint_dir = dir;
  return options;
}

// Kills the run at `crash_stage` (after its checkpoint landed), then resumes
// and asserts the final product is byte-identical to the reference.
void CrashThenResume(const std::vector<faers::QuarterDataset>& quarters,
                     const StageEncodings& reference,
                     const std::string& crash_stage, size_t num_threads,
                     const std::string& tag) {
  std::string dir = FreshDir(tag);

  MultiQuarterOptions crash = CheckpointedOptions(dir, num_threads);
  crash.stage_hook = [&crash_stage](const std::string& stage) {
    return stage != crash_stage;
  };
  auto killed =
      MultiQuarterPipeline(crash).RunAnalyzed(quarters,
                                              HarnessAnalyzer(num_threads));
  ASSERT_TRUE(killed.status().IsCancelled()) << killed.status().ToString();
  EXPECT_NE(killed.status().ToString().find("injected crash"),
            std::string::npos)
      << killed.status().ToString();
  ASSERT_TRUE(fs::exists(CheckpointPath(dir, crash_stage)))
      << "crash fired before its stage checkpoint landed";

  MultiQuarterOptions retry = CheckpointedOptions(dir, num_threads);
  retry.resume = true;
  auto resumed =
      MultiQuarterPipeline(retry).RunAnalyzed(quarters,
                                              HarnessAnalyzer(num_threads));
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_GT(resumed->stages_resumed, 0u);
  ExpectIdentical(Encode(*resumed), reference);
}

TEST_F(CheckpointResumeTest, CrashAtEveryStageBoundarySerial) {
  const std::vector<std::string> stages = {"quarter-2052Q1", "quarter-2052Q3",
                                           "closed", "rules", "ranked"};
  for (const std::string& stage : stages) {
    SCOPED_TRACE(stage);
    CrashThenResume(*quarters_, *reference_, stage, 1, "crash_t1_" + stage);
  }
}

TEST_F(CheckpointResumeTest, CrashAtEveryStageBoundaryParallel) {
  const std::vector<std::string> stages = {"quarter-2052Q2", "closed", "rules",
                                           "ranked"};
  for (const std::string& stage : stages) {
    SCOPED_TRACE(stage);
    CrashThenResume(*quarters_, *reference_, stage, 8, "crash_t8_" + stage);
  }
}

TEST_F(CheckpointResumeTest, ResumeAfterFullRunReplaysEveryStage) {
  std::string dir = FreshDir("full_replay");
  auto first = MultiQuarterPipeline(CheckpointedOptions(dir, 1))
                   .RunAnalyzed(*quarters_, HarnessAnalyzer(1));
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first->stages_resumed, 0u);

  MultiQuarterOptions retry = CheckpointedOptions(dir, 8);
  retry.resume = true;
  // A resumed run must never fire the crash hook for replayed stages.
  retry.stage_hook = [](const std::string&) { return false; };
  auto replay = MultiQuarterPipeline(retry).RunAnalyzed(*quarters_,
                                                        HarnessAnalyzer(8));
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  // 3 quarters + closed + rules + ranked.
  EXPECT_EQ(replay->stages_resumed, 6u);
  ExpectIdentical(Encode(*replay), *reference_);
}

TEST_F(CheckpointResumeTest, TornSnapshotIsRejectedAndRecomputed) {
  std::string dir = FreshDir("torn_resume");
  auto first = MultiQuarterPipeline(CheckpointedOptions(dir, 1))
                   .RunAnalyzed(*quarters_, HarnessAnalyzer(1));
  ASSERT_TRUE(first.ok()) << first.status().ToString();

  // Tear the closed-stage snapshot mid-file, as a crash inside a non-atomic
  // writer would have.
  std::string path = CheckpointPath(dir, "closed");
  size_t size = static_cast<size_t>(fs::file_size(path));
  ASSERT_TRUE(faers::TruncateFileAt(path, size / 2).ok());

  MultiQuarterOptions retry = CheckpointedOptions(dir, 1);
  retry.resume = true;
  auto resumed = MultiQuarterPipeline(retry).RunAnalyzed(*quarters_,
                                                         HarnessAnalyzer(1));
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  bool noted = false;
  for (const std::string& note : resumed->notes) {
    if (note.find("rejected") != std::string::npos &&
        note.find("closed") != std::string::npos) {
      noted = true;
      EXPECT_NE(note.find("recomputing"), std::string::npos) << note;
    }
  }
  EXPECT_TRUE(noted) << "no note names the rejected snapshot";
  ExpectIdentical(Encode(*resumed), *reference_);
  // The recomputed stage must republish a valid snapshot.
  EXPECT_TRUE(ReadCheckpoint(dir, "closed").ok());
}

TEST_F(CheckpointResumeTest, BitFlippedSnapshotIsRejectedAndRecomputed) {
  std::string dir = FreshDir("flip_resume");
  auto first = MultiQuarterPipeline(CheckpointedOptions(dir, 1))
                   .RunAnalyzed(*quarters_, HarnessAnalyzer(1));
  ASSERT_TRUE(first.ok()) << first.status().ToString();

  std::string path = CheckpointPath(dir, "rules");
  std::string bytes = ReadFileBytes(path);
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x10);
  WriteFileBytes(path, bytes);

  MultiQuarterOptions retry = CheckpointedOptions(dir, 1);
  retry.resume = true;
  auto resumed = MultiQuarterPipeline(retry).RunAnalyzed(*quarters_,
                                                         HarnessAnalyzer(1));
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  bool noted = false;
  for (const std::string& note : resumed->notes) {
    noted = noted || (note.find("rejected") != std::string::npos &&
                      note.find("rules") != std::string::npos);
  }
  EXPECT_TRUE(noted) << "no note names the rejected snapshot";
  ExpectIdentical(Encode(*resumed), *reference_);
}

// A second corpus seed: the identity guarantee is a property of the
// machinery, not of one lucky dataset.
TEST(CheckpointResumeSeedsTest, CrashResumeIdentityHoldsAcrossSeeds) {
  for (uint64_t seed : {31337ull, 977ull}) {
    SCOPED_TRACE(seed);
    auto quarters = MakeQuarters(seed);
    MultiQuarterPipeline pipeline{MultiQuarterOptions{}};
    auto reference = pipeline.RunAnalyzed(quarters, HarnessAnalyzer(1));
    ASSERT_TRUE(reference.ok()) << reference.status().ToString();
    CrashThenResume(quarters, Encode(*reference), "closed", 8,
                    "seed_" + std::to_string(seed));
  }
}

}  // namespace
}  // namespace maras::core
