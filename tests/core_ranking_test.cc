#include "core/ranking.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace maras::core {
namespace {

Mcac SimpleMcac(double target_conf, double target_lift, double context_conf,
                size_t support = 10) {
  Mcac mcac;
  mcac.target.drugs = {0, 1};
  mcac.target.adrs = {100};
  mcac.target.confidence = target_conf;
  mcac.target.lift = target_lift;
  mcac.target.support = support;
  DrugAdrRule context;
  context.drugs = {0};
  context.adrs = {100};
  context.confidence = context_conf;
  context.lift = context_conf * 5.0;
  mcac.levels.push_back({context});
  return mcac;
}

TEST(RankingTest, ConfidenceMethodUsesTargetConfidence) {
  ExclusivenessOptions options;
  Mcac mcac = SimpleMcac(0.7, 3.0, 0.1);
  EXPECT_DOUBLE_EQ(ScoreMcac(mcac, RankingMethod::kConfidence, options), 0.7);
  EXPECT_DOUBLE_EQ(ScoreMcac(mcac, RankingMethod::kLift, options), 3.0);
}

TEST(RankingTest, ExclusivenessMethodsOverrideMeasure) {
  ExclusivenessOptions options;
  options.theta = 0.0;
  // Even when options say lift, the confidence method uses confidence.
  options.measure = RuleMeasure::kLift;
  Mcac mcac = SimpleMcac(0.7, 3.0, 0.1);
  EXPECT_NEAR(
      ScoreMcac(mcac, RankingMethod::kExclusivenessConfidence, options),
      0.7 - 0.1, 1e-12);
  EXPECT_NEAR(ScoreMcac(mcac, RankingMethod::kExclusivenessLift, options),
              3.0 - 0.5, 1e-12);
}

TEST(RankingTest, ImprovementMethod) {
  ExclusivenessOptions options;
  Mcac mcac = SimpleMcac(0.7, 3.0, 0.4);
  EXPECT_NEAR(ScoreMcac(mcac, RankingMethod::kImprovement, options),
              0.7 - 0.4, 1e-12);
}

TEST(RankingTest, SortsDescendingByScore) {
  ExclusivenessOptions options;
  std::vector<Mcac> mcacs = {
      SimpleMcac(0.3, 1.0, 0.0),
      SimpleMcac(0.9, 1.0, 0.0),
      SimpleMcac(0.6, 1.0, 0.0),
  };
  auto ranked = RankMcacs(mcacs, RankingMethod::kConfidence, options);
  ASSERT_EQ(ranked.size(), 3u);
  EXPECT_DOUBLE_EQ(ranked[0].score, 0.9);
  EXPECT_DOUBLE_EQ(ranked[1].score, 0.6);
  EXPECT_DOUBLE_EQ(ranked[2].score, 0.3);
}

TEST(RankingTest, TieBreaksBySupportThenItems) {
  ExclusivenessOptions options;
  Mcac a = SimpleMcac(0.5, 1.0, 0.0, /*support=*/5);
  Mcac b = SimpleMcac(0.5, 1.0, 0.0, /*support=*/50);
  auto ranked = RankMcacs({a, b}, RankingMethod::kConfidence, options);
  EXPECT_EQ(ranked[0].mcac.target.support, 50u);

  // Equal score and support: smaller drug ids first.
  Mcac c = SimpleMcac(0.5, 1.0, 0.0, 5);
  c.target.drugs = {7, 9};
  auto ranked2 = RankMcacs({c, a}, RankingMethod::kConfidence, options);
  EXPECT_EQ(ranked2[0].mcac.target.drugs, (mining::Itemset{0, 1}));
}

TEST(RankingTest, DeterministicAcrossRuns) {
  ExclusivenessOptions options;
  std::vector<Mcac> mcacs;
  for (int i = 0; i < 20; ++i) {
    mcacs.push_back(SimpleMcac(0.5, 1.0, 0.0, 7));
    mcacs.back().target.drugs = {static_cast<mining::ItemId>(i),
                                 static_cast<mining::ItemId>(i + 30)};
  }
  auto r1 = RankMcacs(mcacs, RankingMethod::kExclusivenessConfidence, options);
  auto r2 = RankMcacs(mcacs, RankingMethod::kExclusivenessConfidence, options);
  for (size_t i = 0; i < r1.size(); ++i) {
    EXPECT_EQ(r1[i].mcac.target.drugs, r2[i].mcac.target.drugs);
  }
}

TEST(RankingTest, MethodNames) {
  EXPECT_STREQ(RankingMethodName(RankingMethod::kConfidence), "confidence");
  EXPECT_STREQ(RankingMethodName(RankingMethod::kLift), "lift");
  EXPECT_STREQ(RankingMethodName(RankingMethod::kExclusivenessConfidence),
               "exclusiveness+confidence");
  EXPECT_STREQ(RankingMethodName(RankingMethod::kExclusivenessLift),
               "exclusiveness+lift");
  EXPECT_STREQ(RankingMethodName(RankingMethod::kImprovement), "improvement");
}

TEST(RankingTest, ExclusivenessReordersRelativeToConfidence) {
  ExclusivenessOptions options;
  options.theta = 0.0;
  // High confidence but dominated context vs. lower confidence but exclusive.
  Mcac dominated = SimpleMcac(0.95, 1.0, 0.94);
  Mcac exclusive = SimpleMcac(0.80, 1.0, 0.02);
  auto by_conf =
      RankMcacs({dominated, exclusive}, RankingMethod::kConfidence, options);
  auto by_excl = RankMcacs({dominated, exclusive},
                           RankingMethod::kExclusivenessConfidence, options);
  EXPECT_DOUBLE_EQ(by_conf[0].mcac.target.confidence, 0.95);
  EXPECT_DOUBLE_EQ(by_excl[0].mcac.target.confidence, 0.80);
}

}  // namespace
}  // namespace maras::core
