// Round-trip, relocatability and hostile-bytes tests for the snapshot
// writer/reader pair. The adversarial sections enforce the serving-path
// failure model: EVERY single-byte corruption, truncation and
// checksum-consistent semantic forgery must surface as a structured
// non-OK Status — never a crash, never a partially usable snapshot.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/checkpoint.h"
#include "serve/snapshot_format.h"
#include "serve/snapshot_reader.h"
#include "serve/snapshot_writer.h"
#include "serve_test_util.h"

namespace maras::serve {
namespace {

using ::maras::test::InputsOf;
using ::maras::test::MakeServeFixture;
using ::maras::test::RestampChecksums;
using ::maras::test::ServeFixture;

std::string EncodeOrDie(const ServeFixture& fixture) {
  auto bytes = EncodeSignalSnapshot(InputsOf(fixture));
  EXPECT_TRUE(bytes.ok()) << bytes.status().ToString();
  return *bytes;
}

TEST(SnapshotRoundTripTest, CountsAndStatsSurvive) {
  const ServeFixture fixture = MakeServeFixture();
  auto snapshot = SignalSnapshot::FromBytes(EncodeOrDie(fixture));
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  EXPECT_EQ(snapshot->counts().signals, fixture.ranked.size());
  EXPECT_EQ(snapshot->counts().items, fixture.corpus.items.size());
  EXPECT_EQ(snapshot->stats().total_rules, fixture.stats.total_rules);
  EXPECT_EQ(snapshot->stats().filtered_rules, fixture.stats.filtered_rules);
  EXPECT_EQ(snapshot->stats().closed_mixed, fixture.stats.closed_mixed);
  EXPECT_EQ(snapshot->stats().mcac_count, fixture.stats.mcac_count);
}

TEST(SnapshotRoundTripTest, MaterializeIsByteIdenticalToAnalyzerOutput) {
  const ServeFixture fixture = MakeServeFixture();
  auto snapshot = SignalSnapshot::FromBytes(EncodeOrDie(fixture));
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  std::vector<core::RankedMcac> materialized;
  for (uint32_t s = 0; s < snapshot->counts().signals; ++s) {
    auto ranked = snapshot->Materialize(s);
    ASSERT_TRUE(ranked.ok()) << ranked.status().ToString();
    materialized.push_back(std::move(*ranked));
  }
  // The strongest equality available: the checkpoint codec serializes every
  // field (doubles as raw bits), so identical encodings mean identical
  // analyzer-side values.
  EXPECT_EQ(core::EncodeRankedMcacs(materialized),
            core::EncodeRankedMcacs(fixture.ranked));
}

TEST(SnapshotRoundTripTest, ReportIdsMatchSupportingReports) {
  const ServeFixture fixture = MakeServeFixture();
  auto snapshot = SignalSnapshot::FromBytes(EncodeOrDie(fixture));
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  for (uint32_t s = 0; s < snapshot->counts().signals; ++s) {
    std::vector<uint64_t> got;
    ASSERT_TRUE(snapshot->ReportIds(s, &got).ok());
    const std::vector<uint64_t> want = core::SupportingReports(
        fixture.corpus.db, fixture.primary_ids,
        fixture.ranked[s].mcac.target);
    EXPECT_EQ(got, want) << "signal " << s;
    EXPECT_FALSE(got.empty()) << "signal " << s;
  }
}

TEST(SnapshotRoundTripTest, DecodeReEncodeIsByteIdentical) {
  const ServeFixture fixture = MakeServeFixture();
  const std::string bytes = EncodeOrDie(fixture);
  auto snapshot = SignalSnapshot::FromBytes(bytes);
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  auto rebuilt = ReconstructInputs(*snapshot);
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status().ToString();
  SnapshotInputs inputs;
  inputs.items = &rebuilt->items;
  inputs.signals = &rebuilt->signals;
  inputs.stats = rebuilt->stats;
  inputs.report_ids = &rebuilt->report_ids;
  auto re_encoded = EncodeSignalSnapshot(inputs);
  ASSERT_TRUE(re_encoded.ok()) << re_encoded.status().ToString();
  EXPECT_EQ(*re_encoded, bytes);
}

TEST(SnapshotRoundTripTest, ImageIsRelocatable) {
  const ServeFixture fixture = MakeServeFixture();
  const std::string bytes = EncodeOrDie(fixture);
  // Two independent copies at different addresses must answer identically —
  // nothing in the image may depend on where it is loaded.
  const std::string copy_a = bytes;
  const std::string copy_b = bytes;
  auto snap_a = SignalSnapshot::FromView(copy_a);
  auto snap_b = SignalSnapshot::FromView(copy_b);
  ASSERT_TRUE(snap_a.ok());
  ASSERT_TRUE(snap_b.ok());
  for (uint32_t s = 0; s < snap_a->counts().signals; ++s) {
    auto a = snap_a->Materialize(s);
    auto b = snap_b->Materialize(s);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(core::EncodeRankedMcacs({*a}), core::EncodeRankedMcacs({*b}));
  }
}

TEST(SnapshotWriterTest, RejectsInconsistentInputs) {
  const ServeFixture fixture = MakeServeFixture();
  SnapshotInputs inputs;  // no items / signals at all
  EXPECT_TRUE(EncodeSignalSnapshot(inputs).status().IsInvalidArgument());

  inputs = InputsOf(fixture);
  inputs.primary_ids = nullptr;  // db without ids: no report source
  EXPECT_TRUE(EncodeSignalSnapshot(inputs).status().IsInvalidArgument());

  inputs = InputsOf(fixture);
  std::vector<std::vector<uint64_t>> precomputed(fixture.ranked.size());
  inputs.report_ids = &precomputed;  // both sources at once: ambiguous
  EXPECT_TRUE(EncodeSignalSnapshot(inputs).status().IsInvalidArgument());

  inputs = InputsOf(fixture);
  inputs.db = nullptr;
  inputs.primary_ids = nullptr;
  precomputed.pop_back();  // wrong per-signal list count
  inputs.report_ids = &precomputed;
  EXPECT_TRUE(EncodeSignalSnapshot(inputs).status().IsInvalidArgument());
}

TEST(SnapshotHostileBytesTest, EmptyAndTinyImagesAreRejected) {
  EXPECT_FALSE(SignalSnapshot::FromView("").ok());
  EXPECT_FALSE(SignalSnapshot::FromView("MSNP").ok());
  EXPECT_FALSE(SignalSnapshot::FromView(std::string(23, '\0')).ok());
}

TEST(SnapshotHostileBytesTest, EveryTruncationIsRejected) {
  const std::string bytes = EncodeOrDie(MakeServeFixture());
  for (size_t len = 0; len < bytes.size(); ++len) {
    auto snapshot = SignalSnapshot::FromView(
        std::string_view(bytes).substr(0, len));
    EXPECT_FALSE(snapshot.ok()) << "truncation to " << len << " accepted";
  }
}

TEST(SnapshotHostileBytesTest, EverySingleByteFlipIsRejected) {
  const std::string bytes = EncodeOrDie(MakeServeFixture());
  std::string mutant = bytes;
  for (size_t i = 0; i < bytes.size(); ++i) {
    mutant[i] = static_cast<char>(mutant[i] ^ 0x5a);
    auto snapshot = SignalSnapshot::FromView(mutant);
    EXPECT_FALSE(snapshot.ok()) << "flip at byte " << i << " accepted";
    mutant[i] = bytes[i];
  }
}

TEST(SnapshotHostileBytesTest, TrailingBytesAreRejected) {
  std::string bytes = EncodeOrDie(MakeServeFixture());
  bytes.push_back('\0');
  EXPECT_FALSE(SignalSnapshot::FromView(bytes).ok());
}

// Semantic forgeries: mutate content, then re-stamp every checksum so the
// framing layer is perfectly happy — rejection must come from canonical
// validation.
class SnapshotForgeryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fixture_ = MakeServeFixture();
    bytes_ = EncodeOrDie(fixture_);
  }

  // Offset of section `id`'s payload in the image.
  size_t SectionOffset(SectionId id) const {
    const size_t entry = kFileHeaderBytes +
                         (static_cast<size_t>(id) - 1) * kSectionEntryBytes;
    return maras::test::GetU32Le(bytes_, entry + 4);
  }

  void ExpectForgedRejected(const std::string& what) {
    RestampChecksums(&bytes_);
    auto snapshot = SignalSnapshot::FromView(bytes_);
    EXPECT_FALSE(snapshot.ok()) << what << " accepted";
    if (!snapshot.ok()) {
      EXPECT_TRUE(snapshot.status().IsCorruption())
          << what << ": " << snapshot.status().ToString();
    }
  }

  ServeFixture fixture_;
  std::string bytes_;
};

TEST_F(SnapshotForgeryTest, ForgedItemNameOffset) {
  // Break the canonical tight packing of names: point item 0 one byte in.
  const size_t items = SectionOffset(SectionId::kItems);
  bytes_[items + kItemNameOffset] =
      static_cast<char>(bytes_[items + kItemNameOffset] + 1);
  ExpectForgedRejected("forged item name offset");
}

TEST_F(SnapshotForgeryTest, ForgedItemDomain) {
  const size_t items = SectionOffset(SectionId::kItems);
  bytes_[items + kItemDomain] = 7;
  ExpectForgedRejected("forged item domain");
}

TEST_F(SnapshotForgeryTest, ForgedSignalTargetRule) {
  // Point signal 0 at a context rule instead of its own target — breaks the
  // canonical rule ordering even though the index is in range.
  const size_t signals = SectionOffset(SectionId::kSignals);
  bytes_[signals + kSignalTargetRule] =
      static_cast<char>(bytes_[signals + kSignalTargetRule] + 1);
  ExpectForgedRejected("forged signal target rule");
}

TEST_F(SnapshotForgeryTest, ForgedPostingEntry) {
  ASSERT_GT(maras::test::GetU32Le(
                bytes_, SectionOffset(SectionId::kMeta) + kMetaPostingCount),
            0u);
  const size_t pool = SectionOffset(SectionId::kPostingPool);
  bytes_[pool] = static_cast<char>(bytes_[pool] + 1);
  ExpectForgedRejected("forged posting entry");
}

TEST_F(SnapshotForgeryTest, ForgedMetaCount) {
  // Claim one signal fewer than the section holds; geometry must object.
  const size_t meta = SectionOffset(SectionId::kMeta);
  const uint32_t signals = maras::test::GetU32Le(bytes_, meta);
  ASSERT_GT(signals, 0u);
  bytes_[meta] = static_cast<char>(signals - 1);
  ExpectForgedRejected("forged meta signal count");
}

TEST_F(SnapshotForgeryTest, ForgedReservedField) {
  const size_t signals = SectionOffset(SectionId::kSignals);
  bytes_[signals + kSignalReportCount + 4] = 1;
  ExpectForgedRejected("forged signal reserved field");
}

TEST(SnapshotAccessorTest, HostileQueryIndicesAreInvalidArgument) {
  const ServeFixture fixture = MakeServeFixture();
  auto snapshot = SignalSnapshot::FromBytes(
      *EncodeSignalSnapshot(InputsOf(fixture)));
  ASSERT_TRUE(snapshot.ok());
  const SnapshotCounts& counts = snapshot->counts();
  std::string_view name;
  EXPECT_TRUE(snapshot->ItemName(counts.items, &name).IsInvalidArgument());
  SignalRecord signal;
  EXPECT_TRUE(snapshot->Signal(counts.signals, &signal).IsInvalidArgument());
  core::DrugAdrRule rule;
  EXPECT_TRUE(snapshot->Rule(counts.rules, &rule).IsInvalidArgument());
  std::vector<uint64_t> reports;
  EXPECT_TRUE(
      snapshot->ReportIds(counts.signals, &reports).IsInvalidArgument());
  EXPECT_FALSE(snapshot->Materialize(counts.signals).ok());
}

}  // namespace
}  // namespace maras::serve
