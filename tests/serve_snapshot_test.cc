// Round-trip, relocatability and hostile-bytes tests for the snapshot
// writer/reader pair. The adversarial sections enforce the serving-path
// failure model: EVERY single-byte corruption, truncation and
// checksum-consistent semantic forgery must surface as a structured
// non-OK Status — never a crash, never a partially usable snapshot.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/checkpoint.h"
#include "mining/itemset.h"
#include "serve/snapshot_format.h"
#include "serve/snapshot_reader.h"
#include "serve/snapshot_writer.h"
#include "serve_test_util.h"

namespace maras::serve {
namespace {

using ::maras::test::InputsOf;
using ::maras::test::MakeServeFixture;
using ::maras::test::RestampChecksums;
using ::maras::test::ServeFixture;

std::string EncodeOrDie(const ServeFixture& fixture) {
  auto bytes = EncodeSignalSnapshot(InputsOf(fixture));
  EXPECT_TRUE(bytes.ok()) << bytes.status().ToString();
  return *bytes;
}

TEST(SnapshotRoundTripTest, CountsAndStatsSurvive) {
  const ServeFixture fixture = MakeServeFixture();
  auto snapshot = SignalSnapshot::FromBytes(EncodeOrDie(fixture));
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  EXPECT_EQ(snapshot->counts().signals, fixture.ranked.size());
  EXPECT_EQ(snapshot->counts().items, fixture.corpus.items.size());
  EXPECT_EQ(snapshot->stats().total_rules, fixture.stats.total_rules);
  EXPECT_EQ(snapshot->stats().filtered_rules, fixture.stats.filtered_rules);
  EXPECT_EQ(snapshot->stats().closed_mixed, fixture.stats.closed_mixed);
  EXPECT_EQ(snapshot->stats().mcac_count, fixture.stats.mcac_count);
}

TEST(SnapshotRoundTripTest, MaterializeIsByteIdenticalToAnalyzerOutput) {
  const ServeFixture fixture = MakeServeFixture();
  auto snapshot = SignalSnapshot::FromBytes(EncodeOrDie(fixture));
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  std::vector<core::RankedMcac> materialized;
  for (uint32_t s = 0; s < snapshot->counts().signals; ++s) {
    auto ranked = snapshot->Materialize(s);
    ASSERT_TRUE(ranked.ok()) << ranked.status().ToString();
    materialized.push_back(std::move(*ranked));
  }
  // The strongest equality available: the checkpoint codec serializes every
  // field (doubles as raw bits), so identical encodings mean identical
  // analyzer-side values.
  EXPECT_EQ(core::EncodeRankedMcacs(materialized),
            core::EncodeRankedMcacs(fixture.ranked));
}

TEST(SnapshotRoundTripTest, ReportIdsMatchSupportingReports) {
  const ServeFixture fixture = MakeServeFixture();
  auto snapshot = SignalSnapshot::FromBytes(EncodeOrDie(fixture));
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  for (uint32_t s = 0; s < snapshot->counts().signals; ++s) {
    std::vector<uint64_t> got;
    ASSERT_TRUE(snapshot->ReportIds(s, &got).ok());
    const std::vector<uint64_t> want = core::SupportingReports(
        fixture.corpus.db, fixture.primary_ids,
        fixture.ranked[s].mcac.target);
    EXPECT_EQ(got, want) << "signal " << s;
    EXPECT_FALSE(got.empty()) << "signal " << s;
  }
}

TEST(SnapshotRoundTripTest, DecodeReEncodeIsByteIdentical) {
  const ServeFixture fixture = MakeServeFixture();
  const std::string bytes = EncodeOrDie(fixture);
  auto snapshot = SignalSnapshot::FromBytes(bytes);
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  auto rebuilt = ReconstructInputs(*snapshot);
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status().ToString();
  SnapshotInputs inputs;
  inputs.items = &rebuilt->items;
  inputs.signals = &rebuilt->signals;
  inputs.stats = rebuilt->stats;
  inputs.report_ids = &rebuilt->report_ids;
  inputs.include_lattice = rebuilt->include_lattice;
  auto re_encoded = EncodeSignalSnapshot(inputs);
  ASSERT_TRUE(re_encoded.ok()) << re_encoded.status().ToString();
  EXPECT_EQ(*re_encoded, bytes);
}

TEST(SnapshotRoundTripTest, ImageIsRelocatable) {
  const ServeFixture fixture = MakeServeFixture();
  const std::string bytes = EncodeOrDie(fixture);
  // Two independent copies at different addresses must answer identically —
  // nothing in the image may depend on where it is loaded.
  const std::string copy_a = bytes;
  const std::string copy_b = bytes;
  auto snap_a = SignalSnapshot::FromView(copy_a);
  auto snap_b = SignalSnapshot::FromView(copy_b);
  ASSERT_TRUE(snap_a.ok());
  ASSERT_TRUE(snap_b.ok());
  for (uint32_t s = 0; s < snap_a->counts().signals; ++s) {
    auto a = snap_a->Materialize(s);
    auto b = snap_b->Materialize(s);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(core::EncodeRankedMcacs({*a}), core::EncodeRankedMcacs({*b}));
  }
}

TEST(SnapshotWriterTest, RejectsInconsistentInputs) {
  const ServeFixture fixture = MakeServeFixture();
  SnapshotInputs inputs;  // no items / signals at all
  EXPECT_TRUE(EncodeSignalSnapshot(inputs).status().IsInvalidArgument());

  inputs = InputsOf(fixture);
  inputs.primary_ids = nullptr;  // db without ids: no report source
  EXPECT_TRUE(EncodeSignalSnapshot(inputs).status().IsInvalidArgument());

  inputs = InputsOf(fixture);
  std::vector<std::vector<uint64_t>> precomputed(fixture.ranked.size());
  inputs.report_ids = &precomputed;  // both sources at once: ambiguous
  EXPECT_TRUE(EncodeSignalSnapshot(inputs).status().IsInvalidArgument());

  inputs = InputsOf(fixture);
  inputs.db = nullptr;
  inputs.primary_ids = nullptr;
  precomputed.pop_back();  // wrong per-signal list count
  inputs.report_ids = &precomputed;
  EXPECT_TRUE(EncodeSignalSnapshot(inputs).status().IsInvalidArgument());
}

TEST(SnapshotHostileBytesTest, EmptyAndTinyImagesAreRejected) {
  EXPECT_FALSE(SignalSnapshot::FromView("").ok());
  EXPECT_FALSE(SignalSnapshot::FromView("MSNP").ok());
  EXPECT_FALSE(SignalSnapshot::FromView(std::string(23, '\0')).ok());
}

TEST(SnapshotHostileBytesTest, EveryTruncationIsRejected) {
  const std::string bytes = EncodeOrDie(MakeServeFixture());
  for (size_t len = 0; len < bytes.size(); ++len) {
    auto snapshot = SignalSnapshot::FromView(
        std::string_view(bytes).substr(0, len));
    EXPECT_FALSE(snapshot.ok()) << "truncation to " << len << " accepted";
  }
}

TEST(SnapshotHostileBytesTest, EverySingleByteFlipIsRejected) {
  const std::string bytes = EncodeOrDie(MakeServeFixture());
  std::string mutant = bytes;
  for (size_t i = 0; i < bytes.size(); ++i) {
    mutant[i] = static_cast<char>(mutant[i] ^ 0x5a);
    auto snapshot = SignalSnapshot::FromView(mutant);
    EXPECT_FALSE(snapshot.ok()) << "flip at byte " << i << " accepted";
    mutant[i] = bytes[i];
  }
}

TEST(SnapshotHostileBytesTest, TrailingBytesAreRejected) {
  std::string bytes = EncodeOrDie(MakeServeFixture());
  bytes.push_back('\0');
  EXPECT_FALSE(SignalSnapshot::FromView(bytes).ok());
}

// Semantic forgeries: mutate content, then re-stamp every checksum so the
// framing layer is perfectly happy — rejection must come from canonical
// validation.
class SnapshotForgeryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fixture_ = MakeServeFixture();
    bytes_ = EncodeOrDie(fixture_);
  }

  // Offset of section `id`'s payload in the image.
  size_t SectionOffset(SectionId id) const {
    const size_t entry = kFileHeaderBytes +
                         (static_cast<size_t>(id) - 1) * kSectionEntryBytes;
    return maras::test::GetU32Le(bytes_, entry + 4);
  }

  void ExpectForgedRejected(const std::string& what) {
    RestampChecksums(&bytes_);
    auto snapshot = SignalSnapshot::FromView(bytes_);
    EXPECT_FALSE(snapshot.ok()) << what << " accepted";
    if (!snapshot.ok()) {
      EXPECT_TRUE(snapshot.status().IsCorruption())
          << what << ": " << snapshot.status().ToString();
    }
  }

  ServeFixture fixture_;
  std::string bytes_;
};

TEST_F(SnapshotForgeryTest, ForgedItemNameOffset) {
  // Break the canonical tight packing of names: point item 0 one byte in.
  const size_t items = SectionOffset(SectionId::kItems);
  bytes_[items + kItemNameOffset] =
      static_cast<char>(bytes_[items + kItemNameOffset] + 1);
  ExpectForgedRejected("forged item name offset");
}

TEST_F(SnapshotForgeryTest, ForgedItemDomain) {
  const size_t items = SectionOffset(SectionId::kItems);
  bytes_[items + kItemDomain] = 7;
  ExpectForgedRejected("forged item domain");
}

TEST_F(SnapshotForgeryTest, ForgedSignalTargetRule) {
  // Point signal 0 at a context rule instead of its own target — breaks the
  // canonical rule ordering even though the index is in range.
  const size_t signals = SectionOffset(SectionId::kSignals);
  bytes_[signals + kSignalTargetRule] =
      static_cast<char>(bytes_[signals + kSignalTargetRule] + 1);
  ExpectForgedRejected("forged signal target rule");
}

TEST_F(SnapshotForgeryTest, ForgedPostingEntry) {
  ASSERT_GT(maras::test::GetU32Le(
                bytes_, SectionOffset(SectionId::kMeta) + kMetaPostingCount),
            0u);
  const size_t pool = SectionOffset(SectionId::kPostingPool);
  bytes_[pool] = static_cast<char>(bytes_[pool] + 1);
  ExpectForgedRejected("forged posting entry");
}

TEST_F(SnapshotForgeryTest, ForgedMetaCount) {
  // Claim one signal fewer than the section holds; geometry must object.
  const size_t meta = SectionOffset(SectionId::kMeta);
  const uint32_t signals = maras::test::GetU32Le(bytes_, meta);
  ASSERT_GT(signals, 0u);
  bytes_[meta] = static_cast<char>(signals - 1);
  ExpectForgedRejected("forged meta signal count");
}

TEST_F(SnapshotForgeryTest, ForgedReservedField) {
  const size_t signals = SectionOffset(SectionId::kSignals);
  bytes_[signals + kSignalReportCount + 4] = 1;
  ExpectForgedRejected("forged signal reserved field");
}

// Brute-force covering relation over the ranked targets: t generalizes s
// iff same ADR set, drugs(t) ⊊ drugs(s), and no third signal sits strictly
// between.
std::vector<std::vector<uint32_t>> BruteForceGeneralizations(
    const std::vector<core::RankedMcac>& ranked) {
  const auto proper_subset = [](const mining::Itemset& a,
                                const mining::Itemset& b) {
    return a.size() < b.size() && mining::IsSubset(a, b);
  };
  std::vector<std::vector<uint32_t>> gen(ranked.size());
  for (uint32_t s = 0; s < ranked.size(); ++s) {
    const core::DrugAdrRule& st = ranked[s].mcac.target;
    for (uint32_t t = 0; t < ranked.size(); ++t) {
      const core::DrugAdrRule& tt = ranked[t].mcac.target;
      if (t == s || tt.adrs != st.adrs || !proper_subset(tt.drugs, st.drugs)) {
        continue;
      }
      bool maximal = true;
      for (uint32_t u = 0; u < ranked.size() && maximal; ++u) {
        const core::DrugAdrRule& ut = ranked[u].mcac.target;
        if (u == t || u == s || ut.adrs != st.adrs) continue;
        if (proper_subset(tt.drugs, ut.drugs) &&
            proper_subset(ut.drugs, st.drugs)) {
          maximal = false;
        }
      }
      if (maximal) gen[s].push_back(t);
    }
  }
  return gen;
}

TEST(SnapshotLatticeTest, NavigationMatchesBruteForceCoveringRelation) {
  const ServeFixture fixture = maras::test::MakeLayeredServeFixture();
  auto snapshot = SignalSnapshot::FromBytes(EncodeOrDie(fixture));
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  ASSERT_TRUE(snapshot->has_lattice_nav());
  EXPECT_EQ(snapshot->counts().lattice_nav, snapshot->counts().signals);
  const std::vector<std::vector<uint32_t>> gen =
      BruteForceGeneralizations(fixture.ranked);
  std::vector<std::vector<uint32_t>> spec(fixture.ranked.size());
  size_t total = 0;
  for (uint32_t s = 0; s < gen.size(); ++s) {
    for (uint32_t t : gen[s]) spec[t].push_back(s);
    total += gen[s].size();
  }
  ASSERT_GT(total, 0u) << "fixture must yield at least one covering edge";
  EXPECT_EQ(snapshot->counts().lattice_edges, 2 * total);
  for (uint32_t s = 0; s < fixture.ranked.size(); ++s) {
    std::vector<uint32_t> got;
    ASSERT_TRUE(snapshot->Generalizations(s, &got).ok());
    EXPECT_EQ(got, gen[s]) << "generalizations of signal " << s;
    ASSERT_TRUE(snapshot->Specializations(s, &got).ok());
    EXPECT_EQ(got, spec[s]) << "specializations of signal " << s;
  }
}

TEST(SnapshotLatticeTest, WriterWithoutLatticeRoundTripsAndReportsAbsence) {
  const ServeFixture fixture = maras::test::MakeLayeredServeFixture();
  SnapshotInputs inputs = InputsOf(fixture);
  inputs.include_lattice = false;
  auto bytes = EncodeSignalSnapshot(inputs);
  ASSERT_TRUE(bytes.ok()) << bytes.status().ToString();
  auto snapshot = SignalSnapshot::FromBytes(*bytes);
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  EXPECT_FALSE(snapshot->has_lattice_nav());
  EXPECT_EQ(snapshot->counts().lattice_nav, 0u);
  EXPECT_EQ(snapshot->counts().lattice_edges, 0u);
  std::vector<uint32_t> out;
  EXPECT_TRUE(snapshot->Generalizations(0, &out).IsNotFound());
  EXPECT_TRUE(snapshot->Specializations(0, &out).IsNotFound());
  // The flag survives reconstruction, so decode -> re-encode stays the
  // identity on lattice-free images too.
  auto rebuilt = ReconstructInputs(*snapshot);
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_FALSE(rebuilt->include_lattice);
  SnapshotInputs re_inputs;
  re_inputs.items = &rebuilt->items;
  re_inputs.signals = &rebuilt->signals;
  re_inputs.stats = rebuilt->stats;
  re_inputs.report_ids = &rebuilt->report_ids;
  re_inputs.include_lattice = rebuilt->include_lattice;
  auto re_encoded = EncodeSignalSnapshot(re_inputs);
  ASSERT_TRUE(re_encoded.ok());
  EXPECT_EQ(*re_encoded, *bytes);
  // And the two encodings of the same inputs differ only by the lattice.
  EXPECT_NE(*bytes, EncodeOrDie(fixture));
}

class SnapshotLatticeForgeryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fixture_ = maras::test::MakeLayeredServeFixture();
    bytes_ = EncodeOrDie(fixture_);
    auto snapshot = SignalSnapshot::FromBytes(bytes_);
    ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
    ASSERT_GT(snapshot->counts().lattice_edges, 0u);
  }

  size_t SectionOffset(SectionId id) const {
    const size_t entry = kFileHeaderBytes +
                         (static_cast<size_t>(id) - 1) * kSectionEntryBytes;
    return maras::test::GetU32Le(bytes_, entry + 4);
  }

  void ExpectForgedRejected(const std::string& what) {
    RestampChecksums(&bytes_);
    auto snapshot = SignalSnapshot::FromView(bytes_);
    EXPECT_FALSE(snapshot.ok()) << what << " accepted";
    if (!snapshot.ok()) {
      EXPECT_TRUE(snapshot.status().IsCorruption())
          << what << ": " << snapshot.status().ToString();
    }
  }

  ServeFixture fixture_;
  std::string bytes_;
};

TEST_F(SnapshotLatticeForgeryTest, ForgedEdgeEntry) {
  const size_t pool = SectionOffset(SectionId::kLatticeEdgePool);
  bytes_[pool] = static_cast<char>(bytes_[pool] + 1);
  ExpectForgedRejected("forged lattice edge entry");
}

TEST_F(SnapshotLatticeForgeryTest, ForgedNavListLength) {
  const size_t nav = SectionOffset(SectionId::kLatticeNav);
  bytes_[nav + kLatticeNavGenCount] =
      static_cast<char>(bytes_[nav + kLatticeNavGenCount] + 1);
  ExpectForgedRejected("forged lattice nav list length");
}

TEST_F(SnapshotLatticeForgeryTest, StrippedMetaLatticeCount) {
  // Claim "no lattice" while the sections still hold bytes; geometry must
  // object before any navigation is served.
  const size_t meta = SectionOffset(SectionId::kMeta);
  bytes_[meta + kMetaLatticeNavCount] = 0;
  ExpectForgedRejected("stripped meta lattice count");
}

TEST_F(SnapshotLatticeForgeryTest, PartialNavCoverage) {
  // A nav count strictly between 0 and the signal count is forged even if
  // the section geometry were patched to match.
  const size_t meta = SectionOffset(SectionId::kMeta);
  const uint32_t signals = maras::test::GetU32Le(bytes_, meta);
  ASSERT_GT(signals, 1u);
  bytes_[meta + kMetaLatticeNavCount] = static_cast<char>(signals - 1);
  ExpectForgedRejected("partial lattice nav coverage");
}

TEST(SnapshotAccessorTest, HostileQueryIndicesAreInvalidArgument) {
  const ServeFixture fixture = MakeServeFixture();
  auto snapshot = SignalSnapshot::FromBytes(
      *EncodeSignalSnapshot(InputsOf(fixture)));
  ASSERT_TRUE(snapshot.ok());
  const SnapshotCounts& counts = snapshot->counts();
  std::string_view name;
  EXPECT_TRUE(snapshot->ItemName(counts.items, &name).IsInvalidArgument());
  SignalRecord signal;
  EXPECT_TRUE(snapshot->Signal(counts.signals, &signal).IsInvalidArgument());
  core::DrugAdrRule rule;
  EXPECT_TRUE(snapshot->Rule(counts.rules, &rule).IsInvalidArgument());
  std::vector<uint64_t> reports;
  EXPECT_TRUE(
      snapshot->ReportIds(counts.signals, &reports).IsInvalidArgument());
  EXPECT_FALSE(snapshot->Materialize(counts.signals).ok());
  std::vector<uint32_t> neighbors;
  EXPECT_TRUE(snapshot->Generalizations(counts.signals, &neighbors)
                  .IsInvalidArgument());
  EXPECT_TRUE(snapshot->Specializations(counts.signals, &neighbors)
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace maras::serve
