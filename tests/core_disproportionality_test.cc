#include "core/disproportionality.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "test_util.h"
#include "util/random.h"

namespace maras::core {
namespace {

using maras::test::MiniCorpus;

TEST(ContingencyTest, PartitionsDatabase) {
  MiniCorpus corpus;
  corpus.Add({{"A", "B"}, {"X"}}, 6);   // a
  corpus.Add({{"A", "B"}, {"Y"}}, 2);   // b
  corpus.Add({{"A"}, {"X"}}, 3);        // c (lacks B)
  corpus.Add({{"C"}, {"Z"}}, 9);        // d
  ContingencyTable t = MakeContingencyTable(
      corpus.db, corpus.Drugs({"A", "B"}), corpus.Adrs({"X"}));
  EXPECT_EQ(t.a, 6u);
  EXPECT_EQ(t.b, 2u);
  EXPECT_EQ(t.c, 3u);
  EXPECT_EQ(t.d, 9u);
  EXPECT_EQ(t.n(), corpus.db.size());
}

TEST(PrrTest, HandComputed) {
  // Exposed rate 6/8 = 0.75, background rate 3/12 = 0.25 -> PRR 3.
  ContingencyTable t{6, 2, 3, 9};
  EXPECT_NEAR(Prr(t), 3.0, 1e-12);
}

TEST(PrrTest, IndependenceGivesOne) {
  // Equal rates in both strata.
  ContingencyTable t{5, 5, 50, 50};
  EXPECT_NEAR(Prr(t), 1.0, 1e-12);
}

TEST(PrrTest, DegenerateCases) {
  EXPECT_DOUBLE_EQ(Prr({0, 0, 5, 5}), 0.0);     // no exposure
  EXPECT_DOUBLE_EQ(Prr({0, 5, 5, 5}), 0.0);     // exposed but no cases
  EXPECT_DOUBLE_EQ(Prr({3, 1, 0, 10}),
                   kDisproportionalityCap);      // no background cases
}

TEST(RorTest, HandComputed) {
  // (6*9)/(2*3) = 9.
  ContingencyTable t{6, 2, 3, 9};
  EXPECT_NEAR(Ror(t), 9.0, 1e-12);
}

TEST(RorTest, Degenerate) {
  EXPECT_DOUBLE_EQ(Ror({0, 2, 3, 4}), 0.0);
  EXPECT_DOUBLE_EQ(Ror({2, 0, 3, 4}), kDisproportionalityCap);
  EXPECT_DOUBLE_EQ(Ror({2, 3, 0, 4}), kDisproportionalityCap);
}

TEST(ChiSquaredTest, ZeroForIndependence) {
  // Perfectly proportional table: statistic ~0 after Yates correction.
  ContingencyTable t{10, 10, 100, 100};
  EXPECT_LT(ChiSquaredYates(t), 0.2);
}

TEST(ChiSquaredTest, LargeForStrongAssociation) {
  ContingencyTable t{50, 5, 5, 500};
  EXPECT_GT(ChiSquaredYates(t), 100.0);
}

TEST(ChiSquaredTest, YatesNeverNegative) {
  // Tiny counts where |ad−bc| < n/2 would go negative without the clamp.
  ContingencyTable t{1, 1, 1, 1};
  EXPECT_GE(ChiSquaredYates(t), 0.0);
  EXPECT_DOUBLE_EQ(ChiSquaredYates({0, 0, 0, 0}), 0.0);
}

TEST(InformationComponentTest, SignMatchesAssociation) {
  // Positive association -> IC > 0, negative -> IC < 0.
  EXPECT_GT(InformationComponent({50, 5, 5, 500}), 0.0);
  EXPECT_LT(InformationComponent({1, 50, 50, 10}), 0.0);
}

TEST(InformationComponentTest, ShrinkageTamesSmallCounts) {
  // One report of a one-in-a-million pair: the raw lift is ~1e6 (log2 ≈ 20
  // bits); the +0.5 shrinkage caps IC at log2(1.5/0.5) ≈ 1.58 bits.
  ContingencyTable t{1, 0, 0, 999997};
  EXPECT_LT(InformationComponent(t), 1.6);
  EXPECT_GT(InformationComponent(t), 1.5);
}

TEST(EvansCriteriaTest, Thresholds) {
  DisproportionalityResult r;
  r.table = {3, 1, 1, 100};
  r.prr = 2.5;
  r.chi_squared = 5.0;
  EXPECT_TRUE(r.MeetsEvansCriteria());
  r.prr = 1.9;
  EXPECT_FALSE(r.MeetsEvansCriteria());
  r.prr = 2.5;
  r.chi_squared = 3.9;
  EXPECT_FALSE(r.MeetsEvansCriteria());
  r.chi_squared = 5.0;
  r.table.a = 2;
  EXPECT_FALSE(r.MeetsEvansCriteria());
}

TEST(EvaluateTest, EndToEndOnCorpus) {
  MiniCorpus corpus;
  corpus.Add({{"ASPIRIN", "WARFARIN"}, {"HAEMORRHAGE"}}, 12);
  corpus.Add({{"ASPIRIN"}, {"NAUSEA"}}, 40);
  corpus.Add({{"WARFARIN"}, {"DIZZINESS"}}, 40);
  corpus.Add({{"METFORMIN"}, {"NAUSEA"}}, 100);
  DrugAdrRule rule;
  rule.drugs = corpus.Drugs({"ASPIRIN", "WARFARIN"});
  rule.adrs = corpus.Adrs({"HAEMORRHAGE"});
  DisproportionalityResult result =
      EvaluateDisproportionality(corpus.db, rule);
  EXPECT_EQ(result.table.a, 12u);
  EXPECT_EQ(result.table.b, 0u);
  EXPECT_EQ(result.table.c, 0u);
  EXPECT_GT(result.prr, 2.0);
  EXPECT_GT(result.chi_squared, 4.0);
  EXPECT_GT(result.information_component, 1.0);
  EXPECT_TRUE(result.MeetsEvansCriteria());
}

TEST(EvaluateTest, NoSignalForRandomPair) {
  MiniCorpus corpus;
  // X occurs everywhere; pair {A,B} sees it at the base rate.
  corpus.Add({{"A", "B"}, {"X"}}, 5);
  corpus.Add({{"A", "B"}, {"Y"}}, 5);
  corpus.Add({{"C"}, {"X"}}, 50);
  corpus.Add({{"C"}, {"Y"}}, 50);
  DrugAdrRule rule;
  rule.drugs = corpus.Drugs({"A", "B"});
  rule.adrs = corpus.Adrs({"X"});
  DisproportionalityResult result =
      EvaluateDisproportionality(corpus.db, rule);
  EXPECT_NEAR(result.prr, 1.0, 0.05);
  EXPECT_FALSE(result.MeetsEvansCriteria());
}

TEST(IntervalTest, PrrIntervalCoversEstimate) {
  ContingencyTable t{20, 30, 40, 400};
  RatioInterval ci = PrrInterval(t);
  double prr = Prr(t);
  EXPECT_GT(ci.lower, 0.0);
  EXPECT_LT(ci.lower, prr);
  EXPECT_GT(ci.upper, prr);
}

TEST(IntervalTest, RorIntervalCoversEstimate) {
  ContingencyTable t{20, 30, 40, 400};
  RatioInterval ci = RorInterval(t);
  double ror = Ror(t);
  EXPECT_GT(ci.lower, 0.0);
  EXPECT_LT(ci.lower, ror);
  EXPECT_GT(ci.upper, ror);
}

TEST(IntervalTest, WidthShrinksWithCounts) {
  RatioInterval small = RorInterval({5, 5, 5, 50});
  RatioInterval large = RorInterval({500, 500, 500, 5000});
  EXPECT_GT(std::log(small.upper) - std::log(small.lower),
            std::log(large.upper) - std::log(large.lower));
}

TEST(IntervalTest, DegenerateCellsGiveVacuousInterval) {
  for (const ContingencyTable& t :
       {ContingencyTable{0, 5, 5, 5}, ContingencyTable{5, 0, 5, 5},
        ContingencyTable{5, 5, 0, 5}}) {
    RatioInterval ci = RorInterval(t);
    EXPECT_DOUBLE_EQ(ci.lower, 0.0);
    EXPECT_DOUBLE_EQ(ci.upper, kDisproportionalityCap);
  }
}

TEST(IntervalTest, StrongSignalLowerBoundClearsOne) {
  // The surveillance decision rule: signal when the CI's lower bound > 1.
  ContingencyTable strong{50, 5, 5, 500};
  EXPECT_GT(RorInterval(strong).lower, 1.0);
  EXPECT_GT(PrrInterval(strong).lower, 1.0);
  ContingencyTable null_assoc{10, 10, 100, 100};
  EXPECT_LE(PrrInterval(null_assoc).lower, 1.0);
}

// Relationship property: for rare exposure, ROR >= PRR >= 1 or both <= 1
// (odds ratios are more extreme than risk ratios).
TEST(RelationshipTest, RorAtLeastAsExtremeAsPrr) {
  for (const ContingencyTable& t :
       {ContingencyTable{6, 2, 3, 9}, ContingencyTable{20, 10, 40, 400},
        ContingencyTable{2, 20, 100, 300}}) {
    double prr = Prr(t);
    double ror = Ror(t);
    if (prr > 1.0) {
      EXPECT_GE(ror, prr);
    } else if (prr > 0.0) {
      EXPECT_LE(ror, prr);
    }
  }
}

// --------------------------------------------------------------------------
// Batched SoA counting vs the scalar one-rule path. The batch derives its
// cells from the bitmap popcount kernels, so both counts and the doubles
// computed from them must be identical — not close, identical.
// --------------------------------------------------------------------------

std::vector<DrugAdrRule> RandomRules(maras::Rng* rng, int items, int count) {
  std::vector<DrugAdrRule> rules;
  for (int r = 0; r < count; ++r) {
    mining::Itemset drugs, adrs;
    for (size_t i = 1 + rng->Uniform(3); i > 0; --i) {
      drugs.push_back(static_cast<mining::ItemId>(rng->Uniform(items)));
    }
    for (size_t i = 1 + rng->Uniform(2); i > 0; --i) {
      adrs.push_back(static_cast<mining::ItemId>(rng->Uniform(items)));
    }
    DrugAdrRule rule;
    rule.drugs = mining::MakeItemset(std::move(drugs));
    rule.adrs = mining::MakeItemset(std::move(adrs));
    rules.push_back(std::move(rule));
  }
  // Edge rules the batch's cached bitmaps must get right: an empty side
  // (support == n), and an item id never interned (support == 0).
  DrugAdrRule empty_drugs;
  empty_drugs.adrs = mining::MakeItemset({1});
  rules.push_back(empty_drugs);
  DrugAdrRule empty_adrs;
  empty_adrs.drugs = mining::MakeItemset({0});
  rules.push_back(empty_adrs);
  DrugAdrRule unseen;
  unseen.drugs = mining::MakeItemset({500});
  unseen.adrs = mining::MakeItemset({2});
  rules.push_back(unseen);
  return rules;
}

mining::TransactionDatabase RandomDb(maras::Rng* rng, int transactions,
                                     int items) {
  mining::TransactionDatabase db;
  for (int t = 0; t < transactions; ++t) {
    mining::Itemset txn;
    for (size_t i = 1 + rng->Uniform(8); i > 0; --i) {
      txn.push_back(static_cast<mining::ItemId>(rng->Uniform(items)));
    }
    db.Add(std::move(txn));
  }
  return db;
}

TEST(ContingencyBatchTest, LanesEqualScalarTablesAtAnyThreadCount) {
  maras::Rng rng(20260808);
  mining::TransactionDatabase db = RandomDb(&rng, 400, 30);
  std::vector<DrugAdrRule> rules = RandomRules(&rng, 30, 60);
  for (size_t threads : {1u, 4u}) {
    ContingencyBatch batch = MakeContingencyTables(db, rules, threads);
    ASSERT_EQ(batch.size(), rules.size());
    for (size_t i = 0; i < rules.size(); ++i) {
      ContingencyTable expected =
          MakeContingencyTable(db, rules[i].drugs, rules[i].adrs);
      ContingencyTable lane = batch.Table(i);
      EXPECT_EQ(lane.a, expected.a) << "rule " << i << ", " << threads;
      EXPECT_EQ(lane.b, expected.b) << "rule " << i << ", " << threads;
      EXPECT_EQ(lane.c, expected.c) << "rule " << i << ", " << threads;
      EXPECT_EQ(lane.d, expected.d) << "rule " << i << ", " << threads;
      EXPECT_EQ(lane.n(), db.size()) << "rule " << i;
    }
  }
}

TEST(ContingencyBatchTest, EvaluateBatchBitIdenticalToScalar) {
  maras::Rng rng(0xD15B);
  mining::TransactionDatabase db = RandomDb(&rng, 300, 24);
  std::vector<DrugAdrRule> rules = RandomRules(&rng, 24, 40);
  std::vector<DisproportionalityResult> batch =
      EvaluateDisproportionalityBatch(db, rules, 4);
  ASSERT_EQ(batch.size(), rules.size());
  for (size_t i = 0; i < rules.size(); ++i) {
    DisproportionalityResult scalar = EvaluateDisproportionality(db, rules[i]);
    EXPECT_EQ(batch[i].table.a, scalar.table.a) << i;
    EXPECT_EQ(batch[i].table.b, scalar.table.b) << i;
    EXPECT_EQ(batch[i].table.c, scalar.table.c) << i;
    EXPECT_EQ(batch[i].table.d, scalar.table.d) << i;
    // Same cells through the same scalar measure functions: the doubles
    // must match to the last bit.
    EXPECT_EQ(batch[i].prr, scalar.prr) << i;
    EXPECT_EQ(batch[i].ror, scalar.ror) << i;
    EXPECT_EQ(batch[i].chi_squared, scalar.chi_squared) << i;
    EXPECT_EQ(batch[i].information_component, scalar.information_component)
        << i;
    EXPECT_EQ(batch[i].MeetsEvansCriteria(), scalar.MeetsEvansCriteria()) << i;
  }
}

TEST(ContingencyBatchTest, EmptyBatchAndEmptyDatabase) {
  mining::TransactionDatabase db;
  EXPECT_EQ(MakeContingencyTables(db, {}, 4).size(), 0u);
  std::vector<DrugAdrRule> rules(1);
  rules[0].drugs = mining::MakeItemset({0});
  ContingencyBatch batch = MakeContingencyTables(db, rules, 1);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch.Table(0).n(), 0u);
}

}  // namespace
}  // namespace maras::core
