#include "core/mcac.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace maras::core {
namespace {

using maras::test::AsthmaCorpus;
using maras::test::MiniCorpus;

DrugAdrRule TargetRule(MiniCorpus* corpus,
                       const std::vector<std::string>& drugs,
                       const std::vector<std::string>& adrs) {
  mining::Itemset whole =
      mining::Union(corpus->Drugs(drugs), corpus->Adrs(adrs));
  auto rule = BuildRule(whole, corpus->items, corpus->db);
  EXPECT_TRUE(rule.ok());
  return *rule;
}

TEST(McacTest, Table31StructureThreeDrugs) {
  MiniCorpus corpus = AsthmaCorpus();
  DrugAdrRule target = TargetRule(
      &corpus, {"XOLAIR", "SINGULAIR", "PREDNISONE"}, {"ASTHMA"});
  McacBuilder builder(&corpus.items, &corpus.db);
  auto mcac = builder.Build(target);
  ASSERT_TRUE(mcac.ok());
  // Exactly the paper's layout: 3 one-drug rules and 3 two-drug rules.
  ASSERT_EQ(mcac->levels.size(), 2u);
  EXPECT_EQ(mcac->levels[0].size(), 3u);
  EXPECT_EQ(mcac->levels[1].size(), 3u);
  EXPECT_EQ(mcac->ContextSize(), 6u);  // 2^3 − 2
}

TEST(McacTest, ContextRulesShareConsequent) {
  MiniCorpus corpus = AsthmaCorpus();
  DrugAdrRule target = TargetRule(
      &corpus, {"XOLAIR", "SINGULAIR", "PREDNISONE"}, {"ASTHMA"});
  McacBuilder builder(&corpus.items, &corpus.db);
  auto mcac = builder.Build(target);
  ASSERT_TRUE(mcac.ok());
  for (const auto& level : mcac->levels) {
    for (const auto& rule : level) {
      EXPECT_EQ(rule.adrs, target.adrs);
      EXPECT_TRUE(mining::IsSubset(rule.drugs, target.drugs));
      EXPECT_LT(rule.drugs.size(), target.drugs.size());
    }
  }
}

TEST(McacTest, ContextMeasuresAreExactDatabaseCounts) {
  MiniCorpus corpus = AsthmaCorpus();
  DrugAdrRule target = TargetRule(
      &corpus, {"XOLAIR", "SINGULAIR", "PREDNISONE"}, {"ASTHMA"});
  McacBuilder builder(&corpus.items, &corpus.db);
  auto mcac = builder.Build(target);
  ASSERT_TRUE(mcac.ok());
  for (const auto& level : mcac->levels) {
    for (const auto& rule : level) {
      EXPECT_EQ(rule.antecedent_support, corpus.db.Support(rule.drugs));
      EXPECT_EQ(rule.support,
                corpus.db.Support(mining::Union(rule.drugs, rule.adrs)));
      if (rule.antecedent_support > 0) {
        EXPECT_DOUBLE_EQ(rule.confidence,
                         static_cast<double>(rule.support) /
                             static_cast<double>(rule.antecedent_support));
      }
    }
  }
}

TEST(McacTest, SingleDrugContextConfidencesMatchHand) {
  MiniCorpus corpus = AsthmaCorpus();
  DrugAdrRule target = TargetRule(
      &corpus, {"XOLAIR", "SINGULAIR", "PREDNISONE"}, {"ASTHMA"});
  McacBuilder builder(&corpus.items, &corpus.db);
  auto mcac = builder.Build(target);
  ASSERT_TRUE(mcac.ok());
  // XOLAIR: 12 (triple) + 20 (rash) + 3 (asthma alone) = 35 reports,
  // asthma with XOLAIR: 12 + 3 = 15.
  bool found_xolair = false;
  auto xolair = corpus.Drugs({"XOLAIR"});
  for (const auto& rule : mcac->levels[0]) {
    if (rule.drugs == xolair) {
      found_xolair = true;
      EXPECT_EQ(rule.antecedent_support, 35u);
      EXPECT_EQ(rule.support, 15u);
      EXPECT_NEAR(rule.confidence, 15.0 / 35.0, 1e-12);
    }
  }
  EXPECT_TRUE(found_xolair);
}

TEST(McacTest, LevelsSortedByDescendingConfidence) {
  MiniCorpus corpus = AsthmaCorpus();
  DrugAdrRule target = TargetRule(
      &corpus, {"XOLAIR", "SINGULAIR", "PREDNISONE"}, {"ASTHMA"});
  McacBuilder builder(&corpus.items, &corpus.db);
  auto mcac = builder.Build(target);
  ASSERT_TRUE(mcac.ok());
  for (const auto& level : mcac->levels) {
    for (size_t i = 1; i < level.size(); ++i) {
      EXPECT_GE(level[i - 1].confidence, level[i].confidence);
    }
  }
}

TEST(McacTest, TwoDrugTargetHasSingleLevel) {
  MiniCorpus corpus;
  corpus.Add({{"A", "B"}, {"X"}}, 5);
  corpus.Add({{"A"}, {"Y"}}, 5);
  corpus.Add({{"B"}, {"Y"}}, 5);
  DrugAdrRule target = TargetRule(&corpus, {"A", "B"}, {"X"});
  McacBuilder builder(&corpus.items, &corpus.db);
  auto mcac = builder.Build(target);
  ASSERT_TRUE(mcac.ok());
  ASSERT_EQ(mcac->levels.size(), 1u);
  EXPECT_EQ(mcac->levels[0].size(), 2u);
}

TEST(McacTest, SingleDrugTargetRejected) {
  MiniCorpus corpus;
  corpus.Add({{"A"}, {"X"}}, 3);
  DrugAdrRule target = TargetRule(&corpus, {"A"}, {"X"});
  McacBuilder builder(&corpus.items, &corpus.db);
  EXPECT_TRUE(builder.Build(target).status().IsInvalidArgument());
}

TEST(McacTest, FourDrugContextComplete) {
  MiniCorpus corpus;
  corpus.Add({{"A", "B", "C", "D"}, {"X"}}, 4);
  corpus.Add({{"A"}, {"Y"}}, 2);
  DrugAdrRule target = TargetRule(&corpus, {"A", "B", "C", "D"}, {"X"});
  McacBuilder builder(&corpus.items, &corpus.db);
  auto mcac = builder.Build(target);
  ASSERT_TRUE(mcac.ok());
  ASSERT_EQ(mcac->levels.size(), 3u);
  EXPECT_EQ(mcac->levels[0].size(), 4u);   // C(4,1)
  EXPECT_EQ(mcac->levels[1].size(), 6u);   // C(4,2)
  EXPECT_EQ(mcac->levels[2].size(), 4u);   // C(4,3)
  EXPECT_EQ(mcac->ContextSize(), 14u);     // 2^4 − 2
}

}  // namespace
}  // namespace maras::core
