#include "core/mcac.h"

#include <gtest/gtest.h>

#include "mining/closed_itemsets.h"
#include "mining/concept_lattice.h"
#include "mining/fpgrowth.h"
#include "test_util.h"
#include "util/run_context.h"

namespace maras::core {
namespace {

using maras::test::AsthmaCorpus;
using maras::test::MiniCorpus;

DrugAdrRule TargetRule(MiniCorpus* corpus,
                       const std::vector<std::string>& drugs,
                       const std::vector<std::string>& adrs) {
  mining::Itemset whole =
      mining::Union(corpus->Drugs(drugs), corpus->Adrs(adrs));
  auto rule = BuildRule(whole, corpus->items, corpus->db);
  EXPECT_TRUE(rule.ok());
  return *rule;
}

TEST(McacTest, Table31StructureThreeDrugs) {
  MiniCorpus corpus = AsthmaCorpus();
  DrugAdrRule target = TargetRule(
      &corpus, {"XOLAIR", "SINGULAIR", "PREDNISONE"}, {"ASTHMA"});
  McacBuilder builder(&corpus.items, &corpus.db);
  auto mcac = builder.Build(target);
  ASSERT_TRUE(mcac.ok());
  // Exactly the paper's layout: 3 one-drug rules and 3 two-drug rules.
  ASSERT_EQ(mcac->levels.size(), 2u);
  EXPECT_EQ(mcac->levels[0].size(), 3u);
  EXPECT_EQ(mcac->levels[1].size(), 3u);
  EXPECT_EQ(mcac->ContextSize(), 6u);  // 2^3 − 2
}

TEST(McacTest, ContextRulesShareConsequent) {
  MiniCorpus corpus = AsthmaCorpus();
  DrugAdrRule target = TargetRule(
      &corpus, {"XOLAIR", "SINGULAIR", "PREDNISONE"}, {"ASTHMA"});
  McacBuilder builder(&corpus.items, &corpus.db);
  auto mcac = builder.Build(target);
  ASSERT_TRUE(mcac.ok());
  for (const auto& level : mcac->levels) {
    for (const auto& rule : level) {
      EXPECT_EQ(rule.adrs, target.adrs);
      EXPECT_TRUE(mining::IsSubset(rule.drugs, target.drugs));
      EXPECT_LT(rule.drugs.size(), target.drugs.size());
    }
  }
}

TEST(McacTest, ContextMeasuresAreExactDatabaseCounts) {
  MiniCorpus corpus = AsthmaCorpus();
  DrugAdrRule target = TargetRule(
      &corpus, {"XOLAIR", "SINGULAIR", "PREDNISONE"}, {"ASTHMA"});
  McacBuilder builder(&corpus.items, &corpus.db);
  auto mcac = builder.Build(target);
  ASSERT_TRUE(mcac.ok());
  for (const auto& level : mcac->levels) {
    for (const auto& rule : level) {
      EXPECT_EQ(rule.antecedent_support, corpus.db.Support(rule.drugs));
      EXPECT_EQ(rule.support,
                corpus.db.Support(mining::Union(rule.drugs, rule.adrs)));
      if (rule.antecedent_support > 0) {
        EXPECT_DOUBLE_EQ(rule.confidence,
                         static_cast<double>(rule.support) /
                             static_cast<double>(rule.antecedent_support));
      }
    }
  }
}

TEST(McacTest, SingleDrugContextConfidencesMatchHand) {
  MiniCorpus corpus = AsthmaCorpus();
  DrugAdrRule target = TargetRule(
      &corpus, {"XOLAIR", "SINGULAIR", "PREDNISONE"}, {"ASTHMA"});
  McacBuilder builder(&corpus.items, &corpus.db);
  auto mcac = builder.Build(target);
  ASSERT_TRUE(mcac.ok());
  // XOLAIR: 12 (triple) + 20 (rash) + 3 (asthma alone) = 35 reports,
  // asthma with XOLAIR: 12 + 3 = 15.
  bool found_xolair = false;
  auto xolair = corpus.Drugs({"XOLAIR"});
  for (const auto& rule : mcac->levels[0]) {
    if (rule.drugs == xolair) {
      found_xolair = true;
      EXPECT_EQ(rule.antecedent_support, 35u);
      EXPECT_EQ(rule.support, 15u);
      EXPECT_NEAR(rule.confidence, 15.0 / 35.0, 1e-12);
    }
  }
  EXPECT_TRUE(found_xolair);
}

TEST(McacTest, LevelsSortedByDescendingConfidence) {
  MiniCorpus corpus = AsthmaCorpus();
  DrugAdrRule target = TargetRule(
      &corpus, {"XOLAIR", "SINGULAIR", "PREDNISONE"}, {"ASTHMA"});
  McacBuilder builder(&corpus.items, &corpus.db);
  auto mcac = builder.Build(target);
  ASSERT_TRUE(mcac.ok());
  for (const auto& level : mcac->levels) {
    for (size_t i = 1; i < level.size(); ++i) {
      EXPECT_GE(level[i - 1].confidence, level[i].confidence);
    }
  }
}

TEST(McacTest, TwoDrugTargetHasSingleLevel) {
  MiniCorpus corpus;
  corpus.Add({{"A", "B"}, {"X"}}, 5);
  corpus.Add({{"A"}, {"Y"}}, 5);
  corpus.Add({{"B"}, {"Y"}}, 5);
  DrugAdrRule target = TargetRule(&corpus, {"A", "B"}, {"X"});
  McacBuilder builder(&corpus.items, &corpus.db);
  auto mcac = builder.Build(target);
  ASSERT_TRUE(mcac.ok());
  ASSERT_EQ(mcac->levels.size(), 1u);
  EXPECT_EQ(mcac->levels[0].size(), 2u);
}

TEST(McacTest, SingleDrugTargetRejected) {
  MiniCorpus corpus;
  corpus.Add({{"A"}, {"X"}}, 3);
  DrugAdrRule target = TargetRule(&corpus, {"A"}, {"X"});
  McacBuilder builder(&corpus.items, &corpus.db);
  EXPECT_TRUE(builder.Build(target).status().IsInvalidArgument());
}

TEST(McacTest, FourDrugContextComplete) {
  MiniCorpus corpus;
  corpus.Add({{"A", "B", "C", "D"}, {"X"}}, 4);
  corpus.Add({{"A"}, {"Y"}}, 2);
  DrugAdrRule target = TargetRule(&corpus, {"A", "B", "C", "D"}, {"X"});
  McacBuilder builder(&corpus.items, &corpus.db);
  auto mcac = builder.Build(target);
  ASSERT_TRUE(mcac.ok());
  ASSERT_EQ(mcac->levels.size(), 3u);
  EXPECT_EQ(mcac->levels[0].size(), 4u);   // C(4,1)
  EXPECT_EQ(mcac->levels[1].size(), 6u);   // C(4,2)
  EXPECT_EQ(mcac->levels[2].size(), 4u);   // C(4,3)
  EXPECT_EQ(mcac->ContextSize(), 14u);     // 2^4 − 2
}

TEST(McacTest, ExpectedContextSizeExactValues) {
  EXPECT_EQ(*Mcac::ExpectedContextSize(2), 2u);
  EXPECT_EQ(*Mcac::ExpectedContextSize(3), 6u);
  EXPECT_EQ(*Mcac::ExpectedContextSize(20), (uint64_t{1} << 20) - 2);
  // The largest representable antecedent: 2^63 − 2 still fits in uint64_t.
  EXPECT_EQ(*Mcac::ExpectedContextSize(63), (uint64_t{1} << 63) - 2);
}

TEST(McacTest, ExpectedContextSizeRejectsDegenerateAndOverflowing) {
  EXPECT_TRUE(Mcac::ExpectedContextSize(0).status().IsInvalidArgument());
  EXPECT_TRUE(Mcac::ExpectedContextSize(1).status().IsInvalidArgument());
  // 2^64 − 2 and beyond would wrap; the guard must fire, not the shift.
  EXPECT_TRUE(Mcac::ExpectedContextSize(64).status().IsInvalidArgument());
  EXPECT_TRUE(Mcac::ExpectedContextSize(65).status().IsInvalidArgument());
  EXPECT_TRUE(Mcac::ExpectedContextSize(1000).status().IsInvalidArgument());
}

TEST(McacTest, TargetPastAntecedentBoundIsStructuredError) {
  // 21 drugs is one past kMaxMcacAntecedentDrugs: Build must return a
  // structured InvalidArgument without attempting the 2^21 − 2 enumeration.
  MiniCorpus corpus;
  std::vector<std::string> drugs;
  for (int i = 0; i < 21; ++i) drugs.push_back("D" + std::to_string(i));
  corpus.Add({drugs, {"X"}}, 3);
  DrugAdrRule target = TargetRule(&corpus, drugs, {"X"});
  McacBuilder builder(&corpus.items, &corpus.db);
  const Status status = builder.Build(target).status();
  EXPECT_TRUE(status.IsInvalidArgument()) << status.ToString();
  EXPECT_NE(status.ToString().find("21"), std::string::npos)
      << status.ToString();
}

TEST(McacTest, BoundaryTwentyDrugTargetPassesTheGate) {
  // At exactly kMaxMcacAntecedentDrugs the gate itself must not fire. The
  // full 2^20 − 2 enumeration is too slow for a unit test, so this only
  // checks the ExpectedContextSize contract the gate is built on.
  auto expected = Mcac::ExpectedContextSize(kMaxMcacAntecedentDrugs);
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(*expected, 1048574u);
  auto over = Mcac::ExpectedContextSize(kMaxMcacAntecedentDrugs + 1);
  ASSERT_TRUE(over.ok());
  EXPECT_GT(*over, 1048574u);
}

TEST(McacTest, LatticeBackedBuilderMatchesEnumeration) {
  test::MiniCorpus corpus = AsthmaCorpus();
  auto mined =
      mining::FpGrowth(mining::MiningOptions{.min_support = 2}).Mine(corpus.db);
  ASSERT_TRUE(mined.ok());
  mining::FrequentItemsetResult closed = mining::FilterClosed(*mined);
  const RunContext ctx;
  auto lattice = mining::ConceptLattice::Build(closed, /*num_threads=*/2, ctx);
  ASSERT_TRUE(lattice.ok()) << lattice.status().ToString();
  mining::SubsetSupportCache cache(&corpus.db);

  DrugAdrRule target = TargetRule(
      &corpus, {"XOLAIR", "SINGULAIR", "PREDNISONE"}, {"ASTHMA"});
  McacBuilder plain(&corpus.items, &corpus.db);
  McacBuilder cached(&corpus.items, &corpus.db, &*lattice, &cache);
  auto want = plain.Build(target);
  auto got = cached.Build(target);
  ASSERT_TRUE(want.ok());
  ASSERT_TRUE(got.ok());
  ASSERT_EQ(got->levels.size(), want->levels.size());
  for (size_t l = 0; l < want->levels.size(); ++l) {
    ASSERT_EQ(got->levels[l].size(), want->levels[l].size());
    for (size_t r = 0; r < want->levels[l].size(); ++r) {
      const DrugAdrRule& a = got->levels[l][r];
      const DrugAdrRule& b = want->levels[l][r];
      EXPECT_EQ(a.drugs, b.drugs);
      EXPECT_EQ(a.support, b.support);
      EXPECT_EQ(a.antecedent_support, b.antecedent_support);
      EXPECT_EQ(a.confidence, b.confidence);
      EXPECT_EQ(a.lift, b.lift);
    }
  }
  // A second identical build must be served from the memo.
  ASSERT_TRUE(cached.Build(target).ok());
  EXPECT_GT(cache.hits(), 0u);
}

}  // namespace
}  // namespace maras::core
