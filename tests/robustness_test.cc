// Seed- and parameter-robustness sweeps: the pipeline's guarantees must not
// depend on one lucky random stream. Parameterized over generator seeds and
// over mining thresholds.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <thread>

#include "core/analyzer.h"
#include "core/export.h"
#include "faers/ascii_format.h"
#include "faers/generator.h"
#include "faers/preprocess.h"
#include "mining/closed_itemsets.h"
#include "mining/fpgrowth.h"
#include "util/run_context.h"
#include "util/thread_pool.h"

namespace maras {
namespace {

faers::PreprocessResult BuildCorpus(uint64_t seed, size_t reports) {
  faers::GeneratorConfig config;
  config.seed = seed;
  config.n_reports = reports;
  config.n_drugs = 500;
  config.n_adrs = 200;
  config.signals = faers::DefaultSignals(reports * 2);  // strong signals
  faers::SyntheticGenerator generator(config);
  auto dataset = generator.Generate();
  EXPECT_TRUE(dataset.ok());
  faers::Preprocessor preprocessor{faers::PreprocessOptions{}};
  auto pre = preprocessor.Process(*dataset);
  EXPECT_TRUE(pre.ok());
  return *std::move(pre);
}

class SeedSweepTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SeedSweepTest, CaseStudySignalsRecoveredAtEverySeed) {
  faers::PreprocessResult pre = BuildCorpus(GetParam(), 3000);
  core::AnalyzerOptions options;
  options.mining.min_support = 4;
  options.mining.max_itemset_size = 7;
  core::MarasAnalyzer analyzer(options);
  auto analysis = analyzer.Analyze(pre);
  ASSERT_TRUE(analysis.ok());
  auto ranked = core::RankMcacs(
      analysis->mcacs, core::RankingMethod::kExclusivenessConfidence, {});
  ASSERT_FALSE(ranked.empty());

  // The three headline case studies must always be mined.
  for (const auto* name :
       {"IBUPROFEN", "METAMIZOLE", "PREVACID", "NEXIUM"}) {
    EXPECT_TRUE(pre.items.Contains(name)) << name;
  }
  auto find_pair = [&](const char* d1, const char* d2, const char* adr) {
    auto id1 = pre.items.Lookup(d1);
    auto id2 = pre.items.Lookup(d2);
    auto ida = pre.items.Lookup(adr);
    if (!id1.ok() || !id2.ok() || !ida.ok()) return false;
    mining::Itemset drugs = mining::MakeItemset({*id1, *id2});
    for (const auto& entry : ranked) {
      if (mining::IsSubset(drugs, entry.mcac.target.drugs) &&
          mining::Contains(entry.mcac.target.adrs, *ida)) {
        return true;
      }
    }
    return false;
  };
  EXPECT_TRUE(find_pair("IBUPROFEN", "METAMIZOLE", "ACUTE RENAL FAILURE"));
  EXPECT_TRUE(find_pair("PREVACID", "NEXIUM", "OSTEOPOROSIS"));
  EXPECT_TRUE(find_pair("ZOMETA", "PRILOSEC", "OSTEONECROSIS OF JAW"));
}

TEST_P(SeedSweepTest, AnalyzerInvariantsHoldAtEverySeed) {
  faers::PreprocessResult pre = BuildCorpus(GetParam() + 17, 2000);
  core::AnalyzerOptions options;
  options.mining.min_support = 5;
  core::MarasAnalyzer analyzer(options);
  auto analysis = analyzer.Analyze(pre);
  ASSERT_TRUE(analysis.ok());
  EXPECT_GE(analysis->stats.total_rules, analysis->stats.filtered_rules);
  EXPECT_GE(analysis->stats.filtered_rules, analysis->stats.closed_mixed);
  EXPECT_GE(analysis->stats.closed_mixed, analysis->stats.mcac_count);
  std::set<mining::Itemset> seen;
  for (const core::Mcac& mcac : analysis->mcacs) {
    // Targets are unique, closed, supported-by-construction rules.
    EXPECT_TRUE(seen.insert(mcac.target.CompleteItemset()).second);
    EXPECT_TRUE(mining::IsClosedInDatabase(pre.transactions,
                                           mcac.target.CompleteItemset()));
    EXPECT_GE(mcac.target.drugs.size(), 2u);
    EXPECT_EQ(mcac.levels.size(), mcac.target.drugs.size() - 1);
    EXPECT_EQ(mcac.ContextSize(),
              (1u << mcac.target.drugs.size()) - 2u);
    EXPECT_GT(mcac.target.confidence, 0.0);
    EXPECT_LE(mcac.target.confidence, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweepTest,
                         ::testing::Values(11, 222, 3333, 44444, 555555));

TEST(DeterminismTest, FullPipelineIsByteIdenticalAcrossRuns) {
  // Two completely independent end-to-end runs (generation, cleaning,
  // mining, clustering, ranking, export) must agree byte for byte — the
  // property every bench and every recorded experiment relies on.
  auto run_once = []() {
    faers::PreprocessResult pre = BuildCorpus(31337, 1500);
    core::AnalyzerOptions options;
    options.mining.min_support = 5;
    core::MarasAnalyzer analyzer(options);
    auto analysis = analyzer.Analyze(pre);
    EXPECT_TRUE(analysis.ok());
    return core::ExportAnalysisToJson(
        *analysis, pre.items,
        core::RankingMethod::kExclusivenessConfidence, {});
  };
  std::string first = run_once();
  std::string second = run_once();
  EXPECT_GT(first.size(), 1000u);
  EXPECT_EQ(first, second);
}

TEST(DeterminismTest, StrictIngestOfWrittenQuarterIsByteIdentical) {
  // The strict (default) ingest policy must be an exact identity on clean
  // data: analyzing a quarter straight from memory and analyzing the same
  // quarter after an ASCII write + strict re-read must export byte-identical
  // JSON.
  faers::GeneratorConfig config;
  config.seed = 424242;
  config.n_reports = 1200;
  config.n_drugs = 400;
  config.n_adrs = 150;
  config.signals = faers::DefaultSignals(2400);
  faers::SyntheticGenerator generator(config);
  auto dataset = generator.Generate();
  ASSERT_TRUE(dataset.ok());

  auto export_json = [](const faers::QuarterDataset& quarter) {
    faers::Preprocessor preprocessor{faers::PreprocessOptions{}};
    auto pre = preprocessor.Process(quarter);
    EXPECT_TRUE(pre.ok());
    core::AnalyzerOptions options;
    options.mining.min_support = 5;
    auto analysis = core::MarasAnalyzer(options).Analyze(*pre);
    EXPECT_TRUE(analysis.ok());
    return core::ExportAnalysisToJson(
        *analysis, pre->items,
        core::RankingMethod::kExclusivenessConfidence, {});
  };

  std::string direct = export_json(*dataset);

  auto files = faers::WriteAsciiQuarter(*dataset);
  ASSERT_TRUE(files.ok());
  faers::IngestReport report;
  auto reread = faers::ReadAsciiQuarter(*files, dataset->year,
                                        dataset->quarter,
                                        faers::IngestOptions{}, &report);
  ASSERT_TRUE(reread.ok());
  EXPECT_EQ(report.rows_rejected, 0u);
  EXPECT_TRUE(report.quarantined.empty());
  ASSERT_EQ(reread->reports.size(), dataset->reports.size());

  std::string roundtripped = export_json(*reread);
  EXPECT_GT(direct.size(), 1000u);
  EXPECT_EQ(direct, roundtripped);
}

class SupportSweepTest : public ::testing::TestWithParam<size_t> {};

TEST_P(SupportSweepTest, McacCountMonotoneInSupportThreshold) {
  static faers::PreprocessResult* pre = nullptr;
  if (pre == nullptr) pre = new faers::PreprocessResult(BuildCorpus(9, 2500));
  core::AnalyzerOptions lo_options;
  lo_options.mining.min_support = GetParam();
  core::AnalyzerOptions hi_options;
  hi_options.mining.min_support = GetParam() + 3;
  auto lo = core::MarasAnalyzer(lo_options).Analyze(*pre);
  auto hi = core::MarasAnalyzer(hi_options).Analyze(*pre);
  ASSERT_TRUE(lo.ok());
  ASSERT_TRUE(hi.ok());
  EXPECT_GE(lo->stats.total_rules, hi->stats.total_rules);
  EXPECT_GE(lo->stats.filtered_rules, hi->stats.filtered_rules);
  EXPECT_GE(lo->stats.mcac_count, hi->stats.mcac_count);
  // Every higher-threshold target also exists at the lower threshold.
  std::set<mining::Itemset> lo_targets;
  for (const auto& mcac : lo->mcacs) {
    lo_targets.insert(mcac.target.CompleteItemset());
  }
  for (const auto& mcac : hi->mcacs) {
    EXPECT_TRUE(lo_targets.count(mcac.target.CompleteItemset()) > 0)
        << mining::ToString(mcac.target.CompleteItemset());
  }
}

INSTANTIATE_TEST_SUITE_P(Thresholds, SupportSweepTest,
                         ::testing::Values(4, 6, 9, 14));

// The concurrency robustness cases below are the ones the MARAS_TSAN build
// exists for: they hammer the pool's queue, the shared read-only mining
// structures, and the parallel pipeline layers, so ThreadSanitizer gets to
// observe every lock-ordering and publication pattern the library uses.

TEST(ConcurrencyRobustnessTest, PoolSurvivesChurnAndMixedWorkloads) {
  for (int round = 0; round < 20; ++round) {
    ThreadPool pool(1 + round % 4);
    std::atomic<uint64_t> sum{0};
    for (int t = 0; t < 50; ++t) {
      pool.Submit([&sum, t] { sum.fetch_add(static_cast<uint64_t>(t)); });
    }
    pool.Wait();
    EXPECT_EQ(sum.load(), 1225u);  // 0 + 1 + ... + 49
    // Resubmit after Wait, then let the destructor drain the tail.
    for (int t = 0; t < 10; ++t) {
      pool.Submit([&sum] { sum.fetch_add(1); });
    }
  }
}

TEST(ConcurrencyRobustnessTest, ParallelMiningMatchesSerialUnderStress) {
  // Repeated parallel runs over one shared corpus: every FP-Growth task
  // reads the same global tree while sibling tasks run; any unsound
  // publication shows up as a TSAN report or an output diff.
  faers::PreprocessResult pre = BuildCorpus(777, 1500);
  mining::MiningOptions serial{.min_support = 5, .max_itemset_size = 6};
  auto expect = mining::FpGrowth(serial).Mine(pre.transactions);
  ASSERT_TRUE(expect.ok());
  for (size_t threads : {2u, 4u, 8u}) {
    mining::MiningOptions options = serial;
    options.num_threads = threads;
    auto got = mining::FpGrowth(options).Mine(pre.transactions);
    ASSERT_TRUE(got.ok());
    ASSERT_EQ(got->size(), expect->size()) << threads << " threads";
    for (size_t i = 0; i < got->size(); ++i) {
      ASSERT_EQ(got->itemsets()[i].items, expect->itemsets()[i].items);
      ASSERT_EQ(got->itemsets()[i].support, expect->itemsets()[i].support);
    }
  }
}

TEST(ConcurrencyRobustnessTest, ParallelForWritesEverySlotOnce) {
  // Large fan-out with tiny tasks: maximizes queue contention relative to
  // work, the worst case for the dispatch path.
  const size_t n = 20000;
  std::vector<uint8_t> hits(n, 0);
  ParallelFor(8, n, [&hits](size_t i) { ++hits[i]; });
  size_t total = 0;
  for (uint8_t h : hits) total += h;
  EXPECT_EQ(total, n);
}

// ---------------------------------------------------------------------------
// Resource governance under a pathological mine. min_support = 2 with no
// size cap on a dense corpus is the paper's own worst case (Section 1.3
// mines at very low support): ungoverned it explodes combinatorially. A
// governed mine must stop with the right code — promptly, without hanging
// or exhausting the machine.
// ---------------------------------------------------------------------------

// Every transaction shares 40 items, so every one of the 2^40 subsets is
// frequent at min_support = 2: an ungoverned unbounded mine of this database
// cannot finish. The governed one must trip instead of hanging or OOMing.
mining::TransactionDatabase ExplosiveDatabase() {
  mining::TransactionDatabase db;
  for (size_t t = 0; t < 200; ++t) {
    mining::Itemset items;
    for (mining::ItemId i = 0; i < 40; ++i) items.push_back(i);
    items.push_back(static_cast<mining::ItemId>(40 + (t % 20)));
    db.Add(items);
  }
  return db;
}

mining::MiningOptions Pathological(const RunContext* ctx,
                                   size_t num_threads) {
  mining::MiningOptions options;
  options.min_support = 2;
  options.max_itemset_size = 0;  // unbounded
  options.num_threads = num_threads;
  options.context = ctx;
  return options;
}

TEST(GovernanceRobustnessTest, DeadlineTripsWithinTwiceTheAllottedTime) {
  mining::TransactionDatabase db = ExplosiveDatabase();
  for (size_t threads : {1u, 8u}) {
    RunContext ctx;
    constexpr int64_t kDeadlineMs = 500;
    ctx.deadline = Deadline::AfterMillis(kDeadlineMs);
    auto start = std::chrono::steady_clock::now();
    auto mined = mining::FpGrowth(Pathological(&ctx, threads)).Mine(db);
    auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                       std::chrono::steady_clock::now() - start)
                       .count();
    ASSERT_FALSE(mined.ok())
        << threads << " threads: the explosive mine finished?!";
    ASSERT_TRUE(mined.status().IsDeadlineExceeded())
        << mined.status().ToString();
    // The poll interval bounds overshoot: well within 2x the deadline.
    EXPECT_LT(elapsed, 2 * kDeadlineMs) << threads << " threads";
    // Provenance names the stage that tripped.
    EXPECT_NE(mined.status().ToString().find("fp-growth"), std::string::npos)
        << mined.status().ToString();
  }
}

TEST(GovernanceRobustnessTest, MemoryBudgetTripsAsResourceExhausted) {
  mining::TransactionDatabase db = ExplosiveDatabase();
  for (size_t threads : {1u, 8u}) {
    MemoryBudget budget(1 << 20);  // 1 MiB: far below the explosion
    RunContext ctx;
    ctx.budget = &budget;
    auto mined = mining::FpGrowth(Pathological(&ctx, threads)).Mine(db);
    ASSERT_TRUE(mined.status().IsResourceExhausted())
        << threads << " threads: " << mined.status().ToString();
    EXPECT_NE(mined.status().ToString().find("memory budget"),
              std::string::npos)
        << mined.status().ToString();
    // The failed mine released its charges, so the budget is reusable.
    EXPECT_FALSE(budget.Exhausted());
    EXPECT_GT(budget.peak(), 0u);
  }
}

TEST(GovernanceRobustnessTest, ExternalCancellationStopsTheMine) {
  mining::TransactionDatabase db = ExplosiveDatabase();
  CancellationToken token;
  RunContext ctx;
  ctx.cancel = &token;
  std::thread watchdog([&token] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    token.Cancel();
  });
  auto mined = mining::FpGrowth(Pathological(&ctx, 4)).Mine(db);
  watchdog.join();
  ASSERT_TRUE(mined.status().IsCancelled()) << mined.status().ToString();
}

// Item i appears in transaction t iff t % i == 0, so supp(S) = N / lcm(S):
// escalating min_support genuinely shrinks the family, giving the
// degradation ladder something to converge on (unlike ExplosiveDatabase,
// where every subset has the same support).
mining::TransactionDatabase GradedDatabase() {
  mining::TransactionDatabase db;
  for (size_t t = 1; t <= 2000; ++t) {
    mining::Itemset items;
    for (mining::ItemId i = 2; i <= 40; ++i) {
      if (t % i == 0) items.push_back(i);
    }
    if (!items.empty()) db.Add(items);
  }
  return db;
}

TEST(GovernanceRobustnessTest, DegradationLadderYieldsTruncatedResult) {
  mining::TransactionDatabase db = GradedDatabase();
  MemoryBudget budget(1 << 16);  // ~a few hundred itemsets
  RunContext ctx;
  ctx.budget = &budget;
  core::DegradationOptions degradation;
  degradation.enabled = true;
  degradation.max_retries = 10;
  degradation.support_factor = 4.0;
  auto mined =
      core::MineWithDegradation(db, Pathological(&ctx, 1), degradation);
  ASSERT_TRUE(mined.ok()) << mined.status().ToString();
  EXPECT_TRUE(mined->truncated);
  EXPECT_GT(mined->min_support_used, 2u);
  ASSERT_FALSE(mined->notes.empty());
  EXPECT_NE(mined->notes[0].find("memory budget exhausted"),
            std::string::npos)
      << mined->notes[0];
  EXPECT_GT(mined->frequent.size(), 0u)
      << "the degraded mine must still produce the high-support family";
}

TEST(GovernanceRobustnessTest, DegradationNeverRetriesDeadlineTrips) {
  mining::TransactionDatabase db = ExplosiveDatabase();
  RunContext ctx;
  ctx.deadline = Deadline::AfterMillis(200);
  core::DegradationOptions degradation;
  degradation.enabled = true;
  degradation.max_retries = 10;
  auto mined =
      core::MineWithDegradation(db, Pathological(&ctx, 1), degradation);
  ASSERT_TRUE(mined.status().IsDeadlineExceeded())
      << mined.status().ToString();
}

TEST(GovernanceRobustnessTest, UngovernedBoundedMineStillSucceeds) {
  // Governance is opt-in: the explosive database with a size cap and no
  // context mines fine.
  mining::TransactionDatabase db = ExplosiveDatabase();
  mining::MiningOptions options;
  options.min_support = 20;
  options.max_itemset_size = 2;
  auto mined = mining::FpGrowth(options).Mine(db);
  ASSERT_TRUE(mined.ok()) << mined.status().ToString();
  EXPECT_GT(mined->size(), 0u);
}

}  // namespace
}  // namespace maras
