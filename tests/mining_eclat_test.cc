#include "mining/eclat.h"

#include <gtest/gtest.h>

#include "mining/apriori.h"
#include "mining/fpgrowth.h"
#include "util/random.h"

namespace maras::mining {
namespace {

TransactionDatabase RandomDb(maras::Rng* rng, int transactions, int items,
                             int max_len) {
  TransactionDatabase db;
  for (int t = 0; t < transactions; ++t) {
    Itemset txn;
    for (size_t i = 1 + rng->Uniform(static_cast<uint64_t>(max_len)); i > 0;
         --i) {
      txn.push_back(static_cast<ItemId>(rng->Uniform(items)));
    }
    db.Add(std::move(txn));
  }
  return db;
}

TEST(EclatTest, SimpleDatabase) {
  TransactionDatabase db;
  db.Add({0, 1, 2});
  db.Add({0, 1});
  db.Add({0, 2});
  db.Add({1, 2});
  Eclat miner(MiningOptions{.min_support = 2});
  auto result = miner.Mine(db);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->SupportOf({0}), 3u);
  EXPECT_EQ(result->SupportOf({0, 1}), 2u);
  EXPECT_EQ(result->SupportOf({0, 2}), 2u);
  EXPECT_EQ(result->SupportOf({1, 2}), 2u);
  EXPECT_FALSE(result->ContainsItemset({0, 1, 2}));  // support 1
}

TEST(EclatTest, MatchesAprioriAndFpGrowth) {
  maras::Rng rng(808);
  for (int trial = 0; trial < 10; ++trial) {
    TransactionDatabase db = RandomDb(&rng, 100, 10, 6);
    MiningOptions options{.min_support = 2 + rng.Uniform(4)};
    auto ec = Eclat(options).Mine(db);
    auto ap = Apriori(options).Mine(db);
    auto fp = FpGrowth(options).Mine(db);
    ASSERT_TRUE(ec.ok());
    ASSERT_TRUE(ap.ok());
    ASSERT_TRUE(fp.ok());
    ASSERT_EQ(ec->size(), ap->size()) << "trial " << trial;
    ASSERT_EQ(ec->size(), fp->size()) << "trial " << trial;
    for (size_t i = 0; i < ec->size(); ++i) {
      EXPECT_EQ(ec->itemsets()[i].items, ap->itemsets()[i].items);
      EXPECT_EQ(ec->itemsets()[i].support, ap->itemsets()[i].support);
    }
  }
}

TEST(EclatTest, MaxItemsetSizeRespected) {
  maras::Rng rng(31);
  TransactionDatabase db = RandomDb(&rng, 80, 8, 6);
  MiningOptions options{.min_support = 2, .max_itemset_size = 2};
  auto ec = Eclat(options).Mine(db);
  auto ap = Apriori(options).Mine(db);
  ASSERT_TRUE(ec.ok());
  ASSERT_TRUE(ap.ok());
  ASSERT_EQ(ec->size(), ap->size());
  for (const auto& fi : ec->itemsets()) {
    EXPECT_LE(fi.items.size(), 2u);
  }
}

TEST(EclatTest, MinSupportZeroRejected) {
  Eclat miner(MiningOptions{.min_support = 0});
  TransactionDatabase db;
  db.Add({1});
  EXPECT_TRUE(miner.Mine(db).status().IsInvalidArgument());
}

TEST(EclatTest, EmptyDatabase) {
  Eclat miner(MiningOptions{.min_support = 1});
  TransactionDatabase db;
  auto result = miner.Mine(db);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 0u);
}

TEST(EclatTest, SupportsMatchDatabaseCounts) {
  maras::Rng rng(99);
  TransactionDatabase db = RandomDb(&rng, 150, 12, 7);
  Eclat miner(MiningOptions{.min_support = 4});
  auto result = miner.Mine(db);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->size(), 0u);
  for (const auto& fi : result->itemsets()) {
    EXPECT_EQ(db.Support(fi.items), fi.support) << ToString(fi.items);
  }
}

}  // namespace
}  // namespace maras::mining
