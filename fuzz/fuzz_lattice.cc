// Differential fuzz harness for the concept lattice. The input decodes
// into a small transaction database (every byte string is a valid corpus:
// one byte = one transaction's item bitmask over a <=7-item universe), the
// closed family is mined uncapped, and the lattice built from it is checked
// against brute-force oracles: node set == closed family with exact
// supports, covering edges == the Hasse diagram of strict inclusion,
// Subsets/Supersets mutually transposed, build byte-identical at 1 and 2
// threads, and — the property MCAC construction rests on — DescendToClosure
// from any closed node returns a node whose support equals the database
// support of the queried subset, with SubsetSupportCache agreeing on every
// resolution path. Any disagreement traps: a wrong lattice walk silently
// mis-measures contextual rules rather than crashing.
//
// Input layout:
//   [0]    universe size selector (2..7 items)
//   [1]    min_support selector (1..3)
//   [2..]  one transaction per byte (bitmask over the universe; zero-mask
//          bytes yield empty transactions and are skipped), capped at 64

#include <algorithm>
#include <cstdint>
#include <vector>

#include "fuzz/fuzz_target.h"
#include "mining/closed_itemsets.h"
#include "mining/concept_lattice.h"
#include "mining/frequent_itemsets.h"
#include "mining/itemset.h"
#include "mining/transaction_db.h"
#include "util/run_context.h"

namespace {

using maras::mining::ConceptLattice;
using maras::mining::Itemset;
using maras::mining::SubsetSupportCache;

void Require(bool ok) {
  if (!ok) __builtin_trap();
}

Itemset MaskToItemset(uint8_t mask, size_t universe) {
  Itemset items;
  for (size_t i = 0; i < universe; ++i) {
    if (mask & (1u << i)) items.push_back(static_cast<maras::mining::ItemId>(i));
  }
  return items;
}

Itemset SpanToItemset(maras::mining::LatticeSpan<maras::mining::ItemId> span) {
  return Itemset(span.begin(), span.end());
}

bool IsProperSubset(const Itemset& a, const Itemset& b) {
  return a.size() < b.size() && maras::mining::IsSubset(a, b);
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size < 3) return 0;
  const size_t universe = 2 + data[0] % 6;  // 2..7
  const size_t min_support = 1 + data[1] % 3;

  maras::mining::TransactionDatabase db;
  const size_t n_txn = std::min<size_t>(size - 2, 64);
  for (size_t t = 0; t < n_txn; ++t) {
    Itemset txn = MaskToItemset(data[2 + t], universe);
    if (!txn.empty()) db.Add(std::move(txn));
  }
  if (db.size() == 0) return 0;

  // Uncapped mine, so the descent exactness precondition holds for every
  // closed node (concept_lattice.h).
  maras::mining::MiningOptions options{.min_support = min_support,
                                       .max_itemset_size = 0,
                                       .num_threads = 1};
  auto closed = maras::mining::MineClosed(db, options);
  Require(closed.ok());

  const maras::RunContext ctx;
  auto built = ConceptLattice::Build(*closed, /*num_threads=*/1, ctx);
  Require(built.ok());
  const ConceptLattice& lattice = *built;

  // Nodes mirror the closed family, in canonical order, supports exact.
  const auto& family = closed->itemsets();
  Require(lattice.node_count() == family.size());
  for (uint32_t n = 0; n < lattice.node_count(); ++n) {
    Require(SpanToItemset(lattice.NodeItems(n)) == family[n].items);
    Require(lattice.NodeSupport(n) == family[n].support);
    Require(lattice.NodeSupport(n) == db.Support(family[n].items));
    Require(lattice.FindNode(family[n].items) == n);
  }

  // Covering edges == brute-force Hasse diagram; Supersets transposes
  // Subsets; edge_count counts each edge once.
  size_t edges = 0;
  for (uint32_t n = 0; n < lattice.node_count(); ++n) {
    std::vector<uint32_t> want;
    for (uint32_t m = 0; m < lattice.node_count(); ++m) {
      if (!IsProperSubset(family[m].items, family[n].items)) continue;
      bool maximal = true;
      for (uint32_t k = 0; k < lattice.node_count() && maximal; ++k) {
        maximal = !(IsProperSubset(family[m].items, family[k].items) &&
                    IsProperSubset(family[k].items, family[n].items));
      }
      if (maximal) want.push_back(m);
    }
    const auto got = lattice.Subsets(n);
    Require(got.size() == want.size());
    for (size_t i = 0; i < want.size(); ++i) Require(got[i] == want[i]);
    edges += want.size();
    for (uint32_t m : want) {
      bool found = false;
      for (uint32_t up : lattice.Supersets(m)) found = found || up == n;
      Require(found);
    }
  }
  Require(lattice.edge_count() == edges);

  // Build is a pure function of the family: 2-thread build is identical.
  auto built2 = ConceptLattice::Build(*closed, /*num_threads=*/2, ctx);
  Require(built2.ok());
  Require(built2->node_count() == lattice.node_count());
  Require(built2->edge_count() == lattice.edge_count());
  for (uint32_t n = 0; n < lattice.node_count(); ++n) {
    Require(SpanToItemset(built2->NodeItems(n)) ==
            SpanToItemset(lattice.NodeItems(n)));
    const auto a = lattice.Subsets(n);
    const auto b = built2->Subsets(n);
    Require(a.size() == b.size());
    for (size_t i = 0; i < a.size(); ++i) Require(a[i] == b[i]);
  }

  // Descent + cache exactness: from every closed node, every non-empty
  // subset of its itemset resolves to the database support — via the raw
  // walk, via the cache's lattice path, and via the forced bitmap fallback.
  SubsetSupportCache cache(&db);
  for (uint32_t n = 0; n < lattice.node_count(); ++n) {
    const Itemset node_items = SpanToItemset(lattice.NodeItems(n));
    if (node_items.size() > 5) continue;  // 2^5 subsets per node is plenty
    const size_t subsets = size_t{1} << node_items.size();
    for (size_t mask = 1; mask < subsets; ++mask) {
      Itemset subset;
      for (size_t i = 0; i < node_items.size(); ++i) {
        if (mask & (size_t{1} << i)) subset.push_back(node_items[i]);
      }
      const uint64_t want = db.Support(subset);
      const uint32_t end = lattice.DescendToClosure(n, subset);
      Require(end != ConceptLattice::kNotFound);
      Require(lattice.NodeSupport(end) == want);
      Require(lattice.NodeContains(end, subset));
      Require(cache.Support(subset, &lattice, n) == want);
      Require(cache.Support(subset, nullptr, ConceptLattice::kNotFound) ==
              want);
    }
  }
  return 0;
}
