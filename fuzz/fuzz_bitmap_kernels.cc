// Fuzz harness for the mining/bitmap.h kernel layer. The input is decoded
// into a universe, a representation policy, and two sorted tid-lists
// (delta-coded, so every byte string decodes to a valid input); the lists
// are then pushed through every kernel — dense<->sparse conversions,
// AND/AND-NOT/AND3 popcounts, materializing AND, galloping intersection,
// bitmap probe, and VerticalSlice intersection under the chosen policy —
// and each result is checked against a scalar std::set_intersection /
// std::set_difference oracle. Any disagreement traps: the kernels back
// support counting for the miner and the contingency batch, where a single
// off-by-one silently corrupts statistics rather than crashing.
//
// Input layout:
//   [0]    representation policy selector
//   [1..2] universe (little-endian, modded into [0, 8192])
//   [3]    split point between the two delta streams
//   [4..]  payload: first part decodes tid-list A, rest decodes tid-list B

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <vector>

#include "fuzz/fuzz_target.h"
#include "mining/bitmap.h"

namespace {

using maras::mining::TidBitmap;
using maras::mining::TransactionId;
using Tids = std::vector<TransactionId>;

// Strictly-increasing tids from a delta stream, truncated at the universe.
Tids DecodeTids(const uint8_t* data, size_t size, size_t universe) {
  Tids tids;
  uint64_t next = 0;
  for (size_t i = 0; i < size; ++i) {
    next += i == 0 ? data[i] : 1u + data[i];
    if (next >= universe) break;
    tids.push_back(static_cast<TransactionId>(next));
  }
  return tids;
}

Tids OracleIntersect(const Tids& a, const Tids& b) {
  Tids out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

Tids OracleDifference(const Tids& a, const Tids& b) {
  Tids out;
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(out));
  return out;
}

void Require(bool ok) {
  if (!ok) __builtin_trap();
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size < 4) return 0;
  const maras::mining::BitmapPolicy policies[] = {
      maras::mining::BitmapPolicy::kAuto, maras::mining::BitmapPolicy::kDense,
      maras::mining::BitmapPolicy::kSparse};
  const maras::mining::BitmapPolicy policy = policies[data[0] % 3];
  const size_t universe =
      (static_cast<size_t>(data[1]) | (static_cast<size_t>(data[2]) << 8)) %
      8193;
  const uint8_t* payload = data + 4;
  const size_t payload_size = size - 4;
  const size_t split =
      payload_size * static_cast<size_t>(data[3]) / 255;

  const Tids a = DecodeTids(payload, split, universe);
  const Tids b = DecodeTids(payload + split, payload_size - split, universe);
  const Tids both = OracleIntersect(a, b);
  const Tids only_a = OracleDifference(a, b);

  // Dense<->sparse conversions round-trip and preserve cardinality.
  const TidBitmap abm = TidBitmap::FromTids(a, universe);
  const TidBitmap bbm = TidBitmap::FromTids(b, universe);
  Require(maras::mining::BitmapPopcount(abm) == a.size());
  Require(abm.ToTids() == a);
  for (TransactionId tid : a) Require(abm.Test(tid));

  // Word-wise kernels against the merge oracles.
  Require(maras::mining::AndPopcount(abm, bbm) == both.size());
  Require(maras::mining::AndPopcount(bbm, abm) == both.size());
  Require(maras::mining::AndNotPopcount(abm, bbm) == only_a.size());
  Require(maras::mining::And3Popcount(abm, bbm, abm) == both.size());
  TidBitmap out;
  Require(maras::mining::BitmapAnd(abm, bbm, &out) == both.size());
  Require(out.ToTids() == both);
  Require(maras::mining::BitmapAndNot(abm, bbm, &out) == only_a.size());
  Require(out.ToTids() == only_a);

  // Sparse kernels, both argument orders (galloping walks the shorter side).
  Require(maras::mining::GallopIntersectCount(a, b) == both.size());
  Require(maras::mining::GallopIntersectCount(b, a) == both.size());
  Tids gallop;
  maras::mining::GallopIntersect(a, b, &gallop);
  Require(gallop == both);
  Require(maras::mining::ProbeCount(a, bbm) == both.size());
  Tids probed;
  maras::mining::ProbeIntersect(a, bbm, &probed);
  Require(probed == both);

  // Slice intersection under the selected policy, plus a mixed-rep pair.
  using maras::mining::VerticalSlice;
  const VerticalSlice sa = VerticalSlice::Make(1, a, universe, policy);
  const VerticalSlice sb = VerticalSlice::Make(2, b, universe, policy);
  const VerticalSlice joined =
      maras::mining::IntersectSlices(sa, sb, universe, policy);
  Require(joined.support == both.size());
  if (joined.support > 0) {
    Require((joined.dense ? joined.bitmap.ToTids() : joined.tids) == both);
  }
  const VerticalSlice dense_a =
      VerticalSlice::Make(1, a, universe, maras::mining::BitmapPolicy::kDense);
  const VerticalSlice sparse_b =
      VerticalSlice::Make(2, b, universe,
                          maras::mining::BitmapPolicy::kSparse);
  Require(maras::mining::IntersectSlices(dense_a, sparse_b, universe, policy)
              .support == both.size());
  Require(maras::mining::IntersectSlices(sparse_b, dense_a, universe, policy)
              .support == both.size());
  return 0;
}
