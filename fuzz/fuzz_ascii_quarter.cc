// Fuzz harness for the FAERS quarterly ASCII parser — the outermost
// untrusted-input surface: real extracts arrive from the FDA as flat files
// and PR 1's corruption study showed how many ways they rot in transit.
//
// Input layout: the blob is split on 0x1F (unit separator, never valid in
// the tables) into DEMO / DRUG / REAC file contents. Both the strict and
// the quarantine read paths run; any Status outcome is acceptable, crashes
// and sanitizer reports are not.

#include <string>
#include <string_view>

#include "faers/ascii_format.h"
#include "faers/ingest.h"
#include "fuzz/fuzz_target.h"

namespace {

maras::faers::AsciiQuarterFiles SplitInput(std::string_view blob) {
  maras::faers::AsciiQuarterFiles files;
  const size_t first = blob.find('\x1f');
  if (first == std::string_view::npos) {
    files.demo = std::string(blob);
    return files;
  }
  files.demo = std::string(blob.substr(0, first));
  const size_t second = blob.find('\x1f', first + 1);
  if (second == std::string_view::npos) {
    files.drug = std::string(blob.substr(first + 1));
    return files;
  }
  files.drug = std::string(blob.substr(first + 1, second - first - 1));
  files.reac = std::string(blob.substr(second + 1));
  return files;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string_view blob(reinterpret_cast<const char*>(data), size);
  const maras::faers::AsciiQuarterFiles files = SplitInput(blob);

  auto strict = maras::faers::ReadAsciiQuarter(files, 2014, 1);
  if (strict.ok()) {
    // A parse that succeeded strictly must also round-trip through the
    // writer without crashing.
    auto rewritten = maras::faers::WriteAsciiQuarter(*strict);
    MARAS_IGNORE_STATUS(rewritten);  // outcome irrelevant, only no-crash
  }

  maras::faers::IngestOptions options;
  options.policy = maras::faers::IngestPolicy::kQuarantine;
  options.max_bad_row_fraction = 1.0;  // never abort: walk every row
  options.max_quarantined_rows = 64;   // bound capture memory
  maras::faers::IngestReport report;
  auto lenient =
      maras::faers::ReadAsciiQuarter(files, 2014, 1, options, &report);
  MARAS_IGNORE_STATUS(lenient);  // outcome irrelevant, only no-crash
  return 0;
}
