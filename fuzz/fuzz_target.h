#ifndef MARAS_FUZZ_FUZZ_TARGET_H_
#define MARAS_FUZZ_FUZZ_TARGET_H_

#include <cstddef>
#include <cstdint>

// The libFuzzer entry point every harness in fuzz/ defines. Built two ways:
//
//   * MARAS_LIBFUZZER (clang): linked against -fsanitize=fuzzer, libFuzzer
//     provides main() and drives coverage-guided mutation.
//   * otherwise (gcc has no libFuzzer): linked with standalone_main.cc,
//     which replays a corpus and applies bounded deterministic mutations —
//     the fuzz-smoke mode every toolchain can run.
extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

#endif  // MARAS_FUZZ_FUZZ_TARGET_H_
