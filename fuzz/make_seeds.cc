// Generates the seed corpus for the fuzz harnesses. Seeds come from the
// same machinery the corruption study (faers/corruptor) trusts: a real
// synthetic FAERS quarter for the ASCII parser, real codec output for the
// checkpoint decoders, and representative openFDA-shaped documents for the
// JSON parser. Starting from valid inputs puts mutations on the boundary
// between accept and reject, where parser bugs live.
//
// Usage: make_seeds <output-dir>
//        (creates <output-dir>/{ascii,checkpoint,json,bitmap,snapshot})

#include <cstdio>
#include <filesystem>
#include <string>

#include "core/analyzer.h"
#include "core/checkpoint.h"
#include "core/ranking.h"
#include "faers/ascii_format.h"
#include "faers/generator.h"
#include "faers/preprocess.h"
#include "serve/snapshot_format.h"
#include "serve/snapshot_writer.h"
#include "util/delimited.h"
#include "util/status.h"

namespace {

using maras::core::ClosedCheckpoint;
using maras::core::QuarterCheckpoint;

maras::Status WriteFile(const std::filesystem::path& path,
                        const std::string& bytes) {
  return maras::AtomicWriteStringToFile(path.string(), bytes);
}

// The harness input framing: selector byte for the checkpoint decoders.
std::string WithSelector(unsigned char selector, const std::string& payload) {
  std::string out(1, static_cast<char>(selector));
  out += payload;
  return out;
}

maras::Status Generate(const std::filesystem::path& root) {
  namespace fs = std::filesystem;
  std::error_code ec;
  for (const char* sub : {"ascii", "checkpoint", "json", "bitmap",
                          "snapshot", "lattice"}) {
    fs::create_directories(root / sub, ec);
    if (ec) {
      return maras::Status::IOError("cannot create " +
                                    (root / sub).string());
    }
  }

  // --- ascii: a small but real synthetic quarter ---------------------------
  maras::faers::GeneratorConfig config;
  config.seed = 20260806;
  config.n_reports = 120;
  config.n_drugs = 40;
  config.n_adrs = 24;
  config.signals.push_back({.name = "seed-signal",
                            .drugs = {"WARFARIN", "ASPIRIN"},
                            .adrs = {"GASTROINTESTINAL HAEMORRHAGE"},
                            .reports = 12});
  maras::faers::SyntheticGenerator generator(config);
  auto dataset = generator.Generate();
  if (!dataset.ok()) return dataset.status();
  auto files = maras::faers::WriteAsciiQuarter(*dataset);
  if (!files.ok()) return files.status();

  std::string blob = files->demo;
  blob += '\x1f';
  blob += files->drug;
  blob += '\x1f';
  blob += files->reac;
  MARAS_RETURN_IF_ERROR(WriteFile(root / "ascii" / "quarter.bin", blob));

  const std::string tiny =
      "primaryid$caseid$caseversion$rept_cod$age$sex$occr_country\n"
      "100000001$9001$1$EXP$44$F$US\n"
      "\x1f"
      "primaryid$caseid$drug_seq$role_cod$drugname\n"
      "100000001$9001$1$PS$WARFARIN\n"
      "\x1f"
      "primaryid$caseid$pt\n"
      "100000001$9001$ANAEMIA\n";
  MARAS_RETURN_IF_ERROR(WriteFile(root / "ascii" / "tiny.bin", tiny));
  // Headers only: the smallest structurally-valid quarter.
  const std::string empty_tables =
      "primaryid$caseid$caseversion$rept_cod$age$sex$occr_country\n"
      "\x1f"
      "primaryid$caseid$drug_seq$role_cod$drugname\n"
      "\x1f"
      "primaryid$caseid$pt\n";
  MARAS_RETURN_IF_ERROR(WriteFile(root / "ascii" / "headers.bin",
                                  empty_tables));

  // --- checkpoint: real codec output behind each selector ------------------
  maras::faers::Preprocessor preprocessor({});
  auto preprocessed = preprocessor.Process(*dataset);
  if (!preprocessed.ok()) return preprocessed.status();

  MARAS_RETURN_IF_ERROR(WriteFile(
      root / "checkpoint" / "preprocess.bin",
      WithSelector(0, maras::core::EncodePreprocessResult(*preprocessed))));

  QuarterCheckpoint loaded;
  loaded.outcome.label = "2014Q1";
  loaded.outcome.loaded = true;
  loaded.result = *preprocessed;
  MARAS_RETURN_IF_ERROR(WriteFile(
      root / "checkpoint" / "quarter_loaded.bin",
      WithSelector(1, maras::core::EncodeQuarterCheckpoint(loaded))));

  QuarterCheckpoint skipped;
  skipped.outcome.label = "2014Q2";
  skipped.outcome.loaded = false;
  skipped.outcome.error = "IOError: DEMO14Q2.txt missing";
  MARAS_RETURN_IF_ERROR(WriteFile(
      root / "checkpoint" / "quarter_skipped.bin",
      WithSelector(1, maras::core::EncodeQuarterCheckpoint(skipped))));

  maras::mining::FrequentItemsetResult itemsets;
  itemsets.Add({1, 2}, 17);
  itemsets.Add({1, 2, 5}, 9);
  itemsets.Add({3}, 40);
  MARAS_RETURN_IF_ERROR(WriteFile(
      root / "checkpoint" / "itemsets.bin",
      WithSelector(2, maras::core::EncodeItemsetResult(itemsets))));

  ClosedCheckpoint closed;
  closed.stats.total_rules = 120;
  closed.stats.filtered_rules = 30;
  closed.stats.closed_mixed = 12;
  closed.stats.mcac_count = 4;
  closed.min_support_used = 5;
  closed.truncated = true;
  closed.notes = {"degraded: min_support escalated 2 -> 5"};
  closed.closed = itemsets;
  MARAS_RETURN_IF_ERROR(WriteFile(
      root / "checkpoint" / "closed.bin",
      WithSelector(3, maras::core::EncodeClosedCheckpoint(closed))));

  maras::core::DrugAdrRule rule;
  rule.drugs = {3, 9};
  rule.adrs = {14};
  rule.support = 21;
  rule.antecedent_support = 30;
  rule.consequent_support = 44;
  rule.confidence = 0.7;
  rule.lift = 1.0 / 3.0;
  MARAS_RETURN_IF_ERROR(WriteFile(
      root / "checkpoint" / "rules.bin",
      WithSelector(4, maras::core::EncodeRules({rule, rule}))));

  maras::core::RankedMcac ranked;
  ranked.mcac.target = rule;
  ranked.mcac.levels = {{rule}};
  ranked.score = 0.83;
  MARAS_RETURN_IF_ERROR(WriteFile(
      root / "checkpoint" / "ranked.bin",
      WithSelector(5, maras::core::EncodeRankedMcacs({ranked}))));

  // --- json: openFDA-shaped plus syntax-corner documents --------------------
  MARAS_RETURN_IF_ERROR(WriteFile(
      root / "json" / "openfda.json",
      R"({"meta":{"results":{"skip":0,"limit":2,"total":2}},"results":[)"
      R"({"safetyreportid":"10003301","serious":"1","patient":{)"
      R"("drug":[{"medicinalproduct":"WARFARIN","drugcharacterization":"1"},)"
      R"({"medicinalproduct":"ASPIRIN"}],)"
      R"("reaction":[{"reactionmeddrapt":"Gastrointestinal haemorrhage"}]}},)"
      R"({"safetyreportid":"10003302","patient":{)"
      R"("drug":[{"medicinalproduct":"METFORMIN"}],)"
      R"("reaction":[{"reactionmeddrapt":"Nausea"}]}}]})"));
  MARAS_RETURN_IF_ERROR(WriteFile(
      root / "json" / "corners.json",
      R"({"escape":"a\"b\\c\/dé\n","empty":{},"arr":[[],[null]],)"
      R"("nums":[0,-1,3.5,1e10,2.2250738585072014e-308,17179869184]})"));
  MARAS_RETURN_IF_ERROR(WriteFile(root / "json" / "scalar.json", "true"));

  // --- snapshot: a real signal snapshot plus boundary forgeries ------------
  // Valid image first: mutations start on the accept/reject boundary. The
  // forged variants pin the hostile-bytes classes the reader must reject —
  // truncation, forged section lengths, overlapping offsets — so even the
  // first fuzz pass exercises the structured rejection paths.
  {
    maras::core::AnalyzerOptions options;
    options.mining.min_support = 4;
    maras::core::MarasAnalyzer analyzer(options);
    auto analysis = analyzer.Analyze(*preprocessed);
    if (!analysis.ok()) return analysis.status();
    std::vector<maras::core::RankedMcac> signals = maras::core::RankMcacs(
        analysis->mcacs, maras::core::RankingMethod::kExclusivenessLift,
        maras::core::ExclusivenessOptions{});
    maras::serve::SnapshotInputs inputs;
    inputs.items = &preprocessed->items;
    inputs.signals = &signals;
    inputs.stats = analysis->stats;
    inputs.db = &preprocessed->transactions;
    inputs.primary_ids = &preprocessed->primary_ids;
    auto image = maras::serve::EncodeSignalSnapshot(inputs);
    if (!image.ok()) return image.status();
    MARAS_RETURN_IF_ERROR(
        WriteFile(root / "snapshot" / "valid.bin", *image));
    MARAS_RETURN_IF_ERROR(WriteFile(root / "snapshot" / "truncated.bin",
                                    image->substr(0, image->size() / 2)));
    MARAS_RETURN_IF_ERROR(WriteFile(
        root / "snapshot" / "header_only.bin",
        image->substr(0, maras::serve::kFileHeaderBytes +
                             maras::serve::kSectionCount *
                                 maras::serve::kSectionEntryBytes)));

    const auto put_u32 = [](std::string* bytes, size_t pos, uint32_t v) {
      for (int i = 0; i < 4; ++i) {
        (*bytes)[pos + static_cast<size_t>(i)] =
            static_cast<char>((v >> (8 * i)) & 0xFF);
      }
    };
    const auto get_u32 = [](const std::string& bytes, size_t pos) {
      uint32_t v = 0;
      for (int i = 3; i >= 0; --i) {
        v = (v << 8) |
            static_cast<unsigned char>(bytes[pos + static_cast<size_t>(i)]);
      }
      return v;
    };
    // Section table entry i sits at header + i*24; offset at +4, size at +8.
    const size_t entry1 = maras::serve::kFileHeaderBytes +
                          1 * maras::serve::kSectionEntryBytes;
    const size_t entry2 = maras::serve::kFileHeaderBytes +
                          2 * maras::serve::kSectionEntryBytes;
    std::string forged = *image;
    put_u32(&forged, entry1 + 8, get_u32(forged, entry1 + 8) + 8);
    MARAS_RETURN_IF_ERROR(
        WriteFile(root / "snapshot" / "forged_length.bin", forged));
    std::string overlap = *image;
    put_u32(&overlap, entry2 + 4, get_u32(overlap, entry1 + 4));
    MARAS_RETURN_IF_ERROR(
        WriteFile(root / "snapshot" / "overlap.bin", overlap));
    MARAS_RETURN_IF_ERROR(
        WriteFile(root / "snapshot" / "tiny.bin", "MSNP\x01"));
  }

  // --- bitmap: kernel-harness inputs ---------------------------------------
  // Layout (see fuzz_bitmap_kernels.cc): [policy][universe lo][universe hi]
  // [split][delta stream A | delta stream B]. Seeds pin the shapes the
  // kernels special-case: dense runs, skewed sparse lists, and an exact
  // one-word universe.
  const auto bitmap_seed = [](unsigned char policy, uint16_t universe,
                              unsigned char split, std::string deltas) {
    std::string out;
    out.push_back(static_cast<char>(policy));
    out.push_back(static_cast<char>(universe & 0xFF));
    out.push_back(static_cast<char>(universe >> 8));
    out.push_back(static_cast<char>(split));
    out += deltas;
    return out;
  };
  // Two dense runs of consecutive tids over a 200-wide universe.
  MARAS_RETURN_IF_ERROR(WriteFile(root / "bitmap" / "dense.bin",
                                  bitmap_seed(0, 200, 128,
                                              std::string(120, '\0'))));
  // Skewed: a short stride-200 list against a long stride-4 list.
  MARAS_RETURN_IF_ERROR(WriteFile(
      root / "bitmap" / "skew.bin",
      bitmap_seed(2, 8000, 20, std::string(15, '\xC8') +
                                   std::string(180, '\x03'))));
  // Exactly one word: every tid sits in the single (full) trailing word.
  MARAS_RETURN_IF_ERROR(WriteFile(root / "bitmap" / "word64.bin",
                                  bitmap_seed(1, 64, 100,
                                              std::string(80, '\0'))));

  // --- lattice: transaction-bitmask corpora --------------------------------
  // Layout (see fuzz_lattice.cc): [universe selector][min_support selector]
  // [one transaction bitmask per byte]. Seeds pin the lattice shapes whose
  // covering edges differ structurally: a layered chain (each mask a strict
  // superset of the previous), an antichain of disjoint pairs, and a dense
  // overlapping mix where closures collapse many subsets per node.
  const auto lattice_seed = [](unsigned char uni, unsigned char sup,
                               std::string masks) {
    std::string out;
    out.push_back(static_cast<char>(uni));
    out.push_back(static_cast<char>(sup));
    out += masks;
    return out;
  };
  MARAS_RETURN_IF_ERROR(WriteFile(
      root / "lattice" / "chain.bin",
      lattice_seed(4, 0, std::string(8, '\x01') + std::string(6, '\x03') +
                             std::string(4, '\x07') + std::string(2, '\x0F'))));
  MARAS_RETURN_IF_ERROR(WriteFile(
      root / "lattice" / "antichain.bin",
      lattice_seed(5, 1, std::string(5, '\x03') + std::string(5, '\x0C') +
                             std::string(5, '\x60'))));
  MARAS_RETURN_IF_ERROR(WriteFile(
      root / "lattice" / "dense.bin",
      lattice_seed(3, 0, std::string(6, '\x1F') + std::string(5, '\x17') +
                             std::string(4, '\x0E') + std::string(3, '\x19') +
                             std::string(7, '\x1C'))));
  return maras::Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <output-dir>\n", argv[0]);
    return 2;
  }
  maras::Status status = Generate(argv[1]);
  if (!status.ok()) {
    std::fprintf(stderr, "make_seeds: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("make_seeds: corpus written under %s\n", argv[1]);
  return 0;
}
