// Fuzz harness for the checkpoint payload codecs — the decoders gate crash
// recovery: a resumed pipeline feeds whatever survived on disk straight
// into these, so they must reject arbitrary bytes with Corruption, never
// crash or over-read.
//
// Input layout: first byte selects the decoder, the rest is the payload.
// When a decode succeeds, the value is re-encoded: encode must accept any
// value decode produced (the round-trip half of the codec contract).

#include <string_view>

#include "core/checkpoint.h"
#include "fuzz/fuzz_target.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size == 0) return 0;
  const std::string_view payload(reinterpret_cast<const char*>(data) + 1,
                                 size - 1);
  switch (data[0] % 7) {
    case 0: {
      auto v = maras::core::DecodePreprocessResult(payload);
      if (v.ok()) maras::core::EncodePreprocessResult(*v);
      break;
    }
    case 1: {
      auto v = maras::core::DecodeQuarterCheckpoint(payload);
      if (v.ok()) maras::core::EncodeQuarterCheckpoint(*v);
      break;
    }
    case 2: {
      auto v = maras::core::DecodeItemsetResult(payload);
      if (v.ok()) maras::core::EncodeItemsetResult(*v);
      break;
    }
    case 3: {
      auto v = maras::core::DecodeClosedCheckpoint(payload);
      if (v.ok()) maras::core::EncodeClosedCheckpoint(*v);
      break;
    }
    case 4: {
      auto v = maras::core::DecodeRules(payload);
      if (v.ok()) maras::core::EncodeRules(*v);
      break;
    }
    case 5: {
      auto v = maras::core::DecodeRankedMcacs(payload);
      if (v.ok()) maras::core::EncodeRankedMcacs(*v);
      break;
    }
    default: {
      auto v = maras::core::DecodeMineShardCheckpoint(payload);
      if (v.ok()) maras::core::EncodeMineShardCheckpoint(*v);
      break;
    }
  }
  return 0;
}
