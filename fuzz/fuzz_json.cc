// Fuzz harness for util/json — the parser sits on the openFDA ingest path,
// so it consumes bytes straight off the network. The parser must return
// Corruption (with position info) on anything malformed; a successful parse
// must serialize deterministically and re-parse to success.

#include <string_view>

#include "fuzz/fuzz_target.h"
#include "util/json.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string_view text(reinterpret_cast<const char*>(data), size);
  auto parsed = maras::json::Parse(text);
  if (!parsed.ok()) return 0;
  // Serialize/re-parse: the serializer's output is a JSON document by
  // contract, so it must survive its own parser.
  const std::string out = maras::json::Serialize(*parsed, (size % 2) != 0);
  auto reparsed = maras::json::Parse(out);
  if (!reparsed.ok()) {
    __builtin_trap();  // serializer emitted a document Parse rejects
  }
  return 0;
}
