// Standalone driver for the fuzz harnesses: replays a corpus and applies a
// bounded number of deterministic mutations per seed, calling the same
// LLVMFuzzerTestOneInput the coverage-guided build uses. This is what
// `ctest -L fuzz-smoke` runs — it works on every toolchain (gcc has no
// libFuzzer) and its run count is fixed, so the smoke stays time-bounded.
//
// Usage: <harness> [--mutations N] [--seed S] <file-or-dir>...
//
// Mutations are derived from an xorshift stream keyed on (seed, input
// bytes, round), mirroring the corruption study's operator set: byte
// flips, erases, inserts, truncations, and chunk duplication. The same
// invocation always replays the same inputs.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "fuzz/fuzz_target.h"

namespace {

uint64_t Fnv1a(const std::string& data) {
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : data) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

struct XorShift {
  uint64_t state;
  uint64_t Next() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  }
  // Uniform in [0, bound); bound must be nonzero.
  size_t Below(size_t bound) {
    return static_cast<size_t>(Next() % static_cast<uint64_t>(bound));
  }
};

std::string Mutate(const std::string& seed, XorShift* rng) {
  std::string out = seed;
  const size_t edits = 1 + rng->Below(4);
  for (size_t e = 0; e < edits; ++e) {
    if (out.empty()) {
      out.push_back(static_cast<char>(rng->Below(256)));
      continue;
    }
    const size_t pos = rng->Below(out.size());
    switch (rng->Below(5)) {
      case 0:  // flip a byte
        out[pos] = static_cast<char>(rng->Below(256));
        break;
      case 1:  // erase one byte
        out.erase(pos, 1);
        break;
      case 2:  // insert one byte
        out.insert(pos, 1, static_cast<char>(rng->Below(256)));
        break;
      case 3:  // truncate (torn file)
        out.resize(pos);
        break;
      default: {  // duplicate a chunk (repeated record)
        const size_t len = 1 + rng->Below(std::min<size_t>(
                                   32, out.size() - pos));
        out.insert(pos, out.substr(pos, len));
        break;
      }
    }
  }
  return out;
}

void RunOne(const std::string& bytes) {
  LLVMFuzzerTestOneInput(
      reinterpret_cast<const uint8_t*>(bytes.data()), bytes.size());
}

}  // namespace

int main(int argc, char** argv) {
  size_t mutations = 0;
  uint64_t seed = 1;
  std::vector<std::string> inputs;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--mutations") == 0 && i + 1 < argc) {
      mutations = static_cast<size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else {
      inputs.emplace_back(argv[i]);
    }
  }
  if (inputs.empty()) {
    std::fprintf(stderr,
                 "usage: %s [--mutations N] [--seed S] <file-or-dir>...\n",
                 argv[0]);
    return 2;
  }

  std::vector<std::filesystem::path> files;
  for (const std::string& input : inputs) {
    std::filesystem::path p(input);
    std::error_code ec;
    if (std::filesystem::is_directory(p, ec)) {
      for (const auto& entry : std::filesystem::directory_iterator(p)) {
        if (entry.is_regular_file()) files.push_back(entry.path());
      }
    } else if (std::filesystem::is_regular_file(p, ec)) {
      files.push_back(p);
    } else {
      std::fprintf(stderr, "fuzz: no such input: %s\n", input.c_str());
      return 2;
    }
  }
  std::sort(files.begin(), files.end());

  size_t runs = 0;
  for (const auto& path : files) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "fuzz: cannot read %s\n", path.c_str());
      return 2;
    }
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    RunOne(bytes);
    ++runs;
    XorShift rng{seed ^ Fnv1a(bytes) ^ 0x9e3779b97f4a7c15ull};
    for (size_t m = 0; m < mutations; ++m) {
      RunOne(Mutate(bytes, &rng));
      ++runs;
    }
  }
  std::printf("fuzz-smoke: %zu seed file(s), %zu total run(s), no crash\n",
              files.size(), runs);
  return 0;
}
