// Fuzz harness for the signal-snapshot reader — the serving path maps
// whatever bytes survived on disk and hands them to this validator, so it
// must reject arbitrary input with a structured Corruption status: no
// crash, no over-read, no partially usable snapshot.
//
// When validation accepts, the harness enforces the format's canonical
// round-trip property: rebuilding the writer inputs from the snapshot and
// re-encoding them must reproduce the input image byte-for-byte, and every
// accessor must succeed over the full index range the counts advertise.

#include <cstdint>
#include <string_view>

#include "serve/snapshot_reader.h"
#include "serve/snapshot_writer.h"
#include "util/logging.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  using namespace maras;
  const std::string_view bytes(reinterpret_cast<const char*>(data), size);
  auto snapshot = serve::SignalSnapshot::FromView(bytes);
  if (!snapshot.ok()) return 0;

  // Accepted: every advertised record must be reachable through the
  // bounds-validated accessors without an error.
  const serve::SnapshotCounts& counts = snapshot->counts();
  for (uint32_t i = 0; i < counts.items; ++i) {
    std::string_view name;
    mining::ItemDomain domain;
    MARAS_CHECK(snapshot->ItemName(i, &name).ok());
    MARAS_CHECK(snapshot->Domain(i, &domain).ok());
    std::vector<uint32_t> postings;
    MARAS_CHECK(snapshot->Postings(domain, i, &postings).ok());
  }
  for (uint32_t s = 0; s < counts.signals; ++s) {
    MARAS_CHECK(snapshot->Materialize(s).ok());
    std::vector<uint64_t> reports;
    MARAS_CHECK(snapshot->ReportIds(s, &reports).ok());
    std::vector<uint32_t> neighbors;
    const bool want_nav = snapshot->has_lattice_nav();
    MARAS_CHECK(snapshot->Generalizations(s, &neighbors).ok() == want_nav);
    MARAS_CHECK(snapshot->Specializations(s, &neighbors).ok() == want_nav);
  }

  // Canonical form: decode -> re-encode is the identity on the image.
  auto reconstructed = serve::ReconstructInputs(*snapshot);
  MARAS_CHECK(reconstructed.ok()) << reconstructed.status().ToString();
  serve::SnapshotInputs inputs;
  inputs.items = &reconstructed->items;
  inputs.signals = &reconstructed->signals;
  inputs.stats = reconstructed->stats;
  inputs.report_ids = &reconstructed->report_ids;
  inputs.include_lattice = reconstructed->include_lattice;
  auto reencoded = serve::EncodeSignalSnapshot(inputs);
  MARAS_CHECK(reencoded.ok()) << reencoded.status().ToString();
  MARAS_CHECK(*reencoded == bytes)
      << "decode->re-encode diverged from the accepted image";
  return 0;
}
