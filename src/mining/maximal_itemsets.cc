#include "mining/maximal_itemsets.h"

#include <unordered_set>

#include "mining/closed_itemsets.h"

namespace maras::mining {

FrequentItemsetResult FilterMaximal(const FrequentItemsetResult& all) {
  // Any itemset that is an immediate subset of another mined itemset has a
  // frequent superset and is therefore not maximal.
  std::unordered_set<Itemset, ItemsetHash> not_maximal;
  Itemset subset;
  for (const FrequentItemset& fi : all.itemsets()) {
    if (fi.items.size() < 2) continue;
    for (size_t drop = 0; drop < fi.items.size(); ++drop) {
      subset.clear();
      for (size_t i = 0; i < fi.items.size(); ++i) {
        if (i != drop) subset.push_back(fi.items[i]);
      }
      not_maximal.insert(subset);
    }
  }
  FrequentItemsetResult maximal;
  for (const FrequentItemset& fi : all.itemsets()) {
    if (not_maximal.count(fi.items) == 0) {
      maximal.Add(fi.items, fi.support);
    }
  }
  maximal.SortCanonically();
  return maximal;
}

bool IsMaximalFamilySubsetOfClosed(const FrequentItemsetResult& all) {
  FrequentItemsetResult maximal = FilterMaximal(all);
  FrequentItemsetResult closed = FilterClosed(all);
  for (const FrequentItemset& fi : maximal.itemsets()) {
    if (!closed.ContainsItemset(fi.items)) return false;
  }
  return true;
}

}  // namespace maras::mining
