#include "mining/item_dictionary.h"

#include "util/logging.h"

namespace maras::mining {

maras::StatusOr<ItemId> ItemDictionary::Intern(std::string_view name,
                                               ItemDomain domain) {
  std::string key(name);
  if (auto it = index_.find(key); it != index_.end()) {
    if (domains_[it->second] != domain) {
      return maras::Status::InvalidArgument(
          "item '" + key + "' already registered in a different domain");
    }
    return it->second;
  }
  ItemId id = static_cast<ItemId>(names_.size());
  index_[key] = id;
  names_.push_back(std::move(key));
  domains_.push_back(domain);
  return id;
}

maras::StatusOr<ItemId> ItemDictionary::Lookup(std::string_view name) const {
  auto it = index_.find(std::string(name));
  if (it == index_.end()) {
    return maras::Status::NotFound("unknown item: " + std::string(name));
  }
  return it->second;
}

bool ItemDictionary::Contains(std::string_view name) const {
  return index_.count(std::string(name)) > 0;
}

const std::string& ItemDictionary::Name(ItemId id) const {
  MARAS_CHECK(id < names_.size()) << "invalid item id " << id;
  return names_[id];
}

ItemDomain ItemDictionary::Domain(ItemId id) const {
  MARAS_CHECK(id < domains_.size()) << "invalid item id " << id;
  return domains_[id];
}

size_t ItemDictionary::CountInDomain(ItemDomain domain) const {
  size_t count = 0;
  for (ItemDomain d : domains_) {
    if (d == domain) ++count;
  }
  return count;
}

std::string ItemDictionary::Render(const Itemset& items) const {
  std::string out;
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += ' ';
    out += '[';
    out += Name(items[i]);
    out += ']';
  }
  return out;
}

}  // namespace maras::mining
