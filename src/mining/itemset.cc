#include "mining/itemset.h"

#include <algorithm>

#include "util/logging.h"

namespace maras::mining {

Itemset MakeItemset(std::vector<ItemId> ids) {
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

bool IsSubset(const Itemset& a, const Itemset& b) {
  return std::includes(b.begin(), b.end(), a.begin(), a.end());
}

Itemset Union(const Itemset& a, const Itemset& b) {
  Itemset out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

Itemset Intersect(const Itemset& a, const Itemset& b) {
  Itemset out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

Itemset Difference(const Itemset& a, const Itemset& b) {
  Itemset out;
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(out));
  return out;
}

bool Contains(const Itemset& a, ItemId item) {
  return std::binary_search(a.begin(), a.end(), item);
}

std::string ToString(const Itemset& s) {
  std::string out = "{";
  for (size_t i = 0; i < s.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(s[i]);
  }
  out += "}";
  return out;
}

}  // namespace maras::mining
