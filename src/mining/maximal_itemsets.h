#ifndef MARAS_MINING_MAXIMAL_ITEMSETS_H_
#define MARAS_MINING_MAXIMAL_ITEMSETS_H_

#include "mining/frequent_itemsets.h"
#include "util/statusor.h"

namespace maras::mining {

// Maximal frequent itemsets: the frequent itemsets with no frequent proper
// superset. The third compression level of the frequent family —
//   maximal ⊆ closed ⊆ frequent —
// maximal loses support information (unlike closed), which is exactly why
// MARAS mines closed itemsets instead; the rule-space bench quantifies the
// difference on FAERS-shaped data.
//
// Exact by the same immediate-superset argument FilterClosed uses: a
// frequent S has a frequent proper superset iff it has a frequent
// immediate superset S ∪ {i}, and every such superset appears in the mined
// family (caveat: under a max_itemset_size cap, sets at the cap boundary
// are reported maximal within the capped family).
FrequentItemsetResult FilterMaximal(const FrequentItemsetResult& all);

// Verifies the containment chain maximal ⊆ closed ⊆ frequent for a mined
// family; used by property tests.
bool IsMaximalFamilySubsetOfClosed(const FrequentItemsetResult& all);

}  // namespace maras::mining

#endif  // MARAS_MINING_MAXIMAL_ITEMSETS_H_
