#ifndef MARAS_MINING_FPTREE_H_
#define MARAS_MINING_FPTREE_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "mining/itemset.h"
#include "mining/transaction_db.h"

namespace maras::mining {

// FP-tree (Han et al.): a prefix tree over transactions whose items are
// re-ordered by descending global frequency, with per-item node chains
// (header table) for fast conditional-pattern-base extraction.
//
// Memory layout: a flat structure-of-arrays arena. A node is a 32-bit index
// into six parallel vectors (item, count, parent, next_same_item,
// first_child, next_sibling); node 0 is the root and kNoNode marks absent
// links. Header and per-item count tables are dense vectors indexed directly
// by ItemId. Compared to the previous pointer-per-node layout (one heap
// allocation per node, a std::vector of children per node, three
// unordered_map header tables), a tree build is a handful of bulk
// allocations, a parent walk touches consecutive 4-byte lanes instead of
// scattered 64-byte nodes, and Clear() recycles the whole arena for the
// next conditional tree without freeing anything — the properties the
// FP-Growth hot loop is built around (see DESIGN.md "Mining engine memory
// layout").
class FpTree {
 public:
  using NodeIndex = uint32_t;
  static constexpr NodeIndex kNoNode = 0xFFFFFFFFu;

  FpTree();

  FpTree(const FpTree&) = delete;
  FpTree& operator=(const FpTree&) = delete;
  FpTree(FpTree&&) = default;
  FpTree& operator=(FpTree&&) = default;

  // Builds a tree from a transaction database, keeping only items with
  // support >= min_support and ordering each transaction by descending
  // support (ties by ascending id). Bulk-reserves the node arena and the
  // dense item tables from the database's retained occurrence count, so the
  // build performs O(1) arena allocations.
  static FpTree Build(const TransactionDatabase& db, size_t min_support);

  // Resets to a lone root while keeping every vector's capacity — the arena
  // recycling primitive the miner uses to build conditional trees without
  // per-tree allocations. O(distinct items inserted), not O(table size).
  void Clear();

  // Pre-sizes the node arena / the dense item tables.
  void ReserveNodes(size_t nodes);
  void ReserveItems(size_t item_bound);  // ids in [0, item_bound)

  // Inserts a (frequency-ordered) item path with multiplicity `count`.
  void Insert(const std::vector<ItemId>& path, size_t count);
  void Insert(const ItemId* path, size_t len, size_t count);

  // Items present in the header table, ordered by ascending support
  // (ties by descending id) — the order FP-Growth consumes them in. The
  // second form reuses the caller's buffer (cleared first).
  std::vector<ItemId> ItemsBySupportAscending() const;
  void ItemsBySupportAscending(std::vector<ItemId>* out) const;

  // Total support of `item` within this tree.
  size_t ItemCount(ItemId item) const;

  // First node of the header chain for `item` (kNoNode when absent).
  NodeIndex HeaderChain(ItemId item) const;

  // Node field accessors. Valid for indices in [0, node_count()).
  ItemId item(NodeIndex n) const { return item_[n]; }
  size_t count(NodeIndex n) const { return count_[n]; }
  NodeIndex parent(NodeIndex n) const { return parent_[n]; }
  NodeIndex next_same_item(NodeIndex n) const { return next_same_item_[n]; }
  NodeIndex first_child(NodeIndex n) const { return first_child_[n]; }
  NodeIndex next_sibling(NodeIndex n) const { return next_sibling_[n]; }

  // True when the tree consists of a single chain from the root (the
  // FP-Growth single-path shortcut applies).
  bool IsSinglePath() const;

  // The items (with counts) along the single path, root-side first.
  // Only valid when IsSinglePath().
  std::vector<std::pair<ItemId, size_t>> SinglePathItems() const;

  NodeIndex root() const { return 0; }
  size_t node_count() const { return item_.size(); }

  // One past the largest ItemId the dense tables cover.
  size_t item_table_size() const { return header_first_.size(); }

  // Resident bytes of the arena and the dense tables (vector capacities).
  // What the memory budget is charged for a live tree.
  size_t MemoryFootprint() const;

  // Conditional pattern base of `item`: for every node of `item`, the prefix
  // path to the root with the node's count. Allocating convenience used by
  // tests and tooling; the miner walks parent chains directly instead.
  struct PrefixPath {
    std::vector<ItemId> items;  // ordered root-side first
    size_t count = 0;
  };
  std::vector<PrefixPath> ConditionalPatternBase(ItemId item) const;

 private:
  NodeIndex NewNode(ItemId item, NodeIndex parent);
  NodeIndex ChildFor(NodeIndex node, ItemId item);
  // Grows the dense tables to cover `item` and records first touches so
  // Clear() can reset only what was used.
  void EnsureItem(ItemId item);

  // Structure-of-arrays node arena; index 0 is the root.
  std::vector<ItemId> item_;
  std::vector<uint32_t> count_;
  std::vector<NodeIndex> parent_;
  std::vector<NodeIndex> next_same_item_;
  std::vector<NodeIndex> first_child_;
  std::vector<NodeIndex> next_sibling_;

  // Dense per-item tables, indexed by ItemId.
  std::vector<NodeIndex> header_first_;
  std::vector<NodeIndex> header_last_;
  std::vector<uint32_t> item_counts_;
  // Items with live table entries, so Clear() is proportional to tree
  // content rather than table width.
  std::vector<ItemId> touched_items_;
};

}  // namespace maras::mining

#endif  // MARAS_MINING_FPTREE_H_
