#ifndef MARAS_MINING_FPTREE_H_
#define MARAS_MINING_FPTREE_H_

#include <cstddef>
#include <memory>
#include <unordered_map>
#include <vector>

#include "mining/itemset.h"
#include "mining/transaction_db.h"

namespace maras::mining {

// FP-tree (Han et al.): a prefix tree over transactions whose items are
// re-ordered by descending global frequency, with per-item node chains
// (header table) for fast conditional-pattern-base extraction. Nodes are
// arena-allocated inside the tree and freed together.
class FpTree {
 public:
  struct Node {
    ItemId item = 0;
    size_t count = 0;
    Node* parent = nullptr;
    Node* next_same_item = nullptr;  // header-table chain
    std::vector<Node*> children;     // sorted by item for binary search
  };

  FpTree() : root_(NewNode(/*item=*/0, /*parent=*/nullptr)) {}

  FpTree(const FpTree&) = delete;
  FpTree& operator=(const FpTree&) = delete;

  // Builds a tree from a transaction database, keeping only items with
  // support >= min_support and ordering each transaction by descending
  // support (ties by ascending id).
  static std::unique_ptr<FpTree> Build(const TransactionDatabase& db,
                                       size_t min_support);

  // Inserts a (frequency-ordered) item path with multiplicity `count`.
  void Insert(const std::vector<ItemId>& path, size_t count);

  // Items present in the header table, ordered by ascending support
  // (ties by descending id) — the order FP-Growth consumes them in.
  std::vector<ItemId> ItemsBySupportAscending() const;

  // Total support of `item` within this tree.
  size_t ItemCount(ItemId item) const;

  // First node of the header chain for `item` (nullptr when absent).
  const Node* HeaderChain(ItemId item) const;

  // True when the tree consists of a single chain from the root (the
  // FP-Growth single-path shortcut applies).
  bool IsSinglePath() const;

  // The items (with counts) along the single path, root-side first.
  // Only valid when IsSinglePath().
  std::vector<std::pair<ItemId, size_t>> SinglePathItems() const;

  const Node* root() const { return root_; }
  size_t node_count() const { return arena_.size(); }

  // Conditional pattern base of `item`: for every node of `item`, the prefix
  // path to the root with the node's count.
  struct PrefixPath {
    std::vector<ItemId> items;  // ordered root-side first
    size_t count = 0;
  };
  std::vector<PrefixPath> ConditionalPatternBase(ItemId item) const;

 private:
  Node* NewNode(ItemId item, Node* parent);
  Node* ChildFor(Node* node, ItemId item);

  std::vector<std::unique_ptr<Node>> arena_;
  Node* root_;
  std::unordered_map<ItemId, Node*> header_first_;
  std::unordered_map<ItemId, Node*> header_last_;
  std::unordered_map<ItemId, size_t> item_counts_;
};

}  // namespace maras::mining

#endif  // MARAS_MINING_FPTREE_H_
