#ifndef MARAS_MINING_CLOSED_ITEMSETS_H_
#define MARAS_MINING_CLOSED_ITEMSETS_H_

#include "mining/frequent_itemsets.h"
#include "mining/transaction_db.h"
#include "util/statusor.h"

namespace maras::mining {

// Closed-itemset extraction (Definition 3.4.1): an itemset S is closed when
// no proper superset has the same support.
//
// Key fact used here: among *frequent* itemsets, S is closed iff no
// immediate superset S ∪ {i} has equal support. Any equal-support superset
// of a frequent S is itself frequent, so scanning each mined itemset's
// immediate subsets and marking the equal-support ones non-closed finds
// exactly the closed family. This is exact (no sampling, no heuristics) and
// runs in O(Σ |S|) hash probes over the mined result.
FrequentItemsetResult FilterClosed(const FrequentItemsetResult& all);

// Direct check against the database (no mined result needed): S is closed
// iff the intersection of all transactions containing S equals S. Used by
// property tests as independent ground truth; O(|tidlist| · |t|).
bool IsClosedInDatabase(const TransactionDatabase& db, const Itemset& s);

// Closure of S: the intersection of all transactions containing S (the
// smallest closed superset). Empty result means S occurs in no transaction.
Itemset ClosureOf(const TransactionDatabase& db, const Itemset& s);

// Convenience: mine frequent itemsets with FP-Growth, then keep the closed
// ones.
maras::StatusOr<FrequentItemsetResult> MineClosed(
    const TransactionDatabase& db, const MiningOptions& options);

}  // namespace maras::mining

#endif  // MARAS_MINING_CLOSED_ITEMSETS_H_
