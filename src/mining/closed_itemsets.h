#ifndef MARAS_MINING_CLOSED_ITEMSETS_H_
#define MARAS_MINING_CLOSED_ITEMSETS_H_

#include "mining/frequent_itemsets.h"
#include "mining/transaction_db.h"
#include "util/statusor.h"

namespace maras::mining {

// Closed-itemset extraction (Definition 3.4.1): an itemset S is closed when
// no proper superset has the same support.
//
// Key fact used here: among *frequent* itemsets, S is closed iff no
// immediate superset S ∪ {i} has equal support. Any equal-support superset
// of a frequent S is itself frequent, so scanning each mined itemset's
// immediate subsets and marking the equal-support ones non-closed finds
// exactly the closed family. This is exact (no sampling, no heuristics) and
// runs in O(Σ |S|) hash probes over the mined result.
//
// With num_threads > 1 the marking scan is sharded across a thread pool
// (strided over the canonical itemset order; shards only read `all` and
// collect marks privately) and the per-shard mark sets are unioned serially.
// Set union is order-independent and the surviving family is re-sorted
// canonically, so the output is byte-identical to the serial filter.
FrequentItemsetResult FilterClosed(const FrequentItemsetResult& all,
                                   size_t num_threads = 1);

// Governed variant: polls `ctx` (cancellation / deadline / budget) at a
// bounded interval inside each marking shard and stops scheduling remaining
// shards on a trip, returning the context's status wrapped "closed-filter".
// Output is byte-identical to the ungoverned filter when nothing trips.
maras::StatusOr<FrequentItemsetResult> FilterClosed(
    const FrequentItemsetResult& all, size_t num_threads,
    const RunContext& ctx);

// Direct check against the database (no mined result needed): S is closed
// iff the intersection of all transactions containing S equals S. Used by
// property tests as independent ground truth; O(|tidlist| · |t|).
bool IsClosedInDatabase(const TransactionDatabase& db, const Itemset& s);

// Closure of S: the intersection of all transactions containing S (the
// smallest closed superset). Empty result means S occurs in no transaction.
Itemset ClosureOf(const TransactionDatabase& db, const Itemset& s);

// Convenience: mine frequent itemsets with FP-Growth, then keep the closed
// ones. Respects MiningOptions::context in both phases when it is set.
maras::StatusOr<FrequentItemsetResult> MineClosed(
    const TransactionDatabase& db, const MiningOptions& options);

}  // namespace maras::mining

#endif  // MARAS_MINING_CLOSED_ITEMSETS_H_
