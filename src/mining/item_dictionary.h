#ifndef MARAS_MINING_ITEM_DICTIONARY_H_
#define MARAS_MINING_ITEM_DICTIONARY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "mining/itemset.h"
#include "util/statusor.h"

namespace maras::mining {

// Domain tag of an item. The paper partitions the item universe I into
// disjoint I_drug and I_ade (Section 3.1); the tag makes the
// antecedent/consequent split of a rule a constant-time check.
enum class ItemDomain : uint8_t {
  kDrug = 0,
  kAdr = 1,
};

// Interns item names to dense ItemIds and remembers each item's domain.
// Ids are assigned in insertion order and never change.
class ItemDictionary {
 public:
  ItemDictionary() = default;

  // Interns `name` under `domain`; returns the existing id when already
  // present. Re-registering an existing name under a different domain is an
  // error (drug and ADR vocabularies are disjoint by construction).
  maras::StatusOr<ItemId> Intern(std::string_view name, ItemDomain domain);

  // Id of `name`, or NotFound.
  maras::StatusOr<ItemId> Lookup(std::string_view name) const;

  bool Contains(std::string_view name) const;

  // Name / domain of `id`; id must be valid.
  const std::string& Name(ItemId id) const;
  ItemDomain Domain(ItemId id) const;

  size_t size() const { return names_.size(); }
  size_t CountInDomain(ItemDomain domain) const;

  // Renders an itemset as "[A] [B] [C]" using item names.
  std::string Render(const Itemset& items) const;

 private:
  std::vector<std::string> names_;
  std::vector<ItemDomain> domains_;
  std::unordered_map<std::string, ItemId> index_;
};

}  // namespace maras::mining

#endif  // MARAS_MINING_ITEM_DICTIONARY_H_
