#ifndef MARAS_MINING_APRIORI_H_
#define MARAS_MINING_APRIORI_H_

#include "mining/frequent_itemsets.h"
#include "mining/transaction_db.h"
#include "util/statusor.h"

namespace maras::mining {

// Classic level-wise Apriori (Agrawal & Srikant) frequent-itemset miner.
// Serves as the correctness baseline for FP-Growth in tests and as the
// comparison algorithm in the mining benchmarks. Candidate generation is the
// standard F_{k-1} × F_{k-1} self-join with prefix sharing, followed by the
// all-subsets-frequent prune; support counting intersects tid lists.
class Apriori {
 public:
  explicit Apriori(MiningOptions options) : options_(options) {}

  maras::StatusOr<FrequentItemsetResult> Mine(
      const TransactionDatabase& db) const;

 private:
  MiningOptions options_;
};

}  // namespace maras::mining

#endif  // MARAS_MINING_APRIORI_H_
