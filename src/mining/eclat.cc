#include "mining/eclat.h"

#include <algorithm>

namespace maras::mining {

maras::StatusOr<FrequentItemsetResult> Eclat::Mine(
    const TransactionDatabase& db) const {
  if (options_.min_support == 0) {
    return maras::Status::InvalidArgument("min_support must be >= 1");
  }
  if (options_.shard_count != 1 || options_.shard_index != 0) {
    return maras::Status::InvalidArgument(
        "eclat is a serial cross-check baseline; sharding is FP-Growth"
        " only");
  }
  FrequentItemsetResult result;
  // Root equivalence class: one vertical entry per frequent item, in
  // ascending item order so emitted itemsets are canonically sorted.
  std::vector<Vertical> root;
  {
    std::vector<ItemId> items;
    for (const Itemset& t : db.transactions()) {
      items.insert(items.end(), t.begin(), t.end());
    }
    std::sort(items.begin(), items.end());
    items.erase(std::unique(items.begin(), items.end()), items.end());
    for (ItemId item : items) {
      const auto& tids = db.TidList(item);
      if (tids.size() >= options_.min_support) {
        root.push_back(Vertical{item, tids});
      }
    }
  }
  MineClass({}, root, &result);
  result.SortCanonically();
  return result;
}

void Eclat::MineClass(const Itemset& prefix,
                      const std::vector<Vertical>& klass,
                      FrequentItemsetResult* result) const {
  for (size_t i = 0; i < klass.size(); ++i) {
    Itemset itemset = prefix;
    itemset.push_back(klass[i].item);
    result->Add(itemset, klass[i].tids.size());
    if (options_.max_itemset_size != 0 &&
        itemset.size() >= options_.max_itemset_size) {
      continue;
    }
    // Child class: intersect with every later sibling.
    std::vector<Vertical> child;
    for (size_t j = i + 1; j < klass.size(); ++j) {
      Vertical entry;
      entry.item = klass[j].item;
      std::set_intersection(klass[i].tids.begin(), klass[i].tids.end(),
                            klass[j].tids.begin(), klass[j].tids.end(),
                            std::back_inserter(entry.tids));
      if (entry.tids.size() >= options_.min_support) {
        child.push_back(std::move(entry));
      }
    }
    if (!child.empty()) MineClass(itemset, child, result);
  }
}

}  // namespace maras::mining
