#include "mining/eclat.h"

#include <algorithm>
#include <utility>

#include "util/thread_pool.h"

namespace maras::mining {

maras::StatusOr<FrequentItemsetResult> Eclat::Mine(
    const TransactionDatabase& db) const {
  if (options_.min_support == 0) {
    return maras::Status::InvalidArgument("min_support must be >= 1");
  }
  if (options_.shard_count != 1 || options_.shard_index != 0) {
    return maras::Status::InvalidArgument(
        "eclat is a single-process cross-check baseline; sharding is"
        " FP-Growth only");
  }

  // Frequent items in ascending item order, so emitted itemsets are
  // canonically sorted within each branch.
  std::vector<ItemId> items;
  for (size_t item = 0; item < db.item_bound(); ++item) {
    if (db.ItemSupport(static_cast<ItemId>(item)) >= options_.min_support) {
      items.push_back(static_cast<ItemId>(item));
    }
  }

  FrequentItemsetResult result;
  if (options_.eclat_mode == EclatMode::kScalar) {
    // Reference engine: serial merge-intersection over tid-lists.
    std::vector<Vertical> root;
    root.reserve(items.size());
    for (ItemId item : items) {
      root.push_back(Vertical{item, db.TidList(item)});
    }
    MineClass({}, root, &result);
    result.SortCanonically();
    return result;
  }

  const size_t universe = db.size();
  BitmapPolicy policy = BitmapPolicy::kAuto;
  if (options_.eclat_mode == EclatMode::kDense) policy = BitmapPolicy::kDense;
  if (options_.eclat_mode == EclatMode::kSparse) {
    policy = BitmapPolicy::kSparse;
  }

  std::vector<VerticalSlice> root;
  root.reserve(items.size());
  for (ItemId item : items) {
    root.push_back(VerticalSlice::Make(item, db.TidList(item), universe,
                                       policy));
  }

  const size_t threads = EffectiveThreads(options_.num_threads, root.size());
  if (threads <= 1) {
    for (size_t i = 0; i < root.size(); ++i) {
      MineBranch(i, root, {}, universe, policy, &result);
    }
  } else {
    // One task per top-level item, each writing only its own slot; the
    // merge walks slots in item order, so the pre-sort result sequence —
    // and after SortCanonically the bytes — are independent of scheduling.
    std::vector<FrequentItemsetResult> slots(root.size());
    maras::ParallelFor(threads, root.size(), [&](size_t i) {
      MineBranch(i, root, {}, universe, policy, &slots[i]);
    });
    for (FrequentItemsetResult& slot : slots) {
      result.Absorb(std::move(slot));
    }
  }
  result.SortCanonically();
  return result;
}

void Eclat::MineBranch(size_t i, const std::vector<VerticalSlice>& klass,
                       const Itemset& prefix, size_t universe,
                       BitmapPolicy policy,
                       FrequentItemsetResult* result) const {
  Itemset itemset = prefix;
  itemset.push_back(klass[i].item);
  result->Add(itemset, klass[i].support);
  if (options_.max_itemset_size != 0 &&
      itemset.size() >= options_.max_itemset_size) {
    return;
  }
  // Child class: intersect with every later sibling. The kernel picks
  // dense∧dense (word-wise AND+popcount), sparse∧sparse (galloping), or
  // probe (mixed) per pair; the child's representation is re-chosen from
  // its own density under the active policy.
  std::vector<VerticalSlice> child;
  for (size_t j = i + 1; j < klass.size(); ++j) {
    VerticalSlice entry = IntersectSlices(klass[i], klass[j], universe,
                                          policy);
    if (entry.support >= options_.min_support) {
      child.push_back(std::move(entry));
    }
  }
  for (size_t c = 0; c < child.size(); ++c) {
    MineBranch(c, child, itemset, universe, policy, result);
  }
}

void Eclat::MineClass(const Itemset& prefix,
                      const std::vector<Vertical>& klass,
                      FrequentItemsetResult* result) const {
  for (size_t i = 0; i < klass.size(); ++i) {
    Itemset itemset = prefix;
    itemset.push_back(klass[i].item);
    result->Add(itemset, klass[i].tids.size());
    if (options_.max_itemset_size != 0 &&
        itemset.size() >= options_.max_itemset_size) {
      continue;
    }
    // Child class: intersect with every later sibling.
    std::vector<Vertical> child;
    for (size_t j = i + 1; j < klass.size(); ++j) {
      Vertical entry;
      entry.item = klass[j].item;
      std::set_intersection(klass[i].tids.begin(), klass[i].tids.end(),
                            klass[j].tids.begin(), klass[j].tids.end(),
                            std::back_inserter(entry.tids));
      if (entry.tids.size() >= options_.min_support) {
        child.push_back(std::move(entry));
      }
    }
    if (!child.empty()) MineClass(itemset, child, result);
  }
}

}  // namespace maras::mining
