#include "mining/closed_itemsets.h"

#include "mining/flat_table.h"
#include "mining/fpgrowth.h"
#include "util/run_context.h"
#include "util/thread_pool.h"

namespace maras::mining {

namespace {

// Appends to `marks` every immediate subset of `fi.items` that `fi` proves
// non-closed (equal support). Pure read of `all`.
void MarkCoveredSubsets(const FrequentItemsetResult& all,
                        const FrequentItemset& fi,
                        std::vector<Itemset>* marks) {
  if (fi.items.size() < 2) return;
  Itemset subset;
  subset.reserve(fi.items.size() - 1);
  for (size_t drop = 0; drop < fi.items.size(); ++drop) {
    subset.clear();
    for (size_t i = 0; i < fi.items.size(); ++i) {
      if (i != drop) subset.push_back(fi.items[i]);
    }
    if (all.SupportOf(subset) == fi.support) {
      marks->push_back(subset);
    }
  }
}

}  // namespace

FrequentItemsetResult FilterClosed(const FrequentItemsetResult& all,
                                   size_t num_threads) {
  // Mark every itemset that has an equal-support immediate superset in the
  // result by walking each itemset's immediate subsets.
  const std::vector<FrequentItemset>& itemsets = all.itemsets();
  const size_t workers = EffectiveThreads(num_threads, itemsets.size());
  ItemsetFlatSet not_closed;
  if (workers <= 1) {
    std::vector<Itemset> marks;
    for (const FrequentItemset& fi : itemsets) {
      MarkCoveredSubsets(all, fi, &marks);
    }
    for (Itemset& s : marks) not_closed.Insert(std::move(s));
  } else {
    // Shard w scans itemsets w, w+workers, ...; marks are unioned serially
    // afterwards (union is order-independent, so scheduling cannot leak
    // into the result).
    std::vector<std::vector<Itemset>> shard_marks(workers);
    ParallelFor(workers, workers, [&](size_t w) {
      for (size_t i = w; i < itemsets.size(); i += workers) {
        MarkCoveredSubsets(all, itemsets[i], &shard_marks[w]);
      }
    });
    for (std::vector<Itemset>& shard : shard_marks) {
      for (Itemset& s : shard) not_closed.Insert(std::move(s));
    }
  }
  FrequentItemsetResult closed;
  for (const FrequentItemset& fi : all.itemsets()) {
    if (!not_closed.Contains(fi.items)) {
      closed.Add(fi.items, fi.support);
    }
  }
  closed.SortCanonically();
  return closed;
}

maras::StatusOr<FrequentItemsetResult> FilterClosed(
    const FrequentItemsetResult& all, size_t num_threads,
    const RunContext& ctx) {
  const std::vector<FrequentItemset>& itemsets = all.itemsets();
  const size_t workers = EffectiveThreads(num_threads, itemsets.size());
  // Same strided sharding as the ungoverned filter (one shard per worker,
  // serial = one shard), with a governance poll every 256 scanned itemsets.
  const size_t shards = workers <= 1 ? 1 : workers;
  std::vector<std::vector<Itemset>> shard_marks(shards);
  maras::Status status = TryParallelFor(
      workers, shards, ctx, [&](size_t w) -> maras::Status {
        for (size_t i = w; i < itemsets.size(); i += shards) {
          if ((i / shards) % 256 == 0) {
            MARAS_RETURN_IF_ERROR(ctx.Check());
          }
          MarkCoveredSubsets(all, itemsets[i], &shard_marks[w]);
        }
        return maras::Status::OK();
      });
  if (!status.ok()) return maras::WithContext(status, "closed-filter");
  ItemsetFlatSet not_closed;
  for (std::vector<Itemset>& shard : shard_marks) {
    for (Itemset& s : shard) not_closed.Insert(std::move(s));
  }
  FrequentItemsetResult closed;
  for (const FrequentItemset& fi : all.itemsets()) {
    if (!not_closed.Contains(fi.items)) {
      closed.Add(fi.items, fi.support);
    }
  }
  closed.SortCanonically();
  return closed;
}

Itemset ClosureOf(const TransactionDatabase& db, const Itemset& s) {
  std::vector<TransactionId> tids = db.ContainingTransactions(s);
  if (tids.empty()) return {};
  Itemset closure = db.transaction(tids[0]);
  for (size_t i = 1; i < tids.size() && closure.size() > s.size(); ++i) {
    closure = Intersect(closure, db.transaction(tids[i]));
  }
  return closure;
}

bool IsClosedInDatabase(const TransactionDatabase& db, const Itemset& s) {
  Itemset closure = ClosureOf(db, s);
  return !closure.empty() && closure == s;
}

maras::StatusOr<FrequentItemsetResult> MineClosed(
    const TransactionDatabase& db, const MiningOptions& options) {
  FpGrowth miner(options);
  MARAS_ASSIGN_OR_RETURN(FrequentItemsetResult all, miner.Mine(db));
  if (options.context != nullptr) {
    return FilterClosed(all, options.num_threads, *options.context);
  }
  return FilterClosed(all, options.num_threads);
}

}  // namespace maras::mining
