#include "mining/closed_itemsets.h"

#include <unordered_set>

#include "mining/fpgrowth.h"

namespace maras::mining {

FrequentItemsetResult FilterClosed(const FrequentItemsetResult& all) {
  // Mark every itemset that has an equal-support immediate superset in the
  // result by walking each itemset's immediate subsets.
  std::unordered_set<Itemset, ItemsetHash> not_closed;
  for (const FrequentItemset& fi : all.itemsets()) {
    if (fi.items.size() < 2) continue;
    Itemset subset;
    subset.reserve(fi.items.size() - 1);
    for (size_t drop = 0; drop < fi.items.size(); ++drop) {
      subset.clear();
      for (size_t i = 0; i < fi.items.size(); ++i) {
        if (i != drop) subset.push_back(fi.items[i]);
      }
      if (all.SupportOf(subset) == fi.support) {
        not_closed.insert(subset);
      }
    }
  }
  FrequentItemsetResult closed;
  for (const FrequentItemset& fi : all.itemsets()) {
    if (not_closed.count(fi.items) == 0) {
      closed.Add(fi.items, fi.support);
    }
  }
  closed.SortCanonically();
  return closed;
}

Itemset ClosureOf(const TransactionDatabase& db, const Itemset& s) {
  std::vector<TransactionId> tids = db.ContainingTransactions(s);
  if (tids.empty()) return {};
  Itemset closure = db.transaction(tids[0]);
  for (size_t i = 1; i < tids.size() && closure.size() > s.size(); ++i) {
    closure = Intersect(closure, db.transaction(tids[i]));
  }
  return closure;
}

bool IsClosedInDatabase(const TransactionDatabase& db, const Itemset& s) {
  Itemset closure = ClosureOf(db, s);
  return !closure.empty() && closure == s;
}

maras::StatusOr<FrequentItemsetResult> MineClosed(
    const TransactionDatabase& db, const MiningOptions& options) {
  FpGrowth miner(options);
  MARAS_ASSIGN_OR_RETURN(FrequentItemsetResult all, miner.Mine(db));
  return FilterClosed(all);
}

}  // namespace maras::mining
