#include "mining/transaction_db.h"

#include <algorithm>

namespace maras::mining {

const std::vector<TransactionId> TransactionDatabase::kEmptyTidList = {};

TransactionId TransactionDatabase::Add(Itemset transaction) {
  Itemset t = MakeItemset(std::move(transaction));
  TransactionId tid = static_cast<TransactionId>(transactions_.size());
  if (!t.empty() && static_cast<size_t>(t.back()) >= tidlists_.size()) {
    tidlists_.resize(static_cast<size_t>(t.back()) + 1);
  }
  for (ItemId item : t) {
    std::vector<TransactionId>& list = tidlists_[item];
    if (list.empty()) ++distinct_items_;
    list.push_back(tid);  // tids are appended in order
  }
  total_item_occurrences_ += t.size();
  transactions_.push_back(std::move(t));
  return tid;
}

size_t TransactionDatabase::Support(const Itemset& s) const {
  if (s.empty()) return transactions_.size();
  if (s.size() == 1) return ItemSupport(s[0]);
  return ContainingTransactions(s).size();
}

std::vector<TransactionId> TransactionDatabase::ContainingTransactions(
    const Itemset& s) const {
  std::vector<TransactionId> result;
  if (s.empty()) {
    result.resize(transactions_.size());
    for (size_t i = 0; i < result.size(); ++i) {
      result[i] = static_cast<TransactionId>(i);
    }
    return result;
  }
  // Start from the rarest item's tid list to keep intersections small.
  size_t start = 0;
  size_t best = SIZE_MAX;
  for (size_t i = 0; i < s.size(); ++i) {
    size_t sup = ItemSupport(s[i]);
    if (sup < best) {
      best = sup;
      start = i;
    }
  }
  result = TidList(s[start]);
  for (size_t i = 0; i < s.size() && !result.empty(); ++i) {
    if (i == start) continue;
    const auto& other = TidList(s[i]);
    std::vector<TransactionId> merged;
    merged.reserve(std::min(result.size(), other.size()));
    std::set_intersection(result.begin(), result.end(), other.begin(),
                          other.end(), std::back_inserter(merged));
    result = std::move(merged);
  }
  return result;
}

size_t TransactionDatabase::ItemSupport(ItemId item) const {
  return static_cast<size_t>(item) < tidlists_.size() ? tidlists_[item].size()
                                                      : 0;
}

const std::vector<TransactionId>& TransactionDatabase::TidList(
    ItemId item) const {
  return static_cast<size_t>(item) < tidlists_.size() ? tidlists_[item]
                                                      : kEmptyTidList;
}

}  // namespace maras::mining
