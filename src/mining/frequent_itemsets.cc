#include "mining/frequent_itemsets.h"

#include <algorithm>

namespace maras::mining {

void FrequentItemsetResult::Add(Itemset items, size_t support) {
  itemsets_.push_back(FrequentItemset{std::move(items), support});
  index_.InsertOrAssign(static_cast<uint32_t>(itemsets_.size() - 1),
                        KeyAt{this});
}

size_t FrequentItemsetResult::SupportOf(const Itemset& s) const {
  const uint32_t i = index_.Find(s, KeyAt{this});
  return i == FlatItemsetIndex::kNotFound ? 0 : itemsets_[i].support;
}

bool FrequentItemsetResult::ContainsItemset(const Itemset& s) const {
  return index_.Find(s, KeyAt{this}) != FlatItemsetIndex::kNotFound;
}

void FrequentItemsetResult::SortCanonically() {
  std::sort(itemsets_.begin(), itemsets_.end(),
            [](const FrequentItemset& a, const FrequentItemset& b) {
              if (a.items != b.items) return a.items < b.items;
              return a.support < b.support;
            });
  // Sorting renumbers every entry, so the index is rebuilt from scratch.
  index_.Clear();
  index_.Reserve(itemsets_.size());
  for (size_t i = 0; i < itemsets_.size(); ++i) {
    index_.InsertOrAssign(static_cast<uint32_t>(i), KeyAt{this});
  }
}

void FrequentItemsetResult::Absorb(FrequentItemsetResult&& other) {
  itemsets_.reserve(itemsets_.size() + other.itemsets_.size());
  index_.Reserve(itemsets_.size() + other.itemsets_.size());
  for (FrequentItemset& fi : other.itemsets_) {
    itemsets_.push_back(std::move(fi));
    index_.InsertOrAssign(static_cast<uint32_t>(itemsets_.size() - 1),
                          KeyAt{this});
  }
  other.itemsets_.clear();
  other.index_.Clear();
}

}  // namespace maras::mining
