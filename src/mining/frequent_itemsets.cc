#include "mining/frequent_itemsets.h"

#include <algorithm>

namespace maras::mining {

void FrequentItemsetResult::Add(Itemset items, size_t support) {
  support_[items] = support;
  itemsets_.push_back(FrequentItemset{std::move(items), support});
}

size_t FrequentItemsetResult::SupportOf(const Itemset& s) const {
  auto it = support_.find(s);
  return it == support_.end() ? 0 : it->second;
}

bool FrequentItemsetResult::ContainsItemset(const Itemset& s) const {
  return support_.count(s) > 0;
}

void FrequentItemsetResult::SortCanonically() {
  std::sort(itemsets_.begin(), itemsets_.end(),
            [](const FrequentItemset& a, const FrequentItemset& b) {
              if (a.items.size() != b.items.size()) {
                return a.items.size() < b.items.size();
              }
              return a.items < b.items;
            });
}

}  // namespace maras::mining
