#include "mining/frequent_itemsets.h"

#include <algorithm>

namespace maras::mining {

void FrequentItemsetResult::Add(Itemset items, size_t support) {
  support_[items] = support;
  itemsets_.push_back(FrequentItemset{std::move(items), support});
}

size_t FrequentItemsetResult::SupportOf(const Itemset& s) const {
  auto it = support_.find(s);
  return it == support_.end() ? 0 : it->second;
}

bool FrequentItemsetResult::ContainsItemset(const Itemset& s) const {
  return support_.count(s) > 0;
}

void FrequentItemsetResult::SortCanonically() {
  std::sort(itemsets_.begin(), itemsets_.end(),
            [](const FrequentItemset& a, const FrequentItemset& b) {
              if (a.items != b.items) return a.items < b.items;
              return a.support < b.support;
            });
}

void FrequentItemsetResult::Absorb(FrequentItemsetResult&& other) {
  itemsets_.reserve(itemsets_.size() + other.itemsets_.size());
  for (FrequentItemset& fi : other.itemsets_) {
    support_[fi.items] = fi.support;
    itemsets_.push_back(std::move(fi));
  }
  other.itemsets_.clear();
  other.support_.clear();
}

}  // namespace maras::mining
