#include "mining/fpgrowth.h"

#include <algorithm>
#include <memory>

#include "util/mutex.h"
#include "util/run_context.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace maras::mining {

// Per-task scratch for the allocation-free recursion. frames[d] holds the
// recycled arena the conditional tree at depth d is built into, plus the
// item-order buffer for mining it; cond_counts/touched/path serve whichever
// BuildConditional is currently running (construction at depth d finishes
// before the recursion descends, so one shared set suffices); suffix is the
// current pattern, kept sorted, extended in place and popped on unwind.
struct FpGrowth::MineScratch {
  struct Frame {
    FpTree tree;
    std::vector<ItemId> items;
    size_t charged_bytes = 0;  // arena footprint already charged
  };

  std::vector<std::unique_ptr<Frame>> frames;
  std::vector<uint32_t> cond_counts;  // dense, indexed by ItemId
  std::vector<ItemId> touched;        // items with nonzero cond_counts
  std::vector<ItemId> path;           // one filtered prefix path
  Itemset suffix;                     // sorted current pattern
  std::vector<ItemId> top_items;      // depth-0 item order
  size_t arena_charged = 0;           // total arena bytes charged to budget

  explicit MineScratch(const FpTree& global_tree) {
    cond_counts.assign(global_tree.item_table_size(), 0);
    suffix.reserve(32);
    path.reserve(64);
  }

  Frame& FrameAt(size_t depth) {
    while (frames.size() <= depth) {
      frames.push_back(std::make_unique<Frame>());
    }
    return *frames[depth];
  }
};

namespace {

// Hands out MineScratch instances to parallel mining tasks. At most one
// scratch exists per concurrently running task (≤ worker count), and a
// recycled scratch keeps its grown arenas, so the fan-out over hundreds of
// top-level items performs a bounded number of arena allocations total.
class ScratchPool {
 public:
  explicit ScratchPool(const FpTree& global_tree)
      : global_tree_(global_tree) {}

  std::unique_ptr<FpGrowth::MineScratch> Acquire() {
    {
      MutexLock lock(&mu_);
      if (!free_.empty()) {
        auto scratch = std::move(free_.back());
        free_.pop_back();
        return scratch;
      }
    }
    return std::make_unique<FpGrowth::MineScratch>(global_tree_);
  }

  void Recycle(std::unique_ptr<FpGrowth::MineScratch> scratch) {
    MutexLock lock(&mu_);
    free_.push_back(std::move(scratch));
  }

  // Sum of arena bytes the pool's scratches charged. Call after the fan-out
  // has drained (every lease returned), before the arenas are freed.
  size_t TotalArenaCharged() {
    MutexLock lock(&mu_);
    size_t total = 0;
    for (const auto& scratch : free_) total += scratch->arena_charged;
    return total;
  }

 private:
  const FpTree& global_tree_;
  // mu_ guards the free list only; a leased scratch is owned exclusively
  // by its task (the lease pointer never aliases) until Recycle hands it
  // back under the lock.
  Mutex mu_;
  std::vector<std::unique_ptr<FpGrowth::MineScratch>> free_ GUARDED_BY(mu_);
};

// RAII lease so a task returns its scratch on every exit path.
class ScratchLease {
 public:
  explicit ScratchLease(ScratchPool* pool)
      : pool_(pool), scratch_(pool->Acquire()) {}
  ~ScratchLease() { pool_->Recycle(std::move(scratch_)); }
  FpGrowth::MineScratch* get() { return scratch_.get(); }

 private:
  ScratchPool* pool_;
  std::unique_ptr<FpGrowth::MineScratch> scratch_;
};

// Approximate resident bytes of one recorded itemset: the struct, its item
// payload, and the support-table slot. The budget bounds blow-up by order
// of magnitude, not by exact allocator bytes, so an estimate is enough.
size_t ItemsetFootprint(const Itemset& pattern) {
  return sizeof(FrequentItemset) + pattern.size() * sizeof(ItemId) + 64;
}

}  // namespace

maras::StatusOr<FrequentItemsetResult> FpGrowth::Mine(
    const TransactionDatabase& db) const {
  if (options_.min_support == 0) {
    return maras::Status::InvalidArgument("min_support must be >= 1");
  }
  if (options_.shard_count == 0 ||
      options_.shard_index >= options_.shard_count) {
    return maras::Status::InvalidArgument(
        "shard_index must be < shard_count (>= 1)");
  }
  const RunContext* ctx = options_.context;
  FrequentItemsetResult result;
  const FpTree tree = FpTree::Build(db, options_.min_support);
  // Arena accounting is separate from itemset accounting: arenas (the
  // global tree and the recycled conditional frames) die when this call
  // returns, so their charges are always released here; recorded itemsets
  // outlive the call, so their charges persist on success and are released
  // only when the mine fails.
  size_t arena_charged = 0;
  maras::Status status;
  if (ctx != nullptr) {
    const size_t bytes = tree.MemoryFootprint();
    status = ctx->Charge(bytes);
    if (!status.ok()) return maras::WithContext(status, "fp-growth");
    arena_charged += bytes;
  }
  // The shard stride applies to the *global* support-ascending order, so
  // every shard agrees on which index each item holds regardless of how
  // many items its own slice keeps.
  std::vector<ItemId> items = tree.ItemsBySupportAscending();
  if (options_.shard_count > 1) {
    std::vector<ItemId> mine_items;
    mine_items.reserve(items.size() / options_.shard_count + 1);
    for (size_t i = options_.shard_index; i < items.size();
         i += options_.shard_count) {
      mine_items.push_back(items[i]);
    }
    items = std::move(mine_items);
  }
  const size_t workers = EffectiveThreads(options_.num_threads, items.size());
  size_t charged = 0;
  if (workers <= 1) {
    // Loop the (possibly shard-filtered) top-level items directly; each
    // MineItem call recurses through MineTree for its conditional trees.
    MineScratch scratch(tree);
    status = maras::Status::OK();
    for (ItemId item : items) {
      status = MineItem(tree, item, /*depth=*/0, &scratch, &result, &charged);
      if (!status.ok()) break;
    }
    arena_charged += scratch.arena_charged;
  } else {
    // Fan out one task per top-level item. Tasks only read the shared tree
    // and write their own shard (result + charge accounting); the canonical
    // sort below erases any trace of the schedule.
    const RunContext ungoverned;
    std::vector<FrequentItemsetResult> shards(items.size());
    std::vector<size_t> shard_charged(items.size(), 0);
    ScratchPool pool(tree);
    status = TryParallelFor(
        workers, items.size(), ctx != nullptr ? *ctx : ungoverned,
        [this, &tree, &items, &shards, &shard_charged, &pool](size_t i) {
          ScratchLease lease(&pool);
          return MineItem(tree, items[i], /*depth=*/0, lease.get(),
                          &shards[i], &shard_charged[i]);
        });
    for (size_t c : shard_charged) charged += c;
    arena_charged += pool.TotalArenaCharged();
    if (status.ok()) {
      for (FrequentItemsetResult& shard : shards) {
        result.Absorb(std::move(shard));
      }
    }
  }
  if (ctx != nullptr && ctx->budget != nullptr) {
    ctx->budget->Release(arena_charged);
  }
  if (!status.ok()) {
    // A failed mine keeps nothing, so its accounting must not linger: a
    // degradation retry at higher support starts from a clean budget.
    if (ctx != nullptr && ctx->budget != nullptr) ctx->budget->Release(charged);
    return maras::WithContext(status, "fp-growth");
  }
  result.SortCanonically();
  return result;
}

maras::Status FpGrowth::MineTree(const FpTree& tree, size_t depth,
                                 MineScratch* scratch,
                                 FrequentItemsetResult* result,
                                 size_t* charged) const {
  if (options_.max_itemset_size != 0 &&
      scratch->suffix.size() >= options_.max_itemset_size) {
    return maras::Status::OK();
  }
  // The item-order buffer for depth d lives next to the arena that owns
  // `tree` (the frame for depth d-1; the global tree uses top_items), so
  // the loop below stays valid while deeper recursion fills other frames.
  std::vector<ItemId>* items = depth == 0
                                   ? &scratch->top_items
                                   : &scratch->FrameAt(depth - 1).items;
  tree.ItemsBySupportAscending(items);
  for (ItemId item : *items) {
    MARAS_RETURN_IF_ERROR(
        MineItem(tree, item, depth, scratch, result, charged));
  }
  return maras::Status::OK();
}

maras::Status FpGrowth::MineItem(const FpTree& tree, ItemId item,
                                 size_t depth, MineScratch* scratch,
                                 FrequentItemsetResult* result,
                                 size_t* charged) const {
  if (options_.max_itemset_size != 0 &&
      scratch->suffix.size() >= options_.max_itemset_size) {
    return maras::Status::OK();
  }
  // One poll per conditional-tree step bounds the governance interval: the
  // non-recursive work below is O(pattern base), never unbounded.
  if (options_.context != nullptr) {
    MARAS_RETURN_IF_ERROR(options_.context->Check());
  }
  const size_t support = tree.ItemCount(item);
  if (support < options_.min_support) return maras::Status::OK();
  // Extend the suffix in place at its sorted position; popped on unwind.
  Itemset& suffix = scratch->suffix;
  const size_t pos = static_cast<size_t>(
      std::lower_bound(suffix.begin(), suffix.end(), item) - suffix.begin());
  suffix.insert(suffix.begin() + pos, item);
  maras::Status status = maras::Status::OK();
  do {
    if (options_.context != nullptr) {
      const size_t bytes = ItemsetFootprint(suffix);
      status = options_.context->Charge(bytes);
      if (!status.ok()) break;
      *charged += bytes;
    }
    result->Add(Itemset(suffix), support);

    if (options_.max_itemset_size != 0 &&
        suffix.size() >= options_.max_itemset_size) {
      break;  // no deeper extensions wanted
    }

    // Conditional counts over the pattern base (pass 1): walk every parent
    // chain of `item`, accumulating into the dense table.
    for (FpTree::NodeIndex node = tree.HeaderChain(item);
         node != FpTree::kNoNode; node = tree.next_same_item(node)) {
      const uint32_t node_count = static_cast<uint32_t>(tree.count(node));
      for (FpTree::NodeIndex up = tree.parent(node); up != tree.root();
           up = tree.parent(up)) {
        const ItemId path_item = tree.item(up);
        if (scratch->cond_counts[path_item] == 0) {
          scratch->touched.push_back(path_item);
        }
        scratch->cond_counts[path_item] += node_count;
      }
    }
    if (scratch->touched.empty()) break;  // empty pattern base

    // Build the conditional tree into this depth's recycled arena (pass 2):
    // re-walk each prefix path, keep items frequent within the base, order
    // by conditional support, insert with the node's multiplicity.
    MineScratch::Frame& frame = scratch->FrameAt(depth);
    FpTree& conditional = frame.tree;
    conditional.Clear();
    conditional.ReserveItems(tree.item_table_size());
    auto order = [scratch](ItemId a, ItemId b) {
      const uint32_t ca = scratch->cond_counts[a];
      const uint32_t cb = scratch->cond_counts[b];
      if (ca != cb) return ca > cb;
      return a < b;
    };
    for (FpTree::NodeIndex node = tree.HeaderChain(item);
         node != FpTree::kNoNode; node = tree.next_same_item(node)) {
      scratch->path.clear();
      for (FpTree::NodeIndex up = tree.parent(node); up != tree.root();
           up = tree.parent(up)) {
        const ItemId path_item = tree.item(up);
        if (scratch->cond_counts[path_item] >= options_.min_support) {
          scratch->path.push_back(path_item);
        }
      }
      if (scratch->path.empty()) continue;
      std::sort(scratch->path.begin(), scratch->path.end(), order);
      conditional.Insert(scratch->path.data(), scratch->path.size(),
                         tree.count(node));
    }
    // Reset the dense counts via the touched list — O(base items), not
    // O(item universe).
    for (ItemId touched_item : scratch->touched) {
      scratch->cond_counts[touched_item] = 0;
    }
    scratch->touched.clear();

    // Charge arena growth: recycled capacity is charged once, at its
    // high-water mark, and released by Mine when the scratch dies.
    if (options_.context != nullptr) {
      const size_t footprint = frame.tree.MemoryFootprint();
      if (footprint > frame.charged_bytes) {
        status = options_.context->Charge(footprint - frame.charged_bytes);
        if (!status.ok()) break;
        scratch->arena_charged += footprint - frame.charged_bytes;
        frame.charged_bytes = footprint;
      }
    }

    status = MineTree(conditional, depth + 1, scratch, result, charged);
  } while (false);
  // Leftover touched counts are possible only on the `touched.empty()`
  // break (which left nothing) or before pass 1 ran; every path that
  // accumulated counts also reset them above, so the scratch is clean for
  // the next sibling.
  suffix.erase(suffix.begin() + pos);
  return status;
}

}  // namespace maras::mining
