#include "mining/fpgrowth.h"

#include <algorithm>
#include <unordered_map>

#include "util/thread_pool.h"

namespace maras::mining {

namespace {

// Builds the conditional FP-tree for a pattern base: drop items below
// min_support within the base, re-order every path by the conditional
// supports, insert with multiplicity.
std::unique_ptr<FpTree> BuildConditionalTree(
    const std::vector<FpTree::PrefixPath>& base, size_t min_support) {
  std::unordered_map<ItemId, size_t> counts;
  for (const auto& path : base) {
    for (ItemId item : path.items) counts[item] += path.count;
  }
  auto tree = std::make_unique<FpTree>();
  auto order = [&counts](ItemId a, ItemId b) {
    size_t ca = counts[a];
    size_t cb = counts[b];
    if (ca != cb) return ca > cb;
    return a < b;
  };
  std::vector<ItemId> filtered;
  for (const auto& path : base) {
    filtered.clear();
    for (ItemId item : path.items) {
      if (counts[item] >= min_support) filtered.push_back(item);
    }
    if (filtered.empty()) continue;
    std::sort(filtered.begin(), filtered.end(), order);
    tree->Insert(filtered, path.count);
  }
  return tree;
}

}  // namespace

maras::StatusOr<FrequentItemsetResult> FpGrowth::Mine(
    const TransactionDatabase& db) const {
  if (options_.min_support == 0) {
    return maras::Status::InvalidArgument("min_support must be >= 1");
  }
  FrequentItemsetResult result;
  std::unique_ptr<FpTree> tree = FpTree::Build(db, options_.min_support);
  const std::vector<ItemId> items = tree->ItemsBySupportAscending();
  const size_t workers = EffectiveThreads(options_.num_threads, items.size());
  if (workers <= 1) {
    MineTree(*tree, /*suffix=*/{}, &result);
  } else {
    // Fan out one task per top-level item. Tasks only read the shared tree
    // and write their own shard; the canonical sort below erases any trace
    // of the schedule.
    std::vector<FrequentItemsetResult> shards(items.size());
    ParallelFor(workers, items.size(), [this, &tree, &items, &shards](
                                           size_t i) {
      MineItem(*tree, items[i], /*suffix=*/{}, &shards[i]);
    });
    for (FrequentItemsetResult& shard : shards) {
      result.Absorb(std::move(shard));
    }
  }
  result.SortCanonically();
  return result;
}

void FpGrowth::MineTree(const FpTree& tree, const Itemset& suffix,
                        FrequentItemsetResult* result) const {
  if (options_.max_itemset_size != 0 &&
      suffix.size() >= options_.max_itemset_size) {
    return;
  }
  for (ItemId item : tree.ItemsBySupportAscending()) {
    MineItem(tree, item, suffix, result);
  }
}

void FpGrowth::MineItem(const FpTree& tree, ItemId item, const Itemset& suffix,
                        FrequentItemsetResult* result) const {
  if (options_.max_itemset_size != 0 &&
      suffix.size() >= options_.max_itemset_size) {
    return;
  }
  size_t support = tree.ItemCount(item);
  if (support < options_.min_support) return;
  Itemset pattern = suffix;
  pattern.push_back(item);
  std::sort(pattern.begin(), pattern.end());
  result->Add(pattern, support);

  if (options_.max_itemset_size != 0 &&
      pattern.size() >= options_.max_itemset_size) {
    return;  // no deeper extensions wanted
  }
  auto base = tree.ConditionalPatternBase(item);
  if (base.empty()) return;
  std::unique_ptr<FpTree> conditional =
      BuildConditionalTree(base, options_.min_support);
  MineTree(*conditional, pattern, result);
}

}  // namespace maras::mining
