#include "mining/fpgrowth.h"

#include <algorithm>
#include <unordered_map>

#include "util/run_context.h"
#include "util/thread_pool.h"

namespace maras::mining {

namespace {

// Builds the conditional FP-tree for a pattern base: drop items below
// min_support within the base, re-order every path by the conditional
// supports, insert with multiplicity.
std::unique_ptr<FpTree> BuildConditionalTree(
    const std::vector<FpTree::PrefixPath>& base, size_t min_support) {
  std::unordered_map<ItemId, size_t> counts;
  for (const auto& path : base) {
    for (ItemId item : path.items) counts[item] += path.count;
  }
  auto tree = std::make_unique<FpTree>();
  auto order = [&counts](ItemId a, ItemId b) {
    size_t ca = counts[a];
    size_t cb = counts[b];
    if (ca != cb) return ca > cb;
    return a < b;
  };
  std::vector<ItemId> filtered;
  for (const auto& path : base) {
    filtered.clear();
    for (ItemId item : path.items) {
      if (counts[item] >= min_support) filtered.push_back(item);
    }
    if (filtered.empty()) continue;
    std::sort(filtered.begin(), filtered.end(), order);
    tree->Insert(filtered, path.count);
  }
  return tree;
}

// Approximate resident bytes of one recorded itemset: the struct, its item
// payload, and the support-table entry. The budget bounds blow-up by order
// of magnitude, not by exact allocator bytes, so an estimate is enough.
size_t ItemsetFootprint(const Itemset& pattern) {
  return sizeof(FrequentItemset) + pattern.size() * sizeof(ItemId) + 64;
}

}  // namespace

maras::StatusOr<FrequentItemsetResult> FpGrowth::Mine(
    const TransactionDatabase& db) const {
  if (options_.min_support == 0) {
    return maras::Status::InvalidArgument("min_support must be >= 1");
  }
  const RunContext* ctx = options_.context;
  FrequentItemsetResult result;
  std::unique_ptr<FpTree> tree = FpTree::Build(db, options_.min_support);
  const std::vector<ItemId> items = tree->ItemsBySupportAscending();
  const size_t workers = EffectiveThreads(options_.num_threads, items.size());
  maras::Status status;
  size_t charged = 0;
  if (workers <= 1) {
    status = MineTree(*tree, /*suffix=*/{}, &result, &charged);
  } else {
    // Fan out one task per top-level item. Tasks only read the shared tree
    // and write their own shard (result + charge accounting); the canonical
    // sort below erases any trace of the schedule.
    const RunContext ungoverned;
    std::vector<FrequentItemsetResult> shards(items.size());
    std::vector<size_t> shard_charged(items.size(), 0);
    status = TryParallelFor(
        workers, items.size(), ctx != nullptr ? *ctx : ungoverned,
        [this, &tree, &items, &shards, &shard_charged](size_t i) {
          return MineItem(*tree, items[i], /*suffix=*/{}, &shards[i],
                          &shard_charged[i]);
        });
    for (size_t c : shard_charged) charged += c;
    if (status.ok()) {
      for (FrequentItemsetResult& shard : shards) {
        result.Absorb(std::move(shard));
      }
    }
  }
  if (!status.ok()) {
    // A failed mine keeps nothing, so its accounting must not linger: a
    // degradation retry at higher support starts from a clean budget.
    if (ctx != nullptr && ctx->budget != nullptr) ctx->budget->Release(charged);
    return maras::WithContext(status, "fp-growth");
  }
  result.SortCanonically();
  return result;
}

maras::Status FpGrowth::MineTree(const FpTree& tree, const Itemset& suffix,
                                 FrequentItemsetResult* result,
                                 size_t* charged) const {
  if (options_.max_itemset_size != 0 &&
      suffix.size() >= options_.max_itemset_size) {
    return maras::Status::OK();
  }
  for (ItemId item : tree.ItemsBySupportAscending()) {
    MARAS_RETURN_IF_ERROR(MineItem(tree, item, suffix, result, charged));
  }
  return maras::Status::OK();
}

maras::Status FpGrowth::MineItem(const FpTree& tree, ItemId item,
                                 const Itemset& suffix,
                                 FrequentItemsetResult* result,
                                 size_t* charged) const {
  if (options_.max_itemset_size != 0 &&
      suffix.size() >= options_.max_itemset_size) {
    return maras::Status::OK();
  }
  // One poll per conditional-tree step bounds the governance interval: the
  // non-recursive work below is O(pattern base), never unbounded.
  if (options_.context != nullptr) {
    MARAS_RETURN_IF_ERROR(options_.context->Check());
  }
  size_t support = tree.ItemCount(item);
  if (support < options_.min_support) return maras::Status::OK();
  Itemset pattern = suffix;
  pattern.push_back(item);
  std::sort(pattern.begin(), pattern.end());
  if (options_.context != nullptr) {
    const size_t bytes = ItemsetFootprint(pattern);
    MARAS_RETURN_IF_ERROR(options_.context->Charge(bytes));
    *charged += bytes;
  }
  result->Add(pattern, support);

  if (options_.max_itemset_size != 0 &&
      pattern.size() >= options_.max_itemset_size) {
    return maras::Status::OK();  // no deeper extensions wanted
  }
  auto base = tree.ConditionalPatternBase(item);
  if (base.empty()) return maras::Status::OK();
  std::unique_ptr<FpTree> conditional =
      BuildConditionalTree(base, options_.min_support);
  return MineTree(*conditional, pattern, result, charged);
}

}  // namespace maras::mining
