#include "mining/fptree.h"

#include <algorithm>

#include "util/logging.h"

namespace maras::mining {

FpTree::Node* FpTree::NewNode(ItemId item, Node* parent) {
  arena_.push_back(std::make_unique<Node>());
  Node* node = arena_.back().get();
  node->item = item;
  node->parent = parent;
  return node;
}

FpTree::Node* FpTree::ChildFor(Node* node, ItemId item) {
  auto it = std::lower_bound(
      node->children.begin(), node->children.end(), item,
      [](const Node* child, ItemId id) { return child->item < id; });
  if (it != node->children.end() && (*it)->item == item) return *it;
  Node* child = NewNode(item, node);
  node->children.insert(it, child);
  // Append to the header chain.
  auto last_it = header_last_.find(item);
  if (last_it == header_last_.end()) {
    header_first_[item] = child;
    header_last_[item] = child;
  } else {
    last_it->second->next_same_item = child;
    last_it->second = child;
  }
  return child;
}

void FpTree::Insert(const std::vector<ItemId>& path, size_t count) {
  Node* node = root_;
  for (ItemId item : path) {
    node = ChildFor(node, item);
    node->count += count;
    item_counts_[item] += count;
  }
}

std::unique_ptr<FpTree> FpTree::Build(const TransactionDatabase& db,
                                      size_t min_support) {
  auto tree = std::make_unique<FpTree>();
  // Global item supports.
  std::unordered_map<ItemId, size_t> supports;
  for (const Itemset& t : db.transactions()) {
    for (ItemId item : t) ++supports[item];
  }
  // Per-transaction reorder: descending support, ties ascending id.
  auto order = [&supports](ItemId a, ItemId b) {
    size_t sa = supports[a];
    size_t sb = supports[b];
    if (sa != sb) return sa > sb;
    return a < b;
  };
  std::vector<ItemId> path;
  for (const Itemset& t : db.transactions()) {
    path.clear();
    for (ItemId item : t) {
      if (supports[item] >= min_support) path.push_back(item);
    }
    if (path.empty()) continue;
    std::sort(path.begin(), path.end(), order);
    tree->Insert(path, 1);
  }
  return tree;
}

std::vector<ItemId> FpTree::ItemsBySupportAscending() const {
  std::vector<ItemId> items;
  items.reserve(item_counts_.size());
  for (const auto& [item, count] : item_counts_) items.push_back(item);
  std::sort(items.begin(), items.end(), [this](ItemId a, ItemId b) {
    size_t sa = item_counts_.at(a);
    size_t sb = item_counts_.at(b);
    if (sa != sb) return sa < sb;
    return a > b;
  });
  return items;
}

size_t FpTree::ItemCount(ItemId item) const {
  auto it = item_counts_.find(item);
  return it == item_counts_.end() ? 0 : it->second;
}

const FpTree::Node* FpTree::HeaderChain(ItemId item) const {
  auto it = header_first_.find(item);
  return it == header_first_.end() ? nullptr : it->second;
}

bool FpTree::IsSinglePath() const {
  const Node* node = root_;
  while (!node->children.empty()) {
    if (node->children.size() > 1) return false;
    node = node->children.front();
  }
  return true;
}

std::vector<std::pair<ItemId, size_t>> FpTree::SinglePathItems() const {
  MARAS_CHECK(IsSinglePath()) << "tree is not a single path";
  std::vector<std::pair<ItemId, size_t>> items;
  const Node* node = root_;
  while (!node->children.empty()) {
    node = node->children.front();
    items.emplace_back(node->item, node->count);
  }
  return items;
}

std::vector<FpTree::PrefixPath> FpTree::ConditionalPatternBase(
    ItemId item) const {
  std::vector<PrefixPath> base;
  for (const Node* node = HeaderChain(item); node != nullptr;
       node = node->next_same_item) {
    PrefixPath path;
    path.count = node->count;
    for (const Node* up = node->parent; up != nullptr && up->parent != nullptr;
         up = up->parent) {
      path.items.push_back(up->item);
    }
    std::reverse(path.items.begin(), path.items.end());
    if (!path.items.empty()) base.push_back(std::move(path));
  }
  return base;
}

}  // namespace maras::mining
