#include "mining/fptree.h"

#include <algorithm>

#include "util/logging.h"

namespace maras::mining {

FpTree::FpTree() {
  // Root node at index 0.
  item_.push_back(0);
  count_.push_back(0);
  parent_.push_back(kNoNode);
  next_same_item_.push_back(kNoNode);
  first_child_.push_back(kNoNode);
  next_sibling_.push_back(kNoNode);
}

void FpTree::Clear() {
  item_.resize(1);
  count_.resize(1);
  parent_.resize(1);
  next_same_item_.resize(1);
  first_child_.resize(1);
  next_sibling_.resize(1);
  count_[0] = 0;
  first_child_[0] = kNoNode;
  for (ItemId item : touched_items_) {
    header_first_[item] = kNoNode;
    header_last_[item] = kNoNode;
    item_counts_[item] = 0;
  }
  touched_items_.clear();
}

void FpTree::ReserveNodes(size_t nodes) {
  item_.reserve(nodes);
  count_.reserve(nodes);
  parent_.reserve(nodes);
  next_same_item_.reserve(nodes);
  first_child_.reserve(nodes);
  next_sibling_.reserve(nodes);
}

void FpTree::ReserveItems(size_t item_bound) {
  if (item_bound <= header_first_.size()) return;
  header_first_.resize(item_bound, kNoNode);
  header_last_.resize(item_bound, kNoNode);
  item_counts_.resize(item_bound, 0);
}

void FpTree::EnsureItem(ItemId item) {
  if (item >= header_first_.size()) {
    ReserveItems(static_cast<size_t>(item) + 1);
  }
  if (header_first_[item] == kNoNode && item_counts_[item] == 0) {
    touched_items_.push_back(item);
  }
}

FpTree::NodeIndex FpTree::NewNode(ItemId item, NodeIndex parent) {
  const NodeIndex node = static_cast<NodeIndex>(item_.size());
  item_.push_back(item);
  count_.push_back(0);
  parent_.push_back(parent);
  next_same_item_.push_back(kNoNode);
  first_child_.push_back(kNoNode);
  next_sibling_.push_back(kNoNode);
  return node;
}

FpTree::NodeIndex FpTree::ChildFor(NodeIndex node, ItemId item) {
  NodeIndex child = first_child_[node];
  NodeIndex last = kNoNode;
  while (child != kNoNode) {
    if (item_[child] == item) return child;
    last = child;
    child = next_sibling_[child];
  }
  EnsureItem(item);
  const NodeIndex fresh = NewNode(item, node);
  if (last == kNoNode) {
    first_child_[node] = fresh;
  } else {
    next_sibling_[last] = fresh;
  }
  // Append to the header chain.
  if (header_last_[item] == kNoNode) {
    header_first_[item] = fresh;
  } else {
    next_same_item_[header_last_[item]] = fresh;
  }
  header_last_[item] = fresh;
  return fresh;
}

void FpTree::Insert(const std::vector<ItemId>& path, size_t count) {
  Insert(path.data(), path.size(), count);
}

void FpTree::Insert(const ItemId* path, size_t len, size_t count) {
  NodeIndex node = 0;
  const uint32_t delta = static_cast<uint32_t>(count);
  for (size_t i = 0; i < len; ++i) {
    const ItemId item = path[i];
    node = ChildFor(node, item);
    count_[node] += delta;
    EnsureItem(item);
    item_counts_[item] += delta;
  }
}

FpTree FpTree::Build(const TransactionDatabase& db, size_t min_support) {
  FpTree tree;
  const size_t item_bound = db.item_bound();
  // Global item supports, densely indexed.
  std::vector<uint32_t> supports(item_bound, 0);
  for (const Itemset& t : db.transactions()) {
    for (ItemId item : t) ++supports[item];
  }
  // Exact retained-occurrence count: every kept occurrence creates at most
  // one node, so one bulk reservation covers the whole build.
  size_t kept = 0;
  for (uint32_t support : supports) {
    if (support >= min_support) kept += support;
  }
  tree.ReserveItems(item_bound);
  tree.ReserveNodes(kept + 1);
  // Per-transaction reorder: descending support, ties ascending id.
  auto order = [&supports](ItemId a, ItemId b) {
    const uint32_t sa = supports[a];
    const uint32_t sb = supports[b];
    if (sa != sb) return sa > sb;
    return a < b;
  };
  std::vector<ItemId> path;
  for (const Itemset& t : db.transactions()) {
    path.clear();
    for (ItemId item : t) {
      if (supports[item] >= min_support) path.push_back(item);
    }
    if (path.empty()) continue;
    std::sort(path.begin(), path.end(), order);
    tree.Insert(path, 1);
  }
  return tree;
}

std::vector<ItemId> FpTree::ItemsBySupportAscending() const {
  std::vector<ItemId> items;
  ItemsBySupportAscending(&items);
  return items;
}

void FpTree::ItemsBySupportAscending(std::vector<ItemId>* out) const {
  out->clear();
  for (ItemId item : touched_items_) {
    if (item_counts_[item] > 0) out->push_back(item);
  }
  std::sort(out->begin(), out->end(), [this](ItemId a, ItemId b) {
    const uint32_t sa = item_counts_[a];
    const uint32_t sb = item_counts_[b];
    if (sa != sb) return sa < sb;
    return a > b;
  });
}

size_t FpTree::ItemCount(ItemId item) const {
  return item < item_counts_.size() ? item_counts_[item] : 0;
}

FpTree::NodeIndex FpTree::HeaderChain(ItemId item) const {
  return item < header_first_.size() ? header_first_[item] : kNoNode;
}

bool FpTree::IsSinglePath() const {
  NodeIndex node = 0;
  while (first_child_[node] != kNoNode) {
    node = first_child_[node];
    if (next_sibling_[node] != kNoNode) return false;
  }
  return true;
}

std::vector<std::pair<ItemId, size_t>> FpTree::SinglePathItems() const {
  MARAS_CHECK(IsSinglePath()) << "tree is not a single path";
  std::vector<std::pair<ItemId, size_t>> items;
  NodeIndex node = 0;
  while (first_child_[node] != kNoNode) {
    node = first_child_[node];
    items.emplace_back(item_[node], count_[node]);
  }
  return items;
}

size_t FpTree::MemoryFootprint() const {
  return item_.capacity() * sizeof(ItemId) +
         count_.capacity() * sizeof(uint32_t) +
         parent_.capacity() * sizeof(NodeIndex) +
         next_same_item_.capacity() * sizeof(NodeIndex) +
         first_child_.capacity() * sizeof(NodeIndex) +
         next_sibling_.capacity() * sizeof(NodeIndex) +
         header_first_.capacity() * sizeof(NodeIndex) +
         header_last_.capacity() * sizeof(NodeIndex) +
         item_counts_.capacity() * sizeof(uint32_t) +
         touched_items_.capacity() * sizeof(ItemId);
}

std::vector<FpTree::PrefixPath> FpTree::ConditionalPatternBase(
    ItemId item) const {
  std::vector<PrefixPath> base;
  for (NodeIndex node = HeaderChain(item); node != kNoNode;
       node = next_same_item_[node]) {
    PrefixPath path;
    path.count = count_[node];
    for (NodeIndex up = parent_[node]; up != 0; up = parent_[up]) {
      path.items.push_back(item_[up]);
    }
    std::reverse(path.items.begin(), path.items.end());
    if (!path.items.empty()) base.push_back(std::move(path));
  }
  return base;
}

}  // namespace maras::mining
