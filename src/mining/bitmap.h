#ifndef MARAS_MINING_BITMAP_H_
#define MARAS_MINING_BITMAP_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "mining/transaction_db.h"

namespace maras::mining {

// ---------------------------------------------------------------------------
// Fixed-width bitmap kernels over the vertical tid index.
//
// A TidBitmap represents a set of transaction ids drawn from a fixed
// universe [0, universe) as packed 64-bit words. Support counting — the
// inner loop of vertical mining and of every 2×2 contingency table — then
// becomes word-wise AND + popcount over contiguous arrays instead of a
// branchy merge over std::vector<Tid>. The kernels below are written as
// plain loops the compiler can autovectorize, with an AVX2 path selected at
// runtime on x86-64 (and a NEON path compiled in on aarch64); every backend
// computes bit-identical counts, which mining_bitmap_kernel_test proves
// against a scalar std::set_intersection oracle.
//
// Sparse items (support ≪ universe) stay cheaper as sorted tid-lists, so
// the layer also provides galloping (exponential-search) intersection and
// bitmap-probe kernels, plus the dense<->sparse conversions the miner's
// density-based representation choice needs.
// ---------------------------------------------------------------------------

using BitmapWord = uint64_t;

inline constexpr size_t kBitmapWordBits = 64;

// Words processed per cache block by the long-loop kernels: 512 words =
// 4 KiB per operand, so two operands of a blocked AND+popcount fit in L1
// alongside the accumulator state.
inline constexpr size_t kBitmapBlockWords = 512;

// Representation heuristic: a bitmap costs universe/8 bytes regardless of
// support; a tid-list costs 4·support bytes. The bitmap additionally wins
// on branch-free intersection, so the crossover is taken well before byte
// parity: an item goes dense when support · kDenseSelectivityDivisor >=
// universe (≥ 1/32 of all transactions contain it).
inline constexpr size_t kDenseSelectivityDivisor = 32;

// True when an item of `support` over `universe` transactions should use
// the dense bitmap representation under the auto policy.
inline bool PreferDense(size_t support, size_t universe) {
  return support * kDenseSelectivityDivisor >= universe;
}

// Fixed-universe bitset keyed by TransactionId. Bits beyond `universe` in
// the trailing partial word are kept zero — every kernel relies on that
// invariant, and DCHECK-style tests assert it after each mutating op.
class TidBitmap {
 public:
  TidBitmap() = default;
  explicit TidBitmap(size_t universe) { Reset(universe); }

  // Resizes to `universe` bits and clears every bit. Keeps capacity, so a
  // recycled scratch bitmap re-Reset() allocates nothing.
  void Reset(size_t universe);

  // Sets every bit in [0, universe): the bitmap of the empty itemset
  // (every transaction trivially contains it). Trailing bits stay zero.
  void Fill();

  void Set(TransactionId tid);
  bool Test(TransactionId tid) const;

  size_t universe() const { return universe_; }
  size_t word_count() const { return words_.size(); }
  bool empty_universe() const { return universe_ == 0; }

  const BitmapWord* words() const { return words_.data(); }
  BitmapWord* mutable_words() { return words_.data(); }

  // Builds the bitmap of a sorted tid-list (the dense<-sparse conversion).
  static TidBitmap FromTids(const std::vector<TransactionId>& tids,
                            size_t universe);

  // Decodes back to the ascending tid-list (the sparse<-dense conversion).
  std::vector<TransactionId> ToTids() const;
  void AppendTids(std::vector<TransactionId>* out) const;

 private:
  size_t universe_ = 0;
  std::vector<BitmapWord> words_;
};

// --- word-wise kernels (runtime-dispatched on x86-64) ----------------------

// |a| — population count of the whole bitmap.
size_t BitmapPopcount(const TidBitmap& a);

// |a ∧ b| without materializing the intersection. Universes must match.
size_t AndPopcount(const TidBitmap& a, const TidBitmap& b);

// |a ∧ ¬b| — the "lacks" cell of a contingency row. Universes must match.
size_t AndNotPopcount(const TidBitmap& a, const TidBitmap& b);

// |a ∧ b ∧ c| — one fused pass for stratified cell counts.
size_t And3Popcount(const TidBitmap& a, const TidBitmap& b,
                    const TidBitmap& c);

// out = a ∧ b, materialized; returns |out|. `out` is Reset to the common
// universe first, so any recycled bitmap may be passed.
size_t BitmapAnd(const TidBitmap& a, const TidBitmap& b, TidBitmap* out);

// out = a ∧ ¬b, materialized; returns |out|.
size_t BitmapAndNot(const TidBitmap& a, const TidBitmap& b, TidBitmap* out);

// Name of the word-kernel backend the runtime dispatch selected: "avx2",
// "neon", or "scalar". Stable for the life of the process.
const char* BitmapKernelBackend();

// --- sparse kernels --------------------------------------------------------

// |a ∩ b| over sorted tid-lists by galloping: the shorter list is walked
// element-wise, the longer advanced by exponential search then binary
// refinement — O(|short| · log |long|), which beats the linear merge when
// the lengths are badly skewed (the sparse-item case).
size_t GallopIntersectCount(const std::vector<TransactionId>& a,
                            const std::vector<TransactionId>& b);

// a ∩ b materialized into *out (cleared first; capacity kept).
void GallopIntersect(const std::vector<TransactionId>& a,
                     const std::vector<TransactionId>& b,
                     std::vector<TransactionId>* out);

// |tids ∩ bitmap| — probe each sparse tid against the dense side.
size_t ProbeCount(const std::vector<TransactionId>& tids, const TidBitmap& b);

// tids ∩ bitmap materialized into *out (cleared first; capacity kept).
void ProbeIntersect(const std::vector<TransactionId>& tids, const TidBitmap& b,
                    std::vector<TransactionId>* out);

// ---------------------------------------------------------------------------
// Per-item vertical representation with density-based choice: the bridge
// between the TransactionDatabase's tid-lists and the kernels above.
// ---------------------------------------------------------------------------

// Which representation a VerticalSlice (and its descendants) may use.
enum class BitmapPolicy {
  kAuto,    // per-slice by PreferDense() — the production mode
  kDense,   // force bitmaps everywhere (test/bench mode)
  kSparse,  // force tid-lists everywhere (test/bench mode)
};

// One item's (or one equivalence-class member's) tid set, in whichever
// representation the policy chose. Exactly one of bitmap/tids is active.
struct VerticalSlice {
  ItemId item = 0;
  size_t support = 0;
  bool dense = false;
  TidBitmap bitmap;                  // active when dense
  std::vector<TransactionId> tids;   // active when !dense

  // Builds a slice from a sorted tid-list under `policy`.
  static VerticalSlice Make(ItemId item, const std::vector<TransactionId>& t,
                            size_t universe, BitmapPolicy policy);

  // Re-encodes an already-intersected result (sorted tids) under `policy`.
  static VerticalSlice FromIntersection(ItemId item,
                                        std::vector<TransactionId> t,
                                        size_t universe, BitmapPolicy policy);
  static VerticalSlice FromIntersection(ItemId item, TidBitmap bm,
                                        size_t support, BitmapPolicy policy);
};

// support(|a ∩ b|) plus the child slice for item `b.item`, intersecting any
// representation pair under `policy`. Returns a slice with support 0 (and
// no storage) when the intersection is empty.
VerticalSlice IntersectSlices(const VerticalSlice& a, const VerticalSlice& b,
                              size_t universe, BitmapPolicy policy);

}  // namespace maras::mining

#endif  // MARAS_MINING_BITMAP_H_
