#include "mining/concept_lattice.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "util/run_context.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace maras::mining {

namespace {

// FNV-1a over an id span — must hash identically to ItemsetHash so FindNode
// probes and pool-resident keys agree.
uint64_t SpanHash(const ItemId* ids, size_t count) {
  uint64_t h = 1469598103934665603ULL;
  for (size_t i = 0; i < count; ++i) {
    h ^= ids[i];
    h *= 1099511628211ULL;
  }
  return h;
}

bool SpanEquals(const ItemId* a, size_t a_count, const Itemset& b) {
  if (a_count != b.size()) return false;
  return std::equal(a, a + a_count, b.begin());
}

// a ⊆ b over sorted spans.
bool SpanIsSubset(const ItemId* a, size_t a_count, const ItemId* b,
                  size_t b_count) {
  if (a_count > b_count) return false;
  size_t j = 0;
  for (size_t i = 0; i < a_count; ++i) {
    while (j < b_count && b[j] < a[i]) ++j;
    if (j == b_count || b[j] != a[i]) return false;
    ++j;
  }
  return true;
}

// Smallest power-of-two slot count keeping load factor under ~0.7 (the
// FlatItemsetIndex policy).
size_t SlotCountFor(size_t entries) {
  size_t slots = 16;
  while (slots * 7 < entries * 10) slots *= 2;
  return slots;
}

// Poll cadence inside the covering-edge fan-out: one RunContext check per
// this many processed nodes keeps governance latency bounded without putting
// an atomic load in the inner counting loop.
constexpr size_t kPollStride = 64;

}  // namespace

uint32_t ConceptLattice::FindNode(const Itemset& s) const {
  if (index_slots_.empty()) return kNotFound;
  const uint64_t hash = SpanHash(s.data(), s.size());
  const size_t mask = index_slots_.size() - 1;
  for (size_t i = hash & mask;; i = (i + 1) & mask) {
    const IndexSlot& slot = index_slots_[i];
    if (slot.node == kNotFound) return kNotFound;
    if (slot.hash == hash) {
      LatticeSpan<ItemId> items = NodeItems(slot.node);
      if (SpanEquals(items.ptr, items.count, s)) return slot.node;
    }
  }
}

bool ConceptLattice::NodeContains(uint32_t node, const Itemset& subset) const {
  LatticeSpan<ItemId> items = NodeItems(node);
  return SpanIsSubset(subset.data(), subset.size(), items.ptr, items.count);
}

uint32_t ConceptLattice::DescendToClosure(uint32_t start,
                                          const Itemset& subset) const {
  uint32_t current = start;
  for (;;) {
    uint32_t next = kNotFound;
    for (uint32_t candidate : Subsets(current)) {
      if (NodeContains(candidate, subset)) {
        next = candidate;
        break;
      }
    }
    if (next == kNotFound) return current;
    current = next;
  }
}

size_t ConceptLattice::MemoryFootprint() const {
  return item_pool_.capacity() * sizeof(ItemId) +
         node_item_begin_.capacity() * sizeof(uint32_t) +
         support_.capacity() * sizeof(uint64_t) +
         (subset_begin_.capacity() + subsets_.capacity() +
          superset_begin_.capacity() + supersets_.capacity()) *
             sizeof(uint32_t) +
         index_slots_.capacity() * sizeof(IndexSlot);
}

void ConceptLattice::BuildNodeIndex() {
  const size_t n = support_.size();
  index_slots_.assign(SlotCountFor(n), IndexSlot{});
  const size_t mask = index_slots_.size() - 1;
  for (uint32_t node = 0; node < n; ++node) {
    LatticeSpan<ItemId> items = NodeItems(node);
    const uint64_t hash = SpanHash(items.ptr, items.count);
    size_t i = hash & mask;
    // Node itemsets are unique within one closed family, so placement needs
    // no key compares.
    while (index_slots_[i].node != kNotFound) i = (i + 1) & mask;
    index_slots_[i] = IndexSlot{hash, node};
  }
}

maras::StatusOr<ConceptLattice> ConceptLattice::Build(
    const FrequentItemsetResult& closed, size_t num_threads,
    const RunContext& ctx) {
  const size_t n = closed.size();
  if (n >= kNotFound) {
    return maras::Status::InvalidArgument(
        "closed family of " + std::to_string(n) +
        " itemsets exceeds 32-bit lattice node indexing");
  }

  ConceptLattice lattice;
  size_t pool_size = 0;
  ItemId item_bound = 0;
  for (const FrequentItemset& fi : closed.itemsets()) {
    pool_size += fi.items.size();
    if (!fi.items.empty()) item_bound = std::max(item_bound, fi.items.back());
  }
  if (n > 0) item_bound += 1;
  if (pool_size >= static_cast<size_t>(kNotFound)) {
    return maras::Status::InvalidArgument(
        "closed family item pool exceeds 32-bit indexing");
  }
  lattice.item_pool_.reserve(pool_size);
  lattice.node_item_begin_.reserve(n + 1);
  lattice.support_.reserve(n);
  lattice.node_item_begin_.push_back(0);
  for (const FrequentItemset& fi : closed.itemsets()) {
    lattice.item_pool_.insert(lattice.item_pool_.end(), fi.items.begin(),
                              fi.items.end());
    lattice.node_item_begin_.push_back(
        static_cast<uint32_t>(lattice.item_pool_.size()));
    lattice.support_.push_back(fi.support);
  }
  lattice.BuildNodeIndex();
  MARAS_RETURN_IF_ERROR(ctx.Charge(lattice.MemoryFootprint()));

  // Inverted index: item -> ascending node ids containing it. Drives the
  // counting pass that finds each node's proper closed subsets.
  std::vector<uint32_t> nodes_with_item_begin(item_bound + 1, 0);
  for (uint32_t node = 0; node < n; ++node) {
    for (ItemId id : lattice.NodeItems(node)) ++nodes_with_item_begin[id + 1];
  }
  for (size_t i = 1; i < nodes_with_item_begin.size(); ++i) {
    nodes_with_item_begin[i] += nodes_with_item_begin[i - 1];
  }
  std::vector<uint32_t> nodes_with_item(lattice.item_pool_.size());
  {
    std::vector<uint32_t> cursor(nodes_with_item_begin.begin(),
                                 nodes_with_item_begin.end() - 1);
    for (uint32_t node = 0; node < n; ++node) {
      for (ItemId id : lattice.NodeItems(node)) {
        nodes_with_item[cursor[id]++] = node;
      }
    }
  }

  // Covering-edge fan-out. Work is sharded by a node-id stride so each shard
  // owns one counting scratch for its whole lifetime; covers[v] depends only
  // on v, so the shard assignment cannot influence output. For node v:
  // count, over the inverted lists of v's items, how many of v's items each
  // other node carries — u with count == |u| is a proper closed subset
  // (itemsets are unique, so u ⊆ v and u ≠ v imply u ⊊ v). The covers are
  // the maximal such u: scanning candidates largest-first, a candidate
  // contained in an already chosen cover is dominated, anything else starts
  // a new cover (every non-maximal candidate is inside some maximal one, so
  // the check against chosen covers alone is sufficient).
  std::vector<std::vector<uint32_t>> covers(n);
  const size_t workers = std::max<size_t>(1, maras::EffectiveThreads(num_threads, n));
  const size_t shards = std::min<size_t>(n, workers * 4);
  maras::Status fan_status = maras::TryParallelFor(
      num_threads, shards, ctx, [&](size_t shard) -> maras::Status {
        std::vector<uint32_t> count(n, 0);
        std::vector<uint32_t> touched;
        std::vector<uint32_t> candidates;
        size_t since_poll = 0;
        for (uint32_t v = static_cast<uint32_t>(shard); v < n;
             v += static_cast<uint32_t>(shards)) {
          if (++since_poll >= kPollStride) {
            since_poll = 0;
            MARAS_RETURN_IF_ERROR(ctx.Check());
          }
          LatticeSpan<ItemId> v_items = lattice.NodeItems(v);
          touched.clear();
          for (ItemId id : v_items) {
            const uint32_t begin = nodes_with_item_begin[id];
            const uint32_t end = nodes_with_item_begin[id + 1];
            for (uint32_t k = begin; k < end; ++k) {
              const uint32_t u = nodes_with_item[k];
              if (u == v) continue;
              if (count[u]++ == 0) touched.push_back(u);
            }
          }
          candidates.clear();
          for (uint32_t u : touched) {
            LatticeSpan<ItemId> u_items = lattice.NodeItems(u);
            if (count[u] == u_items.count && u_items.count < v_items.count) {
              candidates.push_back(u);
            }
            count[u] = 0;
          }
          // Largest-first, id ascending within a size — deterministic and
          // makes the domination check against chosen covers complete.
          std::sort(candidates.begin(), candidates.end(),
                    [&lattice](uint32_t a, uint32_t b) {
                      const size_t sa = lattice.NodeItems(a).count;
                      const size_t sb = lattice.NodeItems(b).count;
                      if (sa != sb) return sa > sb;
                      return a < b;
                    });
          std::vector<uint32_t>& chosen = covers[v];
          for (uint32_t u : candidates) {
            LatticeSpan<ItemId> u_items = lattice.NodeItems(u);
            bool dominated = false;
            for (uint32_t w : chosen) {
              LatticeSpan<ItemId> w_items = lattice.NodeItems(w);
              if (SpanIsSubset(u_items.ptr, u_items.count, w_items.ptr,
                               w_items.count)) {
                dominated = true;
                break;
              }
            }
            if (!dominated) chosen.push_back(u);
          }
          std::sort(chosen.begin(), chosen.end());
        }
        return maras::Status::OK();
      });
  if (!fan_status.ok()) {
    return maras::WithContext(fan_status, "lattice-build");
  }

  // Serial CSR assembly in node order (deterministic bytes), then the
  // transpose for the specialize direction.
  size_t edge_total = 0;
  for (const std::vector<uint32_t>& c : covers) edge_total += c.size();
  lattice.subset_begin_.reserve(n + 1);
  lattice.subsets_.reserve(edge_total);
  lattice.subset_begin_.push_back(0);
  for (uint32_t v = 0; v < n; ++v) {
    lattice.subsets_.insert(lattice.subsets_.end(), covers[v].begin(),
                            covers[v].end());
    lattice.subset_begin_.push_back(
        static_cast<uint32_t>(lattice.subsets_.size()));
  }
  lattice.superset_begin_.assign(n + 1, 0);
  for (uint32_t u : lattice.subsets_) ++lattice.superset_begin_[u + 1];
  for (size_t i = 1; i <= n; ++i) {
    lattice.superset_begin_[i] += lattice.superset_begin_[i - 1];
  }
  lattice.supersets_.resize(edge_total);
  {
    std::vector<uint32_t> cursor(lattice.superset_begin_.begin(),
                                 lattice.superset_begin_.end() - 1);
    for (uint32_t v = 0; v < n; ++v) {
      for (uint32_t u : covers[v]) lattice.supersets_[cursor[u]++] = v;
    }
  }
  MARAS_RETURN_IF_ERROR(
      ctx.Charge((lattice.subsets_.size() + lattice.supersets_.size() + 2 * n +
                  2) *
                 sizeof(uint32_t)));
  return lattice;
}

// ---------------------------------------------------------------------------
// SubsetSupportCache
// ---------------------------------------------------------------------------

SubsetSupportCache::SubsetSupportCache(const TransactionDatabase* db)
    : db_(db), shards_(kShardCount), item_bitmaps_(db->item_bound()) {}

const TidBitmap& SubsetSupportCache::ItemBitmap(ItemId item) {
  MutexLock lock(&bitmap_mu_);
  std::unique_ptr<TidBitmap>& slot = item_bitmaps_[item];
  if (slot == nullptr) {
    slot = std::make_unique<TidBitmap>(
        TidBitmap::FromTids(db_->TidList(item), db_->size()));
  }
  return *slot;
}

uint64_t SubsetSupportCache::BitmapSupport(const Itemset& s) {
  if (s.size() == 1) return db_->ItemSupport(s[0]);
  if (s.size() == 2) {
    return AndPopcount(ItemBitmap(s[0]), ItemBitmap(s[1]));
  }
  TidBitmap acc;
  TidBitmap scratch;
  BitmapAnd(ItemBitmap(s[0]), ItemBitmap(s[1]), &acc);
  for (size_t i = 2; i + 1 < s.size(); ++i) {
    BitmapAnd(acc, ItemBitmap(s[i]), &scratch);
    std::swap(acc, scratch);
  }
  return AndPopcount(acc, ItemBitmap(s.back()));
}

uint64_t SubsetSupportCache::Support(const Itemset& s,
                                     const ConceptLattice* lattice,
                                     uint32_t target_node) {
  const size_t shard_index =
      ItemsetHash{}(s) & (kShardCount - 1);  // kShardCount is a power of two
  Shard& shard = shards_[shard_index];
  struct KeyAt {
    const Shard* shard;
    // Invoked only from Find/InsertOrAssign below, both under shard->mu;
    // the functor signature cannot carry that proof through the unannotated
    // FlatItemsetIndex templates, hence the analysis opt-out.
    const Itemset& operator()(uint32_t i) const NO_THREAD_SAFETY_ANALYSIS {
      return shard->keys[i];
    }
  };
  {
    MutexLock lock(&shard.mu);
    const uint32_t found = shard.index.Find(s, KeyAt{&shard});
    if (found != FlatItemsetIndex::kNotFound) {
      shard.hits.fetch_add(1, std::memory_order_relaxed);
      return shard.values[found];
    }
  }
  shard.misses.fetch_add(1, std::memory_order_relaxed);
  uint64_t support = 0;
  if (lattice != nullptr && target_node != ConceptLattice::kNotFound) {
    support =
        lattice->NodeSupport(lattice->DescendToClosure(target_node, s));
  } else {
    shard.fallbacks.fetch_add(1, std::memory_order_relaxed);
    support = BitmapSupport(s);
  }
  {
    MutexLock lock(&shard.mu);
    // Another worker may have raced the same key in; InsertOrAssign keeps
    // the table consistent either way (supports are exact, so the values
    // agree).
    shard.keys.push_back(s);
    shard.values.push_back(support);
    shard.index.InsertOrAssign(static_cast<uint32_t>(shard.keys.size() - 1),
                               KeyAt{&shard});
  }
  return support;
}

SubsetSupportCache::Stats SubsetSupportCache::stats() const {
  Stats out;
  out.shards.reserve(shards_.size());
  for (const Shard& shard : shards_) {
    ShardStats row;
    row.hits = shard.hits.load(std::memory_order_relaxed);
    row.misses = shard.misses.load(std::memory_order_relaxed);
    row.fallbacks = shard.fallbacks.load(std::memory_order_relaxed);
    out.hits += row.hits;
    out.misses += row.misses;
    out.fallbacks += row.fallbacks;
    out.shards.push_back(row);
  }
  // The contract the stress test leans on: totals come from the same
  // gather as the per-shard rows, so they match even under concurrent
  // probes. Guard the derivation against a future second-read refactor.
  uint64_t check_hits = 0;
  uint64_t check_misses = 0;
  uint64_t check_fallbacks = 0;
  for (const ShardStats& row : out.shards) {
    check_hits += row.hits;
    check_misses += row.misses;
    check_fallbacks += row.fallbacks;
  }
  assert(check_hits == out.hits && check_misses == out.misses &&
         check_fallbacks == out.fallbacks);
  (void)check_hits;
  (void)check_misses;
  (void)check_fallbacks;
  return out;
}

}  // namespace maras::mining
