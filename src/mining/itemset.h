#ifndef MARAS_MINING_ITEMSET_H_
#define MARAS_MINING_ITEMSET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/logging.h"

namespace maras::mining {

// Dense identifier for an interned item (drug or ADR name).
using ItemId = uint32_t;

// An itemset is a strictly increasing vector of ItemIds. All functions below
// require (and preserve) that invariant.
using Itemset = std::vector<ItemId>;

// Returns a sorted, de-duplicated itemset built from arbitrary ids.
Itemset MakeItemset(std::vector<ItemId> ids);

// True when `a` ⊆ `b`. Both must be sorted.
bool IsSubset(const Itemset& a, const Itemset& b);

// Set union / intersection / difference of sorted itemsets.
Itemset Union(const Itemset& a, const Itemset& b);
Itemset Intersect(const Itemset& a, const Itemset& b);
Itemset Difference(const Itemset& a, const Itemset& b);

// True when sorted `a` contains `item`.
bool Contains(const Itemset& a, ItemId item);

// Enumerates every proper, non-empty subset of `s` (2^|s| − 2 of them) and
// invokes `fn(const Itemset&)` on each. |s| must be <= 20 to keep
// enumeration sane. A template on the callable (not std::function) so the
// per-subset call inlines, and one scratch buffer serves every subset — the
// enumeration itself allocates at most once.
template <typename Fn>
void ForEachProperSubset(const Itemset& s, Fn&& fn) {
  MARAS_CHECK(s.size() <= 20) << "subset enumeration limited to 20 items";
  const uint32_t n = static_cast<uint32_t>(s.size());
  const uint32_t full = (n >= 1) ? ((1u << n) - 1) : 0;
  Itemset subset;
  subset.reserve(s.size());
  for (uint32_t mask = 1; mask < full; ++mask) {
    subset.clear();
    for (uint32_t i = 0; i < n; ++i) {
      if (mask & (1u << i)) subset.push_back(s[i]);
    }
    fn(subset);
  }
}

// FNV-1a hash over the id sequence, usable as an unordered_map key hasher.
struct ItemsetHash {
  size_t operator()(const Itemset& s) const {
    uint64_t h = 1469598103934665603ULL;
    for (ItemId id : s) {
      h ^= id;
      h *= 1099511628211ULL;
    }
    return static_cast<size_t>(h);
  }
};

// Debug rendering, e.g. "{1, 5, 9}".
std::string ToString(const Itemset& s);

}  // namespace maras::mining

#endif  // MARAS_MINING_ITEMSET_H_
