#ifndef MARAS_MINING_ITEMSET_H_
#define MARAS_MINING_ITEMSET_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace maras::mining {

// Dense identifier for an interned item (drug or ADR name).
using ItemId = uint32_t;

// An itemset is a strictly increasing vector of ItemIds. All functions below
// require (and preserve) that invariant.
using Itemset = std::vector<ItemId>;

// Returns a sorted, de-duplicated itemset built from arbitrary ids.
Itemset MakeItemset(std::vector<ItemId> ids);

// True when `a` ⊆ `b`. Both must be sorted.
bool IsSubset(const Itemset& a, const Itemset& b);

// Set union / intersection / difference of sorted itemsets.
Itemset Union(const Itemset& a, const Itemset& b);
Itemset Intersect(const Itemset& a, const Itemset& b);
Itemset Difference(const Itemset& a, const Itemset& b);

// True when sorted `a` contains `item`.
bool Contains(const Itemset& a, ItemId item);

// Enumerates every proper, non-empty subset of `s` (2^|s| − 2 of them) and
// invokes `fn` on each. |s| must be <= 20 to keep enumeration sane.
void ForEachProperSubset(const Itemset& s,
                         const std::function<void(const Itemset&)>& fn);

// FNV-1a hash over the id sequence, usable as an unordered_map key hasher.
struct ItemsetHash {
  size_t operator()(const Itemset& s) const {
    uint64_t h = 1469598103934665603ULL;
    for (ItemId id : s) {
      h ^= id;
      h *= 1099511628211ULL;
    }
    return static_cast<size_t>(h);
  }
};

// Debug rendering, e.g. "{1, 5, 9}".
std::string ToString(const Itemset& s);

}  // namespace maras::mining

#endif  // MARAS_MINING_ITEMSET_H_
