#include "mining/rules.h"

#include <algorithm>
#include <utility>

#include "mining/measures.h"
#include "util/run_context.h"

namespace maras::mining {

namespace {

// Invokes fn(antecedent, consequent) for every non-trivial bipartition of s.
template <typename Fn>
void ForEachBipartition(const Itemset& s, Fn&& fn) {
  const uint32_t k = static_cast<uint32_t>(s.size());
  if (k < 2 || k > 20) return;
  const uint32_t full = (1u << k) - 1;
  Itemset antecedent, consequent;
  for (uint32_t mask = 1; mask < full; ++mask) {
    antecedent.clear();
    consequent.clear();
    for (uint32_t i = 0; i < k; ++i) {
      if (mask & (1u << i)) {
        antecedent.push_back(s[i]);
      } else {
        consequent.push_back(s[i]);
      }
    }
    fn(antecedent, consequent);
  }
}

}  // namespace

RuleSpaceCount CountAllPartitionRules(const FrequentItemsetResult& result,
                                      double min_confidence) {
  // An empty context can never trip, so the governed path's status is OK by
  // construction and the ungoverned API stays exception- and error-free.
  RunContext ungoverned;
  return std::move(CountAllPartitionRules(result, min_confidence, ungoverned))
      .value();
}

maras::StatusOr<RuleSpaceCount> CountAllPartitionRules(
    const FrequentItemsetResult& result, double min_confidence,
    const RunContext& ctx) {
  RuleSpaceCount count;
  for (const FrequentItemset& fi : result.itemsets()) {
    if (fi.items.size() < 2) continue;
    MARAS_RETURN_IF_ERROR_CTX(ctx.Check(), "rule-count");
    ++count.itemsets_considered;
    if (min_confidence <= 0.0) {
      // Every bipartition passes: 2^k − 2 rules.
      count.total_rules += (1ull << fi.items.size()) - 2;
      continue;
    }
    ForEachBipartition(fi.items, [&](const Itemset& a, const Itemset& b) {
      (void)b;
      size_t supp_a = result.SupportOf(a);
      if (Confidence(fi.support, supp_a) >= min_confidence) {
        ++count.total_rules;
      }
    });
  }
  return count;
}

std::vector<AssociationRule> GenerateAllPartitionRules(
    const FrequentItemsetResult& result, double min_confidence, size_t n,
    size_t max_rules) {
  RunContext ungoverned;
  return std::move(GenerateAllPartitionRules(result, min_confidence, n,
                                             max_rules, ungoverned))
      .value();
}

maras::StatusOr<std::vector<AssociationRule>> GenerateAllPartitionRules(
    const FrequentItemsetResult& result, double min_confidence, size_t n,
    size_t max_rules, const RunContext& ctx) {
  std::vector<AssociationRule> rules;
  for (const FrequentItemset& fi : result.itemsets()) {
    if (fi.items.size() < 2) continue;
    if (rules.size() >= max_rules) break;
    MARAS_RETURN_IF_ERROR_CTX(ctx.Check(), "rule-gen");
    ForEachBipartition(fi.items, [&](const Itemset& a, const Itemset& b) {
      if (rules.size() >= max_rules) return;
      size_t supp_a = result.SupportOf(a);
      size_t supp_b = result.SupportOf(b);
      double conf = Confidence(fi.support, supp_a);
      if (conf < min_confidence) return;
      AssociationRule rule;
      rule.antecedent = a;
      rule.consequent = b;
      rule.support = fi.support;
      rule.antecedent_support = supp_a;
      rule.consequent_support = supp_b;
      rule.confidence = conf;
      rule.lift = Lift(fi.support, supp_a, supp_b, n);
      rules.push_back(std::move(rule));
    });
  }
  SortRulesCanonically(&rules);
  return rules;
}

void SortRulesCanonically(std::vector<AssociationRule>* rules) {
  std::sort(rules->begin(), rules->end(),
            [](const AssociationRule& a, const AssociationRule& b) {
              if (a.antecedent != b.antecedent) {
                return a.antecedent < b.antecedent;
              }
              if (a.consequent != b.consequent) {
                return a.consequent < b.consequent;
              }
              return a.support < b.support;
            });
}

}  // namespace maras::mining
