#include "mining/measures.h"

namespace maras::mining {

double Confidence(size_t support_ab, size_t support_a) {
  if (support_a == 0) return 0.0;
  return static_cast<double>(support_ab) / static_cast<double>(support_a);
}

double Lift(size_t support_ab, size_t support_a, size_t support_b, size_t n) {
  if (support_a == 0 || support_b == 0 || n == 0) return 0.0;
  return (static_cast<double>(support_ab) * static_cast<double>(n)) /
         (static_cast<double>(support_a) * static_cast<double>(support_b));
}

double RelativeSupport(size_t support_ab, size_t n) {
  if (n == 0) return 0.0;
  return static_cast<double>(support_ab) / static_cast<double>(n);
}

double Leverage(size_t support_ab, size_t support_a, size_t support_b,
                size_t n) {
  if (n == 0) return 0.0;
  double nd = static_cast<double>(n);
  return static_cast<double>(support_ab) / nd -
         (static_cast<double>(support_a) / nd) *
             (static_cast<double>(support_b) / nd);
}

double Conviction(size_t support_ab, size_t support_a, size_t support_b,
                  size_t n) {
  if (n == 0 || support_a == 0) return 0.0;
  double conf = Confidence(support_ab, support_a);
  double pb = static_cast<double>(support_b) / static_cast<double>(n);
  if (conf >= 1.0) return kConvictionCap;
  double value = (1.0 - pb) / (1.0 - conf);
  return value > kConvictionCap ? kConvictionCap : value;
}

}  // namespace maras::mining
