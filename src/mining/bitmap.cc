#include "mining/bitmap.h"

#include <algorithm>
#include <bit>

#include "util/logging.h"

#if defined(__x86_64__)
#include <immintrin.h>
#endif
#if defined(__aarch64__) && defined(__ARM_NEON)
#include <arm_neon.h>
#endif

namespace maras::mining {

namespace {

size_t WordsFor(size_t universe) {
  return (universe + kBitmapWordBits - 1) / kBitmapWordBits;
}

// --- scalar backend --------------------------------------------------------
// Plain loops over 64-bit words, cache-blocked so each pass touches at most
// kBitmapBlockWords (4 KiB) per operand before folding into the running
// count. gcc/clang autovectorize these; the dedicated SIMD backends below
// only sharpen the popcount reduction.

size_t PopcountScalar(const BitmapWord* a, size_t n) {
  size_t total = 0;
  for (size_t base = 0; base < n; base += kBitmapBlockWords) {
    const size_t end = std::min(n, base + kBitmapBlockWords);
    size_t block = 0;
    for (size_t i = base; i < end; ++i) {
      block += static_cast<size_t>(std::popcount(a[i]));
    }
    total += block;
  }
  return total;
}

size_t AndPopcountScalar(const BitmapWord* a, const BitmapWord* b, size_t n) {
  size_t total = 0;
  for (size_t base = 0; base < n; base += kBitmapBlockWords) {
    const size_t end = std::min(n, base + kBitmapBlockWords);
    size_t block = 0;
    for (size_t i = base; i < end; ++i) {
      block += static_cast<size_t>(std::popcount(a[i] & b[i]));
    }
    total += block;
  }
  return total;
}

size_t AndNotPopcountScalar(const BitmapWord* a, const BitmapWord* b,
                            size_t n) {
  size_t total = 0;
  for (size_t base = 0; base < n; base += kBitmapBlockWords) {
    const size_t end = std::min(n, base + kBitmapBlockWords);
    size_t block = 0;
    for (size_t i = base; i < end; ++i) {
      block += static_cast<size_t>(std::popcount(a[i] & ~b[i]));
    }
    total += block;
  }
  return total;
}

size_t And3PopcountScalar(const BitmapWord* a, const BitmapWord* b,
                          const BitmapWord* c, size_t n) {
  size_t total = 0;
  for (size_t base = 0; base < n; base += kBitmapBlockWords) {
    const size_t end = std::min(n, base + kBitmapBlockWords);
    size_t block = 0;
    for (size_t i = base; i < end; ++i) {
      block += static_cast<size_t>(std::popcount(a[i] & b[i] & c[i]));
    }
    total += block;
  }
  return total;
}

size_t AndStoreScalar(const BitmapWord* a, const BitmapWord* b,
                      BitmapWord* out, size_t n) {
  size_t total = 0;
  for (size_t i = 0; i < n; ++i) {
    const BitmapWord w = a[i] & b[i];
    out[i] = w;
    total += static_cast<size_t>(std::popcount(w));
  }
  return total;
}

size_t AndNotStoreScalar(const BitmapWord* a, const BitmapWord* b,
                         BitmapWord* out, size_t n) {
  size_t total = 0;
  for (size_t i = 0; i < n; ++i) {
    const BitmapWord w = a[i] & ~b[i];
    out[i] = w;
    total += static_cast<size_t>(std::popcount(w));
  }
  return total;
}

#if defined(__x86_64__)
// --- AVX2 backend ----------------------------------------------------------
// 256-bit AND + the Muła nibble-shuffle popcount: vpshufb looks up the
// per-nibble bit counts, vpsadbw folds the byte counts into four 64-bit
// lanes, and one horizontal add per block closes the reduction. Compiled
// with per-function target attributes so the translation unit itself stays
// baseline x86-64; ActiveKernels() only selects this backend when
// __builtin_cpu_supports("avx2") says the host has it.

__attribute__((target("avx2"))) inline __m256i Popcount256(__m256i v) {
  const __m256i lookup =
      _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1,
                       1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low_mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
  const __m256i counts = _mm256_add_epi8(_mm256_shuffle_epi8(lookup, lo),
                                         _mm256_shuffle_epi8(lookup, hi));
  return _mm256_sad_epu8(counts, _mm256_setzero_si256());
}

__attribute__((target("avx2"))) inline size_t HorizontalSum(__m256i acc) {
  const __m128i lo = _mm256_castsi256_si128(acc);
  const __m128i hi = _mm256_extracti128_si256(acc, 1);
  const __m128i sum = _mm_add_epi64(lo, hi);
  return static_cast<size_t>(static_cast<uint64_t>(_mm_cvtsi128_si64(sum)) +
                             static_cast<uint64_t>(_mm_extract_epi64(sum, 1)));
}

__attribute__((target("avx2"))) size_t PopcountAvx2(const BitmapWord* a,
                                                    size_t n) {
  __m256i acc = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    acc = _mm256_add_epi64(acc, Popcount256(v));
  }
  size_t total = HorizontalSum(acc);
  for (; i < n; ++i) total += static_cast<size_t>(std::popcount(a[i]));
  return total;
}

__attribute__((target("avx2"))) size_t AndPopcountAvx2(const BitmapWord* a,
                                                       const BitmapWord* b,
                                                       size_t n) {
  __m256i acc = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    acc = _mm256_add_epi64(acc, Popcount256(_mm256_and_si256(va, vb)));
  }
  size_t total = HorizontalSum(acc);
  for (; i < n; ++i) {
    total += static_cast<size_t>(std::popcount(a[i] & b[i]));
  }
  return total;
}

__attribute__((target("avx2"))) size_t AndNotPopcountAvx2(const BitmapWord* a,
                                                          const BitmapWord* b,
                                                          size_t n) {
  __m256i acc = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    // vpandn computes ¬first ∧ second, so b goes first.
    acc = _mm256_add_epi64(acc, Popcount256(_mm256_andnot_si256(vb, va)));
  }
  size_t total = HorizontalSum(acc);
  for (; i < n; ++i) {
    total += static_cast<size_t>(std::popcount(a[i] & ~b[i]));
  }
  return total;
}

__attribute__((target("avx2"))) size_t And3PopcountAvx2(const BitmapWord* a,
                                                        const BitmapWord* b,
                                                        const BitmapWord* c,
                                                        size_t n) {
  __m256i acc = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    const __m256i vc =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(c + i));
    acc = _mm256_add_epi64(
        acc, Popcount256(_mm256_and_si256(_mm256_and_si256(va, vb), vc)));
  }
  size_t total = HorizontalSum(acc);
  for (; i < n; ++i) {
    total += static_cast<size_t>(std::popcount(a[i] & b[i] & c[i]));
  }
  return total;
}

__attribute__((target("avx2"))) size_t AndStoreAvx2(const BitmapWord* a,
                                                    const BitmapWord* b,
                                                    BitmapWord* out,
                                                    size_t n) {
  __m256i acc = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    const __m256i w = _mm256_and_si256(va, vb);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), w);
    acc = _mm256_add_epi64(acc, Popcount256(w));
  }
  size_t total = HorizontalSum(acc);
  for (; i < n; ++i) {
    const BitmapWord w = a[i] & b[i];
    out[i] = w;
    total += static_cast<size_t>(std::popcount(w));
  }
  return total;
}

__attribute__((target("avx2"))) size_t AndNotStoreAvx2(const BitmapWord* a,
                                                       const BitmapWord* b,
                                                       BitmapWord* out,
                                                       size_t n) {
  __m256i acc = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    const __m256i w = _mm256_andnot_si256(vb, va);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), w);
    acc = _mm256_add_epi64(acc, Popcount256(w));
  }
  size_t total = HorizontalSum(acc);
  for (; i < n; ++i) {
    const BitmapWord w = a[i] & ~b[i];
    out[i] = w;
    total += static_cast<size_t>(std::popcount(w));
  }
  return total;
}
#endif  // __x86_64__

#if defined(__aarch64__) && defined(__ARM_NEON)
// --- NEON backend ----------------------------------------------------------
// aarch64 mandates NEON, so this backend is selected at compile time: vcnt
// counts bits per byte, vaddv folds the 16 byte counts of each 128-bit
// chunk into the scalar accumulator.

inline uint8x16_t LoadU8(const BitmapWord* p) {
  return vld1q_u8(reinterpret_cast<const uint8_t*>(p));
}

size_t PopcountNeon(const BitmapWord* a, size_t n) {
  size_t total = 0;
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    total += vaddvq_u8(vcntq_u8(LoadU8(a + i)));
  }
  for (; i < n; ++i) total += static_cast<size_t>(std::popcount(a[i]));
  return total;
}

size_t AndPopcountNeon(const BitmapWord* a, const BitmapWord* b, size_t n) {
  size_t total = 0;
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    total += vaddvq_u8(vcntq_u8(vandq_u8(LoadU8(a + i), LoadU8(b + i))));
  }
  for (; i < n; ++i) {
    total += static_cast<size_t>(std::popcount(a[i] & b[i]));
  }
  return total;
}

size_t AndNotPopcountNeon(const BitmapWord* a, const BitmapWord* b,
                          size_t n) {
  size_t total = 0;
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    total += vaddvq_u8(vcntq_u8(vbicq_u8(LoadU8(a + i), LoadU8(b + i))));
  }
  for (; i < n; ++i) {
    total += static_cast<size_t>(std::popcount(a[i] & ~b[i]));
  }
  return total;
}

size_t And3PopcountNeon(const BitmapWord* a, const BitmapWord* b,
                        const BitmapWord* c, size_t n) {
  size_t total = 0;
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    total += vaddvq_u8(vcntq_u8(
        vandq_u8(vandq_u8(LoadU8(a + i), LoadU8(b + i)), LoadU8(c + i))));
  }
  for (; i < n; ++i) {
    total += static_cast<size_t>(std::popcount(a[i] & b[i] & c[i]));
  }
  return total;
}

size_t AndStoreNeon(const BitmapWord* a, const BitmapWord* b, BitmapWord* out,
                    size_t n) {
  size_t total = 0;
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint8x16_t w = vandq_u8(LoadU8(a + i), LoadU8(b + i));
    vst1q_u8(reinterpret_cast<uint8_t*>(out + i), w);
    total += vaddvq_u8(vcntq_u8(w));
  }
  for (; i < n; ++i) {
    const BitmapWord w = a[i] & b[i];
    out[i] = w;
    total += static_cast<size_t>(std::popcount(w));
  }
  return total;
}

size_t AndNotStoreNeon(const BitmapWord* a, const BitmapWord* b,
                       BitmapWord* out, size_t n) {
  size_t total = 0;
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint8x16_t w = vbicq_u8(LoadU8(a + i), LoadU8(b + i));
    vst1q_u8(reinterpret_cast<uint8_t*>(out + i), w);
    total += vaddvq_u8(vcntq_u8(w));
  }
  for (; i < n; ++i) {
    const BitmapWord w = a[i] & ~b[i];
    out[i] = w;
    total += static_cast<size_t>(std::popcount(w));
  }
  return total;
}
#endif  // __aarch64__ && __ARM_NEON

// --- runtime dispatch ------------------------------------------------------

struct Kernels {
  const char* name;
  size_t (*popcount)(const BitmapWord*, size_t);
  size_t (*and_popcount)(const BitmapWord*, const BitmapWord*, size_t);
  size_t (*andnot_popcount)(const BitmapWord*, const BitmapWord*, size_t);
  size_t (*and3_popcount)(const BitmapWord*, const BitmapWord*,
                          const BitmapWord*, size_t);
  size_t (*and_store)(const BitmapWord*, const BitmapWord*, BitmapWord*,
                      size_t);
  size_t (*andnot_store)(const BitmapWord*, const BitmapWord*, BitmapWord*,
                         size_t);
};

constexpr Kernels kScalarKernels = {
    "scalar",        PopcountScalar,     AndPopcountScalar,
    AndNotPopcountScalar, And3PopcountScalar, AndStoreScalar,
    AndNotStoreScalar};

Kernels SelectKernels() {
#if defined(__x86_64__)
  if (__builtin_cpu_supports("avx2")) {
    return Kernels{"avx2",           PopcountAvx2,     AndPopcountAvx2,
                   AndNotPopcountAvx2, And3PopcountAvx2, AndStoreAvx2,
                   AndNotStoreAvx2};
  }
#elif defined(__aarch64__) && defined(__ARM_NEON)
  return Kernels{"neon",           PopcountNeon,     AndPopcountNeon,
                 AndNotPopcountNeon, And3PopcountNeon, AndStoreNeon,
                 AndNotStoreNeon};
#endif
  return kScalarKernels;
}

const Kernels& ActiveKernels() {
  static const Kernels kernels = SelectKernels();
  return kernels;
}

}  // namespace

// --- TidBitmap -------------------------------------------------------------

void TidBitmap::Reset(size_t universe) {
  universe_ = universe;
  words_.assign(WordsFor(universe), 0);
}

void TidBitmap::Fill() {
  if (words_.empty()) return;
  std::fill(words_.begin(), words_.end(), ~BitmapWord{0});
  const size_t tail = universe_ % kBitmapWordBits;
  if (tail != 0) {
    words_.back() = (BitmapWord{1} << tail) - 1;
  }
}

void TidBitmap::Set(TransactionId tid) {
  words_[tid / kBitmapWordBits] |= BitmapWord{1} << (tid % kBitmapWordBits);
}

bool TidBitmap::Test(TransactionId tid) const {
  if (static_cast<size_t>(tid) >= universe_) return false;
  return (words_[tid / kBitmapWordBits] >> (tid % kBitmapWordBits)) & 1u;
}

TidBitmap TidBitmap::FromTids(const std::vector<TransactionId>& tids,
                              size_t universe) {
  TidBitmap bm(universe);
  for (TransactionId tid : tids) {
    MARAS_CHECK(static_cast<size_t>(tid) < universe)
        << "tid " << tid << " outside universe " << universe;
    bm.Set(tid);
  }
  return bm;
}

std::vector<TransactionId> TidBitmap::ToTids() const {
  std::vector<TransactionId> out;
  out.reserve(BitmapPopcount(*this));
  AppendTids(&out);
  return out;
}

void TidBitmap::AppendTids(std::vector<TransactionId>* out) const {
  for (size_t w = 0; w < words_.size(); ++w) {
    BitmapWord word = words_[w];
    const size_t base = w * kBitmapWordBits;
    while (word != 0) {
      const int bit = std::countr_zero(word);
      out->push_back(
          static_cast<TransactionId>(base + static_cast<size_t>(bit)));
      word &= word - 1;  // clear the lowest set bit
    }
  }
}

// --- word-kernel entry points ----------------------------------------------

size_t BitmapPopcount(const TidBitmap& a) {
  return ActiveKernels().popcount(a.words(), a.word_count());
}

size_t AndPopcount(const TidBitmap& a, const TidBitmap& b) {
  MARAS_CHECK(a.universe() == b.universe()) << "universe mismatch";
  return ActiveKernels().and_popcount(a.words(), b.words(), a.word_count());
}

size_t AndNotPopcount(const TidBitmap& a, const TidBitmap& b) {
  MARAS_CHECK(a.universe() == b.universe()) << "universe mismatch";
  return ActiveKernels().andnot_popcount(a.words(), b.words(), a.word_count());
}

size_t And3Popcount(const TidBitmap& a, const TidBitmap& b,
                    const TidBitmap& c) {
  MARAS_CHECK(a.universe() == b.universe() && b.universe() == c.universe())
      << "universe mismatch";
  return ActiveKernels().and3_popcount(a.words(), b.words(), c.words(),
                                       a.word_count());
}

size_t BitmapAnd(const TidBitmap& a, const TidBitmap& b, TidBitmap* out) {
  MARAS_CHECK(a.universe() == b.universe()) << "universe mismatch";
  out->Reset(a.universe());
  return ActiveKernels().and_store(a.words(), b.words(), out->mutable_words(),
                                   a.word_count());
}

size_t BitmapAndNot(const TidBitmap& a, const TidBitmap& b, TidBitmap* out) {
  MARAS_CHECK(a.universe() == b.universe()) << "universe mismatch";
  out->Reset(a.universe());
  return ActiveKernels().andnot_store(a.words(), b.words(),
                                      out->mutable_words(), a.word_count());
}

const char* BitmapKernelBackend() { return ActiveKernels().name; }

// --- sparse kernels --------------------------------------------------------

namespace {

// First index >= lo with v[idx] >= target, by exponential search from lo
// followed by binary refinement over the bracketing window.
size_t GallopFind(const std::vector<TransactionId>& v, size_t lo,
                  TransactionId target) {
  const size_t n = v.size();
  size_t bound = 1;
  while (lo + bound < n && v[lo + bound] < target) bound *= 2;
  size_t left = lo + bound / 2;
  size_t right = std::min(lo + bound, n);
  while (left < right) {
    const size_t mid = left + (right - left) / 2;
    if (v[mid] < target) {
      left = mid + 1;
    } else {
      right = mid;
    }
  }
  return left;
}

// Shared walk for the counting and materializing variants. Walks the
// shorter list element-wise and gallops through the longer one.
template <typename Emit>
void GallopWalk(const std::vector<TransactionId>& a,
                const std::vector<TransactionId>& b, Emit&& emit) {
  const std::vector<TransactionId>& small = a.size() <= b.size() ? a : b;
  const std::vector<TransactionId>& large = a.size() <= b.size() ? b : a;
  size_t cursor = 0;
  for (TransactionId x : small) {
    cursor = GallopFind(large, cursor, x);
    if (cursor == large.size()) break;
    if (large[cursor] == x) {
      emit(x);
      ++cursor;
    }
  }
}

}  // namespace

size_t GallopIntersectCount(const std::vector<TransactionId>& a,
                            const std::vector<TransactionId>& b) {
  size_t count = 0;
  GallopWalk(a, b, [&count](TransactionId) { ++count; });
  return count;
}

void GallopIntersect(const std::vector<TransactionId>& a,
                     const std::vector<TransactionId>& b,
                     std::vector<TransactionId>* out) {
  out->clear();
  GallopWalk(a, b, [out](TransactionId x) { out->push_back(x); });
}

size_t ProbeCount(const std::vector<TransactionId>& tids, const TidBitmap& b) {
  size_t count = 0;
  for (TransactionId tid : tids) {
    count += b.Test(tid) ? 1u : 0u;
  }
  return count;
}

void ProbeIntersect(const std::vector<TransactionId>& tids, const TidBitmap& b,
                    std::vector<TransactionId>* out) {
  out->clear();
  for (TransactionId tid : tids) {
    if (b.Test(tid)) out->push_back(tid);
  }
}

// --- representation choice -------------------------------------------------

namespace {

bool ChooseDense(size_t support, size_t universe, BitmapPolicy policy) {
  switch (policy) {
    case BitmapPolicy::kDense:
      return true;
    case BitmapPolicy::kSparse:
      return false;
    case BitmapPolicy::kAuto:
      return PreferDense(support, universe);
  }
  return false;
}

}  // namespace

VerticalSlice VerticalSlice::Make(ItemId item,
                                  const std::vector<TransactionId>& t,
                                  size_t universe, BitmapPolicy policy) {
  VerticalSlice slice;
  slice.item = item;
  slice.support = t.size();
  slice.dense = ChooseDense(t.size(), universe, policy);
  if (slice.dense) {
    slice.bitmap = TidBitmap::FromTids(t, universe);
  } else {
    slice.tids = t;
  }
  return slice;
}

VerticalSlice VerticalSlice::FromIntersection(ItemId item,
                                              std::vector<TransactionId> t,
                                              size_t universe,
                                              BitmapPolicy policy) {
  VerticalSlice slice;
  slice.item = item;
  slice.support = t.size();
  slice.dense = ChooseDense(t.size(), universe, policy);
  if (slice.dense) {
    slice.bitmap = TidBitmap::FromTids(t, universe);
  } else {
    slice.tids = std::move(t);
  }
  return slice;
}

VerticalSlice VerticalSlice::FromIntersection(ItemId item, TidBitmap bm,
                                              size_t support,
                                              BitmapPolicy policy) {
  VerticalSlice slice;
  slice.item = item;
  slice.support = support;
  slice.dense = ChooseDense(support, bm.universe(), policy);
  if (slice.dense) {
    slice.bitmap = std::move(bm);
  } else {
    slice.tids = bm.ToTids();
  }
  return slice;
}

VerticalSlice IntersectSlices(const VerticalSlice& a, const VerticalSlice& b,
                              size_t universe, BitmapPolicy policy) {
  if (a.dense && b.dense) {
    TidBitmap out;
    const size_t support = BitmapAnd(a.bitmap, b.bitmap, &out);
    if (support == 0) return VerticalSlice{b.item, 0, false, {}, {}};
    return VerticalSlice::FromIntersection(b.item, std::move(out), support,
                                           policy);
  }
  std::vector<TransactionId> out;
  if (!a.dense && !b.dense) {
    GallopIntersect(a.tids, b.tids, &out);
  } else {
    const VerticalSlice& sparse = a.dense ? b : a;
    const VerticalSlice& dense = a.dense ? a : b;
    ProbeIntersect(sparse.tids, dense.bitmap, &out);
  }
  if (out.empty()) return VerticalSlice{b.item, 0, false, {}, {}};
  return VerticalSlice::FromIntersection(b.item, std::move(out), universe,
                                         policy);
}

}  // namespace maras::mining
