#include "mining/apriori.h"

#include <algorithm>
#include <unordered_set>

namespace maras::mining {

namespace {

// Generates level-(k+1) candidates from sorted level-k frequent itemsets via
// the prefix self-join, then prunes candidates with an infrequent k-subset.
std::vector<Itemset> GenerateCandidates(
    const std::vector<Itemset>& level,
    const std::unordered_set<Itemset, ItemsetHash>& frequent) {
  std::vector<Itemset> candidates;
  for (size_t i = 0; i < level.size(); ++i) {
    for (size_t j = i + 1; j < level.size(); ++j) {
      const Itemset& a = level[i];
      const Itemset& b = level[j];
      // Join requires identical (k-1)-prefix; the level is sorted
      // lexicographically so joinable partners are contiguous.
      bool same_prefix =
          std::equal(a.begin(), a.end() - 1, b.begin(), b.end() - 1);
      if (!same_prefix) break;
      Itemset candidate = a;
      candidate.push_back(b.back());
      if (candidate[candidate.size() - 2] > candidate.back()) {
        std::swap(candidate[candidate.size() - 2],
                  candidate[candidate.size() - 1]);
      }
      // Prune: every k-subset must be frequent.
      bool all_frequent = true;
      Itemset subset(candidate.begin(), candidate.end() - 1);
      for (size_t drop = candidate.size(); drop-- > 0 && all_frequent;) {
        subset.assign(candidate.begin(), candidate.end());
        subset.erase(subset.begin() + static_cast<long>(drop));
        if (frequent.count(subset) == 0) all_frequent = false;
      }
      if (all_frequent) candidates.push_back(std::move(candidate));
    }
  }
  return candidates;
}

}  // namespace

maras::StatusOr<FrequentItemsetResult> Apriori::Mine(
    const TransactionDatabase& db) const {
  if (options_.min_support == 0) {
    return maras::Status::InvalidArgument("min_support must be >= 1");
  }
  if (options_.shard_count != 1 || options_.shard_index != 0) {
    return maras::Status::InvalidArgument(
        "apriori is a serial cross-check baseline; sharding is FP-Growth"
        " only");
  }
  FrequentItemsetResult result;

  // Level 1: frequent single items.
  std::vector<Itemset> level;
  {
    std::vector<ItemId> items;
    for (const Itemset& t : db.transactions()) {
      items.insert(items.end(), t.begin(), t.end());
    }
    std::sort(items.begin(), items.end());
    items.erase(std::unique(items.begin(), items.end()), items.end());
    for (ItemId item : items) {
      size_t sup = db.ItemSupport(item);
      if (sup >= options_.min_support) {
        Itemset s{item};
        result.Add(s, sup);
        level.push_back(std::move(s));
      }
    }
  }
  std::sort(level.begin(), level.end());

  std::unordered_set<Itemset, ItemsetHash> frequent(level.begin(),
                                                    level.end());
  size_t k = 1;
  while (!level.empty()) {
    ++k;
    if (options_.max_itemset_size != 0 && k > options_.max_itemset_size) {
      break;
    }
    std::vector<Itemset> candidates = GenerateCandidates(level, frequent);
    std::vector<Itemset> next;
    for (Itemset& candidate : candidates) {
      size_t sup = db.Support(candidate);
      if (sup >= options_.min_support) {
        result.Add(candidate, sup);
        frequent.insert(candidate);
        next.push_back(std::move(candidate));
      }
    }
    std::sort(next.begin(), next.end());
    level = std::move(next);
  }
  result.SortCanonically();
  return result;
}

}  // namespace maras::mining
