#ifndef MARAS_MINING_TRANSACTION_DB_H_
#define MARAS_MINING_TRANSACTION_DB_H_

#include <cstdint>
#include <vector>

#include "mining/itemset.h"

namespace maras::mining {

using TransactionId = uint32_t;

// A transaction database: each transaction is a sorted itemset (for MARAS,
// one abstracted ADR report = drugs taken ∪ ADRs observed). Alongside the
// horizontal layout it maintains a vertical index (item -> sorted tid list)
// so the support of an arbitrary itemset can be counted exactly by tid-list
// intersection — the paper's contextual rules need supports for antecedent
// subsets that may fall below the mining threshold. The vertical index is a
// flat ItemId-indexed array of tid lists (items are dense interned ids), so
// a TidList lookup is one bounds check and one vector index — the access
// every bitmap-Eclat root build and batched contingency pass starts from.
class TransactionDatabase {
 public:
  TransactionDatabase() = default;

  // Adds a transaction (deduplicated and sorted internally). Returns its id.
  TransactionId Add(Itemset transaction);

  size_t size() const { return transactions_.size(); }
  bool empty() const { return transactions_.empty(); }

  const Itemset& transaction(TransactionId tid) const {
    return transactions_[tid];
  }
  const std::vector<Itemset>& transactions() const { return transactions_; }

  // Number of distinct items seen.
  size_t item_count() const { return distinct_items_; }

  // One past the largest ItemId seen (0 when empty). Sizes the dense,
  // ItemId-indexed tables the mining engine uses (FP-tree headers and
  // conditional counts) without a scan.
  size_t item_bound() const { return tidlists_.size(); }

  // Total item occurrences across all transactions (Σ |t|). Upper-bounds
  // FP-tree node counts, so a build can bulk-reserve its arena.
  size_t total_item_occurrences() const { return total_item_occurrences_; }

  // Support (number of containing transactions) of an itemset. Empty itemset
  // has support == size().
  size_t Support(const Itemset& s) const;

  // Ids of the transactions containing `s`, in increasing order.
  std::vector<TransactionId> ContainingTransactions(const Itemset& s) const;

  // Support of a single item (0 when never seen).
  size_t ItemSupport(ItemId item) const;

  // Sorted tid list of `item` (empty when never seen).
  const std::vector<TransactionId>& TidList(ItemId item) const;

 private:
  std::vector<Itemset> transactions_;
  // tidlists_[item] is item's sorted tid list; never-seen items within the
  // bound hold an empty vector. size() doubles as item_bound().
  std::vector<std::vector<TransactionId>> tidlists_;
  size_t distinct_items_ = 0;
  size_t total_item_occurrences_ = 0;
  static const std::vector<TransactionId> kEmptyTidList;
};

}  // namespace maras::mining

#endif  // MARAS_MINING_TRANSACTION_DB_H_
