#ifndef MARAS_MINING_CONCEPT_LATTICE_H_
#define MARAS_MINING_CONCEPT_LATTICE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "mining/bitmap.h"
#include "mining/flat_table.h"
#include "mining/frequent_itemsets.h"
#include "mining/itemset.h"
#include "mining/transaction_db.h"
#include "util/mutex.h"
#include "util/statusor.h"
#include "util/thread_annotations.h"

namespace maras {
struct RunContext;
}  // namespace maras

namespace maras::mining {

// ---------------------------------------------------------------------------
// Concept lattice over the mined closed family.
//
// Closed itemsets are exactly the (intents of the) concepts of formal
// concept analysis, and MCAC gathering is a proper-subset-antecedent query:
// every contextual rule's support is the support of some closed set below
// the target concept, because supp(X) = supp(closure(X)) and closure(X) is
// contained in any database-closed superset of X. The lattice stores the
// covering (Hasse) edges between closed sets once, built in parallel after
// mining, so per-target subset supports become short downward walks instead
// of whole-database tid-list intersections.
//
// Layout follows the PR-4 flat SoA discipline: one ItemId pool plus begin
// offsets for the node itemsets, one uint64 support lane, and two CSR edge
// arenas (covered subsets / covering supersets), all 32-bit indexed. Node
// ids are positions in the canonical closed order, so the lattice is a pure
// function of the closed family — identical at any thread count.
//
// Exactness precondition for DescendToClosure (proved by the differential
// oracle, relied on by McacBuilder): the walk returns closure(X)'s node
// when the start node's itemset is database-closed and every database-closed
// subset of it above the mining threshold is present in the family. Both
// hold when the mine was uncapped (max_itemset_size == 0) or targets are
// verified closed in the database — the closed filter then removes any
// capped pseudo-closed set below a verified target, because its closure
// also fits under the cap.
// ---------------------------------------------------------------------------

// Borrowed view over a contiguous run of one of the flat arenas.
template <typename T>
struct LatticeSpan {
  const T* ptr = nullptr;
  size_t count = 0;

  const T* begin() const { return ptr; }
  const T* end() const { return ptr + count; }
  size_t size() const { return count; }
  bool empty() const { return count == 0; }
  T operator[](size_t i) const { return ptr[i]; }
};

class ConceptLattice {
 public:
  static constexpr uint32_t kNotFound = 0xFFFFFFFFu;

  ConceptLattice() = default;

  // Builds nodes and covering edges from the (canonically sorted) closed
  // family. The per-node edge fan-out runs on `num_threads` workers and
  // polls `ctx` at a bounded interval; output is byte-identical at any
  // thread count. Fails on families past 32-bit node indexing.
  static maras::StatusOr<ConceptLattice> Build(
      const FrequentItemsetResult& closed, size_t num_threads,
      const RunContext& ctx);

  size_t node_count() const { return support_.size(); }
  // Number of covering edges (counted once, not per direction).
  size_t edge_count() const { return subsets_.size(); }

  // The node's itemset, ascending ItemIds inside the shared pool.
  LatticeSpan<ItemId> NodeItems(uint32_t node) const {
    return {item_pool_.data() + node_item_begin_[node],
            node_item_begin_[node + 1] - node_item_begin_[node]};
  }
  uint64_t NodeSupport(uint32_t node) const { return support_[node]; }

  // Covering edges, node ids ascending. Subsets = maximal closed proper
  // subsets (the "generalize" direction); Supersets = minimal closed proper
  // supersets ("specialize").
  LatticeSpan<uint32_t> Subsets(uint32_t node) const {
    return {subsets_.data() + subset_begin_[node],
            subset_begin_[node + 1] - subset_begin_[node]};
  }
  LatticeSpan<uint32_t> Supersets(uint32_t node) const {
    return {supersets_.data() + superset_begin_[node],
            superset_begin_[node + 1] - superset_begin_[node]};
  }

  // Node whose itemset equals `s`, or kNotFound.
  uint32_t FindNode(const Itemset& s) const;

  // True when `subset` ⊆ the node's itemset.
  bool NodeContains(uint32_t node, const Itemset& subset) const;

  // Greedy downward walk: starting from `start` (which must contain
  // `subset`), repeatedly steps to the first covered subset still containing
  // `subset`; the node where no step remains is returned. Under the
  // exactness precondition above this is closure(subset)'s node, so its
  // support is supp(subset).
  uint32_t DescendToClosure(uint32_t start, const Itemset& subset) const;

  // Resident bytes of the arenas (capacity-based), for budget charging.
  size_t MemoryFootprint() const;

 private:
  struct IndexSlot {
    uint64_t hash = 0;
    uint32_t node = kNotFound;  // kNotFound doubles as the empty marker
  };

  void BuildNodeIndex();

  std::vector<ItemId> item_pool_;
  std::vector<uint32_t> node_item_begin_;  // node_count() + 1 offsets
  std::vector<uint64_t> support_;

  std::vector<uint32_t> subset_begin_;  // CSR over subsets_
  std::vector<uint32_t> subsets_;
  std::vector<uint32_t> superset_begin_;  // CSR over supersets_
  std::vector<uint32_t> supersets_;

  // Open-addressed exact-match index over the pooled node itemsets (the
  // FlatItemsetIndex idiom, hand-rolled because keys live in the pool, not
  // in caller-owned Itemset vectors).
  std::vector<IndexSlot> index_slots_;
};

// ---------------------------------------------------------------------------
// Cross-target subset-support memo for MCAC construction. Targets overlap
// heavily in drug subsets (and share consequents outright), so one cache is
// shared by every McacBuilder::Build fan-out task. A probe resolves in
// order: memo hit -> lattice descent from the target's node -> bitmap-kernel
// intersection over lazily cached per-item TidBitmaps (the only path that
// touches the database, taken when no closed node covers the subset — e.g.
// when the caller could not locate the target in the lattice).
//
// Every path returns the exact database support, so the cache never affects
// output bytes — only speed. Thread-safe: the memo is sharded by itemset
// hash, each shard a mutex + flat keys/values + open-addressed index.
//
// Counter contract (relaxed atomics): each shard counts its own probes in
// std::atomic<uint64_t> lanes incremented with memory_order_relaxed — the
// counters order nothing and guard nothing, they are monotonic tallies
// whose only consumers are stats accessors and benches. Consequences the
// contract guarantees, and the stress test asserts:
//   * every probe bumps exactly one of {hits, misses} on exactly one shard,
//     and a fallback bump is always preceded by a miss bump on that shard;
//   * totals reported by stats() are computed from one gather of the
//     per-shard lanes, so Stats::hits/misses/fallbacks ALWAYS equal the
//     sums over Stats::shards — even while probes are in flight (enforced
//     by an assert in the accessor);
//   * after the probing threads are joined (quiescence), hits + misses
//     equals the number of Support() calls and fallbacks <= misses.
// Mid-flight, individual lanes may lag each other (relaxed loads impose no
// inter-lane ordering), so cross-lane comparisons are only exact at
// quiescence.
// ---------------------------------------------------------------------------
class SubsetSupportCache {
 public:
  // Per-shard (and, summed, whole-cache) probe tallies. The totals are
  // derived from the `shards` snapshot in the same gather, never from a
  // second read of the live counters.
  struct ShardStats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t fallbacks = 0;
  };
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t fallbacks = 0;
    std::vector<ShardStats> shards;
    uint64_t probes() const { return hits + misses; }
  };

  explicit SubsetSupportCache(const TransactionDatabase* db);

  SubsetSupportCache(const SubsetSupportCache&) = delete;
  SubsetSupportCache& operator=(const SubsetSupportCache&) = delete;

  // Exact support of `s` (non-empty). `lattice`/`target_node` may be
  // nullptr/kNotFound to force the bitmap fallback; when given, `target_node`
  // must contain `s` and satisfy the descent precondition.
  uint64_t Support(const Itemset& s, const ConceptLattice* lattice,
                   uint32_t target_node);

  // One consistent gather of the per-shard counter lanes; totals are the
  // sums of the returned per-shard rows by construction.
  Stats stats() const;

  uint64_t hits() const { return stats().hits; }
  uint64_t misses() const { return stats().misses; }
  // Misses that had no lattice node to descend from (bitmap-kernel path).
  uint64_t fallbacks() const { return stats().fallbacks; }

  static constexpr size_t kShardCount = 64;  // power of two

 private:
  struct Shard {
    // mu guards the memo proper. The counter lanes below it are
    // deliberately outside the capability (relaxed atomics, see the
    // counter contract above) so the stats accessors never contend with
    // probes.
    Mutex mu;
    std::vector<Itemset> keys GUARDED_BY(mu);
    std::vector<uint64_t> values GUARDED_BY(mu);
    FlatItemsetIndex index GUARDED_BY(mu);

    std::atomic<uint64_t> hits{0};
    std::atomic<uint64_t> misses{0};
    std::atomic<uint64_t> fallbacks{0};
  };

  // |∩ tidlists of s| via dense TidBitmap AND + popcount kernels.
  uint64_t BitmapSupport(const Itemset& s);
  const TidBitmap& ItemBitmap(ItemId item);

  const TransactionDatabase* db_;
  std::vector<Shard> shards_;  // fixed at kShardCount, never reallocated

  // Guards lazy creation of the per-item bitmaps. The vector is sized once
  // in the constructor and never reallocates, and a created TidBitmap is
  // immutable from then on — so the reference ItemBitmap returns stays
  // valid after the lock drops. Lock order: a probe may take bitmap_mu_
  // between its two shard-mu sections but never while holding a shard mu,
  // and no code path takes a shard mu under bitmap_mu_.
  Mutex bitmap_mu_;
  std::vector<std::unique_ptr<TidBitmap>> item_bitmaps_ GUARDED_BY(bitmap_mu_);
};

}  // namespace maras::mining

#endif  // MARAS_MINING_CONCEPT_LATTICE_H_
