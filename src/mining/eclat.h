#ifndef MARAS_MINING_ECLAT_H_
#define MARAS_MINING_ECLAT_H_

#include "mining/frequent_itemsets.h"
#include "mining/transaction_db.h"
#include "util/statusor.h"

namespace maras::mining {

// ECLAT (Zaki): vertical-layout frequent-itemset mining by recursive
// tid-list intersection over equivalence classes of a common prefix. The
// third classic miner in the suite — Apriori (horizontal, level-wise),
// FP-Growth (prefix-tree projection) and ECLAT (vertical) must produce
// identical results; the benchmarks compare their cost profiles on
// FAERS-shaped data.
class Eclat {
 public:
  explicit Eclat(MiningOptions options) : options_(options) {}

  maras::StatusOr<FrequentItemsetResult> Mine(
      const TransactionDatabase& db) const;

 private:
  struct Vertical {
    ItemId item;
    std::vector<TransactionId> tids;
  };

  void MineClass(const Itemset& prefix, const std::vector<Vertical>& klass,
                 FrequentItemsetResult* result) const;

  MiningOptions options_;
};

}  // namespace maras::mining

#endif  // MARAS_MINING_ECLAT_H_
