#ifndef MARAS_MINING_ECLAT_H_
#define MARAS_MINING_ECLAT_H_

#include "mining/bitmap.h"
#include "mining/frequent_itemsets.h"
#include "mining/transaction_db.h"
#include "util/statusor.h"

namespace maras::mining {

// ECLAT (Zaki): vertical-layout frequent-itemset mining by recursive
// tid-set intersection over equivalence classes of a common prefix.
//
// The production engine runs on the mining/bitmap.h kernel layer: each
// class member carries its tid set as either a dense fixed-width bitmap
// (word-wise AND + popcount support counting, SIMD-dispatched) or a sparse
// sorted tid-list (galloping intersection), chosen per slice by support
// density (MiningOptions::eclat_mode kAuto; kDense/kSparse force one
// representation for tests and benches). With num_threads > 1 the root
// equivalence class fans out across the thread pool — one task per
// top-level item, each writing its own result slot, merged in item order —
// so results are byte-identical at any thread count.
//
// EclatMode::kScalar keeps the original std::vector<Tid> +
// std::set_intersection path as a serial reference: the differential
// oracle pits the kernel engine against it (and against FP-Growth, Apriori
// and brute force), so a kernel bug cannot slip through unnoticed.
class Eclat {
 public:
  explicit Eclat(MiningOptions options) : options_(options) {}

  maras::StatusOr<FrequentItemsetResult> Mine(
      const TransactionDatabase& db) const;

 private:
  struct Vertical {
    ItemId item;
    std::vector<TransactionId> tids;
  };

  // Legacy scalar engine (EclatMode::kScalar).
  void MineClass(const Itemset& prefix, const std::vector<Vertical>& klass,
                 FrequentItemsetResult* result) const;

  // Bitmap engine: mines the branch rooted at klass[i] under `prefix` —
  // emits prefix+item, builds the child class by intersecting slice i with
  // every later sibling, and recurses.
  void MineBranch(size_t i, const std::vector<VerticalSlice>& klass,
                  const Itemset& prefix, size_t universe, BitmapPolicy policy,
                  FrequentItemsetResult* result) const;

  MiningOptions options_;
};

}  // namespace maras::mining

#endif  // MARAS_MINING_ECLAT_H_
