#ifndef MARAS_MINING_FREQUENT_ITEMSETS_H_
#define MARAS_MINING_FREQUENT_ITEMSETS_H_

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "mining/itemset.h"

namespace maras::mining {

// A mined itemset together with its absolute support count.
struct FrequentItemset {
  Itemset items;
  size_t support = 0;
};

// The full result of a frequent-itemset mining pass: the itemsets plus a
// support lookup table (used by rule generation and closedness checks).
class FrequentItemsetResult {
 public:
  FrequentItemsetResult() = default;

  void Add(Itemset items, size_t support);

  const std::vector<FrequentItemset>& itemsets() const { return itemsets_; }
  size_t size() const { return itemsets_.size(); }

  // Support of `s` when it was mined; 0 otherwise.
  size_t SupportOf(const Itemset& s) const;
  bool ContainsItemset(const Itemset& s) const;

  // Sorts itemsets by (size, lexicographic ids) so results are directly
  // comparable across mining algorithms in tests.
  void SortCanonically();

 private:
  std::vector<FrequentItemset> itemsets_;
  std::unordered_map<Itemset, size_t, ItemsetHash> support_;
};

// Mining algorithm knobs shared by Apriori and FP-Growth.
struct MiningOptions {
  // Absolute minimum support count (the paper mines with a very low support
  // threshold to keep rare drug combinations; Section 1.3).
  size_t min_support = 2;
  // Upper bound on mined itemset size; 0 means unbounded. Reports mention
  // up to ~4 interacting drugs; capping keeps the search tractable on dense
  // synthetic data.
  size_t max_itemset_size = 0;
};

}  // namespace maras::mining

#endif  // MARAS_MINING_FREQUENT_ITEMSETS_H_
