#ifndef MARAS_MINING_FREQUENT_ITEMSETS_H_
#define MARAS_MINING_FREQUENT_ITEMSETS_H_

#include <cstddef>
#include <vector>

#include "mining/flat_table.h"
#include "mining/itemset.h"

namespace maras {
struct RunContext;
}  // namespace maras

namespace maras::mining {

// A mined itemset together with its absolute support count.
struct FrequentItemset {
  Itemset items;
  size_t support = 0;
};

// The full result of a frequent-itemset mining pass: the itemsets plus a
// support lookup table (used by rule generation and closedness checks).
// The lookup is a flat open-addressed index into the itemset vector itself,
// so each mined itemset exists exactly once in memory and a support probe
// touches one slot array instead of chasing unordered_map nodes.
class FrequentItemsetResult {
 public:
  FrequentItemsetResult() = default;

  void Add(Itemset items, size_t support);

  const std::vector<FrequentItemset>& itemsets() const { return itemsets_; }
  size_t size() const { return itemsets_.size(); }

  // Support of `s` when it was mined; 0 otherwise.
  size_t SupportOf(const Itemset& s) const;
  bool ContainsItemset(const Itemset& s) const;

  // Sorts into the canonical result order every miner in the suite emits:
  // itemset lexicographic (by ascending ItemId sequence), ties broken by
  // ascending support. Itemsets are unique within one mining pass, so the
  // order — and therefore any serialization of the result — is a pure
  // function of the mined (itemset, support) family, independent of
  // algorithm, shard count, and thread schedule.
  void SortCanonically();

  // Moves every itemset of `other` into this result. Used to merge the
  // per-shard results of a parallel mining pass; callers must ensure shards
  // are disjoint and should SortCanonically() after the last merge.
  void Absorb(FrequentItemsetResult&& other);

 private:
  struct KeyAt {
    const FrequentItemsetResult* result;
    const Itemset& operator()(uint32_t i) const {
      return result->itemsets_[i].items;
    }
  };

  std::vector<FrequentItemset> itemsets_;
  FlatItemsetIndex index_;  // entry i -> itemsets_[i].items
};

// Which engine + vertical representation Eclat::Mine uses. The bitmap
// engine (first three modes) runs on mining/bitmap.h kernels; kScalar is
// the original std::set_intersection path, kept as the differential
// reference the oracle tests pit the kernels against. Every mode emits the
// exact same canonical result — mining_differential_test proves it.
enum class EclatMode {
  kAuto = 0,  // per-slice density choice (dense bitmap vs sparse tid-list)
  kDense,     // force dense bitmaps everywhere
  kSparse,    // force sparse tid-lists (galloping intersection) everywhere
  kScalar,    // legacy scalar merge-intersection reference
};

// Mining algorithm knobs shared by Apriori and FP-Growth.
struct MiningOptions {
  // Absolute minimum support count (the paper mines with a very low support
  // threshold to keep rare drug combinations; Section 1.3).
  size_t min_support = 2;
  // Upper bound on mined itemset size; 0 means unbounded. Reports mention
  // up to ~4 interacting drugs; capping keeps the search tractable on dense
  // synthetic data.
  size_t max_itemset_size = 0;
  // Worker threads for the parallelizable stages: FP-Growth's per-item
  // conditional-tree fan-out, the closed-set filter, and bitmap-Eclat's
  // root equivalence-class fan-out. 0 and 1 both mean serial. Results are
  // byte-identical for every value — the determinism suite asserts it — so
  // this is purely a speed knob. Apriori and scalar Eclat ignore it (they
  // are the cross-check baselines, kept serial).
  size_t num_threads = 1;
  // Engine/representation choice for Eclat (ignored by the other miners).
  EclatMode eclat_mode = EclatMode::kAuto;
  // Multi-process item-range sharding of FP-Growth's top-level fan-out:
  // mine only the top-level items whose index i — in the global tree's
  // support-ascending header order — satisfies i % shard_count ==
  // shard_index. FP-Growth emits every frequent itemset exactly once, in
  // the task of its least frequent item, so the shards partition the full
  // family: concatenating all shard_count results and sorting canonically
  // reconstructs the unsharded mine byte for byte. The stride (rather than
  // a contiguous range) balances load — neighbors in support order have
  // similar conditional-tree sizes. shard_count == 1 (with shard_index 0)
  // means unsharded; Apriori and Eclat reject sharding (they are the
  // serial cross-check baselines).
  size_t shard_index = 0;
  size_t shard_count = 1;
  // Optional resource governance (util/run_context.h). When set, FP-Growth
  // polls it once per conditional-tree step and charges its memory budget
  // for every itemset recorded, so a runaway low-support mine stops with
  // kCancelled / kDeadlineExceeded / kResourceExhausted instead of hanging
  // or OOMing. The Apriori/Eclat cross-check baselines ignore it. Does not
  // affect mined output when nothing trips. nullptr = ungoverned.
  const RunContext* context = nullptr;
};

}  // namespace maras::mining

#endif  // MARAS_MINING_FREQUENT_ITEMSETS_H_
