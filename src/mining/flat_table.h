#ifndef MARAS_MINING_FLAT_TABLE_H_
#define MARAS_MINING_FLAT_TABLE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "mining/itemset.h"

namespace maras::mining {

// Open-addressed hash index over caller-owned itemset keys. One flat slot
// array of (hash, entry-index) pairs, linear probing, power-of-two capacity:
// a lookup is one cache line touch in the common case, versus a pointer
// chase per node in std::unordered_map. The caller stores the actual keys
// (e.g. FrequentItemsetResult keeps them inside its itemset vector, so each
// key exists exactly once in memory) and supplies a `key_at` accessor
// mapping an entry index to its Itemset.
//
// Deletion is deliberately unsupported — the mining pipeline only ever
// builds tables up and throws them away whole — which keeps probing
// tombstone-free.
class FlatItemsetIndex {
 public:
  static constexpr uint32_t kNotFound = 0xFFFFFFFFu;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void Clear() {
    slots_.clear();
    size_ = 0;
  }

  // Pre-sizes the slot array for `entries` insertions (rounded up to the
  // next power of two past the load-factor headroom).
  void Reserve(size_t entries) {
    size_t needed = SlotCountFor(entries);
    if (needed > slots_.size()) Rehash(needed);
  }

  // Entry index holding a key equal to `key`, or kNotFound.
  template <typename KeyAt>
  uint32_t Find(const Itemset& key, const KeyAt& key_at) const {
    if (slots_.empty()) return kNotFound;
    const uint64_t hash = ItemsetHash{}(key);
    const size_t mask = slots_.size() - 1;
    for (size_t i = hash & mask;; i = (i + 1) & mask) {
      const Slot& slot = slots_[i];
      if (slot.index == kNotFound) return kNotFound;
      if (slot.hash == hash && key_at(slot.index) == key) return slot.index;
    }
  }

  // Maps the key of entry `index` to `index`; an existing equal key is
  // re-pointed at the new entry (last insert wins, matching map::operator[]
  // assignment). Returns true when the key was new.
  template <typename KeyAt>
  bool InsertOrAssign(uint32_t index, const KeyAt& key_at) {
    if (SlotCountFor(size_ + 1) > slots_.size()) {
      Rehash(SlotCountFor(size_ + 1));
    }
    const Itemset& key = key_at(index);
    const uint64_t hash = ItemsetHash{}(key);
    const size_t mask = slots_.size() - 1;
    for (size_t i = hash & mask;; i = (i + 1) & mask) {
      Slot& slot = slots_[i];
      if (slot.index == kNotFound) {
        slot.hash = hash;
        slot.index = index;
        ++size_;
        return true;
      }
      if (slot.hash == hash && key_at(slot.index) == key) {
        slot.index = index;
        return false;
      }
    }
  }

  // Resident bytes of the slot array (capacity-based).
  size_t MemoryFootprint() const { return slots_.capacity() * sizeof(Slot); }

 private:
  struct Slot {
    uint64_t hash = 0;
    uint32_t index = kNotFound;  // kNotFound doubles as the empty marker
  };

  // Smallest power-of-two slot count keeping load factor under ~0.7.
  static size_t SlotCountFor(size_t entries) {
    size_t slots = 16;
    while (slots * 7 < entries * 10) slots *= 2;
    return slots;
  }

  void Rehash(size_t new_slot_count) {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(new_slot_count, Slot{});
    const size_t mask = new_slot_count - 1;
    // Keys in the table are unique, so re-placement needs no key compares —
    // the stored hashes are enough.
    for (const Slot& slot : old) {
      if (slot.index == kNotFound) continue;
      size_t i = slot.hash & mask;
      while (slots_[i].index != kNotFound) i = (i + 1) & mask;
      slots_[i] = slot;
    }
  }

  std::vector<Slot> slots_;
  size_t size_ = 0;
};

// Flat set of itemsets over FlatItemsetIndex; owns its keys. Used by the
// closed filter for the not-closed mark set, replacing
// std::unordered_set<Itemset> (one node allocation per mark) with two flat
// arrays.
class ItemsetFlatSet {
 public:
  size_t size() const { return keys_.size(); }

  void Reserve(size_t n) {
    keys_.reserve(n);
    index_.Reserve(n);
  }

  bool Contains(const Itemset& s) const {
    return index_.Find(s, KeyAt{this}) != FlatItemsetIndex::kNotFound;
  }

  // Returns false (and drops `s`) when an equal itemset is already present.
  bool Insert(Itemset s) {
    if (Contains(s)) return false;
    keys_.push_back(std::move(s));
    index_.InsertOrAssign(static_cast<uint32_t>(keys_.size() - 1),
                          KeyAt{this});
    return true;
  }

 private:
  struct KeyAt {
    const ItemsetFlatSet* set;
    const Itemset& operator()(uint32_t i) const { return set->keys_[i]; }
  };

  std::vector<Itemset> keys_;
  FlatItemsetIndex index_;
};

}  // namespace maras::mining

#endif  // MARAS_MINING_FLAT_TABLE_H_
