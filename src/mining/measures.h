#ifndef MARAS_MINING_MEASURES_H_
#define MARAS_MINING_MEASURES_H_

#include <cstddef>

namespace maras::mining {

// Interestingness measures exactly as defined in the paper's Chapter 2.
//
// The paper defines support as the absolute co-occurrence count |A ∪ B|
// (Formula 2.1); confidence and lift are the standard ratios. `n` is the
// total number of transactions N.

// Confidence(A ⇒ B) = supp(A ∪ B) / supp(A); 0 when supp(A) == 0.
double Confidence(size_t support_ab, size_t support_a);

// Lift(A ⇒ B) = supp(A ∪ B) · N / (supp(A) · supp(B)); 0 when degenerate.
double Lift(size_t support_ab, size_t support_a, size_t support_b, size_t n);

// Relative support supp(A ∪ B) / N in [0, 1]; 0 when N == 0.
double RelativeSupport(size_t support_ab, size_t n);

// Leverage(A ⇒ B) = P(A∪B) − P(A)·P(B): additive independence gap.
double Leverage(size_t support_ab, size_t support_a, size_t support_b,
                size_t n);

// Conviction(A ⇒ B) = (1 − P(B)) / (1 − conf); +inf-like cap for conf == 1.
// Returned capped at kConvictionCap so values stay comparable.
double Conviction(size_t support_ab, size_t support_a, size_t support_b,
                  size_t n);
inline constexpr double kConvictionCap = 1e9;

}  // namespace maras::mining

#endif  // MARAS_MINING_MEASURES_H_
