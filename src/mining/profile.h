#ifndef MARAS_MINING_PROFILE_H_
#define MARAS_MINING_PROFILE_H_

#include <cstddef>
#include <string>

#include "mining/transaction_db.h"

namespace maras::mining {

// Shape profile of a transaction database — the numbers that predict mining
// cost (density drives FP-tree sharing; heavy-tailed item frequencies favor
// vertical miners) and that benches print so runs are comparable.
struct DatabaseProfile {
  size_t transactions = 0;
  size_t distinct_items = 0;
  size_t total_item_occurrences = 0;
  double mean_transaction_length = 0.0;
  size_t max_transaction_length = 0;
  // Occurrences / (transactions × distinct items) ∈ [0, 1].
  double density = 0.0;
  // Support of the most frequent item / transactions.
  double top_item_frequency = 0.0;
  // Share of total occurrences carried by the 1% most frequent items —
  // a heavy-tail indicator (≈0.01 for uniform data, ≫0.01 for Zipf).
  double top_percentile_occurrence_share = 0.0;
};

DatabaseProfile ProfileDatabase(const TransactionDatabase& db);

// Multi-line human-readable rendering.
std::string RenderProfile(const DatabaseProfile& profile);

}  // namespace maras::mining

#endif  // MARAS_MINING_PROFILE_H_
