#ifndef MARAS_MINING_RULES_H_
#define MARAS_MINING_RULES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "mining/frequent_itemsets.h"
#include "mining/itemset.h"
#include "util/statusor.h"

namespace maras::mining {

// A generic association rule R ≡ A ⇒ B (Definition 2.1.1) with its
// evaluation counts. Support follows the paper's absolute-count convention.
struct AssociationRule {
  Itemset antecedent;
  Itemset consequent;
  size_t support = 0;             // supp(A ∪ B)
  size_t antecedent_support = 0;  // supp(A)
  size_t consequent_support = 0;  // supp(B)
  double confidence = 0.0;
  double lift = 0.0;
};

// Statistics over the traditional (unconstrained) rule space. "Total rules"
// in the paper's Fig. 5.1 is the number of rules A ⇒ B with A ∪ B ranging
// over every frequent itemset and (A, B) over every non-trivial bipartition
// — 2^|S| − 2 per itemset S — subject to a minimum confidence. Counting
// materializes nothing; subset supports come from the mined result (every
// subset of a frequent itemset is frequent, hence present).
struct RuleSpaceCount {
  uint64_t total_rules = 0;          // all bipartition rules passing min_conf
  uint64_t itemsets_considered = 0;  // itemsets of size >= 2
};

RuleSpaceCount CountAllPartitionRules(const FrequentItemsetResult& result,
                                      double min_confidence);

// Governed variant: polls `ctx` once per itemset considered (each itemset's
// bipartition scan is bounded by the k <= 20 cap), so counting over a
// pathologically large rule space stops with the context's status, wrapped
// "rule-count", instead of running away. Identical counts when nothing
// trips.
maras::StatusOr<RuleSpaceCount> CountAllPartitionRules(
    const FrequentItemsetResult& result, double min_confidence,
    const RunContext& ctx);

// Materializes every bipartition rule passing `min_confidence`, up to
// `max_rules` (guards against the exponential blow-up the paper warns
// about). `n` is the transaction count, used for lift. Which rules make it
// under the cap follows the canonical itemset order of `result`; the
// returned vector is in canonical rule order (below).
std::vector<AssociationRule> GenerateAllPartitionRules(
    const FrequentItemsetResult& result, double min_confidence, size_t n,
    size_t max_rules);

// Governed variant: polls `ctx` once per itemset; a trip returns the
// context's status wrapped "rule-gen". Identical rules when nothing trips
// (memory stays bounded by `max_rules`, so only cancellation and deadline
// are live concerns here).
maras::StatusOr<std::vector<AssociationRule>> GenerateAllPartitionRules(
    const FrequentItemsetResult& result, double min_confidence, size_t n,
    size_t max_rules, const RunContext& ctx);

// Sorts rules into the documented canonical order: antecedent lexicographic,
// then consequent lexicographic, then ascending support. (A, B) determines
// every derived measure, so the order — like the canonical itemset order —
// is a pure function of the rule family, making serialized rule lists
// directly comparable across algorithms and thread counts.
void SortRulesCanonically(std::vector<AssociationRule>* rules);

}  // namespace maras::mining

#endif  // MARAS_MINING_RULES_H_
