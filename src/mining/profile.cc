#include "mining/profile.h"

#include <algorithm>
#include <cstdio>
#include <vector>

namespace maras::mining {

DatabaseProfile ProfileDatabase(const TransactionDatabase& db) {
  DatabaseProfile profile;
  profile.transactions = db.size();
  if (db.empty()) return profile;

  std::vector<size_t> item_supports;
  {
    // Collect per-item supports via the vertical index.
    std::vector<ItemId> items;
    for (const Itemset& t : db.transactions()) {
      profile.total_item_occurrences += t.size();
      profile.max_transaction_length =
          std::max(profile.max_transaction_length, t.size());
      items.insert(items.end(), t.begin(), t.end());
    }
    std::sort(items.begin(), items.end());
    items.erase(std::unique(items.begin(), items.end()), items.end());
    profile.distinct_items = items.size();
    item_supports.reserve(items.size());
    for (ItemId item : items) item_supports.push_back(db.ItemSupport(item));
  }

  profile.mean_transaction_length =
      static_cast<double>(profile.total_item_occurrences) /
      static_cast<double>(profile.transactions);
  profile.density = static_cast<double>(profile.total_item_occurrences) /
                    (static_cast<double>(profile.transactions) *
                     static_cast<double>(profile.distinct_items));

  std::sort(item_supports.begin(), item_supports.end(),
            std::greater<size_t>());
  profile.top_item_frequency =
      static_cast<double>(item_supports.front()) /
      static_cast<double>(profile.transactions);
  size_t head = std::max<size_t>(1, item_supports.size() / 100);
  size_t head_occurrences = 0;
  for (size_t i = 0; i < head; ++i) head_occurrences += item_supports[i];
  profile.top_percentile_occurrence_share =
      static_cast<double>(head_occurrences) /
      static_cast<double>(profile.total_item_occurrences);
  return profile;
}

std::string RenderProfile(const DatabaseProfile& profile) {
  char buffer[512];
  std::snprintf(
      buffer, sizeof(buffer),
      "transactions: %zu\n"
      "distinct items: %zu\n"
      "occurrences: %zu (mean length %.2f, max %zu)\n"
      "density: %.5f\n"
      "top-item frequency: %.3f\n"
      "top-1%% items carry %.1f%% of occurrences\n",
      profile.transactions, profile.distinct_items,
      profile.total_item_occurrences, profile.mean_transaction_length,
      profile.max_transaction_length, profile.density,
      profile.top_item_frequency,
      profile.top_percentile_occurrence_share * 100.0);
  return buffer;
}

}  // namespace maras::mining
