#ifndef MARAS_MINING_FPGROWTH_H_
#define MARAS_MINING_FPGROWTH_H_

#include "mining/fptree.h"
#include "mining/frequent_itemsets.h"
#include "mining/transaction_db.h"
#include "util/status.h"
#include "util/statusor.h"

namespace maras::mining {

// FP-Growth frequent-itemset miner (Han, Pei & Yin). The paper's mining
// phase uses FP-Growth trees for closed itemset and rule generation
// (Section 5.2); closedness filtering lives in closed_itemsets.h on top of
// this miner's output.
//
// With MiningOptions::num_threads > 1 the top-level loop over the global
// tree's header items fans out to a thread pool: each item's conditional
// tree is projected and mined serially inside its own task against the
// shared read-only global tree, producing a private result shard. FP-Growth
// emits every frequent itemset exactly once — in the task of its least
// frequent item — so the shards are disjoint, and concatenation + canonical
// sort reconstructs the serial result byte for byte regardless of thread
// count or schedule.
//
// When MiningOptions::context is set, every conditional-tree step polls it
// (cancellation / deadline) and every recorded itemset charges the memory
// budget; a trip unwinds cooperatively with the context's status, wrapped
// "fp-growth", and the failed mine releases everything it charged so a
// degradation retry starts from clean accounting.
class FpGrowth {
 public:
  explicit FpGrowth(MiningOptions options) : options_(options) {}

  maras::StatusOr<FrequentItemsetResult> Mine(
      const TransactionDatabase& db) const;

 private:
  maras::Status MineTree(const FpTree& tree, const Itemset& suffix,
                         FrequentItemsetResult* result,
                         size_t* charged) const;
  // One top-level step of MineTree: record {item} ∪ suffix, project the
  // conditional tree and recurse. The unit of parallel fan-out. `charged`
  // accumulates the budget bytes this call chain charged (shard-owned in
  // the parallel path, so no synchronization).
  maras::Status MineItem(const FpTree& tree, ItemId item,
                         const Itemset& suffix, FrequentItemsetResult* result,
                         size_t* charged) const;

  MiningOptions options_;
};

}  // namespace maras::mining

#endif  // MARAS_MINING_FPGROWTH_H_
