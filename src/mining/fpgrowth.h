#ifndef MARAS_MINING_FPGROWTH_H_
#define MARAS_MINING_FPGROWTH_H_

#include "mining/fptree.h"
#include "mining/frequent_itemsets.h"
#include "mining/transaction_db.h"
#include "util/statusor.h"

namespace maras::mining {

// FP-Growth frequent-itemset miner (Han, Pei & Yin). The paper's mining
// phase uses FP-Growth trees for closed itemset and rule generation
// (Section 5.2); closedness filtering lives in closed_itemsets.h on top of
// this miner's output.
class FpGrowth {
 public:
  explicit FpGrowth(MiningOptions options) : options_(options) {}

  maras::StatusOr<FrequentItemsetResult> Mine(
      const TransactionDatabase& db) const;

 private:
  void MineTree(const FpTree& tree, const Itemset& suffix,
                FrequentItemsetResult* result) const;

  MiningOptions options_;
};

}  // namespace maras::mining

#endif  // MARAS_MINING_FPGROWTH_H_
