#ifndef MARAS_MINING_FPGROWTH_H_
#define MARAS_MINING_FPGROWTH_H_

#include "mining/fptree.h"
#include "mining/frequent_itemsets.h"
#include "mining/transaction_db.h"
#include "util/statusor.h"

namespace maras::mining {

// FP-Growth frequent-itemset miner (Han, Pei & Yin). The paper's mining
// phase uses FP-Growth trees for closed itemset and rule generation
// (Section 5.2); closedness filtering lives in closed_itemsets.h on top of
// this miner's output.
//
// With MiningOptions::num_threads > 1 the top-level loop over the global
// tree's header items fans out to a thread pool: each item's conditional
// tree is projected and mined serially inside its own task against the
// shared read-only global tree, producing a private result shard. FP-Growth
// emits every frequent itemset exactly once — in the task of its least
// frequent item — so the shards are disjoint, and concatenation + canonical
// sort reconstructs the serial result byte for byte regardless of thread
// count or schedule.
class FpGrowth {
 public:
  explicit FpGrowth(MiningOptions options) : options_(options) {}

  maras::StatusOr<FrequentItemsetResult> Mine(
      const TransactionDatabase& db) const;

 private:
  void MineTree(const FpTree& tree, const Itemset& suffix,
                FrequentItemsetResult* result) const;
  // One top-level step of MineTree: record {item} ∪ suffix, project the
  // conditional tree and recurse. The unit of parallel fan-out.
  void MineItem(const FpTree& tree, ItemId item, const Itemset& suffix,
                FrequentItemsetResult* result) const;

  MiningOptions options_;
};

}  // namespace maras::mining

#endif  // MARAS_MINING_FPGROWTH_H_
