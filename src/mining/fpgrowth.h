#ifndef MARAS_MINING_FPGROWTH_H_
#define MARAS_MINING_FPGROWTH_H_

#include <cstddef>

#include "mining/fptree.h"
#include "mining/frequent_itemsets.h"
#include "mining/transaction_db.h"
#include "util/status.h"
#include "util/statusor.h"

namespace maras::mining {

// FP-Growth frequent-itemset miner (Han, Pei & Yin). The paper's mining
// phase uses FP-Growth trees for closed itemset and rule generation
// (Section 5.2); closedness filtering lives in closed_itemsets.h on top of
// this miner's output.
//
// The recursion is allocation-free on the hot path: each task owns a
// MineScratch holding one recycled FpTree arena per recursion depth (a
// conditional tree is built into its depth's arena with Clear(), never
// freshly allocated), a dense conditional-count table reset via a
// touched-item list, a reusable path buffer, and the suffix itemset
// extended in place and popped on unwind. The only steady-state allocation
// per frequent itemset is the itemset stored in the result.
//
// With MiningOptions::num_threads > 1 the top-level loop over the global
// tree's header items fans out to a thread pool: each item's conditional
// tree is projected and mined serially inside its own task against the
// shared read-only global tree, producing a private result shard; tasks
// lease scratches from a small pool, so at most one scratch exists per
// worker. FP-Growth emits every frequent itemset exactly once — in the task
// of its least frequent item — so the shards are disjoint, and
// concatenation + canonical sort reconstructs the serial result byte for
// byte regardless of thread count or schedule.
//
// When MiningOptions::context is set, every conditional-tree step polls it
// (cancellation / deadline) and every recorded itemset charges the memory
// budget, as does the resident footprint of the global tree and the
// recycled conditional arenas (charged on capacity growth, released when
// the mine returns — arenas die with the call, recorded itemsets persist);
// a trip unwinds cooperatively with the context's status, wrapped
// "fp-growth", and a failed mine releases everything it charged so a
// degradation retry starts from clean accounting.
class FpGrowth {
 public:
  explicit FpGrowth(MiningOptions options) : options_(options) {}

  maras::StatusOr<FrequentItemsetResult> Mine(
      const TransactionDatabase& db) const;

  // Per-task recycled buffers (tree arenas per depth, conditional counts,
  // suffix stack). Defined in the .cc — public only so the scratch pool
  // there can name it; callers have no reason to touch it.
  struct MineScratch;

 private:

  // Mines every item of `tree` (the conditional tree for the current
  // suffix, held in scratch->suffix). `depth` indexes the recycled arena the
  // next conditional tree is built into.
  maras::Status MineTree(const FpTree& tree, size_t depth,
                         MineScratch* scratch, FrequentItemsetResult* result,
                         size_t* charged) const;
  // One step of MineTree: record {item} ∪ suffix, project the conditional
  // tree into the recycled arena for `depth` and recurse. The unit of
  // parallel fan-out. `charged` accumulates the budget bytes this call
  // chain charged for recorded itemsets (shard-owned in the parallel path,
  // so no synchronization).
  maras::Status MineItem(const FpTree& tree, ItemId item, size_t depth,
                         MineScratch* scratch, FrequentItemsetResult* result,
                         size_t* charged) const;

  MiningOptions options_;
};

}  // namespace maras::mining

#endif  // MARAS_MINING_FPGROWTH_H_
