#ifndef MARAS_UTIL_LOGGING_H_
#define MARAS_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace maras {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

// Process-wide minimum level; messages below it are discarded.
// Not thread-synchronized by design: set it once at startup.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal_logging {

// Accumulates one log line and emits it (to stderr) on destruction.
// kFatal aborts the process after emitting.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

// Swallows the streamed expression when the level is disabled.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal_logging

#define MARAS_LOG(level)                                                  \
  (::maras::LogLevel::k##level < ::maras::GetLogLevel())                  \
      ? (void)0                                                           \
      : (void)::maras::internal_logging::LogMessage(                      \
            ::maras::LogLevel::k##level, __FILE__, __LINE__)              \
            .stream()

// Unconditional invariant check (enabled in all build types).
#define MARAS_CHECK(cond)                                                   \
  while (!(cond))                                                           \
  ::maras::internal_logging::LogMessage(::maras::LogLevel::kFatal,          \
                                        __FILE__, __LINE__)                 \
      .stream()                                                             \
      << "Check failed: " #cond " "

}  // namespace maras

#endif  // MARAS_UTIL_LOGGING_H_
