#ifndef MARAS_UTIL_STOPWATCH_H_
#define MARAS_UTIL_STOPWATCH_H_

#include <chrono>

namespace maras {

// Elapsed-time stopwatch for coarse phase timing in benches and examples.
// Built on std::chrono::steady_clock (NOT wall clock): elapsed readings are
// monotonic and immune to NTP steps or DST changes, the same guarantee
// util/run_context.h's Deadline relies on — a system-clock adjustment can
// never extend or shorten a measured interval or a deadline.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace maras

#endif  // MARAS_UTIL_STOPWATCH_H_
