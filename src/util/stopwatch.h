#ifndef MARAS_UTIL_STOPWATCH_H_
#define MARAS_UTIL_STOPWATCH_H_

#include <chrono>

namespace maras {

// Wall-clock stopwatch for coarse phase timing in benches and examples.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace maras

#endif  // MARAS_UTIL_STOPWATCH_H_
