#include "util/subprocess.h"

#include <errno.h>
#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstring>
#include <thread>

namespace maras {

namespace {

Status ErrnoStatus(const std::string& what, int err) {
  return Status::IOError(what + ": " + std::strerror(err));
}

// Closes `fd` retrying on EINTR; best-effort (POSIX leaves the fd state
// after EINTR unspecified, and a second failure has no caller recourse).
void CloseQuietly(int fd) {
  if (fd < 0) return;
  while (close(fd) == -1 && errno == EINTR) {
  }
}

void SetNonBlockingCloexec(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags != -1) fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int fdflags = fcntl(fd, F_GETFD, 0);
  if (fdflags != -1) fcntl(fd, F_SETFD, fdflags | FD_CLOEXEC);
}

}  // namespace

void IgnoreSigpipeProcessWide() {
  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = SIG_IGN;
  sigemptyset(&action.sa_mask);
  sigaction(SIGPIPE, &action, nullptr);
}

ssize_t RetryRead(int fd, void* buf, size_t count) {
  for (;;) {
    ssize_t n = read(fd, buf, count);
    if (n >= 0 || errno != EINTR) return n;
  }
}

ssize_t RetryWrite(int fd, const void* buf, size_t count) {
  for (;;) {
    ssize_t n = write(fd, buf, count);
    if (n >= 0 || errno != EINTR) return n;
  }
}

pid_t RetryWaitpid(pid_t pid, int* status, int options) {
  for (;;) {
    pid_t got = waitpid(pid, status, options);
    if (got >= 0 || errno != EINTR) return got;
  }
}

Status WriteAllToFd(int fd, std::string_view data) {
  size_t written = 0;
  while (written < data.size()) {
    ssize_t n = RetryWrite(fd, data.data() + written, data.size() - written);
    if (n < 0) return ErrnoStatus("write", errno);
    written += static_cast<size_t>(n);
  }
  return Status::OK();
}

StatusOr<std::string> ReadAllFromFd(int fd) {
  std::string out;
  char buf[4096];
  for (;;) {
    ssize_t n = RetryRead(fd, buf, sizeof(buf));
    if (n < 0) return ErrnoStatus("read", errno);
    if (n == 0) return out;
    out.append(buf, static_cast<size_t>(n));
  }
}

StatusOr<bool> DrainAvailable(int fd, std::string* out) {
  char buf[4096];
  for (;;) {
    ssize_t n = RetryRead(fd, buf, sizeof(buf));
    if (n > 0) {
      out->append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) return false;  // EOF: the writer is gone
    if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
    return ErrnoStatus("read", errno);
  }
}

std::string CurrentExecutablePath(const std::string& argv0) {
  char buf[4096];
  ssize_t n = readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n > 0) return std::string(buf, static_cast<size_t>(n));
  return argv0;
}

std::string ExitStatus::Describe() const {
  std::string out;
  if (exited) {
    out = "exit " + std::to_string(exit_code);
  } else if (signaled) {
    out = "signal " + std::to_string(term_signal);
  } else {
    out = "running";
  }
  if (timed_out) out += " (timed out)";
  if (hung) out += " (hung)";
  return out;
}

ChildProcess::~ChildProcess() {
  if (running()) {
    // A destructed handle must never leak a zombie or an orphan worker.
    StatusOr<ExitStatus> reaped = KillAndReap();
    (void)reaped;
  }
  CloseStdout();
}

ChildProcess::ChildProcess(ChildProcess&& other) noexcept {
  MoveFrom(std::move(other));
}

ChildProcess& ChildProcess::operator=(ChildProcess&& other) noexcept {
  if (this != &other) {
    if (running()) {
      StatusOr<ExitStatus> reaped = KillAndReap();
      (void)reaped;
    }
    CloseStdout();
    MoveFrom(std::move(other));
  }
  return *this;
}

void ChildProcess::MoveFrom(ChildProcess&& other) noexcept {
  pid_ = other.pid_;
  stdout_fd_ = other.stdout_fd_;
  reaped_ = other.reaped_;
  exit_ = other.exit_;
  other.pid_ = -1;
  other.stdout_fd_ = -1;
  other.reaped_ = false;
}

StatusOr<ChildProcess> ChildProcess::Spawn(
    const std::vector<std::string>& argv) {
  return Spawn(argv, Options());
}

StatusOr<ChildProcess> ChildProcess::Spawn(
    const std::vector<std::string>& argv, const Options& options) {
  if (argv.empty()) {
    return Status::InvalidArgument("empty argv");
  }
  int pipe_fds[2] = {-1, -1};
  if (options.capture_stdout && pipe(pipe_fds) == -1) {
    return ErrnoStatus("pipe", errno);
  }

  std::vector<char*> cargv;
  cargv.reserve(argv.size() + 1);
  for (const std::string& arg : argv) {
    cargv.push_back(const_cast<char*>(arg.c_str()));
  }
  cargv.push_back(nullptr);

  // maras-lint: disable=no-raw-subprocess — this IS the sanctioned wrapper.
  pid_t pid = fork();
  if (pid == -1) {
    int err = errno;
    CloseQuietly(pipe_fds[0]);
    CloseQuietly(pipe_fds[1]);
    return ErrnoStatus("fork", err);
  }
  if (pid == 0) {
    // Child. Async-signal-safe territory: dup2/close/open/execvp/_exit only.
    int devnull = open("/dev/null", O_RDONLY);
    if (devnull != -1) {
      dup2(devnull, STDIN_FILENO);
      if (devnull > STDERR_FILENO) close(devnull);
    }
    if (options.capture_stdout) {
      close(pipe_fds[0]);
      dup2(pipe_fds[1], STDOUT_FILENO);
      if (options.merge_stderr) dup2(pipe_fds[1], STDERR_FILENO);
      if (pipe_fds[1] > STDERR_FILENO) close(pipe_fds[1]);
    }
    // maras-lint: disable=no-raw-subprocess — sanctioned wrapper interior.
    execvp(cargv[0], cargv.data());
    _exit(127);  // exec failed; 127 matches the shell convention
  }

  // Parent.
  ChildProcess child;
  child.pid_ = pid;
  if (options.capture_stdout) {
    CloseQuietly(pipe_fds[1]);
    SetNonBlockingCloexec(pipe_fds[0]);
    child.stdout_fd_ = pipe_fds[0];
  }
  return child;
}

void ChildProcess::Record(int wait_status) {
  reaped_ = true;
  if (WIFEXITED(wait_status)) {
    exit_.exited = true;
    exit_.exit_code = WEXITSTATUS(wait_status);
  } else if (WIFSIGNALED(wait_status)) {
    exit_.signaled = true;
    exit_.term_signal = WTERMSIG(wait_status);
  }
}

StatusOr<bool> ChildProcess::Poll() {
  if (!running()) return true;
  int wait_status = 0;
  pid_t got = RetryWaitpid(pid_, &wait_status, WNOHANG);
  if (got == -1) return ErrnoStatus("waitpid", errno);
  if (got == 0) return false;
  Record(wait_status);
  return true;
}

StatusOr<ExitStatus> ChildProcess::WaitWithDeadline(
    const Deadline& deadline, std::chrono::milliseconds term_grace) {
  if (!running()) return exit_;
  // Poll-loop rather than SIGCHLD machinery: the supervisor owns several
  // children and per-child signal plumbing buys nothing at this scale. The
  // interval is short enough that reap latency is negligible next to a
  // worker's runtime.
  constexpr std::chrono::milliseconds kPollInterval(5);
  while (!deadline.Expired()) {
    MARAS_ASSIGN_OR_RETURN(bool done, Poll());
    if (done) return exit_;
    std::this_thread::sleep_for(
        std::min<std::chrono::milliseconds>(kPollInterval,
                                            deadline.Remaining()));
  }
  // Deadline passed: escalate SIGTERM -> SIGKILL.
  MARAS_RETURN_IF_ERROR(Kill(SIGTERM));
  Deadline grace = Deadline::After(term_grace);
  while (!grace.Expired()) {
    MARAS_ASSIGN_OR_RETURN(bool done, Poll());
    if (done) {
      exit_.timed_out = true;
      return exit_;
    }
    std::this_thread::sleep_for(kPollInterval);
  }
  MARAS_ASSIGN_OR_RETURN(ExitStatus status, KillAndReap());
  exit_ = status;
  exit_.timed_out = true;
  return exit_;
}

Status ChildProcess::Kill(int sig) {
  if (!running()) return Status::OK();
  if (kill(pid_, sig) == -1 && errno != ESRCH) {
    return ErrnoStatus("kill", errno);
  }
  return Status::OK();
}

StatusOr<ExitStatus> ChildProcess::KillAndReap() {
  if (!running()) return exit_;
  MARAS_RETURN_IF_ERROR(Kill(SIGKILL));
  int wait_status = 0;
  pid_t got = RetryWaitpid(pid_, &wait_status, 0);
  if (got == -1) return ErrnoStatus("waitpid", errno);
  Record(wait_status);
  return exit_;
}

void ChildProcess::CloseStdout() {
  if (stdout_fd_ >= 0) {
    CloseQuietly(stdout_fd_);
    stdout_fd_ = -1;
  }
}

}  // namespace maras
