#ifndef MARAS_UTIL_STATS_H_
#define MARAS_UTIL_STATS_H_

#include <cstddef>
#include <vector>

namespace maras::stats {

// Descriptive statistics and interval estimates used across the benchmark
// harnesses and the user-study simulator. All functions are pure and
// tolerate empty input (returning 0-valued results) so callers can feed
// filtered series without pre-checks.

double Mean(const std::vector<double>& values);

// Population variance / standard deviation (divide by n).
double Variance(const std::vector<double>& values);
double StdDev(const std::vector<double>& values);

// Sample standard deviation (divide by n − 1); 0 when n < 2.
double SampleStdDev(const std::vector<double>& values);

double Min(const std::vector<double>& values);
double Max(const std::vector<double>& values);

// Linear-interpolated quantile, q ∈ [0, 1]; input need not be sorted.
double Quantile(std::vector<double> values, double q);
double Median(std::vector<double> values);

// Pearson correlation of two equal-length series; 0 when degenerate.
double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y);

// Wilson score interval for a binomial proportion — the right interval for
// user-study accuracies at n = 50 where the normal approximation is poor.
struct Interval {
  double lower = 0.0;
  double upper = 0.0;
};
// `successes` out of `trials` at confidence z (1.96 ≈ 95%).
Interval WilsonInterval(size_t successes, size_t trials, double z = 1.96);

}  // namespace maras::stats

#endif  // MARAS_UTIL_STATS_H_
