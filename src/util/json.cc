#include "util/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/logging.h"

namespace maras::json {

bool Value::as_bool() const {
  MARAS_CHECK(is_bool()) << "not a bool";
  return bool_;
}
double Value::as_number() const {
  MARAS_CHECK(is_number()) << "not a number";
  return number_;
}
const std::string& Value::as_string() const {
  MARAS_CHECK(is_string()) << "not a string";
  return string_;
}
const Value::Array& Value::as_array() const {
  MARAS_CHECK(is_array()) << "not an array";
  return array_;
}
const Value::Object& Value::as_object() const {
  MARAS_CHECK(is_object()) << "not an object";
  return object_;
}
Value::Array& Value::mutable_array() {
  MARAS_CHECK(is_array()) << "not an array";
  return array_;
}
Value::Object& Value::mutable_object() {
  MARAS_CHECK(is_object()) << "not an object";
  return object_;
}

const Value* Value::Find(std::string_view key) const {
  if (!is_object()) return nullptr;
  auto it = object_.find(std::string(key));
  return it == object_.end() ? nullptr : &it->second;
}

const Value* Value::FindPath(
    std::initializer_list<std::string_view> keys) const {
  const Value* current = this;
  for (std::string_view key : keys) {
    if (current == nullptr) return nullptr;
    current = current->Find(key);
  }
  return current;
}

namespace {

constexpr int kMaxDepth = 128;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  maras::StatusOr<Value> Run() {
    SkipWhitespace();
    MARAS_ASSIGN_OR_RETURN(Value value, ParseValue(0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing content after document");
    }
    return value;
  }

 private:
  maras::Status Error(const std::string& message) const {
    return maras::Status::Corruption("JSON at offset " +
                                     std::to_string(pos_) + ": " + message);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) == literal) {
      pos_ += literal.size();
      return true;
    }
    return false;
  }

  maras::StatusOr<Value> ParseValue(int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    switch (text_[pos_]) {
      case 'n':
        if (ConsumeLiteral("null")) return Value(nullptr);
        return Error("bad literal");
      case 't':
        if (ConsumeLiteral("true")) return Value(true);
        return Error("bad literal");
      case 'f':
        if (ConsumeLiteral("false")) return Value(false);
        return Error("bad literal");
      case '"':
        return ParseString();
      case '[':
        return ParseArray(depth);
      case '{':
        return ParseObject(depth);
      default:
        return ParseNumber();
    }
  }

  maras::StatusOr<Value> ParseNumber() {
    size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected a value");
    std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || !std::isfinite(value)) {
      pos_ = start;
      return Error("malformed number '" + token + "'");
    }
    return Value(value);
  }

  maras::StatusOr<Value> ParseString() {
    MARAS_ASSIGN_OR_RETURN(std::string s, ParseRawString());
    return Value(std::move(s));
  }

  maras::StatusOr<std::string> ParseRawString() {
    if (!Consume('"')) return Error("expected '\"'");
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) return Error("unterminated string");
      char c = text_[pos_++];
      if (c == '"') break;
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("raw control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) return Error("dangling escape");
      char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Error("bad hex digit in \\u escape");
            }
          }
          // UTF-8 encode (BMP only; surrogate pairs are passed through as
          // two 3-byte sequences, sufficient for FAERS ASCII content).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return Error("unknown escape");
      }
    }
    return out;
  }

  maras::StatusOr<Value> ParseArray(int depth) {
    Consume('[');
    Value::Array array;
    SkipWhitespace();
    if (Consume(']')) return Value(std::move(array));
    while (true) {
      SkipWhitespace();
      MARAS_ASSIGN_OR_RETURN(Value element, ParseValue(depth + 1));
      array.push_back(std::move(element));
      SkipWhitespace();
      if (Consume(']')) break;
      if (!Consume(',')) return Error("expected ',' or ']'");
    }
    return Value(std::move(array));
  }

  maras::StatusOr<Value> ParseObject(int depth) {
    Consume('{');
    Value::Object object;
    SkipWhitespace();
    if (Consume('}')) return Value(std::move(object));
    while (true) {
      SkipWhitespace();
      MARAS_ASSIGN_OR_RETURN(std::string key, ParseRawString());
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':'");
      SkipWhitespace();
      MARAS_ASSIGN_OR_RETURN(Value value, ParseValue(depth + 1));
      object[std::move(key)] = std::move(value);
      SkipWhitespace();
      if (Consume('}')) break;
      if (!Consume(',')) return Error("expected ',' or '}'");
    }
    return Value(std::move(object));
  }

  std::string_view text_;
  size_t pos_ = 0;
};

void AppendEscaped(const std::string& s, std::string* out) {
  *out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\b':
        *out += "\\b";
        break;
      case '\f':
        *out += "\\f";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
  *out += '"';
}

void AppendNumber(double v, std::string* out) {
  // Integers print without a decimal point; everything else uses %.17g for
  // round-trip fidelity.
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    *out += buf;
  } else {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    *out += buf;
  }
}

void SerializeTo(const Value& value, bool pretty, int indent,
                 std::string* out) {
  auto newline = [&](int level) {
    if (!pretty) return;
    *out += '\n';
    out->append(static_cast<size_t>(level) * 2, ' ');
  };
  switch (value.type()) {
    case Value::Type::kNull:
      *out += "null";
      break;
    case Value::Type::kBool:
      *out += value.as_bool() ? "true" : "false";
      break;
    case Value::Type::kNumber:
      AppendNumber(value.as_number(), out);
      break;
    case Value::Type::kString:
      AppendEscaped(value.as_string(), out);
      break;
    case Value::Type::kArray: {
      const auto& array = value.as_array();
      if (array.empty()) {
        *out += "[]";
        break;
      }
      *out += '[';
      for (size_t i = 0; i < array.size(); ++i) {
        if (i > 0) *out += ',';
        newline(indent + 1);
        SerializeTo(array[i], pretty, indent + 1, out);
      }
      newline(indent);
      *out += ']';
      break;
    }
    case Value::Type::kObject: {
      const auto& object = value.as_object();
      if (object.empty()) {
        *out += "{}";
        break;
      }
      *out += '{';
      bool first = true;
      for (const auto& [key, element] : object) {
        if (!first) *out += ',';
        first = false;
        newline(indent + 1);
        AppendEscaped(key, out);
        *out += pretty ? ": " : ":";
        SerializeTo(element, pretty, indent + 1, out);
      }
      newline(indent);
      *out += '}';
      break;
    }
  }
}

}  // namespace

maras::StatusOr<Value> Parse(std::string_view text) {
  return Parser(text).Run();
}

std::string Serialize(const Value& value, bool pretty) {
  std::string out;
  SerializeTo(value, pretty, 0, &out);
  if (pretty) out += '\n';
  return out;
}

}  // namespace maras::json
