#ifndef MARAS_UTIL_STRING_UTIL_H_
#define MARAS_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace maras {

// Splits `input` on `delim`, keeping empty fields (so the field count of a
// delimited record is stable even with trailing delimiters).
std::vector<std::string> Split(std::string_view input, char delim);

// Joins `parts` with `delim` between each element.
std::string Join(const std::vector<std::string>& parts, char delim);
std::string Join(const std::vector<std::string>& parts,
                 std::string_view delim);

// Returns `s` without leading/trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

// ASCII-only case conversions (FAERS content is ASCII).
std::string ToUpperAscii(std::string_view s);
std::string ToLowerAscii(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

// Collapses runs of whitespace to a single space character.
std::string CollapseWhitespace(std::string_view s);

// Formats a double with `digits` places after the decimal point.
std::string FormatDouble(double value, int digits);

// Formats an integer with thousands separators, e.g. 126755 -> "126,755".
std::string FormatWithCommas(long long value);

}  // namespace maras

#endif  // MARAS_UTIL_STRING_UTIL_H_
