#include "util/delimited.h"

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/string_util.h"

namespace maras {

int DelimitedTable::ColumnIndex(const std::string& column) const {
  for (size_t i = 0; i < header.size(); ++i) {
    if (header[i] == column) return static_cast<int>(i);
  }
  return -1;
}

StatusOr<DelimitedTable> DelimitedReader::ParseString(
    const std::string& content) const {
  return ParseString(content, nullptr);
}

StatusOr<DelimitedTable> DelimitedReader::ParseString(
    const std::string& content, std::vector<DelimitedRowIssue>* issues) const {
  DelimitedTable table;
  size_t pos = 0;
  size_t line_no = 0;
  while (pos <= content.size()) {
    size_t eol = content.find('\n', pos);
    std::string_view line;
    if (eol == std::string::npos) {
      if (pos == content.size()) break;
      line = std::string_view(content).substr(pos);
      pos = content.size() + 1;
    } else {
      line = std::string_view(content).substr(pos, eol - pos);
      pos = eol + 1;
    }
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    ++line_no;
    if (line.empty()) continue;  // skip blank lines
    std::vector<std::string> fields = Split(line, delim_);
    if (line_no == 1) {
      table.header = std::move(fields);
    } else {
      if (fields.size() != table.header.size()) {
        std::string reason = "row " + std::to_string(line_no) + " has " +
                             std::to_string(fields.size()) +
                             " fields, expected " +
                             std::to_string(table.header.size());
        if (issues == nullptr) return Status::Corruption(reason);
        issues->push_back(
            DelimitedRowIssue{line_no, std::move(reason), std::string(line)});
        continue;
      }
      table.rows.push_back(std::move(fields));
      table.row_lines.push_back(line_no);
    }
  }
  if (table.header.empty()) {
    return Status::Corruption("missing header row");
  }
  return table;
}

StatusOr<DelimitedTable> DelimitedReader::ReadFile(
    const std::string& path) const {
  MARAS_ASSIGN_OR_RETURN(std::string content, ReadFileToString(path));
  return ParseString(content);
}

StatusOr<std::string> DelimitedWriter::ToString(
    const DelimitedTable& table) const {
  if (table.header.empty()) {
    return Status::InvalidArgument("table has no header");
  }
  std::string out = Join(table.header, delim_);
  out += '\n';
  for (size_t i = 0; i < table.rows.size(); ++i) {
    if (table.rows[i].size() != table.header.size()) {
      return Status::InvalidArgument("row " + std::to_string(i) +
                                     " width mismatch");
    }
    out += Join(table.rows[i], delim_);
    out += '\n';
  }
  return out;
}

Status DelimitedWriter::WriteFile(const std::string& path,
                                  const DelimitedTable& table) const {
  MARAS_ASSIGN_OR_RETURN(std::string content, ToString(table));
  return AtomicWriteStringToFile(path, content);
}

StatusOr<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open for read: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return Status::IOError("read failed: " + path);
  return buffer.str();
}

Status WriteStringToFile(const std::string& path,
                         const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open for write: " + path);
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Status AtomicWriteStringToFile(const std::string& path,
                               const std::string& content) {
  const std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Status::IOError("cannot open for write: " + tmp);
  size_t written = 0;
  while (written < content.size()) {
    ssize_t n = ::write(fd, content.data() + written, content.size() - written);
    if (n < 0) {
      ::close(fd);
      ::unlink(tmp.c_str());
      return Status::IOError("write failed: " + tmp);
    }
    written += static_cast<size_t>(n);
  }
  // Data must be durable before the rename publishes it; otherwise a crash
  // after the rename could expose a file whose contents never hit disk.
  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return Status::IOError("fsync failed: " + tmp);
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    return Status::IOError("close failed: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return Status::IOError("rename failed: " + tmp + " -> " + path);
  }
  return Status::OK();
}

}  // namespace maras
