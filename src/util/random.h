#ifndef MARAS_UTIL_RANDOM_H_
#define MARAS_UTIL_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace maras {

// Deterministic, seedable pseudo-random number generator
// (xoshiro256** seeded via SplitMix64). All randomness in the library —
// synthetic data generation, user-study simulation, benchmark workloads —
// flows through Rng so every experiment is exactly reproducible from a seed.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  Rng(const Rng&) = default;
  Rng& operator=(const Rng&) = default;

  // Uniform over all 64-bit values.
  uint64_t Next();

  // Uniform integer in [0, bound). bound must be > 0.
  uint64_t Uniform(uint64_t bound);

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformRange(int64_t lo, int64_t hi);

  // Uniform double in [0, 1).
  double NextDouble();

  // True with probability p (clamped to [0, 1]).
  bool Bernoulli(double p);

  // Standard normal via Box–Muller.
  double Gaussian();

  // Poisson-distributed count with the given mean (Knuth's method for small
  // lambda, normal approximation above 64).
  int Poisson(double mean);

  // Zipf-distributed rank in [0, n) with exponent s, favoring small ranks.
  // Uses an inverse-CDF table owned by the caller; see ZipfTable.
  // (Free function below.)

  // Fisher–Yates shuffle of `v`.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(Uniform(i));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

 private:
  uint64_t s_[4];
};

// Precomputed inverse-CDF sampler for a Zipf(s) distribution over n ranks.
// Sampling is O(log n) via binary search over the cumulative weights.
class ZipfTable {
 public:
  // n must be >= 1; s >= 0 (s == 0 is uniform).
  ZipfTable(size_t n, double s);

  // Returns a rank in [0, n); rank 0 is the most likely.
  size_t Sample(Rng* rng) const;

  size_t size() const { return cdf_.size(); }

  // Probability mass of rank k.
  double Pmf(size_t k) const;

 private:
  std::vector<double> cdf_;
};

}  // namespace maras

#endif  // MARAS_UTIL_RANDOM_H_
