#include "util/logging.h"

namespace maras {

namespace {
LogLevel g_log_level = LogLevel::kInfo;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() { return g_log_level; }
void SetLogLevel(LogLevel level) { g_log_level = level; }

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  // Strip directories from the path for compact output.
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  std::cerr << stream_.str();
  if (level_ == LogLevel::kFatal) {
    std::cerr.flush();
    std::abort();
  }
}

}  // namespace internal_logging
}  // namespace maras
