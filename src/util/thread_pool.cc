#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>

#include "util/mutex.h"

namespace maras {

ThreadPool::ThreadPool(size_t num_threads) {
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mu_);
    stopping_ = true;
  }
  task_ready_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  if (workers_.empty()) {
    // Serial pool: run inline, in submission order.
    try {
      task();
    } catch (...) {
      MutexLock lock(&mu_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    return;
  }
  {
    MutexLock lock(&mu_);
    queue_.push_back(std::move(task));
  }
  task_ready_.NotifyOne();
}

void ThreadPool::Wait() {
  MutexLock lock(&mu_);
  while (!queue_.empty() || in_flight_ != 0) idle_.Wait(&mu_);
  std::exception_ptr error = first_error_;
  first_error_ = nullptr;
  if (error) std::rethrow_exception(error);
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(&mu_);
      while (!stopping_ && queue_.empty()) task_ready_.Wait(&mu_);
      // Even when stopping, drain the queue before exiting so destruction
      // never drops a submitted task.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    try {
      task();
    } catch (...) {
      MutexLock lock(&mu_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      MutexLock lock(&mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_.NotifyAll();
    }
  }
}

Status TryParallelFor(size_t num_threads, size_t n, const RunContext& ctx,
                      const std::function<Status(size_t)>& fn) {
  const size_t workers = EffectiveThreads(num_threads, n);
  if (workers <= 1) {
    for (size_t i = 0; i < n; ++i) {
      Status status = ctx.Check();
      if (status.ok()) status = fn(i);
      if (!status.ok()) return status;
    }
    return Status::OK();
  }
  std::atomic<size_t> next{0};
  std::atomic<bool> stop{false};
  Mutex error_mu;
  Status first_error;
  size_t first_error_index = n;  // n = no error recorded yet
  auto record_error = [&](size_t index, Status status) {
    MutexLock lock(&error_mu);
    if (index < first_error_index) {
      first_error_index = index;
      first_error = std::move(status);
    }
    stop.store(true, std::memory_order_release);
  };
  {
    ThreadPool pool(workers);
    for (size_t w = 0; w < workers; ++w) {
      pool.Submit([&] {
        for (size_t i = next.fetch_add(1);
             i < n && !stop.load(std::memory_order_acquire);
             i = next.fetch_add(1)) {
          Status status = ctx.Check();
          if (status.ok()) status = fn(i);
          if (!status.ok()) {
            record_error(i, std::move(status));
            return;
          }
        }
      });
    }
    pool.Wait();
  }
  MutexLock lock(&error_mu);
  return first_error_index < n ? first_error : Status::OK();
}

size_t EffectiveThreads(size_t requested, size_t items) {
  if (requested <= 1 || items <= 1) return 1;
  return std::min(requested, items);
}

void ParallelFor(size_t num_threads, size_t n,
                 const std::function<void(size_t)>& fn) {
  const size_t workers = EffectiveThreads(num_threads, n);
  if (workers <= 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  ThreadPool pool(workers);
  std::atomic<size_t> next{0};
  for (size_t w = 0; w < workers; ++w) {
    pool.Submit([&fn, &next, n] {
      for (size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
        fn(i);
      }
    });
  }
  pool.Wait();
}

}  // namespace maras
