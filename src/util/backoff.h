#ifndef MARAS_UTIL_BACKOFF_H_
#define MARAS_UTIL_BACKOFF_H_

#include <chrono>
#include <cstddef>
#include <cstdint>

#include "util/random.h"
#include "util/run_context.h"

namespace maras {

// ---------------------------------------------------------------------------
// Deterministic exponential backoff with seeded jitter. Retry storms are a
// classic thundering-herd failure, so every retry in the shard supervisor
// waits base * multiplier^attempt, spread by a jitter drawn from util/random
// — which means a given seed produces the exact same delay sequence on
// every run, keeping the chaos harness reproducible while still
// de-synchronizing real fleets (each shard seeds its own sequence).
// ---------------------------------------------------------------------------

struct BackoffPolicy {
  std::chrono::milliseconds base{100};
  double multiplier = 2.0;
  // Hard cap on any single delay, jitter included.
  std::chrono::milliseconds max_delay{5000};
  // Jitter fraction in [0, 1]: a delay d becomes uniform in
  // [d * (1 - jitter), d], so jitter only ever shortens the wait and the
  // cap above stays authoritative.
  double jitter = 0.2;
  uint64_t seed = 0x9E3779B97F4A7C15ULL;
};

class Backoff {
 public:
  explicit Backoff(const BackoffPolicy& policy)
      : policy_(policy), rng_(policy.seed) {}

  // Delay before retry number `attempt` (0-based: the wait after the first
  // failure is Delay(0)). Each call consumes one jitter draw, so the
  // sequence Delay(0), Delay(1), ... is a pure function of the seed.
  std::chrono::milliseconds Delay(size_t attempt);

  // Sleeps for Delay(attempt) clamped to the deadline: never sleeps past
  // an expiring Deadline. Returns the duration actually requested.
  std::chrono::milliseconds SleepFor(size_t attempt, const Deadline& deadline);

  const BackoffPolicy& policy() const { return policy_; }

 private:
  BackoffPolicy policy_;
  Rng rng_;
};

}  // namespace maras

#endif  // MARAS_UTIL_BACKOFF_H_
