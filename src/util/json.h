#ifndef MARAS_UTIL_JSON_H_
#define MARAS_UTIL_JSON_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/statusor.h"

namespace maras::json {

// A small, dependency-free JSON value model with a strict recursive-descent
// parser and a deterministic serializer (object keys kept in sorted order).
// Used for the openFDA drug-event ingest (the paper's cited data source
// serves JSON) and for exporting analysis results to downstream tools.
class Value {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<Value>;
  using Object = std::map<std::string, Value>;

  Value() : type_(Type::kNull) {}
  Value(std::nullptr_t) : type_(Type::kNull) {}               // NOLINT
  Value(bool b) : type_(Type::kBool), bool_(b) {}             // NOLINT
  Value(double n) : type_(Type::kNumber), number_(n) {}       // NOLINT
  Value(int n) : Value(static_cast<double>(n)) {}             // NOLINT
  Value(long long n) : Value(static_cast<double>(n)) {}       // NOLINT
  Value(size_t n) : Value(static_cast<double>(n)) {}          // NOLINT
  Value(std::string s) : type_(Type::kString), string_(std::move(s)) {}  // NOLINT
  Value(const char* s) : Value(std::string(s)) {}             // NOLINT
  Value(Array a) : type_(Type::kArray), array_(std::move(a)) {}    // NOLINT
  Value(Object o) : type_(Type::kObject), object_(std::move(o)) {}  // NOLINT

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  // Typed accessors; calling the wrong one on a value is a programming
  // error (checked by assert via MARAS_CHECK in the implementation).
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;
  Array& mutable_array();
  Object& mutable_object();

  // Object field lookup; nullptr when absent or not an object.
  const Value* Find(std::string_view key) const;

  // Path convenience: Find("a")->Find("b")... with nullptr propagation.
  const Value* FindPath(std::initializer_list<std::string_view> keys) const;

 private:
  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

// Parses a complete JSON document. Trailing garbage, unterminated
// containers, bad escapes and bad numbers yield Corruption with position
// info. Depth is limited to 128 to bound recursion.
maras::StatusOr<Value> Parse(std::string_view text);

// Serializes; `pretty` adds two-space indentation.
std::string Serialize(const Value& value, bool pretty = false);

}  // namespace maras::json

#endif  // MARAS_UTIL_JSON_H_
