#ifndef MARAS_UTIL_RUN_CONTEXT_H_
#define MARAS_UTIL_RUN_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>

#include "util/status.h"

namespace maras {

// ---------------------------------------------------------------------------
// Resource governance for long-running pipeline stages. Mining with a low
// support threshold can explode combinatorially (output and memory), and a
// surveillance service must bound a runaway analysis instead of being killed
// from outside. The primitives here are *cooperative*: governed loops poll a
// RunContext at bounded intervals and return
// Status(kCancelled / kDeadlineExceeded / kResourceExhausted) — they never
// block, signal, or unwind across threads.
//
// All three primitives are thread-safe: one RunContext is shared by every
// worker of a parallel stage. An empty (default) RunContext is ungoverned
// and every check passes at the cost of a couple of relaxed atomic loads.
//
// Concurrency capability model: this file is deliberately LOCK-FREE — there
// is no mutex here, so nothing for the clang thread-safety analysis
// (util/thread_annotations.h) to guard. The contract, stated once:
//   * CancellationToken is a sticky release/acquire flag — Cancel()
//     publishes, cancelled() observes; no other state rides on it.
//   * MemoryBudget's used_/peak_ are relaxed CAS loops: charges are
//     commutative tallies that order nothing, so the only guarantees are
//     monotone peak and never-exceeds-limit, both enforced by the CAS
//     condition itself, not by ordering.
//   * Deadline is immutable after construction (copies share the instant).
// Every field is either std::atomic or written only before sharing, which
// is exactly why no GUARDED_BY appears: the mutex-annotations lint rule
// polices mutex members, and a poll on the governed hot path must never
// take one.
// ---------------------------------------------------------------------------

// Cooperative cancellation flag. Cancel() may be called from any thread
// (typically a serving-layer request handler or a watchdog); governed loops
// observe it at their next poll. Cancellation is one-way and sticky.
class CancellationToken {
 public:
  CancellationToken() = default;
  CancellationToken(const CancellationToken&) = delete;
  CancellationToken& operator=(const CancellationToken&) = delete;

  void Cancel() noexcept { cancelled_.store(true, std::memory_order_release); }
  bool cancelled() const noexcept {
    return cancelled_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

// A point on the steady (monotonic) clock by which a governed operation must
// finish. Built on steady_clock deliberately — wall-clock adjustments (NTP
// steps, DST) must never extend or shorten a deadline; Stopwatch documents
// the same monotonicity guarantee. A default-constructed Deadline is
// infinite.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  Deadline() = default;  // infinite

  static Deadline Infinite() { return Deadline(); }
  static Deadline After(std::chrono::milliseconds delay) {
    Deadline d;
    d.at_ = Clock::now() + delay;
    d.configured_ = delay;
    d.infinite_ = false;
    return d;
  }
  static Deadline AfterMillis(int64_t millis) {
    return After(std::chrono::milliseconds(millis));
  }

  bool infinite() const { return infinite_; }
  bool Expired() const { return !infinite_ && Clock::now() >= at_; }

  // Time left; zero when expired, and a very large value when infinite.
  std::chrono::milliseconds Remaining() const {
    if (infinite_) return std::chrono::milliseconds::max();
    auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        at_ - Clock::now());
    return left.count() > 0 ? left : std::chrono::milliseconds(0);
  }

  // The originally configured delay (for diagnostics); zero when infinite.
  std::chrono::milliseconds configured() const { return configured_; }

 private:
  Clock::time_point at_{};
  std::chrono::milliseconds configured_{0};
  bool infinite_ = true;
};

// Byte accounter for the durable output of a governed stage (the mined
// result family — the term that explodes at low min-support). Charges are
// approximate sizeof-based estimates, not allocator truth; the point is to
// trip *before* the OOM killer would, not to meter precisely. Thread-safe:
// parallel mining shards charge concurrently.
class MemoryBudget {
 public:
  // limit_bytes == 0 means unlimited (every charge succeeds, usage is still
  // tracked so peak() stays observable in benches).
  explicit MemoryBudget(size_t limit_bytes = 0) : limit_(limit_bytes) {}
  MemoryBudget(const MemoryBudget&) = delete;
  MemoryBudget& operator=(const MemoryBudget&) = delete;

  // Adds `bytes` to the usage. Returns false — leaving usage unchanged —
  // when the charge would push usage past the limit.
  bool TryCharge(size_t bytes) {
    size_t used = used_.load(std::memory_order_relaxed);
    for (;;) {
      size_t next = used + bytes;
      if (limit_ != 0 && next > limit_) return false;
      if (used_.compare_exchange_weak(used, next,
                                      std::memory_order_relaxed)) {
        UpdatePeak(next);
        return true;
      }
    }
  }

  // Returns memory a failed or abandoned stage charged (a discarded partial
  // mining result), so a degraded retry starts from the true usage.
  void Release(size_t bytes) {
    size_t used = used_.load(std::memory_order_relaxed);
    for (;;) {
      size_t next = used > bytes ? used - bytes : 0;
      if (used_.compare_exchange_weak(used, next,
                                      std::memory_order_relaxed)) {
        return;
      }
    }
  }

  size_t used() const { return used_.load(std::memory_order_relaxed); }
  size_t peak() const { return peak_.load(std::memory_order_relaxed); }
  size_t limit() const { return limit_; }
  // A budget with no headroom left counts as exhausted: TryCharge never
  // lets usage pass the limit, so reaching it exactly is the trip signal
  // RunContext::Check observes.
  bool Exhausted() const { return limit_ != 0 && used() >= limit_; }

 private:
  void UpdatePeak(size_t candidate) {
    size_t peak = peak_.load(std::memory_order_relaxed);
    while (candidate > peak &&
           !peak_.compare_exchange_weak(peak, candidate,
                                        std::memory_order_relaxed)) {
    }
  }

  std::atomic<size_t> used_{0};
  std::atomic<size_t> peak_{0};
  size_t limit_;
};

// The bundle a governed loop polls. Non-owning: the caller that configures a
// run (CLI flag parsing, a future request handler) owns the token and the
// budget and must outlive the governed stages. Copyable by value — the copy
// shares the same token/budget and the same deadline instant.
struct RunContext {
  const CancellationToken* cancel = nullptr;
  Deadline deadline;              // infinite by default
  MemoryBudget* budget = nullptr;

  bool governed() const {
    return cancel != nullptr || budget != nullptr || !deadline.infinite();
  }

  // The poll: cancellation dominates (an explicit operator decision), then
  // the deadline, then the budget. Callers wrap the result with WithContext
  // naming the stage, so provenance reads
  // "fp-growth: deadline of 500ms exceeded".
  Status Check() const;

  // Charges `bytes` against the budget (no-op without one); on breach the
  // returned kResourceExhausted carries the limit and current usage.
  Status Charge(size_t bytes) const;
};

}  // namespace maras

#endif  // MARAS_UTIL_RUN_CONTEXT_H_
