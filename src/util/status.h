#ifndef MARAS_UTIL_STATUS_H_
#define MARAS_UTIL_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace maras {

// A Status encapsulates the result of an operation. It may indicate success,
// or it may indicate an error with an associated error message. No exceptions
// cross public API boundaries in this library; fallible operations return
// Status or StatusOr<T>.
//
// Idiom (RocksDB/Arrow style):
//   Status s = DoSomething();
//   if (!s.ok()) return s;
//
// [[nodiscard]]: a silently-dropped error from ingest, mining, or
// checkpointing corrupts downstream safety signals, so every Status return
// must be consumed. Use MARAS_IGNORE_STATUS to discard with justification.
class [[nodiscard]] Status {
 public:
  enum class Code : unsigned char {
    kOk = 0,
    kInvalidArgument = 1,
    kNotFound = 2,
    kCorruption = 3,
    kIOError = 4,
    kOutOfRange = 5,
    kAlreadyExists = 6,
    kFailedPrecondition = 7,
    kInternal = 8,
    // Resource-governance codes (util/run_context.h): a governed operation
    // stopped cooperatively instead of running away.
    kCancelled = 9,          // CancellationToken tripped
    kDeadlineExceeded = 10,  // Deadline (steady clock) passed
    kResourceExhausted = 11, // MemoryBudget breached
  };

  // Success status.
  Status() : code_(Code::kOk) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string_view msg) {
    return Status(Code::kInvalidArgument, msg);
  }
  static Status NotFound(std::string_view msg) {
    return Status(Code::kNotFound, msg);
  }
  static Status Corruption(std::string_view msg) {
    return Status(Code::kCorruption, msg);
  }
  static Status IOError(std::string_view msg) {
    return Status(Code::kIOError, msg);
  }
  static Status OutOfRange(std::string_view msg) {
    return Status(Code::kOutOfRange, msg);
  }
  static Status AlreadyExists(std::string_view msg) {
    return Status(Code::kAlreadyExists, msg);
  }
  static Status FailedPrecondition(std::string_view msg) {
    return Status(Code::kFailedPrecondition, msg);
  }
  static Status Internal(std::string_view msg) {
    return Status(Code::kInternal, msg);
  }
  static Status Cancelled(std::string_view msg) {
    return Status(Code::kCancelled, msg);
  }
  static Status DeadlineExceeded(std::string_view msg) {
    return Status(Code::kDeadlineExceeded, msg);
  }
  static Status ResourceExhausted(std::string_view msg) {
    return Status(Code::kResourceExhausted, msg);
  }

  bool ok() const { return code_ == Code::kOk; }
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsIOError() const { return code_ == Code::kIOError; }
  bool IsOutOfRange() const { return code_ == Code::kOutOfRange; }
  bool IsAlreadyExists() const { return code_ == Code::kAlreadyExists; }
  bool IsFailedPrecondition() const {
    return code_ == Code::kFailedPrecondition;
  }
  bool IsInternal() const { return code_ == Code::kInternal; }
  bool IsCancelled() const { return code_ == Code::kCancelled; }
  bool IsDeadlineExceeded() const {
    return code_ == Code::kDeadlineExceeded;
  }
  bool IsResourceExhausted() const {
    return code_ == Code::kResourceExhausted;
  }

  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  // Human-readable representation, e.g. "InvalidArgument: empty file name".
  std::string ToString() const;

 private:
  Status(Code code, std::string_view msg)
      : code_(code), message_(msg) {}

  friend Status WithContext(const Status& status, std::string_view context);

  Code code_;
  std::string message_;
};

// Returns `status` with `context` prefixed onto its message, preserving the
// code: WithContext(Corruption("bad rept_cod"), "DEMO12Q3.txt:47") yields
// "Corruption: DEMO12Q3.txt:47: bad rept_cod". OK statuses pass through
// unchanged, so the call is safe on any return path.
Status WithContext(const Status& status, std::string_view context);

inline bool operator==(const Status& a, const Status& b) {
  return a.code() == b.code() && a.message() == b.message();
}

// Explicitly discards a Status (or StatusOr) expression. The only sanctioned
// way to drop a [[nodiscard]] result; grep-able so every deliberate discard
// carries a nearby justification comment.
#define MARAS_IGNORE_STATUS(expr) \
  do {                            \
    (void)(expr);                 \
  } while (0)

// Evaluates `expr` (a Status expression) and returns it from the enclosing
// function if it is not OK.
#define MARAS_RETURN_IF_ERROR(expr)                  \
  do {                                               \
    ::maras::Status _st = (expr);                    \
    if (!_st.ok()) return _st;                       \
  } while (0)

// As MARAS_RETURN_IF_ERROR, but wraps the propagated error with `context`
// (any expression convertible to std::string_view, evaluated only on error).
#define MARAS_RETURN_IF_ERROR_CTX(expr, context)     \
  do {                                               \
    ::maras::Status _st = (expr);                    \
    if (!_st.ok()) return ::maras::WithContext(_st, (context)); \
  } while (0)

}  // namespace maras

#endif  // MARAS_UTIL_STATUS_H_
