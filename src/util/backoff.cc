#include "util/backoff.h"

#include <algorithm>
#include <cmath>
#include <thread>

namespace maras {

std::chrono::milliseconds Backoff::Delay(size_t attempt) {
  const double cap = static_cast<double>(policy_.max_delay.count());
  double raw = static_cast<double>(policy_.base.count());
  // Multiply stepwise with an early cap so a large attempt count cannot
  // overflow to inf * 0-jitter weirdness.
  for (size_t i = 0; i < attempt && raw < cap; ++i) {
    raw *= policy_.multiplier;
  }
  raw = std::min(raw, cap);
  const double jitter = std::clamp(policy_.jitter, 0.0, 1.0);
  // One draw per call even when jitter is 0, so enabling jitter never
  // shifts the rest of a replayed sequence.
  const double u = rng_.NextDouble();
  double jittered = raw * (1.0 - jitter * u);
  jittered = std::clamp(jittered, 0.0, cap);
  return std::chrono::milliseconds(static_cast<int64_t>(jittered));
}

std::chrono::milliseconds Backoff::SleepFor(size_t attempt,
                                            const Deadline& deadline) {
  std::chrono::milliseconds delay = Delay(attempt);
  if (!deadline.infinite()) {
    delay = std::min(delay, deadline.Remaining());
  }
  if (delay.count() > 0) std::this_thread::sleep_for(delay);
  return delay;
}

}  // namespace maras
