#include "util/random.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace maras {

namespace {

// SplitMix64: used only to expand the seed into xoshiro state.
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
  // xoshiro must not start from the all-zero state.
  if (s_[0] == 0 && s_[1] == 0 && s_[2] == 0 && s_[3] == 0) s_[0] = 1;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t bound) {
  MARAS_CHECK(bound > 0) << "Uniform bound must be positive";
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformRange(int64_t lo, int64_t hi) {
  MARAS_CHECK(lo <= hi) << "UniformRange requires lo <= hi";
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(Uniform(span));
}

double Rng::NextDouble() {
  // 53 high bits → uniform double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::Gaussian() {
  // Box–Muller; guards against log(0).
  double u1 = NextDouble();
  double u2 = NextDouble();
  if (u1 < 1e-300) u1 = 1e-300;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

int Rng::Poisson(double mean) {
  if (mean <= 0.0) return 0;
  if (mean > 64.0) {
    // Normal approximation for large means.
    double v = mean + std::sqrt(mean) * Gaussian();
    return v < 0 ? 0 : static_cast<int>(v + 0.5);
  }
  // Knuth's multiplication method.
  const double limit = std::exp(-mean);
  double product = NextDouble();
  int count = 0;
  while (product > limit) {
    ++count;
    product *= NextDouble();
  }
  return count;
}

ZipfTable::ZipfTable(size_t n, double s) {
  MARAS_CHECK(n >= 1) << "ZipfTable needs at least one rank";
  cdf_.resize(n);
  double total = 0.0;
  for (size_t k = 0; k < n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf_[k] = total;
  }
  for (auto& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against floating-point shortfall
}

size_t ZipfTable::Sample(Rng* rng) const {
  double u = rng->NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<size_t>(it - cdf_.begin());
}

double ZipfTable::Pmf(size_t k) const {
  MARAS_CHECK(k < cdf_.size());
  if (k == 0) return cdf_[0];
  return cdf_[k] - cdf_[k - 1];
}

}  // namespace maras
