#ifndef MARAS_UTIL_BINARY_IO_H_
#define MARAS_UTIL_BINARY_IO_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "util/status.h"

namespace maras {

// ---------------------------------------------------------------------------
// Little-endian binary encoding for checkpoint payloads (core/checkpoint.h).
// Fixed-width fields only — no varints — so encodings are trivially
// position-independent and byte-identical across platforms of the same
// endianness. Doubles round-trip bit-exactly (raw IEEE-754 bits), which the
// resume-equals-uninterrupted guarantee depends on: a confidence that
// re-serializes differently would break hash identity.
//
// BinaryReader is bounds-checked and returns Corruption on any overrun, so
// a torn (truncated) checkpoint payload is always detected, never read past.
// ---------------------------------------------------------------------------

class BinaryWriter {
 public:
  void U8(uint8_t v) { out_.push_back(static_cast<char>(v)); }

  void U32(uint32_t v) { AppendLe(&v, sizeof(v)); }
  void U64(uint64_t v) { AppendLe(&v, sizeof(v)); }

  void F64(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    U64(bits);
  }

  // Length-prefixed byte string.
  void Str(std::string_view s) {
    U64(s.size());
    out_.append(s.data(), s.size());
  }

  const std::string& bytes() const { return out_; }
  std::string&& Take() { return std::move(out_); }

 private:
  void AppendLe(const void* v, size_t n) {
    // All supported targets are little-endian; memcpy keeps this UB-free.
    const char* p = static_cast<const char*>(v);
    out_.append(p, n);
  }

  std::string out_;
};

class BinaryReader {
 public:
  explicit BinaryReader(std::string_view data) : data_(data) {}

  Status U8(uint8_t* v) {
    MARAS_RETURN_IF_ERROR(Need(1));
    *v = static_cast<uint8_t>(data_[pos_]);
    ++pos_;
    return Status::OK();
  }

  Status U32(uint32_t* v) { return ReadLe(v, sizeof(*v)); }
  Status U64(uint64_t* v) { return ReadLe(v, sizeof(*v)); }

  Status F64(double* v) {
    uint64_t bits = 0;
    MARAS_RETURN_IF_ERROR(U64(&bits));
    std::memcpy(v, &bits, sizeof(*v));
    return Status::OK();
  }

  Status Str(std::string* s) {
    uint64_t n = 0;
    MARAS_RETURN_IF_ERROR(U64(&n));
    MARAS_RETURN_IF_ERROR(Need(n));
    s->assign(data_.data() + pos_, static_cast<size_t>(n));
    pos_ += static_cast<size_t>(n);
    return Status::OK();
  }

  // Reads an element count and validates it against the bytes left: every
  // element occupies at least `min_bytes_per_elem` encoded bytes, so a
  // count the remaining payload cannot possibly satisfy is forged or torn.
  // Decoders MUST use this (not a raw U32/U64) before reserve()ing — found
  // by fuzz_checkpoint: a mutated count of ~2^60 reached vector::reserve
  // and threw std::length_error before any per-element read could fail.
  Status Count(uint64_t* n, size_t min_bytes_per_elem) {
    MARAS_RETURN_IF_ERROR(U64(n));
    return ValidateCount(*n, min_bytes_per_elem);
  }
  Status Count32(uint32_t* n, size_t min_bytes_per_elem) {
    MARAS_RETURN_IF_ERROR(U32(n));
    return ValidateCount(*n, min_bytes_per_elem);
  }

  // A well-formed payload is consumed exactly; trailing bytes mean the
  // payload and its framing disagree.
  bool exhausted() const { return pos_ == data_.size(); }
  size_t remaining() const { return data_.size() - pos_; }

 private:
  Status ValidateCount(uint64_t n, size_t min_bytes_per_elem) {
    const size_t per_elem = min_bytes_per_elem == 0 ? 1 : min_bytes_per_elem;
    if (n > remaining() / per_elem) {
      return Status::Corruption(
          "implausible element count " + std::to_string(n) + ": " +
          std::to_string(remaining()) + " payload bytes remain at offset " +
          std::to_string(pos_));
    }
    return Status::OK();
  }

  Status Need(uint64_t n) {
    if (n > data_.size() - pos_) {
      return Status::Corruption(
          "truncated payload: need " + std::to_string(n) + " bytes at offset " +
          std::to_string(pos_) + ", have " +
          std::to_string(data_.size() - pos_));
    }
    return Status::OK();
  }

  Status ReadLe(void* v, size_t n) {
    MARAS_RETURN_IF_ERROR(Need(n));
    std::memcpy(v, data_.data() + pos_, n);
    pos_ += n;
    return Status::OK();
  }

  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace maras

#endif  // MARAS_UTIL_BINARY_IO_H_
