#include "util/string_util.h"

#include <cctype>
#include <cstdio>

namespace maras {

std::vector<std::string> Split(std::string_view input, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= input.size(); ++i) {
    if (i == input.size() || input[i] == delim) {
      out.emplace_back(input.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, char delim) {
  return Join(parts, std::string_view(&delim, 1));
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view delim) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += delim;
    out += parts[i];
  }
  return out;
}

std::string_view StripWhitespace(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::string ToUpperAscii(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

std::string ToLowerAscii(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string CollapseWhitespace(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  bool in_space = false;
  for (char c : s) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      in_space = true;
    } else {
      if (in_space && !out.empty()) out += ' ';
      in_space = false;
      out += c;
    }
  }
  return out;
}

std::string FormatDouble(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

std::string FormatWithCommas(long long value) {
  std::string digits = std::to_string(value < 0 ? -value : value);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count > 0 && count % 3 == 0) out += ',';
    out += *it;
    ++count;
  }
  if (value < 0) out += '-';
  return std::string(out.rbegin(), out.rend());
}

}  // namespace maras
