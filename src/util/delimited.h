#ifndef MARAS_UTIL_DELIMITED_H_
#define MARAS_UTIL_DELIMITED_H_

#include <string>
#include <vector>

#include "util/status.h"
#include "util/statusor.h"

namespace maras {

// A parsed delimited-text table: a header row plus data rows. FAERS quarterly
// extracts are '$'-delimited ASCII files with one header line; this reader is
// also used (with ',') for the small vocabulary files shipped with examples.
struct DelimitedTable {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;
  // 1-based source line of rows[i] — lets a consumer cite the original file
  // location in diagnostics even after blank lines or rejected rows.
  std::vector<size_t> row_lines;

  // Index of `column` in the header, or -1 when absent.
  int ColumnIndex(const std::string& column) const;
};

// One row the permissive parser rejected, with enough context to quarantine
// or log it: where it was, why it was dropped, and its verbatim bytes.
struct DelimitedRowIssue {
  size_t line = 0;      // 1-based line number in the source buffer
  std::string reason;   // e.g. "5 fields, expected 7"
  std::string content;  // the rejected line, verbatim
};

class DelimitedReader {
 public:
  explicit DelimitedReader(char delim) : delim_(delim) {}

  // Parses an in-memory buffer. Every row must have the same number of
  // fields as the header; a short/long row yields Corruption.
  StatusOr<DelimitedTable> ParseString(const std::string& content) const;

  // Permissive variant: a row whose field count disagrees with the header is
  // recorded in `issues` and skipped instead of failing the parse. A missing
  // header is still Corruption (nothing can be interpreted without one).
  StatusOr<DelimitedTable> ParseString(
      const std::string& content, std::vector<DelimitedRowIssue>* issues) const;

  // Reads and parses a file from disk.
  StatusOr<DelimitedTable> ReadFile(const std::string& path) const;

 private:
  char delim_;
};

class DelimitedWriter {
 public:
  explicit DelimitedWriter(char delim) : delim_(delim) {}

  // Serializes the table; rows must match the header width.
  StatusOr<std::string> ToString(const DelimitedTable& table) const;

  Status WriteFile(const std::string& path,
                   const DelimitedTable& table) const;

 private:
  char delim_;
};

// Reads an entire file into memory.
StatusOr<std::string> ReadFileToString(const std::string& path);

// Writes `content` to `path`, replacing any existing file.
Status WriteStringToFile(const std::string& path, const std::string& content);

// Crash-safe replacement of `path`: writes to `path`.tmp in the same
// directory, fsyncs the data, then renames over `path`. A crash at any point
// leaves either the old complete file or the new complete file — never a
// torn mix — which checkpoint recovery (core/checkpoint.h) relies on. The
// leftover .tmp from a mid-write crash is simply overwritten next time.
Status AtomicWriteStringToFile(const std::string& path,
                               const std::string& content);

}  // namespace maras

#endif  // MARAS_UTIL_DELIMITED_H_
