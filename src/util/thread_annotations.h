#ifndef MARAS_UTIL_THREAD_ANNOTATIONS_H_
#define MARAS_UTIL_THREAD_ANNOTATIONS_H_

// ---------------------------------------------------------------------------
// Clang Thread Safety Analysis annotations.
//
// These macros attach compile-time capability semantics to mutexes and the
// state they guard: GUARDED_BY names the lock a field needs, REQUIRES names
// the lock a function must already hold, ACQUIRE/RELEASE mark the lock and
// unlock primitives themselves, and SCOPED_CAPABILITY marks RAII holders.
// Under `clang -Wthread-safety` an access that violates the declared
// discipline is a *build break* — the static half of the race-detection
// story, complementing the dynamic tsan-mining preset which only proves the
// interleavings a test actually executed.
//
// On every other compiler (gcc carries the tier-1 suite in this repo) the
// macros expand to nothing, so annotated code stays portable and free.
// The `clang-thread-safety` CMake preset turns the analysis into -Werror;
// tests/compile_fail/thread_safety_*.cc prove the gate has teeth.
//
// Naming follows the canonical mock header from the clang documentation
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html) so the vocabulary
// matches what the analysis itself reports.
// ---------------------------------------------------------------------------

#if defined(__clang__)
#define MARAS_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define MARAS_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op outside clang
#endif

// Marks a class as a capability (a lock). The string is the capability kind
// the analysis prints in diagnostics, e.g. "mutex".
#define CAPABILITY(x) MARAS_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

// Marks an RAII class whose constructor acquires and destructor releases a
// capability (MutexLock and friends).
#define SCOPED_CAPABILITY MARAS_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

// Declares that the field is protected by the given capability: reads need
// the capability shared, writes need it exclusively.
#define GUARDED_BY(x) MARAS_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

// Like GUARDED_BY, but guards the data a pointer/smart-pointer member points
// at rather than the pointer itself.
#define PT_GUARDED_BY(x) MARAS_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

// Lock-ordering declarations: this capability must be acquired before/after
// the listed ones (deadlock prevention, checked statically).
#define ACQUIRED_BEFORE(...) \
  MARAS_THREAD_ANNOTATION_ATTRIBUTE(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) \
  MARAS_THREAD_ANNOTATION_ATTRIBUTE(acquired_after(__VA_ARGS__))

// The calling thread must already hold the capability (exclusively / shared)
// and still holds it on return.
#define REQUIRES(...) \
  MARAS_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  MARAS_THREAD_ANNOTATION_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))

// The function acquires the capability (exclusively / shared) and does not
// release it before returning.
#define ACQUIRE(...) \
  MARAS_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  MARAS_THREAD_ANNOTATION_ATTRIBUTE(acquire_shared_capability(__VA_ARGS__))

// The function releases the capability, which must be held on entry.
#define RELEASE(...) \
  MARAS_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  MARAS_THREAD_ANNOTATION_ATTRIBUTE(release_shared_capability(__VA_ARGS__))
#define RELEASE_GENERIC(...) \
  MARAS_THREAD_ANNOTATION_ATTRIBUTE(release_generic_capability(__VA_ARGS__))

// The function tries to acquire and returns `b` on success.
#define TRY_ACQUIRE(...) \
  MARAS_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))
#define TRY_ACQUIRE_SHARED(...) \
  MARAS_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_shared_capability(__VA_ARGS__))

// The calling thread must NOT hold the capability (non-reentrancy guard for
// functions that acquire it themselves).
#define EXCLUDES(...) \
  MARAS_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

// Runtime assertion that the capability is held, trusted by the analysis.
#define ASSERT_CAPABILITY(x) \
  MARAS_THREAD_ANNOTATION_ATTRIBUTE(assert_capability(x))
#define ASSERT_SHARED_CAPABILITY(x) \
  MARAS_THREAD_ANNOTATION_ATTRIBUTE(assert_shared_capability(x))

// The function returns a reference to the given capability.
#define RETURN_CAPABILITY(x) \
  MARAS_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

// Escape hatch for code whose discipline the analysis cannot express (e.g.
// a functor invoked only under a lock its signature does not mention).
// Every use must carry a comment stating the manual proof.
#define NO_THREAD_SAFETY_ANALYSIS \
  MARAS_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)

#endif  // MARAS_UTIL_THREAD_ANNOTATIONS_H_
