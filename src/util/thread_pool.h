#ifndef MARAS_UTIL_THREAD_POOL_H_
#define MARAS_UTIL_THREAD_POOL_H_

#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/run_context.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace maras {

// Fixed-size worker pool over one locked FIFO task queue. Deliberately no
// work stealing: the parallel layers built on top never depend on *which*
// worker runs a task — determinism comes from tasks writing only to
// caller-owned, index-addressed slots — so a single queue keeps the
// scheduling model trivial to reason about under TSAN.
//
// num_threads == 0 degrades to a serial pool: Submit runs the task inline on
// the calling thread, in submission order, with the same exception
// accounting. This makes "parallel code with num_threads=0" byte-for-byte
// equivalent to the serial code path, which the mining determinism suite
// relies on.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);

  // Drains every pending task (nothing submitted is dropped), then joins the
  // workers. Exceptions still pending after the last Wait() are swallowed.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a task. Tasks may throw: the exception is caught inside the
  // worker (a throwing task never wedges the pool), the first one is stored,
  // and the next Wait() rethrows it.
  void Submit(std::function<void()> task);

  // Blocks until every submitted task has finished, then rethrows the first
  // stored task exception, if any (clearing it, so the pool stays usable).
  void Wait();

  // Worker count; 0 for a serial (inline) pool.
  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  // mu_ is the pool's single capability: queue contents, the in-flight
  // count, the stop flag, and the stored exception all change only under
  // it. workers_ is unguarded by design — written once in the constructor
  // and joined in the destructor, both single-threaded by contract.
  Mutex mu_;
  CondVar task_ready_;
  CondVar idle_;
  std::deque<std::function<void()>> queue_ GUARDED_BY(mu_);
  size_t in_flight_ GUARDED_BY(mu_) = 0;
  bool stopping_ GUARDED_BY(mu_) = false;
  std::exception_ptr first_error_ GUARDED_BY(mu_);
  std::vector<std::thread> workers_;
};

// Worker count a parallel region should actually use: 0 and 1 both mean
// serial, and the fan-out never exceeds the number of work items.
size_t EffectiveThreads(size_t requested, size_t items);

// Runs fn(0), ..., fn(n-1) across a pool of `num_threads` workers; indices
// are handed out dynamically (atomic counter, no per-index task overhead).
// With num_threads <= 1 or n <= 1 runs inline on the caller's thread.
// Determinism is the caller's contract: fn(i) must write only to state owned
// by index i. Rethrows the first exception any fn raised once all workers
// have stopped; a worker whose fn throws abandons its remaining indices.
void ParallelFor(size_t num_threads, size_t n,
                 const std::function<void(size_t)>& fn);

// Status-returning, resource-governed ParallelFor. Before handing out each
// index, workers poll `ctx` (cancellation / deadline / memory budget) and a
// shared stop flag; once either trips, no further index is scheduled —
// indices already running finish normally. Error choice is first-error-wins
// with lowest-index preference: among the failures actually observed, the
// one with the smallest index is returned (so a lone failing shard yields a
// deterministic result at any thread count, and the serial path returns the
// first failure in index order). A governance trip reports the RunContext
// status itself. fn must still write only to caller-owned, index-addressed
// state; with num_threads <= 1 runs inline on the caller's thread.
Status TryParallelFor(size_t num_threads, size_t n, const RunContext& ctx,
                      const std::function<Status(size_t)>& fn);

// Ordered result collection: results[i] = fn(i), computed in parallel but
// returned in index order regardless of scheduling. T must be
// default-constructible and movable.
template <typename T>
std::vector<T> ParallelMap(size_t num_threads, size_t n,
                           const std::function<T(size_t)>& fn) {
  std::vector<T> results(n);
  ParallelFor(num_threads, n, [&](size_t i) { results[i] = fn(i); });
  return results;
}

}  // namespace maras

#endif  // MARAS_UTIL_THREAD_POOL_H_
