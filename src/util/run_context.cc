#include "util/run_context.h"

#include <string>

namespace maras {

// Check/Charge are called from every worker of a parallel stage at once;
// both are read-only over the shared token/budget atomics (Charge's CAS
// loop is the budget's own primitive), so no lock is taken on the poll
// path — see the lock-free contract in run_context.h.
Status RunContext::Check() const {
  if (cancel != nullptr && cancel->cancelled()) {
    return Status::Cancelled("run cancelled");
  }
  if (deadline.Expired()) {
    return Status::DeadlineExceeded(
        "deadline of " + std::to_string(deadline.configured().count()) +
        "ms exceeded");
  }
  if (budget != nullptr && budget->Exhausted()) {
    return Status::ResourceExhausted(
        "memory budget of " + std::to_string(budget->limit()) +
        " bytes exhausted (" + std::to_string(budget->used()) + " used)");
  }
  return Status::OK();
}

Status RunContext::Charge(size_t bytes) const {
  if (budget == nullptr || budget->TryCharge(bytes)) return Status::OK();
  return Status::ResourceExhausted(
      "memory budget of " + std::to_string(budget->limit()) +
      " bytes exhausted (" + std::to_string(budget->used()) +
      " used, +" + std::to_string(bytes) + " requested)");
}

}  // namespace maras
