#include "util/run_context.h"

#include <string>

namespace maras {

Status RunContext::Check() const {
  if (cancel != nullptr && cancel->cancelled()) {
    return Status::Cancelled("run cancelled");
  }
  if (deadline.Expired()) {
    return Status::DeadlineExceeded(
        "deadline of " + std::to_string(deadline.configured().count()) +
        "ms exceeded");
  }
  if (budget != nullptr && budget->Exhausted()) {
    return Status::ResourceExhausted(
        "memory budget of " + std::to_string(budget->limit()) +
        " bytes exhausted (" + std::to_string(budget->used()) + " used)");
  }
  return Status::OK();
}

Status RunContext::Charge(size_t bytes) const {
  if (budget == nullptr || budget->TryCharge(bytes)) return Status::OK();
  return Status::ResourceExhausted(
      "memory budget of " + std::to_string(budget->limit()) +
      " bytes exhausted (" + std::to_string(budget->used()) +
      " used, +" + std::to_string(bytes) + " requested)");
}

}  // namespace maras
