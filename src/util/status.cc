#include "util/status.h"

namespace maras {

namespace {

const char* CodeName(Status::Code code) {
  switch (code) {
    case Status::Code::kOk:
      return "OK";
    case Status::Code::kInvalidArgument:
      return "InvalidArgument";
    case Status::Code::kNotFound:
      return "NotFound";
    case Status::Code::kCorruption:
      return "Corruption";
    case Status::Code::kIOError:
      return "IOError";
    case Status::Code::kOutOfRange:
      return "OutOfRange";
    case Status::Code::kAlreadyExists:
      return "AlreadyExists";
    case Status::Code::kFailedPrecondition:
      return "FailedPrecondition";
    case Status::Code::kInternal:
      return "Internal";
    case Status::Code::kCancelled:
      return "Cancelled";
    case Status::Code::kDeadlineExceeded:
      return "DeadlineExceeded";
    case Status::Code::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}

}  // namespace

Status WithContext(const Status& status, std::string_view context) {
  if (status.ok() || context.empty()) return status;
  std::string message(context);
  if (!status.message().empty()) {
    message += ": ";
    message += status.message();
  }
  return Status(status.code(), message);
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result = CodeName(code_);
  if (!message_.empty()) {
    result += ": ";
    result += message_;
  }
  return result;
}

}  // namespace maras
