#ifndef MARAS_UTIL_STATUSOR_H_
#define MARAS_UTIL_STATUSOR_H_

#include <cassert>
#include <optional>
#include <utility>

#include "util/status.h"

namespace maras {

// StatusOr<T> holds either a value of type T or a non-OK Status describing
// why the value is absent. Access to the value when !ok() aborts in debug
// builds (assert), mirroring absl::StatusOr semantics without exceptions.
//
// [[nodiscard]] for the same reason as Status: dropping a StatusOr drops an
// error. Use MARAS_IGNORE_STATUS (util/status.h) for a justified discard.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  // Constructs from an error status. `status` must not be OK; an OK status
  // without a value is replaced by an Internal error.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      status_ = Status::Internal("StatusOr constructed with OK status");
    }
  }

  // Constructs from a value.
  StatusOr(T value)  // NOLINT
      : status_(Status::OK()), value_(std::move(value)) {}

  StatusOr(const StatusOr&) = default;
  StatusOr& operator=(const StatusOr&) = default;
  StatusOr(StatusOr&&) noexcept = default;
  StatusOr& operator=(StatusOr&&) noexcept = default;

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  // Returns the contained value or `fallback` when this holds an error.
  T value_or(T fallback) const& {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

// Assigns the value of `rexpr` (a StatusOr expression) to `lhs`, or returns
// its status from the enclosing function on error.
#define MARAS_ASSIGN_OR_RETURN(lhs, rexpr)             \
  MARAS_ASSIGN_OR_RETURN_IMPL_(                        \
      MARAS_STATUS_CONCAT_(_status_or, __LINE__), lhs, rexpr)

#define MARAS_STATUS_CONCAT_INNER_(a, b) a##b
#define MARAS_STATUS_CONCAT_(a, b) MARAS_STATUS_CONCAT_INNER_(a, b)
#define MARAS_ASSIGN_OR_RETURN_IMPL_(var, lhs, rexpr) \
  auto var = (rexpr);                                 \
  if (!var.ok()) return var.status();                 \
  lhs = std::move(var).value()

}  // namespace maras

#endif  // MARAS_UTIL_STATUSOR_H_
