#include "util/stats.h"

#include <algorithm>
#include <cmath>

namespace maras::stats {

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double Variance(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double mean = Mean(values);
  double sq = 0.0;
  for (double v : values) sq += (v - mean) * (v - mean);
  return sq / static_cast<double>(values.size());
}

double StdDev(const std::vector<double>& values) {
  return std::sqrt(Variance(values));
}

double SampleStdDev(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  double mean = Mean(values);
  double sq = 0.0;
  for (double v : values) sq += (v - mean) * (v - mean);
  return std::sqrt(sq / static_cast<double>(values.size() - 1));
}

double Min(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  return *std::min_element(values.begin(), values.end());
}

double Max(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  return *std::max_element(values.begin(), values.end());
}

double Quantile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  std::sort(values.begin(), values.end());
  double position = q * static_cast<double>(values.size() - 1);
  size_t lower = static_cast<size_t>(position);
  size_t upper = std::min(lower + 1, values.size() - 1);
  double fraction = position - static_cast<double>(lower);
  return values[lower] * (1.0 - fraction) + values[upper] * fraction;
}

double Median(std::vector<double> values) {
  return Quantile(std::move(values), 0.5);
}

double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y) {
  if (x.size() != y.size() || x.size() < 2) return 0.0;
  double mx = Mean(x), my = Mean(y);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    sxy += (x[i] - mx) * (y[i] - my);
    sxx += (x[i] - mx) * (x[i] - mx);
    syy += (y[i] - my) * (y[i] - my);
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

Interval WilsonInterval(size_t successes, size_t trials, double z) {
  if (trials == 0) return {0.0, 1.0};
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denominator = 1.0 + z2 / n;
  const double center = (p + z2 / (2.0 * n)) / denominator;
  const double margin =
      (z / denominator) * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n));
  return {std::max(0.0, center - margin), std::min(1.0, center + margin)};
}

}  // namespace maras::stats
