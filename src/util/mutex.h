#ifndef MARAS_UTIL_MUTEX_H_
#define MARAS_UTIL_MUTEX_H_

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "util/thread_annotations.h"

namespace maras {

// ---------------------------------------------------------------------------
// Capability-annotated lock wrappers. Every lock-bearing subsystem uses
// these instead of the raw std types so that clang's thread-safety analysis
// (util/thread_annotations.h) can prove lock discipline at compile time:
// a field declared GUARDED_BY(mu_) is only readable/writable while mu_ is
// held, and the `clang-thread-safety` preset turns a violation into a build
// break. The wrappers are zero-cost forwarding shims — the std primitives
// underneath are unchanged, so runtime behavior (and TSan's view of it) is
// byte-for-byte what the raw types gave.
//
// maras-lint's `mutex-annotations` rule closes the loop from the other
// side: a raw std::mutex/std::shared_mutex member outside src/util/ is a
// lint error, as is any mutex member no annotation ever names — so a lock
// cannot silently exist outside the capability model.
// ---------------------------------------------------------------------------

// Exclusive lock. Prefer the RAII MutexLock over manual Lock/Unlock pairs;
// the manual surface exists for the rare staged-handoff pattern and stays
// fully annotated so misuse is still a compile error under clang.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  // BasicLockable surface so CondVar (std::condition_variable_any) can
  // unlock/relock around a wait. Annotated identically to Lock/Unlock.
  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }

 private:
  std::mutex mu_;
};

// Reader/writer lock. Writers use Lock/Unlock (exclusive), readers
// LockShared/UnlockShared; GUARDED_BY fields under a SharedMutex are
// readable with the shared capability and writable only with the exclusive
// one — the analysis distinguishes the two.
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  void LockShared() ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() RELEASE_SHARED() { mu_.unlock_shared(); }
  bool TryLockShared() TRY_ACQUIRE_SHARED(true) {
    return mu_.try_lock_shared();
  }

 private:
  std::shared_mutex mu_;
};

// RAII exclusive hold on a Mutex for the enclosing scope.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

// RAII exclusive (writer) hold on a SharedMutex.
class SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex* mu) ACQUIRE(mu) : mu_(mu) {
    mu_->Lock();
  }
  ~WriterMutexLock() RELEASE() { mu_->Unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex* const mu_;
};

// RAII shared (reader) hold on a SharedMutex.
class SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex* mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_->LockShared();
  }
  ~ReaderMutexLock() RELEASE() { mu_->UnlockShared(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex* const mu_;
};

// Condition variable paired with maras::Mutex. Built on
// std::condition_variable_any, which works with any BasicLockable — the
// annotated lock()/unlock() aliases on Mutex exist exactly for this. Wait
// must be called with the mutex held (REQUIRES makes that a compile-time
// obligation under clang); the predicate-less overload returns with it held
// again but, as with any condition variable, possibly spuriously woken —
// callers loop on their condition.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  // Atomically releases *mu, blocks until notified (or spurious wakeup),
  // reacquires *mu before returning.
  void Wait(Mutex* mu) REQUIRES(mu) { cv_.wait(*mu); }

  void NotifyOne() noexcept { cv_.notify_one(); }
  void NotifyAll() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace maras

#endif  // MARAS_UTIL_MUTEX_H_
