#ifndef MARAS_UTIL_SUBPROCESS_H_
#define MARAS_UTIL_SUBPROCESS_H_

#include <sys/types.h>

#include <chrono>
#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "util/run_context.h"
#include "util/status.h"
#include "util/statusor.h"

namespace maras {

// ---------------------------------------------------------------------------
// Process plumbing for the sharded pipeline. Everything that touches raw
// fork/exec, pipes, signals, or waitpid in this codebase lives here — the
// `no-raw-subprocess` lint rule enforces it — so the EINTR/SIGPIPE/zombie
// hygiene is audited once instead of at every call site. The shard
// supervisor (core/shard_supervisor.h) builds on these primitives; nothing
// here knows about mining.
//
// Signal-safety contract: between fork and exec the child calls only
// async-signal-safe functions (dup2/close/execvp/_exit), so spawning from a
// process with live threads (a test running under a thread pool) is safe.
// ---------------------------------------------------------------------------

// Ignores SIGPIPE for the whole process. A worker whose supervisor died —
// or a supervisor whose worker closed its pipe mid-write — must see EPIPE
// from write() and turn it into a Status, not die from the default SIGPIPE
// disposition. Idempotent; drivers call it first thing in main().
void IgnoreSigpipeProcessWide();

// ---------------------------------------------------------------------------
// EINTR-safe syscall wrappers. Any signal delivery (a SIGCHLD from another
// worker, a profiler tick) can interrupt a blocking read/write/waitpid with
// EINTR; these retry until the call completes or fails for a real reason.
// All raw read/write/waitpid call sites in the tree go through them.
// ---------------------------------------------------------------------------

// read(fd, ...) retrying on EINTR. Returns bytes read (0 = EOF) or -1 with
// errno set to the non-EINTR failure.
ssize_t RetryRead(int fd, void* buf, size_t count);

// write(fd, ...) retrying on EINTR. Returns bytes written or -1.
ssize_t RetryWrite(int fd, const void* buf, size_t count);

// waitpid(pid, ...) retrying on EINTR. Returns the reaped pid, 0 (WNOHANG,
// still running), or -1.
pid_t RetryWaitpid(pid_t pid, int* status, int options);

// Writes all of `data`, looping over partial writes and EINTR. IOError
// carries errno text on failure (EPIPE when the reader is gone — which is
// survivable only because of IgnoreSigpipeProcessWide).
Status WriteAllToFd(int fd, std::string_view data);

// Reads until EOF, looping over EINTR.
StatusOr<std::string> ReadAllFromFd(int fd);

// Non-blocking drain: appends whatever is currently readable to `out` and
// returns true while the stream is still open, false once EOF was seen.
// The fd must be O_NONBLOCK (ChildProcess sets its pipe up that way).
StatusOr<bool> DrainAvailable(int fd, std::string* out);

// Absolute path of the running executable (/proc/self/exe), so a test or
// driver can re-invoke itself as a shard worker. Falls back to `argv0`
// when the platform does not expose it.
std::string CurrentExecutablePath(const std::string& argv0);

// ---------------------------------------------------------------------------
// One spawned child process.
// ---------------------------------------------------------------------------

// How a child ended. Default state means "not reaped yet".
struct ExitStatus {
  bool exited = false;     // normal termination; exit_code is valid
  int exit_code = -1;
  bool signaled = false;   // killed by a signal; term_signal is valid
  int term_signal = 0;
  bool timed_out = false;  // the deadline kill in WaitWithDeadline fired
  bool hung = false;       // killed for missing heartbeats (supervisor)

  bool Success() const { return exited && exit_code == 0; }
  // "exit 3", "signal 9 (timed out)", ... for diagnostics.
  std::string Describe() const;
};

class ChildProcess {
 public:
  struct Options {
    // Capture the child's stdout through a pipe (read it via stdout_fd()).
    // The pipe's parent end is O_NONBLOCK | O_CLOEXEC: the supervisor
    // multiplexes many workers with poll() and must never block on one.
    bool capture_stdout = true;
    // Redirect the child's stderr into the same pipe (2>&1), keeping a
    // worker's diagnostics attached to its transcript instead of
    // interleaving on the supervisor's terminal.
    bool merge_stderr = true;
  };

  ChildProcess() = default;
  ~ChildProcess();  // kills (SIGKILL) and reaps a still-running child

  ChildProcess(const ChildProcess&) = delete;
  ChildProcess& operator=(const ChildProcess&) = delete;
  ChildProcess(ChildProcess&& other) noexcept;
  ChildProcess& operator=(ChildProcess&& other) noexcept;

  // fork + execvp. argv[0] is the executable (PATH-searched). The child's
  // stdin is /dev/null. Exec failure surfaces as exit code 127. The
  // overload pair stands in for a default argument: an NSDMI aggregate
  // cannot be a default argument inside its own enclosing class.
  static StatusOr<ChildProcess> Spawn(const std::vector<std::string>& argv);
  static StatusOr<ChildProcess> Spawn(const std::vector<std::string>& argv,
                                      const Options& options);

  pid_t pid() const { return pid_; }
  // Parent end of the stdout pipe; -1 when not captured or already closed.
  int stdout_fd() const { return stdout_fd_; }
  // True until the child has been reaped.
  bool running() const { return pid_ > 0 && !reaped_; }
  // Exit state; meaningful once running() is false.
  const ExitStatus& exit_status() const { return exit_; }

  // Non-blocking reap (WNOHANG). True when the child has exited and was
  // reaped; false when it is still running.
  StatusOr<bool> Poll();

  // Blocks until the child exits or `deadline` expires. On expiry the
  // child gets SIGTERM, then SIGKILL after `term_grace`, and the reaped
  // status is tagged timed_out. Reaping always succeeds eventually:
  // SIGKILL cannot be ignored.
  StatusOr<ExitStatus> WaitWithDeadline(
      const Deadline& deadline,
      std::chrono::milliseconds term_grace = std::chrono::milliseconds(2000));

  // Sends `sig` to the child (no reap).
  Status Kill(int sig);

  // SIGKILL + blocking reap. Used by the supervisor for hung workers and
  // first-error-wins cancellation.
  StatusOr<ExitStatus> KillAndReap();

  // Closes the parent's read end of the stdout pipe (idempotent).
  void CloseStdout();

 private:
  void MoveFrom(ChildProcess&& other) noexcept;
  // Converts a raw waitpid status word into exit_.
  void Record(int wait_status);

  pid_t pid_ = -1;
  int stdout_fd_ = -1;
  bool reaped_ = false;
  ExitStatus exit_;
};

}  // namespace maras

#endif  // MARAS_UTIL_SUBPROCESS_H_
