#ifndef MARAS_CORE_DIVERSIFY_H_
#define MARAS_CORE_DIVERSIFY_H_

#include <vector>

#include "core/ranking.h"

namespace maras::core {

// ---------------------------------------------------------------------------
// Diversified top-k selection. Closed-itemset filtering removes *redundant*
// rules, but one strong interaction still yields several legitimate
// clusters (ADR-subset variants, supersets with a bystander drug), and a
// plain top-k panoramagram fills up with one drug family — the redundancy
// the paper observes in Table 5.2's raw rankings. Maximal-marginal-
// relevance selection balances score against similarity to the already
// selected clusters, so the analyst's first screen covers distinct
// combinations.
// ---------------------------------------------------------------------------

// Jaccard similarity of the two targets' item content, weighing the drug
// overlap twice as heavily as the ADR overlap (combinations define the
// family; ADR variants matter less).
double ClusterSimilarity(const Mcac& a, const Mcac& b);

struct DiversifyOptions {
  size_t k = 10;
  // Trade-off λ ∈ [0, 1]: 1 = pure score (plain top-k), 0 = pure diversity.
  double lambda = 0.7;
};

// Selects k entries from `ranked` (assumed sorted by descending score) by
// greedy MMR: the next pick maximizes
//   λ·normalized_score − (1−λ)·max similarity to the picks so far.
// Returns the picks in selection order.
std::vector<RankedMcac> DiversifiedTopK(const std::vector<RankedMcac>& ranked,
                                        const DiversifyOptions& options);

}  // namespace maras::core

#endif  // MARAS_CORE_DIVERSIFY_H_
