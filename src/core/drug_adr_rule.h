#ifndef MARAS_CORE_DRUG_ADR_RULE_H_
#define MARAS_CORE_DRUG_ADR_RULE_H_

#include <string>

#include "mining/item_dictionary.h"
#include "mining/itemset.h"
#include "mining/transaction_db.h"
#include "util/statusor.h"

namespace maras::core {

// A drug-ADR association (Section 3.1): antecedent ⊆ I_drug,
// consequent ⊆ I_ade. For MARAS the rule of an itemset is its unique
// domain partition: all drugs ⇒ all ADRs.
struct DrugAdrRule {
  mining::Itemset drugs;  // antecedent, sorted
  mining::Itemset adrs;   // consequent, sorted
  size_t support = 0;     // supp(drugs ∪ adrs), absolute count (Formula 2.1)
  size_t antecedent_support = 0;
  size_t consequent_support = 0;
  double confidence = 0.0;
  double lift = 0.0;

  mining::Itemset CompleteItemset() const {
    return mining::Union(drugs, adrs);
  }
};

// Splits `itemset` by item domain. Returns InvalidArgument when the itemset
// lacks a drug or an ADR (no drug-ADR rule exists for it).
maras::StatusOr<DrugAdrRule> SplitByDomain(
    const mining::Itemset& itemset, const mining::ItemDictionary& items);

// Builds the fully-measured rule for `itemset`: splits by domain and fills
// supports/confidence/lift from exact database counts.
maras::StatusOr<DrugAdrRule> BuildRule(const mining::Itemset& itemset,
                                       const mining::ItemDictionary& items,
                                       const mining::TransactionDatabase& db);

// "[DRUG A] [DRUG B] => [ADR X] [ADR Y]" with names from the dictionary.
std::string RuleToString(const DrugAdrRule& rule,
                         const mining::ItemDictionary& items);

}  // namespace maras::core

#endif  // MARAS_CORE_DRUG_ADR_RULE_H_
