#ifndef MARAS_CORE_SEVERITY_H_
#define MARAS_CORE_SEVERITY_H_

#include <string_view>
#include <vector>

#include "core/mcac.h"
#include "core/ranking.h"
#include "mining/item_dictionary.h"

namespace maras::core {

// ---------------------------------------------------------------------------
// ADR severity classification. The MARAS interface lets the drug-safety
// evaluator "select drug interactions based on some defined criteria of
// interestingness such as drug interactions that may lead to severe ADRs
// which might need immediate action" (Section 4.1). This module provides
// that criterion: a curated severity lexicon over MedDRA-style preferred
// terms, plus filters and a severity-boosted ranking.
// ---------------------------------------------------------------------------

enum class Severity : int {
  kMild = 0,      // discomfort, no intervention required
  kModerate = 1,  // intervention or treatment change required
  kSevere = 2,    // hospitalization, disability, life-threatening
  kFatal = 3,     // death or directly life-ending events
};

const char* SeverityName(Severity severity);

// Severity of a single (normalized, uppercase) preferred term. Terms not in
// the lexicon default to kModerate — unknown reactions in surveillance are
// triaged, not ignored.
Severity SeverityOfTerm(std::string_view preferred_term);

// The highest severity among a rule's consequent ADRs.
Severity MaxSeverity(const DrugAdrRule& rule,
                     const mining::ItemDictionary& items);

// Keeps only clusters whose target reaches `minimum` severity — the
// "severe interactions needing immediate action" view.
std::vector<Mcac> FilterBySeverity(const std::vector<Mcac>& mcacs,
                                   const mining::ItemDictionary& items,
                                   Severity minimum);

// Severity-boosted interestingness: the exclusiveness score scaled by a
// severity weight (1.0 / 1.25 / 1.6 / 2.0 for mild..fatal), so equally
// exclusive clusters triage by clinical stake.
double SeverityWeight(Severity severity);
double SeverityBoostedScore(const Mcac& mcac,
                            const mining::ItemDictionary& items,
                            const ExclusivenessOptions& options);

// Ranks with the severity-boosted score (same tie-breaking as RankMcacs).
std::vector<RankedMcac> RankBySeverityBoostedScore(
    const std::vector<Mcac>& mcacs, const mining::ItemDictionary& items,
    const ExclusivenessOptions& options);

}  // namespace maras::core

#endif  // MARAS_CORE_SEVERITY_H_
