#ifndef MARAS_CORE_STRATIFIED_H_
#define MARAS_CORE_STRATIFIED_H_

#include <string>
#include <vector>

#include "core/disproportionality.h"
#include "core/drug_adr_rule.h"
#include "faers/preprocess.h"
#include "mining/bitmap.h"

namespace maras::core {

// ---------------------------------------------------------------------------
// Stratified signal analysis. Spontaneous-report associations are routinely
// confounded by demographics (an ADR common in the elderly co-occurs with
// every drug the elderly take). Standard practice — and the natural next
// step after the paper's drill-down by "patient's age, health history etc."
// (Section 4.1) — is to stratify the 2×2 tables by sex and age band and
// pool with the Mantel–Haenszel estimator, which measures the association
// *within* strata.
// ---------------------------------------------------------------------------

// Coarse age bands used by FAERS-style analyses.
enum class AgeBand : int {
  kUnknown = 0,
  kChild = 1,    // < 18
  kAdult = 2,    // 18–64
  kElderly = 3,  // >= 65
};

AgeBand AgeBandOf(double age_years);
const char* AgeBandName(AgeBand band);

// One demographic stratum and its 2×2 table for some rule.
struct StratumTable {
  faers::Sex sex = faers::Sex::kUnknown;
  AgeBand age_band = AgeBand::kUnknown;
  ContingencyTable table;

  std::string Label() const;
};

class StratifiedAnalyzer {
 public:
  // `db` and `demographics` must stay alive and aligned (transaction i ↔
  // demographics[i]; missing entries fall into the unknown stratum).
  StratifiedAnalyzer(const mining::TransactionDatabase* db,
                     const std::vector<faers::CaseDemographics>* demographics);

  // The per-stratum 2×2 tables of `rule` (only strata with at least one
  // report are returned, ordered by sex then age band). Production path:
  // the rule's drug/ADR report sets become TidBitmaps once, then every
  // stratum's three cells fall out of AND/AND3+popcount kernels against the
  // prebuilt stratum bitmaps (mining/bitmap.h) — no per-stratum merges.
  std::vector<StratumTable> Tables(const DrugAdrRule& rule) const;

  // Reference implementation of Tables via scalar sorted-merge counting.
  // Kept as the differential oracle: core_stratified_test asserts the two
  // paths produce identical tables on every rule it generates.
  std::vector<StratumTable> TablesScalar(const DrugAdrRule& rule) const;

  // Crude (unstratified) reporting odds ratio, for contrast.
  double CrudeRor(const DrugAdrRule& rule) const;

  // Mantel–Haenszel pooled odds ratio:
  //   OR_MH = Σ_i (a_i·d_i / n_i) / Σ_i (b_i·c_i / n_i).
  // Strata with n_i == 0 are skipped; a zero denominator with a positive
  // numerator is capped at kDisproportionalityCap; 0/0 yields 0.
  double MantelHaenszelRor(const DrugAdrRule& rule) const;

  // Confounding diagnostic: |log(crude) − log(MH)| > log(threshold) — the
  // usual "ratios differ by more than ~20%" rule (threshold 1.2).
  bool IsConfounded(const DrugAdrRule& rule, double threshold = 1.2) const;

  // Batch form of MantelHaenszelRor for a stratified screening run: rule i's
  // full stratification (tables over all sex × age-band strata, then the
  // pooled estimate) is computed by one pool task into slot i. Output is
  // positionally aligned with `rules` and element-identical to calling
  // MantelHaenszelRor serially; num_threads 0/1 degrade to the serial loop.
  std::vector<double> MantelHaenszelRors(const std::vector<DrugAdrRule>& rules,
                                         size_t num_threads) const;

  // Same fan-out for the confounding diagnostic over a batch of rules.
  std::vector<bool> Confounded(const std::vector<DrugAdrRule>& rules,
                               size_t num_threads,
                               double threshold = 1.2) const;

 private:
  // Dense stratum index: sex (3) × age band (4).
  static constexpr size_t kStrata = 12;
  static size_t StratumIndex(faers::Sex sex, AgeBand band);

  const mining::TransactionDatabase* db_;
  const std::vector<faers::CaseDemographics>* demographics_;
  // Sorted transaction ids per stratum, built once.
  std::vector<std::vector<mining::TransactionId>> stratum_tids_;
  // The same strata as dense bitmaps over [0, db->size()), for the kernel
  // counting path. Built once alongside stratum_tids_.
  std::vector<mining::TidBitmap> stratum_bitmaps_;
};

}  // namespace maras::core

#endif  // MARAS_CORE_STRATIFIED_H_
