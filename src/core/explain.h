#ifndef MARAS_CORE_EXPLAIN_H_
#define MARAS_CORE_EXPLAIN_H_

#include <string>
#include <vector>

#include "core/exclusiveness.h"
#include "core/mcac.h"
#include "mining/item_dictionary.h"

namespace maras::core {

// ---------------------------------------------------------------------------
// Score explanation. An evaluator acting on a signal needs to see *why* it
// scored what it did — which context level contributed, how much the
// variation penalty and cardinality decay took away. This decomposes
// Formula 3.5 term by term; the terms provably sum back to the score.
// ---------------------------------------------------------------------------

struct LevelContribution {
  size_t drugs_per_rule = 0;   // k: context antecedent cardinality
  size_t rule_count = 0;       // |v_k|
  double mean_value = 0.0;     // v̄_k
  double contrast = 0.0;       // p − v̄_k
  double decay_factor = 1.0;   // f_d(k)
  double penalty_factor = 1.0; // 1 − θ·Cv(v_k), clamped
  // contrast · decay · penalty / |levels| — this level's share of the score.
  double contribution = 0.0;
};

struct ScoreExplanation {
  double target_value = 0.0;  // p
  double score = 0.0;         // == Exclusiveness(mcac, options)
  std::vector<LevelContribution> levels;  // populated levels only

  // The single strongest context rule (the improvement baseline's view).
  double strongest_context_value = 0.0;
};

// Decomposes the exclusiveness score of `mcac` under `options`.
ScoreExplanation ExplainExclusiveness(const Mcac& mcac,
                                      const ExclusivenessOptions& options);

// Renders the explanation as analyst-readable indented text, resolving drug
// names for the strongest rule per level.
std::string RenderExplanation(const ScoreExplanation& explanation,
                              const Mcac& mcac,
                              const mining::ItemDictionary& items);

}  // namespace maras::core

#endif  // MARAS_CORE_EXPLAIN_H_
