#ifndef MARAS_CORE_SHARD_SUPERVISOR_H_
#define MARAS_CORE_SHARD_SUPERVISOR_H_

#include <chrono>
#include <cstddef>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "core/checkpoint.h"
#include "util/backoff.h"
#include "util/statusor.h"

namespace maras::core {

// ---------------------------------------------------------------------------
// Crash-tolerant multi-process surveillance. The supervisor partitions the
// run into shards — one per quarter (ingest + preprocess), then one per
// item-range slice of the FP-Growth fan-out — and hands each shard to a
// worker process. Workers communicate results exclusively through the
// checksummed atomic-rename checkpoints of core/checkpoint.h: a worker
// either publishes a validated snapshot or leaves nothing usable, so the
// supervisor can kill, retry, and merge without ever reading a torn file.
//
// Failure model:
//   * A worker that exits nonzero, dies on a signal, or goes silent past
//     the heartbeat timeout is killed and retried with exponential backoff
//     and deterministic jitter (util/backoff.h — the delay sequence is a
//     pure function of the shard's stage name and the policy seed).
//   * A worker that dies *after* publishing a valid checkpoint still
//     counts as success: validation inspects the artifact, not the exit.
//   * After max_attempts failed attempts a shard is quarantined: the
//     supervisor computes it in-process — mine shards at an escalated
//     min_support via the PR-3 degradation notch, tagged truncated — so an
//     exhausted retry budget degrades the run instead of failing it.
//   * Any hard supervisor-side error (checkpoint I/O, cancellation,
//     deadline) wins immediately: every live worker is killed and the
//     first error is returned (first-error-wins, threaded through the
//     RunContext in MultiQuarterOptions).
//
// Byte-identity: quarter workers run MultiQuarterPipeline::ProcessQuarter,
// mine workers run FP-Growth restricted to their item-range slice
// (MiningOptions::shard_index/shard_count), and the supervisor merges the
// partial families under the canonical sort before running the shared
// analysis stage functions (core/analysis_stages.h). A clean sharded run
// therefore produces byte-for-byte the SurveillanceAnalysis of the
// single-process RunAnalyzed, at any worker count.
// ---------------------------------------------------------------------------

// One unit of work handed to a worker process.
struct ShardSpec {
  enum class Kind { kQuarter, kMine };

  Kind kind = Kind::kQuarter;
  // kQuarter: index into the run's quarter vector. kMine: shard index.
  size_t index = 0;
  // Total mine shards (kMine only; 1 for quarter shards).
  size_t count = 1;
  // Quarter label (kQuarter only). Filled by whoever owns the corpus; a
  // parsed spec leaves it empty and the worker derives it from its own
  // quarter vector.
  std::string label;

  // Checkpoint stage name: "quarter-<label>" or "mine-<k>-of-<n>".
  std::string Stage() const;
  // Wire form for the --shard= worker flag: "quarter:<i>" or "mine:<k>:<n>".
  std::string Serialize() const;
};

// Parses Serialize() output (the worker side of the --shard= flag).
maras::StatusOr<ShardSpec> ParseShardArg(std::string_view arg);

// Deterministic fault injection inside a worker, at the named points of its
// shard ("start" before any work, "work" after computing, "publish" after
// the checkpoint write). Drives the chaos harness; empty = no chaos.
struct ShardWorkerChaos {
  std::string exit_at;  // _exit(3) at this point
  std::string hang_at;  // silent forever-sleep at this point (no heartbeat)
};

// Everything a worker process needs to execute one shard. The host binary
// reconstructs the quarter vector and options exactly as the supervisor's
// parent did (same flags, same seeds) — workers never receive corpora over
// a pipe, only coordinates into a deterministically re-derivable input.
struct ShardWorkerConfig {
  ShardSpec spec;
  std::string checkpoint_dir;
  const std::vector<faers::QuarterDataset>* quarters = nullptr;
  MultiQuarterOptions pipeline;
  AnalyzerOptions analyzer;
  ShardWorkerChaos chaos;
};

// Worker entry point: executes the shard and publishes its checkpoint.
// Idempotent — a valid existing checkpoint for the shard is reused and the
// worker exits success without recomputing. Progress lines on stdout serve
// as the supervisor's heartbeat.
maras::Status RunShardWorker(const ShardWorkerConfig& config);

struct ShardSupervisorOptions {
  // Mine shard count and the cap on concurrently running workers.
  size_t workers = 2;
  // argv prefix for spawning a worker; the supervisor appends any chaos
  // args and then "--shard=<spec>". The prefix must carry everything the
  // worker needs to rebuild the corpus (and the checkpoint dir).
  std::vector<std::string> worker_command;
  // A worker producing no stdout bytes for this long is presumed hung,
  // killed, and retried.
  std::chrono::milliseconds heartbeat_timeout{10000};
  // Worker attempts per shard before quarantine (>= 1).
  size_t max_attempts = 3;
  // Base backoff policy; each shard derives its own deterministic jitter
  // stream by folding its stage name into the seed.
  BackoffPolicy backoff;
  // Test hook: extra worker argv for (shard, attempt) — injects the chaos
  // flags above on chosen attempts.
  std::function<std::vector<std::string>(const ShardSpec&, size_t attempt)>
      chaos_args;
  // Test hook: runs after attempt `attempt` of `shard` ended, *before* its
  // checkpoint is validated — the window where the harness tears files.
  std::function<void(const ShardSpec&, size_t attempt)> post_attempt;
};

// Supervisor-side accounting of one sharded run.
struct ShardRunReport {
  size_t shards = 0;       // shard specs executed (both phases)
  size_t attempts = 0;     // worker attempts started
  size_t retries = 0;      // attempts beyond each shard's first
  size_t quarantined = 0;  // shards that fell back to in-process execution
  std::vector<std::string> notes;
};

class ShardSupervisor {
 public:
  explicit ShardSupervisor(ShardSupervisorOptions options)
      : options_(std::move(options)) {}

  // The sharded counterpart of MultiQuarterPipeline::RunAnalyzed: phase A
  // runs one worker per quarter, phase B runs `workers` item-range mine
  // workers over the merged corpus, then the analysis tail (closed sets,
  // rules, ranked MCACs) runs in-process on the merged family. Requires
  // `pipeline.checkpoint_dir` — checkpoints are the only worker/supervisor
  // channel. Shards with valid existing checkpoints are reused, so a
  // killed supervisor run resumes where it stopped.
  maras::StatusOr<SurveillanceAnalysis> RunAnalyzed(
      const std::vector<faers::QuarterDataset>& quarters,
      const MultiQuarterOptions& pipeline, const AnalyzerOptions& analyzer,
      RankingMethod method = RankingMethod::kExclusivenessConfidence,
      ShardRunReport* report = nullptr);

  const ShardSupervisorOptions& options() const { return options_; }

 private:
  struct ShardState;

  // Runs one phase's shard set to completion (worker attempts, retries,
  // quarantine fallbacks). `validate` decodes + stores a shard's artifact;
  // `fallback` computes it in-process after the retry budget is exhausted.
  maras::Status RunPhase(
      const std::vector<ShardSpec>& specs,
      const std::function<maras::Status(const ShardSpec&)>& validate,
      const std::function<maras::Status(const ShardSpec&)>& fallback,
      const RunContext& ctx, ShardRunReport* report);

  ShardSupervisorOptions options_;
};

}  // namespace maras::core

#endif  // MARAS_CORE_SHARD_SUPERVISOR_H_
