#include "core/export.h"

#include "core/severity.h"

namespace maras::core {

namespace {

json::Value ItemNames(const mining::Itemset& items,
                      const mining::ItemDictionary& dict) {
  json::Value::Array names;
  for (mining::ItemId id : items) {
    names.push_back(json::Value(dict.Name(id)));
  }
  return json::Value(std::move(names));
}

json::Value RuleObject(const DrugAdrRule& rule,
                       const mining::ItemDictionary& items,
                       bool include_adrs) {
  json::Value::Object object;
  object["drugs"] = ItemNames(rule.drugs, items);
  if (include_adrs) object["adrs"] = ItemNames(rule.adrs, items);
  object["support"] = json::Value(rule.support);
  object["confidence"] = json::Value(rule.confidence);
  object["lift"] = json::Value(rule.lift);
  return json::Value(std::move(object));
}

}  // namespace

json::Value ExportRankedMcacs(const std::vector<RankedMcac>& ranked,
                              const mining::ItemDictionary& items,
                              const RuleSpaceStats& stats,
                              const KnowledgeBase& knowledge_base,
                              const ExportOptions& options) {
  json::Value::Object stats_object;
  stats_object["total_rules"] = json::Value(static_cast<double>(stats.total_rules));
  stats_object["filtered_rules"] =
      json::Value(static_cast<double>(stats.filtered_rules));
  stats_object["closed_mixed"] =
      json::Value(static_cast<double>(stats.closed_mixed));
  stats_object["mcac_count"] =
      json::Value(static_cast<double>(stats.mcac_count));

  json::Value::Array clusters;
  const size_t limit = options.max_clusters == 0
                           ? ranked.size()
                           : std::min(options.max_clusters, ranked.size());
  for (size_t i = 0; i < limit; ++i) {
    const RankedMcac& entry = ranked[i];
    json::Value::Object cluster;
    cluster["rank"] = json::Value(i + 1);
    cluster["score"] = json::Value(entry.score);
    cluster["target"] = RuleObject(entry.mcac.target, items,
                                   /*include_adrs=*/true);
    if (options.include_severity) {
      cluster["severity"] =
          json::Value(SeverityName(MaxSeverity(entry.mcac.target, items)));
    }
    if (options.include_novelty) {
      cluster["novelty"] = json::Value(NoveltyClassName(
          knowledge_base.Classify(entry.mcac.target, items)));
    }
    if (options.include_context) {
      json::Value::Array context;
      for (const auto& level : entry.mcac.levels) {
        for (const DrugAdrRule& rule : level) {
          // The consequent equals the target's; omit it per rule.
          context.push_back(RuleObject(rule, items, /*include_adrs=*/false));
        }
      }
      cluster["context"] = json::Value(std::move(context));
    }
    clusters.push_back(json::Value(std::move(cluster)));
  }

  json::Value::Object document;
  document["stats"] = json::Value(std::move(stats_object));
  document["clusters"] = json::Value(std::move(clusters));
  return json::Value(std::move(document));
}

std::string ExportAnalysisToJson(const AnalysisResult& analysis,
                                 const mining::ItemDictionary& items,
                                 RankingMethod method,
                                 const ExclusivenessOptions& scoring,
                                 const ExportOptions& options) {
  std::vector<RankedMcac> ranked = RankMcacs(analysis.mcacs, method, scoring);
  KnowledgeBase kb = CuratedKnowledgeBase();
  json::Value document =
      ExportRankedMcacs(ranked, items, analysis.stats, kb, options);
  return json::Serialize(document, /*pretty=*/true);
}

}  // namespace maras::core
