#ifndef MARAS_CORE_MULTI_QUARTER_H_
#define MARAS_CORE_MULTI_QUARTER_H_

#include <functional>
#include <string>
#include <vector>

#include "core/analyzer.h"
#include "core/drug_adr_rule.h"
#include "core/ranking.h"
#include "faers/ingest.h"
#include "faers/preprocess.h"
#include "faers/validate.h"
#include "util/statusor.h"

namespace maras {
struct RunContext;
}  // namespace maras

namespace maras::core {

// ---------------------------------------------------------------------------
// Multi-quarter surveillance. FAERS publishes quarterly; a signal analyst
// watches how an interaction's evidence accumulates across extracts. Each
// preprocessed quarter has its own interned vocabulary, so pooling requires
// re-interning by name; trends are computed per quarter on the original
// databases.
// ---------------------------------------------------------------------------

// Pools several preprocessed quarters into one corpus with a fresh shared
// vocabulary. Transactions keep their original order (quarters
// concatenated); primary ids carry over so report drill-down still works.
// Fails if the same name is a drug in one quarter and an ADR in another.
maras::StatusOr<faers::PreprocessResult> MergeQuarters(
    const std::vector<const faers::PreprocessResult*>& quarters);

// Per-quarter evidence for one drug combination => ADRs association,
// resolved by *name* so it spans vocabularies.
struct QuarterlySignalTrend {
  std::string label;            // e.g. "2014Q1"
  size_t reports = 0;           // supp(drugs ∪ adrs) in that quarter
  size_t combination_reports = 0;  // supp(drugs)
  double confidence = 0.0;
};

// Tracks a (drugs, adrs) association across quarters. Names must be in the
// cleaned canonical form; a quarter where some name is absent contributes a
// zero row rather than an error (new drugs enter the market mid-year).
std::vector<QuarterlySignalTrend> TrackSignal(
    const std::vector<const faers::PreprocessResult*>& quarters,
    const std::vector<std::string>& quarter_labels,
    const std::vector<std::string>& drug_names,
    const std::vector<std::string>& adr_names);

// Simple trend verdict over the per-quarter confidences: "emerging" when
// the last quarter's confidence exceeds the first's by `margin`, "fading"
// for the reverse, "stable" otherwise; quarters with no combination
// reports are skipped.
enum class TrendVerdict { kEmerging, kStable, kFading, kInsufficient };
const char* TrendVerdictName(TrendVerdict verdict);
TrendVerdict ClassifyTrend(const std::vector<QuarterlySignalTrend>& trend,
                           double margin = 0.1);

// ---------------------------------------------------------------------------
// Fault-tolerant multi-quarter ingestion. A surveillance run spans many
// quarterly extracts of varying quality; under a permissive policy one
// unreadable quarter must degrade the run (with a recorded warning), not
// abort it. The pipeline reads each quarter under the configured
// IngestPolicy, validates it, optionally removes near-duplicate cases,
// preprocesses it, and pools the survivors with MergeQuarters.
// ---------------------------------------------------------------------------

// One quarterly extract on disk, in FAERS ASCII naming (DEMO14Q1.txt ...).
struct QuarterSource {
  std::string directory;
  int year = 0;
  int quarter = 0;  // 1..4

  std::string Label() const {
    return std::to_string(year) + "Q" + std::to_string(quarter);
  }
};

struct MultiQuarterOptions {
  faers::IngestOptions ingest;
  faers::PreprocessOptions preprocess;
  faers::ValidationOptions validation;
  // Gate each quarter on ValidateDataset + EnforceValidation.
  bool validate = true;
  // Remove near-duplicate cases (faers/dedup) before preprocessing.
  bool remove_duplicates = false;
  // Worker threads for quarter-level fan-out: each quarter's ingest +
  // validate + dedup + preprocess runs as one pool task writing its own
  // outcome slot, and the surviving quarters are merged serially in input
  // order afterwards. Recovery semantics, per-quarter quarantine accounting,
  // warning order, and the merged corpus are identical to the serial run
  // (0 and 1 both mean serial). Under kStrict the error reported is still
  // the first failing quarter in input order.
  size_t num_threads = 1;
  // Resource governance for the whole run (util/run_context.h): the quarter
  // fan-out, mining, closed-set filtering, rule generation and MCAC
  // construction all poll it at bounded intervals and stop cooperatively
  // with kCancelled / kDeadlineExceeded / kResourceExhausted. nullptr =
  // ungoverned.
  const maras::RunContext* context = nullptr;
  // When non-empty, RunAnalyzed snapshots each completed stage into this
  // directory as an atomic, checksummed checkpoint (core/checkpoint.h).
  std::string checkpoint_dir;
  // With checkpoint_dir set: replay completed stages from validated
  // snapshots instead of recomputing them. A missing or corrupt snapshot is
  // recomputed (corruption adds a note naming the rejected file); the
  // resumed result is byte-identical to an uninterrupted run.
  bool resume = false;
  // Test-only crash injection: invoked after each stage — and its
  // checkpoint write — completes. Returning false aborts the run with
  // kCancelled, leaving exactly the on-disk state a process kill at that
  // stage boundary would leave. Never fires for stages replayed from disk.
  std::function<bool(const std::string& stage)> stage_hook;
};

// Per-quarter outcome: either it contributed to the merged corpus, or it was
// skipped with the failure recorded.
struct QuarterOutcome {
  std::string label;
  bool loaded = false;
  std::string error;            // why the quarter was skipped, empty if loaded
  faers::IngestReport ingest;   // this quarter's row-level accounting
};

struct MultiQuarterRun {
  faers::PreprocessResult merged;
  std::vector<QuarterOutcome> outcomes;
  // Combined accounting across all quarters, including one warning per
  // skipped quarter — hand this to the analyzer/report layer so a degraded
  // run is visible downstream.
  faers::IngestReport ingest;
  size_t quarters_loaded = 0;
};

// The full surveillance product of a checkpointed run: the pooled corpus
// plus every analysis stage's output. Field order mirrors stage order.
struct SurveillanceAnalysis {
  MultiQuarterRun run;
  mining::FrequentItemsetResult closed;  // closed itemsets of the mine
  std::vector<DrugAdrRule> rules;        // target drug-ADR rules, in
                                         // canonical closed-itemset order
  std::vector<RankedMcac> ranked;        // MCACs under the chosen method
  RuleSpaceStats stats;
  // Mining support actually used — higher than requested when the
  // degradation ladder escalated it under a memory budget.
  size_t min_support_used = 0;
  bool truncated = false;
  // Degradation and resume/corruption notes, in the order they happened.
  std::vector<std::string> notes;
  // Stages replayed from checkpoints instead of recomputed.
  size_t stages_resumed = 0;
};

class MultiQuarterPipeline {
 public:
  explicit MultiQuarterPipeline(MultiQuarterOptions options)
      : options_(std::move(options)) {}

  // Ingests quarterly extracts from disk. Under kStrict the first failing
  // quarter fails the run (with the quarter's label as context); under
  // kPermissive/kQuarantine failing quarters are skipped with warnings and
  // the run fails only when *no* quarter survives.
  maras::StatusOr<MultiQuarterRun> RunFromDirs(
      const std::vector<QuarterSource>& sources) const;

  // Same recovery semantics for quarters already parsed into memory.
  maras::StatusOr<MultiQuarterRun> Run(
      const std::vector<faers::QuarterDataset>& quarters) const;

  // End-to-end checkpointed surveillance: ingest + merge, then mine closed
  // itemsets (with the analyzer's degradation ladder when governed),
  // generate target rules, build and rank MCACs. With checkpoint_dir set,
  // each stage — "quarter-<label>", "closed", "rules", "ranked" — is
  // snapshotted after it completes; with resume additionally set, completed
  // stages are replayed from disk. The result is byte-identical to an
  // uninterrupted run at any thread count.
  maras::StatusOr<SurveillanceAnalysis> RunAnalyzed(
      const std::vector<faers::QuarterDataset>& quarters,
      const AnalyzerOptions& analyzer,
      RankingMethod method = RankingMethod::kExclusivenessConfidence) const;

  const MultiQuarterOptions& options() const { return options_; }

  // Validation + dedup + preprocess for one readable quarter. Public so a
  // shard worker process (core/shard_supervisor.h) can run exactly this
  // code on its assigned quarter — byte-identity across execution modes
  // depends on both paths sharing one implementation.
  maras::StatusOr<faers::PreprocessResult> ProcessQuarter(
      const faers::QuarterDataset& dataset, QuarterOutcome* outcome) const;

 private:
  MultiQuarterOptions options_;
};

}  // namespace maras::core

#endif  // MARAS_CORE_MULTI_QUARTER_H_
