#ifndef MARAS_CORE_MULTI_QUARTER_H_
#define MARAS_CORE_MULTI_QUARTER_H_

#include <string>
#include <vector>

#include "core/drug_adr_rule.h"
#include "faers/preprocess.h"
#include "util/statusor.h"

namespace maras::core {

// ---------------------------------------------------------------------------
// Multi-quarter surveillance. FAERS publishes quarterly; a signal analyst
// watches how an interaction's evidence accumulates across extracts. Each
// preprocessed quarter has its own interned vocabulary, so pooling requires
// re-interning by name; trends are computed per quarter on the original
// databases.
// ---------------------------------------------------------------------------

// Pools several preprocessed quarters into one corpus with a fresh shared
// vocabulary. Transactions keep their original order (quarters
// concatenated); primary ids carry over so report drill-down still works.
// Fails if the same name is a drug in one quarter and an ADR in another.
maras::StatusOr<faers::PreprocessResult> MergeQuarters(
    const std::vector<const faers::PreprocessResult*>& quarters);

// Per-quarter evidence for one drug combination => ADRs association,
// resolved by *name* so it spans vocabularies.
struct QuarterlySignalTrend {
  std::string label;            // e.g. "2014Q1"
  size_t reports = 0;           // supp(drugs ∪ adrs) in that quarter
  size_t combination_reports = 0;  // supp(drugs)
  double confidence = 0.0;
};

// Tracks a (drugs, adrs) association across quarters. Names must be in the
// cleaned canonical form; a quarter where some name is absent contributes a
// zero row rather than an error (new drugs enter the market mid-year).
std::vector<QuarterlySignalTrend> TrackSignal(
    const std::vector<const faers::PreprocessResult*>& quarters,
    const std::vector<std::string>& quarter_labels,
    const std::vector<std::string>& drug_names,
    const std::vector<std::string>& adr_names);

// Simple trend verdict over the per-quarter confidences: "emerging" when
// the last quarter's confidence exceeds the first's by `margin`, "fading"
// for the reverse, "stable" otherwise; quarters with no combination
// reports are skipped.
enum class TrendVerdict { kEmerging, kStable, kFading, kInsufficient };
const char* TrendVerdictName(TrendVerdict verdict);
TrendVerdict ClassifyTrend(const std::vector<QuarterlySignalTrend>& trend,
                           double margin = 0.1);

}  // namespace maras::core

#endif  // MARAS_CORE_MULTI_QUARTER_H_
