#include "core/explain.h"

#include <algorithm>
#include <cstdio>

#include "util/string_util.h"

namespace maras::core {

namespace {

double MeasureOf(const DrugAdrRule& rule, RuleMeasure measure) {
  return measure == RuleMeasure::kConfidence ? rule.confidence : rule.lift;
}

}  // namespace

ScoreExplanation ExplainExclusiveness(const Mcac& mcac,
                                      const ExclusivenessOptions& options) {
  ScoreExplanation explanation;
  explanation.target_value = MeasureOf(mcac.target, options.measure);
  const double n = static_cast<double>(mcac.target.drugs.size());

  // First pass: collect populated levels (the 1/|V| divisor needs the
  // count before contributions are finalized).
  std::vector<size_t> populated;
  for (size_t level_idx = 0; level_idx < mcac.levels.size(); ++level_idx) {
    if (!mcac.levels[level_idx].empty()) populated.push_back(level_idx);
  }
  if (populated.empty()) return explanation;
  const double divisor = static_cast<double>(populated.size());

  for (size_t level_idx : populated) {
    const auto& level = mcac.levels[level_idx];
    LevelContribution contribution;
    contribution.drugs_per_rule = level_idx + 1;
    contribution.rule_count = level.size();
    std::vector<double> values;
    values.reserve(level.size());
    for (const DrugAdrRule& rule : level) {
      double v = MeasureOf(rule, options.measure);
      values.push_back(v);
      explanation.strongest_context_value =
          std::max(explanation.strongest_context_value, v);
    }
    double sum = 0.0;
    for (double v : values) sum += v;
    contribution.mean_value = sum / static_cast<double>(values.size());
    contribution.contrast =
        explanation.target_value - contribution.mean_value;
    const double k = static_cast<double>(contribution.drugs_per_rule);
    contribution.decay_factor = options.use_decay ? 1.0 - (k - 1.0) / n : 1.0;
    contribution.penalty_factor = std::clamp(
        1.0 - options.theta * CoefficientOfVariation(values), 0.0, 1.0);
    contribution.contribution = contribution.contrast *
                                contribution.decay_factor *
                                contribution.penalty_factor / divisor;
    explanation.score += contribution.contribution;
    explanation.levels.push_back(contribution);
  }
  return explanation;
}

std::string RenderExplanation(const ScoreExplanation& explanation,
                              const Mcac& mcac,
                              const mining::ItemDictionary& items) {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line),
                "exclusiveness %.4f  (target %s = %.4f)\n",
                explanation.score, "value", explanation.target_value);
  out += line;
  for (const LevelContribution& level : explanation.levels) {
    std::snprintf(line, sizeof(line),
                  "  level %zu (%zu rule%s): mean %.4f, contrast %+.4f x "
                  "decay %.2f x penalty %.2f -> %+.4f\n",
                  level.drugs_per_rule, level.rule_count,
                  level.rule_count == 1 ? "" : "s", level.mean_value,
                  level.contrast, level.decay_factor, level.penalty_factor,
                  level.contribution);
    out += line;
    // Name the strongest rule of this level — the analyst's first suspect
    // for a single-drug explanation.
    const auto& rules = mcac.levels[level.drugs_per_rule - 1];
    if (!rules.empty()) {
      out += "    strongest: " + items.Render(rules.front().drugs) +
             " (conf " + FormatDouble(rules.front().confidence, 3) + ")\n";
    }
  }
  return out;
}

}  // namespace maras::core
