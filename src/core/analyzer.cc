#include "core/analyzer.h"

#include <optional>

#include "mining/closed_itemsets.h"
#include "mining/fpgrowth.h"
#include "mining/rules.h"
#include "util/thread_pool.h"

namespace maras::core {

namespace {

// Counts drug/ADR items of `itemset` without materializing the split.
void CountDomains(const mining::Itemset& itemset,
                  const mining::ItemDictionary& items, size_t* drugs,
                  size_t* adrs) {
  *drugs = 0;
  *adrs = 0;
  for (mining::ItemId id : itemset) {
    if (items.Domain(id) == mining::ItemDomain::kDrug) {
      ++*drugs;
    } else {
      ++*adrs;
    }
  }
}

}  // namespace

maras::StatusOr<AnalysisResult> MarasAnalyzer::Analyze(
    const faers::PreprocessResult& input) const {
  return Analyze(input.items, input.transactions);
}

maras::StatusOr<AnalysisResult> MarasAnalyzer::Analyze(
    const faers::PreprocessResult& input,
    const faers::IngestReport& ingest) const {
  MARAS_ASSIGN_OR_RETURN(AnalysisResult result,
                         Analyze(input.items, input.transactions));
  if (ingest.rows_rejected > 0) {
    result.ingest_warnings.push_back("ingestion: " + ingest.Summary());
  }
  result.ingest_warnings.insert(result.ingest_warnings.end(),
                                ingest.warnings.begin(),
                                ingest.warnings.end());
  return result;
}

maras::StatusOr<AnalysisResult> MarasAnalyzer::Analyze(
    const mining::ItemDictionary& items,
    const mining::TransactionDatabase& db) const {
  if (db.empty()) {
    return maras::Status::FailedPrecondition("empty transaction database");
  }
  AnalysisResult result;

  // Phase 1: frequent itemsets (FP-Growth, Section 5.2).
  mining::FpGrowth miner(options_.mining);
  MARAS_ASSIGN_OR_RETURN(mining::FrequentItemsetResult frequent,
                         miner.Mine(db));

  // Phase 2: rule-space statistics. "Total rules" is the traditional
  // unconstrained rule count; "filtered" keeps drugs ⇒ ADRs form.
  result.stats.total_rules =
      mining::CountAllPartitionRules(frequent, options_.min_confidence)
          .total_rules;
  for (const mining::FrequentItemset& fi : frequent.itemsets()) {
    size_t drugs = 0, adrs = 0;
    CountDomains(fi.items, items, &drugs, &adrs);
    if (drugs >= 1 && adrs >= 1) ++result.stats.filtered_rules;
  }

  // Phase 3: closed itemsets -> supported drug-ADR associations
  // (Lemma 3.4.2), multi-drug targets only. Candidate selection is cheap and
  // stays serial; the per-candidate work — database closure verification and
  // exact context supports for up to 2^n − 2 subsets — fans out to the pool,
  // one independent slot per candidate. The serial in-order reduce below
  // keeps mcac order and error choice identical to a serial run.
  mining::FrequentItemsetResult closed =
      mining::FilterClosed(frequent, options_.mining.num_threads);
  McacBuilder builder(&items, &db);
  std::vector<const mining::FrequentItemset*> candidates;
  for (const mining::FrequentItemset& fi : closed.itemsets()) {
    size_t drugs = 0, adrs = 0;
    CountDomains(fi.items, items, &drugs, &adrs);
    if (drugs >= 1 && adrs >= 1) ++result.stats.closed_mixed;
    if (drugs < 2 || adrs < 1) continue;
    if (drugs > options_.max_drugs_per_rule) continue;
    candidates.push_back(&fi);
  }
  // nullopt = candidate filtered out (not closed in db / low confidence).
  std::vector<std::optional<maras::StatusOr<Mcac>>> built(candidates.size());
  maras::ParallelFor(
      options_.mining.num_threads, candidates.size(), [&](size_t i) {
        const mining::FrequentItemset& fi = *candidates[i];
        if (options_.verify_closed_in_db &&
            !mining::IsClosedInDatabase(db, fi.items)) {
          return;
        }
        maras::StatusOr<DrugAdrRule> target = BuildRule(fi.items, items, db);
        if (!target.ok()) {
          built[i].emplace(target.status());
          return;
        }
        if (target->confidence < options_.min_confidence) return;
        built[i].emplace(builder.Build(*target));
      });
  for (std::optional<maras::StatusOr<Mcac>>& slot : built) {
    if (!slot.has_value()) continue;
    MARAS_ASSIGN_OR_RETURN(Mcac mcac, std::move(*slot));
    result.mcacs.push_back(std::move(mcac));
  }
  result.stats.mcac_count = result.mcacs.size();
  return result;
}

std::vector<uint64_t> SupportingReports(
    const mining::TransactionDatabase& db,
    const std::vector<uint64_t>& primary_ids, const DrugAdrRule& rule) {
  std::vector<uint64_t> reports;
  for (mining::TransactionId tid :
       db.ContainingTransactions(rule.CompleteItemset())) {
    if (tid < primary_ids.size()) reports.push_back(primary_ids[tid]);
  }
  return reports;
}

}  // namespace maras::core
