#include "core/analyzer.h"

#include <optional>

#include <algorithm>

#include "core/analysis_stages.h"
#include "mining/closed_itemsets.h"
#include "mining/concept_lattice.h"
#include "mining/fpgrowth.h"
#include "mining/rules.h"
#include "util/run_context.h"
#include "util/thread_pool.h"

namespace maras::core {

namespace {

// Counts drug/ADR items of `itemset` without materializing the split.
void CountDomains(const mining::Itemset& itemset,
                  const mining::ItemDictionary& items, size_t* drugs,
                  size_t* adrs) {
  *drugs = 0;
  *adrs = 0;
  for (mining::ItemId id : itemset) {
    if (items.Domain(id) == mining::ItemDomain::kDrug) {
      ++*drugs;
    } else {
      ++*adrs;
    }
  }
}

}  // namespace

maras::StatusOr<GovernedMineResult> MineWithDegradation(
    const mining::TransactionDatabase& db, mining::MiningOptions options,
    const DegradationOptions& degradation) {
  GovernedMineResult outcome;
  for (size_t attempt = 0;; ++attempt) {
    mining::FpGrowth miner(options);
    maras::StatusOr<mining::FrequentItemsetResult> mined = miner.Mine(db);
    if (mined.ok()) {
      outcome.frequent = *std::move(mined);
      outcome.min_support_used = options.min_support;
      return outcome;
    }
    if (!degradation.enabled || !mined.status().IsResourceExhausted() ||
        attempt >= degradation.max_retries) {
      return mined.status();
    }
    const size_t escalated = std::max(
        options.min_support + 1,
        static_cast<size_t>(static_cast<double>(options.min_support) *
                            degradation.support_factor));
    outcome.notes.push_back(
        "memory budget exhausted at min_support=" +
        std::to_string(options.min_support) + "; retrying at min_support=" +
        std::to_string(escalated) + " (result will be truncated)");
    options.min_support = escalated;
    outcome.truncated = true;
  }
}

maras::StatusOr<AnalysisResult> MarasAnalyzer::Analyze(
    const faers::PreprocessResult& input) const {
  return Analyze(input.items, input.transactions);
}

maras::StatusOr<AnalysisResult> MarasAnalyzer::Analyze(
    const faers::PreprocessResult& input,
    const faers::IngestReport& ingest) const {
  MARAS_ASSIGN_OR_RETURN(AnalysisResult result,
                         Analyze(input.items, input.transactions));
  if (ingest.rows_rejected > 0) {
    result.ingest_warnings.push_back("ingestion: " + ingest.Summary());
  }
  result.ingest_warnings.insert(result.ingest_warnings.end(),
                                ingest.warnings.begin(),
                                ingest.warnings.end());
  return result;
}

maras::StatusOr<AnalysisResult> MarasAnalyzer::Analyze(
    const mining::ItemDictionary& items,
    const mining::TransactionDatabase& db) const {
  if (db.empty()) {
    return maras::Status::FailedPrecondition("empty transaction database");
  }
  AnalysisResult result;
  const RunContext* ctx = options_.mining.context;
  const RunContext ungoverned;
  const RunContext& governed = ctx != nullptr ? *ctx : ungoverned;

  // Phase 1: frequent itemsets (FP-Growth, Section 5.2), with the opt-in
  // degradation ladder when the run is governed by a memory budget.
  MARAS_ASSIGN_OR_RETURN(
      GovernedMineResult mined,
      MineWithDegradation(db, options_.mining, options_.degradation));
  result.truncated = mined.truncated;
  result.degradation_notes = std::move(mined.notes);
  const mining::FrequentItemsetResult& frequent = mined.frequent;

  // Phase 2: rule-space statistics. "Total rules" is the traditional
  // unconstrained rule count; "filtered" keeps drugs ⇒ ADRs form.
  MARAS_ASSIGN_OR_RETURN(
      mining::RuleSpaceCount rule_count,
      mining::CountAllPartitionRules(frequent, options_.min_confidence,
                                     governed));
  result.stats.total_rules = rule_count.total_rules;
  for (const mining::FrequentItemset& fi : frequent.itemsets()) {
    size_t drugs = 0, adrs = 0;
    CountDomains(fi.items, items, &drugs, &adrs);
    if (drugs >= 1 && adrs >= 1) ++result.stats.filtered_rules;
  }

  // Phase 3: closed itemsets -> supported drug-ADR associations
  // (Lemma 3.4.2), multi-drug targets only. Candidate selection is cheap and
  // stays serial; the per-candidate work — database closure verification and
  // exact context supports for up to 2^n − 2 subsets — fans out to the pool,
  // one independent slot per candidate. The serial in-order reduce below
  // keeps mcac order and error choice identical to a serial run.
  MARAS_ASSIGN_OR_RETURN(
      mining::FrequentItemsetResult closed,
      mining::FilterClosed(frequent, options_.mining.num_threads, governed));
  // Concept-lattice index over the closed family: subset supports inside the
  // MCAC fan-out below become memoized downward walks instead of per-subset
  // database intersections, when the lattice path is exact for these options
  // (see LatticeMcacEligible). One cache is shared by every fan-out task.
  mining::ConceptLattice lattice_storage;
  const mining::ConceptLattice* lattice = nullptr;
  if (LatticeMcacEligible(options_)) {
    MARAS_ASSIGN_OR_RETURN(lattice_storage,
                           BuildLatticeStage(closed, options_, governed));
    lattice = &lattice_storage;
  }
  mining::SubsetSupportCache support_cache(&db);
  McacBuilder builder =
      lattice != nullptr ? McacBuilder(&items, &db, lattice, &support_cache)
                         : McacBuilder(&items, &db);
  std::vector<const mining::FrequentItemset*> candidates;
  for (const mining::FrequentItemset& fi : closed.itemsets()) {
    size_t drugs = 0, adrs = 0;
    CountDomains(fi.items, items, &drugs, &adrs);
    if (drugs >= 1 && adrs >= 1) ++result.stats.closed_mixed;
    if (drugs < 2 || adrs < 1) continue;
    if (drugs > options_.max_drugs_per_rule) continue;
    candidates.push_back(&fi);
  }
  // nullopt = candidate filtered out (not closed in db / low confidence).
  // TryParallelFor polls the run context before each candidate, so a
  // cancellation or deadline trip stops scheduling the remaining ones.
  std::vector<std::optional<maras::StatusOr<Mcac>>> built(candidates.size());
  maras::Status mcac_status = maras::TryParallelFor(
      options_.mining.num_threads, candidates.size(), governed,
      [&](size_t i) -> maras::Status {
        const mining::FrequentItemset& fi = *candidates[i];
        if (options_.verify_closed_in_db &&
            !mining::IsClosedInDatabase(db, fi.items)) {
          return maras::Status::OK();
        }
        maras::StatusOr<DrugAdrRule> target = BuildRule(fi.items, items, db);
        if (!target.ok()) {
          built[i].emplace(target.status());
          return maras::Status::OK();
        }
        if (target->confidence < options_.min_confidence) {
          return maras::Status::OK();
        }
        built[i].emplace(builder.Build(*target));
        return maras::Status::OK();
      });
  if (!mcac_status.ok()) {
    return maras::WithContext(mcac_status, "mcac-build");
  }
  for (std::optional<maras::StatusOr<Mcac>>& slot : built) {
    if (!slot.has_value()) continue;
    MARAS_ASSIGN_OR_RETURN(Mcac mcac, std::move(*slot));
    result.mcacs.push_back(std::move(mcac));
  }
  result.stats.mcac_count = result.mcacs.size();
  return result;
}

std::vector<uint64_t> SupportingReports(
    const mining::TransactionDatabase& db,
    const std::vector<uint64_t>& primary_ids, const DrugAdrRule& rule) {
  std::vector<uint64_t> reports;
  for (mining::TransactionId tid :
       db.ContainingTransactions(rule.CompleteItemset())) {
    if (tid < primary_ids.size()) reports.push_back(primary_ids[tid]);
  }
  return reports;
}

}  // namespace maras::core
