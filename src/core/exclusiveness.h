#ifndef MARAS_CORE_EXCLUSIVENESS_H_
#define MARAS_CORE_EXCLUSIVENESS_H_

#include <vector>

#include "core/mcac.h"

namespace maras::core {

// Which rule measure feeds the exclusiveness contrast. The paper evaluates
// both (Section 3.6 / Table 5.2).
enum class RuleMeasure {
  kConfidence,
  kLift,
};

struct ExclusivenessOptions {
  // θ ∈ [0, 1]: strength of the coefficient-of-variation penalty
  // (Formula 3.4/3.5). 0 disables the penalty.
  double theta = 0.5;
  // Apply the linear cardinality decay f_d(k) = 1 − (k−1)/n (Formula 3.5).
  // Off reduces the per-level score to the Formula 3.4 form; exposed as an
  // ablation knob.
  bool use_decay = true;
  RuleMeasure measure = RuleMeasure::kConfidence;
};

// Formula 3.3: plain mean contrast p − mean(v) over the flattened context.
double ExclusivenessSimple(const Mcac& mcac, RuleMeasure measure);

// Formula 3.4: (p − mean(v)) · (1 − θ·Cv(v)) over the flattened context.
// The penalty factor is clamped to [0, 1] so an extreme coefficient of
// variation cannot flip the score's sign.
double ExclusivenessWithVariation(const Mcac& mcac, RuleMeasure measure,
                                  double theta);

// Formula 3.5 (the MARAS score): per-cardinality-level contrast with linear
// decay and per-level CoV penalty,
//   (1/|V|) Σ_k (p − v̄_k) · f_d(k) · (1 − θ·Cv(v_k)),
// where |V| is the number of context levels and f_d(k) = 1 − (k−1)/n.
double Exclusiveness(const Mcac& mcac, const ExclusivenessOptions& options);

// Formula 3.5 computed from raw measure values: `target` is the target
// rule's value p, `level_values[k-1]` the context values with k drugs, and
// the antecedent size n is level_values.size() + 1. This is the scoring
// core; Exclusiveness(Mcac) extracts values and delegates here. It is also
// what the user-study simulator scores *perceived* (noisy) values with.
double ExclusivenessFromValues(
    double target, const std::vector<std::vector<double>>& level_values,
    const ExclusivenessOptions& options);

// Bayardo's improvement (Formula 3.2): conf(A ⇒ B) − max over proper
// sub-antecedent rules, the single-sub-rule baseline the paper contrasts
// exclusiveness against. Negative improvement marks a dominated rule.
double Improvement(const Mcac& mcac, RuleMeasure measure = RuleMeasure::kConfidence);

// Coefficient of variation stddev/mean of `values` (population stddev);
// 0 when fewer than 2 values or when the mean is 0.
double CoefficientOfVariation(const std::vector<double>& values);

}  // namespace maras::core

#endif  // MARAS_CORE_EXCLUSIVENESS_H_
