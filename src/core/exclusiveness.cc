#include "core/exclusiveness.h"

#include <algorithm>
#include <cmath>

namespace maras::core {

namespace {

double MeasureOf(const DrugAdrRule& rule, RuleMeasure measure) {
  return measure == RuleMeasure::kConfidence ? rule.confidence : rule.lift;
}

std::vector<double> LevelValues(const std::vector<DrugAdrRule>& level,
                                RuleMeasure measure) {
  std::vector<double> values;
  values.reserve(level.size());
  for (const DrugAdrRule& rule : level) {
    values.push_back(MeasureOf(rule, measure));
  }
  return values;
}

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

// Clamped CoV penalty factor (1 − θ·Cv) ∈ [0, 1].
double PenaltyFactor(const std::vector<double>& values, double theta) {
  double factor = 1.0 - theta * CoefficientOfVariation(values);
  return std::clamp(factor, 0.0, 1.0);
}

}  // namespace

double CoefficientOfVariation(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  double mean = Mean(values);
  if (mean == 0.0) return 0.0;
  double sq = 0.0;
  for (double v : values) sq += (v - mean) * (v - mean);
  double stddev = std::sqrt(sq / static_cast<double>(values.size()));
  return stddev / std::abs(mean);
}

double ExclusivenessSimple(const Mcac& mcac, RuleMeasure measure) {
  std::vector<double> all;
  for (const auto& level : mcac.levels) {
    for (const DrugAdrRule& rule : level) {
      all.push_back(MeasureOf(rule, measure));
    }
  }
  return MeasureOf(mcac.target, measure) - Mean(all);
}

double ExclusivenessWithVariation(const Mcac& mcac, RuleMeasure measure,
                                  double theta) {
  std::vector<double> all;
  for (const auto& level : mcac.levels) {
    for (const DrugAdrRule& rule : level) {
      all.push_back(MeasureOf(rule, measure));
    }
  }
  return (MeasureOf(mcac.target, measure) - Mean(all)) *
         PenaltyFactor(all, theta);
}

double ExclusivenessFromValues(
    double target, const std::vector<std::vector<double>>& level_values,
    const ExclusivenessOptions& options) {
  const double n = static_cast<double>(level_values.size() + 1);
  double sum = 0.0;
  size_t populated_levels = 0;
  for (size_t level_idx = 0; level_idx < level_values.size(); ++level_idx) {
    const auto& values = level_values[level_idx];
    if (values.empty()) continue;
    ++populated_levels;
    const double k = static_cast<double>(level_idx + 1);  // drugs per rule
    double term = target - Mean(values);
    if (options.use_decay) {
      term *= 1.0 - (k - 1.0) / n;  // f_d(k), weight 1 at k = 1
    }
    term *= PenaltyFactor(values, options.theta);
    sum += term;
  }
  if (populated_levels == 0) return 0.0;
  return sum / static_cast<double>(populated_levels);
}

double Exclusiveness(const Mcac& mcac, const ExclusivenessOptions& options) {
  std::vector<std::vector<double>> level_values;
  level_values.reserve(mcac.levels.size());
  for (const auto& level : mcac.levels) {
    level_values.push_back(LevelValues(level, options.measure));
  }
  return ExclusivenessFromValues(MeasureOf(mcac.target, options.measure),
                                 level_values, options);
}

double Improvement(const Mcac& mcac, RuleMeasure measure) {
  double best_context = 0.0;
  bool any = false;
  for (const auto& level : mcac.levels) {
    for (const DrugAdrRule& rule : level) {
      double v = MeasureOf(rule, measure);
      if (!any || v > best_context) {
        best_context = v;
        any = true;
      }
    }
  }
  double target = MeasureOf(mcac.target, measure);
  return any ? target - best_context : target;
}

}  // namespace maras::core
