#include "core/drug_adr_rule.h"

#include "mining/measures.h"

namespace maras::core {

maras::StatusOr<DrugAdrRule> SplitByDomain(
    const mining::Itemset& itemset, const mining::ItemDictionary& items) {
  DrugAdrRule rule;
  for (mining::ItemId id : itemset) {
    if (items.Domain(id) == mining::ItemDomain::kDrug) {
      rule.drugs.push_back(id);
    } else {
      rule.adrs.push_back(id);
    }
  }
  if (rule.drugs.empty()) {
    return maras::Status::InvalidArgument("itemset has no drug items");
  }
  if (rule.adrs.empty()) {
    return maras::Status::InvalidArgument("itemset has no ADR items");
  }
  return rule;
}

maras::StatusOr<DrugAdrRule> BuildRule(const mining::Itemset& itemset,
                                       const mining::ItemDictionary& items,
                                       const mining::TransactionDatabase& db) {
  MARAS_ASSIGN_OR_RETURN(DrugAdrRule rule, SplitByDomain(itemset, items));
  rule.support = db.Support(itemset);
  rule.antecedent_support = db.Support(rule.drugs);
  rule.consequent_support = db.Support(rule.adrs);
  rule.confidence = mining::Confidence(rule.support, rule.antecedent_support);
  rule.lift = mining::Lift(rule.support, rule.antecedent_support,
                           rule.consequent_support, db.size());
  return rule;
}

std::string RuleToString(const DrugAdrRule& rule,
                         const mining::ItemDictionary& items) {
  return items.Render(rule.drugs) + " => " + items.Render(rule.adrs);
}

}  // namespace maras::core
