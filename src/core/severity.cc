#include "core/severity.h"

#include <algorithm>
#include <string>
#include <unordered_map>

#include "core/exclusiveness.h"

namespace maras::core {

namespace {

// Curated severity lexicon over the preferred terms this repository's
// vocabulary uses (extend freely; unknown terms default to kModerate).
const std::unordered_map<std::string, Severity>& Lexicon() {
  static const auto* lexicon = new std::unordered_map<std::string, Severity>{
      // Fatal / directly life-ending.
      {"DEATH", Severity::kFatal},
      {"COMPLETED SUICIDE", Severity::kFatal},
      {"CARDIAC ARREST", Severity::kFatal},
      {"TOXIC EPIDERMAL NECROLYSIS", Severity::kFatal},
      {"TORSADE DE POINTES", Severity::kFatal},
      // Severe: life-threatening, hospitalization, lasting disability.
      {"ACUTE RENAL FAILURE", Severity::kSevere},
      {"RENAL FAILURE", Severity::kSevere},
      {"HEPATIC FAILURE", Severity::kSevere},
      {"HAEMORRHAGE", Severity::kSevere},
      {"GASTROINTESTINAL HAEMORRHAGE", Severity::kSevere},
      {"MYOCARDIAL INFARCTION", Severity::kSevere},
      {"CEREBROVASCULAR ACCIDENT", Severity::kSevere},
      {"PULMONARY EMBOLISM", Severity::kSevere},
      {"DEEP VEIN THROMBOSIS", Severity::kSevere},
      {"ANAPHYLACTIC REACTION", Severity::kSevere},
      {"STEVENS-JOHNSON SYNDROME", Severity::kSevere},
      // The normalizer maps '-' to ' ', so the interned form differs.
      {"STEVENS JOHNSON SYNDROME", Severity::kSevere},
      {"SEPSIS", Severity::kSevere},
      {"PANCYTOPENIA", Severity::kSevere},
      {"FEBRILE NEUTROPENIA", Severity::kSevere},
      {"CONVULSION", Severity::kSevere},
      {"SUICIDAL IDEATION", Severity::kSevere},
      {"RHABDOMYOLYSIS", Severity::kSevere},
      {"OSTEONECROSIS OF JAW", Severity::kSevere},
      {"ACUTE GRAFT VERSUS HOST DISEASE", Severity::kSevere},
      {"CHRONIC GRAFT VERSUS HOST DISEASE", Severity::kSevere},
      {"QT PROLONGED", Severity::kSevere},
      {"RENAL IMPAIRMENT", Severity::kSevere},
      {"ANGIOEDEMA", Severity::kSevere},
      {"OVERDOSE", Severity::kSevere},
      // Mild: discomfort without intervention.
      {"NAUSEA", Severity::kMild},
      {"HEADACHE", Severity::kMild},
      {"DIZZINESS", Severity::kMild},
      {"FATIGUE", Severity::kMild},
      {"RASH", Severity::kMild},
      {"PRURITUS", Severity::kMild},
      {"INSOMNIA", Severity::kMild},
      {"SOMNOLENCE", Severity::kMild},
      {"CONSTIPATION", Severity::kMild},
      {"DYSGEUSIA", Severity::kMild},
      {"TINNITUS", Severity::kMild},
      {"ALOPECIA", Severity::kMild},
      {"WEIGHT DECREASED", Severity::kMild},
      {"WEIGHT INCREASED", Severity::kMild},
      {"PAIN", Severity::kMild},
      {"ANXIETY", Severity::kMild},
      // Everything else defaults to kModerate via SeverityOfTerm.
  };
  return *lexicon;
}

}  // namespace

const char* SeverityName(Severity severity) {
  switch (severity) {
    case Severity::kMild:
      return "mild";
    case Severity::kModerate:
      return "moderate";
    case Severity::kSevere:
      return "severe";
    case Severity::kFatal:
      return "fatal";
  }
  return "?";
}

Severity SeverityOfTerm(std::string_view preferred_term) {
  auto it = Lexicon().find(std::string(preferred_term));
  return it == Lexicon().end() ? Severity::kModerate : it->second;
}

Severity MaxSeverity(const DrugAdrRule& rule,
                     const mining::ItemDictionary& items) {
  Severity highest = Severity::kMild;
  for (mining::ItemId id : rule.adrs) {
    Severity s = SeverityOfTerm(items.Name(id));
    if (static_cast<int>(s) > static_cast<int>(highest)) highest = s;
  }
  return highest;
}

std::vector<Mcac> FilterBySeverity(const std::vector<Mcac>& mcacs,
                                   const mining::ItemDictionary& items,
                                   Severity minimum) {
  std::vector<Mcac> kept;
  for (const Mcac& mcac : mcacs) {
    if (static_cast<int>(MaxSeverity(mcac.target, items)) >=
        static_cast<int>(minimum)) {
      kept.push_back(mcac);
    }
  }
  return kept;
}

double SeverityWeight(Severity severity) {
  switch (severity) {
    case Severity::kMild:
      return 1.0;
    case Severity::kModerate:
      return 1.25;
    case Severity::kSevere:
      return 1.6;
    case Severity::kFatal:
      return 2.0;
  }
  return 1.0;
}

double SeverityBoostedScore(const Mcac& mcac,
                            const mining::ItemDictionary& items,
                            const ExclusivenessOptions& options) {
  return Exclusiveness(mcac, options) *
         SeverityWeight(MaxSeverity(mcac.target, items));
}

std::vector<RankedMcac> RankBySeverityBoostedScore(
    const std::vector<Mcac>& mcacs, const mining::ItemDictionary& items,
    const ExclusivenessOptions& options) {
  std::vector<RankedMcac> ranked;
  ranked.reserve(mcacs.size());
  for (const Mcac& mcac : mcacs) {
    ranked.push_back(
        RankedMcac{mcac, SeverityBoostedScore(mcac, items, options)});
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const RankedMcac& a, const RankedMcac& b) {
              if (a.score != b.score) return a.score > b.score;
              if (a.mcac.target.support != b.mcac.target.support) {
                return a.mcac.target.support > b.mcac.target.support;
              }
              if (a.mcac.target.drugs != b.mcac.target.drugs) {
                return a.mcac.target.drugs < b.mcac.target.drugs;
              }
              return a.mcac.target.adrs < b.mcac.target.adrs;
            });
  return ranked;
}

}  // namespace maras::core
