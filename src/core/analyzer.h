#ifndef MARAS_CORE_ANALYZER_H_
#define MARAS_CORE_ANALYZER_H_

#include <cstdint>
#include <vector>

#include "core/drug_adr_rule.h"
#include "core/mcac.h"
#include "core/ranking.h"
#include "faers/preprocess.h"
#include "mining/frequent_itemsets.h"
#include "util/statusor.h"

namespace maras::core {

// Opt-in graceful degradation under a memory budget: when a governed mine
// trips kResourceExhausted, escalate min_support one notch and retry rather
// than failing the run. A deadline or cancellation trip is never retried —
// the time is already gone. Results produced this way are tagged truncated.
struct DegradationOptions {
  bool enabled = false;
  // Upper bound on escalation retries before the budget error is returned.
  size_t max_retries = 3;
  // One notch: min_support <- max(min_support + 1, min_support * factor).
  double support_factor = 2.0;
};

// End-to-end MARAS analysis options (mining + contextual ranking).
struct AnalyzerOptions {
  // mining.num_threads also drives the analyzer's own fan-out (closed-set
  // filtering and per-candidate MCAC construction); results are
  // byte-identical at any thread count.
  mining::MiningOptions mining{.min_support = 10, .max_itemset_size = 8};
  // Minimum confidence a *target* rule must reach to form an MCAC.
  double min_confidence = 0.0;
  // Targets combining more drugs than this are skipped (context size is
  // 2^n − 2; FAERS interactions of interest involve 2–4 drugs).
  size_t max_drugs_per_rule = 5;
  ExclusivenessOptions exclusiveness;
  // Re-verify each candidate's closedness directly against the database.
  // Required for exactness when mining.max_itemset_size truncates the
  // itemset family (the in-family closedness filter cannot see equal-support
  // supersets beyond the cap); costs one closure computation per candidate.
  bool verify_closed_in_db = true;
  // Answer MCAC subset-support queries from the concept-lattice index (built
  // once over the closed family) with a shared cross-target memo, instead of
  // re-counting each subset from the transaction database. Output bytes are
  // identical either way — the lattice differential oracle proves it — so
  // this is purely a speed knob, kept as a knob so the oracle can force the
  // enumeration path. The lattice path engages only when it is exact: the
  // mine was uncapped (mining.max_itemset_size == 0) or verify_closed_in_db
  // guarantees database-closed targets.
  bool lattice_mcac = true;
  // Graceful degradation for governed runs (mining.context with a budget).
  DegradationOptions degradation;
};

// Rule-space statistics backing Fig. 5.1.
struct RuleSpaceStats {
  uint64_t total_rules = 0;      // traditional rules A ⇒ B, any partition
  uint64_t filtered_rules = 0;   // drug ⇒ ADR associations (one per mixed itemset)
  uint64_t closed_mixed = 0;     // ... with closed complete itemset
  uint64_t mcac_count = 0;       // closed, multi-drug targets (the MCACs)
};

struct AnalysisResult {
  RuleSpaceStats stats;
  // All MCACs (unranked). Use RankMcacs or Analyzer helpers to order them.
  std::vector<Mcac> mcacs;
  // Ingestion warnings carried through from a degraded (permissive or
  // quarantine) ingest so downstream consumers see what the mined corpus is
  // missing. Empty for clean strict runs — the exported JSON is unchanged.
  std::vector<std::string> ingest_warnings;
  // True when the mine completed only after degradation raised min_support —
  // the result is sound for the support it reports but omits rarer patterns.
  bool truncated = false;
  // One note per degradation retry, e.g. which budget trip raised support
  // from what to what. Empty for clean runs.
  std::vector<std::string> degradation_notes;
};

// The outcome of a (possibly degraded) governed mining pass.
struct GovernedMineResult {
  mining::FrequentItemsetResult frequent;
  size_t min_support_used = 0;
  bool truncated = false;
  std::vector<std::string> notes;
};

// Mines `db` under `options`, applying the degradation ladder on
// kResourceExhausted when enabled: each retry escalates min_support one
// notch (the failed attempt has already released its budget charges, so the
// retry starts from clean accounting). Every other error — including
// deadline and cancellation — propagates unchanged.
maras::StatusOr<GovernedMineResult> MineWithDegradation(
    const mining::TransactionDatabase& db, mining::MiningOptions options,
    const DegradationOptions& degradation);

// The MARAS pipeline facade (Fig. 1.1): mine closed drug-ADR associations
// from preprocessed reports, build each multi-drug target's contextual
// cluster, and rank by the chosen interestingness method.
class MarasAnalyzer {
 public:
  explicit MarasAnalyzer(AnalyzerOptions options) : options_(options) {}

  // Runs mining + MCAC construction on a preprocessed quarter.
  maras::StatusOr<AnalysisResult> Analyze(
      const faers::PreprocessResult& input) const;

  // As above, attaching the ingestion accounting of the corpus: the
  // IngestReport's warnings (plus a summary line when rows were rejected)
  // land in AnalysisResult::ingest_warnings.
  maras::StatusOr<AnalysisResult> Analyze(
      const faers::PreprocessResult& input,
      const faers::IngestReport& ingest) const;

  // Lower-level entry point when transactions were built elsewhere.
  maras::StatusOr<AnalysisResult> Analyze(
      const mining::ItemDictionary& items,
      const mining::TransactionDatabase& db) const;

  const AnalyzerOptions& options() const { return options_; }

 private:
  AnalyzerOptions options_;
};

// Primary ids of the reports supporting `rule` — the paper's drill-down from
// a pattern back to the raw reports (Section 4.1). `primary_ids[i]` must be
// the id of transaction i (as produced by the preprocessor).
std::vector<uint64_t> SupportingReports(
    const mining::TransactionDatabase& db,
    const std::vector<uint64_t>& primary_ids, const DrugAdrRule& rule);

}  // namespace maras::core

#endif  // MARAS_CORE_ANALYZER_H_
