#ifndef MARAS_CORE_REPORT_GENERATOR_H_
#define MARAS_CORE_REPORT_GENERATOR_H_

#include <string>
#include <vector>

#include "core/analyzer.h"
#include "core/knowledge_base.h"
#include "core/multi_quarter.h"
#include "core/ranking.h"
#include "core/severity.h"

namespace maras::core {

// ---------------------------------------------------------------------------
// Quarterly surveillance report generation — the Markdown artifact a
// drug-safety evaluator circulates: top signals with triage columns,
// severe-and-undocumented alerts, and watchlist trends. Library-level so
// any front end (CLI example, scheduled job, service) renders the same
// report; `examples/surveillance_report` is a thin shell over this.
// ---------------------------------------------------------------------------

struct WatchlistEntry {
  std::string label;                    // e.g. "ASPIRIN + WARFARIN"
  std::vector<QuarterlySignalTrend> trend;
};

struct ReportInputs {
  std::string title = "MARAS quarterly surveillance report";
  // The analyzed (current) quarter.
  const faers::PreprocessResult* current = nullptr;
  const AnalysisResult* analysis = nullptr;
  // Ranked clusters (typically exclusiveness order).
  const std::vector<RankedMcac>* ranked = nullptr;
  const KnowledgeBase* knowledge_base = nullptr;
  // Optional quarter-over-quarter watchlist section.
  std::vector<WatchlistEntry> watchlist;
};

struct ReportOptions {
  size_t top_signals = 10;
  size_t max_alerts = 5;
  // Alerts require at least this severity AND no knowledge-base entry.
  Severity alert_severity = Severity::kSevere;
};

// Renders the Markdown report. Requires current/analysis/ranked/
// knowledge_base to be set; returns InvalidArgument otherwise.
maras::StatusOr<std::string> GenerateMarkdownReport(
    const ReportInputs& inputs, const ReportOptions& options = {});

}  // namespace maras::core

#endif  // MARAS_CORE_REPORT_GENERATOR_H_
