#ifndef MARAS_CORE_CHECKPOINT_H_
#define MARAS_CORE_CHECKPOINT_H_

#include <optional>
#include <string>
#include <vector>

#include "core/analyzer.h"
#include "core/multi_quarter.h"
#include "core/ranking.h"
#include "faers/preprocess.h"
#include "mining/frequent_itemsets.h"
#include "util/statusor.h"

namespace maras::core {

// ---------------------------------------------------------------------------
// Atomic, checksummed pipeline checkpoints. After each multi-quarter stage
// (per-quarter ingest, closed-set mining, rule generation, MCAC ranking) the
// pipeline serializes a snapshot so a crashed run can resume instead of
// recomputing hours of mining. Guarantees:
//
//   * Atomicity: snapshots are published by write-to-temp + fsync + rename
//     (AtomicWriteStringToFile), so a crash mid-write leaves the previous
//     snapshot (or nothing), never a half-written one under the final name.
//   * Detection: every snapshot is framed with magic, format version, stage
//     name, payload size and an FNV-1a 64 checksum. A torn, truncated or
//     bit-flipped file is rejected as Corruption — naming the file and stage
//     — and the pipeline recomputes the stage from scratch.
//   * Fidelity: payload codecs (util/binary_io.h) round-trip every field
//     bit-exactly, doubles included, so a resumed run is byte-identical to
//     an uninterrupted one. The checkpoint tests assert this by comparing
//     re-encoded stage payloads.
// ---------------------------------------------------------------------------

inline constexpr uint32_t kCheckpointVersion = 1;

// FNV-1a 64-bit over `data`; the snapshot integrity checksum.
uint64_t Fnv1a64(std::string_view data);

// "<dir>/<stage>.ckpt" — stage names are restricted to [A-Za-z0-9._-] by the
// pipeline, so the stage is usable as a file name verbatim.
std::string CheckpointPath(const std::string& dir, const std::string& stage);

// Frames `payload` for `stage` and publishes it atomically under `dir`
// (creating the directory if needed).
maras::Status WriteCheckpoint(const std::string& dir, const std::string& stage,
                              const std::string& payload);

// Reads and verifies the snapshot for `stage`. NotFound when no snapshot
// exists; Corruption — with the file path and stage in the message — when
// the file fails any framing check (magic, version, stage, size, checksum).
maras::StatusOr<std::string> ReadCheckpoint(const std::string& dir,
                                            const std::string& stage);

// ---------------------------------------------------------------------------
// Stage payload codecs. Encoders are infallible (any in-memory value is
// encodable); decoders return Corruption on any structural violation and
// never read past the payload.
// ---------------------------------------------------------------------------

std::string EncodePreprocessResult(const faers::PreprocessResult& result);
maras::StatusOr<faers::PreprocessResult> DecodePreprocessResult(
    std::string_view payload);

// One per-quarter ingest stage: the outcome (accounting, skip reason) plus
// the preprocessed corpus when the quarter loaded.
struct QuarterCheckpoint {
  QuarterOutcome outcome;
  std::optional<faers::PreprocessResult> result;
};

std::string EncodeQuarterCheckpoint(const QuarterCheckpoint& quarter);
maras::StatusOr<QuarterCheckpoint> DecodeQuarterCheckpoint(
    std::string_view payload);

std::string EncodeItemsetResult(const mining::FrequentItemsetResult& result);
maras::StatusOr<mining::FrequentItemsetResult> DecodeItemsetResult(
    std::string_view payload);

// The closed-mining stage: the closed family plus everything about the mine
// that downstream stages and the final report need (rule-space statistics
// are computed from the pre-filter frequent family, which is deliberately
// not persisted — the closed family is enough for every later stage).
struct ClosedCheckpoint {
  RuleSpaceStats stats;
  uint64_t min_support_used = 0;
  bool truncated = false;
  std::vector<std::string> notes;
  mining::FrequentItemsetResult closed;
};

std::string EncodeClosedCheckpoint(const ClosedCheckpoint& closed);
maras::StatusOr<ClosedCheckpoint> DecodeClosedCheckpoint(
    std::string_view payload);

// One worker's slice of the sharded frequent-itemset mine: which slice of
// the top-level fan-out it covered and under which parameters, plus the
// partial family it produced. The supervisor rejects a decoded shard whose
// parameters disagree with the plan (a stale file from an earlier run with
// different settings must not be merged), so the parameters travel inside
// the checksummed payload rather than only in the file name.
struct MineShardCheckpoint {
  uint64_t shard_index = 0;
  uint64_t shard_count = 1;
  uint64_t min_support = 0;
  uint64_t max_itemset_size = 0;
  mining::FrequentItemsetResult frequent;
};

std::string EncodeMineShardCheckpoint(const MineShardCheckpoint& shard);
maras::StatusOr<MineShardCheckpoint> DecodeMineShardCheckpoint(
    std::string_view payload);

std::string EncodeRules(const std::vector<DrugAdrRule>& rules);
maras::StatusOr<std::vector<DrugAdrRule>> DecodeRules(
    std::string_view payload);

std::string EncodeRankedMcacs(const std::vector<RankedMcac>& ranked);
maras::StatusOr<std::vector<RankedMcac>> DecodeRankedMcacs(
    std::string_view payload);

}  // namespace maras::core

#endif  // MARAS_CORE_CHECKPOINT_H_
