#include "core/shard_supervisor.h"

#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <charconv>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <optional>
#include <thread>
#include <utility>

#include "core/analysis_stages.h"
#include "mining/fpgrowth.h"
#include "util/subprocess.h"

namespace maras::core {

namespace {

using SteadyClock = std::chrono::steady_clock;

constexpr char kQuarterPrefix[] = "quarter:";
constexpr char kMinePrefix[] = "mine:";

maras::StatusOr<size_t> ParseSize(std::string_view text) {
  size_t value = 0;
  const char* end = text.data() + text.size();
  auto [ptr, ec] = std::from_chars(text.data(), end, value);
  if (ec != std::errc() || ptr != end) {
    return maras::Status::InvalidArgument("bad shard number '" +
                                          std::string(text) + "'");
  }
  return value;
}

// Worker heartbeat: one line per progress point, flushed immediately so the
// supervisor's poll() loop sees bytes (the pipe is the liveness signal).
void WorkerSay(const std::string& line) {
  std::fputs((line + "\n").c_str(), stdout);
  std::fflush(stdout);
}

// Deterministic fault injection at a worker progress point. The exit path
// uses _exit so no destructor or atexit handler runs — exactly the state a
// SIGKILL at this instruction would leave.
void MaybeChaos(const ShardWorkerChaos& chaos, const char* point) {
  if (chaos.exit_at == point) {
    std::fflush(stdout);
    _exit(3);
  }
  if (chaos.hang_at == point) {
    // Hang silently: no heartbeat bytes, never exits. Only the
    // supervisor's heartbeat kill (or the harness) ends this.
    for (;;) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }
}

// The quarantine escalation notch — same formula as the PR-3 degradation
// ladder in MineWithDegradation, so a quarantined mine shard degrades
// exactly one rung.
size_t EscalateSupport(size_t min_support, double factor) {
  return std::max(min_support + 1,
                  static_cast<size_t>(static_cast<double>(min_support) *
                                      factor));
}

maras::Status RunQuarterShard(const ShardWorkerConfig& config) {
  if (config.spec.index >= config.quarters->size()) {
    return maras::Status::InvalidArgument(
        "quarter shard index " + std::to_string(config.spec.index) +
        " out of range (have " + std::to_string(config.quarters->size()) +
        " quarters)");
  }
  const faers::QuarterDataset& dataset = (*config.quarters)[config.spec.index];
  const std::string label = dataset.Label();
  const std::string stage = "quarter-" + label;
  MaybeChaos(config.chaos, "start");
  // Idempotent reuse: a valid snapshot from an earlier attempt (possibly by
  // a worker that died right after publishing) is the finished product.
  maras::StatusOr<std::string> existing =
      ReadCheckpoint(config.checkpoint_dir, stage);
  if (existing.ok()) {
    maras::StatusOr<QuarterCheckpoint> decoded =
        DecodeQuarterCheckpoint(*existing);
    if (decoded.ok() && decoded->outcome.label == label) {
      WorkerSay("reused " + stage);
      return maras::Status::OK();
    }
  }
  QuarterCheckpoint quarter;
  quarter.outcome.label = label;
  MultiQuarterPipeline pipeline(config.pipeline);
  maras::StatusOr<faers::PreprocessResult> result =
      pipeline.ProcessQuarter(dataset, &quarter.outcome);
  if (result.ok()) {
    quarter.outcome.loaded = true;
    quarter.result = *std::move(result);
  } else {
    // A quarter that fails ingestion is a *recorded* outcome, not a worker
    // failure: the supervisor's reduce applies the ingest policy (strict
    // aborts, permissive warns), mirroring the single-process run.
    quarter.outcome.error = result.status().ToString();
  }
  WorkerSay("processed " + stage);
  MaybeChaos(config.chaos, "work");
  MARAS_RETURN_IF_ERROR(WriteCheckpoint(config.checkpoint_dir, stage,
                                        EncodeQuarterCheckpoint(quarter)));
  MaybeChaos(config.chaos, "publish");
  WorkerSay("published " + stage);
  return maras::Status::OK();
}

maras::Status RunMineShard(const ShardWorkerConfig& config) {
  const size_t k = config.spec.index;
  const size_t n = config.spec.count;
  const std::string stage = config.spec.Stage();
  const mining::MiningOptions& base = config.analyzer.mining;
  MaybeChaos(config.chaos, "start");
  maras::StatusOr<std::string> existing =
      ReadCheckpoint(config.checkpoint_dir, stage);
  if (existing.ok()) {
    maras::StatusOr<MineShardCheckpoint> decoded =
        DecodeMineShardCheckpoint(*existing);
    if (decoded.ok() && decoded->shard_index == k &&
        decoded->shard_count == n &&
        decoded->min_support == base.min_support &&
        decoded->max_itemset_size == base.max_itemset_size) {
      WorkerSay("reused " + stage);
      return maras::Status::OK();
    }
  }
  // Reconstruct the merged corpus from the quarter checkpoints, in input
  // order — the decode is bit-exact and MergeQuarters is deterministic, so
  // every mine worker (and the supervisor) sees the same database.
  std::vector<faers::PreprocessResult> loaded;
  for (const faers::QuarterDataset& dataset : *config.quarters) {
    MARAS_ASSIGN_OR_RETURN(
        std::string payload,
        ReadCheckpoint(config.checkpoint_dir, "quarter-" + dataset.Label()));
    MARAS_ASSIGN_OR_RETURN(QuarterCheckpoint quarter,
                           DecodeQuarterCheckpoint(payload));
    if (quarter.result.has_value()) {
      loaded.push_back(*std::move(quarter.result));
    }
  }
  std::vector<const faers::PreprocessResult*> pointers;
  pointers.reserve(loaded.size());
  for (const faers::PreprocessResult& quarter : loaded) {
    pointers.push_back(&quarter);
  }
  MARAS_ASSIGN_OR_RETURN(faers::PreprocessResult merged,
                         MergeQuarters(pointers));
  WorkerSay("merged " + std::to_string(loaded.size()) + " quarters");
  mining::MiningOptions mining_options = base;
  mining_options.shard_index = k;
  mining_options.shard_count = n;
  mining_options.context = nullptr;  // workers are ungoverned; the
                                     // supervisor owns run governance
  mining::FpGrowth miner(mining_options);
  MARAS_ASSIGN_OR_RETURN(mining::FrequentItemsetResult frequent,
                         miner.Mine(merged.transactions));
  WorkerSay("mined " + std::to_string(frequent.size()) + " itemsets");
  MaybeChaos(config.chaos, "work");
  MineShardCheckpoint shard;
  shard.shard_index = k;
  shard.shard_count = n;
  shard.min_support = base.min_support;
  shard.max_itemset_size = base.max_itemset_size;
  shard.frequent = std::move(frequent);
  MARAS_RETURN_IF_ERROR(WriteCheckpoint(config.checkpoint_dir, stage,
                                        EncodeMineShardCheckpoint(shard)));
  MaybeChaos(config.chaos, "publish");
  WorkerSay("published " + stage);
  return maras::Status::OK();
}

// Crash-injection hook shared with the single-process pipeline: fires after
// a supervisor-side stage (and its checkpoint write) completed.
maras::Status FireStageHook(const MultiQuarterOptions& options,
                            const std::string& stage) {
  if (options.stage_hook && !options.stage_hook(stage)) {
    return maras::Status::Cancelled("injected crash at stage " + stage);
  }
  return maras::Status::OK();
}

}  // namespace

std::string ShardSpec::Stage() const {
  if (kind == Kind::kQuarter) return "quarter-" + label;
  return "mine-" + std::to_string(index) + "-of-" + std::to_string(count);
}

std::string ShardSpec::Serialize() const {
  if (kind == Kind::kQuarter) return "quarter:" + std::to_string(index);
  return "mine:" + std::to_string(index) + ":" + std::to_string(count);
}

maras::StatusOr<ShardSpec> ParseShardArg(std::string_view arg) {
  ShardSpec spec;
  if (arg.rfind(kQuarterPrefix, 0) == 0) {
    spec.kind = ShardSpec::Kind::kQuarter;
    MARAS_ASSIGN_OR_RETURN(
        spec.index, ParseSize(arg.substr(sizeof(kQuarterPrefix) - 1)));
    return spec;
  }
  if (arg.rfind(kMinePrefix, 0) == 0) {
    spec.kind = ShardSpec::Kind::kMine;
    std::string_view rest = arg.substr(sizeof(kMinePrefix) - 1);
    const size_t colon = rest.find(':');
    if (colon == std::string_view::npos) {
      return maras::Status::InvalidArgument("bad mine shard spec '" +
                                            std::string(arg) + "'");
    }
    MARAS_ASSIGN_OR_RETURN(spec.index, ParseSize(rest.substr(0, colon)));
    MARAS_ASSIGN_OR_RETURN(spec.count, ParseSize(rest.substr(colon + 1)));
    if (spec.count == 0 || spec.index >= spec.count) {
      return maras::Status::InvalidArgument("bad shard coordinates '" +
                                            std::string(arg) + "'");
    }
    return spec;
  }
  return maras::Status::InvalidArgument("unknown shard spec '" +
                                        std::string(arg) + "'");
}

maras::Status RunShardWorker(const ShardWorkerConfig& config) {
  if (config.quarters == nullptr) {
    return maras::Status::InvalidArgument("worker has no quarter corpus");
  }
  if (config.checkpoint_dir.empty()) {
    return maras::Status::InvalidArgument("worker needs a checkpoint dir");
  }
  if (config.spec.kind == ShardSpec::Kind::kQuarter) {
    return RunQuarterShard(config);
  }
  return RunMineShard(config);
}

// Per-shard supervision state. The event loop below is single-threaded:
// children run concurrently, but all bookkeeping happens in one poll()
// cycle, so no locks are needed and scheduling is easy to reason about.
struct ShardSupervisor::ShardState {
  ShardSpec spec;
  size_t attempts = 0;  // attempts started
  bool done = false;
  std::optional<ChildProcess> child;
  SteadyClock::time_point last_beat{};
  SteadyClock::time_point eligible{};  // earliest next spawn (backoff)
  std::string output;                  // rolling tail of worker stdout
  std::unique_ptr<Backoff> backoff;
};

maras::Status ShardSupervisor::RunPhase(
    const std::vector<ShardSpec>& specs,
    const std::function<maras::Status(const ShardSpec&)>& validate,
    const std::function<maras::Status(const ShardSpec&)>& fallback,
    const RunContext& ctx, ShardRunReport* report) {
  report->shards += specs.size();
  std::vector<ShardState> states(specs.size());
  size_t pending = 0;
  const SteadyClock::time_point start = SteadyClock::now();
  for (size_t i = 0; i < specs.size(); ++i) {
    ShardState& state = states[i];
    state.spec = specs[i];
    state.eligible = start;
    // Each shard's jitter stream is a pure function of (policy seed, stage
    // name): reproducible per run, desynchronized across shards.
    BackoffPolicy policy = options_.backoff;
    policy.seed ^= Fnv1a64(state.spec.Stage());
    state.backoff = std::make_unique<Backoff>(policy);
    // Resume: a shard whose artifact already validates never spawns.
    if (validate(state.spec).ok()) {
      state.done = true;
      report->notes.push_back("shard " + state.spec.Stage() +
                              ": reused existing checkpoint");
    } else {
      ++pending;
    }
  }

  // Ends one attempt: runs the harness hook, validates the artifact, and
  // either completes the shard, schedules a retry, or quarantines it.
  auto finish_attempt = [&](ShardState& state,
                            const std::string& how) -> maras::Status {
    if (options_.post_attempt) {
      options_.post_attempt(state.spec, state.attempts - 1);
    }
    maras::Status valid = validate(state.spec);
    if (valid.ok()) {
      // Success is judged by the artifact alone — a worker killed after
      // its atomic rename still delivered.
      state.done = true;
      --pending;
      return maras::Status::OK();
    }
    if (state.attempts >= options_.max_attempts) {
      ++report->quarantined;
      report->notes.push_back(
          "shard " + state.spec.Stage() + ": quarantined after " +
          std::to_string(state.attempts) + " attempts (last worker: " + how +
          "; checkpoint: " + valid.ToString() + "); running in-process");
      MARAS_RETURN_IF_ERROR(fallback(state.spec));
      state.done = true;
      --pending;
      return maras::Status::OK();
    }
    ++report->retries;
    const std::chrono::milliseconds delay =
        state.backoff->Delay(state.attempts - 1);
    state.eligible = SteadyClock::now() + delay;
    report->notes.push_back("shard " + state.spec.Stage() + ": attempt " +
                            std::to_string(state.attempts) + " failed (" +
                            how + "); retrying in " +
                            std::to_string(delay.count()) + "ms");
    return maras::Status::OK();
  };

  size_t running = 0;
  while (pending > 0) {
    // First-error-wins: a governance trip kills every live worker (the
    // ChildProcess destructors SIGKILL + reap on unwind) and returns.
    maras::Status governed = ctx.Check();
    if (!governed.ok()) {
      return maras::WithContext(governed, "shard supervisor");
    }
    // Spawn every eligible shard up to the concurrency cap.
    const SteadyClock::time_point now = SteadyClock::now();
    for (ShardState& state : states) {
      if (state.done || state.child.has_value() ||
          running >= options_.workers || now < state.eligible) {
        continue;
      }
      std::vector<std::string> argv = options_.worker_command;
      if (options_.chaos_args) {
        std::vector<std::string> extra =
            options_.chaos_args(state.spec, state.attempts);
        argv.insert(argv.end(), extra.begin(), extra.end());
      }
      argv.push_back("--shard=" + state.spec.Serialize());
      ++state.attempts;
      ++report->attempts;
      maras::StatusOr<ChildProcess> child = ChildProcess::Spawn(argv);
      if (!child.ok()) {
        // Spawn failure (fork/pipe exhaustion) consumes an attempt like
        // any other worker death; quarantine eventually absorbs it.
        MARAS_RETURN_IF_ERROR(finish_attempt(
            state, "spawn failed: " + child.status().ToString()));
        continue;
      }
      state.child = std::move(child).value();
      state.last_beat = SteadyClock::now();
      ++running;
    }

    // Multiplex the live workers' stdout pipes; bytes are heartbeats.
    std::vector<pollfd> fds;
    std::vector<ShardState*> fd_owner;
    for (ShardState& state : states) {
      if (state.child.has_value() && state.child->stdout_fd() >= 0) {
        fds.push_back(pollfd{state.child->stdout_fd(), POLLIN, 0});
        fd_owner.push_back(&state);
      }
    }
    if (fds.empty()) {
      // Nothing live (all waiting out their backoff): tick the clock.
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      continue;
    }
    int ready = 0;
    do {
      ready = poll(fds.data(), static_cast<nfds_t>(fds.size()), 20);
    } while (ready == -1 && errno == EINTR);
    if (ready == -1) {
      return maras::Status::IOError("poll: " +
                                    std::string(std::strerror(errno)));
    }

    for (size_t i = 0; i < fds.size(); ++i) {
      ShardState& state = *fd_owner[i];
      bool ended = false;
      std::string how;
      if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
        const size_t before = state.output.size();
        maras::StatusOr<bool> open =
            DrainAvailable(fds[i].fd, &state.output);
        if (state.output.size() > before) {
          state.last_beat = SteadyClock::now();
        }
        if (state.output.size() > 8192) {
          state.output.erase(0, state.output.size() - 4096);
        }
        if (!open.ok() || !*open) {
          // EOF (or a broken pipe): the worker is finishing — reap it,
          // with a hard bound in case it lingers after closing stdout.
          maras::StatusOr<ExitStatus> reaped =
              state.child->WaitWithDeadline(Deadline::AfterMillis(5000));
          MARAS_RETURN_IF_ERROR(reaped.status());
          ended = true;
          how = reaped->Describe();
        }
      }
      if (!ended && SteadyClock::now() - state.last_beat >
                        options_.heartbeat_timeout) {
        // Silent past the heartbeat budget: presumed hung, killed.
        maras::StatusOr<ExitStatus> reaped = state.child->KillAndReap();
        MARAS_RETURN_IF_ERROR(reaped.status());
        ended = true;
        how = "hung (no heartbeat for " +
              std::to_string(options_.heartbeat_timeout.count()) + "ms)";
      }
      if (ended) {
        state.child.reset();
        --running;
        MARAS_RETURN_IF_ERROR(finish_attempt(state, how));
      }
    }
  }
  return maras::Status::OK();
}

maras::StatusOr<SurveillanceAnalysis> ShardSupervisor::RunAnalyzed(
    const std::vector<faers::QuarterDataset>& quarters,
    const MultiQuarterOptions& pipeline, const AnalyzerOptions& analyzer,
    RankingMethod method, ShardRunReport* report) {
  if (quarters.empty()) {
    return maras::Status::InvalidArgument("no quarters to ingest");
  }
  if (pipeline.checkpoint_dir.empty()) {
    return maras::Status::InvalidArgument(
        "shard supervisor requires checkpoint_dir (checkpoints are the "
        "worker/supervisor channel)");
  }
  if (options_.worker_command.empty()) {
    return maras::Status::InvalidArgument("no worker command configured");
  }
  if (options_.workers == 0 || options_.max_attempts == 0) {
    return maras::Status::InvalidArgument(
        "workers and max_attempts must be >= 1");
  }
  const bool strict = pipeline.ingest.policy == faers::IngestPolicy::kStrict;
  const std::string& dir = pipeline.checkpoint_dir;
  const maras::RunContext ungoverned;
  const maras::RunContext& ctx =
      pipeline.context != nullptr ? *pipeline.context : ungoverned;
  ShardRunReport local_report;
  if (report == nullptr) report = &local_report;
  SurveillanceAnalysis out;

  // --- Phase A: one worker per quarter ------------------------------------
  const size_t n = quarters.size();
  std::vector<QuarterCheckpoint> slots(n);
  std::vector<ShardSpec> quarter_specs(n);
  for (size_t i = 0; i < n; ++i) {
    quarter_specs[i] = ShardSpec{ShardSpec::Kind::kQuarter, i, 1,
                                 quarters[i].Label()};
  }
  MultiQuarterPipeline in_process(pipeline);
  auto validate_quarter = [&](const ShardSpec& spec) -> maras::Status {
    MARAS_ASSIGN_OR_RETURN(std::string payload,
                           ReadCheckpoint(dir, spec.Stage()));
    MARAS_ASSIGN_OR_RETURN(QuarterCheckpoint decoded,
                           DecodeQuarterCheckpoint(payload));
    if (decoded.outcome.label != spec.label) {
      return maras::Status::Corruption("snapshot is for quarter '" +
                                       decoded.outcome.label + "'");
    }
    slots[spec.index] = std::move(decoded);
    return maras::Status::OK();
  };
  auto fallback_quarter = [&](const ShardSpec& spec) -> maras::Status {
    QuarterCheckpoint quarter;
    quarter.outcome.label = spec.label;
    maras::StatusOr<faers::PreprocessResult> result =
        in_process.ProcessQuarter(quarters[spec.index], &quarter.outcome);
    if (result.ok()) {
      quarter.outcome.loaded = true;
      quarter.result = *std::move(result);
    } else {
      quarter.outcome.error = result.status().ToString();
    }
    MARAS_RETURN_IF_ERROR(WriteCheckpoint(dir, spec.Stage(),
                                          EncodeQuarterCheckpoint(quarter)));
    slots[spec.index] = std::move(quarter);
    return maras::Status::OK();
  };
  MARAS_RETURN_IF_ERROR(RunPhase(quarter_specs, validate_quarter,
                                 fallback_quarter, ctx, report));

  // Serial in-order reduce, mirroring the single-process RunAnalyzed.
  MultiQuarterRun run;
  for (size_t i = 0; i < n; ++i) {
    const QuarterCheckpoint& quarter = slots[i];
    if (strict && !quarter.outcome.loaded) {
      return maras::WithContext(
          maras::Status::Corruption(quarter.outcome.error),
          "quarter " + quarter.outcome.label);
    }
    if (quarter.outcome.loaded) {
      ++run.quarters_loaded;
    } else {
      run.ingest.warnings.push_back("skipping quarter " +
                                    quarter.outcome.label + ": " +
                                    quarter.outcome.error);
    }
    run.ingest.Merge(quarter.outcome.ingest);
    run.outcomes.push_back(quarter.outcome);
  }
  if (run.quarters_loaded == 0) {
    return maras::Status::Corruption("all " + std::to_string(n) +
                                     " quarters failed ingestion");
  }
  std::vector<const faers::PreprocessResult*> loaded;
  for (const QuarterCheckpoint& quarter : slots) {
    if (quarter.result.has_value()) loaded.push_back(&*quarter.result);
  }
  MARAS_ASSIGN_OR_RETURN(run.merged, MergeQuarters(loaded));
  const mining::ItemDictionary& items = run.merged.items;
  const mining::TransactionDatabase& db = run.merged.transactions;

  // --- Phase B: item-range mine shards ------------------------------------
  MARAS_RETURN_IF_ERROR(ctx.Check());
  const size_t shard_count = options_.workers;
  std::vector<MineShardCheckpoint> mine_slots(shard_count);
  std::vector<char> mine_degraded(shard_count, 0);
  std::vector<ShardSpec> mine_specs(shard_count);
  for (size_t k = 0; k < shard_count; ++k) {
    mine_specs[k] = ShardSpec{ShardSpec::Kind::kMine, k, shard_count, ""};
  }
  auto validate_mine = [&](const ShardSpec& spec) -> maras::Status {
    if (mine_degraded[spec.index]) {
      // A quarantined shard's degraded artifact is already in its slot;
      // it must not be re-validated against the base parameters.
      return maras::Status::OK();
    }
    MARAS_ASSIGN_OR_RETURN(std::string payload,
                           ReadCheckpoint(dir, spec.Stage()));
    MARAS_ASSIGN_OR_RETURN(MineShardCheckpoint decoded,
                           DecodeMineShardCheckpoint(payload));
    if (decoded.shard_index != spec.index ||
        decoded.shard_count != spec.count ||
        decoded.min_support != analyzer.mining.min_support ||
        decoded.max_itemset_size != analyzer.mining.max_itemset_size) {
      return maras::Status::Corruption(
          "mine shard snapshot parameters do not match the plan");
    }
    mine_slots[spec.index] = std::move(decoded);
    return maras::Status::OK();
  };
  auto fallback_mine = [&](const ShardSpec& spec) -> maras::Status {
    // Graceful degradation: mine this slice in-process one degradation
    // notch up — cheaper, bounded — and tag the run truncated rather than
    // failing it.
    mining::MiningOptions mining_options = analyzer.mining;
    mining_options.shard_index = spec.index;
    mining_options.shard_count = spec.count;
    mining_options.context = pipeline.context;
    mining_options.min_support = EscalateSupport(
        analyzer.mining.min_support, analyzer.degradation.support_factor);
    mining::FpGrowth miner(mining_options);
    MARAS_ASSIGN_OR_RETURN(mining::FrequentItemsetResult frequent,
                           miner.Mine(db));
    MineShardCheckpoint shard;
    shard.shard_index = spec.index;
    shard.shard_count = spec.count;
    shard.min_support = mining_options.min_support;
    shard.max_itemset_size = mining_options.max_itemset_size;
    shard.frequent = std::move(frequent);
    MARAS_RETURN_IF_ERROR(WriteCheckpoint(dir, spec.Stage(),
                                          EncodeMineShardCheckpoint(shard)));
    mine_slots[spec.index] = std::move(shard);
    mine_degraded[spec.index] = 1;
    return maras::Status::OK();
  };
  MARAS_RETURN_IF_ERROR(
      RunPhase(mine_specs, validate_mine, fallback_mine, ctx, report));

  // Merge the partial families; the canonical sort makes the union
  // independent of shard count and arrival order.
  GovernedMineResult mined;
  mined.min_support_used = analyzer.mining.min_support;
  for (size_t k = 0; k < shard_count; ++k) {
    mined.min_support_used = std::max(
        mined.min_support_used,
        static_cast<size_t>(mine_slots[k].min_support));
    if (mine_degraded[k]) {
      mined.truncated = true;
      mined.notes.push_back(
          "mine shard " + std::to_string(k) + "-of-" +
          std::to_string(shard_count) +
          " quarantined; its slice was mined at min_support=" +
          std::to_string(mine_slots[k].min_support) +
          " (result will be truncated)");
    }
    mined.frequent.Absorb(std::move(mine_slots[k].frequent));
  }
  mined.frequent.SortCanonically();

  // --- Analysis tail: shared stage functions, checkpointed like the
  // single-process pipeline --------------------------------------------
  MARAS_RETURN_IF_ERROR(ctx.Check());
  ClosedCheckpoint closed_stage;
  MARAS_ASSIGN_OR_RETURN(
      closed_stage, BuildClosedStage(std::move(mined), items, analyzer, ctx));
  MARAS_RETURN_IF_ERROR(
      WriteCheckpoint(dir, "closed", EncodeClosedCheckpoint(closed_stage)));
  MARAS_RETURN_IF_ERROR(FireStageHook(pipeline, "closed"));

  MARAS_RETURN_IF_ERROR(ctx.Check());
  std::vector<DrugAdrRule> rules;
  MARAS_ASSIGN_OR_RETURN(
      rules, BuildRulesStage(closed_stage.closed, items, db, analyzer, ctx));
  MARAS_RETURN_IF_ERROR(WriteCheckpoint(dir, "rules", EncodeRules(rules)));
  MARAS_RETURN_IF_ERROR(FireStageHook(pipeline, "rules"));

  MARAS_RETURN_IF_ERROR(ctx.Check());
  std::vector<RankedMcac> ranked;
  mining::ConceptLattice lattice_storage;
  const mining::ConceptLattice* lattice = nullptr;
  if (LatticeMcacEligible(analyzer)) {
    MARAS_ASSIGN_OR_RETURN(
        lattice_storage,
        BuildLatticeStage(closed_stage.closed, analyzer, ctx));
    lattice = &lattice_storage;
  }
  MARAS_ASSIGN_OR_RETURN(
      ranked,
      BuildRankedStage(rules, items, db, method, analyzer, ctx, lattice));
  MARAS_RETURN_IF_ERROR(
      WriteCheckpoint(dir, "ranked", EncodeRankedMcacs(ranked)));
  MARAS_RETURN_IF_ERROR(FireStageHook(pipeline, "ranked"));

  out.run = std::move(run);
  out.closed = std::move(closed_stage.closed);
  out.rules = std::move(rules);
  out.ranked = std::move(ranked);
  out.stats = closed_stage.stats;
  out.stats.mcac_count = out.ranked.size();
  out.min_support_used = static_cast<size_t>(closed_stage.min_support_used);
  out.truncated = closed_stage.truncated;
  out.notes.insert(out.notes.end(), closed_stage.notes.begin(),
                   closed_stage.notes.end());
  return out;
}

}  // namespace maras::core
