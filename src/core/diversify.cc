#include "core/diversify.h"

#include <algorithm>
#include <cmath>

#include "mining/itemset.h"

namespace maras::core {

namespace {

double Jaccard(const mining::Itemset& a, const mining::Itemset& b) {
  if (a.empty() && b.empty()) return 1.0;
  size_t inter = mining::Intersect(a, b).size();
  size_t uni = a.size() + b.size() - inter;
  return uni == 0 ? 0.0
                  : static_cast<double>(inter) / static_cast<double>(uni);
}

}  // namespace

double ClusterSimilarity(const Mcac& a, const Mcac& b) {
  double drug_sim = Jaccard(a.target.drugs, b.target.drugs);
  double adr_sim = Jaccard(a.target.adrs, b.target.adrs);
  return (2.0 * drug_sim + adr_sim) / 3.0;
}

std::vector<RankedMcac> DiversifiedTopK(const std::vector<RankedMcac>& ranked,
                                        const DiversifyOptions& options) {
  std::vector<RankedMcac> selected;
  if (ranked.empty() || options.k == 0) return selected;

  // Normalize scores to [0, 1] over the candidate pool so the λ trade-off
  // is scale-free.
  double lo = ranked.front().score, hi = ranked.front().score;
  for (const RankedMcac& r : ranked) {
    lo = std::min(lo, r.score);
    hi = std::max(hi, r.score);
  }
  const double range = hi - lo;
  auto norm = [&](double s) {
    return range <= 0.0 ? 1.0 : (s - lo) / range;
  };

  std::vector<bool> used(ranked.size(), false);
  const double lambda = std::clamp(options.lambda, 0.0, 1.0);
  while (selected.size() < options.k) {
    double best_value = -1e300;
    size_t best_index = ranked.size();
    for (size_t i = 0; i < ranked.size(); ++i) {
      if (used[i]) continue;
      double max_sim = 0.0;
      for (const RankedMcac& pick : selected) {
        max_sim =
            std::max(max_sim, ClusterSimilarity(ranked[i].mcac, pick.mcac));
      }
      double value = lambda * norm(ranked[i].score) - (1.0 - lambda) * max_sim;
      if (value > best_value) {
        best_value = value;
        best_index = i;
      }
    }
    if (best_index == ranked.size()) break;  // pool exhausted
    used[best_index] = true;
    selected.push_back(ranked[best_index]);
  }
  return selected;
}

}  // namespace maras::core
