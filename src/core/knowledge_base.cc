#include "core/knowledge_base.h"

#include <algorithm>

#include "faers/vocabulary.h"

namespace maras::core {

const char* NoveltyClassName(NoveltyClass klass) {
  switch (klass) {
    case NoveltyClass::kKnownInteraction:
      return "known interaction";
    case NoveltyClass::kNovelAdrForKnownCombination:
      return "novel ADR for known combination";
    case NoveltyClass::kNovelCombination:
      return "novel combination";
  }
  return "?";
}

void KnowledgeBase::AddInteraction(std::vector<std::string> drugs,
                                   std::vector<std::string> adrs,
                                   std::string source) {
  Entry entry;
  entry.drugs = std::move(drugs);
  entry.adrs = std::move(adrs);
  entry.source = std::move(source);
  std::sort(entry.drugs.begin(), entry.drugs.end());
  std::sort(entry.adrs.begin(), entry.adrs.end());
  entries_.push_back(std::move(entry));
}

bool KnowledgeBase::DrugsMatch(const Entry& entry, const DrugAdrRule& rule,
                               const mining::ItemDictionary& items) {
  for (const std::string& drug : entry.drugs) {
    bool found = false;
    for (mining::ItemId id : rule.drugs) {
      if (items.Name(id) == drug) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

NoveltyClass KnowledgeBase::Classify(
    const DrugAdrRule& rule, const mining::ItemDictionary& items) const {
  bool combination_known = false;
  for (const Entry& entry : entries_) {
    if (!DrugsMatch(entry, rule, items)) continue;
    combination_known = true;
    // Any overlap between the documented ADRs and the mined ADRs?
    for (mining::ItemId id : rule.adrs) {
      if (std::binary_search(entry.adrs.begin(), entry.adrs.end(),
                             items.Name(id))) {
        return NoveltyClass::kKnownInteraction;
      }
    }
  }
  return combination_known ? NoveltyClass::kNovelAdrForKnownCombination
                           : NoveltyClass::kNovelCombination;
}

std::vector<std::string> KnowledgeBase::MatchingSources(
    const DrugAdrRule& rule, const mining::ItemDictionary& items) const {
  std::vector<std::string> sources;
  for (const Entry& entry : entries_) {
    if (DrugsMatch(entry, rule, items)) sources.push_back(entry.source);
  }
  return sources;
}

std::vector<Mcac> KnowledgeBase::FilterNovel(
    const std::vector<Mcac>& mcacs,
    const mining::ItemDictionary& items) const {
  std::vector<Mcac> novel;
  for (const Mcac& mcac : mcacs) {
    if (Classify(mcac.target, items) != NoveltyClass::kKnownInteraction) {
      novel.push_back(mcac);
    }
  }
  return novel;
}

KnowledgeBase CuratedKnowledgeBase() {
  KnowledgeBase kb;
  for (const faers::KnownInteraction& known : faers::KnownInteractions()) {
    kb.AddInteraction(known.drugs, known.adrs, known.provenance);
  }
  return kb;
}

}  // namespace maras::core
