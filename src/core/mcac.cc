#include "core/mcac.h"

#include <algorithm>

#include "mining/measures.h"

namespace maras::core {

size_t Mcac::ContextSize() const {
  size_t count = 0;
  for (const auto& level : levels) count += level.size();
  return count;
}

maras::StatusOr<Mcac> McacBuilder::Build(const DrugAdrRule& target) const {
  if (target.drugs.size() < 2) {
    return maras::Status::InvalidArgument(
        "MCAC target must combine at least two drugs");
  }
  if (target.drugs.size() > 20) {
    return maras::Status::InvalidArgument("target antecedent too large");
  }
  Mcac mcac;
  mcac.target = target;
  mcac.levels.resize(target.drugs.size() - 1);

  const size_t consequent_support = db_->Support(target.adrs);
  const size_t n = db_->size();
  mining::ForEachProperSubset(
      target.drugs, [&](const mining::Itemset& subset) {
        DrugAdrRule context;
        context.drugs = subset;
        context.adrs = target.adrs;
        context.antecedent_support = db_->Support(subset);
        context.consequent_support = consequent_support;
        context.support = db_->Support(mining::Union(subset, target.adrs));
        context.confidence =
            mining::Confidence(context.support, context.antecedent_support);
        context.lift = mining::Lift(context.support,
                                    context.antecedent_support,
                                    context.consequent_support, n);
        mcac.levels[subset.size() - 1].push_back(std::move(context));
      });

  for (auto& level : mcac.levels) {
    std::sort(level.begin(), level.end(),
              [](const DrugAdrRule& a, const DrugAdrRule& b) {
                if (a.confidence != b.confidence) {
                  return a.confidence > b.confidence;
                }
                return a.drugs < b.drugs;  // deterministic tie-break
              });
  }
  return mcac;
}

}  // namespace maras::core
