#include "core/mcac.h"

#include <algorithm>
#include <string>

#include "mining/measures.h"

namespace maras::core {

size_t Mcac::ContextSize() const {
  size_t count = 0;
  for (const auto& level : levels) count += level.size();
  return count;
}

maras::StatusOr<uint64_t> Mcac::ExpectedContextSize(size_t drug_count) {
  if (drug_count < 2) {
    return maras::Status::InvalidArgument(
        "MCAC target must combine at least two drugs, got " +
        std::to_string(drug_count));
  }
  if (drug_count >= 64) {
    return maras::Status::InvalidArgument(
        "context size 2^" + std::to_string(drug_count) +
        " − 2 overflows uint64_t");
  }
  return (uint64_t{1} << drug_count) - 2;
}

maras::StatusOr<Mcac> McacBuilder::Build(const DrugAdrRule& target) const {
  MARAS_ASSIGN_OR_RETURN(const uint64_t expected_contexts,
                         Mcac::ExpectedContextSize(target.drugs.size()));
  if (target.drugs.size() > kMaxMcacAntecedentDrugs) {
    return maras::Status::InvalidArgument(
        "target antecedent of " + std::to_string(target.drugs.size()) +
        " drugs exceeds the enumeration bound of " +
        std::to_string(kMaxMcacAntecedentDrugs) + " (context would hold " +
        std::to_string(expected_contexts) + " rules)");
  }
  Mcac mcac;
  mcac.target = target;
  mcac.levels.resize(target.drugs.size() - 1);

  // With a lattice, every subset support — including the shared consequent —
  // is a memoized downward walk from the target's concept. Targets the
  // lattice does not hold (it was built from a differently filtered family)
  // keep lattice_node == kNotFound, which routes each cache probe to the
  // bitmap-kernel fallback: still exact, still memoized across targets.
  const bool cached = lattice_ != nullptr && cache_ != nullptr;
  uint32_t lattice_node = mining::ConceptLattice::kNotFound;
  if (cached) lattice_node = lattice_->FindNode(target.CompleteItemset());
  auto support_of = [&](const mining::Itemset& s) -> size_t {
    if (cached) {
      return static_cast<size_t>(cache_->Support(s, lattice_, lattice_node));
    }
    return db_->Support(s);
  };

  const size_t consequent_support = support_of(target.adrs);
  const size_t n = db_->size();
  mining::ForEachProperSubset(
      target.drugs, [&](const mining::Itemset& subset) {
        DrugAdrRule context;
        context.drugs = subset;
        context.adrs = target.adrs;
        context.antecedent_support = support_of(subset);
        context.consequent_support = consequent_support;
        context.support = support_of(mining::Union(subset, target.adrs));
        context.confidence =
            mining::Confidence(context.support, context.antecedent_support);
        context.lift = mining::Lift(context.support,
                                    context.antecedent_support,
                                    context.consequent_support, n);
        mcac.levels[subset.size() - 1].push_back(std::move(context));
      });

  for (auto& level : mcac.levels) {
    std::sort(level.begin(), level.end(),
              [](const DrugAdrRule& a, const DrugAdrRule& b) {
                if (a.confidence != b.confidence) {
                  return a.confidence > b.confidence;
                }
                return a.drugs < b.drugs;  // deterministic tie-break
              });
  }
  return mcac;
}

}  // namespace maras::core
