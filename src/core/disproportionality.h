#ifndef MARAS_CORE_DISPROPORTIONALITY_H_
#define MARAS_CORE_DISPROPORTIONALITY_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/drug_adr_rule.h"
#include "mining/itemset.h"
#include "mining/transaction_db.h"

namespace maras::core {

// ---------------------------------------------------------------------------
// Classic pharmacovigilance disproportionality statistics — the
// "statistical methods such as relative reporting ratio and
// disproportionality analysis" the paper cites as the state of the art it
// improves on (Section 1.2 / Related Work: Tatonetti et al., DuMouchel).
// Implemented here as comparison baselines for the benchmarks: rank the
// same multi-drug rules by PRR/ROR/IC instead of exclusiveness and measure
// ground-truth signal recovery.
// ---------------------------------------------------------------------------

// The standard 2×2 report contingency table for a drug set D and ADR set A:
//
//                 | has all of A | lacks some of A
//   has all of D  |      a       |       b
//   lacks some D  |      c       |       d
struct ContingencyTable {
  size_t a = 0;
  size_t b = 0;
  size_t c = 0;
  size_t d = 0;

  size_t n() const { return a + b + c + d; }
};

// Builds the table by exact counting over the report database.
ContingencyTable MakeContingencyTable(const mining::TransactionDatabase& db,
                                      const mining::Itemset& drugs,
                                      const mining::Itemset& adrs);

// Proportional Reporting Ratio: [a/(a+b)] / [c/(c+d)].
// Returns 0 on degenerate margins; capped at kDisproportionalityCap.
double Prr(const ContingencyTable& t);

// Reporting Odds Ratio: (a·d) / (b·c), capped likewise.
double Ror(const ContingencyTable& t);

// Yates-corrected chi-squared statistic of the table (1 df).
double ChiSquaredYates(const ContingencyTable& t);

// BCPNN Information Component with the usual +0.5 shrinkage:
// IC = log2[ (a + 0.5) / (E + 0.5) ], E = (a+b)(a+c)/N.
double InformationComponent(const ContingencyTable& t);

inline constexpr double kDisproportionalityCap = 1e9;

// 95%-style confidence intervals for the ratio estimates, on the usual
// log-normal approximation:
//   ln PRR ± z·sqrt(1/a − 1/(a+b) + 1/c − 1/(c+d))
//   ln ROR ± z·sqrt(1/a + 1/b + 1/c + 1/d)
// Degenerate cells (a zero that makes the SE undefined) yield the vacuous
// interval [0, cap]. Surveillance practice treats a signal as credible only
// when the interval's lower bound clears 1.
struct RatioInterval {
  double lower = 0.0;
  double upper = 0.0;
};
RatioInterval PrrInterval(const ContingencyTable& t, double z = 1.96);
RatioInterval RorInterval(const ContingencyTable& t, double z = 1.96);

// One rule's full disproportionality panel.
struct DisproportionalityResult {
  ContingencyTable table;
  double prr = 0.0;
  double ror = 0.0;
  double chi_squared = 0.0;
  double information_component = 0.0;

  // Evans et al. signal criterion, the standard operating threshold in
  // PRR-based surveillance: PRR >= 2, chi² >= 4, and at least 3 cases.
  bool MeetsEvansCriteria() const {
    return prr >= 2.0 && chi_squared >= 4.0 && table.a >= 3;
  }
};

// Evaluates a drug-ADR rule against the database.
DisproportionalityResult EvaluateDisproportionality(
    const mining::TransactionDatabase& db, const DrugAdrRule& rule);

// ---------------------------------------------------------------------------
// Batched contingency counting. A screening pass evaluates thousands of
// rules against the same database; doing that one MakeContingencyTable at
// a time re-intersects tid-lists per rule. The batch path builds one dense
// bitmap per distinct item (mining/bitmap.h), derives every rule's cells
// with word-wise AND+popcount kernels, and stores the tables as contiguous
// structure-of-arrays lanes so the downstream measure math runs over flat
// uint64_t/double arrays. Counts are exact, so every lane is identical to
// the scalar MakeContingencyTable value — core_disproportionality_test
// asserts it element-wise.
// ---------------------------------------------------------------------------

// n 2×2 tables in SoA layout: lane i holds rule i's cells.
struct ContingencyBatch {
  std::vector<uint64_t> a, b, c, d;

  size_t size() const { return a.size(); }

  // Rehydrates lane i as the familiar struct.
  ContingencyTable Table(size_t i) const {
    return ContingencyTable{static_cast<size_t>(a[i]),
                            static_cast<size_t>(b[i]),
                            static_cast<size_t>(c[i]),
                            static_cast<size_t>(d[i])};
  }
};

// Builds every rule's table by bitmap AND+popcount over the shared item
// bitmaps. Lane i equals MakeContingencyTable(db, rules[i].drugs,
// rules[i].adrs) exactly. num_threads 0/1 run serial; any value yields
// identical lanes (slot-per-rule fan-out).
ContingencyBatch MakeContingencyTables(const mining::TransactionDatabase& db,
                                       const std::vector<DrugAdrRule>& rules,
                                       size_t num_threads = 1);

// Full panels for a batch of rules: cell counts from the bitmap kernels,
// then each measure computed in one pass over the SoA lanes. Element i
// equals EvaluateDisproportionality(db, rules[i]) exactly.
std::vector<DisproportionalityResult> EvaluateDisproportionalityBatch(
    const mining::TransactionDatabase& db, const std::vector<DrugAdrRule>& rules,
    size_t num_threads = 1);

}  // namespace maras::core

#endif  // MARAS_CORE_DISPROPORTIONALITY_H_
